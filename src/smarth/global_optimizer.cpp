#include "smarth/global_optimizer.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "hdfs/namenode.hpp"

namespace smarth::core {

std::vector<NodeId> GlobalOptimizerPolicy::top_n_for_client(
    const hdfs::PlacementRequest& request, const hdfs::PlacementContext& ctx,
    std::size_t n) {
  SMARTH_CHECK(ctx.speeds != nullptr);
  struct Scored {
    NodeId node;
    double speed;
    bool measured;
  };
  std::vector<Scored> scored;
  scored.reserve(ctx.alive.size());
  for (NodeId node : ctx.alive) {
    const auto s = ctx.speeds->speed(request.client, node);
    scored.push_back(Scored{node, s ? s->bits_per_second() : 0.0,
                            s.has_value()});
  }
  // Measured nodes first (by speed, descending); unmeasured nodes keep their
  // registration order after them.
  std::stable_sort(scored.begin(), scored.end(), [](const Scored& a,
                                                    const Scored& b) {
    if (a.measured != b.measured) return a.measured;
    return a.speed > b.speed;
  });
  std::vector<NodeId> top;
  for (const Scored& s : scored) {
    if (top.size() >= n) break;
    top.push_back(s.node);
  }
  return top;
}

std::vector<NodeId> GlobalOptimizerPolicy::choose_targets(
    const hdfs::PlacementRequest& request, const hdfs::PlacementContext& ctx) {
  // Line 3: n = active datanodes / replication — the pipeline fan-out cap.
  const std::size_t repli = static_cast<std::size_t>(
      std::max(1, request.replication));
  const std::size_t n = std::max<std::size_t>(1, ctx.alive.size() / repli);

  // Line 4: without records for this client, fall back to stock HDFS.
  if (ctx.speeds == nullptr || !ctx.speeds->has_records(request.client)) {
    ++fallback_;
    return fallback_policy_.choose_targets(request, ctx);
  }
  ++optimized_;

  std::vector<NodeId> targets;
  targets.reserve(repli);

  // Lines 5, 9-10: first datanode — random draw from the client's top n.
  std::vector<NodeId> top = top_n_for_client(request, ctx, n);
  std::vector<NodeId> usable_top;
  std::vector<NodeId> suspect_top;
  std::vector<NodeId> quarantined_top;
  for (NodeId node : top) {
    if (hdfs::placement_unusable(node, targets, request.excluded)) continue;
    if (ctx.deprioritized != nullptr &&
        std::find(ctx.deprioritized->begin(), ctx.deprioritized->end(),
                  node) != ctx.deprioritized->end()) {
      quarantined_top.push_back(node);  // last resort: fast but suspect
      continue;
    }
    if (ctx.suspects != nullptr &&
        std::find(ctx.suspects->begin(), ctx.suspects->end(), node) !=
            ctx.suspects->end()) {
      // Suspicion outranks a stale speed record: the board still remembers
      // the node's healthy throughput, but eviction/hedge evidence says it
      // has gone gray since. Use it only when no clean top node remains.
      suspect_top.push_back(node);
      continue;
    }
    usable_top.push_back(node);
  }
  if (usable_top.empty()) usable_top = std::move(suspect_top);
  if (usable_top.empty()) usable_top = std::move(quarantined_top);
  NodeId first;
  if (!usable_top.empty()) {
    first = usable_top[ctx.rng.index(usable_top.size())];
  } else {
    // Every top node is excluded (all in active pipelines): any usable node.
    first = hdfs::pick_random_node(ctx, targets, request.excluded, nullptr);
  }
  if (!first.valid()) return targets;
  targets.push_back(first);

  // Lines 11-16: rack-aware replicas, then random extras.
  while (targets.size() < repli) {
    NodeId next;
    if (targets.size() == 1) {
      next = hdfs::pick_remote_rack_node(ctx, targets[0], targets,
                                         request.excluded);
    } else if (targets.size() == 2) {
      next = hdfs::pick_same_rack_node(ctx, targets[1], targets,
                                       request.excluded);
    } else {
      next = hdfs::pick_random_node(ctx, targets, request.excluded, nullptr);
    }
    if (!next.valid()) break;
    targets.push_back(next);
  }
  return targets;
}

}  // namespace smarth::core
