// The SMARTH client write path (paper §III-A): asynchronous multi-pipeline
// uploads. The client streams a block to the pipeline's first datanode; when
// that node confirms full receipt with an FNFA, the client immediately
// requests the next block and opens a new pipeline while the previous
// pipelines keep replicating and acking in the background. The pipeline
// fan-out is bounded by the buffer-overflow guard (§IV-C): a datanode serves
// at most one of this client's pipelines at a time, which caps concurrency at
// |datanodes| / replication. Failures are handled per Algorithm 4.
#pragma once

#include <set>
#include <vector>

#include "hdfs/output_stream.hpp"
#include "smarth/speed_tracker.hpp"

namespace smarth::core {

class SmarthOutputStream : public hdfs::OutputStreamBase {
 public:
  SmarthOutputStream(hdfs::StreamDeps deps, ClientId client,
                     NodeId client_node, FileId file, Bytes file_size,
                     SpeedTracker& tracker, DoneCallback on_done);

  // --- AckSink ---------------------------------------------------------------
  void deliver_ack(const hdfs::PipelineAck& ack) override;
  void deliver_setup_ack(const hdfs::SetupAck& ack) override;
  void deliver_fnfa(const hdfs::FnfaMessage& fnfa) override;

  // --- Introspection ----------------------------------------------------------
  int active_pipelines() const { return static_cast<int>(pipelines_.size()); }
  std::uint64_t fnfa_received() const { return fnfa_received_; }
  std::uint64_t slot_waits() const { return slot_waits_; }

 protected:
  bool production_window_open() const override;
  void on_packet_produced() override;
  void begin_protocol() override;
  void on_pipeline_error(hdfs::ClientPipeline& pipeline,
                         int error_index) override;

 private:
  /// Requests the next block + pipeline, excluding datanodes already serving
  /// an active pipeline of this client (the overflow guard).
  void advance_block();
  /// Sends pending packets of every ready pipeline (the streaming one plus
  /// any recovered pipeline re-transmitting its backlog).
  void pump_stream();
  std::vector<NodeId> active_pipeline_nodes() const;
  void on_pipeline_complete(PipelineId id);
  void maybe_complete();
  /// Algorithm 4's error-pipeline-set drain: one recovery at a time.
  void recover_next_error_pipeline();
  void resume_recovered_pipeline(PipelineId old_id,
                                 std::vector<NodeId> targets,
                                 Bytes sync_offset);

  SpeedTracker& tracker_;

  std::int64_t next_block_ = 0;    ///< next block index to dispatch
  PipelineId streaming_;           ///< pipeline the fresh data flows into
  bool awaiting_block_ = false;
  bool waiting_for_slot_ = false;  ///< addBlock refused: all nodes busy
  /// Alg. 4 state: failed pipelines awaiting recovery; while non-empty the
  /// current block transfer is paused.
  std::set<PipelineId> error_pipelines_;
  std::unordered_map<PipelineId, int> pipeline_error_index_;
  bool recovery_running_ = false;

  std::uint64_t fnfa_received_ = 0;
  std::uint64_t slot_waits_ = 0;
};

}  // namespace smarth::core
