// Client-side record of observed block-transfer speeds to first datanodes
// (paper §III-B). The client measures each completed block (first packet sent
// to FNFA received — i.e. network plus the first node's storage I/O, exactly
// the "accessing condition" the paper wants), keeps the latest value per
// datanode, and hands snapshots to the heartbeat for the namenode's global
// optimizer and to the local optimizer for pipeline re-sorting.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/ids.hpp"
#include "common/units.hpp"
#include "hdfs/types.hpp"

namespace smarth::core {

class SpeedTracker {
 public:
  /// Records that `bytes` reached `datanode` in `elapsed`.
  void record(NodeId datanode, Bytes bytes, SimDuration elapsed, SimTime now);

  std::optional<Bandwidth> speed(NodeId datanode) const;
  bool has_records() const { return !records_.empty(); }
  std::size_t datanode_count() const { return records_.size(); }

  /// Snapshot of the latest record per datanode, for the heartbeat.
  std::vector<hdfs::SpeedRecord> heartbeat_records() const;

  std::uint64_t samples() const { return samples_; }

 private:
  std::unordered_map<NodeId, hdfs::SpeedRecord> records_;
  std::uint64_t samples_ = 0;
};

}  // namespace smarth::core
