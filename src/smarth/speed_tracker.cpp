#include "smarth/speed_tracker.hpp"

#include "common/check.hpp"

namespace smarth::core {

void SpeedTracker::record(NodeId datanode, Bytes bytes, SimDuration elapsed,
                          SimTime now) {
  SMARTH_CHECK(datanode.valid());
  if (elapsed <= 0 || bytes <= 0) return;  // degenerate measurement; skip
  hdfs::SpeedRecord record;
  record.datanode = datanode;
  record.speed = throughput_of(bytes, elapsed);
  record.measured_at = now;
  records_[datanode] = record;
  ++samples_;
}

std::optional<Bandwidth> SpeedTracker::speed(NodeId datanode) const {
  auto it = records_.find(datanode);
  if (it == records_.end()) return std::nullopt;
  return it->second.speed;
}

std::vector<hdfs::SpeedRecord> SpeedTracker::heartbeat_records() const {
  std::vector<hdfs::SpeedRecord> out;
  out.reserve(records_.size());
  for (const auto& [dn, rec] : records_) out.push_back(rec);
  return out;
}

}  // namespace smarth::core
