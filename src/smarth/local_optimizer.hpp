// Paper Algorithm 2 — local optimization. Runs on the client each time the
// namenode returns a pipeline: re-sorts the targets by locally measured
// transfer speed (fastest first), then with probability (1 - threshold)
// swaps the head with a random other target so that nodes with stale or poor
// records occasionally get re-measured.
#pragma once

#include <vector>

#include "common/ids.hpp"
#include "common/rng.hpp"
#include "smarth/speed_tracker.hpp"

namespace smarth::core {

struct LocalOptimizerResult {
  std::vector<NodeId> targets;
  bool sorted_changed_order = false;
  bool exploration_swap = false;  ///< the r > threshold branch fired
  int swap_index = -1;
};

/// Applies Algorithm 2. `threshold` is the paper's 0.8: an exploration swap
/// happens when a uniform draw exceeds it. Datanodes without a local record
/// sort after all measured ones (measurements, not hope, pick the head; the
/// exploration swap is the sanctioned way to test unknown nodes).
LocalOptimizerResult local_optimize(std::vector<NodeId> targets,
                                    const SpeedTracker& tracker, Rng& rng,
                                    double threshold);

}  // namespace smarth::core
