// Paper Algorithm 1 — the SMARTH namenode's global optimization. Installed
// on the namenode as its PlacementPolicy. With speed records for the
// requesting client it draws the pipeline's first datanode at random from the
// client's top-n fastest datanodes (n = active datanodes / replication, the
// maximum pipeline fan-out), keeps the rack-aware rule for replicas 2 and 3,
// and falls back to the stock HDFS policy for clients it knows nothing about.
#pragma once

#include <vector>

#include "hdfs/placement.hpp"

namespace smarth::core {

class GlobalOptimizerPolicy : public hdfs::PlacementPolicy {
 public:
  std::vector<NodeId> choose_targets(const hdfs::PlacementRequest& request,
                                     const hdfs::PlacementContext& ctx)
      override;
  const char* name() const override { return "smarth-global"; }

  /// Top-n selection used by choose_targets; exposed for tests. Measured
  /// datanodes sort by speed descending; if fewer than n are measured the
  /// remainder is filled with unmeasured alive nodes (so a cold cluster is
  /// still fully explorable).
  static std::vector<NodeId> top_n_for_client(
      const hdfs::PlacementRequest& request, const hdfs::PlacementContext& ctx,
      std::size_t n);

  std::uint64_t optimized_placements() const { return optimized_; }
  std::uint64_t fallback_placements() const { return fallback_; }

 private:
  hdfs::DefaultPlacementPolicy fallback_policy_;
  std::uint64_t optimized_ = 0;
  std::uint64_t fallback_ = 0;
};

}  // namespace smarth::core
