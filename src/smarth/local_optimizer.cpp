#include "smarth/local_optimizer.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace smarth::core {

LocalOptimizerResult local_optimize(std::vector<NodeId> targets,
                                    const SpeedTracker& tracker, Rng& rng,
                                    double threshold) {
  SMARTH_CHECK(threshold >= 0.0 && threshold <= 1.0);
  LocalOptimizerResult result;
  if (targets.size() < 2) {
    result.targets = std::move(targets);
    return result;
  }

  // Line 2-3: build the TransSpeedVector and sort descending. Stable sort
  // keeps the namenode's order among unmeasured nodes.
  const std::vector<NodeId> before = targets;
  auto speed_of = [&](NodeId n) {
    const auto s = tracker.speed(n);
    return s ? s->bits_per_second() : -1.0;
  };
  std::stable_sort(targets.begin(), targets.end(),
                   [&](NodeId a, NodeId b) { return speed_of(a) > speed_of(b); });
  result.sorted_changed_order = targets != before;

  // Lines 4-8: exploration swap with probability 1 - threshold.
  const double r = rng.uniform();
  if (r > threshold) {
    const auto index = static_cast<std::size_t>(rng.uniform_int(
        1, static_cast<std::int64_t>(targets.size()) - 1));
    std::swap(targets[0], targets[index]);
    result.exploration_swap = true;
    result.swap_index = static_cast<int>(index);
  }
  result.targets = std::move(targets);
  return result;
}

}  // namespace smarth::core
