#include "smarth/smarth_stream.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/log.hpp"
#include "hdfs/recovery.hpp"
#include "smarth/local_optimizer.hpp"

namespace smarth::core {

using hdfs::ClientPipeline;
using hdfs::LocatedBlock;
using hdfs::PipelineAck;
using hdfs::RecoveryOutcome;
using hdfs::SetupAck;

SmarthOutputStream::SmarthOutputStream(hdfs::StreamDeps deps, ClientId client,
                                       NodeId client_node, FileId file,
                                       Bytes file_size, SpeedTracker& tracker,
                                       DoneCallback on_done)
    : OutputStreamBase(std::move(deps), client, client_node, file, file_size,
                       std::move(on_done)),
      tracker_(tracker) {}

bool SmarthOutputStream::production_window_open() const {
  // Production may run one block ahead of the wire; pipelines hold their own
  // in-flight state.
  return data_queue_.size() <
         static_cast<std::size_t>(deps_.config.transfers_per_block());
}

void SmarthOutputStream::on_packet_produced() { pump_stream(); }

void SmarthOutputStream::begin_protocol() { advance_block(); }

std::vector<NodeId> SmarthOutputStream::active_pipeline_nodes() const {
  std::vector<NodeId> nodes;
  for (const auto& [id, p] : pipelines_) {
    nodes.insert(nodes.end(), p.targets.begin(), p.targets.end());
  }
  return nodes;
}

void SmarthOutputStream::advance_block() {
  if (finished_ || awaiting_block_ || !error_pipelines_.empty()) return;
  // The protocol's pacing rule: the next block may start only once the
  // current block is fully held by its first datanode (FNFA). This guard
  // also makes post-recovery advance calls safe — a resumed streaming
  // pipeline blocks further dispatch until its own FNFA arrives.
  if (ClientPipeline* s = find_pipeline(streaming_); s != nullptr && !s->fnfa) {
    return;
  }
  if (next_block_ >= total_blocks()) {
    maybe_complete();
    return;
  }
  // The buffer-overflow guard (§IV-C): a datanode already serving one of this
  // client's pipelines may not join another, which caps concurrent pipelines
  // at |datanodes| / replication.
  std::vector<NodeId> excluded;
  if (deps_.config.enforce_pipeline_cap) excluded = active_pipeline_nodes();

  awaiting_block_ = true;
  request_block(next_block_, std::move(excluded),
                [this](Result<LocatedBlock> result) {
    if (finished_) return;
    awaiting_block_ = false;
    if (!result.ok()) {
      if (result.error().code == "insufficient_datanodes" &&
          !pipelines_.empty()) {
        // Every eligible datanode is busy in one of our pipelines: wait for a
        // pipeline to drain, then retry (the guard working as intended).
        ++slot_waits_;
        waiting_for_slot_ = true;
        return;
      }
      if (result.error().code == "safe_mode" && start_safe_mode_wait()) {
        // Restarted namenode still rebuilding its replica map; poll until it
        // leaves safe mode (budgeted). next_block_ was not advanced, so
        // advance_block() retries the same allocation.
        safe_mode_retry_ = deps_.sim.schedule_after(
            deps_.config.safe_mode_retry_interval, [this] { advance_block(); });
        return;
      }
      if (result.error().code == "overloaded" && start_overload_wait()) {
        // Admission control shed the allocation even after RPC backoff;
        // re-poll at the overload cadence (budgeted, same retry shape).
        safe_mode_retry_ = deps_.sim.schedule_after(
            deps_.config.overload_retry_interval, [this] { advance_block(); });
        return;
      }
      finish(true, "addBlock failed: " + result.error().to_string());
      return;
    }
    LocatedBlock located = result.value();
    if (deps_.config.smarth_local_opt) {
      located.targets = local_optimize(std::move(located.targets), tracker_,
                                       deps_.sim.rng(),
                                       deps_.config.local_opt_threshold)
                            .targets;
    }
    SMARTH_DEBUG("smarth") << "addBlock -> " << located.block.to_string()
                           << " (block index " << next_block_ << ", "
                           << pipelines_.size() << " pipelines already live)";
    ClientPipeline& pipeline = create_pipeline(
        next_block_, located, /*resume_offset=*/0, /*smarth_mode=*/true);
    streaming_ = pipeline.id;
    ++next_block_;
    arm_watchdog(pipeline);
  });
}

void SmarthOutputStream::pump_stream() {
  if (finished_ || !error_pipelines_.empty()) return;  // Alg. 4: paused

  const auto window_open = [this](const ClientPipeline& p) {
    // SMARTH streams a whole block ahead of full-pipeline ACKs; the window is
    // a block, i.e. effectively open until the block is fully in flight.
    return p.ack_queue.size() <
           static_cast<std::size_t>(
               deps_.config.smarth_outstanding_transfers());
  };

  // Recovered pipelines retransmit their backlog first.
  for (auto& [id, p] : pipelines_) {
    if (!p.ready || p.failed) continue;
    while (!p.pending.empty() && window_open(p)) send_next_packet(p);
  }
  // Fresh data flows into the streaming pipeline.
  ClientPipeline* p = find_pipeline(streaming_);
  if (p != nullptr && p->ready && !p->failed) {
    while (!data_queue_.empty() &&
           data_queue_.front().block_index == p->block_index &&
           window_open(*p)) {
      p->pending.push_back(data_queue_.front());
      data_queue_.pop_front();
      send_next_packet(*p);
    }
  }
  pump_production();
}

void SmarthOutputStream::deliver_setup_ack(const SetupAck& ack) {
  ClientPipeline* pipeline = find_pipeline(ack.pipeline);
  if (pipeline == nullptr || finished_ || pipeline->failed) return;
  if (!ack.success) {
    on_pipeline_error(*pipeline, ack.error_index);
    return;
  }
  pipeline->ready = true;
  trace_pipeline_ready(*pipeline);
  SMARTH_DEBUG("smarth") << "pipeline " << ack.pipeline.to_string()
                         << " ready";
  arm_watchdog(*pipeline);
  pump_stream();
}

void SmarthOutputStream::deliver_fnfa(const hdfs::FnfaMessage& fnfa) {
  ClientPipeline* pipeline = find_pipeline(fnfa.pipeline);
  if (pipeline == nullptr || finished_ || pipeline->failed) return;
  if (pipeline->fnfa) return;
  pipeline->fnfa = true;
  pipeline->fnfa_at = deps_.sim.now();
  ++fnfa_received_;
  if (trace::active()) {
    trace::recorder()->instant(
        trace::Category::kPipeline,
        hdfs::OutputStreamBase::trace_track(pipeline->block_index), "FNFA",
        {{"block", fnfa.block.to_string()},
         {"pipeline", fnfa.pipeline.to_string()},
         {"first_node", pipeline->targets[0].to_string()}});
  }
  // The client's speed record for this first datanode: whole-block bytes over
  // first-packet-sent -> FNFA (network + the node's storage path).
  if (pipeline->first_packet_sent >= 0) {
    tracker_.record(pipeline->targets[0],
                    pipeline->block_bytes - pipeline->resume_offset,
                    pipeline->fnfa_at - pipeline->first_packet_sent,
                    deps_.sim.now());
  }
  SMARTH_DEBUG("smarth") << "FNFA for " << fnfa.block.to_string()
                         << "; advancing while replicas drain";
  // The heart of SMARTH: the first node holds the whole block, so the client
  // moves on to the next block without waiting for the replica ACKs.
  if (fnfa.pipeline == streaming_) advance_block();
}

void SmarthOutputStream::deliver_ack(const PipelineAck& ack) {
  if (finished_) return;
  ClientPipeline* pipeline = find_pipeline(ack.pipeline);
  if (pipeline == nullptr || pipeline->failed) return;
  if (ack.status != hdfs::AckStatus::kSuccess) {
    on_pipeline_error(*pipeline, ack.error_index);
    return;
  }
  if (pipeline->ack_queue.empty() ||
      pipeline->ack_queue.front().seq_in_block != ack.seq) {
    // An ack ahead of the queue head means an earlier ack was lost in
    // transit (a link flap or crash swallowed it): the ack stream is broken,
    // which is a pipeline error, not a protocol violation. Acks behind the
    // head are stale duplicates and are dropped.
    if (!pipeline->ack_queue.empty() &&
        ack.seq > pipeline->ack_queue.front().seq_in_block) {
      SMARTH_WARN("smarth") << "ack gap on pipeline "
                            << ack.pipeline.to_string() << ": got seq "
                            << ack.seq << ", expected "
                            << pipeline->ack_queue.front().seq_in_block;
      on_pipeline_error(*pipeline, -1);
    }
    return;
  }
  bytes_acked_counter_->add(
      static_cast<std::uint64_t>(pipeline->ack_queue.front().payload));
  pipeline->ack_queue.pop_front();
  ++pipeline->acked_packets;
  arm_watchdog(*pipeline);
  if (pipeline->complete()) {
    on_pipeline_complete(ack.pipeline);
    return;
  }
  // Per-pipeline eviction: a mid-block straggler in *this* pipeline is
  // replaced immediately; the speed reports keep steering the global
  // optimizer away from it for future blocks.
  if (maybe_evict_slow_node(*pipeline)) return;
  pump_stream();
}

void SmarthOutputStream::on_pipeline_complete(PipelineId id) {
  ClientPipeline* pipeline = find_pipeline(id);
  SMARTH_CHECK(pipeline != nullptr);
  trace_pipeline_closed(*pipeline, "complete");
  pipeline->watchdog.cancel();
  if (streaming_ == id) streaming_ = PipelineId{};
  pipelines_.erase(id);
  if (waiting_for_slot_) waiting_for_slot_ = false;
  // Completion frees a fan-out slot, and — for single-replica pipelines,
  // where the final ACK can beat the FNFA message — it also implies the
  // first datanode holds the whole block. advance_block()'s FNFA guard
  // keeps this a no-op whenever dispatching would be premature.
  advance_block();
  pump_stream();
  maybe_complete();
}

void SmarthOutputStream::maybe_complete() {
  if (finished_) return;
  if (next_block_ < total_blocks()) {
    // A stuck slot wait with no pipelines left means the cluster can no
    // longer place blocks at all.
    if (waiting_for_slot_ && pipelines_.empty()) {
      finish(true, "no datanodes available to continue the upload");
    }
    return;
  }
  if (!pipelines_.empty() || awaiting_block_ || !error_pipelines_.empty()) {
    return;
  }
  complete_file();
}

void SmarthOutputStream::on_pipeline_error(ClientPipeline& pipeline,
                                           int error_index) {
  if (finished_ || pipeline.failed) return;
  if (recovery_budget_exhausted(pipeline.block)) {
    finish(true, "recovery budget exhausted for " +
                     pipeline.block.to_string());
    return;
  }
  SMARTH_WARN("smarth") << "pipeline " << pipeline.id.to_string()
                        << " failed (error_index=" << error_index << ")";
  // Algorithm 4 lines 1-3: stop the current block transfer, move the ACK
  // queue back to the (re)send queue, and put the pipeline in the error set.
  trace_pipeline_closed(pipeline, "error");
  pipeline.failed = true;
  pipeline.watchdog.cancel();
  ++stats_.recoveries;
  note_recovery_start(pipeline.id);
  pipeline.pending.insert(pipeline.pending.begin(),
                          pipeline.ack_queue.begin(),
                          pipeline.ack_queue.end());
  pipeline.ack_queue.clear();
  error_pipelines_.insert(pipeline.id);
  pipeline_error_index_[pipeline.id] = error_index;
  recover_next_error_pipeline();
}

void SmarthOutputStream::recover_next_error_pipeline() {
  if (recovery_running_ || error_pipelines_.empty() || finished_) return;
  recovery_running_ = true;
  const PipelineId id = *error_pipelines_.begin();
  ClientPipeline* pipeline = find_pipeline(id);
  SMARTH_CHECK(pipeline != nullptr);
  int error_index = -1;
  if (auto it = pipeline_error_index_.find(id);
      it != pipeline_error_index_.end()) {
    error_index = it->second;
    pipeline_error_index_.erase(it);
  }

  // Everything before the first un-acked packet is gone from the client's
  // resend buffer; recovery must not sync survivors below that offset.
  const Bytes durable_floor =
      pipeline->pending.empty()
          ? Bytes{0}
          : pipeline->pending.front().seq_in_block *
                deps_.config.transfer_payload();
  auto recovery = std::make_unique<hdfs::BlockRecovery>(
      deps_, client_, client_node_, id, pipeline->block,
      pipeline->block_bytes, durable_floor, pipeline->targets, error_index,
      [this, id](Result<RecoveryOutcome> result) {
        if (finished_) return;  // aborted (writer crash) mid-recovery
        recovery_running_ = false;
        error_pipelines_.erase(id);
        note_recovery_end(id);
        if (!result.ok()) {
          finish(true, result.error().to_string());
          return;
        }
        stats_.quarantine_events += result.value().quarantined;
        if (result.value().under_replicated) {
          ++stats_.under_replication_events;
        }
        resume_recovered_pipeline(id, result.value().targets,
                                  result.value().sync_offset);
        // Algorithm 4 line 3-6: drain the rest of the error set, then line 7:
        // the interrupted transfer restarts via pump_stream/advance_block.
        recover_next_error_pipeline();
        if (error_pipelines_.empty()) {
          pump_stream();
          advance_block();
        }
      });
  hdfs::BlockRecovery* raw = recovery.get();
  recoveries_.push_back(std::move(recovery));
  raw->run();
}

void SmarthOutputStream::resume_recovered_pipeline(PipelineId old_id,
                                                   std::vector<NodeId> targets,
                                                   Bytes sync_offset) {
  ClientPipeline* old_pipeline = find_pipeline(old_id);
  SMARTH_CHECK(old_pipeline != nullptr);
  const std::int64_t resume_packets =
      sync_offset / deps_.config.transfer_payload();
  std::deque<hdfs::ProducedPacket> pending = std::move(old_pipeline->pending);
  while (!pending.empty() && pending.front().seq_in_block < resume_packets) {
    pending.pop_front();
  }
  const std::int64_t block_index = old_pipeline->block_index;
  LocatedBlock located{old_pipeline->block, std::move(targets)};
  const bool was_streaming = streaming_ == old_id;
  pipelines_.erase(old_id);

  ClientPipeline& fresh = create_pipeline(block_index, located, sync_offset,
                                          /*smarth_mode=*/true);
  fresh.pending = std::move(pending);
  if (was_streaming) streaming_ = fresh.id;
  SMARTH_DEBUG("smarth") << "resumed " << old_id.to_string() << " as "
                         << fresh.id.to_string() << " pending="
                         << fresh.pending.size() << " resume=" << sync_offset;
  arm_watchdog(fresh);
}

}  // namespace smarth::core
