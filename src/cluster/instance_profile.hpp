// Amazon EC2 instance profiles (paper Table I). The experiments exercise the
// instance types only through their resource rates, which is what these
// profiles carry: NIC bandwidth as measured by the paper, disk bandwidth of
// the ephemeral store, and per-packet client production cost Tc (CPU-bound,
// hence scaled by ECU count).
#pragma once

#include <string>
#include <vector>

#include "common/units.hpp"

namespace smarth::cluster {

struct InstanceProfile {
  std::string name;
  double memory_gb = 0.0;
  int ecus = 0;
  /// NIC bandwidth (paper Table I: ~216 Mbps small, ~376 Mbps medium/large).
  Bandwidth network;
  /// Sustained write bandwidth of the local ephemeral disk.
  Bandwidth disk_write;
  /// Per-operation disk overhead (seek/metadata amortization per packet).
  SimDuration disk_op_overhead = microseconds(50);
  /// Per-packet production time Tc on a client of this type: read 64 KiB
  /// from the local source, checksum it, frame the packet. CPU-bound, so
  /// slower on 1-ECU instances.
  SimDuration packet_production_time = microseconds(800);
};

/// The three paper instance types.
InstanceProfile small_instance();
InstanceProfile medium_instance();
InstanceProfile large_instance();

/// Lookup by name ("small" / "medium" / "large").
InstanceProfile instance_by_name(const std::string& name);

/// All profiles, for the Table I bench.
std::vector<InstanceProfile> all_instance_profiles();

}  // namespace smarth::cluster
