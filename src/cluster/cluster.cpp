#include "cluster/cluster.hpp"

#include "common/check.hpp"
#include "common/log.hpp"
#include "model/cost_model.hpp"
#include "smarth/global_optimizer.hpp"
#include "smarth/smarth_stream.hpp"

namespace smarth::cluster {

const char* protocol_name(Protocol protocol) {
  return protocol == Protocol::kHdfs ? "HDFS" : "SMARTH";
}

Cluster::Cluster(ClusterSpec spec) : spec_(std::move(spec)) {
  // Block fidelity: derive the macro-transfer unit from the analytic skew
  // bound unless the spec pinned one explicitly. Replication depth is the
  // store-and-forward pipeline depth the coarsening must stay honest across.
  if (spec_.hdfs.fidelity == hdfs::DataFidelity::kBlock &&
      spec_.hdfs.block_transfer_unit <= 0) {
    spec_.hdfs.block_transfer_unit = model::coalesced_transfer_unit(
        spec_.hdfs.block_size, spec_.hdfs.packet_payload,
        spec_.hdfs.replication, spec_.hdfs.block_fidelity_tolerance,
        spec_.hdfs.max_outstanding_packets);
  }
  sim_ = std::make_unique<sim::Simulation>(spec_.seed);
  network_ = std::make_unique<net::Network>(*sim_, spec_.network);

  // Hosts. The namenode goes first so its NodeId is stable, then datanodes,
  // then client hosts.
  const NodeId nn_node = network_->add_node(
      spec_.namenode.name, spec_.namenode.rack, spec_.namenode.profile.network);

  rpc_ = std::make_unique<rpc::RpcBus>(*network_);

  hdfs::SinkResolver resolver;
  resolver.packet_sink = [this](NodeId node) -> hdfs::PacketSink* {
    return resolve_datanode(node);
  };
  resolver.ack_sink = [this](NodeId node, PipelineId pipeline) {
    return resolve_ack_sink(node, pipeline);
  };
  resolver.read_sink = [this](NodeId node, hdfs::ReadId read) {
    return resolve_read_sink(node, read);
  };
  transport_ = std::make_unique<hdfs::Transport>(*network_, spec_.hdfs,
                                                 std::move(resolver));

  namenode_ = std::make_unique<hdfs::Namenode>(*sim_, network_->topology(),
                                               spec_.hdfs, nn_node);

  // Control-plane capacity model: when enabled, namenode RPCs serialize
  // through a ServiceQueue at per-op cost (admission control adds bounded
  // depth, priorities, shedding, batching). Installed before any datanode
  // starts so the very first heartbeats already ride the queue.
  if (spec_.hdfs.nn_service_model || spec_.hdfs.nn_admission_control) {
    rpc::ServiceQueue::Config qc;
    qc.admission_control = spec_.hdfs.nn_admission_control;
    qc.cost_heartbeat = spec_.hdfs.nn_cost_heartbeat;
    qc.cost_meta = spec_.hdfs.nn_cost_meta;
    qc.cost_add_block = spec_.hdfs.nn_cost_add_block;
    qc.queue_capacity = spec_.hdfs.nn_queue_capacity;
    qc.heartbeat_batch_max = spec_.hdfs.nn_heartbeat_batch_max;
    qc.batch_marginal_cost = spec_.hdfs.nn_batch_marginal_cost;
    qc.per_tenant_addblock_cap = spec_.hdfs.nn_client_addblock_cap;
    nn_service_queue_ = std::make_unique<rpc::ServiceQueue>(*sim_, qc);
    rpc_->set_service_queue(nn_node, nn_service_queue_.get());
  }

  // Durability: every namespace mutation journals into the edit log, and the
  // checkpointer periodically snapshots the namenode into an fsimage and
  // truncates the log. Restart replays fsimage + tail; see restart_namenode().
  edit_log_ = std::make_unique<hdfs::EditLog>();
  namenode_->attach_edit_log(edit_log_.get());
  checkpointer_ = std::make_unique<hdfs::FsImageCheckpointer>(
      *sim_, *namenode_, *edit_log_, spec_.hdfs.checkpoint_interval);
  checkpointer_->start();

  for (const NodeSpec& node_spec : spec_.datanodes) {
    const NodeId node = network_->add_node(node_spec.name, node_spec.rack,
                                           node_spec.profile.network);
    hdfs::Datanode::Options options;
    options.disk_write_bandwidth = node_spec.profile.disk_write;
    options.disk_op_overhead = node_spec.profile.disk_op_overhead;
    auto dn = std::make_unique<hdfs::Datanode>(*sim_, *transport_, *rpc_,
                                               *namenode_, spec_.hdfs, node,
                                               options);
    dn->set_peer_resolver(
        [this](NodeId peer) { return resolve_datanode(peer); });
    dn->start();
    datanode_ids_.push_back(node);
    datanodes_.push_back(std::move(dn));
  }

  add_client(spec_.client.rack, spec_.client.profile);

  // Lease recovery is part of the namenode's normal duty cycle, not an
  // opt-in: a writer crash must never leave a file under-construction
  // forever. The executor routes the recovery command to the elected
  // primary datanode as an RPC, mirroring the re-replication wiring.
  namenode_->enable_lease_recovery(
      [this](NodeId primary, const hdfs::UcRecoveryCommand& cmd) {
        hdfs::Datanode* dn = resolve_datanode(primary);
        if (dn == nullptr || dn->crashed()) return false;
        rpc_->notify(namenode_->node_id(), primary,
                     [dn, cmd] { dn->recover_uc_block(cmd); });
        return true;
      });

  // Corrupt-replica invalidation is likewise always on: when a bad replica
  // is reported the namenode commands the owner to drop it. The notify to a
  // crashed host is dropped by the bus; the heartbeat's incremental block
  // report then re-surfaces the replica and the namenode re-invalidates.
  namenode_->set_invalidation_executor([this](NodeId node, BlockId block) {
    hdfs::Datanode* dn = resolve_datanode(node);
    if (dn == nullptr) return;
    rpc_->notify(namenode_->node_id(), node,
                 [dn, block] { dn->invalidate_replica(block); });
  });

  // Flight recorder: when a recorder is installed on this thread, drive its
  // sampler from this cluster's simulated clock. With no recorder (the
  // default) nothing is scheduled and the event timeline is untouched; with
  // one, sampling only *reads* state, so the timeline shifts for no seed.
  if (metrics::flight_active()) {
    metrics::FlightRecorder* rec = metrics::flight_recorder();
    rec->set_pending_summary_provider(
        [this] { return sim_->pending_category_summary(); });
    flight_sampler_ = std::make_unique<sim::PeriodicTask>(
        *sim_, rec->sample_interval(), [this, rec] {
          update_flight_gauges();
          rec->sample(sim_->now());
        });
    flight_sampler_->start_with_delay(0);
  }
}

Cluster::~Cluster() {
  // The watchdog dump provider captures this cluster's simulation; a
  // recorder outliving the cluster (the normal case) must not call into a
  // dead object.
  if (metrics::flight_active()) {
    metrics::flight_recorder()->set_pending_summary_provider(nullptr);
  }
}

void Cluster::update_flight_gauges() {
  metrics::Registry& reg = metrics::global_registry();
  if (namenode_crashed_) {
    // The process is down: liveness is zero by definition, and the replica
    // map is unreadable, so the backlog gauge keeps its last value.
    reg.gauge("nn.live_datanodes").set(0.0);
    return;
  }
  reg.gauge("nn.live_datanodes").set(
      static_cast<double>(namenode_->alive_datanodes().size()));
  if (!namenode_->safe_mode()) {
    reg.gauge("nn.under_replicated").set(
        static_cast<double>(namenode_->under_replicated_blocks().size()));
  }
}

std::size_t Cluster::add_client(const std::string& rack,
                                const InstanceProfile& profile) {
  const std::size_t index = clients_.size();
  const std::string name =
      index == 0 ? spec_.client.name : "client" + std::to_string(index);
  const NodeId node = network_->add_node(name, rack, profile.network);
  ClientRuntime runtime;
  runtime.node = node;
  runtime.tracker = std::make_unique<core::SpeedTracker>();
  runtime.quarantine = std::make_unique<hdfs::QuarantineList>(
      *sim_, spec_.hdfs.quarantine_duration);
  runtime.dfs = std::make_unique<hdfs::DfsClient>(
      *sim_, *rpc_, *namenode_, spec_.hdfs, client_ids_.next(), node);
  core::SpeedTracker* tracker = runtime.tracker.get();
  runtime.dfs->start_heartbeat(
      [tracker] { return tracker->heartbeat_records(); });
  clients_.push_back(std::move(runtime));
  return index;
}

hdfs::Datanode& Cluster::datanode(std::size_t index) {
  SMARTH_CHECK(index < datanodes_.size());
  return *datanodes_[index];
}

NodeId Cluster::datanode_id(std::size_t index) const {
  SMARTH_CHECK(index < datanode_ids_.size());
  return datanode_ids_[index];
}

NodeId Cluster::client_node(std::size_t client_index) const {
  SMARTH_CHECK(client_index < clients_.size());
  return clients_[client_index].node;
}

hdfs::DfsClient& Cluster::client(std::size_t client_index) {
  SMARTH_CHECK(client_index < clients_.size());
  return *clients_[client_index].dfs;
}

core::SpeedTracker& Cluster::speed_tracker(std::size_t client_index) {
  SMARTH_CHECK(client_index < clients_.size());
  return *clients_[client_index].tracker;
}

hdfs::Datanode* Cluster::resolve_datanode(NodeId node) {
  for (std::size_t i = 0; i < datanode_ids_.size(); ++i) {
    if (datanode_ids_[i] == node) return datanodes_[i].get();
  }
  return nullptr;
}

hdfs::AckSink* Cluster::resolve_ack_sink(NodeId node, PipelineId pipeline) {
  for (auto& stream : streams_) {
    if (stream->client_node() == node && stream->owns_pipeline(pipeline)) {
      return stream.get();
    }
  }
  return nullptr;
}

hdfs::ReadSink* Cluster::resolve_read_sink(NodeId node, hdfs::ReadId read) {
  for (auto& reader : readers_) {
    if (reader->client_node() == node && reader->owns_read(read)) {
      return reader.get();
    }
  }
  return nullptr;
}

void Cluster::throttle_cross_rack(Bandwidth bw) {
  network_->set_cross_rack_throttle(bw);
}

void Cluster::throttle_datanode(std::size_t index, Bandwidth bw) {
  network_->set_node_nic(datanode_id(index), bw);
}

void Cluster::crash_datanode_at(std::size_t index, SimTime at) {
  hdfs::Datanode* dn = &datanode(index);
  sim_->schedule_at(at, [dn] { dn->crash(); });
}

void Cluster::restart_datanode_at(std::size_t index, SimTime at) {
  hdfs::Datanode* dn = &datanode(index);
  sim_->schedule_at(at, [dn] { dn->restart(); });
}

void Cluster::crash_client(std::size_t index) {
  SMARTH_CHECK(index < clients_.size());
  ClientRuntime& runtime = clients_[index];
  if (runtime.crashed) return;
  runtime.crashed = true;
  // Order matters: stop the heartbeat first so no renewal is in flight,
  // then sever the host. The lease keeps its last renewal timestamp and
  // ages toward the soft/hard limits from there.
  runtime.dfs->stop_heartbeat();
  rpc_->set_host_down(runtime.node, true);
  network_->set_node_isolated(runtime.node, true);
  for (auto& stream : streams_) {
    if (stream->client_node() == runtime.node && !stream->finished()) {
      stream->abort("client crashed");
    }
  }
  SMARTH_WARN("cluster") << "client " << index << " crashed";
}

void Cluster::restart_client(std::size_t index) {
  SMARTH_CHECK(index < clients_.size());
  ClientRuntime& runtime = clients_[index];
  if (!runtime.crashed) return;
  runtime.crashed = false;
  rpc_->set_host_down(runtime.node, false);
  network_->set_node_isolated(runtime.node, false);
  // A rebooted host is a fresh writer process: old streams are gone (they
  // were aborted at crash time), and the process carries a new client
  // identity so its heartbeat does not renew the dead process's leases —
  // those must expire so the lease monitor recovers the files it left
  // under construction.
  runtime.dfs->reincarnate(client_ids_.next());
  runtime.dfs->resume_heartbeat();
  SMARTH_INFO("cluster") << "client " << index << " restarted";
}

void Cluster::crash_client_at(std::size_t index, SimTime at) {
  SMARTH_CHECK(index < clients_.size());
  sim_->schedule_at(at, [this, index] { crash_client(index); });
}

void Cluster::restart_client_at(std::size_t index, SimTime at) {
  SMARTH_CHECK(index < clients_.size());
  sim_->schedule_at(at, [this, index] { restart_client(index); });
}

bool Cluster::client_crashed(std::size_t index) const {
  SMARTH_CHECK(index < clients_.size());
  return clients_[index].crashed;
}

hdfs::QuarantineList& Cluster::quarantine(std::size_t client_index) {
  SMARTH_CHECK(client_index < clients_.size());
  return *clients_[client_index].quarantine;
}

void Cluster::crash_namenode() {
  if (namenode_crashed_) return;
  namenode_crashed_ = true;
  nn_crashed_at_ = sim_->now();
  namenode_->crash();
  // Client calls to a down host fall into rpc::call_with_retry backoff;
  // heartbeats and blockReceived notifies are dropped outright.
  rpc_->set_host_down(namenode_->node_id(), true);
  network_->set_node_isolated(namenode_->node_id(), true);
  SMARTH_WARN("cluster") << "namenode crashed";
}

void Cluster::restart_namenode() {
  SMARTH_CHECK_MSG(namenode_crashed_,
                   "restart_namenode: namenode is not down");
  // The recovery inputs are fixed at initiation: nothing journals while the
  // process is dead, so image + tail cannot move under the scheduled replay.
  const hdfs::NamenodeImage image = checkpointer_->latest();
  std::vector<hdfs::EditOp> tail = edit_log_->tail(image.last_txid);
  const SimDuration delay =
      spec_.hdfs.nn_restart_process_delay +
      spec_.hdfs.edit_replay_op_cost * static_cast<std::int64_t>(tail.size());
  sim_->schedule_after(delay, "nn-restart", [this, image,
                                             tail = std::move(tail)] {
    complete_namenode_recovery(image, tail, /*failover=*/false);
  });
}

void Cluster::failover_namenode() {
  SMARTH_CHECK_MSG(namenode_crashed_,
                   "failover_namenode: namenode is not down");
  SMARTH_CHECK_MSG(standby_ != nullptr,
                   "failover_namenode: enable_standby() was never called");
  // Promote the standby: only the ops past its tail position need replaying,
  // so the downtime is strictly below a cold restart from the fsimage.
  standby_->stop();
  const hdfs::NamenodeImage image = standby_->image();
  std::vector<hdfs::EditOp> tail = edit_log_->tail(image.last_txid);
  const SimDuration delay =
      spec_.hdfs.nn_failover_delay +
      spec_.hdfs.edit_replay_op_cost * static_cast<std::int64_t>(tail.size());
  sim_->schedule_after(delay, "nn-failover", [this, image,
                                              tail = std::move(tail)] {
    complete_namenode_recovery(image, tail, /*failover=*/true);
  });
}

void Cluster::complete_namenode_recovery(const hdfs::NamenodeImage& image,
                                         const std::vector<hdfs::EditOp>& tail,
                                         bool failover) {
  namenode_->restart(image, tail);
  namenode_crashed_ = false;
  rpc_->set_host_down(namenode_->node_id(), false);
  network_->set_node_isolated(namenode_->node_id(), false);
  last_nn_downtime_ = sim_->now() - nn_crashed_at_;
  nn_downtimes_.push_back(last_nn_downtime_);
  nn_crashed_at_ = -1;
  if (failover) ++nn_failovers_;
  // The standby stays consistent across the outage — it tails the same log
  // the revived active journals into — so it just resumes tailing.
  if (standby_ != nullptr) standby_->start();
  SMARTH_INFO("cluster") << "namenode "
                         << (failover ? "failover" : "restart")
                         << " complete after "
                         << last_nn_downtime_ / 1'000'000 << " ms downtime ("
                         << tail.size() << " ops replayed)";
}

void Cluster::crash_namenode_at(SimTime at) {
  sim_->schedule_at(at, [this] { crash_namenode(); });
}

void Cluster::restart_namenode_at(SimTime at) {
  sim_->schedule_at(at, [this] { restart_namenode(); });
}

void Cluster::failover_namenode_at(SimTime at) {
  sim_->schedule_at(at, [this] { failover_namenode(); });
}

void Cluster::enable_standby() {
  if (standby_ != nullptr) return;
  SMARTH_CHECK_MSG(!namenode_crashed_,
                   "enable_standby: active namenode is down");
  standby_ = std::make_unique<hdfs::StandbyNamenode>(
      *sim_, network_->topology(), spec_.hdfs, namenode_->node_id(),
      *edit_log_);
  standby_->bootstrap(namenode_->capture_image(), edit_log_->last_txid());
  standby_->start();
  // Checkpoints must never truncate ops the standby has not applied yet.
  checkpointer_->set_truncate_floor(
      [this] { return standby_->applied_txid(); });
}

void Cluster::enable_rereplication(SimDuration scan_interval) {
  namenode_->enable_rereplication(
      [this](NodeId source, NodeId target, BlockId block, Bytes length,
             std::function<void(bool)> done) {
        hdfs::Datanode* source_dn = resolve_datanode(source);
        if (source_dn == nullptr || source_dn->crashed()) {
          done(false);
          return;
        }
        // The namenode's copy command travels as an RPC to the source,
        // which streams the replica to the target and finalizes it there.
        rpc_->call_async<bool>(
            namenode_->node_id(), source,
            [source_dn, block, target, length](
                std::function<void(bool)> respond) {
              source_dn->transfer_replica(block, target, length,
                                          std::move(respond),
                                          /*finalize_at_dest=*/true);
            },
            std::move(done));
      },
      scan_interval);
}

hdfs::StreamDeps Cluster::make_stream_deps(std::size_t client_index) {
  return hdfs::StreamDeps{
      *sim_,
      *transport_,
      *rpc_,
      *namenode_,
      spec_.hdfs,
      pipeline_ids_,
      [this](NodeId node) { return resolve_datanode(node); },
      clients_[client_index].quarantine.get()};
}

void Cluster::apply_placement_policy(Protocol protocol) {
  if (active_policy_ == protocol) return;
  active_policy_ = protocol;
  if (protocol == Protocol::kSmarth && spec_.hdfs.smarth_global_opt) {
    namenode_->set_placement_policy(
        std::make_unique<core::GlobalOptimizerPolicy>());
  } else {
    namenode_->set_placement_policy(
        std::make_unique<hdfs::DefaultPlacementPolicy>());
  }
}

void Cluster::prune_finished_endpoints() {
  // Finished streams/readers cancel their pending events and drop late RPC
  // responses via liveness tokens, so removing them here is safe; workloads
  // that loop over thousands of transfers would otherwise accumulate them.
  std::erase_if(streams_,
                [](const auto& stream) { return stream->finished(); });
  std::erase_if(readers_,
                [](const auto& reader) { return reader->finished(); });
}

void Cluster::upload(const std::string& path, Bytes size, Protocol protocol,
                     UploadCallback on_done, std::size_t client_index) {
  SMARTH_CHECK(client_index < clients_.size());
  prune_finished_endpoints();
  apply_placement_policy(protocol);
  ClientRuntime& runtime = clients_[client_index];
  hdfs::DfsClient* dfs = runtime.dfs.get();
  core::SpeedTracker* tracker = runtime.tracker.get();

  dfs->create_file(path, [this, path, size, protocol, dfs, tracker,
                          client_index,
                          on_done = std::move(on_done)](
                             Result<FileId> result) mutable {
    if (!result.ok()) {
      hdfs::StreamStats stats;
      stats.client = dfs->id();
      stats.file_size = size;
      stats.failed = true;
      stats.failure_reason = "create failed: " + result.error().to_string();
      if (on_done) on_done(stats);
      return;
    }
    std::unique_ptr<hdfs::OutputStreamBase> stream;
    if (protocol == Protocol::kSmarth) {
      stream = std::make_unique<core::SmarthOutputStream>(
          make_stream_deps(client_index), dfs->id(), dfs->node(),
          result.value(), size, *tracker, std::move(on_done));
    } else {
      stream = std::make_unique<hdfs::DfsOutputStream>(
          make_stream_deps(client_index), dfs->id(), dfs->node(),
          result.value(), size, std::move(on_done));
    }
    hdfs::OutputStreamBase* raw = stream.get();
    streams_.push_back(std::move(stream));
    raw->start();
  });
}

hdfs::StreamStats Cluster::run_upload(const std::string& path, Bytes size,
                                      Protocol protocol,
                                      std::size_t client_index) {
  std::optional<hdfs::StreamStats> stats;
  upload(path, size, protocol,
         [&stats](const hdfs::StreamStats& s) { stats = s; }, client_index);
  // Heartbeats run forever; drive the simulation in bounded time slices
  // until the upload reports completion rather than until the queue drains
  // (which would never happen). A generous simulated-time ceiling turns
  // protocol hangs into loud failures instead of spins.
  const SimTime deadline = sim_->now() + seconds(100'000);
  while (!stats.has_value()) {
    SMARTH_CHECK(sim_->run_until(sim_->now() + milliseconds(250)));
    SMARTH_CHECK_MSG(sim_->now() < deadline,
                     "upload did not complete within the simulated-time "
                     "ceiling — protocol hang");
  }
  return *stats;
}

hdfs::DfsInputStream::Deps Cluster::make_read_deps() {
  return hdfs::DfsInputStream::Deps{
      *sim_, *transport_, *rpc_, *namenode_, spec_.hdfs, read_ids_,
      [this](NodeId node) { return resolve_datanode(node); }};
}

void Cluster::download(const std::string& path, DownloadCallback on_done,
                       std::size_t client_index) {
  SMARTH_CHECK(client_index < clients_.size());
  prune_finished_endpoints();
  ClientRuntime& runtime = clients_[client_index];
  auto reader = std::make_unique<hdfs::DfsInputStream>(
      make_read_deps(), runtime.dfs->id(), runtime.node, path,
      std::move(on_done));
  hdfs::DfsInputStream* raw = reader.get();
  readers_.push_back(std::move(reader));
  raw->start();
}

hdfs::ReadStats Cluster::run_download(const std::string& path,
                                      std::size_t client_index) {
  std::optional<hdfs::ReadStats> stats;
  download(path, [&stats](const hdfs::ReadStats& s) { stats = s; },
           client_index);
  const SimTime deadline = sim_->now() + seconds(100'000);
  while (!stats.has_value()) {
    SMARTH_CHECK(sim_->run_until(sim_->now() + milliseconds(250)));
    SMARTH_CHECK_MSG(sim_->now() < deadline, "download hang");
  }
  return *stats;
}

Bytes Cluster::total_finalized_replica_bytes() const {
  Bytes total = 0;
  for (const auto& dn : datanodes_) {
    for (const auto& replica : dn->block_store().all_replicas()) {
      if (replica.state == storage::ReplicaState::kFinalized) {
        total += replica.bytes;
      }
    }
  }
  return total;
}

bool Cluster::file_fully_replicated(const std::string& path) const {
  const hdfs::FileEntry* entry = namenode_->file_by_path(path);
  if (entry == nullptr) return false;
  for (BlockId block : entry->blocks) {
    int finalized = 0;
    for (const auto& dn : datanodes_) {
      const auto replica = dn->block_store().replica(block);
      if (replica.ok() &&
          replica.value().state == storage::ReplicaState::kFinalized) {
        ++finalized;
      }
    }
    if (finalized < spec_.hdfs.replication) return false;
  }
  return true;
}

}  // namespace smarth::cluster
