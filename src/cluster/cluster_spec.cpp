#include "cluster/cluster_spec.hpp"

#include "common/check.hpp"

namespace smarth::cluster {

namespace {

constexpr const char* kRack0 = "/rack0";
constexpr const char* kRack1 = "/rack1";

NodeSpec make_node(std::string name, std::string rack,
                   const InstanceProfile& profile) {
  return NodeSpec{std::move(name), std::move(rack), profile};
}

}  // namespace

ClusterSpec homogeneous_cluster(const InstanceProfile& profile,
                                std::size_t datanodes, std::uint64_t seed) {
  SMARTH_CHECK_MSG(datanodes >= 3, "need at least replication-many datanodes");
  ClusterSpec spec;
  spec.label = profile.name + "-x" + std::to_string(datanodes);
  spec.seed = seed;
  spec.namenode = make_node("nn", kRack0, profile);
  spec.client = make_node("client", kRack0, profile);
  spec.hdfs.packet_production_time = profile.packet_production_time;
  const std::size_t rack0_count = (datanodes + 1) / 2;
  for (std::size_t i = 0; i < datanodes; ++i) {
    const char* rack = i < rack0_count ? kRack0 : kRack1;
    spec.datanodes.push_back(make_node("dn" + std::to_string(i), rack,
                                       profile));
  }
  return spec;
}

ClusterSpec small_cluster(std::uint64_t seed) {
  return homogeneous_cluster(small_instance(), 9, seed);
}

ClusterSpec medium_cluster(std::uint64_t seed) {
  return homogeneous_cluster(medium_instance(), 9, seed);
}

ClusterSpec large_cluster(std::uint64_t seed) {
  return homogeneous_cluster(large_instance(), 9, seed);
}

ClusterSpec heterogeneous_cluster(std::uint64_t seed) {
  ClusterSpec spec;
  spec.label = "heterogeneous";
  spec.seed = seed;
  // One medium instance serves as the namenode (paper §V-A); the client is
  // a medium instance as well. Datanodes: 3 small, 3 medium, 3 large,
  // interleaved across the two racks so each rack mixes types.
  spec.namenode = make_node("nn", kRack0, medium_instance());
  spec.client = make_node("client", kRack0, medium_instance());
  spec.hdfs.packet_production_time =
      medium_instance().packet_production_time;
  const InstanceProfile types[] = {small_instance(), medium_instance(),
                                   large_instance()};
  int index = 0;
  for (const auto& type : types) {
    for (int i = 0; i < 3; ++i, ++index) {
      const char* rack = (index % 2 == 0) ? kRack0 : kRack1;
      spec.datanodes.push_back(make_node(
          type.name + std::to_string(i), rack, type));
    }
  }
  return spec;
}

}  // namespace smarth::cluster
