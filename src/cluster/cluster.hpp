// Assembles a runnable simulated HDFS/SMARTH cluster from a ClusterSpec:
// event engine, network fabric, RPC bus, namenode, datanodes, clients, and
// the message routing between them. This is the facade examples, tests and
// benches drive.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/cluster_spec.hpp"
#include "hdfs/datanode.hpp"
#include "hdfs/dfs_client.hpp"
#include "hdfs/edit_log.hpp"
#include "hdfs/fsimage.hpp"
#include "hdfs/input_stream.hpp"
#include "hdfs/namenode.hpp"
#include "hdfs/output_stream.hpp"
#include "hdfs/standby.hpp"
#include "hdfs/transport.hpp"
#include "net/network.hpp"
#include "rpc/rpc_bus.hpp"
#include "sim/periodic_task.hpp"
#include "sim/simulation.hpp"
#include "smarth/speed_tracker.hpp"
#include "trace/flight_recorder.hpp"

namespace smarth::cluster {

enum class Protocol { kHdfs, kSmarth };

const char* protocol_name(Protocol protocol);

class Cluster {
 public:
  explicit Cluster(ClusterSpec spec);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  // --- Accessors --------------------------------------------------------------
  sim::Simulation& sim() { return *sim_; }
  net::Network& network() { return *network_; }
  rpc::RpcBus& rpc() { return *rpc_; }
  hdfs::Namenode& namenode() { return *namenode_; }
  /// The namenode's RPC service queue when the control-plane capacity model
  /// is enabled (nn_service_model / nn_admission_control); else nullptr.
  const rpc::ServiceQueue* nn_service_queue() const {
    return nn_service_queue_.get();
  }
  const ClusterSpec& spec() const { return spec_; }
  const hdfs::HdfsConfig& config() const { return spec_.hdfs; }
  hdfs::HdfsConfig& mutable_config() { return spec_.hdfs; }

  std::size_t datanode_count() const { return datanodes_.size(); }
  hdfs::Datanode& datanode(std::size_t index);
  NodeId datanode_id(std::size_t index) const;
  std::size_t client_count() const { return clients_.size(); }
  NodeId client_node(std::size_t client_index = 0) const;
  hdfs::DfsClient& client(std::size_t client_index = 0);
  core::SpeedTracker& speed_tracker(std::size_t client_index = 0);

  /// Adds an extra client host (multi-writer scenarios). Returns its index.
  std::size_t add_client(const std::string& rack,
                         const InstanceProfile& profile);

  // --- Traffic control (the paper's tc usage) ---------------------------------
  void throttle_cross_rack(Bandwidth bw);
  void throttle_datanode(std::size_t index, Bandwidth bw);

  // --- Fault injection ---------------------------------------------------------
  void crash_datanode_at(std::size_t index, SimTime at);
  /// Crash-and-rejoin: the node reboots at `at` with its staging cleared and
  /// non-finalized replicas discarded, then re-registers with the namenode.
  void restart_datanode_at(std::size_t index, SimTime at);

  /// Writer crash: the client host vanishes — its heartbeat stops (so its
  /// lease expires), its RPC endpoint goes down, in-flight transfers from the
  /// host are severed, and every unfinished stream it owned is aborted
  /// without a complete() call. Files it was writing stay under-construction
  /// until the namenode's lease monitor recovers them.
  void crash_client(std::size_t index);
  /// The crashed host comes back (fresh process: no stream state survives).
  /// Its heartbeat resumes so a new writer on this host can hold leases.
  void restart_client(std::size_t index);
  void crash_client_at(std::size_t index, SimTime at);
  void restart_client_at(std::size_t index, SimTime at);
  bool client_crashed(std::size_t index) const;

  /// The quarantine list recovery feeds and placement consults, per client.
  hdfs::QuarantineList& quarantine(std::size_t client_index = 0);

  // --- Namenode crash / restart / failover ------------------------------------
  /// Control-plane loss: the namenode process dies. Monitors freeze, its RPC
  /// endpoint goes down (client calls fall into their retry backoff,
  /// heartbeats and blockReceived notifications are dropped) and its host is
  /// isolated from the fabric.
  void crash_namenode();
  /// Cold restart: boots a fresh namenode process from the latest fsimage
  /// checkpoint plus the edit-log tail. Service resumes after
  /// nn_restart_process_delay + edit_replay_op_cost * tail-ops, in safe mode
  /// until enough replicas are re-reported.
  void restart_namenode();
  /// Warm failover: promotes the standby (enable_standby() must have been
  /// called). Only the ops past the standby's tail position need replaying,
  /// so downtime is strictly below a cold restart's.
  void failover_namenode();
  void crash_namenode_at(SimTime at);
  void restart_namenode_at(SimTime at);
  void failover_namenode_at(SimTime at);
  bool namenode_crashed() const { return namenode_crashed_; }

  /// Brings up the warm standby: bootstraps from the active's current image
  /// and starts tailing the edit log. Idempotent.
  void enable_standby();
  bool standby_enabled() const { return standby_ != nullptr; }
  const hdfs::StandbyNamenode* standby() const { return standby_.get(); }

  hdfs::EditLog& edit_log() { return *edit_log_; }
  const hdfs::FsImageCheckpointer& checkpointer() const {
    return *checkpointer_;
  }
  /// Downtime of the most recent completed outage (-1 before the first).
  SimDuration last_namenode_downtime() const { return last_nn_downtime_; }
  /// Every completed outage's downtime, in order.
  const std::vector<SimDuration>& namenode_downtimes() const {
    return nn_downtimes_;
  }
  std::uint64_t namenode_failovers() const { return nn_failovers_; }

  /// Turns on the namenode's background re-replication of under-replicated
  /// blocks (off by default; the paper's experiments do not rely on it).
  void enable_rereplication(SimDuration scan_interval = seconds(5));

  // --- Uploads -----------------------------------------------------------------
  using UploadCallback = std::function<void(const hdfs::StreamStats&)>;
  /// Starts an asynchronous upload (create + stream). The callback fires when
  /// the stream closes (successfully or not). Returns a handle for live
  /// inspection (pipeline counts, stats so far); owned by the cluster, valid
  /// for its lifetime. May complete with nullptr stream if create() fails
  /// before a stream exists.
  void upload(const std::string& path, Bytes size, Protocol protocol,
              UploadCallback on_done, std::size_t client_index = 0);
  /// The most recently created output stream (nullptr before the first
  /// create() response arrives); exposed for live sampling in examples.
  hdfs::OutputStreamBase* latest_stream() {
    return streams_.empty() ? nullptr : streams_.back().get();
  }

  /// Convenience: upload one file, run the simulation to completion, return
  /// the stream stats.
  hdfs::StreamStats run_upload(const std::string& path, Bytes size,
                               Protocol protocol,
                               std::size_t client_index = 0);

  // --- Reads -------------------------------------------------------------------
  using DownloadCallback = std::function<void(const hdfs::ReadStats&)>;
  /// Starts an asynchronous whole-file read (nearest replica per block,
  /// failover on errors). Protocol-independent: HDFS reads have no pipeline.
  void download(const std::string& path, DownloadCallback on_done,
                std::size_t client_index = 0);
  /// Convenience: read one file, run the simulation until it completes.
  hdfs::ReadStats run_download(const std::string& path,
                               std::size_t client_index = 0);

  /// Verification helper: total finalized replica bytes across all
  /// datanodes (should equal replication * file bytes after an upload).
  Bytes total_finalized_replica_bytes() const;
  /// Verification helper: every block of `path` has `replication` finalized
  /// replicas of the right length across the datanodes.
  bool file_fully_replicated(const std::string& path) const;

 private:
  struct ClientRuntime {
    NodeId node;
    std::unique_ptr<hdfs::DfsClient> dfs;
    std::unique_ptr<core::SpeedTracker> tracker;
    std::unique_ptr<hdfs::QuarantineList> quarantine;
    bool crashed = false;
  };

  hdfs::StreamDeps make_stream_deps(std::size_t client_index = 0);
  hdfs::DfsInputStream::Deps make_read_deps();
  void prune_finished_endpoints();
  void apply_placement_policy(Protocol protocol);
  hdfs::Datanode* resolve_datanode(NodeId node);
  hdfs::AckSink* resolve_ack_sink(NodeId node, PipelineId pipeline);
  hdfs::ReadSink* resolve_read_sink(NodeId node, hdfs::ReadId read);
  /// Shared tail of restart_namenode()/failover_namenode(): restores the
  /// process from `image` + `tail` and lifts the RPC/network isolation.
  void complete_namenode_recovery(const hdfs::NamenodeImage& image,
                                  const std::vector<hdfs::EditOp>& tail,
                                  bool failover);
  /// Refreshes the registry gauges that have no natural event-driven update
  /// site (namenode liveness/backlog), called just before each flight-
  /// recorder sample.
  void update_flight_gauges();

  ClusterSpec spec_;
  std::unique_ptr<sim::Simulation> sim_;
  std::unique_ptr<net::Network> network_;
  std::unique_ptr<rpc::RpcBus> rpc_;
  std::unique_ptr<rpc::ServiceQueue> nn_service_queue_;
  std::unique_ptr<hdfs::Transport> transport_;
  std::unique_ptr<hdfs::Namenode> namenode_;
  std::unique_ptr<hdfs::EditLog> edit_log_;
  std::unique_ptr<hdfs::FsImageCheckpointer> checkpointer_;
  std::unique_ptr<hdfs::StandbyNamenode> standby_;
  bool namenode_crashed_ = false;
  SimTime nn_crashed_at_ = -1;
  SimDuration last_nn_downtime_ = -1;
  std::vector<SimDuration> nn_downtimes_;
  std::uint64_t nn_failovers_ = 0;
  std::vector<std::unique_ptr<hdfs::Datanode>> datanodes_;
  std::vector<NodeId> datanode_ids_;
  std::vector<ClientRuntime> clients_;
  std::vector<std::unique_ptr<hdfs::OutputStreamBase>> streams_;
  std::vector<std::unique_ptr<hdfs::DfsInputStream>> readers_;
  IdGenerator<PipelineId> pipeline_ids_;
  IdGenerator<ClientId> client_ids_;
  IdGenerator<hdfs::ReadId> read_ids_;
  std::optional<Protocol> active_policy_;
  /// Drives the installed flight recorder on simulated time; null when no
  /// recorder is installed, so a disabled recorder schedules nothing.
  std::unique_ptr<sim::PeriodicTask> flight_sampler_;
};

}  // namespace smarth::cluster
