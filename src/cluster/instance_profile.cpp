#include "cluster/instance_profile.hpp"

#include "common/check.hpp"

namespace smarth::cluster {

InstanceProfile small_instance() {
  InstanceProfile p;
  p.name = "small";
  p.memory_gb = 1.7;
  p.ecus = 1;
  p.network = Bandwidth::mbps(216);
  // m1.small ephemeral storage is slow and shared; 1 ECU makes the
  // client-side checksum+read path noticeably slower per packet.
  p.disk_write = Bandwidth::mega_bytes_per_second(60);
  p.disk_op_overhead = microseconds(80);
  p.packet_production_time = microseconds(1800);
  return p;
}

InstanceProfile medium_instance() {
  InstanceProfile p;
  p.name = "medium";
  p.memory_gb = 3.75;
  p.ecus = 2;
  p.network = Bandwidth::mbps(376);
  p.disk_write = Bandwidth::mega_bytes_per_second(90);
  p.disk_op_overhead = microseconds(60);
  p.packet_production_time = microseconds(1000);
  return p;
}

InstanceProfile large_instance() {
  InstanceProfile p;
  p.name = "large";
  p.memory_gb = 7.5;
  p.ecus = 4;
  p.network = Bandwidth::mbps(376);
  p.disk_write = Bandwidth::mega_bytes_per_second(110);
  p.disk_op_overhead = microseconds(50);
  p.packet_production_time = microseconds(700);
  return p;
}

InstanceProfile instance_by_name(const std::string& name) {
  if (name == "small") return small_instance();
  if (name == "medium") return medium_instance();
  if (name == "large") return large_instance();
  SMARTH_CHECK_MSG(false, "unknown instance type: " << name);
  return {};
}

std::vector<InstanceProfile> all_instance_profiles() {
  return {small_instance(), medium_instance(), large_instance()};
}

}  // namespace smarth::cluster
