// Declarative cluster descriptions and builders for the paper's four
// evaluation clusters: homogeneous small / medium / large (one namenode +
// nine datanodes split across two racks) and the heterogeneous mix
// (3 small + 4 medium + 3 large, one medium instance acting as namenode).
#pragma once

#include <string>
#include <vector>

#include "cluster/instance_profile.hpp"
#include "hdfs/types.hpp"
#include "net/network.hpp"

namespace smarth::cluster {

struct NodeSpec {
  std::string name;
  std::string rack;
  InstanceProfile profile;
};

struct ClusterSpec {
  std::string label;
  NodeSpec namenode;
  NodeSpec client;
  std::vector<NodeSpec> datanodes;
  hdfs::HdfsConfig hdfs;
  net::NetworkConfig network;
  std::uint64_t seed = 42;

  std::size_t datanode_count() const { return datanodes.size(); }
};

/// Homogeneous cluster of `datanodes` nodes of one instance type, split
/// across two racks (ceil/2 on rack0, rest on rack1), with the namenode and
/// the uploading client on rack0 — the paper's two-rack scenario (§V-B1).
ClusterSpec homogeneous_cluster(const InstanceProfile& profile,
                                std::size_t datanodes = 9,
                                std::uint64_t seed = 42);

/// The paper's heterogeneous cluster (§V-B3): 3 small + 4 medium + 3 large
/// instances; one medium instance is the namenode, the rest are datanodes
/// (3 small, 3 medium, 3 large), spread over two racks.
ClusterSpec heterogeneous_cluster(std::uint64_t seed = 42);

/// Convenience: the three homogeneous paper clusters by name.
ClusterSpec small_cluster(std::uint64_t seed = 42);
ClusterSpec medium_cluster(std::uint64_t seed = 42);
ClusterSpec large_cluster(std::uint64_t seed = 42);

}  // namespace smarth::cluster
