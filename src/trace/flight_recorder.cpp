#include "trace/flight_recorder.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/check.hpp"
#include "trace/chrome_trace.hpp"
#include "trace/metrics_registry.hpp"
#include "trace/trace_recorder.hpp"

namespace smarth::metrics {

thread_local FlightRecorder* g_flight_recorder = nullptr;

void install_flight_recorder(FlightRecorder* r) { g_flight_recorder = r; }

std::vector<SeriesSpec> default_series() {
  using K = SeriesKind;
  return {
      {"nn.rpc.admitted", K::kCounterDelta, "nn.rpc.admitted", 0.99},
      {"nn.rpc.shed", K::kCounterDelta, "nn.rpc.shed", 0.99},
      {"rpc.retries", K::kCounterDelta, "rpc.retries", 0.99},
      {"rpc.overload_retries", K::kCounterDelta, "rpc.overload_retries", 0.99},
      {"rpc.give_ups", K::kCounterDelta, "rpc.give_ups", 0.99},
      {"client.bytes_acked", K::kCounterDelta, "client.bytes_acked", 0.99},
      {"workload.jobs_completed", K::kCounterDelta, "workload.jobs_completed",
       0.99},
      {"workload.jobs_failed", K::kCounterDelta, "workload.jobs_failed", 0.99},
      {"nn.rpc.queue_depth", K::kGauge, "nn.rpc.queue_depth", 0.99},
      {"workload.jobs_in_flight", K::kGauge, "workload.jobs_in_flight", 0.99},
      {"client.streams_open", K::kGauge, "client.streams_open", 0.99},
      {"client.reads_open", K::kGauge, "client.reads_open", 0.99},
      {"read.hedges_in_flight", K::kGauge, "read.hedges_in_flight", 0.99},
      {"nn.under_replicated", K::kGauge, "nn.under_replicated", 0.99},
      {"nn.live_datanodes", K::kGauge, "nn.live_datanodes", 0.99},
      {"client.addblock_p99_ns", K::kHistogramQuantile, "client.addblock_ns",
       0.99},
      {"read.gap_p99_ns", K::kHistogramQuantile, "read.gap_ns", 0.99},
  };
}

std::vector<WatchdogSpec> default_watchdogs() {
  using K = WatchdogSpec::Kind;
  return {
      // Streams are open but nothing has been acked for a sustained stretch:
      // the data plane is wedged (retry storm, dead pipelines, lost acks).
      // The window must sit above the longest *legitimate* zero-progress gap
      // a recovering run can show — chaos soaks pause goodput across a 3 s
      // namenode outage plus safe-mode plus retry backoff — while still
      // firing well inside an overload collapse, whose drain phase holds
      // zero goodput for minutes (see DESIGN.md §14 for the calibration).
      {"goodput_stall", K::kStall, "client.bytes_acked", "client.streams_open",
       0.0, 45},
      // An unbounded FIFO past any sane depth for 10 straight ticks: the
      // admission-controlled queue is capped at 32, so a sustained depth
      // several multiples above that only happens when nothing defends it.
      {"queue_runaway", K::kRunaway, "nn.rpc.queue_depth", "", 192.0, 10},
      // Leak detectors: these gauges must return to zero once a run drains.
      {"hedges_stuck", K::kStuckAtQuiescence, "read.hedges_in_flight", "", 0.0,
       1},
      {"streams_stuck", K::kStuckAtQuiescence, "client.streams_open", "", 0.0,
       1},
  };
}

// Deterministic number rendering (shared with the counter tracks): the
// determinism of the export reduces to the determinism of the sampled
// values.
using trace::format_number;

FlightRecorder::FlightRecorder(FlightRecorderConfig config)
    : config_(std::move(config)) {
  SMARTH_CHECK_MSG(config_.sample_interval > 0,
                   "flight recorder sample_interval must be positive");
  SMARTH_CHECK_MSG(config_.ring_capacity > 0,
                   "flight recorder ring_capacity must be positive");
  for (std::size_t i = 0; i < config_.series.size(); ++i) {
    column_index_.emplace(config_.series[i].column, i);
  }
  counter_baseline_.assign(config_.series.size(), 0);
  hist_baseline_.assign(config_.series.size(), {});
  monitor_state_.assign(config_.watchdogs.size(), MonitorState{});
}

int FlightRecorder::begin_run(const std::string& name, std::uint64_t seed) {
  // A caller that forgot finish_run() just gets its run sealed without the
  // quiescence checks — they would read the *next* run's registry.
  if (!runs_.empty()) runs_.back().finished = true;
  FlightRun run;
  run.name = name;
  run.seed = seed;
  runs_.push_back(std::move(run));
  // Rebase the delta baselines to the registry's *current* values: the new
  // run's first sample must only count what happened after begin_run, even
  // when the caller carries one registry across runs without resetting it.
  Registry& reg = global_registry();
  for (std::size_t i = 0; i < config_.series.size(); ++i) {
    const SeriesSpec& spec = config_.series[i];
    if (spec.kind == SeriesKind::kCounterDelta) {
      const Counter* c = reg.find_counter(spec.metric);
      counter_baseline_[i] = c ? c->value() : 0;
    } else if (spec.kind == SeriesKind::kHistogramQuantile) {
      hist_baseline_[i].clear();
      if (const LatencyHistogram* h = reg.find_histogram(spec.metric)) {
        const Histogram& hist = h->histogram();
        hist_baseline_[i].resize(hist.bucket_count());
        for (std::size_t b = 0; b < hist.bucket_count(); ++b) {
          hist_baseline_[i][b] = hist.bucket(b);
        }
      }
    }
  }
  monitor_state_.assign(config_.watchdogs.size(), MonitorState{});
  return static_cast<int>(runs_.size()) - 1;
}

double FlightRecorder::series_value(const SeriesSpec& spec, std::size_t index) {
  Registry& reg = global_registry();
  switch (spec.kind) {
    case SeriesKind::kCounterDelta: {
      const Counter* c = reg.find_counter(spec.metric);
      const std::uint64_t cur = c ? c->value() : 0;
      std::uint64_t& last = counter_baseline_[index];
      // A registry reset mid-run restarts the counter: treat the new value
      // as the whole delta rather than underflowing.
      const std::uint64_t delta = cur >= last ? cur - last : cur;
      last = cur;
      return static_cast<double>(delta);
    }
    case SeriesKind::kGauge: {
      const Gauge* g = reg.find_gauge(spec.metric);
      return g ? g->value() : 0.0;
    }
    case SeriesKind::kHistogramQuantile: {
      const LatencyHistogram* h = reg.find_histogram(spec.metric);
      if (h == nullptr) return 0.0;
      const Histogram& hist = h->histogram();
      const std::size_t n = hist.bucket_count();
      std::vector<std::uint64_t>& base = hist_baseline_[index];
      if (base.size() != n) base.assign(n, 0);
      // Window the distribution: this interval's observations are the
      // per-bucket count increases since the previous tick.
      std::vector<std::uint64_t> window(n, 0);
      std::uint64_t total = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t cur = hist.bucket(i);
        window[i] = cur >= base[i] ? cur - base[i] : cur;
        total += window[i];
        base[i] = cur;
      }
      if (total == 0) return 0.0;
      // Same linear interpolation as Histogram::quantile, over the window.
      const double target = spec.quantile * static_cast<double>(total);
      double cumulative = 0.0;
      double lo = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        const double next = cumulative + static_cast<double>(window[i]);
        const double hi = hist.upper_bound(i);
        if (next >= target) {
          if (!std::isfinite(hi) || window[i] == 0) return lo;
          const double frac =
              (target - cumulative) / static_cast<double>(window[i]);
          return lo + frac * (hi - lo);
        }
        cumulative = next;
        if (std::isfinite(hi)) lo = hi;
      }
      return lo;
    }
  }
  return 0.0;
}

void FlightRecorder::sample(SimTime now) {
  if (runs_.empty()) begin_run("run", 0);
  FlightRun& run = runs_.back();

  FlightSample s;
  s.at = now;
  s.values.resize(config_.series.size(), 0.0);
  for (std::size_t i = 0; i < config_.series.size(); ++i) {
    s.values[i] = series_value(config_.series[i], i);
  }
  run.samples.push_back(std::move(s));
  ++run.samples_taken;
  if (run.samples.size() > config_.ring_capacity) {
    run.samples.pop_front();
    ++run.dropped;
  }
  const FlightSample& cur = run.samples.back();

  // Mirror the sample onto Chrome-trace counter tracks so the series render
  // in Perfetto on the same timeline as the spans.
  if (trace::active()) {
    trace::TraceRecorder* tr = trace::recorder();
    for (std::size_t i = 0; i < config_.series.size(); ++i) {
      tr->counter("flight", config_.series[i].column, cur.values[i]);
    }
  }

  auto col = [&](const std::string& name) -> int {
    const auto it = column_index_.find(name);
    return it == column_index_.end() ? -1 : static_cast<int>(it->second);
  };
  for (std::size_t m = 0; m < config_.watchdogs.size(); ++m) {
    const WatchdogSpec& spec = config_.watchdogs[m];
    MonitorState& st = monitor_state_[m];
    if (st.fired) continue;
    switch (spec.kind) {
      case WatchdogSpec::Kind::kStall: {
        const int progress = col(spec.series);
        const int pending = col(spec.pending);
        if (progress < 0 || pending < 0) break;
        if (cur.values[static_cast<std::size_t>(pending)] > 0.0 &&
            cur.values[static_cast<std::size_t>(progress)] <= 0.0) {
          if (++st.streak >= spec.window) {
            st.fired = true;
            fire(spec, now,
                 "no progress on " + spec.series + " for " +
                     std::to_string(st.streak) + " consecutive samples with " +
                     spec.pending + "=" +
                     format_number(
                         cur.values[static_cast<std::size_t>(pending)]));
          }
        } else {
          st.streak = 0;
        }
        break;
      }
      case WatchdogSpec::Kind::kRunaway: {
        const int gauge = col(spec.series);
        if (gauge < 0) break;
        if (cur.values[static_cast<std::size_t>(gauge)] >= spec.threshold) {
          if (++st.streak >= spec.window) {
            st.fired = true;
            fire(spec, now,
                 spec.series + "=" +
                     format_number(
                         cur.values[static_cast<std::size_t>(gauge)]) +
                     " >= " + format_number(spec.threshold) + " for " +
                     std::to_string(st.streak) + " consecutive samples");
          }
        } else {
          st.streak = 0;
        }
        break;
      }
      case WatchdogSpec::Kind::kStuckAtQuiescence:
        break;  // evaluated by finish_run()
    }
  }
}

void FlightRecorder::finish_run(SimTime now) {
  if (runs_.empty() || runs_.back().finished) return;
  Registry& reg = global_registry();
  for (std::size_t m = 0; m < config_.watchdogs.size(); ++m) {
    const WatchdogSpec& spec = config_.watchdogs[m];
    MonitorState& st = monitor_state_[m];
    if (spec.kind != WatchdogSpec::Kind::kStuckAtQuiescence || st.fired) {
      continue;
    }
    const Gauge* g = reg.find_gauge(spec.series);
    const double v = g ? g->value() : 0.0;
    if (v != 0.0) {
      st.fired = true;
      fire(spec, now,
           spec.series + " still " + format_number(v) + " at quiescence");
    }
  }
  runs_.back().finished = true;
}

void FlightRecorder::fire(const WatchdogSpec& spec, SimTime now,
                          const std::string& reason) {
  FlightRun& run = runs_.back();
  WatchdogFiring f;
  f.monitor = spec.name;
  f.at = now;
  f.reason = reason;
  const std::size_t tail = std::min(config_.dump_tail, run.samples.size());
  f.tail.assign(run.samples.end() - static_cast<std::ptrdiff_t>(tail),
                run.samples.end());
  f.registry_json = global_registry().to_json();
  if (pending_summary_) f.pending_summary = pending_summary_();
  if (trace::active()) {
    trace::recorder()->instant(trace::Category::kRun, "flight",
                               "watchdog:" + spec.name, {{"reason", reason}});
  }
  run.firings.push_back(std::move(f));
}

std::size_t FlightRecorder::total_firings() const {
  std::size_t n = 0;
  for (const FlightRun& run : runs_) n += run.firings.size();
  return n;
}

std::size_t FlightRecorder::firings_of(const std::string& monitor) const {
  std::size_t n = 0;
  for (const FlightRun& run : runs_) {
    for (const WatchdogFiring& f : run.firings) {
      if (f.monitor == monitor) ++n;
    }
  }
  return n;
}

namespace {

void append_samples_json(std::string& out,
                         const std::deque<FlightSample>& samples) {
  out += "[";
  bool first = true;
  for (const FlightSample& s : samples) {
    if (!first) out += ",";
    first = false;
    out += "[" + std::to_string(s.at);
    for (double v : s.values) out += "," + format_number(v);
    out += "]";
  }
  out += "]";
}

void append_samples_json(std::string& out,
                         const std::vector<FlightSample>& samples) {
  out += "[";
  bool first = true;
  for (const FlightSample& s : samples) {
    if (!first) out += ",";
    first = false;
    out += "[" + std::to_string(s.at);
    for (double v : s.values) out += "," + format_number(v);
    out += "]";
  }
  out += "]";
}

}  // namespace

std::string FlightRecorder::header_json() const {
  std::string out =
      "\"sample_interval_ns\":" + std::to_string(config_.sample_interval);
  out += ",\"columns\":[\"t_ns\"";
  for (const SeriesSpec& spec : config_.series) {
    out += ",\"" + trace::json_escape(spec.column) + "\"";
  }
  out += "]";
  return out;
}

std::string FlightRecorder::run_json(std::size_t index) const {
  SMARTH_CHECK(index < runs_.size());
  const FlightRun& run = runs_[index];
  std::string out = "{\"name\":\"" + trace::json_escape(run.name) + "\"";
  out += ",\"seed\":" + std::to_string(run.seed);
  out += ",\"samples_taken\":" + std::to_string(run.samples_taken);
  out += ",\"dropped\":" + std::to_string(run.dropped);
  out += ",\"samples\":";
  append_samples_json(out, run.samples);
  out += ",\"watchdogs\":[";
  bool first = true;
  for (const WatchdogFiring& f : run.firings) {
    if (!first) out += ",";
    first = false;
    out += "{\"monitor\":\"" + trace::json_escape(f.monitor) + "\"";
    out += ",\"at_ns\":" + std::to_string(f.at);
    out += ",\"reason\":\"" + trace::json_escape(f.reason) + "\"";
    out += ",\"tail\":";
    append_samples_json(out, f.tail);
    // The registry snapshot is already a JSON document; embed it verbatim.
    out += ",\"registry\":" +
           (f.registry_json.empty() ? std::string("{}") : f.registry_json);
    out += ",\"pending_events\":\"" + trace::json_escape(f.pending_summary) +
           "\"}";
  }
  out += "]}";
  return out;
}

std::string FlightRecorder::to_json() const {
  std::string out = "{" + header_json() + ",\"runs\":[";
  for (std::size_t i = 0; i < runs_.size(); ++i) {
    if (i != 0) out += ",";
    out += "\n" + run_json(i);
  }
  out += "\n]}\n";
  return out;
}

std::string FlightRecorder::csv_header() const {
  std::string out = "run,seed,t_ns";
  for (const SeriesSpec& spec : config_.series) out += "," + spec.column;
  out += "\n";
  return out;
}

std::string FlightRecorder::csv_rows(std::size_t index) const {
  SMARTH_CHECK(index < runs_.size());
  const FlightRun& run = runs_[index];
  std::string out;
  for (const FlightSample& s : run.samples) {
    out += run.name + "," + std::to_string(run.seed) + "," +
           std::to_string(s.at);
    for (double v : s.values) out += "," + format_number(v);
    out += "\n";
  }
  return out;
}

std::string FlightRecorder::to_csv() const {
  std::string out = csv_header();
  for (std::size_t i = 0; i < runs_.size(); ++i) out += csv_rows(i);
  return out;
}

}  // namespace smarth::metrics
