// A general-purpose metrics registry: named counters, gauges and
// histogram-backed latency distributions that instrumented components
// register into, replacing ad-hoc per-subsystem counter structs
// incrementally. Lives next to the tracer (and below every instrumented
// library) so rpc/hdfs/faults can all link it without dependency cycles.
//
// Like the rest of the simulator the registry is single-threaded; names are
// kept in a std::map so every dump is deterministically ordered.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/histogram.hpp"

namespace smarth::metrics {

class Counter {
 public:
  void add(std::uint64_t delta = 1) { value_ += delta; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(double v) { value_ = v; }
  /// Relative adjustment for occupancy-style gauges (streams open, jobs in
  /// flight) maintained by paired inc/dec sites.
  void add(double delta) { value_ += delta; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Latency distribution: a fixed-boundary Histogram for p50/p95/p99 plus
/// exact streaming summary stats. Values are nanoseconds by convention
/// (suffix metric names with `_ns`).
class LatencyHistogram {
 public:
  explicit LatencyHistogram(std::vector<double> upper_bounds);

  void observe(double v);
  std::size_t count() const { return stats_.count(); }
  const SummaryStats& stats() const { return stats_; }
  double quantile(double q) const { return histogram_.quantile(q); }
  const Histogram& histogram() const { return histogram_; }

 private:
  Histogram histogram_;
  SummaryStats stats_;
};

/// Exponential nanosecond buckets from 10us to 100s — wide enough for both
/// packet hop latencies and whole-block recovery times.
const std::vector<double>& default_latency_bounds();

class Registry {
 public:
  /// Find-or-create. References stay valid until reset() (std::map nodes are
  /// stable), so hot paths may cache them.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  LatencyHistogram& histogram(const std::string& name);
  LatencyHistogram& histogram(const std::string& name,
                              std::vector<double> upper_bounds);

  /// Read-only lookups (nullptr when absent) for tests and reports.
  const Counter* find_counter(const std::string& name) const;
  const Gauge* find_gauge(const std::string& name) const;
  const LatencyHistogram* find_histogram(const std::string& name) const;

  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Gauge>& gauges() const { return gauges_; }
  const std::map<std::string, LatencyHistogram>& histograms() const {
    return histograms_;
  }

  /// Drops every metric. Invalidates references handed out earlier — callers
  /// that cache must re-resolve after a reset (smarthsim resets between
  /// protocol runs, before constructing the next cluster).
  void reset();

  /// {"counters":{...},"gauges":{...},"histograms":{name:{count,mean_ns,
  /// min_ns,max_ns,p50_ns,p95_ns,p99_ns}}}
  std::string to_json() const;
  /// One row per metric: kind,name,count,value,mean,p50,p95,p99,min,max
  std::string to_csv(const std::string& label_column = "") const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, LatencyHistogram> histograms_;
};

/// The process-global registry every instrumented component records into.
/// Always on — a counter bump or histogram add is a few nanoseconds, far
/// below the cost of the simulation events surrounding it.
Registry& global_registry();

}  // namespace smarth::metrics
