// Flight recorder: time-resolved telemetry sampled from the metrics registry
// on a simulated-time cadence. Where the registry answers "what happened over
// the whole run", the flight recorder answers "when": per-interval counter
// deltas (sheds, retries, bytes acked, jobs finished), gauge values (queue
// depth, hedges in flight, under-replicated blocks, live datanodes) and
// windowed histogram quantiles (per-interval addBlock p99, read gap p99),
// ring-buffered per run and exportable as JSON, CSV or Chrome-trace counter
// ("C"-phase) tracks that render in Perfetto aligned with the span tracer.
//
// Like the span tracer the recorder is *off by default* and per-thread: a
// null thread_local pointer means no sampler task is ever scheduled and the
// simulation timeline is untouched (the cluster only attaches its sampling
// PeriodicTask when a recorder is installed). Sampling reads state and never
// mutates it, so installing a recorder shifts no seed's timeline: same seed,
// bit-identical series.
//
// On top of the series sits a watchdog layer: declarative anomaly monitors
// (no-goodput-progress stall, gauge stuck nonzero at quiescence, queue-depth
// runaway) that latch once per run and capture a structured diagnostic dump —
// the last-N samples, a registry snapshot, and the simulator's pending event
// category summary — at the moment they trip.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace smarth::metrics {

/// How one exported column is derived from the registry each tick.
enum class SeriesKind {
  kCounterDelta,        ///< counter increase since the previous tick
  kGauge,               ///< gauge value at the tick
  kHistogramQuantile,   ///< quantile of the observations in the last interval
};

struct SeriesSpec {
  std::string column;  ///< exported column name
  SeriesKind kind;
  std::string metric;  ///< registry metric name
  double quantile = 0.99;  ///< kHistogramQuantile only
};

/// The default telemetry set: control-plane pressure (sheds, retries, queue
/// depth), goodput (bytes acked, jobs finished), degradation (hedges,
/// under-replication, live datanodes) and windowed tail latencies.
std::vector<SeriesSpec> default_series();

/// One ring entry: the sample time and one value per configured column.
struct FlightSample {
  SimTime at = 0;
  std::vector<double> values;
};

/// A declarative anomaly monitor over the sampled series.
struct WatchdogSpec {
  enum class Kind {
    /// Pending work exists (`pending` gauge > 0) but the `series` progress
    /// delta has been zero for `window` consecutive ticks.
    kStall,
    /// The `series` gauge has been >= `threshold` for `window` consecutive
    /// ticks (e.g. an unbounded queue past any sane depth).
    kRunaway,
    /// At finish_run() the registry gauge named `series` is still nonzero —
    /// something leaked past quiescence.
    kStuckAtQuiescence,
  };
  std::string name;
  Kind kind = Kind::kStall;
  std::string series;   ///< stall: progress column; runaway: gauge column;
                        ///< quiescence: registry gauge name
  std::string pending;  ///< stall only: gauge column that must be > 0
  double threshold = 0.0;
  int window = 1;
};

/// Stall on goodput, runaway on namenode queue depth, stuck-at-quiescence on
/// hedges / open streams / in-flight jobs. Window sizes assume the default
/// 1 s sample interval; see DESIGN.md §14 for how they were calibrated.
std::vector<WatchdogSpec> default_watchdogs();

/// The structured dump captured when a monitor trips.
struct WatchdogFiring {
  std::string monitor;
  SimTime at = 0;
  std::string reason;
  std::vector<FlightSample> tail;  ///< last-N ring samples at the firing
  std::string registry_json;       ///< Registry::to_json() snapshot
  std::string pending_summary;     ///< Simulation::pending_category_summary()
};

struct FlightRecorderConfig {
  SimDuration sample_interval = seconds(1);
  std::size_t ring_capacity = 4096;  ///< samples kept per run (oldest dropped)
  std::size_t dump_tail = 32;        ///< samples included in a watchdog dump
  std::vector<SeriesSpec> series = default_series();
  std::vector<WatchdogSpec> watchdogs = default_watchdogs();
};

/// One run's series (e.g. the HDFS arm of a comparison, or one sweep seed).
struct FlightRun {
  std::string name;
  std::uint64_t seed = 0;
  std::deque<FlightSample> samples;  ///< ring, capped at ring_capacity
  std::uint64_t samples_taken = 0;   ///< including any dropped from the ring
  std::uint64_t dropped = 0;
  std::vector<WatchdogFiring> firings;
  bool finished = false;
};

class FlightRecorder {
 public:
  explicit FlightRecorder(FlightRecorderConfig config = {});

  const FlightRecorderConfig& config() const { return config_; }
  SimDuration sample_interval() const { return config_.sample_interval; }

  /// Starts a new run; subsequent samples land in it. Resets the per-run
  /// counter baselines, histogram windows and monitor latches.
  int begin_run(const std::string& name, std::uint64_t seed);

  /// Takes one sample from the thread's global registry, evaluates the tick
  /// monitors and — when the span tracer is active — emits one Chrome-trace
  /// counter event per column so the series render beside the spans.
  void sample(SimTime now);

  /// Ends the current run: evaluates the stuck-at-quiescence monitors
  /// against the live registry gauges. Idempotent.
  void finish_run(SimTime now);

  /// Installs the provider for the pending-event-category section of
  /// watchdog dumps (normally the cluster's simulation). Cleared (nullptr)
  /// by the cluster before its simulation dies.
  void set_pending_summary_provider(std::function<std::string()> provider) {
    pending_summary_ = std::move(provider);
  }

  const std::vector<FlightRun>& runs() const { return runs_; }
  /// Watchdog firings across every run (optionally for one monitor name).
  std::size_t total_firings() const;
  std::size_t firings_of(const std::string& monitor) const;

  /// {"sample_interval_ns":...,"columns":[...],"runs":[...]}; every number
  /// is rendered deterministically, so same-seed runs export bit-identical
  /// documents.
  std::string to_json() const;
  /// The envelope fields shared by every run ("sample_interval_ns":...,
  /// "columns":[...]) without braces — lets the sweep driver assemble a
  /// to_json()-shaped document from per-worker run_json() fragments.
  std::string header_json() const;
  /// One run's JSON object (for seed-ordered merges across sweep workers).
  std::string run_json(std::size_t index) const;
  /// Wide CSV: run,seed,t_ns,<column...>; one row per sample.
  std::string to_csv() const;
  std::string csv_header() const;
  std::string csv_rows(std::size_t index) const;

 private:
  struct MonitorState {
    int streak = 0;
    bool fired = false;
  };

  void fire(const WatchdogSpec& spec, SimTime now, const std::string& reason);
  double series_value(const SeriesSpec& spec, std::size_t index);

  FlightRecorderConfig config_;
  std::map<std::string, std::size_t> column_index_;
  std::function<std::string()> pending_summary_;
  std::vector<FlightRun> runs_;

  // Per-run sampling state, reset by begin_run(). Histogram baselines are
  // per *column* (not per metric) so two quantile columns over one metric
  // each see the full window.
  std::vector<std::uint64_t> counter_baseline_;            ///< parallel to series
  std::vector<std::vector<std::uint64_t>> hist_baseline_;  ///< parallel to series
  std::vector<MonitorState> monitor_state_;  ///< parallel to watchdogs
};

/// Per-thread recorder pointer, mirroring trace::g_recorder: null (the
/// default) disables sampling entirely; thread_local so parallel seed sweeps
/// record per worker without sharing.
extern thread_local FlightRecorder* g_flight_recorder;

inline bool flight_active() { return g_flight_recorder != nullptr; }
inline FlightRecorder* flight_recorder() { return g_flight_recorder; }

/// Installs `r` as this thread's flight recorder (nullptr disables).
void install_flight_recorder(FlightRecorder* r);

/// RAII installer for tests, benches and sweep workers.
class ScopedFlightInstall {
 public:
  explicit ScopedFlightInstall(FlightRecorder* r)
      : previous_(g_flight_recorder) {
    install_flight_recorder(r);
  }
  ~ScopedFlightInstall() { install_flight_recorder(previous_); }
  ScopedFlightInstall(const ScopedFlightInstall&) = delete;
  ScopedFlightInstall& operator=(const ScopedFlightInstall&) = delete;

 private:
  FlightRecorder* previous_;
};

}  // namespace smarth::metrics
