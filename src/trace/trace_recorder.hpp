// Cluster-wide span tracing in simulated time. A TraceRecorder captures typed
// spans (begin/end pairs) and instant events, each tagged with the ids of the
// entities involved (client, datanode, block, pipeline), and groups them into
// named tracks so concurrent pipelines render side by side in a trace viewer.
//
// The recorder is process-global and *off by default*: every instrumentation
// site guards on `trace::active()`, a single inlined null-pointer check, so a
// run without tracing pays one predictable branch per site and allocates
// nothing. Installing a recorder (smarthsim --trace-out, or tests) turns the
// same sites into event appends.
//
// One recorder can hold several runs (e.g. the HDFS upload and the SMARTH
// upload of a comparison); each run becomes its own process in the exported
// Chrome trace, so the serial-vs-overlapped pipeline structure of the two
// protocols is directly comparable on one timeline.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/histogram.hpp"
#include "common/ids.hpp"
#include "common/units.hpp"

namespace smarth::trace {

/// Span taxonomy. Categories map to the `cat` field of Chrome trace events,
/// so a viewer can filter e.g. only fault-injector activity.
enum class Category {
  kRun,       ///< whole-upload / whole-download envelopes
  kBlock,     ///< block lifecycle: allocate, setup, stream, tail-ack
  kPipeline,  ///< pipeline-scoped markers (FNFA, errors, slot waits)
  kPacket,    ///< per-packet hop events (verbose; instants only)
  kRpc,       ///< control-plane calls, retries, backoff, give-ups
  kFault,     ///< fault-injector activity
  kRecovery,  ///< pipeline / UC-block recovery
  kScanner,   ///< background block scanner passes
  kRead,      ///< read path: block reads, failovers, checksum mismatches
  kLease,     ///< lease expiry and takeover
};

const char* category_name(Category cat);

/// Deterministic numeric rendering shared by counter-track args and the
/// flight-recorder exports: integral values (the common case) print without
/// a decimal point, everything else round-trips through %.9g. Same inputs,
/// same bytes.
std::string format_number(double v);

/// Ordered key=value annotations attached to an event. A vector (not a map)
/// keeps insertion order, which reads better in viewers.
using Args = std::vector<std::pair<std::string, std::string>>;

/// One recorded event, already flattened to the Chrome trace model:
/// ph 'X' = complete span (ts + dur), 'i' = instant, 'M' = metadata.
struct TraceEvent {
  Category cat = Category::kRun;
  char ph = 'i';
  SimTime ts = 0;
  SimDuration dur = 0;
  int pid = 0;           ///< run index
  std::int64_t tid = 0;  ///< track index within the run
  std::string name;
  Args args;
};

/// Opaque handle returned by begin_span(); pass it back to end_span(). A
/// default-constructed handle is inert, so instrumented structs can embed one
/// unconditionally.
class SpanHandle {
 public:
  bool valid() const { return index_ != static_cast<std::size_t>(-1); }

 private:
  friend class TraceRecorder;
  std::size_t index_ = static_cast<std::size_t>(-1);
  int pid_ = -1;
};

/// Per-(pipeline, position) hop-latency accumulator: how long each datanode
/// held a packet between arrival and sending its upstream ACK. The straggler
/// report turns these into per-node critical-path contributions.
struct HopStats {
  NodeId node;
  int position = 0;  ///< 0 = first datanode in the pipeline
  SummaryStats ack_latency_ns;
};

class TraceRecorder {
 public:
  TraceRecorder();

  /// Starts a new run (e.g. "HDFS" or "SMARTH"); subsequent events land in
  /// it. Returns the run's pid. Emits the process_name metadata event.
  int begin_run(const std::string& name);
  int current_run() const { return current_pid_; }
  const std::vector<std::string>& run_names() const { return run_names_; }

  /// Installs the simulated-clock source (normally &Simulation::now). Must be
  /// cleared (nullptr) before the simulation it reads from is destroyed.
  void set_time_source(std::function<SimTime()> source) {
    time_source_ = std::move(source);
  }
  SimTime now() const;

  /// Resolves a track name ("client", "dn node-3", "block 7") to a stable tid
  /// within the current run, emitting thread_name metadata on first use.
  std::int64_t track(const std::string& name);

  SpanHandle begin_span(Category cat, const std::string& track,
                        std::string name, Args args = {});
  /// Closes the span at now(), appending `extra` to its args. Safe to call
  /// with an invalid handle (no-op) and idempotent per handle.
  void end_span(SpanHandle& handle, Args extra = {});
  void instant(Category cat, const std::string& track, std::string name,
               Args args = {});

  /// Appends a counter ('C') sample: one point of the series `name` on the
  /// given track, rendered by Perfetto as a counter track. The value is
  /// stored pre-formatted (see format_number) and exported unquoted, since
  /// the trace format requires counter arg values to be numeric.
  void counter(const std::string& track, std::string name, double value);

  /// Typed hop-latency sample (see HopStats). Keyed by pipeline so the
  /// straggler report can join hops against the block spans of the same run.
  void record_hop(PipelineId pipeline, NodeId node, int position,
                  SimDuration ack_latency);

  const std::vector<TraceEvent>& events() const { return events_; }
  std::size_t open_span_count() const { return open_spans_; }

  /// Hops recorded for runs with the given pid, grouped by pipeline.
  const std::map<std::int64_t, std::vector<HopStats>>& hops(int pid) const;

  /// Closes every still-open span at the latest timestamp seen; called by the
  /// exporters so aborted uploads still produce well-formed traces.
  void close_open_spans();

 private:
  struct OpenSpan {
    std::size_t event_index;
    bool open = false;
  };

  std::function<SimTime()> time_source_;
  SimTime last_ts_ = 0;
  int current_pid_ = -1;
  std::vector<std::string> run_names_;
  /// (pid, track name) -> tid, dense per run.
  std::map<std::pair<int, std::string>, std::int64_t> tracks_;
  std::vector<std::int64_t> next_tid_;  // per pid
  std::vector<TraceEvent> events_;
  std::vector<OpenSpan> spans_;
  std::size_t open_spans_ = 0;
  /// pid -> pipeline id value -> per-position hop stats.
  std::map<int, std::map<std::int64_t, std::vector<HopStats>>> hops_;
};

/// Per-thread recorder pointer. Null (the default) means tracing is disabled
/// and every instrumentation site reduces to one branch. thread_local so
/// parallel seed sweeps can trace (or not) per worker without sharing.
extern thread_local TraceRecorder* g_recorder;

inline bool active() { return g_recorder != nullptr; }
inline TraceRecorder* recorder() { return g_recorder; }

/// Installs `r` as the process-global recorder (nullptr disables tracing).
void install(TraceRecorder* r);

/// RAII installer for tests and tools.
class ScopedInstall {
 public:
  explicit ScopedInstall(TraceRecorder* r) : previous_(g_recorder) {
    install(r);
  }
  ~ScopedInstall() { install(previous_); }
  ScopedInstall(const ScopedInstall&) = delete;
  ScopedInstall& operator=(const ScopedInstall&) = delete;

 private:
  TraceRecorder* previous_;
};

}  // namespace smarth::trace
