#include "trace/chrome_trace.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <memory>
#include <utility>
#include <vector>

namespace smarth::trace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

/// Formats simulated nanoseconds as the trace format's microseconds with
/// nanosecond precision preserved in the fraction.
std::string format_us(std::int64_t ns) {
  const std::int64_t whole = ns / 1000;
  const std::int64_t frac = ns % 1000;
  char buf[40];
  if (frac == 0) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(whole));
  } else {
    std::snprintf(buf, sizeof(buf), "%lld.%03lld",
                  static_cast<long long>(whole), static_cast<long long>(frac));
  }
  return buf;
}

/// Counter ('C') events carry pre-formatted numeric arg values (see
/// TraceRecorder::counter) that the trace format requires unquoted; every
/// other phase's args are plain strings.
void append_args(std::string& out, const Args& args, bool raw_values) {
  out += "{";
  bool first = true;
  for (const auto& [key, value] : args) {
    if (!first) out += ",";
    first = false;
    out += "\"" + json_escape(key) + "\":";
    if (raw_values) {
      out += value;
    } else {
      out += "\"" + json_escape(value) + "\"";
    }
  }
  out += "}";
}

}  // namespace

std::string to_chrome_trace_json(TraceRecorder& recorder) {
  recorder.close_open_spans();
  std::string out;
  out.reserve(recorder.events().size() * 128 + 256);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  for (const TraceEvent& ev : recorder.events()) {
    if (!first) out += ",\n";
    first = false;
    out += "{\"name\":\"" + json_escape(ev.name) + "\"";
    out += ",\"cat\":\"";
    out += category_name(ev.cat);
    out += "\",\"ph\":\"";
    out += ev.ph;
    out += "\"";
    if (ev.ph != 'M') {
      out += ",\"ts\":" + format_us(ev.ts);
    }
    if (ev.ph == 'X') {
      out += ",\"dur\":" + format_us(ev.dur < 0 ? 0 : ev.dur);
    }
    if (ev.ph == 'i') {
      out += ",\"s\":\"t\"";  // instant scope: thread
    }
    out += ",\"pid\":" + std::to_string(ev.pid);
    out += ",\"tid\":" + std::to_string(ev.tid);
    out += ",\"args\":";
    append_args(out, ev.args, ev.ph == 'C');
    out += "}";
  }
  out += "\n]}\n";
  return out;
}

// ---------------------------------------------------------------------------
// Validator: a strict, dependency-free recursive-descent JSON parser feeding
// the Chrome trace schema checks. Kept internal to this translation unit.
// ---------------------------------------------------------------------------

namespace {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  bool parse(JsonValue& out, std::string& error) {
    skip_ws();
    if (!parse_value(out, error)) return false;
    skip_ws();
    if (pos_ != text_.size()) {
      error = "trailing content at offset " + std::to_string(pos_);
      return false;
    }
    return true;
  }

 private:
  bool fail(std::string& error, const std::string& what) {
    error = what + " at offset " + std::to_string(pos_);
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool parse_value(JsonValue& out, std::string& error) {
    if (pos_ >= text_.size()) return fail(error, "unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return parse_object(out, error);
    if (c == '[') return parse_array(out, error);
    if (c == '"') {
      out.kind = JsonValue::Kind::kString;
      return parse_string(out.str, error);
    }
    if (c == 't' || c == 'f') return parse_literal(out, error);
    if (c == 'n') return parse_literal(out, error);
    if (c == '-' || (c >= '0' && c <= '9')) return parse_number(out, error);
    return fail(error, "unexpected character");
  }

  bool parse_literal(JsonValue& out, std::string& error) {
    auto matches = [&](const char* lit) {
      const std::size_t n = std::string(lit).size();
      if (text_.compare(pos_, n, lit) != 0) return false;
      pos_ += n;
      return true;
    };
    if (matches("true")) {
      out.kind = JsonValue::Kind::kBool;
      out.boolean = true;
      return true;
    }
    if (matches("false")) {
      out.kind = JsonValue::Kind::kBool;
      out.boolean = false;
      return true;
    }
    if (matches("null")) {
      out.kind = JsonValue::Kind::kNull;
      return true;
    }
    return fail(error, "invalid literal");
  }

  bool parse_number(JsonValue& out, std::string& error) {
    const std::size_t start = pos_;
    if (consume('-')) {
    }
    while (pos_ < text_.size() && std::isdigit(
               static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (consume('.')) {
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    const std::string token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") return fail(error, "invalid number");
    out.kind = JsonValue::Kind::kNumber;
    out.number = std::strtod(token.c_str(), nullptr);
    return true;
  }

  bool parse_string(std::string& out, std::string& error) {
    if (!consume('"')) return fail(error, "expected '\"'");
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail(error, "unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) return fail(error, "dangling escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail(error, "short \\u escape");
          for (int i = 0; i < 4; ++i) {
            if (!std::isxdigit(static_cast<unsigned char>(text_[pos_ + static_cast<std::size_t>(i)]))) {
              return fail(error, "bad \\u escape");
            }
          }
          // Validated but stored verbatim; the schema checks never need the
          // decoded code point.
          out += "\\u" + text_.substr(pos_, 4);
          pos_ += 4;
          break;
        }
        default: return fail(error, "unknown escape");
      }
    }
    return fail(error, "unterminated string");
  }

  bool parse_array(JsonValue& out, std::string& error) {
    consume('[');
    out.kind = JsonValue::Kind::kArray;
    skip_ws();
    if (consume(']')) return true;
    while (true) {
      JsonValue element;
      skip_ws();
      if (!parse_value(element, error)) return false;
      out.array.push_back(std::move(element));
      skip_ws();
      if (consume(']')) return true;
      if (!consume(',')) return fail(error, "expected ',' or ']'");
    }
  }

  bool parse_object(JsonValue& out, std::string& error) {
    consume('{');
    out.kind = JsonValue::Kind::kObject;
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(key, error)) return false;
      skip_ws();
      if (!consume(':')) return fail(error, "expected ':'");
      JsonValue value;
      skip_ws();
      if (!parse_value(value, error)) return false;
      out.object.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (consume('}')) return true;
      if (!consume(',')) return fail(error, "expected ',' or '}'");
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

bool check_event(const JsonValue& ev, std::size_t index, std::string& error) {
  auto bad = [&](const std::string& what) {
    error = "traceEvents[" + std::to_string(index) + "]: " + what;
    return false;
  };
  if (ev.kind != JsonValue::Kind::kObject) return bad("not an object");
  const JsonValue* name = ev.find("name");
  if (!name || name->kind != JsonValue::Kind::kString) {
    return bad("missing string \"name\"");
  }
  const JsonValue* ph = ev.find("ph");
  if (!ph || ph->kind != JsonValue::Kind::kString || ph->str.size() != 1) {
    return bad("missing one-character \"ph\"");
  }
  for (const char* key : {"pid", "tid"}) {
    const JsonValue* v = ev.find(key);
    if (!v || v->kind != JsonValue::Kind::kNumber) {
      return bad(std::string("missing numeric \"") + key + "\"");
    }
  }
  if (ph->str != "M") {
    const JsonValue* ts = ev.find("ts");
    if (!ts || ts->kind != JsonValue::Kind::kNumber) {
      return bad("missing numeric \"ts\"");
    }
    if (ts->number < 0) return bad("negative \"ts\"");
  }
  if (ph->str == "X") {
    const JsonValue* dur = ev.find("dur");
    if (!dur || dur->kind != JsonValue::Kind::kNumber) {
      return bad("'X' event missing numeric \"dur\"");
    }
    if (dur->number < 0) return bad("negative \"dur\"");
  }
  if (ph->str == "C") {
    // Counter samples are only renderable if every series value is numeric.
    const JsonValue* args = ev.find("args");
    if (!args || args->kind != JsonValue::Kind::kObject) {
      return bad("'C' event missing \"args\" object");
    }
    if (args->object.empty()) return bad("'C' event has no counter series");
    for (const auto& [key, value] : args->object) {
      if (value.kind != JsonValue::Kind::kNumber) {
        return bad("'C' event series \"" + key + "\" is not numeric");
      }
    }
  }
  return true;
}

}  // namespace

ValidationResult validate_chrome_trace(const std::string& json) {
  ValidationResult result;
  JsonValue root;
  Parser parser(json);
  if (!parser.parse(root, result.error)) return result;
  if (root.kind != JsonValue::Kind::kObject) {
    result.error = "top level is not an object";
    return result;
  }
  const JsonValue* events = root.find("traceEvents");
  if (!events || events->kind != JsonValue::Kind::kArray) {
    result.error = "missing \"traceEvents\" array";
    return result;
  }
  for (std::size_t i = 0; i < events->array.size(); ++i) {
    if (!check_event(events->array[i], i, result.error)) return result;
  }
  result.ok = true;
  result.event_count = events->array.size();
  return result;
}

}  // namespace smarth::trace
