#include "trace/straggler.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <vector>

#include "common/units.hpp"

namespace smarth::trace {

namespace {

const std::string* find_arg(const Args& args, const std::string& key) {
  for (const auto& [k, v] : args) {
    if (k == key) return &v;
  }
  return nullptr;
}

/// Parses the numeric suffix of an id string like "pipe-3" / "blk-17".
/// Returns -1 when there is none.
std::int64_t trailing_number(const std::string& s) {
  std::size_t end = s.size();
  std::size_t begin = end;
  while (begin > 0 && s[begin - 1] >= '0' && s[begin - 1] <= '9') --begin;
  if (begin == end) return -1;
  return std::strtoll(s.c_str() + begin, nullptr, 10);
}

std::string percent(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.0f%%", fraction * 100.0);
  return buf;
}

struct BlockInfo {
  std::map<std::string, SimDuration> phase_ns;  // phase name -> total dur
  std::set<std::int64_t> pipelines;             // pipeline id values
  std::string block_label;                      // "blk-7" (if tagged)
};

struct NodeShare {
  double wait_ns = 0.0;    // packets * own-latency contribution
  double packets = 0.0;
  double mean_own_ns = 0.0;  // latest own-latency estimate (for display)
  int position = 0;
};

/// Per-node critical-path contribution for one pipeline: a node's own share
/// of the observed arrival->ACK latency is its mean minus its downstream
/// neighbour's mean (the tail node keeps everything), weighted by packets.
void accumulate_pipeline(const std::vector<HopStats>& hops,
                         std::map<std::int64_t, NodeShare>& by_node) {
  std::vector<HopStats> sorted = hops;
  std::sort(sorted.begin(), sorted.end(),
            [](const HopStats& a, const HopStats& b) {
              return a.position < b.position;
            });
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const double mean = sorted[i].ack_latency_ns.mean();
    const double next_mean =
        i + 1 < sorted.size() ? sorted[i + 1].ack_latency_ns.mean() : 0.0;
    const double own = std::max(0.0, mean - next_mean);
    NodeShare& share = by_node[sorted[i].node.value()];
    share.wait_ns += own * static_cast<double>(sorted[i].ack_latency_ns.count());
    share.packets += static_cast<double>(sorted[i].ack_latency_ns.count());
    share.mean_own_ns = own;
    share.position = sorted[i].position;
  }
}

}  // namespace

StragglerReport straggler_report(const TraceRecorder& recorder, int pid) {
  StragglerReport report;
  const std::string run_name =
      pid >= 0 && pid < static_cast<int>(recorder.run_names().size())
          ? recorder.run_names()[static_cast<std::size_t>(pid)]
          : "run " + std::to_string(pid);

  // Collect block-phase spans.
  std::map<std::int64_t, BlockInfo> blocks;
  for (const TraceEvent& ev : recorder.events()) {
    if (ev.pid != pid || ev.ph != 'X' || ev.cat != Category::kBlock) continue;
    const std::string* index = find_arg(ev.args, "block_index");
    if (!index) continue;
    BlockInfo& info = blocks[trailing_number(*index)];
    info.phase_ns[ev.name] += std::max<SimDuration>(0, ev.dur);
    if (const std::string* pipe = find_arg(ev.args, "pipeline")) {
      const std::int64_t id = trailing_number(*pipe);
      if (id >= 0) info.pipelines.insert(id);
    }
    if (const std::string* blk = find_arg(ev.args, "block")) {
      info.block_label = *blk;
    }
  }

  // Cluster-wide per-node shares across every pipeline of the run.
  const auto& hops = recorder.hops(pid);
  std::map<std::int64_t, NodeShare> cluster_shares;
  for (const auto& [pipeline, hop_list] : hops) {
    accumulate_pipeline(hop_list, cluster_shares);
  }

  std::string& out = report.text;
  out += "Straggler attribution — " + run_name + "\n";
  if (blocks.empty()) {
    out += "  (no block spans recorded)\n";
  }

  static const char* kPhaseOrder[] = {"allocate", "setup", "stream",
                                      "tail-ack", "recovery"};
  for (const auto& [index, info] : blocks) {
    SimDuration total = 0;
    for (const auto& [phase, ns] : info.phase_ns) total += ns;
    out += "  block " + std::to_string(index);
    if (!info.block_label.empty()) out += " (" + info.block_label + ")";
    out += ": total " + format_duration(total);
    std::string dominant_phase;
    SimDuration dominant_ns = -1;
    for (const char* phase : kPhaseOrder) {
      auto it = info.phase_ns.find(phase);
      if (it == info.phase_ns.end()) continue;
      out += " | " + std::string(phase) + " " +
             percent(total > 0 ? static_cast<double>(it->second) /
                                     static_cast<double>(total)
                               : 0.0);
      if (it->second > dominant_ns) {
        dominant_ns = it->second;
        dominant_phase = phase;
      }
    }
    // Per-block node attribution from this block's pipelines.
    std::map<std::int64_t, NodeShare> block_shares;
    for (std::int64_t pipeline : info.pipelines) {
      auto it = hops.find(pipeline);
      if (it != hops.end()) accumulate_pipeline(it->second, block_shares);
    }
    double block_total = 0.0;
    std::int64_t best_node = -1;
    double best_wait = -1.0;
    for (const auto& [node, share] : block_shares) {
      block_total += share.wait_ns;
      if (share.wait_ns > best_wait) {
        best_wait = share.wait_ns;
        best_node = node;
      }
    }
    if (best_node >= 0 && block_total > 0.0) {
      out += " — " + percent(best_wait / block_total) + " waiting on " +
             NodeId{best_node}.to_string();
      if (!dominant_phase.empty()) out += " " + dominant_phase;
    }
    out += "\n";
  }

  // Run-level summary.
  double run_total = 0.0;
  for (const auto& [node, share] : cluster_shares) run_total += share.wait_ns;
  if (run_total > 0.0) {
    out += "  critical path by datanode:";
    std::vector<std::pair<std::int64_t, NodeShare>> ranked(
        cluster_shares.begin(), cluster_shares.end());
    std::sort(ranked.begin(), ranked.end(),
              [](const auto& a, const auto& b) {
                return a.second.wait_ns > b.second.wait_ns;
              });
    for (const auto& [node, share] : ranked) {
      out += " " + NodeId{node}.to_string() + " " +
             percent(share.wait_ns / run_total) + " (own " +
             format_duration(static_cast<SimDuration>(share.mean_own_ns)) +
             "/pkt)";
    }
    out += "\n";
    report.dominant_node = NodeId{ranked.front().first};
    report.dominant_share = ranked.front().second.wait_ns / run_total;
    out += "  dominant straggler: " + report.dominant_node.to_string() +
           " (" + percent(report.dominant_share) + " of per-hop wait)\n";
  } else {
    out += "  (no hop-latency samples recorded)\n";
  }
  return report;
}

}  // namespace smarth::trace
