// Chrome trace_event JSON export (the "JSON Array with metadata" object form
// understood by Perfetto and chrome://tracing) plus a dependency-free
// validator used by tests to schema-check exported traces.
#pragma once

#include <string>

#include "trace/trace_recorder.hpp"

namespace smarth::trace {

/// Serializes the recorder to a Chrome trace JSON document. Timestamps are
/// converted from simulated nanoseconds to the format's microseconds. Open
/// spans are closed first (see TraceRecorder::close_open_spans).
std::string to_chrome_trace_json(TraceRecorder& recorder);

/// Escapes a string for embedding in a JSON document (adds no quotes).
std::string json_escape(const std::string& s);

/// Result of validating a trace document.
struct ValidationResult {
  bool ok = false;
  std::string error;        ///< first problem found (empty when ok)
  std::size_t event_count = 0;
};

/// Fully parses `json` (strict RFC-8259 subset: no comments, no trailing
/// commas) and checks the Chrome trace schema: a top-level object with a
/// "traceEvents" array whose entries carry name/ph/pid/tid, ts for non-'M'
/// phases, a non-negative dur for 'X' spans, and — for 'C' counter samples —
/// a non-empty args object whose values are all numeric.
ValidationResult validate_chrome_trace(const std::string& json);

}  // namespace smarth::trace
