#include "trace/trace_recorder.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/check.hpp"

namespace smarth::trace {

thread_local TraceRecorder* g_recorder = nullptr;

void install(TraceRecorder* r) { g_recorder = r; }

const char* category_name(Category cat) {
  switch (cat) {
    case Category::kRun: return "run";
    case Category::kBlock: return "block";
    case Category::kPipeline: return "pipeline";
    case Category::kPacket: return "packet";
    case Category::kRpc: return "rpc";
    case Category::kFault: return "fault";
    case Category::kRecovery: return "recovery";
    case Category::kScanner: return "scanner";
    case Category::kRead: return "read";
    case Category::kLease: return "lease";
  }
  return "?";
}

std::string format_number(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 9.007e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

TraceRecorder::TraceRecorder() { events_.reserve(1024); }

SimTime TraceRecorder::now() const {
  if (time_source_) return time_source_();
  return last_ts_;
}

int TraceRecorder::begin_run(const std::string& name) {
  current_pid_ = static_cast<int>(run_names_.size());
  run_names_.push_back(name);
  next_tid_.push_back(0);
  TraceEvent ev;
  ev.cat = Category::kRun;
  ev.ph = 'M';
  ev.ts = 0;
  ev.pid = current_pid_;
  ev.tid = 0;
  ev.name = "process_name";
  ev.args = {{"name", name}};
  events_.push_back(std::move(ev));
  return current_pid_;
}

std::int64_t TraceRecorder::track(const std::string& name) {
  SMARTH_CHECK_MSG(current_pid_ >= 0, "begin_run() before recording events");
  const auto key = std::make_pair(current_pid_, name);
  auto it = tracks_.find(key);
  if (it != tracks_.end()) return it->second;
  const std::int64_t tid = next_tid_[static_cast<std::size_t>(current_pid_)]++;
  tracks_.emplace(key, tid);
  TraceEvent ev;
  ev.cat = Category::kRun;
  ev.ph = 'M';
  ev.ts = 0;
  ev.pid = current_pid_;
  ev.tid = tid;
  ev.name = "thread_name";
  ev.args = {{"name", name}};
  events_.push_back(std::move(ev));
  return tid;
}

SpanHandle TraceRecorder::begin_span(Category cat, const std::string& track_name,
                                     std::string name, Args args) {
  const std::int64_t tid = track(track_name);
  const SimTime ts = now();
  last_ts_ = std::max(last_ts_, ts);
  TraceEvent ev;
  ev.cat = cat;
  ev.ph = 'X';
  ev.ts = ts;
  ev.dur = -1;  // open; patched by end_span / close_open_spans
  ev.pid = current_pid_;
  ev.tid = tid;
  ev.name = std::move(name);
  ev.args = std::move(args);
  SpanHandle handle;
  handle.index_ = spans_.size();
  handle.pid_ = current_pid_;
  spans_.push_back(OpenSpan{events_.size(), true});
  events_.push_back(std::move(ev));
  ++open_spans_;
  return handle;
}

void TraceRecorder::end_span(SpanHandle& handle, Args extra) {
  if (!handle.valid()) return;
  OpenSpan& span = spans_[handle.index_];
  handle.index_ = static_cast<std::size_t>(-1);
  if (!span.open) return;
  span.open = false;
  --open_spans_;
  TraceEvent& ev = events_[span.event_index];
  const SimTime ts = now();
  last_ts_ = std::max(last_ts_, ts);
  ev.dur = std::max<SimDuration>(0, ts - ev.ts);
  for (auto& kv : extra) ev.args.push_back(std::move(kv));
}

void TraceRecorder::instant(Category cat, const std::string& track_name,
                            std::string name, Args args) {
  const std::int64_t tid = track(track_name);
  const SimTime ts = now();
  last_ts_ = std::max(last_ts_, ts);
  TraceEvent ev;
  ev.cat = cat;
  ev.ph = 'i';
  ev.ts = ts;
  ev.pid = current_pid_;
  ev.tid = tid;
  ev.name = std::move(name);
  ev.args = std::move(args);
  events_.push_back(std::move(ev));
}

void TraceRecorder::counter(const std::string& track_name, std::string name,
                            double value) {
  const std::int64_t tid = track(track_name);
  const SimTime ts = now();
  last_ts_ = std::max(last_ts_, ts);
  TraceEvent ev;
  ev.cat = Category::kRun;
  ev.ph = 'C';
  ev.ts = ts;
  ev.pid = current_pid_;
  ev.tid = tid;
  ev.name = std::move(name);
  ev.args = {{"value", format_number(value)}};
  events_.push_back(std::move(ev));
}

void TraceRecorder::record_hop(PipelineId pipeline, NodeId node, int position,
                               SimDuration ack_latency) {
  SMARTH_CHECK_MSG(current_pid_ >= 0, "begin_run() before recording hops");
  last_ts_ = std::max(last_ts_, now());
  auto& per_pipeline = hops_[current_pid_][pipeline.value()];
  for (auto& hop : per_pipeline) {
    if (hop.position == position) {
      hop.ack_latency_ns.add(static_cast<double>(ack_latency));
      return;
    }
  }
  HopStats hop;
  hop.node = node;
  hop.position = position;
  hop.ack_latency_ns.add(static_cast<double>(ack_latency));
  per_pipeline.push_back(hop);
}

const std::map<std::int64_t, std::vector<HopStats>>& TraceRecorder::hops(
    int pid) const {
  static const std::map<std::int64_t, std::vector<HopStats>> kEmpty;
  auto it = hops_.find(pid);
  return it == hops_.end() ? kEmpty : it->second;
}

void TraceRecorder::close_open_spans() {
  for (OpenSpan& span : spans_) {
    if (!span.open) continue;
    span.open = false;
    --open_spans_;
    TraceEvent& ev = events_[span.event_index];
    ev.dur = std::max<SimDuration>(0, last_ts_ - ev.ts);
    ev.args.emplace_back("truncated", "true");
  }
}

}  // namespace smarth::trace
