// Straggler attribution: walks the recorded block-lifecycle spans and the
// per-hop ACK-latency stats of one run and prints, per upload, where each
// block's wall-clock went (allocate / setup / stream / tail-ack) and which
// datanode dominates the critical path.
#pragma once

#include <string>

#include "common/ids.hpp"
#include "trace/trace_recorder.hpp"

namespace smarth::trace {

struct StragglerReport {
  std::string text;        ///< human-readable multi-line report
  NodeId dominant_node;    ///< invalid when no hop data was recorded
  double dominant_share = 0.0;  ///< its fraction of summed hop wait [0,1]
};

/// Builds the report for run `pid` of the recorder. Safe on partial traces:
/// blocks without hop data are reported from their phase spans alone.
StragglerReport straggler_report(const TraceRecorder& recorder, int pid);

}  // namespace smarth::trace
