#include "trace/metrics_registry.hpp"

#include <cstdio>

namespace smarth::metrics {

namespace {

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

LatencyHistogram::LatencyHistogram(std::vector<double> upper_bounds)
    : histogram_(std::move(upper_bounds)) {}

void LatencyHistogram::observe(double v) {
  histogram_.add(v);
  stats_.add(v);
}

const std::vector<double>& default_latency_bounds() {
  static const std::vector<double> kBounds = [] {
    std::vector<double> bounds;
    // 10us .. 100s in 1-3-10 steps (nanoseconds).
    for (double decade = 1e4; decade <= 1e11; decade *= 10.0) {
      bounds.push_back(decade);
      bounds.push_back(decade * 3.0);
    }
    return bounds;
  }();
  return kBounds;
}

Counter& Registry::counter(const std::string& name) { return counters_[name]; }

Gauge& Registry::gauge(const std::string& name) { return gauges_[name]; }

LatencyHistogram& Registry::histogram(const std::string& name) {
  return histogram(name, default_latency_bounds());
}

LatencyHistogram& Registry::histogram(const std::string& name,
                                      std::vector<double> upper_bounds) {
  auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.emplace(name, LatencyHistogram(std::move(upper_bounds)))
      .first->second;
}

const Counter* Registry::find_counter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* Registry::find_gauge(const std::string& name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const LatencyHistogram* Registry::find_histogram(
    const std::string& name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

void Registry::reset() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

std::string Registry::to_json() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":" + std::to_string(c.value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":" + format_double(g.value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":{";
    out += "\"count\":" + std::to_string(h.count());
    out += ",\"mean_ns\":" + format_double(h.stats().mean());
    out += ",\"min_ns\":" + format_double(h.stats().min());
    out += ",\"max_ns\":" + format_double(h.stats().max());
    out += ",\"p50_ns\":" + format_double(h.quantile(0.50));
    out += ",\"p95_ns\":" + format_double(h.quantile(0.95));
    out += ",\"p99_ns\":" + format_double(h.quantile(0.99));
    out += "}";
  }
  out += "}}";
  return out;
}

std::string Registry::to_csv(const std::string& label_column) const {
  const std::string prefix = label_column.empty() ? "" : label_column + ",";
  std::string out;
  for (const auto& [name, c] : counters_) {
    out += prefix + "counter," + name + ",," + std::to_string(c.value()) +
           ",,,,,,\n";
  }
  for (const auto& [name, g] : gauges_) {
    out += prefix + "gauge," + name + ",," + format_double(g.value()) +
           ",,,,,,\n";
  }
  for (const auto& [name, h] : histograms_) {
    out += prefix + "histogram," + name + "," + std::to_string(h.count()) +
           ",," + format_double(h.stats().mean()) + "," +
           format_double(h.quantile(0.50)) + "," +
           format_double(h.quantile(0.95)) + "," +
           format_double(h.quantile(0.99)) + "," +
           format_double(h.stats().min()) + "," +
           format_double(h.stats().max()) + "\n";
  }
  return out;
}

Registry& global_registry() {
  // thread_local, not static: parallel seed sweeps run one share-nothing
  // simulation per thread, and each must fold its own registry. On the main
  // thread this is indistinguishable from a process global.
  static thread_local Registry registry;
  return registry;
}

}  // namespace smarth::metrics
