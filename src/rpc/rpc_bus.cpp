#include "rpc/rpc_bus.hpp"

#include "common/check.hpp"
#include "common/log.hpp"

namespace smarth::rpc {

RpcBus::RpcBus(net::Network& network, RpcConfig config)
    : network_(network), config_(config) {}

void RpcBus::set_host_down(NodeId node, bool down) {
  SMARTH_CHECK(node.valid());
  const auto idx = static_cast<std::size_t>(node.value());
  if (down_.size() <= idx) down_.resize(idx + 1, false);
  down_[idx] = down;
}

bool RpcBus::host_down(NodeId node) const {
  const auto idx = static_cast<std::size_t>(node.value());
  return idx < down_.size() && down_[idx];
}

void RpcBus::set_service_queue(NodeId server, ServiceQueue* queue) {
  SMARTH_CHECK(server.valid());
  const auto idx = static_cast<std::size_t>(server.value());
  if (queues_.size() <= idx) queues_.resize(idx + 1, nullptr);
  queues_[idx] = queue;
}

ServiceQueue* RpcBus::service_queue(NodeId server) const {
  const auto idx = static_cast<std::size_t>(server.value());
  return idx < queues_.size() ? queues_[idx] : nullptr;
}

void RpcBus::record_dropped_call(NodeId client, NodeId server) {
  ++calls_dropped_;
  SMARTH_DEBUG("rpc") << "dropped call " << client.value() << " -> "
                      << server.value() << " (endpoint down); total dropped "
                      << calls_dropped_;
}

void RpcBus::send_control(NodeId from, NodeId to, Bytes size,
                          std::function<void()> on_delivered) {
  SimDuration extra = 0;
  if (chaos_.enabled()) {
    Rng& rng = network_.simulation().rng();
    if (chaos_.loss_probability > 0.0 &&
        rng.uniform() < chaos_.loss_probability) {
      ++messages_lost_;
      SMARTH_DEBUG("rpc") << "chaos lost control message " << from.value()
                          << " -> " << to.value();
      return;
    }
    extra = chaos_.delay_mean;
    if (chaos_.delay_jitter > 0) {
      extra += rng.uniform_int(0, chaos_.delay_jitter - 1);
    }
    if (extra > 0) ++messages_delayed_;
  }
  auto transmit = [this, from, to, size,
                   on_delivered = std::move(on_delivered)]() mutable {
    network_.send(from, to, size, std::move(on_delivered),
                  net::LinkPriority::kControl);
  };
  if (extra > 0) {
    network_.simulation().schedule_after(extra, std::move(transmit));
  } else {
    transmit();
  }
}

void RpcBus::notify(NodeId sender, NodeId receiver,
                    std::function<void()> handler, CallOptions options) {
  if (host_down(sender) || host_down(receiver)) {
    record_dropped_call(sender, receiver);
    return;
  }
  send_control(
      sender, receiver, config_.request_wire_size,
      [this, sender, receiver, options,
       handler = std::move(handler)]() mutable {
        if (host_down(receiver)) {
          record_dropped_call(sender, receiver);
          return;
        }
        ServiceQueue* queue = service_queue(receiver);
        if (queue == nullptr) {
          network_.simulation().schedule_after(config_.service_time,
                                               std::move(handler));
          return;
        }
        auto guarded = [this, sender, receiver,
                        handler = std::move(handler)]() mutable {
          if (host_down(receiver)) {
            record_dropped_call(sender, receiver);
            return;
          }
          handler();
        };
        queue->submit(options.svc, options.tenant, std::move(guarded),
                      /*shed=*/nullptr);
      });
}

}  // namespace smarth::rpc
