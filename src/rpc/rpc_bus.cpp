#include "rpc/rpc_bus.hpp"

#include "common/check.hpp"

namespace smarth::rpc {

RpcBus::RpcBus(net::Network& network, RpcConfig config)
    : network_(network), config_(config) {}

void RpcBus::set_host_down(NodeId node, bool down) {
  SMARTH_CHECK(node.valid());
  const auto idx = static_cast<std::size_t>(node.value());
  if (down_.size() <= idx) down_.resize(idx + 1, false);
  down_[idx] = down;
}

bool RpcBus::host_down(NodeId node) const {
  const auto idx = static_cast<std::size_t>(node.value());
  return idx < down_.size() && down_[idx];
}

void RpcBus::notify(NodeId sender, NodeId receiver,
                    std::function<void()> handler) {
  if (host_down(sender) || host_down(receiver)) return;
  send_control(sender, receiver, config_.request_wire_size,
               [this, receiver, handler = std::move(handler)]() mutable {
                 if (host_down(receiver)) return;
                 network_.simulation().schedule_after(config_.service_time,
                                                      std::move(handler));
               });
}

}  // namespace smarth::rpc
