#include "rpc/service_queue.hpp"

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/log.hpp"
#include "trace/metrics_registry.hpp"

namespace smarth::rpc {

namespace {

metrics::Counter& reg_counter(const char* name) {
  return metrics::global_registry().counter(name);
}

}  // namespace

void ServiceQueue::update_depth_gauge() {
  metrics::global_registry().gauge("nn.rpc.queue_depth").set(
      static_cast<double>(depth()));
}

ServiceQueue::ServiceQueue(sim::Simulation& sim, Config config)
    : sim_(sim), config_(config) {
  SMARTH_CHECK(config_.cost_heartbeat > 0);
  SMARTH_CHECK(config_.cost_meta > 0);
  SMARTH_CHECK(config_.cost_add_block > 0);
  SMARTH_CHECK(config_.queue_capacity > 0);
  SMARTH_CHECK(config_.heartbeat_batch_max >= 1);
  SMARTH_CHECK(config_.batch_marginal_cost >= 0.0);
}

SimDuration ServiceQueue::cost_of(ServiceClass cls) const {
  switch (cls) {
    case ServiceClass::kHeartbeat:
      return config_.cost_heartbeat;
    case ServiceClass::kAddBlock:
      return config_.cost_add_block;
    case ServiceClass::kMeta:
    case ServiceClass::kDefault:
      return config_.cost_meta;
  }
  return config_.cost_meta;
}

int ServiceQueue::priority_of(ServiceClass cls) {
  switch (cls) {
    case ServiceClass::kHeartbeat:
      return 2;
    case ServiceClass::kMeta:
    case ServiceClass::kDefault:
      return 1;
    case ServiceClass::kAddBlock:
      return 0;
  }
  return 1;
}

std::size_t ServiceQueue::depth() const {
  if (!config_.admission_control) return fifo_.size();
  return bands_[0].size() + bands_[1].size() + bands_[2].size();
}

void ServiceQueue::shed_op(Op op, bool cap_rejection) {
  ++counters_.shed_total;
  reg_counter("nn.rpc.shed").add();
  if (op.cls == ServiceClass::kHeartbeat) {
    ++counters_.shed_heartbeats;
    reg_counter("nn.rpc.shed_heartbeats").add();
  } else if (op.cls == ServiceClass::kAddBlock) {
    ++counters_.shed_add_blocks;
    reg_counter("nn.rpc.shed_add_blocks").add();
  }
  if (cap_rejection) {
    ++counters_.addblock_cap_rejections;
    reg_counter("nn.rpc.addblock_cap_rejections").add();
  }
  if (op.shed) op.shed();
}

void ServiceQueue::enqueue(Op op) {
  ++counters_.admitted;
  reg_counter("nn.rpc.admitted").add();
  if (config_.admission_control && op.cls == ServiceClass::kAddBlock &&
      op.tenant >= 0) {
    ++tenant_add_blocks_[op.tenant];
  }
  if (!config_.admission_control) {
    fifo_.push_back(std::move(op));
  } else {
    bands_[priority_of(op.cls)].push_back(std::move(op));
  }
  maybe_serve();
  update_depth_gauge();
}

void ServiceQueue::submit(ServiceClass cls, std::int64_t tenant,
                          std::function<void()> serve,
                          std::function<void()> shed) {
  Op op{cls, tenant, std::move(serve), std::move(shed), sim_.now()};
  if (!config_.admission_control) {
    enqueue(std::move(op));  // unbounded FIFO: the undefended namenode
    return;
  }
  if (cls == ServiceClass::kAddBlock && config_.per_tenant_addblock_cap > 0 &&
      tenant >= 0) {
    auto it = tenant_add_blocks_.find(tenant);
    if (it != tenant_add_blocks_.end() &&
        it->second >= config_.per_tenant_addblock_cap) {
      shed_op(std::move(op), /*cap_rejection=*/true);
      return;
    }
  }
  if (depth() >= static_cast<std::size_t>(config_.queue_capacity)) {
    // Displacement: an arriving higher-priority op evicts the newest queued
    // op from the lowest non-empty band strictly below it; otherwise the
    // arrival itself is shed.
    const int prio = priority_of(cls);
    int victim_band = -1;
    for (int b = 0; b < prio; ++b) {
      if (!bands_[b].empty()) {
        victim_band = b;
        break;
      }
    }
    if (victim_band < 0) {
      shed_op(std::move(op), /*cap_rejection=*/false);
      return;
    }
    Op victim = std::move(bands_[victim_band].back());
    bands_[victim_band].pop_back();
    if (victim.cls == ServiceClass::kAddBlock && victim.tenant >= 0) {
      auto it = tenant_add_blocks_.find(victim.tenant);
      if (it != tenant_add_blocks_.end() && it->second > 0) --it->second;
    }
    shed_op(std::move(victim), /*cap_rejection=*/false);
  }
  enqueue(std::move(op));
}

void ServiceQueue::maybe_serve() {
  if (busy_) return;
  auto batch = std::make_shared<std::vector<Op>>();
  SimDuration cost = 0;
  if (!config_.admission_control) {
    if (fifo_.empty()) return;
    batch->push_back(std::move(fifo_.front()));
    fifo_.pop_front();
    cost = cost_of(batch->front().cls);
  } else {
    int band = -1;
    for (int b = 2; b >= 0; --b) {
      if (!bands_[b].empty()) {
        band = b;
        break;
      }
    }
    if (band < 0) return;
    if (band == priority_of(ServiceClass::kHeartbeat)) {
      // Coalesce queued heartbeats/IBRs into one service slot: full cost for
      // the first, a marginal fraction for each additional one.
      const int n = static_cast<int>(
          std::min<std::size_t>(bands_[band].size(),
                                static_cast<std::size_t>(
                                    config_.heartbeat_batch_max)));
      for (int i = 0; i < n; ++i) {
        batch->push_back(std::move(bands_[band].front()));
        bands_[band].pop_front();
      }
      cost = config_.cost_heartbeat +
             static_cast<SimDuration>(
                 static_cast<double>(config_.cost_heartbeat) *
                 config_.batch_marginal_cost * (n - 1));
      if (n > 1) {
        ++counters_.heartbeat_batches;
        counters_.heartbeats_batched += static_cast<std::uint64_t>(n);
        reg_counter("nn.rpc.heartbeat_batches").add();
        reg_counter("nn.rpc.heartbeats_batched").add(
            static_cast<std::uint64_t>(n));
      }
    } else {
      batch->push_back(std::move(bands_[band].front()));
      bands_[band].pop_front();
      cost = cost_of(batch->front().cls);
    }
  }
  busy_ = true;
  update_depth_gauge();
  const SimTime start = sim_.now();
  auto& wait_hist = metrics::global_registry().histogram("nn.rpc.queue_wait_ns");
  for (const Op& op : *batch) {
    wait_hist.observe(static_cast<double>(start - op.enqueued_at));
  }
  sim_.schedule_after(cost, "rpc.service", [this, batch]() {
    auto& sojourn_hist =
        metrics::global_registry().histogram("nn.rpc.sojourn_ns");
    const SimTime done = sim_.now();
    for (Op& op : *batch) {
      sojourn_hist.observe(static_cast<double>(done - op.enqueued_at));
      if (config_.admission_control && op.cls == ServiceClass::kAddBlock &&
          op.tenant >= 0) {
        auto it = tenant_add_blocks_.find(op.tenant);
        if (it != tenant_add_blocks_.end() && it->second > 0) --it->second;
      }
      ++counters_.served;
      if (op.serve) op.serve();
    }
    busy_ = false;
    maybe_serve();
  });
}

}  // namespace smarth::rpc
