// Simulated control plane. An RPC is a small request message over the shared
// network, a server-side service delay, and a small response message back —
// together these realize the paper's per-block namenode communication cost
// `Tn`. RPC messages ride the same NICs as data but, like real small TCP
// flows, are not stuck behind queued bulk packets (control priority).
//
// The bus also hosts the control-plane half of fault injection: calls to or
// from a down host are dropped (and counted, so timeouts are attributable in
// logs), and an optional chaos configuration loses or delays individual
// control messages with seeded randomness.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "common/ids.hpp"
#include "common/units.hpp"
#include "net/network.hpp"
#include "rpc/service_queue.hpp"

namespace smarth::rpc {

struct RpcConfig {
  Bytes request_wire_size = 256;
  Bytes response_wire_size = 512;
  /// Server-side processing time per call.
  SimDuration service_time = microseconds(200);
};

/// Fault-injection knobs for the control plane. Loss and delay apply per
/// control message (request and response independently), drawn from the
/// simulation RNG — and only when enabled, so fault-free runs make no extra
/// RNG draws and stay bit-identical to historical traces.
struct RpcChaos {
  double loss_probability = 0.0;   ///< per-message drop probability
  SimDuration delay_mean = 0;      ///< fixed extra latency per message
  SimDuration delay_jitter = 0;    ///< uniform extra in [0, delay_jitter)

  bool enabled() const {
    return loss_probability > 0.0 || delay_mean > 0 || delay_jitter > 0;
  }
};

class RpcBus {
 public:
  explicit RpcBus(net::Network& network, RpcConfig config = {});

  /// Marks a host unreachable: requests to it and responses from it vanish
  /// (callers time out at the protocol layer). Used by fault injection.
  void set_host_down(NodeId node, bool down);
  bool host_down(NodeId node) const;

  /// Installs (or clears, with a default-constructed value) the control-plane
  /// chaos configuration.
  void set_chaos(RpcChaos chaos) { chaos_ = chaos; }
  const RpcChaos& chaos() const { return chaos_; }

  /// Installs a finite-capacity service model for `server`. Calls addressed
  /// to it queue through `queue` (per-class modeled cost, optional admission
  /// control) instead of the flat `service_time`. Pass nullptr to clear. The
  /// queue is owned by the caller and must outlive the bus's use of it.
  void set_service_queue(NodeId server, ServiceQueue* queue);
  ServiceQueue* service_queue(NodeId server) const;

  /// Typed request/response call. `handler` runs on the server after the
  /// request arrives plus the service time; its return value is shipped back
  /// and passed to `on_response` on the caller. `options` classify the call
  /// for an installed ServiceQueue; `shed_response` (optional) is evaluated
  /// server-side when admission control sheds the call, shipping a typed
  /// rejection (e.g. an `overloaded` error) back instead of leaving the
  /// caller to time out.
  template <typename Resp>
  void call(NodeId client, NodeId server, std::function<Resp()> handler,
            std::function<void(Resp)> on_response, CallOptions options = {},
            std::function<Resp()> shed_response = nullptr) {
    call_async<Resp>(
        client, server,
        [handler = std::move(handler)](std::function<void(Resp)> respond) {
          respond(handler());
        },
        std::move(on_response), options, std::move(shed_response));
  }

  /// Like call(), but the server handler completes asynchronously by
  /// invoking the supplied `respond` continuation (possibly much later, e.g.
  /// after a bulk data transfer it coordinates).
  template <typename Resp>
  void call_async(NodeId client, NodeId server,
                  std::function<void(std::function<void(Resp)>)> handler,
                  std::function<void(Resp)> on_response, CallOptions options = {},
                  std::function<Resp()> shed_response = nullptr) {
    ++calls_started_;
    if (host_down(client) || host_down(server)) {
      record_dropped_call(client, server);  // lost request
      return;
    }
    send_control(
        client, server, config_.request_wire_size,
        [this, client, server, options, handler = std::move(handler),
         on_response = std::move(on_response),
         shed_response = std::move(shed_response)]() mutable {
          if (host_down(server)) {  // died mid-flight
            record_dropped_call(client, server);
            return;
          }
          // Exactly one of serve/shed runs, so the response continuation is
          // shared between them.
          auto respond_cb = std::make_shared<std::function<void(Resp)>>(
              std::move(on_response));
          auto serve = [this, client, server, handler = std::move(handler),
                        respond_cb]() mutable {
            if (host_down(server)) {
              record_dropped_call(client, server);
              return;
            }
            auto respond = [this, client, server, respond_cb](Resp resp) {
              if (host_down(server)) {  // died before responding
                record_dropped_call(client, server);
                return;
              }
              send_control(server, client, config_.response_wire_size,
                           [this, client, server, resp = std::move(resp),
                            respond_cb]() mutable {
                             if (host_down(client)) {
                               record_dropped_call(client, server);
                               return;
                             }
                             ++calls_completed_;
                             (*respond_cb)(std::move(resp));
                           });
            };
            handler(std::move(respond));
          };
          ServiceQueue* queue = service_queue(server);
          if (queue == nullptr) {
            network_.simulation().schedule_after(config_.service_time,
                                                 std::move(serve));
            return;
          }
          std::function<void()> shed;
          if (shed_response) {
            // A shed call is rejected cheaply: no service cost, just the
            // response wire trip carrying the typed rejection.
            shed = [this, client, server, respond_cb,
                    shed_response = std::move(shed_response)]() mutable {
              if (host_down(server)) {
                record_dropped_call(client, server);
                return;
              }
              send_control(server, client, config_.response_wire_size,
                           [this, client, server, respond_cb,
                            shed_response = std::move(shed_response)]() {
                             if (host_down(client)) {
                               record_dropped_call(client, server);
                               return;
                             }
                             ++calls_completed_;
                             (*respond_cb)(shed_response());
                           });
            };
          }
          queue->submit(options.svc, options.tenant, std::move(serve),
                        std::move(shed));
        });
  }

  /// One-way notification (e.g. heartbeat): no response message. When the
  /// receiver has a ServiceQueue installed, the handler rides it under
  /// `options`; a shed notification is silently dropped (and counted by the
  /// queue) — its handler never executes.
  void notify(NodeId sender, NodeId receiver, std::function<void()> handler,
              CallOptions options = {});

  std::uint64_t calls_started() const { return calls_started_; }
  std::uint64_t calls_completed() const { return calls_completed_; }
  /// Calls abandoned because an endpoint was down at some stage (request
  /// never sent, server died mid-call, response undeliverable).
  std::uint64_t calls_dropped() const { return calls_dropped_; }
  /// Control messages lost to chaos injection (distinct from host-down
  /// drops: the hosts were healthy, the message itself vanished).
  std::uint64_t messages_lost() const { return messages_lost_; }
  std::uint64_t messages_delayed() const { return messages_delayed_; }
  const RpcConfig& config() const { return config_; }

 private:
  void record_dropped_call(NodeId client, NodeId server);

  /// Sends one control message, applying chaos loss/delay when configured.
  void send_control(NodeId from, NodeId to, Bytes size,
                    std::function<void()> on_delivered);

  net::Network& network_;
  RpcConfig config_;
  RpcChaos chaos_;
  std::vector<bool> down_;
  std::vector<ServiceQueue*> queues_;  // indexed by server NodeId
  std::uint64_t calls_started_ = 0;
  std::uint64_t calls_completed_ = 0;
  std::uint64_t calls_dropped_ = 0;
  std::uint64_t messages_lost_ = 0;
  std::uint64_t messages_delayed_ = 0;
};

}  // namespace smarth::rpc
