// Client-side RPC retry: per-attempt timeout, exponential backoff with
// multiplicative jitter, bounded attempts. The simulated RpcBus silently
// drops messages to/from down hosts (like real lost TCP SYNs), so every
// consumer that must make progress through faults wraps its calls here
// instead of waiting forever on a response that will never come.
//
// Duplicate-response hygiene: an attempt that merely timed out may still
// deliver its response later (slow, not lost). The shared `settled` flag
// ensures exactly one of {on_response, on_give_up} runs, exactly once.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "rpc/rpc_bus.hpp"
#include "sim/simulation.hpp"
#include "trace/metrics_registry.hpp"
#include "trace/trace_recorder.hpp"

namespace smarth::rpc {

struct RetryPolicy {
  /// Per-attempt response deadline.
  SimDuration timeout = seconds(2);
  /// Total attempts (first try included). Must be >= 1.
  int max_attempts = 4;
  /// Backoff before attempt k (k >= 2) is base * 2^(k-2), capped at max,
  /// then scaled by a jitter factor in [1-jitter, 1+jitter].
  SimDuration backoff_base = milliseconds(200);
  SimDuration backoff_max = seconds(5);
  double jitter = 0.2;
};

/// Aggregated per-client retry accounting, surfaced in the metrics report.
struct RetryStats {
  std::uint64_t retries = 0;   ///< attempts beyond the first, across calls
  std::uint64_t give_ups = 0;  ///< calls abandoned after max_attempts
};

namespace detail {

/// Backoff before the attempt after `attempt`, with multiplicative jitter.
inline SimDuration retry_backoff(const RetryPolicy& policy, int attempt,
                                 sim::Simulation& sim) {
  SimDuration backoff = policy.backoff_base;
  for (int i = 2; i < attempt + 1 && backoff < policy.backoff_max; ++i) {
    backoff *= 2;
  }
  if (backoff > policy.backoff_max) backoff = policy.backoff_max;
  if (policy.jitter > 0.0) {
    const double scale = 1.0 + policy.jitter * (2.0 * sim.rng().uniform() - 1.0);
    backoff = static_cast<SimDuration>(static_cast<double>(backoff) * scale);
  }
  return backoff;
}

}  // namespace detail

/// Issues `bus.call<Resp>(client, server, handler, ...)` with retries.
/// `on_response` receives the first response to arrive; `on_give_up` runs if
/// all attempts time out. `stats` (optional) must outlive the call chain —
/// pass a shared_ptr owned by the initiating stream/client. `label` names
/// the call in the metrics registry and trace ("rpc.<label>.retries"); every
/// retry and give-up also lands in the global rpc.retries / rpc.give_ups
/// counters, which mirror the summed RetryStats of all callers.
///
/// `options` / `shed_response` thread through to the bus (service-queue
/// classification and typed shed rejections). `retry_on` (optional) makes a
/// *response* retryable: when it returns true for an arriving response and
/// attempts remain, the call backs off and relaunches instead of settling —
/// this is how clients honor the namenode's typed `overloaded` rejections
/// with the existing backoff machinery. The final attempt's response is
/// always delivered, so callers see the error and can fall back to their own
/// budgeted wait.
template <typename Resp>
void call_with_retry(RpcBus& bus, sim::Simulation& sim,
                     const RetryPolicy& policy, NodeId client, NodeId server,
                     std::function<Resp()> handler,
                     std::function<void(Resp)> on_response,
                     std::function<void()> on_give_up,
                     std::shared_ptr<RetryStats> stats = nullptr,
                     const char* label = "call", CallOptions options = {},
                     std::function<Resp()> shed_response = nullptr,
                     std::function<bool(const Resp&)> retry_on = nullptr) {
  struct State {
    bool settled = false;
    int attempt = 0;  // attempts issued so far
    /// A retryable response arrived and its backoff relaunch is pending;
    /// suppresses the same attempt's timeout so it cannot double-launch.
    bool response_retry_pending = false;
  };
  auto state = std::make_shared<State>();
  // Recursive attempt launcher, stored in a shared_ptr so the timeout
  // callback can re-enter it. The stored lambda holds only a *weak* ref to
  // itself — the pending timeout/backoff events carry the strong refs — so
  // the launcher dies with its last scheduled event instead of keeping
  // itself alive through a shared_ptr cycle.
  auto launch = std::make_shared<std::function<void()>>();
  std::weak_ptr<std::function<void()>> weak_launch = launch;
  *launch = [&bus, &sim, policy, client, server, handler = std::move(handler),
             on_response = std::move(on_response),
             on_give_up = std::move(on_give_up), stats, state, weak_launch,
             label, options, shed_response = std::move(shed_response),
             retry_on = std::move(retry_on)]() {
    auto self = weak_launch.lock();  // alive: our caller holds a strong ref
    state->response_retry_pending = false;
    const int attempt = ++state->attempt;
    if (attempt > 1) {
      if (stats) ++stats->retries;
      metrics::global_registry().counter("rpc.retries").add();
      metrics::global_registry()
          .counter(std::string("rpc.") + label + ".retries")
          .add();
      if (trace::active()) {
        trace::recorder()->instant(
            trace::Category::kRpc, "rpc", std::string("retry ") + label,
            {{"attempt", std::to_string(attempt)},
             {"client", client.to_string()},
             {"server", server.to_string()}});
      }
    }
    bus.call<Resp>(
        client, server, handler,
        [&sim, policy, attempt, state, self, on_response, retry_on,
         label](Resp resp) {
          if (state->settled) return;  // a slow earlier attempt already won
          if (retry_on && retry_on(resp) && attempt < policy.max_attempts &&
              state->attempt == attempt && !state->response_retry_pending) {
            // Retryable rejection (e.g. overloaded): back off and relaunch.
            state->response_retry_pending = true;
            metrics::global_registry().counter("rpc.overload_retries").add();
            metrics::global_registry()
                .counter(std::string("rpc.") + label + ".overload_retries")
                .add();
            const SimDuration backoff =
                detail::retry_backoff(policy, attempt, sim);
            sim.schedule_after(backoff, [state, self]() {
              if (state->settled) return;
              (*self)();
            });
            return;
          }
          if (retry_on) {
            // A stale rejection from a superseded attempt, or a duplicate
            // while this attempt's backoff relaunch is pending: the in-flight
            // attempt owns the outcome.
            if (state->attempt != attempt && retry_on(resp)) return;
            if (state->response_retry_pending && state->attempt == attempt) {
              return;
            }
          }
          state->settled = true;
          on_response(std::move(resp));
        },
        options, shed_response);
    sim.schedule_after(policy.timeout, [&sim, policy, attempt, state, self,
                                        on_give_up, stats, client, server,
                                        label]() {
      if (state->settled || state->attempt != attempt ||
          state->response_retry_pending) {
        return;
      }
      if (attempt >= policy.max_attempts) {
        state->settled = true;
        if (stats) ++stats->give_ups;
        metrics::global_registry().counter("rpc.give_ups").add();
        if (trace::active()) {
          trace::recorder()->instant(
              trace::Category::kRpc, "rpc", std::string("give-up ") + label,
              {{"attempts", std::to_string(attempt)},
               {"client", client.to_string()},
               {"server", server.to_string()}});
        }
        on_give_up();
        return;
      }
      const SimDuration backoff = detail::retry_backoff(policy, attempt, sim);
      if (trace::active()) {
        trace::recorder()->instant(
            trace::Category::kRpc, "rpc", std::string("backoff ") + label,
            {{"next_attempt", std::to_string(attempt + 1)},
             {"backoff", format_duration(backoff)},
             {"client", client.to_string()},
             {"server", server.to_string()}});
      }
      sim.schedule_after(backoff, [self]() { (*self)(); });
    });
  };
  (*launch)();
}

}  // namespace smarth::rpc
