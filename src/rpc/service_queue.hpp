// Finite-capacity service model for an RPC server (the namenode). Installed
// on the RpcBus per server NodeId, it replaces the bus's flat per-call
// service_time with a serialized queue of modeled per-op costs, so heavy
// client traffic actually contends for namenode CPU the way it does in
// production — and, with admission control enabled, the server defends
// itself: bounded queue depth with priority-aware shedding (heartbeats/IBRs
// above client metadata ops above addBlock), heartbeat batch processing so
// datanode control load amortizes, and per-tenant in-flight addBlock caps so
// one client cannot starve the rest.
//
// Two modes share one queue object:
//  - service model only (`admission_control == false`): a single unbounded
//    FIFO served one op at a time at per-class cost. This is the honest
//    "undefended" namenode whose queue delay grows without bound past the
//    saturation knee.
//  - admission control (`admission_control == true`): three priority bands,
//    bounded total depth, shedding + displacement, batching, tenant caps.
//
// Everything is deterministic: no RNG, service order depends only on arrival
// order and class. Counters land in the metrics registry and are exposed as a
// plain struct for FaultSummary folding.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>

#include "common/units.hpp"
#include "sim/simulation.hpp"

namespace smarth::rpc {

/// Service class of an RPC, used for cost modeling and admission priority.
/// kDefault is served at the same priority (and cost) as kMeta; only calls
/// whose class materially matters are tagged at the call site.
enum class ServiceClass { kDefault = 0, kHeartbeat, kMeta, kAddBlock };

/// Per-call options threaded from call sites through the bus to the queue.
struct CallOptions {
  ServiceClass svc = ServiceClass::kDefault;
  /// Tenant identity for per-client caps (client id for addBlock); -1 = none.
  std::int64_t tenant = -1;
};

class ServiceQueue {
 public:
  struct Config {
    bool admission_control = false;
    SimDuration cost_heartbeat = microseconds(30);
    SimDuration cost_meta = microseconds(150);
    SimDuration cost_add_block = microseconds(350);
    /// Bounded total queue depth (admission control only).
    int queue_capacity = 256;
    /// Max heartbeats coalesced into one service slot (admission only).
    int heartbeat_batch_max = 32;
    /// Marginal cost of each batched heartbeat after the first, as a
    /// fraction of cost_heartbeat.
    double batch_marginal_cost = 0.25;
    /// Max queued+in-service addBlock ops per tenant; <= 0 disables.
    int per_tenant_addblock_cap = 4;
  };

  struct Counters {
    std::uint64_t admitted = 0;
    std::uint64_t served = 0;
    std::uint64_t shed_total = 0;
    std::uint64_t shed_heartbeats = 0;
    std::uint64_t shed_add_blocks = 0;
    std::uint64_t addblock_cap_rejections = 0;
    std::uint64_t heartbeat_batches = 0;
    std::uint64_t heartbeats_batched = 0;
  };

  ServiceQueue(sim::Simulation& sim, Config config);

  /// Submits one op. Exactly one of `serve` / `shed` eventually runs:
  /// `serve` after the op's turn in the queue plus its service cost, `shed`
  /// immediately if admission control rejects it (may be null — a shed
  /// notification is simply dropped, which is the point: a shed heartbeat's
  /// handler never executes, so it cannot feed suspicion or re-registration).
  void submit(ServiceClass cls, std::int64_t tenant, std::function<void()> serve,
              std::function<void()> shed);

  const Counters& counters() const { return counters_; }
  /// Ops currently queued (not counting the batch in service).
  std::size_t depth() const;
  bool admission_control() const { return config_.admission_control; }

 private:
  struct Op {
    ServiceClass cls;
    std::int64_t tenant;
    std::function<void()> serve;
    std::function<void()> shed;
    SimTime enqueued_at;
  };

  SimDuration cost_of(ServiceClass cls) const;
  static int priority_of(ServiceClass cls);  // higher serves first
  /// Refreshes the nn.rpc.queue_depth gauge after any structural change, so
  /// the flight recorder can sample backlog as a time series.
  void update_depth_gauge();
  void shed_op(Op op, bool cap_rejection);
  void enqueue(Op op);
  void maybe_serve();

  sim::Simulation& sim_;
  Config config_;
  Counters counters_;
  bool busy_ = false;
  /// Undefended mode: strict arrival-order FIFO across classes.
  std::deque<Op> fifo_;
  /// Admission mode: one band per priority level (index = priority).
  std::deque<Op> bands_[3];
  /// Queued + in-service addBlock ops per tenant.
  std::unordered_map<std::int64_t, int> tenant_add_blocks_;
};

}  // namespace smarth::rpc
