// A datanode's local disk, modelled as a FIFO write queue with a sustained
// write bandwidth and a fixed per-operation overhead. The per-packet store
// time this produces is the paper's `Tw`.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "common/units.hpp"
#include "sim/simulation.hpp"

namespace smarth::storage {

class DiskDevice {
 public:
  using WriteCallback = std::function<void()>;

  /// Reads default to `read_ratio * write_bandwidth` unless set explicitly
  /// (rotational media typically read somewhat faster than they write).
  DiskDevice(sim::Simulation& sim, std::string name, Bandwidth write_bandwidth,
             SimDuration per_op_overhead);

  const std::string& name() const { return name_; }
  Bandwidth write_bandwidth() const { return write_bandwidth_; }
  void set_write_bandwidth(Bandwidth bw) { write_bandwidth_ = bw; }
  Bandwidth read_bandwidth() const;
  void set_read_bandwidth(Bandwidth bw) { read_bandwidth_ = bw; }

  /// Enqueues a write of `size` bytes; `on_done` fires when it is durable.
  void write(Bytes size, WriteCallback on_done);
  /// Coalesced write representing `ops` logical operations: pays the per-op
  /// overhead `ops` times (block-fidelity parity with packet-granularity
  /// writes) and advances ops_completed() by `ops`.
  void write(Bytes size, std::uint64_t ops, WriteCallback on_done);

  /// Enqueues a read of `size` bytes; reads and writes share the same FIFO
  /// (one head), so concurrent readers contend with the write path — the
  /// I/O-interference effect block reads cause on ingesting datanodes.
  void read(Bytes size, WriteCallback on_done);
  void read(Bytes size, std::uint64_t ops, WriteCallback on_done);

  /// Expected service time for one write of `size` (used by the analytic
  /// model to derive Tw).
  SimDuration service_time(Bytes size) const;
  SimDuration read_service_time(Bytes size) const;

  // --- Statistics -----------------------------------------------------------
  bool busy() const { return busy_; }
  std::size_t queue_depth() const { return queue_.size(); }
  Bytes bytes_written() const { return bytes_written_; }
  Bytes bytes_read() const { return bytes_read_; }
  std::uint64_t ops_completed() const { return ops_completed_; }
  SimDuration busy_time() const;

 private:
  struct Pending {
    Bytes size;
    std::uint64_t ops;
    bool is_read;
    WriteCallback on_done;
  };

  void enqueue(Bytes size, std::uint64_t ops, bool is_read,
               WriteCallback on_done);
  void start_next();

  sim::Simulation& sim_;
  std::string name_;
  Bandwidth write_bandwidth_;
  Bandwidth read_bandwidth_;  ///< unlimited sentinel => derived from write
  SimDuration per_op_overhead_;

  std::deque<Pending> queue_;
  bool busy_ = false;
  Bytes bytes_written_ = 0;
  Bytes bytes_read_ = 0;
  std::uint64_t ops_completed_ = 0;
  SimDuration busy_accum_ = 0;
  SimTime busy_since_ = 0;
};

}  // namespace smarth::storage
