#include "storage/disk.hpp"

#include "common/check.hpp"

namespace smarth::storage {

namespace {
/// Rotational media read somewhat faster than they write; used when no
/// explicit read bandwidth is configured.
constexpr double kDefaultReadRatio = 1.2;
}  // namespace

DiskDevice::DiskDevice(sim::Simulation& sim, std::string name,
                       Bandwidth write_bandwidth, SimDuration per_op_overhead)
    : sim_(sim), name_(std::move(name)), write_bandwidth_(write_bandwidth),
      read_bandwidth_(kUnlimitedBandwidth),
      per_op_overhead_(per_op_overhead) {
  SMARTH_CHECK(per_op_overhead_ >= 0);
}

Bandwidth DiskDevice::read_bandwidth() const {
  if (!read_bandwidth_.is_unlimited()) return read_bandwidth_;
  return Bandwidth::bits_per_second(write_bandwidth_.bits_per_second() *
                                    kDefaultReadRatio);
}

SimDuration DiskDevice::service_time(Bytes size) const {
  return per_op_overhead_ + write_bandwidth_.transmit_time(size);
}

SimDuration DiskDevice::read_service_time(Bytes size) const {
  return per_op_overhead_ + read_bandwidth().transmit_time(size);
}

void DiskDevice::write(Bytes size, WriteCallback on_done) {
  enqueue(size, /*ops=*/1, /*is_read=*/false, std::move(on_done));
}

void DiskDevice::write(Bytes size, std::uint64_t ops, WriteCallback on_done) {
  enqueue(size, ops, /*is_read=*/false, std::move(on_done));
}

void DiskDevice::read(Bytes size, WriteCallback on_done) {
  enqueue(size, /*ops=*/1, /*is_read=*/true, std::move(on_done));
}

void DiskDevice::read(Bytes size, std::uint64_t ops, WriteCallback on_done) {
  enqueue(size, ops, /*is_read=*/true, std::move(on_done));
}

void DiskDevice::enqueue(Bytes size, std::uint64_t ops, bool is_read,
                         WriteCallback on_done) {
  SMARTH_CHECK_MSG(size >= 0, "negative op size on " << name_);
  SMARTH_CHECK(ops >= 1);
  SMARTH_CHECK(static_cast<bool>(on_done));
  queue_.push_back(Pending{size, ops, is_read, std::move(on_done)});
  if (!busy_) start_next();
}

void DiskDevice::start_next() {
  if (queue_.empty()) {
    busy_ = false;
    return;
  }
  Pending op = std::move(queue_.front());
  queue_.pop_front();
  busy_ = true;
  busy_since_ = sim_.now();
  // A coalesced request (ops > 1) pays the per-op overhead once per logical
  // operation so block-fidelity runs charge the same seek/syscall budget a
  // packet-granularity run would.
  const SimDuration per_op =
      static_cast<SimDuration>(op.ops) * per_op_overhead_;
  const SimDuration service =
      per_op + (op.is_read ? read_bandwidth() : write_bandwidth_)
                   .transmit_time(op.size);
  sim_.post_after(service, "disk.io", [this, op = std::move(op)]() mutable {
    busy_accum_ += sim_.now() - busy_since_;
    busy_ = false;
    if (op.is_read) {
      bytes_read_ += op.size;
    } else {
      bytes_written_ += op.size;
    }
    ops_completed_ += op.ops;
    op.on_done();
    if (!busy_) start_next();
  });
}

SimDuration DiskDevice::busy_time() const {
  SimDuration t = busy_accum_;
  if (busy_) t += sim_.now() - busy_since_;
  return t;
}

}  // namespace smarth::storage
