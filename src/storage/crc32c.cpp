#include "storage/crc32c.hpp"

#include <array>

namespace smarth::storage {
namespace {

// Reflected CRC32C table, generated once at static-init time from the
// reversed Castagnoli polynomial.
std::array<std::uint32_t, 256> make_table() {
  constexpr std::uint32_t kPoly = 0x82F63B78u;
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) != 0 ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

const std::array<std::uint32_t, 256>& table() {
  static const std::array<std::uint32_t, 256> t = make_table();
  return t;
}

}  // namespace

std::uint32_t crc32c(const void* data, std::size_t len, std::uint32_t seed) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  const auto& t = table();
  std::uint32_t crc = ~seed;
  for (std::size_t i = 0; i < len; ++i) {
    crc = t[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

std::uint32_t crc32c_of_u64(std::uint64_t value) {
  unsigned char buf[8];
  for (int i = 0; i < 8; ++i) {
    buf[i] = static_cast<unsigned char>((value >> (8 * i)) & 0xFFu);
  }
  return crc32c(buf, sizeof buf);
}

}  // namespace smarth::storage
