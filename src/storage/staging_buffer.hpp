// Bounded staging buffer accounting for a datanode: bytes received from
// upstream but not yet both forwarded downstream and written to disk. The
// paper's buffer-overflow guard (§IV-C) bounds this at one block per client
// by capping pipeline fan-out; this class makes the bound observable and the
// overflow case testable.
#pragma once

#include <cstdint>

#include "common/units.hpp"

namespace smarth::storage {

class StagingBuffer {
 public:
  explicit StagingBuffer(Bytes capacity);

  Bytes capacity() const { return capacity_; }
  Bytes used() const { return used_; }
  Bytes free() const { return capacity_ - used_; }
  Bytes high_water() const { return high_water_; }
  std::uint64_t overflow_events() const { return overflow_events_; }

  bool fits(Bytes size) const { return used_ + size <= capacity_; }

  /// Reserves space; returns false (and counts an overflow event) if the
  /// buffer cannot hold `size` more bytes.
  bool reserve(Bytes size);
  /// Forces the reservation even when over capacity (models memory pressure
  /// in the unguarded ablation); still records the overflow.
  void reserve_forced(Bytes size);
  void release(Bytes size);

 private:
  Bytes capacity_;
  Bytes used_ = 0;
  Bytes high_water_ = 0;
  std::uint64_t overflow_events_ = 0;
};

}  // namespace smarth::storage
