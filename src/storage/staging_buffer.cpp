#include "storage/staging_buffer.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace smarth::storage {

StagingBuffer::StagingBuffer(Bytes capacity) : capacity_(capacity) {
  SMARTH_CHECK_MSG(capacity_ > 0, "staging buffer capacity must be positive");
}

bool StagingBuffer::reserve(Bytes size) {
  SMARTH_CHECK(size >= 0);
  if (!fits(size)) {
    ++overflow_events_;
    return false;
  }
  used_ += size;
  high_water_ = std::max(high_water_, used_);
  return true;
}

void StagingBuffer::reserve_forced(Bytes size) {
  SMARTH_CHECK(size >= 0);
  if (!fits(size)) ++overflow_events_;
  used_ += size;
  high_water_ = std::max(high_water_, used_);
}

void StagingBuffer::release(Bytes size) {
  SMARTH_CHECK(size >= 0);
  SMARTH_CHECK_MSG(size <= used_, "releasing more than reserved");
  used_ -= size;
}

}  // namespace smarth::storage
