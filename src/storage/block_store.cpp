#include "storage/block_store.hpp"

#include "storage/crc32c.hpp"

namespace smarth::storage {
namespace {

// SplitMix64 finalizer — cheap, well-mixed hash for synthetic chunk payloads.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

BlockStore::BlockStore(Bytes chunk_size) : chunk_size_(chunk_size) {}

std::uint64_t BlockStore::chunk_fingerprint(BlockId block, std::size_t chunk) {
  return mix64(static_cast<std::uint64_t>(block.value()) ^
               mix64(static_cast<std::uint64_t>(chunk)));
}

void BlockStore::resize_chunks(ReplicaEntry& entry, Bytes new_length) {
  const auto needed = static_cast<std::size_t>(
      (new_length + chunk_size_ - 1) / chunk_size_);
  const std::size_t old = entry.chunks.size();
  entry.chunks.resize(needed);
  for (std::size_t i = old; i < needed; ++i) {
    entry.chunks[i].data = chunk_fingerprint(entry.info.block, i);
    entry.chunks[i].crc = crc32c_of_u64(entry.chunks[i].data);
  }
}

Status BlockStore::create_replica(BlockId block) {
  auto [it, inserted] = replicas_.try_emplace(block);
  if (!inserted) {
    return make_error("replica_exists",
                      "replica already present: " + block.to_string());
  }
  it->second.info.block = block;
  return Status::ok_status();
}

Status BlockStore::append(BlockId block, Bytes bytes) {
  auto it = replicas_.find(block);
  if (it == replicas_.end()) {
    return make_error("replica_missing", "no replica " + block.to_string());
  }
  if (it->second.info.state != ReplicaState::kBeingWritten) {
    return make_error("replica_finalized",
                      "append to finalized replica " + block.to_string());
  }
  if (bytes < 0) {
    return make_error("bad_length", "negative append length");
  }
  it->second.info.bytes += bytes;
  resize_chunks(it->second, it->second.info.bytes);
  return Status::ok_status();
}

Result<Bytes> BlockStore::finalize(BlockId block) {
  auto it = replicas_.find(block);
  if (it == replicas_.end()) {
    return Error{"replica_missing", "no replica " + block.to_string()};
  }
  it->second.info.state = ReplicaState::kFinalized;
  return it->second.info.bytes;
}

Status BlockStore::remove(BlockId block) {
  if (replicas_.erase(block) == 0) {
    return make_error("replica_missing", "no replica " + block.to_string());
  }
  return Status::ok_status();
}

Status BlockStore::truncate(BlockId block, Bytes length) {
  auto it = replicas_.find(block);
  if (it == replicas_.end()) {
    return make_error("replica_missing", "no replica " + block.to_string());
  }
  // Pipeline recovery may reopen a replica a fast node already finalized;
  // it returns to the being-written state until the rebuilt pipeline
  // finalizes it again (HDFS block recovery does the same).
  it->second.info.state = ReplicaState::kBeingWritten;
  if (length < 0 || length > it->second.info.bytes) {
    return make_error("bad_length",
                      "truncate length outside [0, current] for " +
                          block.to_string());
  }
  it->second.info.bytes = length;
  // Drop chunks past the new tail and rewrite the (now partial) tail chunk:
  // recovery re-syncs from a good source, so the tail comes back clean even
  // if it had rotted.
  it->second.chunks.resize(static_cast<std::size_t>(
      (length + chunk_size_ - 1) / chunk_size_));
  if (!it->second.chunks.empty()) {
    const std::size_t tail = it->second.chunks.size() - 1;
    it->second.chunks[tail].data = chunk_fingerprint(block, tail);
    it->second.chunks[tail].crc = crc32c_of_u64(it->second.chunks[tail].data);
  }
  return Status::ok_status();
}

bool BlockStore::has_replica(BlockId block) const {
  return replicas_.find(block) != replicas_.end();
}

Result<ReplicaInfo> BlockStore::replica(BlockId block) const {
  auto it = replicas_.find(block);
  if (it == replicas_.end()) {
    return Error{"replica_missing", "no replica " + block.to_string()};
  }
  return it->second.info;
}

std::size_t BlockStore::finalized_count() const {
  std::size_t n = 0;
  for (const auto& [id, entry] : replicas_) {
    if (entry.info.state == ReplicaState::kFinalized) ++n;
  }
  return n;
}

Bytes BlockStore::total_bytes() const {
  Bytes total = 0;
  for (const auto& [id, entry] : replicas_) total += entry.info.bytes;
  return total;
}

std::vector<ReplicaInfo> BlockStore::all_replicas() const {
  std::vector<ReplicaInfo> out;
  out.reserve(replicas_.size());
  for (const auto& [id, entry] : replicas_) out.push_back(entry.info);
  return out;
}

std::size_t BlockStore::chunk_count(BlockId block) const {
  auto it = replicas_.find(block);
  return it == replicas_.end() ? 0 : it->second.chunks.size();
}

Bytes BlockStore::chunk_bytes(BlockId block, std::size_t chunk) const {
  auto it = replicas_.find(block);
  if (it == replicas_.end() || chunk >= it->second.chunks.size()) return 0;
  const Bytes start = static_cast<Bytes>(chunk) * chunk_size_;
  const Bytes remaining = it->second.info.bytes - start;
  return remaining < chunk_size_ ? remaining : chunk_size_;
}

Status BlockStore::rot_chunk(BlockId block, std::size_t chunk) {
  auto it = replicas_.find(block);
  if (it == replicas_.end()) {
    return make_error("replica_missing", "no replica " + block.to_string());
  }
  if (chunk >= it->second.chunks.size()) {
    return make_error("bad_chunk", "chunk index out of range for " +
                                       block.to_string());
  }
  Chunk& c = it->second.chunks[chunk];
  const bool was_clean = crc32c_of_u64(c.data) == c.crc;
  // Flip every bit of the stored fingerprint; the recorded CRC no longer
  // matches, which is exactly what a decayed sector looks like to a verifier.
  c.data = ~c.data;
  if (was_clean) ++chunks_rotted_;
  return Status::ok_status();
}

bool BlockStore::chunk_ok(BlockId block, std::size_t chunk) const {
  auto it = replicas_.find(block);
  if (it == replicas_.end() || chunk >= it->second.chunks.size()) return false;
  const Chunk& c = it->second.chunks[chunk];
  return crc32c_of_u64(c.data) == c.crc;
}

bool BlockStore::verify_range(BlockId block, Bytes offset, Bytes length) const {
  auto it = replicas_.find(block);
  if (it == replicas_.end()) return false;
  if (offset < 0 || length < 0 || offset + length > it->second.info.bytes) {
    return false;
  }
  if (length == 0) return true;
  const auto first = static_cast<std::size_t>(offset / chunk_size_);
  const auto last =
      static_cast<std::size_t>((offset + length - 1) / chunk_size_);
  for (std::size_t i = first; i <= last; ++i) {
    const Chunk& c = it->second.chunks[i];
    if (crc32c_of_u64(c.data) != c.crc) return false;
  }
  return true;
}

std::vector<std::size_t> BlockStore::corrupt_chunks(BlockId block) const {
  std::vector<std::size_t> out;
  auto it = replicas_.find(block);
  if (it == replicas_.end()) return out;
  for (std::size_t i = 0; i < it->second.chunks.size(); ++i) {
    const Chunk& c = it->second.chunks[i];
    if (crc32c_of_u64(c.data) != c.crc) out.push_back(i);
  }
  return out;
}

}  // namespace smarth::storage
