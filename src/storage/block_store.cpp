#include "storage/block_store.hpp"

namespace smarth::storage {

Status BlockStore::create_replica(BlockId block) {
  auto [it, inserted] = replicas_.try_emplace(block);
  if (!inserted) {
    return make_error("replica_exists",
                      "replica already present: " + block.to_string());
  }
  it->second.block = block;
  return Status::ok_status();
}

Status BlockStore::append(BlockId block, Bytes bytes) {
  auto it = replicas_.find(block);
  if (it == replicas_.end()) {
    return make_error("replica_missing", "no replica " + block.to_string());
  }
  if (it->second.state != ReplicaState::kBeingWritten) {
    return make_error("replica_finalized",
                      "append to finalized replica " + block.to_string());
  }
  if (bytes < 0) {
    return make_error("bad_length", "negative append length");
  }
  it->second.bytes += bytes;
  return Status::ok_status();
}

Result<Bytes> BlockStore::finalize(BlockId block) {
  auto it = replicas_.find(block);
  if (it == replicas_.end()) {
    return Error{"replica_missing", "no replica " + block.to_string()};
  }
  it->second.state = ReplicaState::kFinalized;
  return it->second.bytes;
}

Status BlockStore::remove(BlockId block) {
  if (replicas_.erase(block) == 0) {
    return make_error("replica_missing", "no replica " + block.to_string());
  }
  return Status::ok_status();
}

Status BlockStore::truncate(BlockId block, Bytes length) {
  auto it = replicas_.find(block);
  if (it == replicas_.end()) {
    return make_error("replica_missing", "no replica " + block.to_string());
  }
  // Pipeline recovery may reopen a replica a fast node already finalized;
  // it returns to the being-written state until the rebuilt pipeline
  // finalizes it again (HDFS block recovery does the same).
  it->second.state = ReplicaState::kBeingWritten;
  if (length < 0 || length > it->second.bytes) {
    return make_error("bad_length",
                      "truncate length outside [0, current] for " +
                          block.to_string());
  }
  it->second.bytes = length;
  return Status::ok_status();
}

bool BlockStore::has_replica(BlockId block) const {
  return replicas_.find(block) != replicas_.end();
}

Result<ReplicaInfo> BlockStore::replica(BlockId block) const {
  auto it = replicas_.find(block);
  if (it == replicas_.end()) {
    return Error{"replica_missing", "no replica " + block.to_string()};
  }
  return it->second;
}

std::size_t BlockStore::finalized_count() const {
  std::size_t n = 0;
  for (const auto& [id, info] : replicas_) {
    if (info.state == ReplicaState::kFinalized) ++n;
  }
  return n;
}

Bytes BlockStore::total_bytes() const {
  Bytes total = 0;
  for (const auto& [id, info] : replicas_) total += info.bytes;
  return total;
}

std::vector<ReplicaInfo> BlockStore::all_replicas() const {
  std::vector<ReplicaInfo> out;
  out.reserve(replicas_.size());
  for (const auto& [id, info] : replicas_) out.push_back(info);
  return out;
}

}  // namespace smarth::storage
