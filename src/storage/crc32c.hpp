// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78) — the
// checksum HDFS stores per 512-byte chunk in replica .meta files. The block
// store keeps one CRC per simulated chunk so bit-rot at rest is detectable
// by the read path and the background scanner.
#pragma once

#include <cstddef>
#include <cstdint>

namespace smarth::storage {

/// One-shot CRC32C over `len` bytes. `seed` chains incremental computations
/// (pass a previous return value to continue).
std::uint32_t crc32c(const void* data, std::size_t len, std::uint32_t seed = 0);

/// Convenience for the simulator's synthetic chunk contents: CRC32C of one
/// little-endian 64-bit fingerprint.
std::uint32_t crc32c_of_u64(std::uint64_t value);

}  // namespace smarth::storage
