// Per-datanode replica catalogue: which blocks this node holds, how many
// bytes of each have been durably written, and whether the replica has been
// finalized. Integration tests use it to verify that every byte uploaded by a
// client ends up in `replication` finalized replicas.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/ids.hpp"
#include "common/result.hpp"
#include "common/units.hpp"

namespace smarth::storage {

enum class ReplicaState { kBeingWritten, kFinalized };

struct ReplicaInfo {
  BlockId block;
  Bytes bytes = 0;
  ReplicaState state = ReplicaState::kBeingWritten;
};

class BlockStore {
 public:
  /// Starts a replica in kBeingWritten state; fails if it already exists.
  Status create_replica(BlockId block);

  /// Appends durably written bytes to an open replica.
  Status append(BlockId block, Bytes bytes);

  /// Marks the replica complete; returns its final length.
  Result<Bytes> finalize(BlockId block);

  /// Drops a replica (recovery discards partial replicas on failed nodes).
  Status remove(BlockId block);

  /// Truncates an open replica to `length` (pipeline recovery syncs all
  /// survivors to the minimum acked length).
  Status truncate(BlockId block, Bytes length);

  bool has_replica(BlockId block) const;
  Result<ReplicaInfo> replica(BlockId block) const;

  std::size_t replica_count() const { return replicas_.size(); }
  std::size_t finalized_count() const;
  Bytes total_bytes() const;
  std::vector<ReplicaInfo> all_replicas() const;

 private:
  std::unordered_map<BlockId, ReplicaInfo> replicas_;
};

}  // namespace smarth::storage
