// Per-datanode replica catalogue: which blocks this node holds, how many
// bytes of each have been durably written, and whether the replica has been
// finalized. Integration tests use it to verify that every byte uploaded by a
// client ends up in `replication` finalized replicas.
//
// Since PR 4 the store also models at-rest data integrity: every replica
// carries one synthetic 64-bit fingerprint plus a CRC32C per fixed-size
// chunk (HDFS keeps a CRC per 512-byte chunk in the replica's .meta file;
// we use one CRC per simulated chunk). Bit-rot flips the stored fingerprint
// without updating the CRC, so any later verification — streaming reads,
// the background scanner, or re-replication source checks — detects the
// mismatch exactly the way a real checksum verifier would.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/ids.hpp"
#include "common/result.hpp"
#include "common/units.hpp"

namespace smarth::storage {

enum class ReplicaState { kBeingWritten, kFinalized };

struct ReplicaInfo {
  BlockId block;
  Bytes bytes = 0;
  ReplicaState state = ReplicaState::kBeingWritten;
};

class BlockStore {
 public:
  explicit BlockStore(Bytes chunk_size = 64 * kKiB);

  /// Starts a replica in kBeingWritten state; fails if it already exists.
  Status create_replica(BlockId block);

  /// Appends durably written bytes to an open replica.
  Status append(BlockId block, Bytes bytes);

  /// Marks the replica complete; returns its final length.
  Result<Bytes> finalize(BlockId block);

  /// Drops a replica (recovery discards partial replicas on failed nodes).
  Status remove(BlockId block);

  /// Truncates an open replica to `length` (pipeline recovery syncs all
  /// survivors to the minimum acked length).
  Status truncate(BlockId block, Bytes length);

  bool has_replica(BlockId block) const;
  Result<ReplicaInfo> replica(BlockId block) const;

  std::size_t replica_count() const { return replicas_.size(); }
  std::size_t finalized_count() const;
  Bytes total_bytes() const;
  std::vector<ReplicaInfo> all_replicas() const;

  // --- chunk-level integrity -----------------------------------------------

  Bytes chunk_size() const { return chunk_size_; }

  /// Number of checksummed chunks the replica currently spans
  /// (ceil(bytes / chunk_size)); 0 for an unknown block.
  std::size_t chunk_count(BlockId block) const;

  /// Bytes covered by chunk `chunk` of `block` (the tail chunk may be short).
  Bytes chunk_bytes(BlockId block, std::size_t chunk) const;

  /// Simulates bit-rot at rest: flips the stored payload fingerprint of one
  /// chunk while leaving its recorded CRC untouched, so every subsequent
  /// verification of that chunk fails.
  Status rot_chunk(BlockId block, std::size_t chunk);

  /// True when the chunk's stored fingerprint still matches its CRC.
  bool chunk_ok(BlockId block, std::size_t chunk) const;

  /// Verifies every chunk overlapping [offset, offset + length); true only
  /// when all of them check out. Unknown blocks / out-of-range spans fail.
  bool verify_range(BlockId block, Bytes offset, Bytes length) const;

  /// Sorted indices of chunks whose verification currently fails.
  std::vector<std::size_t> corrupt_chunks(BlockId block) const;

  /// Total rot_chunk() calls that flipped a clean chunk.
  std::uint64_t chunks_rotted() const { return chunks_rotted_; }

 private:
  struct Chunk {
    std::uint64_t data = 0;  // synthetic payload fingerprint
    std::uint32_t crc = 0;   // CRC32C recorded at write time
  };

  struct ReplicaEntry {
    ReplicaInfo info;
    std::vector<Chunk> chunks;
  };

  // Deterministic synthetic contents for chunk `chunk` of `block`; rewriting
  // a chunk (e.g. after truncate + re-append) regenerates the same clean
  // fingerprint.
  static std::uint64_t chunk_fingerprint(BlockId block, std::size_t chunk);

  void resize_chunks(ReplicaEntry& entry, Bytes new_length);

  Bytes chunk_size_;
  std::uint64_t chunks_rotted_ = 0;
  std::unordered_map<BlockId, ReplicaEntry> replicas_;
};

}  // namespace smarth::storage
