#include "common/units.hpp"

#include <cmath>
#include <cstdio>

namespace smarth {

std::string format_bytes(Bytes b) {
  char buf[64];
  const double v = static_cast<double>(b);
  if (b >= kGiB) {
    std::snprintf(buf, sizeof(buf), "%.2f GiB", v / static_cast<double>(kGiB));
  } else if (b >= kMiB) {
    std::snprintf(buf, sizeof(buf), "%.2f MiB", v / static_cast<double>(kMiB));
  } else if (b >= kKiB) {
    std::snprintf(buf, sizeof(buf), "%.2f KiB", v / static_cast<double>(kKiB));
  } else {
    std::snprintf(buf, sizeof(buf), "%lld B", static_cast<long long>(b));
  }
  return buf;
}

std::string format_bandwidth(Bandwidth bw) {
  if (bw.is_unlimited()) return "unlimited";
  char buf[64];
  const double bps = bw.bits_per_second();
  if (bps >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2f Gbps", bps / 1e9);
  } else if (bps >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2f Mbps", bps / 1e6);
  } else if (bps >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.2f Kbps", bps / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f bps", bps);
  }
  return buf;
}

std::string format_duration(SimDuration d) {
  char buf[64];
  const double v = static_cast<double>(d);
  if (d >= kSecond) {
    std::snprintf(buf, sizeof(buf), "%.3f s", v / static_cast<double>(kSecond));
  } else if (d >= kMillisecond) {
    std::snprintf(buf, sizeof(buf), "%.3f ms",
                  v / static_cast<double>(kMillisecond));
  } else if (d >= kMicrosecond) {
    std::snprintf(buf, sizeof(buf), "%.3f us",
                  v / static_cast<double>(kMicrosecond));
  } else {
    std::snprintf(buf, sizeof(buf), "%lld ns", static_cast<long long>(d));
  }
  return buf;
}

Bandwidth throughput_of(Bytes size, SimDuration elapsed) {
  if (elapsed <= 0) return kUnlimitedBandwidth;
  const double bits = static_cast<double>(size) * 8.0;
  return Bandwidth::bits_per_second(bits / to_seconds(elapsed));
}

}  // namespace smarth
