#include "common/flags.hpp"

#include <cstdlib>

#include "common/check.hpp"

namespace smarth {

FlagSet::FlagSet(std::string program_name) : program_(std::move(program_name)) {}

void FlagSet::declare(const std::string& name, const std::string& help,
                      const std::string& default_value) {
  SMARTH_CHECK_MSG(flags_.find(name) == flags_.end(),
                   "flag declared twice: " << name);
  flags_[name] = Flag{help, default_value, false, std::nullopt};
}

void FlagSet::declare_bool(const std::string& name, const std::string& help) {
  SMARTH_CHECK_MSG(flags_.find(name) == flags_.end(),
                   "flag declared twice: " << name);
  flags_[name] = Flag{help, "false", true, std::nullopt};
}

Status FlagSet::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    std::string name = arg;
    std::optional<std::string> value;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      return make_error("unknown_flag", "unknown flag --" + name);
    }
    if (!value) {
      if (it->second.is_bool) {
        value = "true";
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        return make_error("missing_value", "flag --" + name + " needs a value");
      }
    }
    it->second.value = std::move(value);
  }
  return Status::ok_status();
}

bool FlagSet::has(const std::string& name) const {
  auto it = flags_.find(name);
  return it != flags_.end() && it->second.value.has_value();
}

std::string FlagSet::get(const std::string& name) const {
  auto it = flags_.find(name);
  SMARTH_CHECK_MSG(it != flags_.end(), "undeclared flag: " << name);
  return it->second.value.value_or(it->second.default_value);
}

std::optional<std::int64_t> FlagSet::get_int(const std::string& name) const {
  const std::string v = get(name);
  if (v.empty()) return std::nullopt;
  char* end = nullptr;
  const long long parsed = std::strtoll(v.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return std::nullopt;
  return parsed;
}

std::optional<double> FlagSet::get_double(const std::string& name) const {
  const std::string v = get(name);
  if (v.empty()) return std::nullopt;
  char* end = nullptr;
  const double parsed = std::strtod(v.c_str(), &end);
  if (end == nullptr || *end != '\0') return std::nullopt;
  return parsed;
}

bool FlagSet::get_bool(const std::string& name) const {
  const std::string v = get(name);
  return v == "true" || v == "1" || v == "yes";
}

std::string FlagSet::usage() const {
  std::string out = "usage: " + program_ + " [flags]\n";
  for (const auto& [name, flag] : flags_) {
    out += "  --" + name;
    if (!flag.is_bool) out += "=<value>";
    out += "  " + flag.help;
    if (!flag.default_value.empty() && !flag.is_bool) {
      out += " (default: " + flag.default_value + ")";
    }
    out += "\n";
  }
  return out;
}

}  // namespace smarth
