#include "common/rng.hpp"

// Header-only implementation; this translation unit exists so the library has
// a stable archive member for the component and to hold future out-of-line
// additions.
