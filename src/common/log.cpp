#include "common/log.hpp"

#include <cstdio>

namespace smarth {

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::write(LogLevel level, const std::string& component,
                   const std::string& message) {
  if (!enabled(level)) return;
  std::string line;
  if (time_source_) {
    line += "[" + format_duration(time_source_()) + "] ";
  }
  line += "[";
  line += log_level_name(level);
  line += "] [" + component + "] " + message;
  if (sink_) {
    sink_(line);
  } else {
    std::fprintf(stderr, "%s\n", line.c_str());
  }
}

}  // namespace smarth
