#include "common/log.hpp"

#include <cstdio>

namespace smarth {

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

bool parse_log_level(const std::string& name, LogLevel& out) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) {
    lower += static_cast<char>(
        c >= 'A' && c <= 'Z' ? c - 'A' + 'a' : c);
  }
  if (lower == "trace") out = LogLevel::kTrace;
  else if (lower == "debug") out = LogLevel::kDebug;
  else if (lower == "info") out = LogLevel::kInfo;
  else if (lower == "warn" || lower == "warning") out = LogLevel::kWarn;
  else if (lower == "error") out = LogLevel::kError;
  else if (lower == "off" || lower == "none") out = LogLevel::kOff;
  else return false;
  return true;
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::write(LogLevel level, const std::string& component,
                   const std::string& message) {
  if (!enabled(level)) return;
  std::string line;
  if (time_source_) {
    line += "[" + format_duration(time_source_()) + "] ";
  }
  line += "[";
  line += log_level_name(level);
  line += "] [" + component + "] " + message;
  if (sink_) {
    sink_(line);
  } else {
    std::fprintf(stderr, "%s\n", line.c_str());
  }
}

KvLogStatement::KvLogStatement(LogLevel level, std::string component,
                               std::string event)
    : level_(level), component_(std::move(component)) {
  line_ = "event=" + event;
}

KvLogStatement::~KvLogStatement() {
  Logger::instance().write(level_, component_, line_);
}

KvLogStatement& KvLogStatement::kv(std::string_view key,
                                   const std::string& value) {
  line_ += " ";
  line_.append(key);
  line_ += "=";
  const bool needs_quotes =
      value.empty() || value.find_first_of(" \t\"") != std::string::npos;
  if (!needs_quotes) {
    line_ += value;
    return *this;
  }
  line_ += "\"";
  for (char c : value) {
    if (c == '"' || c == '\\') line_ += '\\';
    line_ += c;
  }
  line_ += "\"";
  return *this;
}

KvLogStatement& KvLogStatement::kv(std::string_view key, const char* value) {
  return kv(key, std::string(value));
}

KvLogStatement& KvLogStatement::kv(std::string_view key, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return kv(key, std::string(buf));
}

}  // namespace smarth
