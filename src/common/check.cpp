#include "common/check.hpp"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace smarth {

[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               const std::string& message) {
  std::string what = std::string("SMARTH_CHECK failed: ") + expr + " at " +
                     file + ":" + std::to_string(line);
  if (!message.empty()) what += " — " + message;
  // Throw rather than abort so tests can assert on invariant violations.
  throw std::logic_error(what);
}

}  // namespace smarth
