// A small command-line flag parser for the driver tools: --key=value and
// --key value forms, typed accessors with defaults, unknown-flag detection,
// and generated usage text. No global state; each tool builds its own set.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/result.hpp"

namespace smarth {

class FlagSet {
 public:
  explicit FlagSet(std::string program_name);

  /// Declares a flag; `help` appears in usage(). Declaration is required —
  /// parse() rejects undeclared flags.
  void declare(const std::string& name, const std::string& help,
               const std::string& default_value = "");
  /// Declares a boolean flag (present without value => true).
  void declare_bool(const std::string& name, const std::string& help);

  /// Parses argv; returns an error on unknown flags or missing values.
  Status parse(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name) const;
  std::optional<std::int64_t> get_int(const std::string& name) const;
  std::optional<double> get_double(const std::string& name) const;
  bool get_bool(const std::string& name) const;

  /// Positional (non-flag) arguments, in order.
  const std::vector<std::string>& positional() const { return positional_; }

  std::string usage() const;

 private:
  struct Flag {
    std::string help;
    std::string default_value;
    bool is_bool = false;
    std::optional<std::string> value;
  };

  std::string program_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
};

}  // namespace smarth
