// Strongly typed units used throughout the simulator: byte counts, bandwidth
// and simulated time. Keeping these as distinct vocabulary types (rather than
// bare integers) prevents the classic bits-vs-bytes and ms-vs-ns mistakes that
// plague network simulators.
#pragma once

#include <cstdint>
#include <string>

namespace smarth {

/// Simulated time in integer nanoseconds since simulation start.
/// An integral representation keeps the event queue exactly ordered and the
/// simulation bit-for-bit reproducible across platforms.
using SimTime = std::int64_t;

/// Simulated duration in nanoseconds.
using SimDuration = std::int64_t;

inline constexpr SimDuration kNanosecond = 1;
inline constexpr SimDuration kMicrosecond = 1000 * kNanosecond;
inline constexpr SimDuration kMillisecond = 1000 * kMicrosecond;
inline constexpr SimDuration kSecond = 1000 * kMillisecond;

constexpr SimDuration nanoseconds(std::int64_t n) { return n; }
constexpr SimDuration microseconds(std::int64_t n) { return n * kMicrosecond; }
constexpr SimDuration milliseconds(std::int64_t n) { return n * kMillisecond; }
constexpr SimDuration seconds(std::int64_t n) { return n * kSecond; }

/// Converts a (possibly fractional) second count to a SimDuration.
constexpr SimDuration seconds_f(double s) {
  return static_cast<SimDuration>(s * static_cast<double>(kSecond));
}

/// Converts a (possibly fractional) millisecond count to a SimDuration.
constexpr SimDuration milliseconds_f(double ms) {
  return static_cast<SimDuration>(ms * static_cast<double>(kMillisecond));
}

/// Converts a SimDuration to fractional seconds (for reporting only).
constexpr double to_seconds(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}

/// Byte counts. Plain integer with named constructors; all data sizes in the
/// system are expressed in bytes.
using Bytes = std::int64_t;

inline constexpr Bytes kKiB = 1024;
inline constexpr Bytes kMiB = 1024 * kKiB;
inline constexpr Bytes kGiB = 1024 * kMiB;

constexpr Bytes kib(std::int64_t n) { return n * kKiB; }
constexpr Bytes mib(std::int64_t n) { return n * kMiB; }
constexpr Bytes gib(std::int64_t n) { return n * kGiB; }

/// Network / disk bandwidth in bits per second. Stored as a double so that
/// shaped fractional rates (e.g. 216 Mbps NICs shared between flows) are
/// representable; comparisons in the simulator always go through durations,
/// which are integral.
class Bandwidth {
 public:
  constexpr Bandwidth() = default;
  static constexpr Bandwidth bits_per_second(double v) { return Bandwidth{v}; }
  static constexpr Bandwidth mbps(double v) { return Bandwidth{v * 1e6}; }
  static constexpr Bandwidth gbps(double v) { return Bandwidth{v * 1e9}; }
  /// Disk vendors quote bytes/s; convert explicitly.
  static constexpr Bandwidth mega_bytes_per_second(double v) {
    return Bandwidth{v * 8e6};
  }

  constexpr double bits_per_second() const { return bps_; }
  constexpr double mbps() const { return bps_ / 1e6; }
  constexpr double bytes_per_second() const { return bps_ / 8.0; }
  constexpr bool is_unlimited() const { return bps_ <= 0.0; }

  /// Time to serialize `size` bytes at this rate. Unlimited bandwidth
  /// serializes instantly.
  constexpr SimDuration transmit_time(Bytes size) const {
    if (is_unlimited() || size <= 0) return 0;
    const double secs = static_cast<double>(size) * 8.0 / bps_;
    return static_cast<SimDuration>(secs * static_cast<double>(kSecond));
  }

  friend constexpr bool operator==(Bandwidth a, Bandwidth b) {
    return a.bps_ == b.bps_;
  }
  friend constexpr bool operator<(Bandwidth a, Bandwidth b) {
    // "Unlimited" (<=0) compares greater than any finite rate.
    if (a.is_unlimited()) return false;
    if (b.is_unlimited()) return true;
    return a.bps_ < b.bps_;
  }
  friend constexpr Bandwidth min(Bandwidth a, Bandwidth b) {
    return a < b ? a : b;
  }

 private:
  explicit constexpr Bandwidth(double bps) : bps_(bps) {}
  double bps_ = 0.0;  // <= 0 means unlimited
};

/// Sentinel for an unshaped link.
inline constexpr Bandwidth kUnlimitedBandwidth = Bandwidth{};

/// Human-readable formatting helpers (reporting only).
std::string format_bytes(Bytes b);
std::string format_bandwidth(Bandwidth bw);
std::string format_duration(SimDuration d);

/// Observed throughput of `size` bytes moved in `elapsed`.
Bandwidth throughput_of(Bytes size, SimDuration elapsed);

}  // namespace smarth
