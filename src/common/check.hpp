// Invariant checking. SMARTH_CHECK is always on (protocol invariants are cheap
// relative to event dispatch and a silently corrupt simulation is worthless);
// SMARTH_DCHECK compiles out in release builds for hot-path assertions.
#pragma once

#include <sstream>
#include <string>

namespace smarth {

[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               const std::string& message);

}  // namespace smarth

#define SMARTH_CHECK(expr)                                          \
  do {                                                              \
    if (!(expr)) {                                                  \
      ::smarth::check_failed(#expr, __FILE__, __LINE__, "");        \
    }                                                               \
  } while (false)

#define SMARTH_CHECK_MSG(expr, msg)                                 \
  do {                                                              \
    if (!(expr)) {                                                  \
      std::ostringstream smarth_check_os_;                          \
      smarth_check_os_ << msg;                                      \
      ::smarth::check_failed(#expr, __FILE__, __LINE__,             \
                             smarth_check_os_.str());               \
    }                                                               \
  } while (false)

#ifdef NDEBUG
#define SMARTH_DCHECK(expr) \
  do {                      \
  } while (false)
#else
#define SMARTH_DCHECK(expr) SMARTH_CHECK(expr)
#endif
