#include "common/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/check.hpp"

namespace smarth {

void SummaryStats::add(double x) {
  ++count_;
  sum_ += x;
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void SummaryStats::merge(const SummaryStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double SummaryStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double SummaryStats::stddev() const { return std::sqrt(variance()); }

std::string SummaryStats::to_string() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%zu min=%.4g mean=%.4g max=%.4g sd=%.4g", count_, min(),
                mean(), max(), stddev());
  return buf;
}

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), counts_(bounds_.size() + 1, 0) {
  SMARTH_CHECK_MSG(!bounds_.empty(), "histogram needs at least one bound");
  SMARTH_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()),
                   "histogram bounds must be sorted");
}

void Histogram::add(double x) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  counts_[static_cast<std::size_t>(it - bounds_.begin())]++;
  ++total_;
}

double Histogram::upper_bound(std::size_t i) const {
  if (i < bounds_.size()) return bounds_[i];
  return std::numeric_limits<double>::infinity();
}

double Histogram::quantile(double q) const {
  SMARTH_CHECK(q >= 0.0 && q <= 1.0);
  if (total_ == 0) return 0.0;
  const double target = q * static_cast<double>(total_);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cumulative + static_cast<double>(counts_[i]);
    if (next >= target) {
      const double lo = (i == 0) ? 0.0 : bounds_[i - 1];
      const double hi = upper_bound(i);
      if (!std::isfinite(hi) || counts_[i] == 0) return lo;
      const double frac = (target - cumulative) / static_cast<double>(counts_[i]);
      return lo + frac * (hi - lo);
    }
    cumulative = next;
  }
  return bounds_.back();
}

std::string Histogram::to_string() const {
  std::string out;
  double lo = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    char buf[96];
    const double hi = upper_bound(i);
    if (std::isfinite(hi)) {
      std::snprintf(buf, sizeof(buf), "[%.4g, %.4g): %llu\n", lo, hi,
                    static_cast<unsigned long long>(counts_[i]));
    } else {
      std::snprintf(buf, sizeof(buf), "[%.4g, inf): %llu\n", lo,
                    static_cast<unsigned long long>(counts_[i]));
    }
    out += buf;
    lo = hi;
  }
  return out;
}

}  // namespace smarth
