// Deterministic random number generation. The simulation owns a single seeded
// generator; every stochastic decision (placement randomness, local-optimizer
// exploration, fault timing jitter) draws from it so a (seed, config) pair
// reproduces a run exactly. xoshiro256** is used for speed and quality; seeds
// are expanded with SplitMix64 as its authors recommend.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace smarth {

/// SplitMix64: used to expand a 64-bit seed into generator state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** by Blackman & Vigna. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    // Lemire's nearly-divisionless bounded generation.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * span;
    auto l = static_cast<std::uint64_t>(m);
    if (l < span) {
      const std::uint64_t t = (0 - span) % span;
      while (l < t) {
        x = next();
        m = static_cast<__uint128_t>(x) * span;
        l = static_cast<std::uint64_t>(m);
      }
    }
    return lo + static_cast<std::int64_t>(m >> 64);
  }

  /// Picks a uniformly random element index for a container of `n` elements.
  std::size_t index(std::size_t n) {
    return static_cast<std::size_t>(
        uniform_int(0, static_cast<std::int64_t>(n) - 1));
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[index(i)]);
    }
  }

  /// Derives an independent child stream (e.g. per-node jitter streams).
  Rng fork() { return Rng(next()); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4] = {};
};

}  // namespace smarth
