#include "common/table.hpp"

#include <algorithm>
#include <cstdio>

#include "common/check.hpp"

namespace smarth {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  SMARTH_CHECK(!header_.empty());
}

void TextTable::add_row(std::vector<std::string> cells) {
  SMARTH_CHECK_MSG(cells.size() == header_.size(),
                   "row width " << cells.size() << " != header width "
                                << header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < row.size(); ++c) {
      line += row[c];
      line.append(widths[c] - row[c].size(), ' ');
      if (c + 1 != row.size()) line += "  ";
    }
    line += '\n';
    return line;
  };
  std::string out = render_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 != widths.size() ? 2 : 0);
  }
  out.append(total, '-');
  out += '\n';
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string TextTable::to_csv() const {
  auto render = [](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < row.size(); ++c) {
      line += row[c];
      if (c + 1 != row.size()) line += ',';
    }
    line += '\n';
    return line;
  };
  std::string out = render(header_);
  for (const auto& row : rows_) out += render(row);
  return out;
}

}  // namespace smarth
