// Strongly typed identifiers. Each entity class in the system (node, block,
// file, pipeline, ...) gets its own id type so they cannot be mixed up at call
// sites; all are thin wrappers over an integer with value semantics.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace smarth {

/// CRTP base providing comparison, hashing and formatting for id wrappers.
template <typename Tag>
class TypedId {
 public:
  constexpr TypedId() = default;
  explicit constexpr TypedId(std::int64_t v) : value_(v) {}

  constexpr std::int64_t value() const { return value_; }
  constexpr bool valid() const { return value_ >= 0; }

  friend constexpr bool operator==(TypedId a, TypedId b) {
    return a.value_ == b.value_;
  }
  friend constexpr bool operator!=(TypedId a, TypedId b) {
    return a.value_ != b.value_;
  }
  friend constexpr bool operator<(TypedId a, TypedId b) {
    return a.value_ < b.value_;
  }

  std::string to_string() const {
    return std::string(Tag::prefix) + std::to_string(value_);
  }

 private:
  std::int64_t value_ = -1;
};

struct NodeTag { static constexpr const char* prefix = "node-"; };
struct BlockTag { static constexpr const char* prefix = "blk-"; };
struct FileTag { static constexpr const char* prefix = "file-"; };
struct PipelineTag { static constexpr const char* prefix = "pipe-"; };
struct ClientTag { static constexpr const char* prefix = "client-"; };
struct FlowTag { static constexpr const char* prefix = "flow-"; };

/// A machine in the simulated cluster (namenode, datanode or client host).
using NodeId = TypedId<NodeTag>;
/// An HDFS block.
using BlockId = TypedId<BlockTag>;
/// A file in the namenode namespace.
using FileId = TypedId<FileTag>;
/// One replication pipeline instance (one per block being written).
using PipelineId = TypedId<PipelineTag>;
/// A DFS client identity (used for speed records and pipeline bookkeeping).
using ClientId = TypedId<ClientTag>;
/// A network flow (for accounting).
using FlowId = TypedId<FlowTag>;

/// Monotonic id generator; one per entity class per simulation.
template <typename Id>
class IdGenerator {
 public:
  Id next() { return Id{next_++}; }
  std::int64_t issued() const { return next_; }
  /// Raises the high-water mark (edit-log replay / fsimage restore): after
  /// this, next() never reissues an id below `issued`.
  void ensure_at_least(std::int64_t issued) {
    if (issued > next_) next_ = issued;
  }

 private:
  std::int64_t next_ = 0;
};

}  // namespace smarth

namespace std {
template <typename Tag>
struct hash<smarth::TypedId<Tag>> {
  size_t operator()(smarth::TypedId<Tag> id) const noexcept {
    return std::hash<std::int64_t>{}(id.value());
  }
};
}  // namespace std
