// Plain-text table rendering for bench output: the benches print the same
// rows/series the paper's tables and figures report, and this keeps them
// readable and diffable.
#pragma once

#include <string>
#include <vector>

namespace smarth {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 2);

  std::size_t row_count() const { return rows_.size(); }

  /// Renders with aligned columns and a separator under the header.
  std::string to_string() const;
  /// Comma-separated form for machine consumption.
  std::string to_csv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace smarth
