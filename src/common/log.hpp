// Minimal leveled logger with simulation-time-aware prefixes. The simulator
// installs a time source so every line carries the simulated timestamp, which
// makes protocol traces directly comparable to the paper's timeline figures.
#pragma once

#include <functional>
#include <sstream>
#include <string>
#include <string_view>

#include "common/units.hpp"

namespace smarth {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

const char* log_level_name(LogLevel level);

/// Parses "trace" / "debug" / "info" / "warn" / "error" / "off"
/// (case-insensitive). Returns false (leaving `out` untouched) on anything
/// else; used by the smarthsim --log-level flag.
bool parse_log_level(const std::string& name, LogLevel& out);

/// Process-wide logging configuration. Not thread-safe by design: the DES is
/// single-threaded and benches configure logging before running.
class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }
  bool enabled(LogLevel level) const { return level >= level_; }

  /// Installs a simulated-time source (nullptr restores wall-clock-free
  /// output).
  void set_time_source(std::function<SimTime()> source) {
    time_source_ = std::move(source);
  }

  /// Redirects output (default: stderr). Used by tests to capture logs.
  void set_sink(std::function<void(const std::string&)> sink) {
    sink_ = std::move(sink);
  }
  void reset_sink() { sink_ = nullptr; }

  void write(LogLevel level, const std::string& component,
             const std::string& message);

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::kWarn;
  std::function<SimTime()> time_source_;
  std::function<void(const std::string&)> sink_;
};

/// Stream-style log statement builder.
class LogStatement {
 public:
  LogStatement(LogLevel level, std::string component)
      : level_(level), component_(std::move(component)) {}
  ~LogStatement() { Logger::instance().write(level_, component_, out_.str()); }
  LogStatement(const LogStatement&) = delete;
  LogStatement& operator=(const LogStatement&) = delete;

  template <typename T>
  LogStatement& operator<<(const T& v) {
    out_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream out_;
};

/// Structured key=value log statement: emits `event=<name> k1=v1 k2=v2 ...`
/// through the Logger (so lines carry the simulated-time stamp, level and
/// component like every other log line). Values containing whitespace are
/// quoted, which keeps chaos-soak logs machine-greppable.
class KvLogStatement {
 public:
  KvLogStatement(LogLevel level, std::string component, std::string event);
  ~KvLogStatement();
  KvLogStatement(const KvLogStatement&) = delete;
  KvLogStatement& operator=(const KvLogStatement&) = delete;

  KvLogStatement& kv(std::string_view key, const std::string& value);
  KvLogStatement& kv(std::string_view key, const char* value);
  KvLogStatement& kv(std::string_view key, double value);
  template <typename T>
  KvLogStatement& kv(std::string_view key, const T& value) {
    std::ostringstream os;
    os << value;
    return kv(key, os.str());
  }

 private:
  LogLevel level_;
  std::string component_;
  std::string line_;
};

}  // namespace smarth

#define SMARTH_LOG(level, component)                         \
  if (!::smarth::Logger::instance().enabled(level)) {        \
  } else                                                     \
    ::smarth::LogStatement(level, component)

/// Structured form: SMARTH_KV(level, "chaos", "crash").kv("dn", 3);
#define SMARTH_KV(level, component, event)                   \
  if (!::smarth::Logger::instance().enabled(level)) {        \
  } else                                                     \
    ::smarth::KvLogStatement(level, component, event)

#define SMARTH_TRACE(component) SMARTH_LOG(::smarth::LogLevel::kTrace, component)
#define SMARTH_DEBUG(component) SMARTH_LOG(::smarth::LogLevel::kDebug, component)
#define SMARTH_INFO(component) SMARTH_LOG(::smarth::LogLevel::kInfo, component)
#define SMARTH_WARN(component) SMARTH_LOG(::smarth::LogLevel::kWarn, component)
#define SMARTH_ERROR(component) SMARTH_LOG(::smarth::LogLevel::kError, component)
