// Minimal leveled logger with simulation-time-aware prefixes. The simulator
// installs a time source so every line carries the simulated timestamp, which
// makes protocol traces directly comparable to the paper's timeline figures.
#pragma once

#include <functional>
#include <sstream>
#include <string>

#include "common/units.hpp"

namespace smarth {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

const char* log_level_name(LogLevel level);

/// Process-wide logging configuration. Not thread-safe by design: the DES is
/// single-threaded and benches configure logging before running.
class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }
  bool enabled(LogLevel level) const { return level >= level_; }

  /// Installs a simulated-time source (nullptr restores wall-clock-free
  /// output).
  void set_time_source(std::function<SimTime()> source) {
    time_source_ = std::move(source);
  }

  /// Redirects output (default: stderr). Used by tests to capture logs.
  void set_sink(std::function<void(const std::string&)> sink) {
    sink_ = std::move(sink);
  }
  void reset_sink() { sink_ = nullptr; }

  void write(LogLevel level, const std::string& component,
             const std::string& message);

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::kWarn;
  std::function<SimTime()> time_source_;
  std::function<void(const std::string&)> sink_;
};

/// Stream-style log statement builder.
class LogStatement {
 public:
  LogStatement(LogLevel level, std::string component)
      : level_(level), component_(std::move(component)) {}
  ~LogStatement() { Logger::instance().write(level_, component_, out_.str()); }
  LogStatement(const LogStatement&) = delete;
  LogStatement& operator=(const LogStatement&) = delete;

  template <typename T>
  LogStatement& operator<<(const T& v) {
    out_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream out_;
};

}  // namespace smarth

#define SMARTH_LOG(level, component)                         \
  if (!::smarth::Logger::instance().enabled(level)) {        \
  } else                                                     \
    ::smarth::LogStatement(level, component)

#define SMARTH_TRACE(component) SMARTH_LOG(::smarth::LogLevel::kTrace, component)
#define SMARTH_DEBUG(component) SMARTH_LOG(::smarth::LogLevel::kDebug, component)
#define SMARTH_INFO(component) SMARTH_LOG(::smarth::LogLevel::kInfo, component)
#define SMARTH_WARN(component) SMARTH_LOG(::smarth::LogLevel::kWarn, component)
#define SMARTH_ERROR(component) SMARTH_LOG(::smarth::LogLevel::kError, component)
