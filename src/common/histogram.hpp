// Streaming summary statistics and a fixed-boundary histogram, used by the
// metrics layer for per-packet latencies, per-block times and buffer
// occupancy traces.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace smarth {

/// Running min/max/mean/variance (Welford) without storing samples.
class SummaryStats {
 public:
  void add(double x);
  void merge(const SummaryStats& other);

  std::size_t count() const { return count_; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double variance() const;
  double stddev() const;
  double sum() const { return sum_; }

  std::string to_string() const;

 private:
  std::size_t count_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
};

/// Histogram over caller-provided monotonically increasing bucket upper
/// bounds; values above the last bound land in an overflow bucket.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void add(double x);
  std::size_t bucket_count() const { return counts_.size(); }
  std::uint64_t bucket(std::size_t i) const { return counts_[i]; }
  double upper_bound(std::size_t i) const;
  std::uint64_t total() const { return total_; }

  /// Approximate quantile by linear interpolation within the hit bucket.
  double quantile(double q) const;

  std::string to_string() const;

 private:
  std::vector<double> bounds_;       // strictly increasing
  std::vector<std::uint64_t> counts_;  // bounds_.size() + 1 (overflow)
  std::uint64_t total_ = 0;
};

}  // namespace smarth
