// A small expected<T, E>-style result type (the toolchain's stdlib predates a
// fully reliable std::expected). Used for control-plane operations whose
// failure is an ordinary outcome (file exists, safe mode, no datanodes) rather
// than a programming error.
#pragma once

#include <string>
#include <utility>
#include <variant>

#include "common/check.hpp"

namespace smarth {

/// Error payload: a stable machine code plus a human message.
struct Error {
  std::string code;
  std::string message;

  std::string to_string() const { return code + ": " + message; }
};

template <typename T>
class Result {
 public:
  Result(T value) : state_(std::move(value)) {}  // NOLINT(google-explicit-*)
  Result(Error error) : state_(std::move(error)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(state_); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    SMARTH_CHECK_MSG(ok(), "Result::value() on error: " + error().to_string());
    return std::get<T>(state_);
  }
  T& value() & {
    SMARTH_CHECK_MSG(ok(), "Result::value() on error: " + error().to_string());
    return std::get<T>(state_);
  }
  T&& take() && {
    SMARTH_CHECK_MSG(ok(), "Result::take() on error: " + error().to_string());
    return std::get<T>(std::move(state_));
  }

  const Error& error() const {
    SMARTH_CHECK_MSG(!ok(), "Result::error() on success");
    return std::get<Error>(state_);
  }

 private:
  std::variant<T, Error> state_;
};

/// Result<void> analogue.
class Status {
 public:
  Status() = default;
  Status(Error error) : error_(std::move(error)), failed_(true) {}  // NOLINT

  static Status ok_status() { return Status{}; }

  bool ok() const { return !failed_; }
  explicit operator bool() const { return ok(); }
  const Error& error() const {
    SMARTH_CHECK_MSG(failed_, "Status::error() on success");
    return error_;
  }

 private:
  Error error_;
  bool failed_ = false;
};

inline Error make_error(std::string code, std::string message) {
  return Error{std::move(code), std::move(message)};
}

}  // namespace smarth
