#include "metrics/timeline.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace smarth::metrics {

Timeline::Timeline(std::string name) : name_(std::move(name)) {}

void Timeline::record(SimTime t, double value) {
  SMARTH_CHECK_MSG(points_.empty() || t >= points_.back().t,
                   "timeline points must be time-ordered");
  points_.push_back(Point{t, value});
}

double Timeline::max_value() const {
  double best = 0.0;
  for (const Point& p : points_) best = std::max(best, p.value);
  return best;
}

double Timeline::min_value() const {
  if (points_.empty()) return 0.0;
  double best = points_.front().value;
  for (const Point& p : points_) best = std::min(best, p.value);
  return best;
}

double Timeline::time_weighted_mean(SimTime horizon) const {
  // Mean over [first.t, horizon]. A horizon at or before the first sample
  // leaves a zero-length (or negative) window, over which the mean is
  // defined as 0 — never a division by zero or a sign flip.
  if (points_.empty() || horizon <= points_.front().t) return 0.0;
  double weighted = 0.0;
  for (std::size_t i = 0; i < points_.size(); ++i) {
    const SimTime start = points_[i].t;
    const SimTime end =
        i + 1 < points_.size() ? std::min(points_[i + 1].t, horizon) : horizon;
    if (end <= start) continue;
    weighted += points_[i].value * static_cast<double>(end - start);
  }
  return weighted / static_cast<double>(horizon - points_.front().t);
}

std::string Timeline::render_ascii(int width) const {
  SMARTH_CHECK(width > 0);
  if (points_.empty()) return name_ + ": (empty)\n";
  const SimTime t0 = points_.front().t;
  const SimTime t1 = points_.back().t;
  if (t1 == t0) {
    // All samples share one instant: a bar chart would stretch that instant
    // across the whole width and pretend the level held for a span. Report
    // the (final) value at its time instead.
    return name_ + ": " + std::to_string(points_.back().value) + " at " +
           format_duration(t0) + " (single sample)\n";
  }
  const double span = std::max<double>(1.0, static_cast<double>(t1 - t0));

  // Resample to `width` columns (last value wins per column).
  std::vector<double> columns(static_cast<std::size_t>(width), 0.0);
  for (const Point& p : points_) {
    auto col = static_cast<std::size_t>(
        static_cast<double>(p.t - t0) / span * (width - 1));
    columns[col] = p.value;
    // Carry the value forward so gaps hold the previous level.
    for (std::size_t c = col + 1; c < columns.size(); ++c) columns[c] = p.value;
  }

  const double peak = std::max(1.0, max_value());
  const int levels = static_cast<int>(std::min(8.0, std::ceil(peak)));
  std::string out = name_ + " (peak " + std::to_string(peak) + ")\n";
  for (int level = levels; level >= 1; --level) {
    const double threshold = peak * level / levels;
    std::string row;
    for (double v : columns) row += v >= threshold - 1e-9 ? '#' : ' ';
    out += row + "\n";
  }
  out += std::string(static_cast<std::size_t>(width), '-') + "\n";
  out += format_duration(t0) + " .. " + format_duration(t1) + "\n";
  return out;
}

}  // namespace smarth::metrics
