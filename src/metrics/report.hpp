// Experiment reporting: per-upload observations, HDFS-vs-SMARTH comparison
// rows, and table renderers that print the same series the paper's figures
// plot (upload seconds per configuration, plus improvement percentages).
#pragma once

#include <string>
#include <vector>

#include "common/table.hpp"
#include "common/units.hpp"
#include "hdfs/output_stream.hpp"

namespace smarth::metrics {

/// One run of one protocol in one configuration.
struct UploadObservation {
  std::string scenario;   ///< e.g. "small/throttle=50Mbps"
  std::string protocol;   ///< "HDFS" or "SMARTH"
  hdfs::StreamStats stats;

  double seconds() const { return to_seconds(stats.elapsed()); }
  double throughput_mbps() const { return stats.throughput().mbps(); }
};

/// A paired HDFS/SMARTH measurement of one configuration.
struct ComparisonRow {
  std::string scenario;
  double hdfs_seconds = 0.0;
  double smarth_seconds = 0.0;

  /// The paper's improvement metric: hdfs/smarth - 1, in percent.
  double improvement_percent() const {
    return (hdfs_seconds / smarth_seconds - 1.0) * 100.0;
  }
};

/// Renders rows as the paper's figure series: scenario, both times, the
/// improvement. `x_label` names the swept parameter column.
std::string render_comparison_table(const std::string& x_label,
                                    const std::vector<ComparisonRow>& rows);

/// Renders raw observations (one row per upload).
std::string render_observations(const std::vector<UploadObservation>& rows);

/// CSV forms for downstream plotting.
std::string comparison_csv(const std::string& x_label,
                           const std::vector<ComparisonRow>& rows);

}  // namespace smarth::metrics
