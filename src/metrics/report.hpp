// Experiment reporting: per-upload observations, HDFS-vs-SMARTH comparison
// rows, and table renderers that print the same series the paper's figures
// plot (upload seconds per configuration, plus improvement percentages).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "common/units.hpp"
#include "hdfs/input_stream.hpp"
#include "hdfs/output_stream.hpp"
#include "trace/metrics_registry.hpp"

namespace smarth::metrics {

/// One run of one protocol in one configuration.
struct UploadObservation {
  std::string scenario;   ///< e.g. "small/throttle=50Mbps"
  std::string protocol;   ///< "HDFS" or "SMARTH"
  hdfs::StreamStats stats;

  double seconds() const { return to_seconds(stats.elapsed()); }
  double throughput_mbps() const { return stats.throughput().mbps(); }
};

/// A paired HDFS/SMARTH measurement of one configuration.
struct ComparisonRow {
  std::string scenario;
  double hdfs_seconds = 0.0;
  double smarth_seconds = 0.0;

  /// The paper's improvement metric: hdfs/smarth - 1, in percent.
  double improvement_percent() const {
    return (hdfs_seconds / smarth_seconds - 1.0) * 100.0;
  }
};

/// Renders rows as the paper's figure series: scenario, both times, the
/// improvement. `x_label` names the swept parameter column.
std::string render_comparison_table(const std::string& x_label,
                                    const std::vector<ComparisonRow>& rows);

/// Renders raw observations (one row per upload).
std::string render_observations(const std::vector<UploadObservation>& rows);

/// CSV forms for downstream plotting.
std::string comparison_csv(const std::string& x_label,
                           const std::vector<ComparisonRow>& rows);

/// Sample statistics over a set of durations (namenode outage downtimes).
/// Carries count/total/min/max/sum-of-squares so the cross-seed merge is
/// purely additive and stays well-defined down to a single sample — a
/// one-seed sweep reports min == max == mean and stddev 0, never NaN —
/// and merging with an empty side is the identity.
struct DurationStats {
  std::uint64_t count = 0;
  double total_s = 0.0;
  double min_s = 0.0;
  double max_s = 0.0;
  double sumsq_s = 0.0;

  void add(double seconds) {
    if (count == 0) {
      min_s = max_s = seconds;
    } else {
      min_s = std::min(min_s, seconds);
      max_s = std::max(max_s, seconds);
    }
    ++count;
    total_s += seconds;
    sumsq_s += seconds * seconds;
  }

  void merge(const DurationStats& other) {
    if (other.count == 0) return;
    if (count == 0) {
      *this = other;
      return;
    }
    min_s = std::min(min_s, other.min_s);
    max_s = std::max(max_s, other.max_s);
    count += other.count;
    total_s += other.total_s;
    sumsq_s += other.sumsq_s;
  }

  double mean_s() const {
    return count > 0 ? total_s / static_cast<double>(count) : 0.0;
  }
  double stddev_s() const {
    if (count == 0) return 0.0;
    const double mean = mean_s();
    const double var =
        sumsq_s / static_cast<double>(count) - mean * mean;
    return std::sqrt(std::max(0.0, var));
  }
};

/// Robustness aggregate for a fault/chaos run: per-stream recovery and
/// retry accounting folded together, plus cluster-level counters the caller
/// supplies (metrics stays independent of the cluster/faults layers).
struct FaultSummary {
  // Folded from StreamStats.
  int uploads = 0;
  int failed_uploads = 0;
  int recoveries = 0;
  int quarantine_events = 0;
  int under_replication_events = 0;
  std::uint64_t rpc_retries = 0;
  std::uint64_t rpc_give_ups = 0;
  SimDuration recovery_time_total = 0;

  // Cluster-level counters (filled by the harness).
  std::uint64_t rpc_calls_dropped = 0;
  std::uint64_t rpc_messages_lost = 0;
  std::uint64_t rpc_messages_delayed = 0;
  std::uint64_t datanode_reregistrations = 0;
  std::size_t under_replicated_blocks = 0;
  std::uint64_t faults_injected = 0;

  // Writer-crash / lease recovery counters (from the namenode).
  std::uint64_t lease_expiries = 0;
  std::uint64_t uc_blocks_recovered = 0;
  Bytes bytes_salvaged = 0;
  std::uint64_t orphans_abandoned = 0;

  // Control-plane loss (namenode crash / restart / failover) counters.
  std::uint64_t nn_crashes = 0;
  std::uint64_t nn_restarts = 0;
  std::uint64_t nn_failovers = 0;
  std::uint64_t safe_mode_entries = 0;
  std::uint64_t safe_mode_exits = 0;
  std::uint64_t edit_ops_logged = 0;
  std::uint64_t checkpoints = 0;
  DurationStats nn_downtime;  ///< per-outage downtime distribution

  // Read-path resilience (folded from ReadStats).
  int reads = 0;
  int failed_reads = 0;
  int read_failovers = 0;
  int checksum_mismatches = 0;
  int bad_replica_reports = 0;

  // Gray-failure defense (hedged reads + slow-node eviction + suspicion).
  int hedged_reads = 0;
  int hedge_wins = 0;
  int hedges_denied = 0;
  Bytes hedge_wasted_bytes = 0;
  int slow_evictions = 0;
  std::uint64_t slow_node_reports = 0;
  std::uint64_t hedge_cancelled_serves = 0;

  // Data-integrity counters (from the namenode / datanodes).
  std::uint64_t bitrot_flips = 0;
  std::uint64_t replicas_invalidated = 0;
  std::uint64_t scrub_rot_detected = 0;
  Bytes scrub_bytes_scanned = 0;

  // Control-plane overload (namenode service queue + admission control).
  std::uint64_t nn_ops_admitted = 0;
  std::uint64_t nn_ops_shed = 0;
  std::uint64_t nn_shed_heartbeats = 0;
  std::uint64_t nn_shed_add_blocks = 0;
  std::uint64_t nn_addblock_cap_rejections = 0;
  std::uint64_t nn_heartbeat_batches = 0;
  std::uint64_t nn_heartbeats_batched = 0;
  std::uint64_t overload_retries = 0;  ///< client backoffs on typed sheds

  /// Accumulates one upload's robustness counters.
  void fold(const hdfs::StreamStats& stats);
  /// Accumulates one read's resilience counters.
  void fold_read(const hdfs::ReadStats& stats);
  /// Overlays registry-sourced counters (rpc.retries, rpc.give_ups,
  /// quarantine.events) onto the folded per-stream ones. The registry sees
  /// call sites that never report into StreamStats (e.g. recovery-internal
  /// RPCs), so the overlay takes the max — the table can only get more
  /// complete, never lose a count.
  void fold_registry(const Registry& registry);
  /// Accumulates another summary wholesale (multi-seed sweep aggregation:
  /// every counter is additive across independent runs).
  void merge(const FaultSummary& other);
  /// Mean time to recover across every folded recovery, in seconds.
  double recovery_mttr_seconds() const {
    return recoveries > 0 ? to_seconds(recovery_time_total) / recoveries
                          : 0.0;
  }
};

/// Renders the fault summary as a two-column table.
std::string render_fault_summary(const FaultSummary& summary);

}  // namespace smarth::metrics
