// Experiment reporting: per-upload observations, HDFS-vs-SMARTH comparison
// rows, and table renderers that print the same series the paper's figures
// plot (upload seconds per configuration, plus improvement percentages).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "common/units.hpp"
#include "hdfs/input_stream.hpp"
#include "hdfs/output_stream.hpp"
#include "trace/metrics_registry.hpp"

namespace smarth::metrics {

/// One run of one protocol in one configuration.
struct UploadObservation {
  std::string scenario;   ///< e.g. "small/throttle=50Mbps"
  std::string protocol;   ///< "HDFS" or "SMARTH"
  hdfs::StreamStats stats;

  double seconds() const { return to_seconds(stats.elapsed()); }
  double throughput_mbps() const { return stats.throughput().mbps(); }
};

/// A paired HDFS/SMARTH measurement of one configuration.
struct ComparisonRow {
  std::string scenario;
  double hdfs_seconds = 0.0;
  double smarth_seconds = 0.0;

  /// The paper's improvement metric: hdfs/smarth - 1, in percent.
  double improvement_percent() const {
    return (hdfs_seconds / smarth_seconds - 1.0) * 100.0;
  }
};

/// Renders rows as the paper's figure series: scenario, both times, the
/// improvement. `x_label` names the swept parameter column.
std::string render_comparison_table(const std::string& x_label,
                                    const std::vector<ComparisonRow>& rows);

/// Renders raw observations (one row per upload).
std::string render_observations(const std::vector<UploadObservation>& rows);

/// CSV forms for downstream plotting.
std::string comparison_csv(const std::string& x_label,
                           const std::vector<ComparisonRow>& rows);

/// Robustness aggregate for a fault/chaos run: per-stream recovery and
/// retry accounting folded together, plus cluster-level counters the caller
/// supplies (metrics stays independent of the cluster/faults layers).
struct FaultSummary {
  // Folded from StreamStats.
  int uploads = 0;
  int failed_uploads = 0;
  int recoveries = 0;
  int quarantine_events = 0;
  int under_replication_events = 0;
  std::uint64_t rpc_retries = 0;
  std::uint64_t rpc_give_ups = 0;
  SimDuration recovery_time_total = 0;

  // Cluster-level counters (filled by the harness).
  std::uint64_t rpc_calls_dropped = 0;
  std::uint64_t rpc_messages_lost = 0;
  std::uint64_t rpc_messages_delayed = 0;
  std::uint64_t datanode_reregistrations = 0;
  std::size_t under_replicated_blocks = 0;
  std::uint64_t faults_injected = 0;

  // Writer-crash / lease recovery counters (from the namenode).
  std::uint64_t lease_expiries = 0;
  std::uint64_t uc_blocks_recovered = 0;
  Bytes bytes_salvaged = 0;
  std::uint64_t orphans_abandoned = 0;

  // Read-path resilience (folded from ReadStats).
  int reads = 0;
  int failed_reads = 0;
  int read_failovers = 0;
  int checksum_mismatches = 0;
  int bad_replica_reports = 0;

  // Data-integrity counters (from the namenode / datanodes).
  std::uint64_t bitrot_flips = 0;
  std::uint64_t replicas_invalidated = 0;
  std::uint64_t scrub_rot_detected = 0;
  Bytes scrub_bytes_scanned = 0;

  /// Accumulates one upload's robustness counters.
  void fold(const hdfs::StreamStats& stats);
  /// Accumulates one read's resilience counters.
  void fold_read(const hdfs::ReadStats& stats);
  /// Overlays registry-sourced counters (rpc.retries, rpc.give_ups,
  /// quarantine.events) onto the folded per-stream ones. The registry sees
  /// call sites that never report into StreamStats (e.g. recovery-internal
  /// RPCs), so the overlay takes the max — the table can only get more
  /// complete, never lose a count.
  void fold_registry(const Registry& registry);
  /// Accumulates another summary wholesale (multi-seed sweep aggregation:
  /// every counter is additive across independent runs).
  void merge(const FaultSummary& other);
  /// Mean time to recover across every folded recovery, in seconds.
  double recovery_mttr_seconds() const {
    return recoveries > 0 ? to_seconds(recovery_time_total) / recoveries
                          : 0.0;
  }
};

/// Renders the fault summary as a two-column table.
std::string render_fault_summary(const FaultSummary& summary);

}  // namespace smarth::metrics
