// Time-series capture over simulated time: record (t, value) points, query
// time-weighted aggregates, and render a compact ASCII chart. Used for
// pipeline-concurrency and buffer-occupancy traces in examples and reports.
#pragma once

#include <string>
#include <vector>

#include "common/units.hpp"

namespace smarth::metrics {

class Timeline {
 public:
  explicit Timeline(std::string name);

  /// Points must be recorded in non-decreasing time order.
  void record(SimTime t, double value);

  struct Point {
    SimTime t;
    double value;
  };
  const std::vector<Point>& points() const { return points_; }
  const std::string& name() const { return name_; }
  bool empty() const { return points_.empty(); }

  double max_value() const;
  double min_value() const;
  /// Time-weighted mean over [first.t, horizon]; each value holds until the
  /// next point. Returns 0 when empty or when `horizon <= first.t` (an
  /// empty window has no mean).
  double time_weighted_mean(SimTime horizon) const;

  /// Fixed-width ASCII strip chart (one row per integer level up to max).
  /// A timeline whose samples all share one instant renders as a one-line
  /// "value at time (single sample)" note instead of a chart.
  std::string render_ascii(int width = 72) const;

 private:
  std::string name_;
  std::vector<Point> points_;
};

}  // namespace smarth::metrics
