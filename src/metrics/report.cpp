#include "metrics/report.hpp"

#include <algorithm>

namespace smarth::metrics {

std::string render_comparison_table(const std::string& x_label,
                                    const std::vector<ComparisonRow>& rows) {
  TextTable table({x_label, "HDFS (s)", "SMARTH (s)", "improvement (%)"});
  for (const ComparisonRow& row : rows) {
    table.add_row({row.scenario, TextTable::num(row.hdfs_seconds),
                   TextTable::num(row.smarth_seconds),
                   TextTable::num(row.improvement_percent(), 1)});
  }
  return table.to_string();
}

std::string render_observations(const std::vector<UploadObservation>& rows) {
  TextTable table({"scenario", "protocol", "seconds", "throughput (Mbps)",
                   "blocks", "pipelines", "max concurrency", "recoveries"});
  for (const UploadObservation& row : rows) {
    table.add_row({row.scenario, row.protocol, TextTable::num(row.seconds()),
                   TextTable::num(row.throughput_mbps(), 1),
                   std::to_string(row.stats.blocks),
                   std::to_string(row.stats.pipelines_created),
                   std::to_string(row.stats.max_concurrent_pipelines),
                   std::to_string(row.stats.recoveries)});
  }
  return table.to_string();
}

std::string comparison_csv(const std::string& x_label,
                           const std::vector<ComparisonRow>& rows) {
  TextTable table({x_label, "hdfs_seconds", "smarth_seconds",
                   "improvement_percent"});
  for (const ComparisonRow& row : rows) {
    table.add_row({row.scenario, TextTable::num(row.hdfs_seconds, 4),
                   TextTable::num(row.smarth_seconds, 4),
                   TextTable::num(row.improvement_percent(), 2)});
  }
  return table.to_csv();
}

void FaultSummary::fold(const hdfs::StreamStats& stats) {
  ++uploads;
  if (stats.failed) ++failed_uploads;
  recoveries += stats.recoveries;
  quarantine_events += stats.quarantine_events;
  under_replication_events += stats.under_replication_events;
  rpc_retries += stats.rpc_retries;
  rpc_give_ups += stats.rpc_give_ups;
  recovery_time_total += stats.recovery_time_total;
  slow_evictions += stats.slow_evictions;
}

void FaultSummary::fold_registry(const Registry& registry) {
  const auto counter = [&registry](const char* name) -> std::uint64_t {
    const Counter* c = registry.find_counter(name);
    return c != nullptr ? c->value() : 0;
  };
  rpc_retries = std::max(rpc_retries, counter("rpc.retries"));
  rpc_give_ups = std::max(rpc_give_ups, counter("rpc.give_ups"));
  quarantine_events = std::max(
      quarantine_events, static_cast<int>(counter("quarantine.events")));
  slow_node_reports =
      std::max(slow_node_reports, counter("namenode.slow_node_reports"));
  hedge_cancelled_serves =
      std::max(hedge_cancelled_serves, counter("hedge.cancelled"));
  overload_retries = std::max(overload_retries, counter("rpc.overload_retries"));
  nn_ops_admitted = std::max(nn_ops_admitted, counter("nn.rpc.admitted"));
  nn_ops_shed = std::max(nn_ops_shed, counter("nn.rpc.shed"));
  nn_shed_heartbeats =
      std::max(nn_shed_heartbeats, counter("nn.rpc.shed_heartbeats"));
  nn_shed_add_blocks =
      std::max(nn_shed_add_blocks, counter("nn.rpc.shed_add_blocks"));
  nn_addblock_cap_rejections = std::max(
      nn_addblock_cap_rejections, counter("nn.rpc.addblock_cap_rejections"));
  nn_heartbeat_batches =
      std::max(nn_heartbeat_batches, counter("nn.rpc.heartbeat_batches"));
  nn_heartbeats_batched =
      std::max(nn_heartbeats_batched, counter("nn.rpc.heartbeats_batched"));
}

void FaultSummary::fold_read(const hdfs::ReadStats& stats) {
  ++reads;
  if (stats.failed) ++failed_reads;
  read_failovers += stats.failovers;
  checksum_mismatches += stats.checksum_mismatches;
  bad_replica_reports += stats.bad_replica_reports;
  hedged_reads += stats.hedged_reads;
  hedge_wins += stats.hedge_wins;
  hedges_denied += stats.hedges_denied;
  hedge_wasted_bytes += stats.hedge_wasted_bytes;
}

void FaultSummary::merge(const FaultSummary& other) {
  uploads += other.uploads;
  failed_uploads += other.failed_uploads;
  recoveries += other.recoveries;
  quarantine_events += other.quarantine_events;
  under_replication_events += other.under_replication_events;
  rpc_retries += other.rpc_retries;
  rpc_give_ups += other.rpc_give_ups;
  recovery_time_total += other.recovery_time_total;
  rpc_calls_dropped += other.rpc_calls_dropped;
  rpc_messages_lost += other.rpc_messages_lost;
  rpc_messages_delayed += other.rpc_messages_delayed;
  datanode_reregistrations += other.datanode_reregistrations;
  under_replicated_blocks += other.under_replicated_blocks;
  faults_injected += other.faults_injected;
  lease_expiries += other.lease_expiries;
  uc_blocks_recovered += other.uc_blocks_recovered;
  bytes_salvaged += other.bytes_salvaged;
  orphans_abandoned += other.orphans_abandoned;
  nn_crashes += other.nn_crashes;
  nn_restarts += other.nn_restarts;
  nn_failovers += other.nn_failovers;
  safe_mode_entries += other.safe_mode_entries;
  safe_mode_exits += other.safe_mode_exits;
  edit_ops_logged += other.edit_ops_logged;
  checkpoints += other.checkpoints;
  nn_downtime.merge(other.nn_downtime);
  reads += other.reads;
  failed_reads += other.failed_reads;
  read_failovers += other.read_failovers;
  checksum_mismatches += other.checksum_mismatches;
  bad_replica_reports += other.bad_replica_reports;
  hedged_reads += other.hedged_reads;
  hedge_wins += other.hedge_wins;
  hedges_denied += other.hedges_denied;
  hedge_wasted_bytes += other.hedge_wasted_bytes;
  slow_evictions += other.slow_evictions;
  slow_node_reports += other.slow_node_reports;
  hedge_cancelled_serves += other.hedge_cancelled_serves;
  bitrot_flips += other.bitrot_flips;
  replicas_invalidated += other.replicas_invalidated;
  scrub_rot_detected += other.scrub_rot_detected;
  scrub_bytes_scanned += other.scrub_bytes_scanned;
  nn_ops_admitted += other.nn_ops_admitted;
  nn_ops_shed += other.nn_ops_shed;
  nn_shed_heartbeats += other.nn_shed_heartbeats;
  nn_shed_add_blocks += other.nn_shed_add_blocks;
  nn_addblock_cap_rejections += other.nn_addblock_cap_rejections;
  nn_heartbeat_batches += other.nn_heartbeat_batches;
  nn_heartbeats_batched += other.nn_heartbeats_batched;
  overload_retries += other.overload_retries;
}

std::string render_fault_summary(const FaultSummary& summary) {
  TextTable table({"metric", "value"});
  table.add_row({"uploads", std::to_string(summary.uploads)});
  table.add_row({"failed uploads", std::to_string(summary.failed_uploads)});
  table.add_row({"recoveries", std::to_string(summary.recoveries)});
  table.add_row(
      {"recovery MTTR (s)", TextTable::num(summary.recovery_mttr_seconds())});
  table.add_row(
      {"quarantine events", std::to_string(summary.quarantine_events)});
  table.add_row({"under-replication events",
                 std::to_string(summary.under_replication_events)});
  table.add_row({"rpc retries", std::to_string(summary.rpc_retries)});
  table.add_row({"rpc give-ups", std::to_string(summary.rpc_give_ups)});
  table.add_row(
      {"rpc calls dropped", std::to_string(summary.rpc_calls_dropped)});
  table.add_row(
      {"rpc messages lost", std::to_string(summary.rpc_messages_lost)});
  table.add_row(
      {"rpc messages delayed", std::to_string(summary.rpc_messages_delayed)});
  table.add_row({"datanode re-registrations",
                 std::to_string(summary.datanode_reregistrations)});
  table.add_row({"under-replicated blocks",
                 std::to_string(summary.under_replicated_blocks)});
  table.add_row(
      {"faults injected", std::to_string(summary.faults_injected)});
  table.add_row({"lease expiries", std::to_string(summary.lease_expiries)});
  table.add_row({"UC blocks recovered",
                 std::to_string(summary.uc_blocks_recovered)});
  table.add_row({"bytes salvaged", std::to_string(summary.bytes_salvaged)});
  table.add_row(
      {"orphans abandoned", std::to_string(summary.orphans_abandoned)});
  table.add_row({"nn crashes", std::to_string(summary.nn_crashes)});
  table.add_row({"nn restarts", std::to_string(summary.nn_restarts)});
  table.add_row({"nn failovers", std::to_string(summary.nn_failovers)});
  table.add_row(
      {"safe-mode entries", std::to_string(summary.safe_mode_entries)});
  table.add_row({"safe-mode exits", std::to_string(summary.safe_mode_exits)});
  table.add_row({"edit ops logged", std::to_string(summary.edit_ops_logged)});
  table.add_row({"checkpoints", std::to_string(summary.checkpoints)});
  if (summary.nn_downtime.count > 0) {
    table.add_row({"nn downtime mean (s)",
                   TextTable::num(summary.nn_downtime.mean_s())});
    table.add_row({"nn downtime min/max (s)",
                   TextTable::num(summary.nn_downtime.min_s) + " / " +
                       TextTable::num(summary.nn_downtime.max_s)});
    table.add_row({"nn downtime stddev (s)",
                   TextTable::num(summary.nn_downtime.stddev_s())});
  }
  table.add_row({"reads", std::to_string(summary.reads)});
  table.add_row({"failed reads", std::to_string(summary.failed_reads)});
  table.add_row({"read failovers", std::to_string(summary.read_failovers)});
  table.add_row(
      {"checksum mismatches", std::to_string(summary.checksum_mismatches)});
  table.add_row(
      {"bad replica reports", std::to_string(summary.bad_replica_reports)});
  table.add_row({"hedged reads", std::to_string(summary.hedged_reads)});
  table.add_row({"hedge wins", std::to_string(summary.hedge_wins)});
  table.add_row({"hedges denied", std::to_string(summary.hedges_denied)});
  table.add_row(
      {"hedge wasted bytes", std::to_string(summary.hedge_wasted_bytes)});
  table.add_row({"slow evictions", std::to_string(summary.slow_evictions)});
  table.add_row(
      {"slow-node reports", std::to_string(summary.slow_node_reports)});
  table.add_row({"hedge-cancelled serves",
                 std::to_string(summary.hedge_cancelled_serves)});
  table.add_row({"bitrot flips", std::to_string(summary.bitrot_flips)});
  table.add_row(
      {"replicas invalidated", std::to_string(summary.replicas_invalidated)});
  table.add_row(
      {"scrub rot detected", std::to_string(summary.scrub_rot_detected)});
  table.add_row(
      {"scrub bytes scanned", std::to_string(summary.scrub_bytes_scanned)});
  table.add_row(
      {"nn ops admitted", std::to_string(summary.nn_ops_admitted)});
  table.add_row({"nn ops shed", std::to_string(summary.nn_ops_shed)});
  table.add_row(
      {"nn shed heartbeats", std::to_string(summary.nn_shed_heartbeats)});
  table.add_row(
      {"nn shed addBlocks", std::to_string(summary.nn_shed_add_blocks)});
  table.add_row({"nn addBlock cap rejections",
                 std::to_string(summary.nn_addblock_cap_rejections)});
  table.add_row({"nn heartbeat batches",
                 std::to_string(summary.nn_heartbeat_batches)});
  table.add_row({"nn heartbeats batched",
                 std::to_string(summary.nn_heartbeats_batched)});
  table.add_row(
      {"overload retries", std::to_string(summary.overload_retries)});
  return table.to_string();
}

}  // namespace smarth::metrics
