#include "metrics/report.hpp"

namespace smarth::metrics {

std::string render_comparison_table(const std::string& x_label,
                                    const std::vector<ComparisonRow>& rows) {
  TextTable table({x_label, "HDFS (s)", "SMARTH (s)", "improvement (%)"});
  for (const ComparisonRow& row : rows) {
    table.add_row({row.scenario, TextTable::num(row.hdfs_seconds),
                   TextTable::num(row.smarth_seconds),
                   TextTable::num(row.improvement_percent(), 1)});
  }
  return table.to_string();
}

std::string render_observations(const std::vector<UploadObservation>& rows) {
  TextTable table({"scenario", "protocol", "seconds", "throughput (Mbps)",
                   "blocks", "pipelines", "max concurrency", "recoveries"});
  for (const UploadObservation& row : rows) {
    table.add_row({row.scenario, row.protocol, TextTable::num(row.seconds()),
                   TextTable::num(row.throughput_mbps(), 1),
                   std::to_string(row.stats.blocks),
                   std::to_string(row.stats.pipelines_created),
                   std::to_string(row.stats.max_concurrent_pipelines),
                   std::to_string(row.stats.recoveries)});
  }
  return table.to_string();
}

std::string comparison_csv(const std::string& x_label,
                           const std::vector<ComparisonRow>& rows) {
  TextTable table({x_label, "hdfs_seconds", "smarth_seconds",
                   "improvement_percent"});
  for (const ComparisonRow& row : rows) {
    table.add_row({row.scenario, TextTable::num(row.hdfs_seconds, 4),
                   TextTable::num(row.smarth_seconds, 4),
                   TextTable::num(row.improvement_percent(), 2)});
  }
  return table.to_csv();
}

}  // namespace smarth::metrics
