#include "faults/fault_injector.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/log.hpp"
#include "trace/trace_recorder.hpp"

namespace {

/// One instant on the shared "faults" track; every injection execution point
/// funnels through here so traces show the fault timeline next to the
/// pipelines it perturbs.
void trace_fault(const char* name, smarth::trace::Args args) {
  if (smarth::trace::active()) {
    smarth::trace::recorder()->instant(smarth::trace::Category::kFault,
                                       "faults", name, std::move(args));
  }
}

std::string idx_str(std::size_t index) { return std::to_string(index); }

}  // namespace

namespace smarth::faults {

FaultInjector::FaultInjector(cluster::Cluster& cluster,
                             std::uint64_t chaos_seed)
    : cluster_(cluster), rng_(chaos_seed),
      bitrot_rng_(chaos_seed ^ 0xb17707b17707ULL) {
  busy_until_.assign(cluster_.datanode_count(), 0);
}

void FaultInjector::crash(std::size_t datanode_index, SimTime at) {
  hdfs::Datanode* dn = &cluster_.datanode(datanode_index);
  cluster_.sim().schedule_at(at, [this, dn, datanode_index] {
    if (dn->crashed()) return;
    SMARTH_KV(LogLevel::kInfo, "faults", "crash").kv("dn", datanode_index);
    trace_fault("crash", {{"dn", idx_str(datanode_index)}});
    dn->crash();
    ++counts_.crashes;
  });
}

void FaultInjector::crash_and_rejoin(std::size_t datanode_index, SimTime at,
                                     SimTime rejoin_at) {
  SMARTH_CHECK_MSG(rejoin_at > at, "rejoin must come after the crash");
  crash(datanode_index, at);
  hdfs::Datanode* dn = &cluster_.datanode(datanode_index);
  cluster_.sim().schedule_at(rejoin_at, [this, dn, datanode_index] {
    if (!dn->crashed()) return;
    SMARTH_KV(LogLevel::kInfo, "faults", "rejoin").kv("dn", datanode_index);
    trace_fault("rejoin", {{"dn", idx_str(datanode_index)}});
    dn->restart();
    ++counts_.restarts;
  });
  mark_busy(datanode_index, rejoin_at);
}

void FaultInjector::fail_slow(std::size_t datanode_index, SimTime from,
                              SimTime until, double disk_factor,
                              double nic_factor) {
  SMARTH_CHECK_MSG(until > from, "fail-slow window must have positive length");
  hdfs::Datanode* dn = &cluster_.datanode(datanode_index);
  const NodeId node = cluster_.datanode_id(datanode_index);
  net::Network* net = &cluster_.network();

  cluster_.sim().schedule_at(from, [this, dn, net, node, datanode_index, until,
                                    disk_factor, nic_factor] {
    const Bandwidth disk_before = dn->disk().write_bandwidth();
    const Bandwidth nic_before = net->node_nic(node);
    if (disk_factor > 1.0 && !disk_before.is_unlimited()) {
      dn->disk().set_write_bandwidth(Bandwidth::bits_per_second(
          disk_before.bits_per_second() / disk_factor));
    }
    if (nic_factor > 1.0 && !nic_before.is_unlimited()) {
      net->set_node_nic(node, Bandwidth::bits_per_second(
                                  nic_before.bits_per_second() / nic_factor));
    }
    ++counts_.fail_slows;
    SMARTH_KV(LogLevel::kInfo, "faults", "fail-slow")
        .kv("dn", datanode_index)
        .kv("disk_factor", disk_factor)
        .kv("nic_factor", nic_factor)
        .kv("until", format_duration(until));
    trace_fault("fail-slow start", {{"dn", idx_str(datanode_index)},
                                    {"disk_factor", std::to_string(disk_factor)},
                                    {"nic_factor", std::to_string(nic_factor)}});
    cluster_.sim().schedule_at(until,
                               [dn, net, node, disk_before, nic_before,
                                datanode_index] {
                                 dn->disk().set_write_bandwidth(disk_before);
                                 net->set_node_nic(node, nic_before);
                                 SMARTH_KV(LogLevel::kInfo, "faults",
                                           "fail-slow-over")
                                     .kv("dn", datanode_index);
                                 trace_fault("fail-slow end",
                                             {{"dn", idx_str(datanode_index)}});
                               });
  });
  mark_busy(datanode_index, until);
}

void FaultInjector::flap_node(std::size_t datanode_index, SimTime down_at,
                              SimTime up_at) {
  SMARTH_CHECK_MSG(up_at > down_at, "flap window must have positive length");
  const NodeId node = cluster_.datanode_id(datanode_index);
  net::Network* net = &cluster_.network();
  cluster_.sim().schedule_at(down_at, [this, net, node, datanode_index] {
    SMARTH_KV(LogLevel::kInfo, "faults", "flap-down").kv("dn", datanode_index);
    trace_fault("flap down", {{"dn", idx_str(datanode_index)}});
    net->set_node_isolated(node, true);
    ++counts_.flaps;
  });
  cluster_.sim().schedule_at(up_at, [net, node, datanode_index] {
    SMARTH_KV(LogLevel::kInfo, "faults", "flap-up").kv("dn", datanode_index);
    trace_fault("flap up", {{"dn", idx_str(datanode_index)}});
    net->set_node_isolated(node, false);
  });
  mark_busy(datanode_index, up_at);
}

void FaultInjector::partition_racks(const std::string& rack_a,
                                    const std::string& rack_b, SimTime sever_at,
                                    SimTime heal_at) {
  SMARTH_CHECK_MSG(heal_at > sever_at,
                   "partition window must have positive length");
  net::Network* net = &cluster_.network();
  cluster_.sim().schedule_at(sever_at, [this, net, rack_a, rack_b] {
    SMARTH_KV(LogLevel::kInfo, "faults", "partition")
        .kv("rack_a", rack_a)
        .kv("rack_b", rack_b);
    trace_fault("partition", {{"rack_a", rack_a}, {"rack_b", rack_b}});
    net->set_rack_partition(rack_a, rack_b, true);
    ++counts_.partitions;
  });
  cluster_.sim().schedule_at(heal_at, [net, rack_a, rack_b] {
    SMARTH_KV(LogLevel::kInfo, "faults", "partition-healed")
        .kv("rack_a", rack_a)
        .kv("rack_b", rack_b);
    trace_fault("partition healed", {{"rack_a", rack_a}, {"rack_b", rack_b}});
    net->set_rack_partition(rack_a, rack_b, false);
  });
}

void FaultInjector::corrupt_nth_packet(std::size_t datanode_index,
                                       std::uint64_t nth) {
  cluster_.datanode(datanode_index).inject_checksum_error_on_nth_packet(nth);
  ++counts_.corruptions;
}

std::uint64_t FaultInjector::one_shot_salt(std::size_t datanode_index,
                                           SimTime at) {
  // Hash, not an Rng draw: the header promises deterministic one-shots never
  // consume chaos randomness.
  SplitMix64 sm(static_cast<std::uint64_t>(at) * 1000003ULL +
                static_cast<std::uint64_t>(datanode_index));
  return sm.next();
}

void FaultInjector::bitrot(std::size_t datanode_index, SimTime at) {
  hdfs::Datanode* dn = &cluster_.datanode(datanode_index);
  const std::uint64_t salt = one_shot_salt(datanode_index, at);
  cluster_.sim().schedule_at(at, [this, dn, datanode_index, salt] {
    if (dn->rot_random_finalized_chunk(salt)) {
      SMARTH_KV(LogLevel::kInfo, "faults", "bitrot").kv("dn", datanode_index);
      trace_fault("bitrot", {{"dn", idx_str(datanode_index)}});
      ++counts_.bitrot_flips;
    }
  });
}

void FaultInjector::crash_client(std::size_t client_index, SimTime at) {
  cluster_.sim().schedule_at(at, [this, client_index] {
    if (cluster_.client_crashed(client_index)) return;
    SMARTH_KV(LogLevel::kInfo, "faults", "client-crash")
        .kv("client", client_index);
    trace_fault("client crash", {{"client", idx_str(client_index)}});
    cluster_.crash_client(client_index);
    ++counts_.client_crashes;
  });
}

void FaultInjector::crash_and_rejoin_client(std::size_t client_index,
                                            SimTime at, SimTime rejoin_at) {
  SMARTH_CHECK_MSG(rejoin_at > at, "rejoin must come after the crash");
  crash_client(client_index, at);
  cluster_.sim().schedule_at(rejoin_at, [this, client_index] {
    if (!cluster_.client_crashed(client_index)) return;
    SMARTH_KV(LogLevel::kInfo, "faults", "client-rejoin")
        .kv("client", client_index);
    trace_fault("client rejoin", {{"client", idx_str(client_index)}});
    cluster_.restart_client(client_index);
    ++counts_.client_restarts;
  });
  mark_client_busy(client_index, rejoin_at);
}

void FaultInjector::crash_namenode(SimTime at) {
  cluster_.sim().schedule_at(at, [this] {
    if (cluster_.namenode_crashed()) return;
    SMARTH_KV(LogLevel::kWarn, "faults", "nn-crash");
    trace_fault("nn crash", {});
    cluster_.crash_namenode();
    ++counts_.nn_crashes;
  });
}

void FaultInjector::crash_and_restart_namenode(SimTime at, SimTime restart_at) {
  SMARTH_CHECK_MSG(restart_at > at, "restart must come after the crash");
  crash_namenode(at);
  cluster_.sim().schedule_at(restart_at, [this] {
    if (!cluster_.namenode_crashed()) return;
    SMARTH_KV(LogLevel::kInfo, "faults", "nn-restart");
    trace_fault("nn restart", {});
    cluster_.restart_namenode();
    ++counts_.nn_restarts;
  });
  nn_busy_until_ = std::max(nn_busy_until_, restart_at);
}

void FaultInjector::crash_and_failover_namenode(SimTime at,
                                                SimTime failover_at) {
  SMARTH_CHECK_MSG(failover_at > at, "failover must come after the crash");
  crash_namenode(at);
  cluster_.sim().schedule_at(failover_at, [this] {
    if (!cluster_.namenode_crashed()) return;
    SMARTH_KV(LogLevel::kInfo, "faults", "nn-failover");
    trace_fault("nn failover", {});
    cluster_.failover_namenode();
    ++counts_.nn_failovers;
  });
  nn_busy_until_ = std::max(nn_busy_until_, failover_at);
}

void FaultInjector::set_rpc_chaos(double loss_probability,
                                  SimDuration delay_mean,
                                  SimDuration delay_jitter) {
  rpc::RpcChaos chaos;
  chaos.loss_probability = loss_probability;
  chaos.delay_mean = delay_mean;
  chaos.delay_jitter = delay_jitter;
  cluster_.rpc().set_chaos(chaos);
}

void FaultInjector::start_chaos(const ChaosRates& rates, SimDuration tick) {
  SMARTH_CHECK_MSG(tick > 0, "chaos tick must be positive");
  rates_ = rates;
  tick_ = tick;
  set_rpc_chaos(rates_.rpc_loss, rates_.rpc_delay_mean,
                rates_.rpc_delay_jitter);
  if (rates_.crash_per_minute <= 0.0 && rates_.fail_slow_per_minute <= 0.0 &&
      rates_.flap_per_minute <= 0.0 && rates_.client_crash_per_minute <= 0.0 &&
      rates_.bitrot_per_replica_hour <= 0.0 &&
      rates_.nn_crash_per_minute <= 0.0) {
    return;  // only RPC chaos requested; no sampling loop needed
  }
  chaos_task_ = std::make_unique<sim::PeriodicTask>(cluster_.sim(), tick_,
                                                    [this] { chaos_tick(); });
  chaos_task_->start();
}

void FaultInjector::stop_chaos() {
  if (chaos_task_) chaos_task_->stop();
  cluster_.rpc().set_chaos(rpc::RpcChaos{});
}

bool FaultInjector::chaos_running() const {
  return chaos_task_ != nullptr && chaos_task_->running();
}

bool FaultInjector::node_busy(std::size_t index) const {
  return busy_until_[index] > cluster_.sim().now();
}

void FaultInjector::mark_busy(std::size_t index, SimTime until) {
  if (index < busy_until_.size()) {
    busy_until_[index] = std::max(busy_until_[index], until);
  }
}

bool FaultInjector::client_busy(std::size_t index) const {
  return index < client_busy_until_.size() &&
         client_busy_until_[index] > cluster_.sim().now();
}

void FaultInjector::mark_client_busy(std::size_t index, SimTime until) {
  if (client_busy_until_.size() < cluster_.client_count()) {
    client_busy_until_.resize(cluster_.client_count(), 0);
  }
  if (index < client_busy_until_.size()) {
    client_busy_until_[index] = std::max(client_busy_until_[index], until);
  }
}

void FaultInjector::chaos_tick() {
  const double per_minute_to_per_tick =
      to_seconds(tick_) / 60.0;
  const SimTime now = cluster_.sim().now();
  for (std::size_t i = 0; i < cluster_.datanode_count(); ++i) {
    // One draw per enabled fault class per node per tick, whether or not the
    // node is busy: the consumption pattern stays fixed, so a fault firing
    // early never shifts every later draw.
    const bool crash_hit =
        rates_.crash_per_minute > 0.0 &&
        rng_.uniform() < rates_.crash_per_minute * per_minute_to_per_tick;
    const bool slow_hit =
        rates_.fail_slow_per_minute > 0.0 &&
        rng_.uniform() < rates_.fail_slow_per_minute * per_minute_to_per_tick;
    const bool flap_hit =
        rates_.flap_per_minute > 0.0 &&
        rng_.uniform() < rates_.flap_per_minute * per_minute_to_per_tick;
    if (node_busy(i)) continue;
    if (crash_hit) {
      crash_and_rejoin(i, now, now + rates_.rejoin_delay);
    } else if (slow_hit) {
      fail_slow(i, now, now + rates_.fail_slow_duration,
                rates_.fail_slow_factor, rates_.fail_slow_factor);
    } else if (flap_hit) {
      flap_node(i, now, now + rates_.flap_duration);
    }
  }
  // Client draws come after all datanode draws, and only when the class is
  // enabled, so seeds that never ask for writer crashes keep the exact
  // fault timeline they had before this class existed.
  if (rates_.client_crash_per_minute > 0.0) {
    for (std::size_t i = 0; i < cluster_.client_count(); ++i) {
      const bool hit =
          rng_.uniform() <
          rates_.client_crash_per_minute * per_minute_to_per_tick;
      if (!hit || client_busy(i)) continue;
      crash_and_rejoin_client(i, now, now + rates_.client_rejoin_delay);
    }
  }
  // The namenode draw is last on the shared stream and only happens when the
  // class is enabled, so seeds predating control-plane chaos keep their exact
  // datanode/client fault timelines. The draw itself is unconditional (stream
  // alignment); only the application is gated on the namenode being up and no
  // recovery being pending.
  if (rates_.nn_crash_per_minute > 0.0) {
    const bool hit =
        rng_.uniform() < rates_.nn_crash_per_minute * per_minute_to_per_tick;
    if (hit && !cluster_.namenode_crashed() && nn_busy_until_ <= now) {
      if (rates_.nn_failover && cluster_.standby_enabled()) {
        crash_and_failover_namenode(now, now + rates_.nn_restart_delay);
      } else {
        crash_and_restart_namenode(now, now + rates_.nn_restart_delay);
      }
    }
  }
  // Bit-rot draws come from a dedicated stream (see bitrot_rng_), so this
  // block is invisible to the other classes' timelines. The per-tick
  // probability scales with the node's finalized replica count: rot is a
  // per-byte-at-rest phenomenon, and empty disks cannot decay. No busy
  // gating — media decays during crash and throttle windows too.
  if (rates_.bitrot_per_replica_hour > 0.0) {
    const double per_hour_to_per_tick = to_seconds(tick_) / 3600.0;
    for (std::size_t i = 0; i < cluster_.datanode_count(); ++i) {
      const auto replicas = static_cast<double>(
          cluster_.datanode(i).block_store().finalized_count());
      const double p =
          rates_.bitrot_per_replica_hour * replicas * per_hour_to_per_tick;
      if (bitrot_rng_.uniform() >= p) continue;
      if (cluster_.datanode(i).rot_random_finalized_chunk(
              bitrot_rng_.next())) {
        SMARTH_KV(LogLevel::kInfo, "faults", "chaos-bitrot").kv("dn", i);
        trace_fault("bitrot", {{"dn", idx_str(i)}});
        ++counts_.bitrot_flips;
      }
    }
  }
}

}  // namespace smarth::faults
