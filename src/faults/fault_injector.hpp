// The chaos engine: a single place that turns a Cluster into a hostile one.
// Two modes compose freely:
//
//  * Deterministic one-shot injections — crash-and-rejoin, fail-slow windows
//    (disk and/or NIC throttled by a factor, then restored), NIC flaps
//    (node isolated then healed), rack partition windows, checksum
//    corruption, RPC loss/delay — each scheduled at explicit simulated times.
//    This subsumes workload::FaultPlan (kept for back-compat).
//
//  * Seeded chaos mode — a periodic tick samples per-datanode Bernoulli
//    trials from configurable per-minute rates and applies the same
//    injections with durations drawn from the chaos Rng. The injector owns
//    its own generator, so a (chaos seed, rates, cluster seed) triple
//    reproduces the fault timeline bit-for-bit, independent of how much
//    randomness the workload itself consumes.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "sim/periodic_task.hpp"

namespace smarth::faults {

/// Per-minute event rates (and shape parameters) for seeded chaos mode.
/// A rate of r means each datanode suffers that fault ~r times per simulated
/// minute, sampled independently per tick.
struct ChaosRates {
  double crash_per_minute = 0.0;      ///< crash-and-rejoin events
  double fail_slow_per_minute = 0.0;  ///< transient disk+NIC degradation
  double flap_per_minute = 0.0;       ///< NIC isolation windows

  /// Writer-crash chaos: each client host suffers ~r crash-and-rejoin
  /// events per simulated minute. The crashed writer's leases expire and
  /// the namenode recovers its under-construction blocks.
  double client_crash_per_minute = 0.0;

  /// Bit-rot chaos: each *finalized replica* decays ~r times per simulated
  /// hour (scaled by how many finalized replicas the node actually holds, so
  /// fuller disks rot more — like real media). Each event flips one stored
  /// chunk at rest; detection is left to verified reads and the block
  /// scanner. Sampled from a dedicated Rng stream so enabling it never
  /// shifts the other classes' timelines.
  double bitrot_per_replica_hour = 0.0;

  /// Control-plane loss chaos: the namenode process dies ~r times per
  /// simulated minute and comes back after nn_restart_delay — via a cold
  /// restart (fsimage + edit-log tail) or, when nn_failover is set and a
  /// standby is enabled, a warm failover. While the namenode is down, client
  /// RPCs fall into their retry backoff and heartbeats are dropped; on
  /// recovery the namenode runs in safe mode until replicas re-report.
  double nn_crash_per_minute = 0.0;

  /// Control-plane chaos, applied to the RPC bus when any() holds.
  double rpc_loss = 0.0;              ///< per-message drop probability
  SimDuration rpc_delay_mean = 0;     ///< extra control-message latency
  SimDuration rpc_delay_jitter = 0;   ///< uniform extra on top of the mean

  // Shape parameters for sampled events.
  SimDuration rejoin_delay = seconds(5);        ///< crash -> restart
  SimDuration fail_slow_duration = seconds(10); ///< throttle window
  double fail_slow_factor = 8.0;                ///< bandwidth divisor
  SimDuration flap_duration = seconds(2);       ///< isolation window
  SimDuration client_rejoin_delay = seconds(10);///< writer crash -> reboot
  SimDuration nn_restart_delay = seconds(5);    ///< nn crash -> recovery start
  bool nn_failover = false;  ///< recover via standby instead of cold restart

  bool any() const {
    return crash_per_minute > 0.0 || fail_slow_per_minute > 0.0 ||
           flap_per_minute > 0.0 || client_crash_per_minute > 0.0 ||
           bitrot_per_replica_hour > 0.0 || nn_crash_per_minute > 0.0 ||
           rpc_loss > 0.0 || rpc_delay_mean > 0;
  }
};

/// How many of each fault the injector has applied (deterministic + chaos).
struct InjectionCounts {
  std::uint64_t crashes = 0;
  std::uint64_t restarts = 0;
  std::uint64_t fail_slows = 0;
  std::uint64_t flaps = 0;
  std::uint64_t partitions = 0;
  std::uint64_t corruptions = 0;
  std::uint64_t client_crashes = 0;
  std::uint64_t client_restarts = 0;
  std::uint64_t bitrot_flips = 0;  ///< at-rest chunk corruptions applied
  std::uint64_t nn_crashes = 0;    ///< namenode process deaths
  std::uint64_t nn_restarts = 0;   ///< cold restarts (fsimage + log replay)
  std::uint64_t nn_failovers = 0;  ///< warm standby promotions

  std::uint64_t total() const {
    return crashes + restarts + fail_slows + flaps + partitions + corruptions +
           client_crashes + client_restarts + bitrot_flips + nn_crashes +
           nn_restarts + nn_failovers;
  }
};

class FaultInjector {
 public:
  /// `chaos_seed` seeds the injector's private Rng (chaos mode and duration
  /// jitter); deterministic one-shot APIs never draw from it.
  explicit FaultInjector(cluster::Cluster& cluster,
                         std::uint64_t chaos_seed = 0xc4a05c4a05ULL);

  // --- Deterministic one-shot injections ------------------------------------
  /// Hard crash with no rejoin (the node stays dark).
  void crash(std::size_t datanode_index, SimTime at);
  /// Crash at `at`, reboot (cleared staging, re-registration, block
  /// re-report) at `rejoin_at`.
  void crash_and_rejoin(std::size_t datanode_index, SimTime at,
                        SimTime rejoin_at);
  /// Fail-slow window: divides the node's disk write bandwidth by
  /// `disk_factor` and its NIC by `nic_factor` during [from, until), then
  /// restores the previous rates. Factors <= 1 leave that resource alone.
  void fail_slow(std::size_t datanode_index, SimTime from, SimTime until,
                 double disk_factor, double nic_factor);
  /// Link flap: the node's NIC drops every message during [down_at, up_at).
  void flap_node(std::size_t datanode_index, SimTime down_at, SimTime up_at);
  /// Transient inter-rack partition during [sever_at, heal_at).
  void partition_racks(const std::string& rack_a, const std::string& rack_b,
                       SimTime sever_at, SimTime heal_at);
  /// Checksum corruption on the nth packet arriving at the node (1-based).
  void corrupt_nth_packet(std::size_t datanode_index, std::uint64_t nth);
  /// Bit-rot at rest: at time `at`, one pseudo-randomly chosen chunk of one
  /// finalized replica on the node decays (its stored CRC goes stale).
  /// Deterministic — the (datanode_index, at) pair fully determines which
  /// chunk rots; nothing is drawn from the chaos Rng. No-op when the node
  /// holds no finalized data yet.
  void bitrot(std::size_t datanode_index, SimTime at);
  /// The salt bitrot() derives its target choice from; exposed so other
  /// schedulers (workload::FaultPlan's cluster path) reproduce the same rot.
  static std::uint64_t one_shot_salt(std::size_t datanode_index, SimTime at);
  /// Writer crash with no reboot: the client host goes dark, its heartbeat
  /// stops, and every stream it owned aborts mid-write. Lease recovery is
  /// the only path by which its files leave under-construction.
  void crash_client(std::size_t client_index, SimTime at);
  /// Writer crash at `at`, host reboot (heartbeat resumes, no stream state
  /// survives) at `rejoin_at`.
  void crash_and_rejoin_client(std::size_t client_index, SimTime at,
                               SimTime rejoin_at);
  /// Namenode crash with no recovery: the control plane stays dark. Client
  /// RPCs burn through their retry budgets; heartbeats and blockReceived
  /// notifications drop on the floor.
  void crash_namenode(SimTime at);
  /// Namenode crash at `at`, cold restart initiated at `restart_at` (service
  /// resumes after the process-boot delay plus edit-log replay, in safe mode
  /// until enough replicas re-report).
  void crash_and_restart_namenode(SimTime at, SimTime restart_at);
  /// Namenode crash at `at`, warm standby promotion at `failover_at`
  /// (cluster.enable_standby() must have been called).
  void crash_and_failover_namenode(SimTime at, SimTime failover_at);
  /// Installs RPC chaos on the bus (loss probability + delay distribution).
  void set_rpc_chaos(double loss_probability, SimDuration delay_mean,
                     SimDuration delay_jitter);

  // --- Seeded chaos mode ------------------------------------------------------
  /// Starts the sampling loop. Each tick draws, per datanode, one Bernoulli
  /// trial per enabled fault class with p = rate * tick / minute; a node
  /// already serving a fault window is skipped (draws still happen, keeping
  /// the stream aligned). Also installs the rates' RPC chaos.
  void start_chaos(const ChaosRates& rates,
                   SimDuration tick = milliseconds(500));
  void stop_chaos();
  bool chaos_running() const;

  const InjectionCounts& counts() const { return counts_; }
  const ChaosRates& rates() const { return rates_; }

 private:
  void chaos_tick();
  bool node_busy(std::size_t index) const;
  void mark_busy(std::size_t index, SimTime until);
  bool client_busy(std::size_t index) const;
  void mark_client_busy(std::size_t index, SimTime until);

  cluster::Cluster& cluster_;
  Rng rng_;
  /// Dedicated stream for bit-rot chaos draws: enabling the class must not
  /// shift the crash/slow/flap/client timelines existing seeds rely on.
  Rng bitrot_rng_;
  ChaosRates rates_;
  std::unique_ptr<sim::PeriodicTask> chaos_task_;
  SimDuration tick_ = milliseconds(500);
  InjectionCounts counts_;
  /// Per-datanode end of the current fault window (chaos mode skips busy
  /// nodes so windows never overlap on one node).
  std::vector<SimTime> busy_until_;
  /// Same ledger for client hosts; sized lazily because clients can be
  /// added after the injector is constructed.
  std::vector<SimTime> client_busy_until_;
  /// End of the current namenode outage window (chaos never stacks a second
  /// crash on a pending recovery).
  SimTime nn_busy_until_ = 0;
};

}  // namespace smarth::faults
