// The discrete-event simulation kernel. Single-threaded, deterministic:
// events execute in (time, insertion sequence) order, so two runs with the
// same seed and configuration are bit-for-bit identical. All model components
// (links, disks, datanodes, clients, the namenode) are driven exclusively by
// callbacks scheduled here.
//
// Internally the queue is a two-tier calendar (ladder) structure over pooled,
// freelist-recycled event records — see DESIGN.md §10. The observable
// contract is unchanged from the original binary-heap core: strict
// (time, seq) pop order, schedule_now FIFO among same-time events, and
// cancellation via EventHandle.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "sim/small_fn.hpp"

namespace smarth::sim {

namespace detail {
struct EventRecord;
class EventPool;

/// Non-atomic intrusive refcount on the event pool. The simulation is
/// single-threaded (parallel sweeps run one Simulation per thread and never
/// share handles), so a plain counter avoids the two atomic RMWs per handle
/// that shared_ptr would charge the scheduling hot path.
class PoolRef {
 public:
  PoolRef() = default;
  explicit PoolRef(EventPool* pool);
  PoolRef(const PoolRef& other);
  PoolRef& operator=(const PoolRef& other);
  PoolRef(PoolRef&& other) noexcept : pool_(other.pool_) {
    other.pool_ = nullptr;
  }
  PoolRef& operator=(PoolRef&& other) noexcept;
  ~PoolRef();

  EventPool* get() const { return pool_; }
  EventPool* operator->() const { return pool_; }
  explicit operator bool() const { return pool_ != nullptr; }

 private:
  EventPool* pool_ = nullptr;
};
}  // namespace detail

/// Handle to a scheduled event; allows cancellation. Default-constructed
/// handles are inert. Liveness is tracked with a generation counter on the
/// pooled record (not shared_ptr identity): a handle whose record has been
/// recycled simply reads as not-pending. The handle keeps the pool itself
/// alive, so it stays safe to query even after the Simulation is destroyed.
class EventHandle {
 public:
  EventHandle() = default;

  /// True if the event is still pending (not fired, not cancelled).
  bool pending() const;
  /// Cancels the event if still pending; returns whether it was cancelled.
  /// Cancellation releases the captured callback state immediately; the
  /// record itself is reclaimed by the queue's next sweep over its bucket.
  bool cancel();

 private:
  friend class Simulation;
  EventHandle(detail::PoolRef pool, detail::EventRecord* rec,
              std::uint64_t gen)
      : pool_(std::move(pool)), rec_(rec), gen_(gen) {}

  detail::PoolRef pool_;
  detail::EventRecord* rec_ = nullptr;
  std::uint64_t gen_ = 0;
};

class Simulation {
 public:
  /// Event callbacks live inline in the pooled event record; captures up to
  /// 64 bytes (a couple of pointers plus a moved-in std::function) never
  /// touch the heap.
  using Callback = SmallFn<64>;

  explicit Simulation(std::uint64_t seed = 0x5eed);
  ~Simulation();

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current simulated time. Valid inside and outside event callbacks.
  SimTime now() const { return now_; }

  /// The simulation-owned RNG; all model randomness must come from here.
  Rng& rng() { return rng_; }

  /// Schedules `cb` at absolute time `t` (must be >= now()). The optional
  /// `category` (a string literal) labels the event for the runaway-model
  /// diagnostic dump; it is not copied, so it must outlive the simulation.
  EventHandle schedule_at(SimTime t, Callback cb);
  EventHandle schedule_at(SimTime t, const char* category, Callback cb);
  /// Schedules `cb` after `delay` (clamped at >= 0).
  EventHandle schedule_after(SimDuration delay, Callback cb);
  EventHandle schedule_after(SimDuration delay, const char* category,
                             Callback cb);
  /// Schedules `cb` to run after all currently queued events at now().
  EventHandle schedule_now(Callback cb) {
    return schedule_after(0, std::move(cb));
  }

  /// Fire-and-forget variants for hot paths: identical ordering semantics,
  /// but no EventHandle is materialized (skips the pool keep-alive refcount).
  void post_at(SimTime t, const char* category, Callback cb);
  void post_after(SimDuration delay, const char* category, Callback cb);
  void post_now(const char* category, Callback cb) {
    post_after(0, category, std::move(cb));
  }

  /// Runs until the event queue drains. Throws if the event limit is hit
  /// (runaway-model backstop); the exception message includes the top pending
  /// event categories so diverging models can be diagnosed without a rebuild.
  void run();
  /// Runs events with time <= `t`, then sets now() = t.
  /// Returns false if the event limit was reached with events still pending.
  bool run_until(SimTime t);
  /// Executes at most `n` events; returns the number executed.
  std::size_t run_steps(std::size_t n);

  bool empty() const;
  std::uint64_t events_executed() const { return executed_; }
  std::uint64_t events_scheduled() const { return scheduled_; }
  /// Events cancelled before firing (via EventHandle::cancel()).
  std::uint64_t events_cancelled() const;

  /// Backstop against runaway models; 0 disables. Default: 4e9.
  void set_event_limit(std::uint64_t limit) { event_limit_ = limit; }

  /// "category×count" summary of the top-N pending event categories, most
  /// numerous first (diagnostics; also embedded in the event-limit error).
  std::string pending_category_summary(std::size_t top_n = 8) const;

 private:
  bool execute_one();
  detail::EventRecord* enqueue(SimTime t, const char* category, Callback cb);
  [[noreturn]] void throw_event_limit();

  SimTime now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t scheduled_ = 0;
  std::uint64_t event_limit_ = 4'000'000'000ULL;
  Rng rng_;

  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace smarth::sim
