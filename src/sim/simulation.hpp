// The discrete-event simulation kernel. Single-threaded, deterministic:
// events execute in (time, insertion sequence) order, so two runs with the
// same seed and configuration are bit-for-bit identical. All model components
// (links, disks, datanodes, clients, the namenode) are driven exclusively by
// callbacks scheduled here.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "common/rng.hpp"
#include "common/units.hpp"

namespace smarth::sim {

/// Handle to a scheduled event; allows cancellation. Default-constructed
/// handles are inert.
class EventHandle {
 public:
  EventHandle() = default;

  /// True if the event is still pending (not fired, not cancelled).
  bool pending() const;
  /// Cancels the event if still pending; returns whether it was cancelled.
  bool cancel();

  /// Implementation detail (defined in simulation.cpp); public only so the
  /// scheduler's queue machinery can see it.
  struct Record;

 private:
  friend class Simulation;
  explicit EventHandle(std::shared_ptr<Record> rec) : rec_(std::move(rec)) {}
  std::shared_ptr<Record> rec_;
};

class Simulation {
 public:
  using Callback = std::function<void()>;

  explicit Simulation(std::uint64_t seed = 0x5eed);
  ~Simulation();

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current simulated time. Valid inside and outside event callbacks.
  SimTime now() const { return now_; }

  /// The simulation-owned RNG; all model randomness must come from here.
  Rng& rng() { return rng_; }

  /// Schedules `cb` at absolute time `t` (must be >= now()).
  EventHandle schedule_at(SimTime t, Callback cb);
  /// Schedules `cb` after `delay` (clamped at >= 0).
  EventHandle schedule_after(SimDuration delay, Callback cb);
  /// Schedules `cb` to run after all currently queued events at now().
  EventHandle schedule_now(Callback cb) { return schedule_after(0, cb); }

  /// Runs until the event queue drains. Throws if the event limit is hit
  /// (runaway-model backstop).
  void run();
  /// Runs events with time <= `t`, then sets now() = t.
  /// Returns false if the event limit was reached with events still pending.
  bool run_until(SimTime t);
  /// Executes at most `n` events; returns the number executed.
  std::size_t run_steps(std::size_t n);

  bool empty() const;
  std::uint64_t events_executed() const { return executed_; }
  std::uint64_t events_scheduled() const { return scheduled_; }

  /// Backstop against runaway models; 0 disables. Default: 4e9.
  void set_event_limit(std::uint64_t limit) { event_limit_ = limit; }

 private:
  bool execute_one();

  SimTime now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t scheduled_ = 0;
  std::uint64_t event_limit_ = 4'000'000'000ULL;
  Rng rng_;

  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace smarth::sim
