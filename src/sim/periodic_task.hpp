// Self-rescheduling periodic task, used for heartbeats and background
// monitors. The callback may stop the task from within itself.
#pragma once

#include <functional>

#include "sim/simulation.hpp"

namespace smarth::sim {

class PeriodicTask {
 public:
  using Callback = std::function<void()>;

  PeriodicTask(Simulation& sim, SimDuration period, Callback cb);
  ~PeriodicTask();

  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  /// Arms the task: first fire after `initial_delay` (default one period).
  void start();
  void start_with_delay(SimDuration initial_delay);
  /// Disarms; safe to call from inside the callback or when not running.
  void stop();

  bool running() const { return running_; }
  SimDuration period() const { return period_; }
  std::uint64_t fire_count() const { return fires_; }

 private:
  void fire();

  Simulation& sim_;
  SimDuration period_;
  Callback callback_;
  EventHandle next_;
  bool running_ = false;
  std::uint64_t fires_ = 0;
};

}  // namespace smarth::sim
