#include "sim/periodic_task.hpp"

#include "common/check.hpp"

namespace smarth::sim {

PeriodicTask::PeriodicTask(Simulation& sim, SimDuration period, Callback cb)
    : sim_(sim), period_(period), callback_(std::move(cb)) {
  SMARTH_CHECK_MSG(period_ > 0, "periodic task period must be positive");
  SMARTH_CHECK(static_cast<bool>(callback_));
}

PeriodicTask::~PeriodicTask() { stop(); }

void PeriodicTask::start() { start_with_delay(period_); }

void PeriodicTask::start_with_delay(SimDuration initial_delay) {
  SMARTH_CHECK_MSG(!running_, "periodic task already running");
  running_ = true;
  next_ = sim_.schedule_after(initial_delay, [this] { fire(); });
}

void PeriodicTask::stop() {
  running_ = false;
  next_.cancel();
}

void PeriodicTask::fire() {
  if (!running_) return;
  ++fires_;
  // Schedule the successor before invoking the callback so that a callback
  // which stops the task cancels the right event.
  next_ = sim_.schedule_after(period_, [this] { fire(); });
  callback_();
}

}  // namespace smarth::sim
