// A deliberately naive event queue mirroring the pre-refactor simulation
// core: one shared_ptr-owned record per event, std::function callbacks and a
// std::priority_queue ordered by (time, seq). It exists as an executable
// specification — the randomized differential test pits the calendar queue
// against it, and bench_engine_scale reports the pooled core's speedup over
// it — and must stay semantically identical to Simulation's documented
// (time, insertion-seq) contract. Not used by any model code.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/units.hpp"

namespace smarth::sim {

class ReferenceQueue {
 public:
  using Callback = std::function<void()>;

  struct Record {
    SimTime time = 0;
    std::uint64_t seq = 0;
    Callback callback;
    bool cancelled = false;
    bool fired = false;
  };

  class Handle {
   public:
    Handle() = default;
    bool pending() const {
      return rec_ && !rec_->cancelled && !rec_->fired;
    }
    bool cancel() {
      if (!pending()) return false;
      rec_->cancelled = true;
      rec_->callback = nullptr;
      return true;
    }

   private:
    friend class ReferenceQueue;
    explicit Handle(std::shared_ptr<Record> rec) : rec_(std::move(rec)) {}
    std::shared_ptr<Record> rec_;
  };

  SimTime now() const { return now_; }
  std::uint64_t events_executed() const { return executed_; }

  Handle schedule_at(SimTime t, Callback cb) {
    auto rec = std::make_shared<Record>();
    rec->time = t;
    rec->seq = seq_++;
    rec->callback = std::move(cb);
    queue_.push(rec);
    return Handle{std::move(rec)};
  }

  Handle schedule_after(SimDuration delay, Callback cb) {
    if (delay < 0) delay = 0;
    return schedule_at(now_ + delay, std::move(cb));
  }

  /// Executes the earliest live event; returns false when drained.
  bool execute_one() {
    while (!queue_.empty()) {
      std::shared_ptr<Record> rec = queue_.top();
      queue_.pop();
      if (rec->cancelled) continue;
      now_ = rec->time;
      rec->fired = true;
      Callback cb = std::move(rec->callback);
      rec->callback = nullptr;
      ++executed_;
      cb();
      return true;
    }
    return false;
  }

  void run() {
    while (execute_one()) {
    }
  }

 private:
  struct Compare {
    bool operator()(const std::shared_ptr<Record>& a,
                    const std::shared_ptr<Record>& b) const {
      if (a->time != b->time) return a->time > b->time;
      return a->seq > b->seq;
    }
  };

  SimTime now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<std::shared_ptr<Record>,
                      std::vector<std::shared_ptr<Record>>, Compare>
      queue_;
};

}  // namespace smarth::sim
