#include "sim/simulation.hpp"

#include <queue>
#include <vector>

#include "common/check.hpp"

namespace smarth::sim {

struct EventHandle::Record {
  SimTime time = 0;
  std::uint64_t seq = 0;
  Simulation::Callback callback;
  bool cancelled = false;
  bool fired = false;
};

bool EventHandle::pending() const {
  return rec_ && !rec_->cancelled && !rec_->fired;
}

bool EventHandle::cancel() {
  if (!pending()) return false;
  rec_->cancelled = true;
  rec_->callback = nullptr;  // release captured state promptly
  return true;
}

namespace {

using Record = EventHandle::Record;

struct QueueCompare {
  bool operator()(const std::shared_ptr<Record>& a,
                  const std::shared_ptr<Record>& b) const {
    if (a->time != b->time) return a->time > b->time;
    return a->seq > b->seq;  // FIFO among same-time events
  }
};

}  // namespace

struct Simulation::Impl {
  std::priority_queue<std::shared_ptr<Record>,
                      std::vector<std::shared_ptr<Record>>, QueueCompare>
      queue;
};

Simulation::Simulation(std::uint64_t seed)
    : rng_(seed), impl_(std::make_unique<Impl>()) {}

Simulation::~Simulation() = default;

EventHandle Simulation::schedule_at(SimTime t, Callback cb) {
  SMARTH_CHECK_MSG(t >= now_, "scheduling into the past: t="
                                  << t << " now=" << now_);
  SMARTH_CHECK_MSG(static_cast<bool>(cb), "null event callback");
  auto rec = std::make_shared<Record>();
  rec->time = t;
  rec->seq = seq_++;
  rec->callback = std::move(cb);
  impl_->queue.push(rec);
  ++scheduled_;
  return EventHandle{std::move(rec)};
}

EventHandle Simulation::schedule_after(SimDuration delay, Callback cb) {
  if (delay < 0) delay = 0;
  return schedule_at(now_ + delay, std::move(cb));
}

bool Simulation::execute_one() {
  while (!impl_->queue.empty()) {
    std::shared_ptr<Record> rec = impl_->queue.top();
    impl_->queue.pop();
    if (rec->cancelled) continue;
    SMARTH_DCHECK(rec->time >= now_);
    now_ = rec->time;
    rec->fired = true;
    Callback cb = std::move(rec->callback);
    rec->callback = nullptr;
    ++executed_;
    cb();
    return true;
  }
  return false;
}

void Simulation::run() {
  while (execute_one()) {
    SMARTH_CHECK_MSG(event_limit_ == 0 || executed_ < event_limit_,
                     "event limit exceeded — model likely diverges");
  }
}

bool Simulation::run_until(SimTime t) {
  SMARTH_CHECK(t >= now_);
  while (!impl_->queue.empty()) {
    // Skip cancelled heads so their stale timestamps don't stall progress.
    if (impl_->queue.top()->cancelled) {
      impl_->queue.pop();
      continue;
    }
    if (impl_->queue.top()->time > t) break;
    if (event_limit_ != 0 && executed_ >= event_limit_) return false;
    execute_one();
  }
  now_ = t;
  return true;
}

std::size_t Simulation::run_steps(std::size_t n) {
  std::size_t done = 0;
  while (done < n && execute_one()) ++done;
  return done;
}

bool Simulation::empty() const {
  // Cancelled records may linger; report emptiness over live events only.
  // The queue is not iterable, so approximate by draining cancelled heads.
  auto& q = impl_->queue;
  while (!q.empty() && q.top()->cancelled) q.pop();
  return q.empty();
}

}  // namespace smarth::sim
