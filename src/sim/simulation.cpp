#include "sim/simulation.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <vector>

#include "common/check.hpp"

namespace smarth::sim {

namespace detail {

/// One pooled event. Records live in slabs owned by the EventPool and are
/// recycled through a freelist; `gen` is bumped on every recycle so stale
/// EventHandles read as not-pending instead of aliasing the new occupant.
struct EventRecord {
  enum class State : std::uint8_t { kFree, kPending, kCancelled };

  SimTime time = 0;
  std::uint64_t seq = 0;
  std::uint64_t gen = 0;
  const char* category = nullptr;
  EventRecord* next_free = nullptr;
  State state = State::kFree;
  Simulation::Callback callback;
};

/// Slab allocator for EventRecords. Slabs never move or shrink, so record
/// pointers stay valid for the pool's lifetime; the pool is shared between
/// the Simulation and any outstanding EventHandles, so a handle can outlive
/// the simulation safely. Pending-event and cancellation counters live here
/// (not on the Simulation) for the same reason: EventHandle::cancel() must
/// work without a Simulation back-pointer.
class EventPool {
 public:
  static constexpr std::size_t kSlabRecords = 512;

  EventRecord* acquire() {
    EventRecord* rec = free_head_;
    if (rec != nullptr) {
      free_head_ = rec->next_free;
    } else {
      if (bump_index_ == kSlabRecords || slabs_.empty()) {
        slabs_.push_back(std::make_unique<EventRecord[]>(kSlabRecords));
        bump_index_ = 0;
      }
      rec = &slabs_.back()[bump_index_++];
    }
    rec->state = EventRecord::State::kPending;
    return rec;
  }

  /// Recycles a record (fired, or swept tombstone). Destroys any remaining
  /// callback state and invalidates outstanding handles via the generation.
  void release(EventRecord* rec) {
    rec->callback = nullptr;
    rec->state = EventRecord::State::kFree;
    ++rec->gen;
    rec->next_free = free_head_;
    free_head_ = rec;
  }

  std::uint64_t live = 0;       ///< pending (scheduled, not fired/cancelled)
  std::uint64_t cancelled = 0;  ///< total successful cancellations
  std::uint64_t refs = 0;       ///< PoolRef intrusive refcount

 private:
  std::vector<std::unique_ptr<EventRecord[]>> slabs_;
  EventRecord* free_head_ = nullptr;
  std::size_t bump_index_ = kSlabRecords;
};

PoolRef::PoolRef(EventPool* pool) : pool_(pool) {
  if (pool_ != nullptr) ++pool_->refs;
}

PoolRef::PoolRef(const PoolRef& other) : pool_(other.pool_) {
  if (pool_ != nullptr) ++pool_->refs;
}

PoolRef& PoolRef::operator=(const PoolRef& other) {
  if (this != &other) {
    PoolRef tmp(other);
    std::swap(pool_, tmp.pool_);
  }
  return *this;
}

PoolRef& PoolRef::operator=(PoolRef&& other) noexcept {
  if (this != &other) {
    this->~PoolRef();
    pool_ = other.pool_;
    other.pool_ = nullptr;
  }
  return *this;
}

PoolRef::~PoolRef() {
  if (pool_ != nullptr && --pool_->refs == 0) delete pool_;
}

}  // namespace detail

using detail::EventPool;
using detail::EventRecord;
using detail::PoolRef;

bool EventHandle::pending() const {
  return rec_ != nullptr && rec_->gen == gen_ &&
         rec_->state == EventRecord::State::kPending;
}

bool EventHandle::cancel() {
  if (!pending()) return false;
  rec_->state = EventRecord::State::kCancelled;
  rec_->callback = nullptr;  // release captured state promptly
  ++pool_->cancelled;
  --pool_->live;
  return true;
}

namespace {

/// Heap comparator: true when `a` fires after `b`, so std::push_heap keeps
/// the earliest (time, seq) at the front — FIFO among same-time events.
struct FiresLater {
  bool operator()(const EventRecord* a, const EventRecord* b) const {
    if (a->time != b->time) return a->time > b->time;
    return a->seq > b->seq;
  }
};

}  // namespace

/// Two-tier calendar ("ladder") queue. The near future — events with
/// time < active_end — sits in a small binary heap; the farther future is
/// bucketed by time into kBuckets unsorted vectors (O(1) insertion, no
/// comparisons), and everything beyond the ladder span lands in an unsorted
/// overflow list. Buckets are heapified only when the active heap drains, so
/// the heap stays small and pop order is still a strict total (time, seq)
/// order: a bucket is only activated once every earlier event has fired.
struct Simulation::Impl {
  static constexpr std::size_t kBuckets = 256;

  PoolRef pool{new EventPool};

  std::vector<EventRecord*> active;  ///< min-heap, events < active_end
  SimTime active_end = 0;            ///< exclusive upper bound of the heap

  std::vector<std::vector<EventRecord*>> buckets{kBuckets};
  SimTime ladder_base = 0;       ///< start time of bucket 0's range
  SimDuration bucket_width = 0;  ///< 0 => ladder not built
  std::size_t cursor = 0;        ///< next bucket to activate
  std::size_t ladder_count = 0;  ///< records across all buckets

  std::vector<EventRecord*> overflow;  ///< events beyond the ladder span

  void push(EventRecord* rec) {
    if (rec->time < active_end) {
      active.push_back(rec);
      std::push_heap(active.begin(), active.end(), FiresLater{});
      return;
    }
    if (bucket_width > 0) {
      const auto idx = static_cast<std::size_t>(
          (rec->time - ladder_base) / bucket_width);
      if (idx < kBuckets) {
        buckets[idx].push_back(rec);
        ++ladder_count;
        return;
      }
    }
    overflow.push_back(rec);
  }

  /// Earliest live (non-cancelled) record, or nullptr when drained.
  /// Tombstones encountered at the heap top, during bucket activation, or
  /// during an overflow rebuild are recycled on the spot.
  EventRecord* peek_live() {
    for (;;) {
      while (!active.empty()) {
        EventRecord* top = active.front();
        if (top->state != EventRecord::State::kCancelled) return top;
        std::pop_heap(active.begin(), active.end(), FiresLater{});
        active.pop_back();
        pool->release(top);
      }
      if (ladder_count > 0) {
        activate_next_bucket();
        continue;
      }
      if (!overflow.empty()) {
        rebuild_ladder();
        continue;
      }
      return nullptr;
    }
  }

  EventRecord* pop() {
    EventRecord* top = active.front();
    std::pop_heap(active.begin(), active.end(), FiresLater{});
    active.pop_back();
    return top;
  }

  void activate_next_bucket() {
    while (cursor < kBuckets && buckets[cursor].empty()) ++cursor;
    SMARTH_DCHECK(cursor < kBuckets);
    std::vector<EventRecord*>& bucket = buckets[cursor];
    ladder_count -= bucket.size();
    for (EventRecord* rec : bucket) {
      if (rec->state == EventRecord::State::kCancelled) {
        pool->release(rec);  // bucket-sweep tombstone drop
      } else {
        active.push_back(rec);
      }
    }
    bucket.clear();
    ++cursor;
    active_end = ladder_base + static_cast<SimDuration>(cursor) * bucket_width;
    std::make_heap(active.begin(), active.end(), FiresLater{});
  }

  /// Rebuilds the ladder over the overflow list's time span. Only reached
  /// when both the heap and all buckets have drained, so redistribution
  /// cannot reorder anything that could fire earlier.
  void rebuild_ladder() {
    SimTime min_t = 0;
    SimTime max_t = 0;
    std::size_t live_count = 0;
    for (EventRecord* rec : overflow) {
      if (rec->state == EventRecord::State::kCancelled) continue;
      if (live_count == 0 || rec->time < min_t) min_t = rec->time;
      if (live_count == 0 || rec->time > max_t) max_t = rec->time;
      ++live_count;
    }
    std::vector<EventRecord*> pending;
    pending.swap(overflow);
    if (live_count == 0) {
      for (EventRecord* rec : pending) pool->release(rec);
      return;
    }
    if (live_count <= 32 || min_t == max_t) {
      // Too few events to spread: heapify directly.
      bucket_width = 0;
      cursor = kBuckets;
      active_end = max_t + 1;
      for (EventRecord* rec : pending) {
        if (rec->state == EventRecord::State::kCancelled) {
          pool->release(rec);
        } else {
          active.push_back(rec);
        }
      }
      std::make_heap(active.begin(), active.end(), FiresLater{});
      return;
    }
    ladder_base = min_t;
    bucket_width = (max_t - min_t) / static_cast<SimDuration>(kBuckets) + 1;
    cursor = 0;
    active_end = ladder_base;
    for (EventRecord* rec : pending) {
      if (rec->state == EventRecord::State::kCancelled) {
        pool->release(rec);
        continue;
      }
      const auto idx = static_cast<std::size_t>(
          (rec->time - ladder_base) / bucket_width);
      SMARTH_DCHECK(idx < kBuckets);
      buckets[idx].push_back(rec);
      ++ladder_count;
    }
  }

  /// Pending category histogram, for the event-limit diagnostic.
  std::map<std::string, std::uint64_t> category_counts() const {
    std::map<std::string, std::uint64_t> counts;
    auto tally = [&counts](const EventRecord* rec) {
      if (rec->state != EventRecord::State::kPending) return;
      counts[rec->category != nullptr ? rec->category : "event"] += 1;
    };
    for (const EventRecord* rec : active) tally(rec);
    for (const auto& bucket : buckets) {
      for (const EventRecord* rec : bucket) tally(rec);
    }
    for (const EventRecord* rec : overflow) tally(rec);
    return counts;
  }
};

Simulation::Simulation(std::uint64_t seed)
    : rng_(seed), impl_(std::make_unique<Impl>()) {}

Simulation::~Simulation() {
  // Destroy pending callbacks in deterministic (time, seq) order rather than
  // slab order, in case captured destructors have observable effects.
  while (EventRecord* rec = impl_->peek_live()) {
    impl_->pop();
    --impl_->pool->live;
    impl_->pool->release(rec);
  }
}

EventRecord* Simulation::enqueue(SimTime t, const char* category,
                                 Callback cb) {
  SMARTH_CHECK_MSG(t >= now_, "scheduling into the past: t="
                                  << t << " now=" << now_);
  SMARTH_CHECK_MSG(static_cast<bool>(cb), "null event callback");
  EventRecord* rec = impl_->pool->acquire();
  rec->time = t;
  rec->seq = seq_++;
  rec->category = category;
  rec->callback = std::move(cb);
  impl_->push(rec);
  ++scheduled_;
  ++impl_->pool->live;
  return rec;
}

EventHandle Simulation::schedule_at(SimTime t, Callback cb) {
  return schedule_at(t, nullptr, std::move(cb));
}

EventHandle Simulation::schedule_at(SimTime t, const char* category,
                                    Callback cb) {
  EventRecord* rec = enqueue(t, category, std::move(cb));
  return EventHandle{impl_->pool, rec, rec->gen};
}

EventHandle Simulation::schedule_after(SimDuration delay, Callback cb) {
  if (delay < 0) delay = 0;
  return schedule_at(now_ + delay, nullptr, std::move(cb));
}

EventHandle Simulation::schedule_after(SimDuration delay, const char* category,
                                       Callback cb) {
  if (delay < 0) delay = 0;
  return schedule_at(now_ + delay, category, std::move(cb));
}

void Simulation::post_at(SimTime t, const char* category, Callback cb) {
  enqueue(t, category, std::move(cb));
}

void Simulation::post_after(SimDuration delay, const char* category,
                            Callback cb) {
  if (delay < 0) delay = 0;
  enqueue(now_ + delay, category, std::move(cb));
}

bool Simulation::execute_one() {
  EventRecord* rec = impl_->peek_live();
  if (rec == nullptr) return false;
  impl_->pop();
  SMARTH_DCHECK(rec->time >= now_);
  now_ = rec->time;
  ++executed_;
  --impl_->pool->live;
  // Move the callback out and recycle the record *before* invoking, so the
  // slot is immediately reusable by whatever the callback schedules (hot
  // cache) and a handle to this event reads not-pending during the callback.
  Callback cb = std::move(rec->callback);
  impl_->pool->release(rec);
  cb();
  return true;
}

void Simulation::run() {
  while (execute_one()) {
    if (event_limit_ != 0 && executed_ >= event_limit_) throw_event_limit();
  }
}

bool Simulation::run_until(SimTime t) {
  SMARTH_CHECK(t >= now_);
  for (;;) {
    EventRecord* top = impl_->peek_live();
    if (top == nullptr || top->time > t) break;
    if (event_limit_ != 0 && executed_ >= event_limit_) return false;
    execute_one();
  }
  now_ = t;
  return true;
}

std::size_t Simulation::run_steps(std::size_t n) {
  std::size_t done = 0;
  while (done < n && execute_one()) ++done;
  return done;
}

bool Simulation::empty() const { return impl_->pool->live == 0; }

std::uint64_t Simulation::events_cancelled() const {
  return impl_->pool->cancelled;
}

std::string Simulation::pending_category_summary(std::size_t top_n) const {
  const auto counts = impl_->category_counts();
  std::vector<std::pair<std::uint64_t, std::string>> ranked;
  ranked.reserve(counts.size());
  for (const auto& [name, count] : counts) ranked.emplace_back(count, name);
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  std::ostringstream os;
  for (std::size_t i = 0; i < ranked.size() && i < top_n; ++i) {
    if (i > 0) os << ", ";
    os << ranked[i].second << "×" << ranked[i].first;
  }
  if (ranked.size() > top_n) os << ", …";
  return os.str();
}

void Simulation::throw_event_limit() {
  std::ostringstream os;
  os << "event limit exceeded after " << executed_
     << " events — model likely diverges; top pending categories: ";
  const std::string summary = pending_category_summary();
  os << (summary.empty() ? "(none pending)" : summary);
  throw std::logic_error(os.str());
}

}  // namespace smarth::sim
