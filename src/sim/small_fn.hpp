// A move-only callable with small-buffer storage, used for event callbacks.
//
// std::function costs a heap allocation for any capture larger than two
// pointers, and the event core schedules tens of millions of callbacks per
// simulated run. SmallFn keeps captures up to `Capacity` bytes inline in the
// event record itself (falling back to the heap only for oversized or
// throwing-move captures), so the common packet-delivery / timer-tick lambdas
// never allocate. Move-only by design: an event callback has exactly one
// owner (the queue) and most useful captures own moved-in state anyway.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace smarth::sim {

template <std::size_t Capacity>
class SmallFn {
  static_assert(Capacity >= sizeof(void*), "capacity must hold a pointer");

 public:
  SmallFn() = default;
  SmallFn(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  SmallFn(F&& f) {  // NOLINT(google-explicit-constructor)
    emplace(std::forward<F>(f));
  }

  SmallFn(SmallFn&& other) noexcept { take_from(other); }
  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      reset();
      take_from(other);
    }
    return *this;
  }
  SmallFn& operator=(std::nullptr_t) {
    reset();
    return *this;
  }

  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;

  ~SmallFn() { reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  /// Invokes the target. Precondition: non-null.
  void operator()() { ops_->invoke(storage_); }

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    /// Move-constructs the target from `src` storage into `dst` storage and
    /// destroys the source — relocation between inline slots.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void*);
  };

  template <typename F>
  static constexpr bool fits_inline() {
    return sizeof(F) <= Capacity && alignof(F) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<F>;
  }

  template <typename F>
  static const Ops* inline_ops() {
    static constexpr Ops ops = {
        [](void* p) { (*static_cast<F*>(p))(); },
        [](void* dst, void* src) {
          F* from = static_cast<F*>(src);
          ::new (dst) F(std::move(*from));
          from->~F();
        },
        [](void* p) { static_cast<F*>(p)->~F(); },
    };
    return &ops;
  }

  template <typename F>
  static const Ops* heap_ops() {
    static constexpr Ops ops = {
        [](void* p) { (**static_cast<F**>(p))(); },
        [](void* dst, void* src) {
          *static_cast<F**>(dst) = *static_cast<F**>(src);
        },
        [](void* p) { delete *static_cast<F**>(p); },
    };
    return &ops;
  }

  template <typename F>
  void emplace(F&& f) {
    using D = std::decay_t<F>;
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      ops_ = inline_ops<D>();
    } else {
      *reinterpret_cast<D**>(storage_) = new D(std::forward<F>(f));
      ops_ = heap_ops<D>();
    }
  }

  void take_from(SmallFn& other) {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[Capacity];
  const Ops* ops_ = nullptr;
};

}  // namespace smarth::sim
