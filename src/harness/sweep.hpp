// Share-nothing parallel seed sweeps. Each seed runs a complete,
// independently constructed simulation on its own worker thread; nothing is
// shared between workers (the metrics registry and trace recorder are
// thread_local), so every per-seed result is bit-identical to running that
// seed alone. Results are merged on the calling thread in seed order, making
// the aggregate deterministic regardless of worker scheduling.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "hdfs/output_stream.hpp"
#include "metrics/report.hpp"

namespace smarth::harness {

/// One seed's outcome, produced on a worker thread.
struct SeedRun {
  std::uint64_t seed = 0;
  hdfs::StreamStats stats;
  metrics::FaultSummary summary;
  std::uint64_t events = 0;
  /// Harness-level failure: the body threw. (A failed *upload* is a normal
  /// outcome recorded in stats/summary, not this.)
  bool errored = false;
  std::string error;
  /// Flight-recorder run fragment (FlightRecorder::run_json) when the body
  /// sampled time series; empty otherwise. Merged in seed order by the
  /// driver, so the combined export is deterministic.
  std::string timeseries;
};

/// Aggregate of a whole sweep, merged in seed order.
struct SweepSummary {
  std::vector<SeedRun> runs;     ///< one per seed, ascending seed
  metrics::FaultSummary merged;  ///< additive fold of every non-errored run
  std::uint64_t total_events = 0;
  int errored = 0;
  // Upload-seconds statistics across non-errored runs.
  double mean_seconds = 0.0;
  double min_seconds = 0.0;
  double max_seconds = 0.0;
  double stddev_seconds = 0.0;
};

/// The per-seed body: build a fresh world for `seed`, run it, fill `out`.
/// Runs on a worker thread; must not touch anything outside its own world
/// (process-global mutable state like the Logger level is off limits).
using SeedBody = std::function<void(std::uint64_t seed, SeedRun& out)>;

/// Runs `body` for seeds base_seed .. base_seed+seeds-1 across min(jobs,
/// seeds) worker threads (jobs < 1 means one thread per hardware core).
/// Exceptions from the body are captured into SeedRun::error, never
/// propagated — one diverging seed must not abort the sweep.
SweepSummary run_seed_sweep(std::uint64_t base_seed, int seeds, int jobs,
                            const SeedBody& body);

/// Renders the per-seed table plus the aggregate line.
std::string render_sweep(const SweepSummary& sweep);

}  // namespace smarth::harness
