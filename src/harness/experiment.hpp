// Experiment runner: builds a fresh cluster per run (each protocol gets an
// identical, independently seeded world), applies the scenario's traffic
// shaping / faults, uploads one file with each protocol, and reports the
// paired result. Every bench regenerating a paper figure goes through this.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "metrics/report.hpp"

namespace smarth::harness {

struct Scenario {
  std::string label;
  /// Builds the cluster spec for a given seed (fresh world per run).
  std::function<cluster::ClusterSpec(std::uint64_t seed)> make_spec;
  /// Applies throttles / faults / extra clients before the upload starts.
  std::function<void(cluster::Cluster&)> prepare;
  Bytes file_size = 8 * kGiB;
  std::string path = "/data/input.bin";
};

/// Runs one protocol once; throws only on harness misuse (a failed upload is
/// reported in the stats).
hdfs::StreamStats run_protocol(const Scenario& scenario,
                               cluster::Protocol protocol,
                               std::uint64_t seed = 42);

/// Runs HDFS and SMARTH on identical fresh clusters and pairs the results.
metrics::ComparisonRow compare_protocols(const Scenario& scenario,
                                         std::uint64_t seed = 42);

/// Seed-averaged comparison (arithmetic mean of upload seconds per protocol).
metrics::ComparisonRow compare_protocols_averaged(const Scenario& scenario,
                                                  int repeats,
                                                  std::uint64_t base_seed = 42);

/// Pre-warms the SMARTH speed machinery: seeds the client's tracker and the
/// namenode's speed board with the steady-state client->datanode rates
/// implied by the current NIC and throttle configuration. Benches that model
/// steady-state behaviour (and tests comparing against the closed-form
/// model) use this to skip the exploration warm-up an 8 GB paper run
/// amortizes naturally.
void warm_speed_records(cluster::Cluster& cluster,
                        std::size_t client_index = 0);

/// Convenience scenario constructors used across benches ------------------

/// Two-rack scenario: cluster by builder + cross-rack throttle (unlimited
/// bandwidth when `throttle` is kUnlimitedBandwidth).
Scenario two_rack_scenario(
    const std::string& label,
    std::function<cluster::ClusterSpec(std::uint64_t)> make_spec,
    Bandwidth cross_rack_throttle, Bytes file_size);

/// Contention scenario: throttle the first `slow_nodes` datanodes to
/// `node_bandwidth` (the paper's Figs. 10-12).
Scenario contention_scenario(
    const std::string& label,
    std::function<cluster::ClusterSpec(std::uint64_t)> make_spec,
    std::size_t slow_nodes, Bandwidth node_bandwidth, Bytes file_size);

}  // namespace smarth::harness
