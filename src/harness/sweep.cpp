#include "harness/sweep.hpp"

#include <atomic>
#include <cmath>
#include <thread>

#include "common/check.hpp"
#include "common/table.hpp"

namespace smarth::harness {

SweepSummary run_seed_sweep(std::uint64_t base_seed, int seeds, int jobs,
                            const SeedBody& body) {
  SMARTH_CHECK_MSG(seeds >= 1, "sweep needs at least one seed");
  SMARTH_CHECK(static_cast<bool>(body));
  if (jobs < 1) {
    jobs = static_cast<int>(std::thread::hardware_concurrency());
    if (jobs < 1) jobs = 1;
  }
  if (jobs > seeds) jobs = seeds;

  SweepSummary sweep;
  sweep.runs.resize(static_cast<std::size_t>(seeds));

  // Workers claim seed indices from a shared counter and write into disjoint
  // slots of `runs` — no locks, no ordering dependence in the results.
  std::atomic<int> next{0};
  auto worker = [&] {
    for (;;) {
      const int i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= seeds) return;
      SeedRun& run = sweep.runs[static_cast<std::size_t>(i)];
      run.seed = base_seed + static_cast<std::uint64_t>(i);
      try {
        body(run.seed, run);
      } catch (const std::exception& e) {
        run.errored = true;
        run.error = e.what();
      } catch (...) {
        run.errored = true;
        run.error = "unknown exception";
      }
    }
  };
  if (jobs == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(jobs));
    for (int i = 0; i < jobs; ++i) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  // Deterministic merge in seed order on the calling thread.
  double sum = 0, sum_sq = 0;
  int counted = 0;
  for (const SeedRun& run : sweep.runs) {
    if (run.errored) {
      ++sweep.errored;
      continue;
    }
    sweep.merged.merge(run.summary);
    sweep.total_events += run.events;
    const double s = to_seconds(run.stats.elapsed());
    if (counted == 0) {
      sweep.min_seconds = sweep.max_seconds = s;
    } else {
      sweep.min_seconds = std::min(sweep.min_seconds, s);
      sweep.max_seconds = std::max(sweep.max_seconds, s);
    }
    sum += s;
    sum_sq += s * s;
    ++counted;
  }
  if (counted > 0) {
    sweep.mean_seconds = sum / counted;
    const double var =
        std::max(0.0, sum_sq / counted - sweep.mean_seconds * sweep.mean_seconds);
    sweep.stddev_seconds = std::sqrt(var);
  }
  return sweep;
}

std::string render_sweep(const SweepSummary& sweep) {
  TextTable table({"seed", "seconds", "throughput (Mbps)", "blocks",
                   "recoveries", "events", "status"});
  for (const SeedRun& run : sweep.runs) {
    if (run.errored) {
      table.add_row({std::to_string(run.seed), "-", "-", "-", "-", "-",
                     "error: " + run.error});
      continue;
    }
    table.add_row({std::to_string(run.seed),
                   TextTable::num(to_seconds(run.stats.elapsed())),
                   TextTable::num(run.stats.throughput().mbps(), 1),
                   std::to_string(run.stats.blocks),
                   std::to_string(run.stats.recoveries),
                   std::to_string(run.events),
                   run.stats.failed ? "failed" : "ok"});
  }
  std::string out = table.to_string();
  out += "sweep: mean " + TextTable::num(sweep.mean_seconds) + "s, min " +
         TextTable::num(sweep.min_seconds) + "s, max " +
         TextTable::num(sweep.max_seconds) + "s, stddev " +
         TextTable::num(sweep.stddev_seconds) + "s, events " +
         std::to_string(sweep.total_events) + "\n";
  return out;
}

}  // namespace smarth::harness
