#include "harness/experiment.hpp"

#include "common/check.hpp"

namespace smarth::harness {

hdfs::StreamStats run_protocol(const Scenario& scenario,
                               cluster::Protocol protocol,
                               std::uint64_t seed) {
  SMARTH_CHECK_MSG(static_cast<bool>(scenario.make_spec),
                   "scenario has no spec builder");
  cluster::Cluster cluster(scenario.make_spec(seed));
  if (scenario.prepare) scenario.prepare(cluster);
  return cluster.run_upload(scenario.path, scenario.file_size, protocol);
}

metrics::ComparisonRow compare_protocols(const Scenario& scenario,
                                         std::uint64_t seed) {
  metrics::ComparisonRow row;
  row.scenario = scenario.label;
  const hdfs::StreamStats hdfs_stats =
      run_protocol(scenario, cluster::Protocol::kHdfs, seed);
  const hdfs::StreamStats smarth_stats =
      run_protocol(scenario, cluster::Protocol::kSmarth, seed);
  SMARTH_CHECK_MSG(!hdfs_stats.failed,
                   "HDFS upload failed in '" << scenario.label
                                             << "': " << hdfs_stats.failure_reason);
  SMARTH_CHECK_MSG(!smarth_stats.failed,
                   "SMARTH upload failed in '"
                       << scenario.label
                       << "': " << smarth_stats.failure_reason);
  row.hdfs_seconds = to_seconds(hdfs_stats.elapsed());
  row.smarth_seconds = to_seconds(smarth_stats.elapsed());
  return row;
}

metrics::ComparisonRow compare_protocols_averaged(const Scenario& scenario,
                                                  int repeats,
                                                  std::uint64_t base_seed) {
  SMARTH_CHECK(repeats > 0);
  metrics::ComparisonRow mean;
  mean.scenario = scenario.label;
  for (int i = 0; i < repeats; ++i) {
    const metrics::ComparisonRow row =
        compare_protocols(scenario, base_seed + static_cast<std::uint64_t>(i));
    mean.hdfs_seconds += row.hdfs_seconds;
    mean.smarth_seconds += row.smarth_seconds;
  }
  mean.hdfs_seconds /= repeats;
  mean.smarth_seconds /= repeats;
  return mean;
}

void warm_speed_records(cluster::Cluster& cluster, std::size_t client_index) {
  const auto& topology = cluster.network().topology();
  const NodeId client_node = cluster.client_node(client_index);
  const auto cross_throttle = cluster.network().cross_rack_throttle();
  std::vector<hdfs::SpeedRecord> records;
  for (std::size_t i = 0; i < cluster.datanode_count(); ++i) {
    const NodeId dn = cluster.datanode_id(i);
    Bandwidth speed = min(cluster.network().node_nic(client_node),
                          cluster.network().node_nic(dn));
    if (!topology.same_rack(client_node, dn) && cross_throttle) {
      speed = min(speed, *cross_throttle);
    }
    // Feed the client tracker a synthetic one-block observation at that rate.
    const Bytes sample = kMiB;
    const SimDuration elapsed = speed.transmit_time(sample);
    cluster.speed_tracker(client_index)
        .record(dn, sample, elapsed, cluster.sim().now());
    records.push_back(
        hdfs::SpeedRecord{dn, speed, cluster.sim().now()});
  }
  cluster.namenode().report_client_speeds(
      cluster.client(client_index).id(), records);
}

Scenario two_rack_scenario(
    const std::string& label,
    std::function<cluster::ClusterSpec(std::uint64_t)> make_spec,
    Bandwidth cross_rack_throttle, Bytes file_size) {
  Scenario scenario;
  scenario.label = label;
  scenario.make_spec = std::move(make_spec);
  scenario.file_size = file_size;
  scenario.prepare = [cross_rack_throttle](cluster::Cluster& cluster) {
    if (!cross_rack_throttle.is_unlimited()) {
      cluster.throttle_cross_rack(cross_rack_throttle);
    }
  };
  return scenario;
}

Scenario contention_scenario(
    const std::string& label,
    std::function<cluster::ClusterSpec(std::uint64_t)> make_spec,
    std::size_t slow_nodes, Bandwidth node_bandwidth, Bytes file_size) {
  Scenario scenario;
  scenario.label = label;
  scenario.make_spec = std::move(make_spec);
  scenario.file_size = file_size;
  scenario.prepare = [slow_nodes, node_bandwidth](cluster::Cluster& cluster) {
    SMARTH_CHECK(slow_nodes <= cluster.datanode_count());
    for (std::size_t i = 0; i < slow_nodes; ++i) {
      cluster.throttle_datanode(i, node_bandwidth);
    }
  };
  return scenario;
}

}  // namespace smarth::harness
