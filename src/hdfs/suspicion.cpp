#include "hdfs/suspicion.hpp"

#include <algorithm>
#include <cmath>

namespace smarth::hdfs {

double SuspicionList::decayed(const Entry& entry, SimTime now) const {
  if (half_life_ <= 0 || now <= entry.updated_at) return entry.score;
  const double half_lives = static_cast<double>(now - entry.updated_at) /
                            static_cast<double>(half_life_);
  return entry.score * std::exp2(-half_lives);
}

void SuspicionList::report(NodeId node, double weight, SimTime now) {
  Entry& entry = entries_[node.value()];
  entry.score = decayed(entry, now) + weight;
  entry.updated_at = now;
  ++reports_;
}

double SuspicionList::score(NodeId node, SimTime now) const {
  const auto it = entries_.find(node.value());
  return it == entries_.end() ? 0.0 : decayed(it->second, now);
}

bool SuspicionList::suspect(NodeId node, SimTime now) const {
  return score(node, now) >= threshold_;
}

std::vector<NodeId> SuspicionList::suspects(SimTime now) const {
  std::vector<NodeId> out;
  for (const auto& [node, entry] : entries_) {
    if (decayed(entry, now) >= threshold_) out.push_back(NodeId(node));
  }
  std::sort(out.begin(), out.end(),
            [](NodeId a, NodeId b) { return a.value() < b.value(); });
  return out;
}

}  // namespace smarth::hdfs
