// Wire-level protocol types and tunables shared by the namenode, datanodes
// and clients. The defaults mirror Hadoop 1.0.3, the version the paper
// evaluated: 64 MB blocks, 64 KB packets, replication 3, 3-second heartbeats.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "common/units.hpp"

namespace smarth::hdfs {

/// Data-path fidelity. kPacket simulates every packet as its own
/// serialize/verify/store/ack event chain — the reference behavior. kBlock
/// coalesces runs of consecutive packets into macro "transfer units" that
/// carry the same aggregate analytic costs (k packets' production, headers,
/// verification and disk-op overhead per unit), trading per-packet timing
/// detail for an order-of-magnitude fewer events. The unit size is derived
/// from the cost model so the coarsening distorts block pipeline times by at
/// most HdfsConfig::block_fidelity_tolerance (contract in DESIGN.md §10).
enum class DataFidelity { kPacket, kBlock };

/// All tunables of the simulated DFS. One instance is shared by every
/// component of a cluster.
struct HdfsConfig {
  // --- Data layout ----------------------------------------------------------
  Bytes block_size = 64 * kMiB;
  Bytes packet_payload = 64 * kKiB;

  // --- Fidelity -------------------------------------------------------------
  DataFidelity fidelity = DataFidelity::kPacket;
  /// Block-fidelity macro-transfer payload, a multiple of packet_payload.
  /// Derived by the cluster builder (model::coalesced_transfer_unit) when
  /// left at 0; ignored in packet mode.
  Bytes block_transfer_unit = 0;
  /// Ceiling on block-fidelity distortion: the extra store-and-forward skew
  /// a coalesced unit introduces across the pipeline, as a fraction of the
  /// whole block's transfer time.
  double block_fidelity_tolerance = 0.05;

  // --- Wire overheads -------------------------------------------------------
  Bytes packet_header_wire = 512;  ///< checksums + header per data packet
  Bytes ack_wire = 64;
  Bytes setup_wire = 256;
  Bytes fnfa_wire = 64;

  // --- Replication / flow control -------------------------------------------
  int replication = 3;
  /// Client-side cap on dataQueue + ackQueue, in packets (Hadoop: 80).
  int max_outstanding_packets = 80;

  // --- Client-side costs ----------------------------------------------------
  /// Per-packet production time Tc: read from the local source, checksum,
  /// frame. Overridden per instance type by the cluster builder.
  SimDuration packet_production_time = microseconds(800);

  // --- Datanode costs -------------------------------------------------------
  /// Per-packet checksum verification before store/forward.
  SimDuration checksum_verify_time = microseconds(30);
  /// Staging buffer per datanode per client (paper §IV-C: one block).
  Bytes staging_buffer_bytes = 64 * kMiB;

  // --- Data integrity -------------------------------------------------------
  /// Granularity of at-rest CRC32C checksums in the block store. One CRC per
  /// chunk, verified on every read/scrub touching the chunk (HDFS: 512 B per
  /// chunk in .meta files; we checksum at packet granularity).
  Bytes checksum_chunk_size = 64 * kKiB;
  /// Background block-scanner byte budget per datanode. 0 disables the
  /// scanner (the default, so latency-calibrated experiments are unaffected);
  /// when enabled, scrub reads go through the shared disk and contend with
  /// foreground traffic (Hadoop's dfs.datanode.scan.period analogue, but
  /// budgeted by rate rather than period).
  Bytes scanner_bytes_per_second = 0;
  /// Cadence at which the scanner wakes and spends its accumulated budget.
  SimDuration scanner_interval = seconds(1);

  // --- Control plane --------------------------------------------------------
  SimDuration heartbeat_interval = seconds(3);
  /// A datanode missing heartbeats for this long is considered dead.
  SimDuration datanode_dead_interval = seconds(15);

  // --- Leases (writer-crash tolerance) ---------------------------------------
  /// Past the soft limit another client may force lease recovery (takeover);
  /// past the hard limit the namenode recovers the file on its own.
  SimDuration lease_soft_limit = seconds(10);
  SimDuration lease_hard_limit = seconds(30);
  /// Cadence of the namenode's lease expiry / UC-recovery monitor.
  SimDuration lease_monitor_interval = seconds(2);
  /// Deadline for one primary-datanode recovery round before the namenode
  /// re-elects a primary and reissues the command.
  SimDuration lease_recovery_retry_interval = seconds(5);
  /// Recovery rounds per UC block before the block is abandoned (and the
  /// file truncated before it) so a dead rack cannot wedge the file forever.
  int lease_recovery_max_attempts = 6;

  // --- Namenode durability & restart -----------------------------------------
  /// Cadence of fsimage checkpoints (edit-log truncation); 0 disables
  /// checkpointing and restarts replay the whole journal.
  SimDuration checkpoint_interval = seconds(30);
  /// Fraction of closed-file blocks that must have at least one live
  /// non-corrupt replica re-reported before a restarted namenode leaves safe
  /// mode and resumes write/replication/invalidation decisions.
  double safe_mode_threshold = 0.999;
  /// Replay cost per journaled op during restart/failover — makes cold
  /// restart downtime scale with the un-checkpointed log length.
  SimDuration edit_replay_op_cost = microseconds(200);
  /// Process bounce time of a cold namenode restart (exec + image load),
  /// before replay cost is added.
  SimDuration nn_restart_process_delay = seconds(1);
  /// Promotion time of a warm standby (already caught up to its tail lag),
  /// before replay cost is added. Strictly smaller than a cold restart.
  SimDuration nn_failover_delay = milliseconds(500);
  /// Cadence at which the standby tails the edit log (its lag bound).
  SimDuration standby_tail_interval = milliseconds(500);
  /// Hard ceiling on automatic safe mode: past this, the namenode exits with
  /// whatever replica coverage it has (permanently lost replicas — e.g. every
  /// copy of a block rotted — must not wedge the control plane forever).
  SimDuration safe_mode_max_wait = seconds(60);
  /// Client streams poll a safe-mode namenode at this cadence...
  SimDuration safe_mode_retry_interval = seconds(1);
  /// ...and fail the upload after waiting this long in total per allocation.
  SimDuration safe_mode_retry_budget = seconds(60);

  // --- Failure handling -----------------------------------------------------
  /// No ACK progress on a pipeline for this long => pipeline error.
  SimDuration ack_timeout = seconds(5);
  /// Probe RPC timeout used to tell dead targets from slow ones.
  SimDuration probe_timeout = milliseconds(800);
  /// Ceiling on a recovery's replica-prefix copy to a replacement node; a
  /// copy that exceeds it (unreachable target, severed link) is abandoned.
  SimDuration replacement_transfer_timeout = seconds(30);

  // --- Control-plane retries (see rpc/retry.hpp) ------------------------------
  /// Per-attempt deadline on namenode RPCs (addBlock, complete, create, …).
  SimDuration rpc_timeout = seconds(2);
  /// Total attempts per namenode RPC, first try included.
  int rpc_max_attempts = 4;
  SimDuration rpc_backoff_base = milliseconds(200);
  SimDuration rpc_backoff_max = seconds(5);
  double rpc_backoff_jitter = 0.2;
  /// Recovery rounds a single block may consume before the stream gives up
  /// cleanly (Hadoop's dfs.client.block.write.retries analogue).
  int recovery_attempts_per_block = 5;
  /// How long a datanode implicated in a failure stays client-quarantined
  /// (deprioritized for new pipelines and replacements).
  SimDuration quarantine_duration = seconds(60);

  // --- Gray-failure defense (hedged reads / slow-node eviction) -------------
  // A fail-slow datanode never misses a heartbeat, so none of the crash
  // machinery fires; these knobs defend tail latency instead of durability.
  // All three defenses default off so latency-calibrated experiments and
  // existing seed timelines are unaffected; benches and chaos subsets opt in.

  /// Hedged reads: when a block read makes no byte progress for the hedge
  /// threshold, race a second replica and keep whichever finishes first.
  bool hedged_reads = false;
  /// Hedge threshold = p95 of the serving datanode's ack_ns histogram times
  /// this multiplier — the PR-5 per-hop latency data reused as a slowness
  /// prior. Falls back to `hedge_static_threshold` until the histogram has
  /// `hedge_min_samples` observations.
  double hedge_timer_multiplier = 8.0;
  std::uint64_t hedge_min_samples = 16;
  SimDuration hedge_static_threshold = milliseconds(500);
  /// Pace trigger: a gray-slow replica still makes steady byte progress, so
  /// the stall timer alone never fires on it. The reader also compares its
  /// mean packet gap against the cluster-wide lower-quartile gap (global
  /// `read.gap_ns` histogram — the quartile keeps the baseline healthy even
  /// when the slow node's own gaps land in it) and hedges when the ratio
  /// exceeds this factor.
  double hedge_pace_factor = 3.0;
  /// Hedge budget: concurrent hedges per client stream, and total hedges one
  /// file read may launch — a sick cluster must not double its own load.
  int hedge_max_in_flight = 1;
  int hedge_per_read_cap = 16;

  /// Write-pipeline slow-node eviction: a mid-block straggler (ACK own-time
  /// persistently above the outlier bound vs its pipeline peers) is evicted
  /// through the live pipeline-recovery path instead of crawling to FNFA at
  /// the next block boundary.
  bool slow_node_eviction = false;
  /// A node is a straggler when its own-time exceeds the median own-time of
  /// its pipeline peers by this factor.
  double eviction_outlier_factor = 4.0;
  /// ACK samples each pipeline member must contribute within the current
  /// pipeline before the detector may speak — one slow seek is not a pattern.
  std::uint64_t eviction_min_samples = 12;
  /// Quiet period between evictions on one stream, so a recovering pipeline
  /// is not immediately re-judged on its warm-up ACKs.
  SimDuration eviction_cooldown = seconds(5);

  /// Namenode suspicion list: eviction and hedge-win reports add this much
  /// to the offending datanode's decaying suspicion score.
  double suspicion_eviction_weight = 2.0;
  double suspicion_hedge_weight = 1.0;
  /// Scores halve every half-life; a node whose decayed score is at or above
  /// the threshold is demoted in placement and SMARTH top-n selection. Decay
  /// is the recovery path: a node that speeds back up stops accruing reports
  /// and drops below the threshold within a few half-lives.
  SimDuration suspicion_half_life = seconds(30);
  double suspicion_threshold = 2.0;

  // --- Control-plane overload defense ---------------------------------------
  // Multi-tenant load makes the namenode's RPC path the bottleneck long
  // before the data plane saturates. Both knobs default off so the bus keeps
  // its historical flat service_time and every existing seed timeline stays
  // bit-identical; benches and the open-loop workload opt in.

  /// Finite-capacity service model: namenode RPCs serialize through one
  /// queue at modeled per-op cost instead of the bus's flat service_time.
  /// On its own this is the *undefended* namenode — unbounded queue, no
  /// shedding — whose latency grows without bound past the saturation knee.
  bool nn_service_model = false;
  /// Admission control on top of the service model (implies it): bounded
  /// queue with priority bands (heartbeats/IBRs > client metadata ops >
  /// addBlock), load shedding with typed retryable `overloaded` rejections,
  /// heartbeat/IBR batch processing, and per-client in-flight addBlock caps.
  bool nn_admission_control = false;
  /// Modeled namenode CPU cost per op class.
  SimDuration nn_cost_heartbeat = microseconds(30);
  SimDuration nn_cost_meta = microseconds(150);
  SimDuration nn_cost_add_block = microseconds(350);
  /// Bounded RPC queue depth (admission control only).
  int nn_queue_capacity = 256;
  /// Heartbeat/IBR batch processing: up to this many coalesce into one
  /// service slot, each after the first costing this fraction of a full
  /// heartbeat.
  int nn_heartbeat_batch_max = 32;
  double nn_batch_marginal_cost = 0.25;
  /// Max queued+in-service addBlock ops per client (<= 0 disables) so one
  /// tenant cannot starve the rest.
  int nn_client_addblock_cap = 4;
  /// Stream-level backoff when the RPC layer exhausts its attempts against
  /// an overloaded namenode: re-poll on this interval under this budget
  /// (mirrors the safe-mode wait), then fail the upload cleanly.
  SimDuration overload_retry_interval = milliseconds(500);
  SimDuration overload_retry_budget = seconds(120);

  // --- SMARTH ---------------------------------------------------------------
  /// Local-optimization exploration threshold (paper: 0.8; swap first
  /// datanode with probability 1 - threshold).
  double local_opt_threshold = 0.8;
  bool smarth_global_opt = true;  ///< ablation switch (Alg. 1)
  bool smarth_local_opt = true;   ///< ablation switch (Alg. 2)
  /// Enforce the buffer-overflow guard: at most cluster/replication
  /// concurrent pipelines and one pipeline per datanode per client.
  bool enforce_pipeline_cap = true;
  /// SMARTH streams a whole block to the first datanode without waiting for
  /// full-pipeline ACKs; its per-pipeline window is therefore the block.
  int smarth_outstanding_packets() const {
    return static_cast<int>((block_size + packet_payload - 1) /
                            packet_payload);
  }

  int packets_per_block() const {
    return static_cast<int>((block_size + packet_payload - 1) /
                            packet_payload);
  }
  Bytes packet_wire_size(Bytes payload) const {
    return payload + packet_header_wire;
  }

  // --- Fidelity-aware transfer geometry -------------------------------------
  // The data paths (output/input streams, datanodes, recovery) are written in
  // terms of "transfer units": identical to packets in packet mode, coalesced
  // multi-packet units in block mode. WirePacket::seq then indexes transfer
  // units within the block, and all offset arithmetic scales accordingly.

  /// Active data-transfer granularity.
  Bytes transfer_payload() const {
    if (fidelity == DataFidelity::kPacket || block_transfer_unit <= 0) {
      return packet_payload;
    }
    return block_transfer_unit;
  }
  /// Real packets represented by one transfer of `payload` bytes.
  std::int64_t packets_in_transfer(Bytes payload) const {
    return (payload + packet_payload - 1) / packet_payload;
  }
  int transfers_per_block() const {
    return static_cast<int>((block_size + transfer_payload() - 1) /
                            transfer_payload());
  }
  /// SMARTH per-pipeline window, in transfer units (the whole block).
  int smarth_outstanding_transfers() const { return transfers_per_block(); }
  /// HDFS client window, in transfer units (>= 1; rounds the 80-packet cap
  /// down so block mode never holds more data in flight than packet mode).
  int max_outstanding_transfers() const {
    const auto per_unit = packets_in_transfer(transfer_payload());
    const auto units = max_outstanding_packets / static_cast<int>(per_unit);
    return units < 1 ? 1 : units;
  }
  /// Wire footprint of one transfer: payload plus one header per real packet.
  Bytes transfer_wire_size(Bytes payload) const {
    return payload + packet_header_wire * packets_in_transfer(payload);
  }
  /// Aggregate client production cost (k packets' worth of Tc).
  SimDuration transfer_production_time(Bytes payload) const {
    return packet_production_time * packets_in_transfer(payload);
  }
  /// Aggregate datanode checksum-verification cost (k packets' worth).
  SimDuration transfer_verify_time(Bytes payload) const {
    return checksum_verify_time * packets_in_transfer(payload);
  }
};

/// A block with its assigned pipeline targets, as returned by addBlock().
/// The read path reuses it with `targets` = live replica holders sorted by
/// distance and `length` = the finalized block length.
struct LocatedBlock {
  BlockId block;
  std::vector<NodeId> targets;  // pipeline order: first datanode first
  Bytes length = 0;             // read path only
  /// Read path only: no serveable targets because every known replica has
  /// been reported corrupt (distinct from "holders temporarily dead").
  bool all_replicas_corrupt = false;
};

/// One data packet on the wire.
struct WirePacket {
  PipelineId pipeline;
  BlockId block;
  std::int64_t seq = 0;        ///< packet index within the block
  Bytes payload = 0;           ///< payload bytes (last packet may be short)
  bool last_in_block = false;
};

/// Status carried by pipeline ACKs (per-packet, aggregated upstream).
enum class AckStatus {
  kSuccess,
  kChecksumError,  ///< verification failed at `error_index`
  kNodeError,      ///< downstream node unreachable
};

struct PipelineAck {
  PipelineId pipeline;
  std::int64_t seq = 0;
  AckStatus status = AckStatus::kSuccess;
  /// Index (in pipeline order) of the datanode that reported the error;
  /// meaningful when status != kSuccess.
  int error_index = -1;
};

/// SMARTH's First-Node-Finish ACK: the first datanode has received and
/// durably stored every packet of `block`.
struct FnfaMessage {
  PipelineId pipeline;
  BlockId block;
};

// --- Read path ---------------------------------------------------------------

struct ReadTag { static constexpr const char* prefix = "read-"; };
/// One block-read operation issued by a client.
using ReadId = TypedId<ReadTag>;

/// Client -> datanode: stream `length` bytes of `block` starting at
/// `offset` back to `reader_node`.
struct ReadRequest {
  ReadId read;
  BlockId block;
  Bytes offset = 0;
  Bytes length = 0;
  NodeId reader_node;
};

/// Datanode -> client: one packet of block data (or an error marker).
struct ReadPacket {
  ReadId read;
  BlockId block;
  std::int64_t seq = 0;
  Bytes payload = 0;
  bool last = false;
  bool error = false;    ///< replica missing/short or node refusing
  /// The serving datanode hit a checksum mismatch verifying this packet's
  /// chunk range: no payload was sent and the stream must fail over AND
  /// report the replica to the namenode (set together with last).
  bool corrupt = false;
};

/// Pipeline establishment request, forwarded datanode-to-datanode like
/// Hadoop's WRITE_BLOCK operation.
struct PipelineSetup {
  PipelineId pipeline;
  BlockId block;
  std::vector<NodeId> targets;
  NodeId client_node;
  ClientId client;
  bool smarth_mode = false;
  /// Byte offset the write resumes at (0 for fresh blocks; >0 after
  /// recovery, when a prefix is already durable on every target).
  Bytes resume_offset = 0;
};

struct SetupAck {
  PipelineId pipeline;
  bool success = true;
  int error_index = -1;
};

/// One client->namenode speed record: observed client-to-first-datanode
/// transfer speed for a completed block (paper §III-B).
struct SpeedRecord {
  NodeId datanode;
  Bandwidth speed;
  SimTime measured_at = 0;
};

/// Namenode -> primary datanode: synchronize one under-construction block
/// after its writer's lease expired (commitBlockSynchronization protocol).
/// The primary probes every target's stored length, reconciles the replicas
/// and reports the agreed length (or abandonment) back to the namenode.
struct UcRecoveryCommand {
  BlockId block;
  std::vector<NodeId> targets;  ///< replica candidates, primary included
  /// True for the highest-indexed (possibly partial) block: replicas are
  /// truncated to the minimum durable length. False for earlier blocks of a
  /// multi-pipeline write, which finalize at the maximum stored length and
  /// discard shorter stragglers.
  bool tail = true;
};

/// Interface for components that accept pipeline traffic (datanodes).
class PacketSink {
 public:
  virtual ~PacketSink() = default;
  virtual void deliver_setup(const PipelineSetup& setup) = 0;
  virtual void deliver_packet(const WirePacket& packet) = 0;
  /// ACK arriving from the downstream neighbour.
  virtual void deliver_downstream_ack(const PipelineAck& ack) = 0;
  virtual void deliver_downstream_setup_ack(const SetupAck& ack) = 0;
  /// Block-read service; default refuses (only datanodes serve reads).
  virtual void deliver_read_request(const ReadRequest& request) {
    (void)request;
  }
};

/// Interface for the receiving end of a block read (client input streams).
class ReadSink {
 public:
  virtual ~ReadSink() = default;
  virtual void deliver_read_packet(const ReadPacket& packet) = 0;
};

/// Interface for components that terminate a pipeline's upstream end
/// (client output streams).
class AckSink {
 public:
  virtual ~AckSink() = default;
  virtual void deliver_ack(const PipelineAck& ack) = 0;
  virtual void deliver_setup_ack(const SetupAck& ack) = 0;
  virtual void deliver_fnfa(const FnfaMessage& fnfa) = 0;
};

/// Resolves a node id to its packet/ack handler. The cluster wiring layer
/// provides these so that datanodes and clients never hold raw pointers to
/// one another's concrete types.
struct SinkResolver {
  std::function<PacketSink*(NodeId)> packet_sink;
  std::function<AckSink*(NodeId, PipelineId)> ack_sink;
  /// Optional: read routing (clusters without readers may omit it).
  std::function<ReadSink*(NodeId, ReadId)> read_sink;
};

std::string to_string(AckStatus status);

}  // namespace smarth::hdfs
