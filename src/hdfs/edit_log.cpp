#include "hdfs/edit_log.hpp"

#include <utility>

#include "common/check.hpp"

namespace smarth::hdfs {

const char* to_string(EditOpType type) {
  switch (type) {
    case EditOpType::kLeaseRenew: return "lease_renew";
    case EditOpType::kCreate: return "create";
    case EditOpType::kEraseFile: return "erase_file";
    case EditOpType::kAddBlock: return "add_block";
    case EditOpType::kUpdateTargets: return "update_targets";
    case EditOpType::kCompleteFile: return "complete_file";
    case EditOpType::kLeaseRecoveryStart: return "lease_recovery_start";
    case EditOpType::kUcAttempt: return "uc_attempt";
    case EditOpType::kCommitBlockSync: return "commit_block_sync";
    case EditOpType::kTruncateBlocks: return "truncate_blocks";
    case EditOpType::kCloseRecovered: return "close_recovered";
    case EditOpType::kQuarantine: return "quarantine";
  }
  return "unknown";
}

std::int64_t EditLog::append(EditOp op) {
  op.txid = next_txid_++;
  ++appended_;
  ops_.push_back(std::move(op));
  return ops_.back().txid;
}

std::vector<EditOp> EditLog::tail(std::int64_t after_txid) const {
  std::vector<EditOp> out;
  if (ops_.empty()) {
    SMARTH_CHECK_MSG(after_txid >= last_txid(),
                     "edit log tail request below truncation point");
    return out;
  }
  // The requested suffix must still be retained in full.
  SMARTH_CHECK_MSG(after_txid >= ops_.front().txid - 1,
                   "edit log tail request below truncation point");
  for (const EditOp& op : ops_) {
    if (op.txid > after_txid) out.push_back(op);
  }
  return out;
}

void EditLog::truncate_through(std::int64_t txid) {
  while (!ops_.empty() && ops_.front().txid <= txid) ops_.pop_front();
}

namespace {

void append_json_escaped(std::string& out, const std::string& text) {
  for (char c : text) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
}

}  // namespace

std::string EditLog::to_json() const {
  std::string out = "[";
  bool first = true;
  for (const EditOp& op : ops_) {
    if (!first) out += ",";
    first = false;
    out += "\n  {\"txid\": " + std::to_string(op.txid);
    out += ", \"op\": \"" + std::string(to_string(op.type)) + "\"";
    out += ", \"at_ns\": " + std::to_string(op.at);
    if (op.file.valid()) out += ", \"file\": " + std::to_string(op.file.value());
    if (op.block.valid()) {
      out += ", \"block\": " + std::to_string(op.block.value());
    }
    if (op.client.valid()) {
      out += ", \"client\": " + std::to_string(op.client.value());
    }
    if (op.node.valid()) out += ", \"node\": " + std::to_string(op.node.value());
    if (!op.path.empty()) {
      out += ", \"path\": \"";
      append_json_escaped(out, op.path);
      out += "\"";
    }
    if (op.length > 0) out += ", \"length\": " + std::to_string(op.length);
    if (op.index >= 0) out += ", \"index\": " + std::to_string(op.index);
    if (!op.nodes.empty()) {
      out += ", \"nodes\": [";
      for (std::size_t i = 0; i < op.nodes.size(); ++i) {
        if (i > 0) out += ", ";
        out += std::to_string(op.nodes[i].value());
      }
      out += "]";
    }
    if (!op.blocks.empty()) {
      out += ", \"blocks\": [";
      for (std::size_t i = 0; i < op.blocks.size(); ++i) {
        if (i > 0) out += ", ";
        out += std::to_string(op.blocks[i].value());
      }
      out += "]";
    }
    out += "}";
  }
  out += "\n]\n";
  return out;
}

}  // namespace smarth::hdfs
