// Point-in-time snapshot of the namenode's durable state (the fsimage) plus
// the periodic checkpointer that captures one and truncates the edit log
// behind it. Restart cost is then O(ops since last checkpoint), not O(ops
// since cluster start).
//
// The image deliberately excludes BlockRecord::reported — replica locations
// are volatile soft state in HDFS, rebuilt from block reports after restart —
// and all purely telemetric counters (heartbeats, re-registrations, ...),
// which describe the process, not the namespace.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "common/units.hpp"
#include "hdfs/namenode.hpp"
#include "sim/simulation.hpp"

namespace smarth::hdfs {

class EditLog;

/// Durable view of one block: everything in BlockRecord except the volatile
/// `reported` replica map.
struct BlockImage {
  BlockId id;
  FileId file;
  std::vector<NodeId> expected_targets;
  std::vector<NodeId> corrupt_replicas;  ///< sorted

  friend bool operator==(const BlockImage&, const BlockImage&) = default;
};

/// One UC block awaiting commitBlockSynchronization inside a lease recovery.
struct UcPendingImage {
  BlockId block;
  SimTime retry_at = 0;
  int attempts = 0;

  friend bool operator==(const UcPendingImage&, const UcPendingImage&) =
      default;
};

/// One in-flight lease recovery (so a restart resumes, not restarts, it).
struct RecoveryImage {
  FileId file;
  SimTime started_at = 0;
  std::vector<UcPendingImage> pending;  ///< sorted by block id

  friend bool operator==(const RecoveryImage&, const RecoveryImage&) = default;
};

/// The whole checkpoint. Collections are sorted by id so operator== is a
/// semantic state comparison — the replay-equivalence property test compares
/// a live namenode's image against a replayed one's.
struct NamenodeImage {
  /// Last edit-log txid folded into this image; restart replays txids above.
  std::int64_t last_txid = 0;

  std::vector<FileEntry> files;     ///< sorted by file id
  std::vector<BlockImage> blocks;   ///< sorted by block id
  std::vector<LeaseImage> leases;   ///< sorted by holder
  std::vector<RecoveryImage> recoveries;  ///< sorted by file id

  /// Id generator high-water marks (an id must never be reissued).
  std::int64_t file_ids_issued = 0;
  std::int64_t block_ids_issued = 0;

  /// Durable outcome counters (reports must survive a control-plane bounce).
  std::uint64_t lease_expiries = 0;
  std::uint64_t uc_blocks_recovered = 0;
  Bytes bytes_salvaged = 0;
  std::uint64_t orphans_abandoned = 0;

  friend bool operator==(const NamenodeImage&, const NamenodeImage&) = default;

  /// JSON object (CI artifact companion to EditLog::to_json).
  std::string to_json() const;
};

/// Periodically snapshots the namenode and truncates the edit log through the
/// snapshot's txid. When a standby is tailing the log, its applied txid is
/// registered as a truncation floor so checkpointing never drops ops the
/// standby has not yet consumed.
class FsImageCheckpointer {
 public:
  FsImageCheckpointer(sim::Simulation& sim, Namenode& namenode, EditLog& log,
                      SimDuration interval);

  void start();
  void stop();

  /// Captures an image now (also invoked by the periodic task). Skipped while
  /// the namenode is crashed: the checkpointer is part of its process.
  void checkpoint_now();

  /// Most recent checkpoint; a default image (txid 0 => replay everything)
  /// before the first one.
  const NamenodeImage& latest() const { return image_; }
  std::uint64_t checkpoints() const { return checkpoints_; }

  /// Registers an extra truncation floor (e.g. the standby's applied txid).
  void set_truncate_floor(std::function<std::int64_t()> floor) {
    truncate_floor_ = std::move(floor);
  }

 private:
  sim::Simulation& sim_;
  Namenode& namenode_;
  EditLog& log_;
  SimDuration interval_;
  NamenodeImage image_;
  std::uint64_t checkpoints_ = 0;
  std::function<std::int64_t()> truncate_floor_;
  std::unique_ptr<sim::PeriodicTask> task_;
};

}  // namespace smarth::hdfs
