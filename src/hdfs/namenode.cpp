#include "hdfs/namenode.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/log.hpp"
#include "trace/metrics_registry.hpp"
#include "trace/trace_recorder.hpp"

namespace {

/// Instant on the shared "namenode" track; guarded so the disabled path costs
/// one branch.
void trace_nn(smarth::trace::Category cat, const char* name,
              smarth::trace::Args args) {
  if (smarth::trace::active()) {
    smarth::trace::recorder()->instant(cat, "namenode", name, std::move(args));
  }
}

}  // namespace

namespace smarth::hdfs {

void SpeedBoard::update(ClientId client, const SpeedRecord& record) {
  auto& board = boards_[client];
  auto [it, inserted] = board.try_emplace(record.datanode, record);
  if (!inserted && record.measured_at >= it->second.measured_at) {
    it->second = record;
  }
}

bool SpeedBoard::has_records(ClientId client) const {
  auto it = boards_.find(client);
  return it != boards_.end() && !it->second.empty();
}

std::optional<Bandwidth> SpeedBoard::speed(ClientId client,
                                           NodeId datanode) const {
  auto it = boards_.find(client);
  if (it == boards_.end()) return std::nullopt;
  auto jt = it->second.find(datanode);
  if (jt == it->second.end()) return std::nullopt;
  return jt->second.speed;
}

std::vector<SpeedRecord> SpeedBoard::records_for(ClientId client) const {
  std::vector<SpeedRecord> out;
  auto it = boards_.find(client);
  if (it == boards_.end()) return out;
  out.reserve(it->second.size());
  for (const auto& [dn, rec] : it->second) out.push_back(rec);
  return out;
}

Namenode::Namenode(sim::Simulation& sim, const net::Topology& topology,
                   const HdfsConfig& config, NodeId self)
    : sim_(sim), topology_(topology), config_(config), self_(self),
      policy_(std::make_unique<DefaultPlacementPolicy>()),
      leases_(config.lease_soft_limit, config.lease_hard_limit) {}

void Namenode::set_placement_policy(std::unique_ptr<PlacementPolicy> policy) {
  SMARTH_CHECK(policy != nullptr);
  policy_ = std::move(policy);
}

void Namenode::register_datanode(NodeId dn) {
  // Idempotent: a crashed datanode that restarts re-registers (real HDFS
  // treats it as a fresh registration of a known storage id); the heartbeat
  // clock restarts so the node counts as alive again immediately.
  if (std::find(datanodes_.begin(), datanodes_.end(), dn) !=
      datanodes_.end()) {
    ++reregistrations_;
    SMARTH_INFO("namenode") << "datanode " << dn.value() << " re-registered";
  } else {
    datanodes_.push_back(dn);
  }
  last_heartbeat_[dn] = sim_.now();
}

void Namenode::handle_heartbeat(NodeId dn) {
  auto it = last_heartbeat_.find(dn);
  SMARTH_CHECK_MSG(it != last_heartbeat_.end(),
                   "heartbeat from unregistered datanode " << dn.value());
  it->second = sim_.now();
  ++heartbeats_;
}

bool Namenode::is_alive(NodeId dn) const {
  auto it = last_heartbeat_.find(dn);
  if (it == last_heartbeat_.end()) return false;
  return sim_.now() - it->second <= config_.datanode_dead_interval;
}

std::vector<NodeId> Namenode::alive_datanodes() const {
  std::vector<NodeId> out;
  out.reserve(datanodes_.size());
  for (NodeId dn : datanodes_) {
    if (is_alive(dn)) out.push_back(dn);
  }
  return out;
}

PlacementContext Namenode::make_context(
    Rng& rng, const std::vector<NodeId>* deprioritized) const {
  alive_scratch_ = alive_datanodes();
  PlacementContext ctx{topology_, alive_scratch_, rng, &speeds_};
  if (deprioritized != nullptr && !deprioritized->empty()) {
    ctx.deprioritized = deprioritized;
  }
  return ctx;
}

Result<FileId> Namenode::create(const std::string& path, ClientId client,
                                bool overwrite) {
  // The namenode's pre-creation checks (paper §II step 1).
  if (safe_mode_) {
    return Error{"safe_mode", "namenode is in safe mode"};
  }
  if (path.empty() || path.front() != '/') {
    return Error{"invalid_path", "path must be absolute: " + path};
  }
  leases_.renew(client, sim_.now());
  if (auto it = files_by_path_.find(path); it != files_by_path_.end()) {
    FileEntry& existing = files_.at(it->second);
    if (existing.state == FileState::kUnderConstruction) {
      if (existing.recovering) {
        return Error{"recovery_in_progress",
                     "lease recovery of " + path + " is in progress"};
      }
      if (existing.lease_holder == client) {
        // Retry of a create() whose response was lost: same client, file
        // still open — hand back the existing entry instead of failing.
        return existing.id;
      }
      if (leases_.soft_expired(existing.lease_holder, sim_.now())) {
        // The previous writer stopped renewing: recover the file now so the
        // new writer's retry finds it closed (HDFS recoverLeaseInternal).
        SMARTH_WARN("namenode")
            << "create(" << path << "): holder "
            << existing.lease_holder.to_string()
            << " soft-expired; starting lease recovery";
        start_lease_recovery(existing.id);
        return Error{"recovery_in_progress",
                     "lease recovery of " + path + " started"};
      }
      return Error{"file_exists",
                   "file is being written by another client: " + path};
    }
    if (!overwrite) {
      return Error{"file_exists", "file already exists: " + path};
    }
    erase_file(existing.id);
  }
  const FileId id = file_ids_.next();
  FileEntry entry;
  entry.id = id;
  entry.path = path;
  entry.lease_holder = client;
  files_by_path_.emplace(path, id);
  files_.emplace(id, std::move(entry));
  leases_.add(client, id, sim_.now());
  SMARTH_DEBUG("namenode") << "created " << path << " as " << id.to_string();
  return id;
}

Result<LocatedBlock> Namenode::add_block(
    FileId file, ClientId client, NodeId client_node,
    const std::vector<NodeId>& excluded,
    const std::vector<NodeId>& deprioritized, std::int64_t block_index) {
  if (safe_mode_) {
    return Error{"safe_mode", "namenode is in safe mode"};
  }
  auto it = files_.find(file);
  if (it == files_.end()) {
    return Error{"file_not_found", "unknown file " + file.to_string()};
  }
  FileEntry& entry = it->second;
  if (entry.state != FileState::kUnderConstruction) {
    return Error{"file_closed", "addBlock on closed file " + entry.path};
  }
  if (entry.recovering) {
    return Error{"recovery_in_progress",
                 "lease recovery of " + entry.path + " is in progress"};
  }
  if (entry.lease_holder != client) {
    return Error{"lease_mismatch", "client does not hold the lease on " +
                                       entry.path};
  }
  leases_.renew(client, sim_.now());
  if (block_index >= 0 &&
      block_index < static_cast<std::int64_t>(entry.blocks.size())) {
    // Retry of an addBlock whose response was lost: return the allocation
    // already made for this index rather than leaking an orphan block that
    // would keep complete() failing forever.
    const BlockId existing = entry.blocks[static_cast<std::size_t>(
        block_index)];
    const BlockRecord& record = blocks_.at(existing);
    SMARTH_DEBUG("namenode") << "addBlock retry for index " << block_index
                             << "; returning " << existing.to_string();
    return LocatedBlock{existing, record.expected_targets};
  }

  PlacementRequest request;
  request.client = client;
  request.client_node = client_node;
  request.replication = config_.replication;
  request.excluded = excluded;
  request.deprioritized = deprioritized;
  std::vector<NodeId> targets = policy_->choose_targets(
      request, make_context(sim_.rng(), &request.deprioritized));
  if (static_cast<int>(targets.size()) < config_.replication) {
    return Error{"insufficient_datanodes",
                 "could only place " + std::to_string(targets.size()) +
                     " of " + std::to_string(config_.replication) +
                     " replicas"};
  }

  const BlockId block = block_ids_.next();
  BlockRecord record;
  record.id = block;
  record.file = file;
  record.expected_targets = targets;
  blocks_.emplace(block, std::move(record));
  entry.blocks.push_back(block);
  if (trace::active()) {
    std::string joined;
    for (NodeId t : targets) {
      if (!joined.empty()) joined += "+";
      joined += t.to_string();
    }
    trace_nn(trace::Category::kBlock, "addBlock",
             {{"block", block.to_string()},
              {"file", entry.path},
              {"targets", joined}});
  }
  return LocatedBlock{block, std::move(targets)};
}

Result<std::vector<NodeId>> Namenode::get_additional_datanodes(
    BlockId block, ClientId client, NodeId client_node,
    const std::vector<NodeId>& existing, const std::vector<NodeId>& excluded,
    int count, const std::vector<NodeId>& deprioritized) {
  auto it = blocks_.find(block);
  if (it == blocks_.end()) {
    return Error{"block_not_found", "unknown block " + block.to_string()};
  }
  PlacementRequest request;
  request.client = client;
  request.client_node = client_node;
  request.replication = count;
  request.excluded = excluded;
  request.deprioritized = deprioritized;
  // Existing pipeline members must not be chosen again.
  request.excluded.insert(request.excluded.end(), existing.begin(),
                          existing.end());

  std::vector<NodeId> chosen;
  const PlacementContext ctx =
      make_context(sim_.rng(), &request.deprioritized);
  for (int i = 0; i < count; ++i) {
    NodeId pick = pick_random_node(ctx, chosen, request.excluded, nullptr);
    if (!pick.valid()) break;
    chosen.push_back(pick);
  }
  return chosen;
}

Status Namenode::update_block_targets(BlockId block,
                                      std::vector<NodeId> targets) {
  auto it = blocks_.find(block);
  if (it == blocks_.end()) {
    return make_error("block_not_found", "unknown block " + block.to_string());
  }
  it->second.expected_targets = std::move(targets);
  return Status::ok_status();
}

Result<bool> Namenode::complete(FileId file, ClientId client) {
  auto it = files_.find(file);
  if (it == files_.end()) {
    return Error{"file_not_found", "unknown file " + file.to_string()};
  }
  FileEntry& entry = it->second;
  if (entry.lease_holder != client) {
    return Error{"lease_mismatch",
                 "client does not hold the lease on " + entry.path};
  }
  if (entry.recovering) {
    return Error{"recovery_in_progress",
                 "lease recovery of " + entry.path + " is in progress"};
  }
  if (entry.state == FileState::kClosed) {
    if (entry.closed_by_recovery) {
      // The file was closed at a salvaged prefix after this writer's lease
      // expired; reporting idempotent success would claim the whole upload
      // landed when it did not.
      return Error{"lease_expired",
                   "lease on " + entry.path +
                       " expired; file was closed by recovery"};
    }
    return true;  // idempotent
  }
  leases_.renew(client, sim_.now());
  for (BlockId block : entry.blocks) {
    const auto bt = blocks_.find(block);
    SMARTH_CHECK(bt != blocks_.end());
    if (bt->second.reported.empty()) {
      return false;  // minimum replication not yet reached; client retries
    }
  }
  entry.state = FileState::kClosed;
  leases_.release(client, file);
  trace_nn(trace::Category::kRun, "complete", {{"file", entry.path}});
  SMARTH_DEBUG("namenode") << "completed " << entry.path;
  return true;
}

Result<std::vector<LocatedBlock>> Namenode::get_block_locations(
    const std::string& path, NodeId reader) const {
  const FileEntry* entry = file_by_path(path);
  if (entry == nullptr) {
    return Error{"file_not_found", "no such file: " + path};
  }
  std::vector<LocatedBlock> located;
  located.reserve(entry->blocks.size());
  for (BlockId block : entry->blocks) {
    const auto it = blocks_.find(block);
    SMARTH_CHECK(it != blocks_.end());
    LocatedBlock lb;
    lb.block = block;
    bool has_clean_holder = false;
    for (const auto& [dn, len] : it->second.reported) {
      // Quarantined replicas are erased from `reported` on report; this
      // check also covers a racing re-report that slipped back in.
      if (it->second.corrupt_replicas.count(dn) > 0) continue;
      has_clean_holder = true;
      if (is_alive(dn)) lb.targets.push_back(dn);
      lb.length = std::max(lb.length, len);
    }
    // Distinguish "every known replica rotted" from "holders temporarily
    // dead": only the former is a hard integrity failure for the reader.
    lb.all_replicas_corrupt = lb.targets.empty() && !has_clean_holder &&
                              !it->second.corrupt_replicas.empty();
    // Closest replica first (HDFS sorts by NetworkTopology distance);
    // stable order within a distance class keeps runs deterministic.
    std::sort(lb.targets.begin(), lb.targets.end(),
              [&](NodeId a, NodeId b) {
                const int da = topology_.distance(reader, a);
                const int db = topology_.distance(reader, b);
                if (da != db) return da < db;
                return a < b;
              });
    located.push_back(std::move(lb));
  }
  return located;
}

void Namenode::block_received(NodeId dn, BlockId block, Bytes length) {
  auto it = blocks_.find(block);
  if (it == blocks_.end()) {
    SMARTH_WARN("namenode") << "blockReceived for unknown block "
                            << block.to_string();
    return;
  }
  if (it->second.corrupt_replicas.count(dn) > 0) {
    // The quarantine outlives the report that caused it: an in-flight or
    // heartbeat-carried re-report from a condemned replica is ignored, and
    // the invalidation is re-issued in case the first one was lost.
    SMARTH_DEBUG("namenode") << "ignoring blockReceived for quarantined "
                             << block.to_string() << " from node "
                             << dn.value();
    if (invalidation_executor_) {
      ++invalidations_issued_;
      invalidation_executor_(dn, block);
    }
    return;
  }
  it->second.reported[dn] = length;
}

void Namenode::report_bad_replica(BlockId block, NodeId node) {
  ++bad_replica_reports_;
  metrics::global_registry().counter("namenode.bad_replica_reports").add();
  trace_nn(trace::Category::kScanner, "report bad replica",
           {{"block", block.to_string()}, {"node", node.to_string()}});
  auto it = blocks_.find(block);
  if (it == blocks_.end()) return;  // stale report on a deleted block
  BlockRecord& record = it->second;
  const bool fresh = record.corrupt_replicas.insert(node).second;
  record.reported.erase(node);
  if (fresh) {
    SMARTH_WARN("namenode") << block.to_string() << " on node "
                            << node.value()
                            << " reported corrupt; quarantined ("
                            << record.corrupt_replicas.size()
                            << " bad replica(s), "
                            << live_replica_count(record) << " live good)";
  }
  // Invalidate even on duplicate reports: the previous command may have been
  // lost to RPC chaos or a crashed node that has since restarted.
  if (invalidation_executor_) {
    ++invalidations_issued_;
    invalidation_executor_(node, block);
  }
}

std::size_t Namenode::corrupt_replica_count() const {
  std::size_t n = 0;
  for (const auto& [id, record] : blocks_) n += record.corrupt_replicas.size();
  return n;
}

void Namenode::report_client_speeds(ClientId client,
                                    const std::vector<SpeedRecord>& records) {
  for (const SpeedRecord& r : records) speeds_.update(client, r);
}

void Namenode::client_heartbeat(ClientId client,
                                const std::vector<SpeedRecord>& records) {
  leases_.renew(client, sim_.now());
  ++client_heartbeats_;
  if (!records.empty()) report_client_speeds(client, records);
}

void Namenode::enable_lease_recovery(UcRecoveryExecutor executor,
                                     SimDuration scan_interval) {
  SMARTH_CHECK(static_cast<bool>(executor));
  uc_recovery_executor_ = std::move(executor);
  if (scan_interval <= 0) scan_interval = config_.lease_monitor_interval;
  lease_task_ = std::make_unique<sim::PeriodicTask>(
      sim_, scan_interval, [this] { lease_scan(); });
  lease_task_->start();
}

void Namenode::disable_lease_recovery() {
  if (lease_task_) lease_task_->stop();
}

void Namenode::lease_scan() {
  const SimTime now = sim_.now();
  for (const auto& [holder, file] : leases_.hard_expired_files(now)) {
    if (holder == kRecoveryHolder) continue;
    auto it = files_.find(file);
    if (it == files_.end()) {
      leases_.release(holder, file);  // stale lease on a deleted file
      continue;
    }
    if (it->second.state != FileState::kUnderConstruction ||
        it->second.recovering) {
      continue;
    }
    SMARTH_WARN("namenode")
        << "lease of " << holder.to_string() << " on " << it->second.path
        << " passed the hard limit; recovering";
    trace_nn(trace::Category::kLease, "lease hard-expired",
             {{"holder", holder.to_string()}, {"file", it->second.path}});
    start_lease_recovery(file);
  }
  // Drive in-flight recoveries: re-elect primaries whose round deadline
  // lapsed, abandon blocks that exhausted their attempts. Snapshot the keys
  // first — issuing may close (and erase) a recovery.
  std::vector<FileId> active;
  active.reserve(lease_recoveries_.size());
  for (const auto& [file, state] : lease_recoveries_) active.push_back(file);
  for (FileId file : active) {
    auto rt = lease_recoveries_.find(file);
    if (rt == lease_recoveries_.end()) continue;
    issue_uc_recoveries(file, rt->second);
  }
}

Status Namenode::start_lease_recovery(FileId file) {
  auto it = files_.find(file);
  if (it == files_.end()) {
    return make_error("file_not_found", "unknown file " + file.to_string());
  }
  FileEntry& entry = it->second;
  if (entry.state != FileState::kUnderConstruction) {
    return make_error("file_closed", entry.path + " is not open");
  }
  if (entry.recovering) return Status::ok_status();  // already in progress
  entry.recovering = true;
  ++lease_expiries_;
  metrics::global_registry().counter("namenode.lease_recoveries").add();
  trace_nn(trace::Category::kLease, "lease recovery start",
           {{"file", entry.path}});
  leases_.reassign(file, entry.lease_holder, kRecoveryHolder, sim_.now());

  LeaseRecoveryState state;
  state.started_at = sim_.now();
  for (BlockId block : entry.blocks) {
    const BlockRecord& record = blocks_.at(block);
    // A block every expected target already reported finalized is durable
    // as-is; anything less gets a commitBlockSynchronization round.
    bool fully_reported = !record.expected_targets.empty();
    for (NodeId target : record.expected_targets) {
      if (record.reported.count(target) == 0) {
        fully_reported = false;
        break;
      }
    }
    if (fully_reported) continue;
    state.pending.emplace(block, UcBlockPending{});
  }
  SMARTH_INFO("namenode") << "lease recovery of " << entry.path << ": "
                          << state.pending.size() << " of "
                          << entry.blocks.size()
                          << " blocks need synchronization";
  auto [rt, inserted] = lease_recoveries_.emplace(file, std::move(state));
  SMARTH_CHECK(inserted);
  if (rt->second.pending.empty()) {
    maybe_close_recovered(file);
  } else {
    issue_uc_recoveries(file, rt->second);
  }
  return Status::ok_status();
}

void Namenode::issue_uc_recoveries(FileId file, LeaseRecoveryState& state) {
  FileEntry& entry = files_.at(file);
  BlockId abandon_at;  // lowest block that exhausted its recovery budget
  for (auto& [block, pending] : state.pending) {
    if (sim_.now() < pending.retry_at) continue;
    if (pending.attempts >= config_.lease_recovery_max_attempts) {
      if (!abandon_at.valid()) abandon_at = block;
      continue;
    }
    const BlockRecord& record = blocks_.at(block);
    // Candidate replicas: the expected pipeline first (its head usually has
    // the longest prefix), then any other reported holders.
    std::vector<NodeId> targets = record.expected_targets;
    std::vector<NodeId> extra;
    for (const auto& [dn, len] : record.reported) {
      if (std::find(targets.begin(), targets.end(), dn) == targets.end()) {
        extra.push_back(dn);
      }
    }
    std::sort(extra.begin(), extra.end());
    targets.insert(targets.end(), extra.begin(), extra.end());

    NodeId primary;
    for (NodeId t : targets) {
      if (is_alive(t)) {
        primary = t;
        break;
      }
    }
    ++pending.attempts;
    pending.retry_at = sim_.now() + config_.lease_recovery_retry_interval;
    if (!primary.valid() || !uc_recovery_executor_) {
      // No live replica candidate right now; the attempt still counts so a
      // permanently dead pipeline cannot wedge the file forever.
      continue;
    }
    UcRecoveryCommand cmd;
    cmd.block = block;
    cmd.targets = targets;
    cmd.tail = block == entry.blocks.back();
    SMARTH_INFO("namenode")
        << "commitBlockSynchronization round " << pending.attempts << " for "
        << block.to_string() << " via primary " << primary.value()
        << (cmd.tail ? " (tail)" : "");
    uc_recovery_executor_(primary, cmd);
  }
  if (abandon_at.valid()) {
    SMARTH_WARN("namenode") << abandon_at.to_string()
                            << " exhausted its recovery budget; abandoning";
    const auto pos = std::find(entry.blocks.begin(), entry.blocks.end(),
                               abandon_at);
    SMARTH_CHECK(pos != entry.blocks.end());
    truncate_file_blocks(
        file, static_cast<std::size_t>(pos - entry.blocks.begin()));
    maybe_close_recovered(file);
  }
}

void Namenode::commit_block_synchronization(BlockId block, Bytes length,
                                            const std::vector<NodeId>&
                                                holders) {
  auto bt = blocks_.find(block);
  if (bt == blocks_.end()) return;  // block already abandoned; stale commit
  BlockRecord& record = bt->second;
  const FileId file = record.file;
  auto ft = files_.find(file);
  SMARTH_CHECK(ft != files_.end());
  FileEntry& entry = ft->second;
  auto rt = lease_recoveries_.find(file);
  if (!entry.recovering || rt == lease_recoveries_.end()) return;  // stale
  auto pt = rt->second.pending.find(block);
  if (pt == rt->second.pending.end()) return;  // duplicate commit

  const auto pos = std::find(entry.blocks.begin(), entry.blocks.end(), block);
  SMARTH_CHECK(pos != entry.blocks.end());
  const std::size_t index =
      static_cast<std::size_t>(pos - entry.blocks.begin());

  if (holders.empty() || length == 0) {
    SMARTH_WARN("namenode") << "no durable replica of " << block.to_string()
                            << "; truncating " << entry.path << " to "
                            << index << " blocks";
    truncate_file_blocks(file, index);
    maybe_close_recovered(file);
    return;
  }
  record.reported.clear();
  for (NodeId dn : holders) {
    if (record.corrupt_replicas.count(dn) > 0) continue;
    record.reported[dn] = length;
  }
  record.expected_targets = holders;
  rt->second.pending.erase(pt);
  ++uc_blocks_recovered_;
  bytes_salvaged_ += length;
  metrics::global_registry().counter("namenode.uc_blocks_recovered").add();
  trace_nn(trace::Category::kRecovery, "commitBlockSynchronization",
           {{"block", block.to_string()},
            {"length", std::to_string(length)},
            {"holders", std::to_string(holders.size())}});
  SMARTH_INFO("namenode") << block.to_string() << " synchronized at "
                          << length << " bytes on " << holders.size()
                          << " replicas";
  if (index + 1 < entry.blocks.size() && length < config_.block_size) {
    // A short *middle* block would shift every later block's file offset;
    // the consistent prefix ends here (can only happen when a pipeline
    // head died mid-propagation under multi-pipeline writes).
    SMARTH_WARN("namenode") << block.to_string() << " is short mid-file; "
                            << "truncating " << entry.path << " after it";
    truncate_file_blocks(file, index + 1);
  }
  maybe_close_recovered(file);
}

void Namenode::truncate_file_blocks(FileId file, std::size_t first_removed) {
  FileEntry& entry = files_.at(file);
  auto rt = lease_recoveries_.find(file);
  for (std::size_t i = first_removed; i < entry.blocks.size(); ++i) {
    const BlockId block = entry.blocks[i];
    blocks_.erase(block);
    rereplication_pending_.erase(block);
    if (rt != lease_recoveries_.end()) rt->second.pending.erase(block);
    ++orphans_abandoned_;
  }
  entry.blocks.resize(first_removed);
}

void Namenode::maybe_close_recovered(FileId file) {
  auto rt = lease_recoveries_.find(file);
  if (rt == lease_recoveries_.end() || !rt->second.pending.empty()) return;
  FileEntry& entry = files_.at(file);
  entry.state = FileState::kClosed;
  entry.recovering = false;
  entry.closed_by_recovery = true;
  leases_.release(kRecoveryHolder, file);
  lease_recoveries_.erase(rt);
  Bytes prefix = 0;
  for (BlockId block : entry.blocks) {
    const BlockRecord& record = blocks_.at(block);
    Bytes len = 0;
    for (const auto& [dn, l] : record.reported) len = std::max(len, l);
    prefix += len;
  }
  SMARTH_INFO("namenode") << "lease recovery closed " << entry.path << " at "
                          << prefix << " bytes (" << entry.blocks.size()
                          << " blocks)";
}

void Namenode::erase_file(FileId file) {
  auto it = files_.find(file);
  if (it == files_.end()) return;
  FileEntry& entry = it->second;
  for (BlockId block : entry.blocks) {
    blocks_.erase(block);
    rereplication_pending_.erase(block);
  }
  leases_.release(entry.lease_holder, entry.id);
  lease_recoveries_.erase(entry.id);
  files_by_path_.erase(entry.path);
  files_.erase(it);
}

int Namenode::live_replica_count(const BlockRecord& record) const {
  int live = 0;
  for (const auto& [dn, len] : record.reported) {
    if (record.corrupt_replicas.count(dn) > 0) continue;
    if (is_alive(dn)) ++live;
  }
  return live;
}

std::vector<BlockId> Namenode::under_replicated_blocks() const {
  std::vector<BlockId> out;
  for (const auto& [id, record] : blocks_) {
    const auto ft = files_.find(record.file);
    if (ft == files_.end() || ft->second.state != FileState::kClosed) continue;
    if (live_replica_count(record) < config_.replication) out.push_back(id);
  }
  return out;
}

void Namenode::enable_rereplication(ReplicationExecutor executor,
                                    SimDuration scan_interval) {
  SMARTH_CHECK(static_cast<bool>(executor));
  replication_executor_ = std::move(executor);
  rereplication_task_ = std::make_unique<sim::PeriodicTask>(
      sim_, scan_interval, [this] { scan_for_under_replication(); });
  rereplication_task_->start();
}

void Namenode::disable_rereplication() {
  if (rereplication_task_) rereplication_task_->stop();
}

void Namenode::scan_for_under_replication() {
  for (auto& [id, record] : blocks_) {
    const auto ft = files_.find(record.file);
    // Open files are the writer's responsibility (pipeline recovery).
    if (ft == files_.end() || ft->second.state != FileState::kClosed) continue;
    if (const auto pending = rereplication_pending_.find(id);
        pending != rereplication_pending_.end()) {
      // A copy is in flight; retry only once its deadline lapses (it may
      // have been swallowed by a partition or a target crash).
      if (sim_.now() < pending->second) continue;
      rereplication_pending_.erase(pending);
    }
    if (live_replica_count(record) >= config_.replication) continue;

    // Source: any live holder; target: a fresh node, placed like a random
    // replica, excluding every current holder (dead ones included — they
    // may come back with the stale copy).
    NodeId source;
    Bytes length = 0;
    std::vector<NodeId> holders;
    for (const auto& [dn, len] : record.reported) {
      if (record.corrupt_replicas.count(dn) > 0) continue;
      holders.push_back(dn);
      if (!source.valid() && is_alive(dn)) {
        source = dn;
        length = len;
      }
    }
    // Nodes with a condemned copy of this block never receive it again
    // (their rot may be media-related) and are useless as sources.
    for (NodeId dn : record.corrupt_replicas) holders.push_back(dn);
    if (!source.valid()) continue;  // nothing to copy from; data loss

    const PlacementContext ctx = make_context(sim_.rng());
    const NodeId target = pick_random_node(ctx, {}, holders, nullptr);
    if (!target.valid()) continue;  // cluster too small right now

    rereplication_pending_[id] = sim_.now() + seconds(60);
    ++rereplications_scheduled_;
    metrics::global_registry().counter("namenode.rereplications").add();
    trace_nn(trace::Category::kRecovery, "re-replicate",
             {{"block", id.to_string()},
              {"source", source.to_string()},
              {"target", target.to_string()}});
    SMARTH_INFO("namenode") << "re-replicating " << id.to_string() << " from "
                            << source.value() << " to " << target.value();
    replication_executor_(
        source, target, id, length, [this, id](bool success) {
          rereplication_pending_.erase(id);
          if (success) ++rereplications_completed_;
          // On failure the next scan retries with fresh liveness data.
        });
  }
}

const FileEntry* Namenode::file(FileId id) const {
  auto it = files_.find(id);
  return it == files_.end() ? nullptr : &it->second;
}

const FileEntry* Namenode::file_by_path(const std::string& path) const {
  auto it = files_by_path_.find(path);
  return it == files_by_path_.end() ? nullptr : file(it->second);
}

const BlockRecord* Namenode::block(BlockId id) const {
  auto it = blocks_.find(id);
  return it == blocks_.end() ? nullptr : &it->second;
}

}  // namespace smarth::hdfs
