#include "hdfs/namenode.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/log.hpp"

namespace smarth::hdfs {

void SpeedBoard::update(ClientId client, const SpeedRecord& record) {
  auto& board = boards_[client];
  auto [it, inserted] = board.try_emplace(record.datanode, record);
  if (!inserted && record.measured_at >= it->second.measured_at) {
    it->second = record;
  }
}

bool SpeedBoard::has_records(ClientId client) const {
  auto it = boards_.find(client);
  return it != boards_.end() && !it->second.empty();
}

std::optional<Bandwidth> SpeedBoard::speed(ClientId client,
                                           NodeId datanode) const {
  auto it = boards_.find(client);
  if (it == boards_.end()) return std::nullopt;
  auto jt = it->second.find(datanode);
  if (jt == it->second.end()) return std::nullopt;
  return jt->second.speed;
}

std::vector<SpeedRecord> SpeedBoard::records_for(ClientId client) const {
  std::vector<SpeedRecord> out;
  auto it = boards_.find(client);
  if (it == boards_.end()) return out;
  out.reserve(it->second.size());
  for (const auto& [dn, rec] : it->second) out.push_back(rec);
  return out;
}

Namenode::Namenode(sim::Simulation& sim, const net::Topology& topology,
                   const HdfsConfig& config, NodeId self)
    : sim_(sim), topology_(topology), config_(config), self_(self),
      policy_(std::make_unique<DefaultPlacementPolicy>()) {}

void Namenode::set_placement_policy(std::unique_ptr<PlacementPolicy> policy) {
  SMARTH_CHECK(policy != nullptr);
  policy_ = std::move(policy);
}

void Namenode::register_datanode(NodeId dn) {
  // Idempotent: a crashed datanode that restarts re-registers (real HDFS
  // treats it as a fresh registration of a known storage id); the heartbeat
  // clock restarts so the node counts as alive again immediately.
  if (std::find(datanodes_.begin(), datanodes_.end(), dn) !=
      datanodes_.end()) {
    ++reregistrations_;
    SMARTH_INFO("namenode") << "datanode " << dn.value() << " re-registered";
  } else {
    datanodes_.push_back(dn);
  }
  last_heartbeat_[dn] = sim_.now();
}

void Namenode::handle_heartbeat(NodeId dn) {
  auto it = last_heartbeat_.find(dn);
  SMARTH_CHECK_MSG(it != last_heartbeat_.end(),
                   "heartbeat from unregistered datanode " << dn.value());
  it->second = sim_.now();
  ++heartbeats_;
}

bool Namenode::is_alive(NodeId dn) const {
  auto it = last_heartbeat_.find(dn);
  if (it == last_heartbeat_.end()) return false;
  return sim_.now() - it->second <= config_.datanode_dead_interval;
}

std::vector<NodeId> Namenode::alive_datanodes() const {
  std::vector<NodeId> out;
  out.reserve(datanodes_.size());
  for (NodeId dn : datanodes_) {
    if (is_alive(dn)) out.push_back(dn);
  }
  return out;
}

PlacementContext Namenode::make_context(
    Rng& rng, const std::vector<NodeId>* deprioritized) const {
  alive_scratch_ = alive_datanodes();
  PlacementContext ctx{topology_, alive_scratch_, rng, &speeds_};
  if (deprioritized != nullptr && !deprioritized->empty()) {
    ctx.deprioritized = deprioritized;
  }
  return ctx;
}

Result<FileId> Namenode::create(const std::string& path, ClientId client) {
  // The namenode's pre-creation checks (paper §II step 1).
  if (safe_mode_) {
    return Error{"safe_mode", "namenode is in safe mode"};
  }
  if (path.empty() || path.front() != '/') {
    return Error{"invalid_path", "path must be absolute: " + path};
  }
  if (auto it = files_by_path_.find(path); it != files_by_path_.end()) {
    FileEntry& existing = files_.at(it->second);
    if (existing.lease_holder == client &&
        existing.state == FileState::kUnderConstruction) {
      // Retry of a create() whose response was lost: same client, file still
      // open — hand back the existing entry instead of failing.
      return existing.id;
    }
    return Error{"file_exists", "file already exists: " + path};
  }
  const FileId id = file_ids_.next();
  FileEntry entry;
  entry.id = id;
  entry.path = path;
  entry.lease_holder = client;
  files_by_path_.emplace(path, id);
  files_.emplace(id, std::move(entry));
  SMARTH_DEBUG("namenode") << "created " << path << " as " << id.to_string();
  return id;
}

Result<LocatedBlock> Namenode::add_block(
    FileId file, ClientId client, NodeId client_node,
    const std::vector<NodeId>& excluded,
    const std::vector<NodeId>& deprioritized, std::int64_t block_index) {
  if (safe_mode_) {
    return Error{"safe_mode", "namenode is in safe mode"};
  }
  auto it = files_.find(file);
  if (it == files_.end()) {
    return Error{"file_not_found", "unknown file " + file.to_string()};
  }
  FileEntry& entry = it->second;
  if (entry.state != FileState::kUnderConstruction) {
    return Error{"file_closed", "addBlock on closed file " + entry.path};
  }
  if (entry.lease_holder != client) {
    return Error{"lease_mismatch", "client does not hold the lease on " +
                                       entry.path};
  }
  if (block_index >= 0 &&
      block_index < static_cast<std::int64_t>(entry.blocks.size())) {
    // Retry of an addBlock whose response was lost: return the allocation
    // already made for this index rather than leaking an orphan block that
    // would keep complete() failing forever.
    const BlockId existing = entry.blocks[static_cast<std::size_t>(
        block_index)];
    const BlockRecord& record = blocks_.at(existing);
    SMARTH_DEBUG("namenode") << "addBlock retry for index " << block_index
                             << "; returning " << existing.to_string();
    return LocatedBlock{existing, record.expected_targets};
  }

  PlacementRequest request;
  request.client = client;
  request.client_node = client_node;
  request.replication = config_.replication;
  request.excluded = excluded;
  request.deprioritized = deprioritized;
  std::vector<NodeId> targets = policy_->choose_targets(
      request, make_context(sim_.rng(), &request.deprioritized));
  if (static_cast<int>(targets.size()) < config_.replication) {
    return Error{"insufficient_datanodes",
                 "could only place " + std::to_string(targets.size()) +
                     " of " + std::to_string(config_.replication) +
                     " replicas"};
  }

  const BlockId block = block_ids_.next();
  BlockRecord record;
  record.id = block;
  record.file = file;
  record.expected_targets = targets;
  blocks_.emplace(block, std::move(record));
  entry.blocks.push_back(block);
  return LocatedBlock{block, std::move(targets)};
}

Result<std::vector<NodeId>> Namenode::get_additional_datanodes(
    BlockId block, ClientId client, NodeId client_node,
    const std::vector<NodeId>& existing, const std::vector<NodeId>& excluded,
    int count, const std::vector<NodeId>& deprioritized) {
  auto it = blocks_.find(block);
  if (it == blocks_.end()) {
    return Error{"block_not_found", "unknown block " + block.to_string()};
  }
  PlacementRequest request;
  request.client = client;
  request.client_node = client_node;
  request.replication = count;
  request.excluded = excluded;
  request.deprioritized = deprioritized;
  // Existing pipeline members must not be chosen again.
  request.excluded.insert(request.excluded.end(), existing.begin(),
                          existing.end());

  std::vector<NodeId> chosen;
  const PlacementContext ctx =
      make_context(sim_.rng(), &request.deprioritized);
  for (int i = 0; i < count; ++i) {
    NodeId pick = pick_random_node(ctx, chosen, request.excluded, nullptr);
    if (!pick.valid()) break;
    chosen.push_back(pick);
  }
  return chosen;
}

Status Namenode::update_block_targets(BlockId block,
                                      std::vector<NodeId> targets) {
  auto it = blocks_.find(block);
  if (it == blocks_.end()) {
    return make_error("block_not_found", "unknown block " + block.to_string());
  }
  it->second.expected_targets = std::move(targets);
  return Status::ok_status();
}

Result<bool> Namenode::complete(FileId file, ClientId client) {
  auto it = files_.find(file);
  if (it == files_.end()) {
    return Error{"file_not_found", "unknown file " + file.to_string()};
  }
  FileEntry& entry = it->second;
  if (entry.lease_holder != client) {
    return Error{"lease_mismatch",
                 "client does not hold the lease on " + entry.path};
  }
  if (entry.state == FileState::kClosed) return true;  // idempotent
  for (BlockId block : entry.blocks) {
    const auto bt = blocks_.find(block);
    SMARTH_CHECK(bt != blocks_.end());
    if (bt->second.reported.empty()) {
      return false;  // minimum replication not yet reached; client retries
    }
  }
  entry.state = FileState::kClosed;
  SMARTH_DEBUG("namenode") << "completed " << entry.path;
  return true;
}

Result<std::vector<LocatedBlock>> Namenode::get_block_locations(
    const std::string& path, NodeId reader) const {
  const FileEntry* entry = file_by_path(path);
  if (entry == nullptr) {
    return Error{"file_not_found", "no such file: " + path};
  }
  std::vector<LocatedBlock> located;
  located.reserve(entry->blocks.size());
  for (BlockId block : entry->blocks) {
    const auto it = blocks_.find(block);
    SMARTH_CHECK(it != blocks_.end());
    LocatedBlock lb;
    lb.block = block;
    for (const auto& [dn, len] : it->second.reported) {
      if (is_alive(dn)) lb.targets.push_back(dn);
      lb.length = std::max(lb.length, len);
    }
    // Closest replica first (HDFS sorts by NetworkTopology distance);
    // stable order within a distance class keeps runs deterministic.
    std::sort(lb.targets.begin(), lb.targets.end(),
              [&](NodeId a, NodeId b) {
                const int da = topology_.distance(reader, a);
                const int db = topology_.distance(reader, b);
                if (da != db) return da < db;
                return a < b;
              });
    located.push_back(std::move(lb));
  }
  return located;
}

void Namenode::block_received(NodeId dn, BlockId block, Bytes length) {
  auto it = blocks_.find(block);
  if (it == blocks_.end()) {
    SMARTH_WARN("namenode") << "blockReceived for unknown block "
                            << block.to_string();
    return;
  }
  it->second.reported[dn] = length;
}

void Namenode::report_client_speeds(ClientId client,
                                    const std::vector<SpeedRecord>& records) {
  for (const SpeedRecord& r : records) speeds_.update(client, r);
}

int Namenode::live_replica_count(const BlockRecord& record) const {
  int live = 0;
  for (const auto& [dn, len] : record.reported) {
    if (is_alive(dn)) ++live;
  }
  return live;
}

std::vector<BlockId> Namenode::under_replicated_blocks() const {
  std::vector<BlockId> out;
  for (const auto& [id, record] : blocks_) {
    const auto ft = files_.find(record.file);
    if (ft == files_.end() || ft->second.state != FileState::kClosed) continue;
    if (live_replica_count(record) < config_.replication) out.push_back(id);
  }
  return out;
}

void Namenode::enable_rereplication(ReplicationExecutor executor,
                                    SimDuration scan_interval) {
  SMARTH_CHECK(static_cast<bool>(executor));
  replication_executor_ = std::move(executor);
  rereplication_task_ = std::make_unique<sim::PeriodicTask>(
      sim_, scan_interval, [this] { scan_for_under_replication(); });
  rereplication_task_->start();
}

void Namenode::disable_rereplication() {
  if (rereplication_task_) rereplication_task_->stop();
}

void Namenode::scan_for_under_replication() {
  for (auto& [id, record] : blocks_) {
    const auto ft = files_.find(record.file);
    // Open files are the writer's responsibility (pipeline recovery).
    if (ft == files_.end() || ft->second.state != FileState::kClosed) continue;
    if (const auto pending = rereplication_pending_.find(id);
        pending != rereplication_pending_.end()) {
      // A copy is in flight; retry only once its deadline lapses (it may
      // have been swallowed by a partition or a target crash).
      if (sim_.now() < pending->second) continue;
      rereplication_pending_.erase(pending);
    }
    if (live_replica_count(record) >= config_.replication) continue;

    // Source: any live holder; target: a fresh node, placed like a random
    // replica, excluding every current holder (dead ones included — they
    // may come back with the stale copy).
    NodeId source;
    Bytes length = 0;
    std::vector<NodeId> holders;
    for (const auto& [dn, len] : record.reported) {
      holders.push_back(dn);
      if (!source.valid() && is_alive(dn)) {
        source = dn;
        length = len;
      }
    }
    if (!source.valid()) continue;  // nothing to copy from; data loss

    const PlacementContext ctx = make_context(sim_.rng());
    const NodeId target = pick_random_node(ctx, {}, holders, nullptr);
    if (!target.valid()) continue;  // cluster too small right now

    rereplication_pending_[id] = sim_.now() + seconds(60);
    ++rereplications_scheduled_;
    SMARTH_INFO("namenode") << "re-replicating " << id.to_string() << " from "
                            << source.value() << " to " << target.value();
    replication_executor_(
        source, target, id, length, [this, id](bool success) {
          rereplication_pending_.erase(id);
          if (success) ++rereplications_completed_;
          // On failure the next scan retries with fresh liveness data.
        });
  }
}

const FileEntry* Namenode::file(FileId id) const {
  auto it = files_.find(id);
  return it == files_.end() ? nullptr : &it->second;
}

const FileEntry* Namenode::file_by_path(const std::string& path) const {
  auto it = files_by_path_.find(path);
  return it == files_by_path_.end() ? nullptr : file(it->second);
}

const BlockRecord* Namenode::block(BlockId id) const {
  auto it = blocks_.find(id);
  return it == blocks_.end() ? nullptr : &it->second;
}

}  // namespace smarth::hdfs
