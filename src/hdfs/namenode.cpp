#include "hdfs/namenode.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/log.hpp"
#include "hdfs/edit_log.hpp"
#include "hdfs/fsimage.hpp"
#include "trace/metrics_registry.hpp"
#include "trace/trace_recorder.hpp"

namespace {

/// Instant on the shared "namenode" track; guarded so the disabled path costs
/// one branch.
void trace_nn(smarth::trace::Category cat, const char* name,
              smarth::trace::Args args) {
  if (smarth::trace::active()) {
    smarth::trace::recorder()->instant(cat, "namenode", name, std::move(args));
  }
}

}  // namespace

namespace smarth::hdfs {

void SpeedBoard::update(ClientId client, const SpeedRecord& record) {
  auto& board = boards_[client];
  auto [it, inserted] = board.try_emplace(record.datanode, record);
  if (!inserted && record.measured_at >= it->second.measured_at) {
    it->second = record;
  }
}

bool SpeedBoard::has_records(ClientId client) const {
  auto it = boards_.find(client);
  return it != boards_.end() && !it->second.empty();
}

std::optional<Bandwidth> SpeedBoard::speed(ClientId client,
                                           NodeId datanode) const {
  auto it = boards_.find(client);
  if (it == boards_.end()) return std::nullopt;
  auto jt = it->second.find(datanode);
  if (jt == it->second.end()) return std::nullopt;
  return jt->second.speed;
}

std::vector<SpeedRecord> SpeedBoard::records_for(ClientId client) const {
  std::vector<SpeedRecord> out;
  auto it = boards_.find(client);
  if (it == boards_.end()) return out;
  out.reserve(it->second.size());
  for (const auto& [dn, rec] : it->second) out.push_back(rec);
  return out;
}

Namenode::Namenode(sim::Simulation& sim, const net::Topology& topology,
                   const HdfsConfig& config, NodeId self)
    : sim_(sim), topology_(topology), config_(config), self_(self),
      policy_(std::make_unique<DefaultPlacementPolicy>()),
      suspicion_(config.suspicion_half_life, config.suspicion_threshold),
      leases_(config.lease_soft_limit, config.lease_hard_limit) {}

void Namenode::set_placement_policy(std::unique_ptr<PlacementPolicy> policy) {
  SMARTH_CHECK(policy != nullptr);
  policy_ = std::move(policy);
}

void Namenode::register_datanode(NodeId dn) {
  // Registration into a crashed control plane is lost with it; the datanode
  // re-registers when a post-restore heartbeat comes back unrecognized.
  if (crashed_) return;
  // Idempotent: a crashed datanode that restarts re-registers (real HDFS
  // treats it as a fresh registration of a known storage id); the heartbeat
  // clock restarts so the node counts as alive again immediately.
  if (std::find(datanodes_.begin(), datanodes_.end(), dn) !=
      datanodes_.end()) {
    ++reregistrations_;
    // A re-registration announces a fresh process: whatever replica state its
    // previous incarnation reported is stale until the block report that
    // follows the registration re-asserts it. Dropping it here (instead of
    // merging) is what keeps re-registration idempotent — the old entries
    // cannot double-count live replicas or shadow replicas lost in the
    // restart. Quarantine entries stay: a condemned replica remains condemned
    // across its node's restarts.
    for (auto& [id, record] : blocks_) record.reported.erase(dn);
    SMARTH_INFO("namenode") << "datanode " << dn.value() << " re-registered";
  } else {
    datanodes_.push_back(dn);
  }
  last_heartbeat_[dn] = sim_.now();
  // A returning datanode may be the one safe mode was waiting on.
  maybe_exit_safe_mode();
}

bool Namenode::handle_heartbeat(NodeId dn) {
  auto it = last_heartbeat_.find(dn);
  if (it == last_heartbeat_.end()) {
    // Unknown node — typically this namenode restarted and lost its
    // registration table. The datanode re-registers on seeing `false`.
    SMARTH_DEBUG("namenode") << "heartbeat from unregistered datanode "
                             << dn.value() << "; requesting re-registration";
    return false;
  }
  it->second = sim_.now();
  ++heartbeats_;
  return true;
}

bool Namenode::is_alive(NodeId dn) const {
  auto it = last_heartbeat_.find(dn);
  if (it == last_heartbeat_.end()) return false;
  return sim_.now() - it->second <= config_.datanode_dead_interval;
}

std::vector<NodeId> Namenode::alive_datanodes() const {
  std::vector<NodeId> out;
  out.reserve(datanodes_.size());
  for (NodeId dn : datanodes_) {
    if (is_alive(dn)) out.push_back(dn);
  }
  return out;
}

PlacementContext Namenode::make_context(
    Rng& rng, const std::vector<NodeId>* deprioritized) const {
  alive_scratch_ = alive_datanodes();
  PlacementContext ctx{topology_, alive_scratch_, rng, &speeds_};
  if (deprioritized != nullptr && !deprioritized->empty()) {
    ctx.deprioritized = deprioritized;
  }
  suspect_scratch_ = suspicion_.suspects(sim_.now());
  if (!suspect_scratch_.empty()) ctx.suspects = &suspect_scratch_;
  return ctx;
}

Result<FileId> Namenode::create(const std::string& path, ClientId client,
                                bool overwrite) {
  // The namenode's pre-creation checks (paper §II step 1).
  if (safe_mode_) {
    return Error{"safe_mode", "namenode is in safe mode"};
  }
  if (path.empty() || path.front() != '/') {
    return Error{"invalid_path", "path must be absolute: " + path};
  }
  leases_.renew(client, sim_.now());
  {
    EditOp op;
    op.type = EditOpType::kLeaseRenew;
    op.client = client;
    journal(std::move(op));
  }
  if (auto it = files_by_path_.find(path); it != files_by_path_.end()) {
    FileEntry& existing = files_.at(it->second);
    if (existing.state == FileState::kUnderConstruction) {
      if (existing.recovering) {
        return Error{"recovery_in_progress",
                     "lease recovery of " + path + " is in progress"};
      }
      if (existing.lease_holder == client) {
        // Retry of a create() whose response was lost: same client, file
        // still open — hand back the existing entry instead of failing.
        return existing.id;
      }
      if (leases_.soft_expired(existing.lease_holder, sim_.now())) {
        // The previous writer stopped renewing: recover the file now so the
        // new writer's retry finds it closed (HDFS recoverLeaseInternal).
        SMARTH_WARN("namenode")
            << "create(" << path << "): holder "
            << existing.lease_holder.to_string()
            << " soft-expired; starting lease recovery";
        start_lease_recovery(existing.id);
        return Error{"recovery_in_progress",
                     "lease recovery of " + path + " started"};
      }
      return Error{"file_exists",
                   "file is being written by another client: " + path};
    }
    if (!overwrite) {
      return Error{"file_exists", "file already exists: " + path};
    }
    erase_file(existing.id);
  }
  const FileId id = file_ids_.next();
  FileEntry entry;
  entry.id = id;
  entry.path = path;
  entry.lease_holder = client;
  files_by_path_.emplace(path, id);
  files_.emplace(id, std::move(entry));
  leases_.add(client, id, sim_.now());
  {
    EditOp op;
    op.type = EditOpType::kCreate;
    op.file = id;
    op.client = client;
    op.path = path;
    journal(std::move(op));
  }
  SMARTH_DEBUG("namenode") << "created " << path << " as " << id.to_string();
  return id;
}

Result<LocatedBlock> Namenode::add_block(
    FileId file, ClientId client, NodeId client_node,
    const std::vector<NodeId>& excluded,
    const std::vector<NodeId>& deprioritized, std::int64_t block_index) {
  if (safe_mode_) {
    return Error{"safe_mode", "namenode is in safe mode"};
  }
  auto it = files_.find(file);
  if (it == files_.end()) {
    return Error{"file_not_found", "unknown file " + file.to_string()};
  }
  FileEntry& entry = it->second;
  if (entry.state != FileState::kUnderConstruction) {
    return Error{"file_closed", "addBlock on closed file " + entry.path};
  }
  if (entry.recovering) {
    return Error{"recovery_in_progress",
                 "lease recovery of " + entry.path + " is in progress"};
  }
  if (entry.lease_holder != client) {
    return Error{"lease_mismatch", "client does not hold the lease on " +
                                       entry.path};
  }
  leases_.renew(client, sim_.now());
  {
    EditOp op;
    op.type = EditOpType::kLeaseRenew;
    op.client = client;
    journal(std::move(op));
  }
  if (block_index >= 0 &&
      block_index < static_cast<std::int64_t>(entry.blocks.size())) {
    // Retry of an addBlock whose response was lost: return the allocation
    // already made for this index rather than leaking an orphan block that
    // would keep complete() failing forever.
    const BlockId existing = entry.blocks[static_cast<std::size_t>(
        block_index)];
    const BlockRecord& record = blocks_.at(existing);
    SMARTH_DEBUG("namenode") << "addBlock retry for index " << block_index
                             << "; returning " << existing.to_string();
    return LocatedBlock{existing, record.expected_targets};
  }

  PlacementRequest request;
  request.client = client;
  request.client_node = client_node;
  request.replication = config_.replication;
  request.excluded = excluded;
  request.deprioritized = deprioritized;
  std::vector<NodeId> targets = policy_->choose_targets(
      request, make_context(sim_.rng(), &request.deprioritized));
  if (static_cast<int>(targets.size()) < config_.replication) {
    return Error{"insufficient_datanodes",
                 "could only place " + std::to_string(targets.size()) +
                     " of " + std::to_string(config_.replication) +
                     " replicas"};
  }

  const BlockId block = block_ids_.next();
  BlockRecord record;
  record.id = block;
  record.file = file;
  record.expected_targets = targets;
  blocks_.emplace(block, std::move(record));
  entry.blocks.push_back(block);
  {
    EditOp op;
    op.type = EditOpType::kAddBlock;
    op.file = file;
    op.block = block;
    op.client = client;
    op.nodes = targets;
    journal(std::move(op));
  }
  if (trace::active()) {
    std::string joined;
    for (NodeId t : targets) {
      if (!joined.empty()) joined += "+";
      joined += t.to_string();
    }
    trace_nn(trace::Category::kBlock, "addBlock",
             {{"block", block.to_string()},
              {"file", entry.path},
              {"targets", joined}});
  }
  return LocatedBlock{block, std::move(targets)};
}

Result<std::vector<NodeId>> Namenode::get_additional_datanodes(
    BlockId block, ClientId client, NodeId client_node,
    const std::vector<NodeId>& existing, const std::vector<NodeId>& excluded,
    int count, const std::vector<NodeId>& deprioritized) {
  auto it = blocks_.find(block);
  if (it == blocks_.end()) {
    return Error{"block_not_found", "unknown block " + block.to_string()};
  }
  PlacementRequest request;
  request.client = client;
  request.client_node = client_node;
  request.replication = count;
  request.excluded = excluded;
  request.deprioritized = deprioritized;
  // Existing pipeline members must not be chosen again.
  request.excluded.insert(request.excluded.end(), existing.begin(),
                          existing.end());

  std::vector<NodeId> chosen;
  const PlacementContext ctx =
      make_context(sim_.rng(), &request.deprioritized);
  for (int i = 0; i < count; ++i) {
    NodeId pick = pick_random_node(ctx, chosen, request.excluded, nullptr);
    if (!pick.valid()) break;
    chosen.push_back(pick);
  }
  return chosen;
}

Status Namenode::update_block_targets(BlockId block,
                                      std::vector<NodeId> targets) {
  auto it = blocks_.find(block);
  if (it == blocks_.end()) {
    return make_error("block_not_found", "unknown block " + block.to_string());
  }
  it->second.expected_targets = std::move(targets);
  {
    EditOp op;
    op.type = EditOpType::kUpdateTargets;
    op.block = block;
    op.file = it->second.file;
    op.nodes = it->second.expected_targets;
    journal(std::move(op));
  }
  return Status::ok_status();
}

Result<bool> Namenode::complete(FileId file, ClientId client) {
  if (safe_mode_) {
    // Not an error: the replica reports complete() depends on are still
    // arriving. The client retries, exactly as for minimum-replication waits.
    return false;
  }
  auto it = files_.find(file);
  if (it == files_.end()) {
    return Error{"file_not_found", "unknown file " + file.to_string()};
  }
  FileEntry& entry = it->second;
  if (entry.lease_holder != client) {
    return Error{"lease_mismatch",
                 "client does not hold the lease on " + entry.path};
  }
  if (entry.recovering) {
    return Error{"recovery_in_progress",
                 "lease recovery of " + entry.path + " is in progress"};
  }
  if (entry.state == FileState::kClosed) {
    if (entry.closed_by_recovery) {
      // The file was closed at a salvaged prefix after this writer's lease
      // expired; reporting idempotent success would claim the whole upload
      // landed when it did not.
      return Error{"lease_expired",
                   "lease on " + entry.path +
                       " expired; file was closed by recovery"};
    }
    return true;  // idempotent
  }
  leases_.renew(client, sim_.now());
  {
    EditOp op;
    op.type = EditOpType::kLeaseRenew;
    op.client = client;
    journal(std::move(op));
  }
  for (BlockId block : entry.blocks) {
    const auto bt = blocks_.find(block);
    SMARTH_CHECK(bt != blocks_.end());
    if (bt->second.reported.empty()) {
      return false;  // minimum replication not yet reached; client retries
    }
  }
  entry.state = FileState::kClosed;
  leases_.release(client, file);
  {
    EditOp op;
    op.type = EditOpType::kCompleteFile;
    op.file = file;
    op.client = client;
    journal(std::move(op));
  }
  trace_nn(trace::Category::kRun, "complete", {{"file", entry.path}});
  SMARTH_DEBUG("namenode") << "completed " << entry.path;
  return true;
}

Result<std::vector<LocatedBlock>> Namenode::get_block_locations(
    const std::string& path, NodeId reader) const {
  const FileEntry* entry = file_by_path(path);
  if (entry == nullptr) {
    return Error{"file_not_found", "no such file: " + path};
  }
  std::vector<LocatedBlock> located;
  located.reserve(entry->blocks.size());
  for (BlockId block : entry->blocks) {
    const auto it = blocks_.find(block);
    SMARTH_CHECK(it != blocks_.end());
    LocatedBlock lb;
    lb.block = block;
    bool has_clean_holder = false;
    for (const auto& [dn, len] : it->second.reported) {
      // Quarantined replicas are erased from `reported` on report; this
      // check also covers a racing re-report that slipped back in.
      if (it->second.corrupt_replicas.count(dn) > 0) continue;
      has_clean_holder = true;
      if (is_alive(dn)) lb.targets.push_back(dn);
      lb.length = std::max(lb.length, len);
    }
    // Distinguish "every known replica rotted" from "holders temporarily
    // dead": only the former is a hard integrity failure for the reader.
    lb.all_replicas_corrupt = lb.targets.empty() && !has_clean_holder &&
                              !it->second.corrupt_replicas.empty();
    // Closest replica first (HDFS sorts by NetworkTopology distance);
    // stable order within a distance class keeps runs deterministic.
    std::sort(lb.targets.begin(), lb.targets.end(),
              [&](NodeId a, NodeId b) {
                const int da = topology_.distance(reader, a);
                const int db = topology_.distance(reader, b);
                if (da != db) return da < db;
                return a < b;
              });
    located.push_back(std::move(lb));
  }
  return located;
}

void Namenode::block_received(NodeId dn, BlockId block, Bytes length) {
  auto it = blocks_.find(block);
  if (it == blocks_.end()) {
    SMARTH_WARN("namenode") << "blockReceived for unknown block "
                            << block.to_string();
    return;
  }
  if (it->second.corrupt_replicas.count(dn) > 0) {
    // The quarantine outlives the report that caused it: an in-flight or
    // heartbeat-carried re-report from a condemned replica is ignored, and
    // the invalidation is re-issued in case the first one was lost.
    SMARTH_DEBUG("namenode") << "ignoring blockReceived for quarantined "
                             << block.to_string() << " from node "
                             << dn.value();
    // Safe mode defers invalidation decisions: the replica map is still
    // being rebuilt and commands issued against it would be guesses.
    if (invalidation_executor_ && !safe_mode_) {
      ++invalidations_issued_;
      invalidation_executor_(dn, block);
    }
    return;
  }
  it->second.reported[dn] = length;
  maybe_exit_safe_mode();
}

void Namenode::report_bad_replica(BlockId block, NodeId node) {
  ++bad_replica_reports_;
  metrics::global_registry().counter("namenode.bad_replica_reports").add();
  trace_nn(trace::Category::kScanner, "report bad replica",
           {{"block", block.to_string()}, {"node", node.to_string()}});
  auto it = blocks_.find(block);
  if (it == blocks_.end()) return;  // stale report on a deleted block
  BlockRecord& record = it->second;
  const bool fresh = record.corrupt_replicas.insert(node).second;
  record.reported.erase(node);
  if (fresh) {
    EditOp op;
    op.type = EditOpType::kQuarantine;
    op.block = block;
    op.file = record.file;
    op.node = node;
    journal(std::move(op));
    SMARTH_WARN("namenode") << block.to_string() << " on node "
                            << node.value()
                            << " reported corrupt; quarantined ("
                            << record.corrupt_replicas.size()
                            << " bad replica(s), "
                            << live_replica_count(record) << " live good)";
  }
  // Invalidate even on duplicate reports: the previous command may have been
  // lost to RPC chaos or a crashed node that has since restarted. Safe mode
  // defers the command (the quarantine itself is durable and re-issues once
  // the replica map is rebuilt).
  if (invalidation_executor_ && !safe_mode_) {
    ++invalidations_issued_;
    invalidation_executor_(node, block);
  }
}

std::size_t Namenode::corrupt_replica_count() const {
  std::size_t n = 0;
  for (const auto& [id, record] : blocks_) n += record.corrupt_replicas.size();
  return n;
}

void Namenode::report_slow_datanode(NodeId node, double weight) {
  suspicion_.report(node, weight, sim_.now());
  metrics::global_registry().counter("namenode.slow_node_reports").add();
  trace_nn(trace::Category::kRecovery, "slow datanode report",
           {{"node", node.to_string()},
            {"score", std::to_string(suspicion_.score(node, sim_.now()))}});
  SMARTH_INFO("namenode") << "slow report for datanode " << node.value()
                          << ": suspicion "
                          << suspicion_.score(node, sim_.now());
}

void Namenode::report_client_speeds(ClientId client,
                                    const std::vector<SpeedRecord>& records) {
  for (const SpeedRecord& r : records) speeds_.update(client, r);
  // Fresh speed evidence is the fast path out of suspicion: a suspected node
  // measured at least half as fast as the quickest node on the same client's
  // board has demonstrably recovered — clear it now instead of waiting for
  // the score to decay through the threshold.
  for (const SpeedRecord& r : records) {
    if (suspicion_.score(r.datanode, sim_.now()) <= 0.0) continue;
    Bandwidth best = r.speed;
    for (const SpeedRecord& board : speeds_.records_for(client)) {
      if (board.speed.bytes_per_second() > best.bytes_per_second()) {
        best = board.speed;
      }
    }
    if (r.speed.bytes_per_second() * 2 >= best.bytes_per_second()) {
      suspicion_.clear(r.datanode);
      SMARTH_INFO("namenode") << "datanode " << r.datanode.value()
                              << " measured fast again; suspicion cleared";
    }
  }
}

void Namenode::client_heartbeat(ClientId client,
                                const std::vector<SpeedRecord>& records) {
  leases_.renew(client, sim_.now());
  {
    EditOp op;
    op.type = EditOpType::kLeaseRenew;
    op.client = client;
    journal(std::move(op));
  }
  ++client_heartbeats_;
  if (!records.empty()) report_client_speeds(client, records);
}

void Namenode::enable_lease_recovery(UcRecoveryExecutor executor,
                                     SimDuration scan_interval) {
  SMARTH_CHECK(static_cast<bool>(executor));
  uc_recovery_executor_ = std::move(executor);
  if (scan_interval <= 0) scan_interval = config_.lease_monitor_interval;
  lease_task_ = std::make_unique<sim::PeriodicTask>(
      sim_, scan_interval, [this] { lease_scan(); });
  lease_task_->start();
}

void Namenode::disable_lease_recovery() {
  if (lease_task_) lease_task_->stop();
}

void Namenode::lease_scan() {
  // No expiry or recovery decisions in safe mode: the replica map the
  // pending-block computation and primary election read is still being
  // rebuilt from block reports. Lease clocks were reset at restart, so
  // nothing can expire before safe mode has had a chance to exit anyway.
  if (safe_mode_) return;
  const SimTime now = sim_.now();
  for (const auto& [holder, file] : leases_.hard_expired_files(now)) {
    if (holder == kRecoveryHolder) continue;
    auto it = files_.find(file);
    if (it == files_.end()) {
      leases_.release(holder, file);  // stale lease on a deleted file
      continue;
    }
    if (it->second.state != FileState::kUnderConstruction ||
        it->second.recovering) {
      continue;
    }
    SMARTH_WARN("namenode")
        << "lease of " << holder.to_string() << " on " << it->second.path
        << " passed the hard limit; recovering";
    trace_nn(trace::Category::kLease, "lease hard-expired",
             {{"holder", holder.to_string()}, {"file", it->second.path}});
    start_lease_recovery(file);
  }
  // Drive in-flight recoveries: re-elect primaries whose round deadline
  // lapsed, abandon blocks that exhausted their attempts. Snapshot the keys
  // first — issuing may close (and erase) a recovery.
  std::vector<FileId> active;
  active.reserve(lease_recoveries_.size());
  for (const auto& [file, state] : lease_recoveries_) active.push_back(file);
  for (FileId file : active) {
    auto rt = lease_recoveries_.find(file);
    if (rt == lease_recoveries_.end()) continue;
    issue_uc_recoveries(file, rt->second);
  }
}

Status Namenode::start_lease_recovery(FileId file) {
  auto it = files_.find(file);
  if (it == files_.end()) {
    return make_error("file_not_found", "unknown file " + file.to_string());
  }
  FileEntry& entry = it->second;
  if (entry.state != FileState::kUnderConstruction) {
    return make_error("file_closed", entry.path + " is not open");
  }
  if (entry.recovering) return Status::ok_status();  // already in progress
  entry.recovering = true;
  ++lease_expiries_;
  metrics::global_registry().counter("namenode.lease_recoveries").add();
  trace_nn(trace::Category::kLease, "lease recovery start",
           {{"file", entry.path}});
  leases_.reassign(file, entry.lease_holder, kRecoveryHolder, sim_.now());

  LeaseRecoveryState state;
  state.started_at = sim_.now();
  for (BlockId block : entry.blocks) {
    const BlockRecord& record = blocks_.at(block);
    // A block every expected target already reported finalized is durable
    // as-is; anything less gets a commitBlockSynchronization round.
    bool fully_reported = !record.expected_targets.empty();
    for (NodeId target : record.expected_targets) {
      if (record.reported.count(target) == 0) {
        fully_reported = false;
        break;
      }
    }
    if (fully_reported) continue;
    state.pending.emplace(block, UcBlockPending{});
  }
  SMARTH_INFO("namenode") << "lease recovery of " << entry.path << ": "
                          << state.pending.size() << " of "
                          << entry.blocks.size()
                          << " blocks need synchronization";
  {
    // The pending set is computed from the volatile replica map, so replay
    // cannot rederive it — the explicit block list rides in the op.
    EditOp op;
    op.type = EditOpType::kLeaseRecoveryStart;
    op.file = file;
    op.client = entry.lease_holder;
    for (const auto& [block, pending] : state.pending) {
      op.blocks.push_back(block);
    }
    journal(std::move(op));
  }
  auto [rt, inserted] = lease_recoveries_.emplace(file, std::move(state));
  SMARTH_CHECK(inserted);
  if (rt->second.pending.empty()) {
    maybe_close_recovered(file);
  } else {
    issue_uc_recoveries(file, rt->second);
  }
  return Status::ok_status();
}

void Namenode::issue_uc_recoveries(FileId file, LeaseRecoveryState& state) {
  FileEntry& entry = files_.at(file);
  BlockId abandon_at;  // lowest block that exhausted its recovery budget
  for (auto& [block, pending] : state.pending) {
    if (sim_.now() < pending.retry_at) continue;
    if (pending.attempts >= config_.lease_recovery_max_attempts) {
      if (!abandon_at.valid()) abandon_at = block;
      continue;
    }
    const BlockRecord& record = blocks_.at(block);
    // Candidate replicas: the expected pipeline first (its head usually has
    // the longest prefix), then any other reported holders.
    std::vector<NodeId> targets = record.expected_targets;
    std::vector<NodeId> extra;
    for (const auto& [dn, len] : record.reported) {
      if (std::find(targets.begin(), targets.end(), dn) == targets.end()) {
        extra.push_back(dn);
      }
    }
    std::sort(extra.begin(), extra.end());
    targets.insert(targets.end(), extra.begin(), extra.end());

    NodeId primary;
    for (NodeId t : targets) {
      if (is_alive(t)) {
        primary = t;
        break;
      }
    }
    ++pending.attempts;
    pending.retry_at = sim_.now() + config_.lease_recovery_retry_interval;
    {
      EditOp op;
      op.type = EditOpType::kUcAttempt;
      op.file = file;
      op.block = block;
      journal(std::move(op));
    }
    if (!primary.valid() || !uc_recovery_executor_) {
      // No live replica candidate right now; the attempt still counts so a
      // permanently dead pipeline cannot wedge the file forever.
      continue;
    }
    UcRecoveryCommand cmd;
    cmd.block = block;
    cmd.targets = targets;
    cmd.tail = block == entry.blocks.back();
    SMARTH_INFO("namenode")
        << "commitBlockSynchronization round " << pending.attempts << " for "
        << block.to_string() << " via primary " << primary.value()
        << (cmd.tail ? " (tail)" : "");
    uc_recovery_executor_(primary, cmd);
  }
  if (abandon_at.valid()) {
    SMARTH_WARN("namenode") << abandon_at.to_string()
                            << " exhausted its recovery budget; abandoning";
    const auto pos = std::find(entry.blocks.begin(), entry.blocks.end(),
                               abandon_at);
    SMARTH_CHECK(pos != entry.blocks.end());
    truncate_file_blocks(
        file, static_cast<std::size_t>(pos - entry.blocks.begin()));
    maybe_close_recovered(file);
  }
}

void Namenode::commit_block_synchronization(BlockId block, Bytes length,
                                            const std::vector<NodeId>&
                                                holders) {
  auto bt = blocks_.find(block);
  if (bt == blocks_.end()) return;  // block already abandoned; stale commit
  BlockRecord& record = bt->second;
  const FileId file = record.file;
  auto ft = files_.find(file);
  SMARTH_CHECK(ft != files_.end());
  FileEntry& entry = ft->second;
  auto rt = lease_recoveries_.find(file);
  if (!entry.recovering || rt == lease_recoveries_.end()) return;  // stale
  auto pt = rt->second.pending.find(block);
  if (pt == rt->second.pending.end()) return;  // duplicate commit

  const auto pos = std::find(entry.blocks.begin(), entry.blocks.end(), block);
  SMARTH_CHECK(pos != entry.blocks.end());
  const std::size_t index =
      static_cast<std::size_t>(pos - entry.blocks.begin());

  if (holders.empty() || length == 0) {
    SMARTH_WARN("namenode") << "no durable replica of " << block.to_string()
                            << "; truncating " << entry.path << " to "
                            << index << " blocks";
    truncate_file_blocks(file, index);
    maybe_close_recovered(file);
    return;
  }
  record.reported.clear();
  for (NodeId dn : holders) {
    if (record.corrupt_replicas.count(dn) > 0) continue;
    record.reported[dn] = length;
  }
  record.expected_targets = holders;
  rt->second.pending.erase(pt);
  ++uc_blocks_recovered_;
  bytes_salvaged_ += length;
  {
    EditOp op;
    op.type = EditOpType::kCommitBlockSync;
    op.file = file;
    op.block = block;
    op.length = length;
    op.nodes = holders;
    journal(std::move(op));
  }
  metrics::global_registry().counter("namenode.uc_blocks_recovered").add();
  trace_nn(trace::Category::kRecovery, "commitBlockSynchronization",
           {{"block", block.to_string()},
            {"length", std::to_string(length)},
            {"holders", std::to_string(holders.size())}});
  SMARTH_INFO("namenode") << block.to_string() << " synchronized at "
                          << length << " bytes on " << holders.size()
                          << " replicas";
  if (index + 1 < entry.blocks.size() && length < config_.block_size) {
    // A short *middle* block would shift every later block's file offset;
    // the consistent prefix ends here (can only happen when a pipeline
    // head died mid-propagation under multi-pipeline writes).
    SMARTH_WARN("namenode") << block.to_string() << " is short mid-file; "
                            << "truncating " << entry.path << " after it";
    truncate_file_blocks(file, index + 1);
  }
  maybe_close_recovered(file);
}

void Namenode::truncate_file_blocks(FileId file, std::size_t first_removed) {
  FileEntry& entry = files_.at(file);
  if (first_removed < entry.blocks.size()) {
    EditOp op;
    op.type = EditOpType::kTruncateBlocks;
    op.file = file;
    op.index = static_cast<std::int64_t>(first_removed);
    journal(std::move(op));
  }
  auto rt = lease_recoveries_.find(file);
  for (std::size_t i = first_removed; i < entry.blocks.size(); ++i) {
    const BlockId block = entry.blocks[i];
    blocks_.erase(block);
    rereplication_pending_.erase(block);
    if (rt != lease_recoveries_.end()) rt->second.pending.erase(block);
    ++orphans_abandoned_;
  }
  entry.blocks.resize(first_removed);
}

void Namenode::maybe_close_recovered(FileId file) {
  auto rt = lease_recoveries_.find(file);
  if (rt == lease_recoveries_.end() || !rt->second.pending.empty()) return;
  {
    EditOp op;
    op.type = EditOpType::kCloseRecovered;
    op.file = file;
    journal(std::move(op));
  }
  close_recovered(file);
  const FileEntry& entry = files_.at(file);
  Bytes prefix = 0;
  for (BlockId block : entry.blocks) {
    const BlockRecord& record = blocks_.at(block);
    Bytes len = 0;
    for (const auto& [dn, l] : record.reported) len = std::max(len, l);
    prefix += len;
  }
  SMARTH_INFO("namenode") << "lease recovery closed " << entry.path << " at "
                          << prefix << " bytes (" << entry.blocks.size()
                          << " blocks)";
}

void Namenode::close_recovered(FileId file) {
  FileEntry& entry = files_.at(file);
  entry.state = FileState::kClosed;
  entry.recovering = false;
  entry.closed_by_recovery = true;
  leases_.release(kRecoveryHolder, file);
  lease_recoveries_.erase(file);
}

void Namenode::erase_file(FileId file) {
  auto it = files_.find(file);
  if (it == files_.end()) return;
  {
    EditOp op;
    op.type = EditOpType::kEraseFile;
    op.file = file;
    journal(std::move(op));
  }
  FileEntry& entry = it->second;
  for (BlockId block : entry.blocks) {
    blocks_.erase(block);
    rereplication_pending_.erase(block);
  }
  leases_.release(entry.lease_holder, entry.id);
  lease_recoveries_.erase(entry.id);
  files_by_path_.erase(entry.path);
  files_.erase(it);
}

int Namenode::live_replica_count(const BlockRecord& record) const {
  int live = 0;
  for (const auto& [dn, len] : record.reported) {
    if (record.corrupt_replicas.count(dn) > 0) continue;
    if (is_alive(dn)) ++live;
  }
  return live;
}

std::vector<BlockId> Namenode::under_replicated_blocks() const {
  std::vector<BlockId> out;
  for (const auto& [id, record] : blocks_) {
    const auto ft = files_.find(record.file);
    if (ft == files_.end() || ft->second.state != FileState::kClosed) continue;
    if (live_replica_count(record) < config_.replication) out.push_back(id);
  }
  return out;
}

void Namenode::enable_rereplication(ReplicationExecutor executor,
                                    SimDuration scan_interval) {
  SMARTH_CHECK(static_cast<bool>(executor));
  replication_executor_ = std::move(executor);
  rereplication_task_ = std::make_unique<sim::PeriodicTask>(
      sim_, scan_interval, [this] { scan_for_under_replication(); });
  rereplication_task_->start();
}

void Namenode::disable_rereplication() {
  if (rereplication_task_) rereplication_task_->stop();
}

void Namenode::scan_for_under_replication() {
  // Safe mode defers re-replication: a replica map mid-rebuild makes every
  // block look under-replicated and would trigger a pointless copy storm.
  if (safe_mode_) return;
  // Refresh the backlog/liveness gauges on the scan cadence so the flight
  // recorder sees re-replication pressure between its own samples.
  metrics::global_registry().gauge("nn.under_replicated").set(
      static_cast<double>(under_replicated_blocks().size()));
  metrics::global_registry().gauge("nn.live_datanodes").set(
      static_cast<double>(alive_datanodes().size()));
  for (auto& [id, record] : blocks_) {
    const auto ft = files_.find(record.file);
    // Open files are the writer's responsibility (pipeline recovery).
    if (ft == files_.end() || ft->second.state != FileState::kClosed) continue;
    if (const auto pending = rereplication_pending_.find(id);
        pending != rereplication_pending_.end()) {
      // A copy is in flight; retry only once its deadline lapses (it may
      // have been swallowed by a partition or a target crash).
      if (sim_.now() < pending->second) continue;
      rereplication_pending_.erase(pending);
    }
    if (live_replica_count(record) >= config_.replication) continue;

    // Source: any live holder; target: a fresh node, placed like a random
    // replica, excluding every current holder (dead ones included — they
    // may come back with the stale copy).
    NodeId source;
    Bytes length = 0;
    std::vector<NodeId> holders;
    for (const auto& [dn, len] : record.reported) {
      if (record.corrupt_replicas.count(dn) > 0) continue;
      holders.push_back(dn);
      if (!source.valid() && is_alive(dn)) {
        source = dn;
        length = len;
      }
    }
    // Nodes with a condemned copy of this block never receive it again
    // (their rot may be media-related) and are useless as sources.
    for (NodeId dn : record.corrupt_replicas) holders.push_back(dn);
    if (!source.valid()) continue;  // nothing to copy from; data loss

    const PlacementContext ctx = make_context(sim_.rng());
    const NodeId target = pick_random_node(ctx, {}, holders, nullptr);
    if (!target.valid()) continue;  // cluster too small right now

    rereplication_pending_[id] = sim_.now() + seconds(60);
    ++rereplications_scheduled_;
    metrics::global_registry().counter("namenode.rereplications").add();
    trace_nn(trace::Category::kRecovery, "re-replicate",
             {{"block", id.to_string()},
              {"source", source.to_string()},
              {"target", target.to_string()}});
    SMARTH_INFO("namenode") << "re-replicating " << id.to_string() << " from "
                            << source.value() << " to " << target.value();
    replication_executor_(
        source, target, id, length, [this, id](bool success) {
          rereplication_pending_.erase(id);
          if (success) ++rereplications_completed_;
          // On failure the next scan retries with fresh liveness data.
        });
  }
}

const FileEntry* Namenode::file(FileId id) const {
  auto it = files_.find(id);
  return it == files_.end() ? nullptr : &it->second;
}

const FileEntry* Namenode::file_by_path(const std::string& path) const {
  auto it = files_by_path_.find(path);
  return it == files_by_path_.end() ? nullptr : file(it->second);
}

const BlockRecord* Namenode::block(BlockId id) const {
  auto it = blocks_.find(id);
  return it == blocks_.end() ? nullptr : &it->second;
}

// ---------------------------------------------------------------------------
// Durability: journaling, fsimage capture/restore, replay, crash/restart
// ---------------------------------------------------------------------------

void Namenode::journal(EditOp op) {
  if (edit_log_ == nullptr || replaying_) return;
  op.at = sim_.now();
  edit_log_->append(std::move(op));
}

NamenodeImage Namenode::capture_image() const {
  NamenodeImage image;
  image.files.reserve(files_.size());
  for (const auto& [id, entry] : files_) image.files.push_back(entry);
  std::sort(image.files.begin(), image.files.end(),
            [](const FileEntry& a, const FileEntry& b) { return a.id < b.id; });
  image.blocks.reserve(blocks_.size());
  for (const auto& [id, record] : blocks_) {
    BlockImage b;
    b.id = record.id;
    b.file = record.file;
    b.expected_targets = record.expected_targets;
    b.corrupt_replicas.assign(record.corrupt_replicas.begin(),
                              record.corrupt_replicas.end());
    image.blocks.push_back(std::move(b));
  }
  std::sort(
      image.blocks.begin(), image.blocks.end(),
      [](const BlockImage& a, const BlockImage& b) { return a.id < b.id; });
  image.leases = leases_.snapshot();
  for (const auto& [file, state] : lease_recoveries_) {
    RecoveryImage r;
    r.file = file;
    r.started_at = state.started_at;
    for (const auto& [block, pending] : state.pending) {
      r.pending.push_back(UcPendingImage{block, pending.retry_at,
                                         pending.attempts});
    }
    image.recoveries.push_back(std::move(r));
  }
  image.file_ids_issued = file_ids_.issued();
  image.block_ids_issued = block_ids_.issued();
  image.lease_expiries = lease_expiries_;
  image.uc_blocks_recovered = uc_blocks_recovered_;
  image.bytes_salvaged = bytes_salvaged_;
  image.orphans_abandoned = orphans_abandoned_;
  return image;
}

void Namenode::restore_image(const NamenodeImage& image) {
  files_.clear();
  files_by_path_.clear();
  blocks_.clear();
  lease_recoveries_.clear();
  for (const FileEntry& entry : image.files) {
    files_by_path_.emplace(entry.path, entry.id);
    files_.emplace(entry.id, entry);
  }
  for (const BlockImage& b : image.blocks) {
    BlockRecord record;
    record.id = b.id;
    record.file = b.file;
    record.expected_targets = b.expected_targets;
    record.corrupt_replicas.insert(b.corrupt_replicas.begin(),
                                   b.corrupt_replicas.end());
    blocks_.emplace(b.id, std::move(record));
  }
  leases_.restore(image.leases);
  for (const RecoveryImage& r : image.recoveries) {
    LeaseRecoveryState state;
    state.started_at = r.started_at;
    for (const UcPendingImage& p : r.pending) {
      state.pending.emplace(p.block,
                            UcBlockPending{p.retry_at, p.attempts});
    }
    lease_recoveries_.emplace(r.file, std::move(state));
  }
  file_ids_.ensure_at_least(image.file_ids_issued);
  block_ids_.ensure_at_least(image.block_ids_issued);
  lease_expiries_ = image.lease_expiries;
  uc_blocks_recovered_ = image.uc_blocks_recovered;
  bytes_salvaged_ = image.bytes_salvaged;
  orphans_abandoned_ = image.orphans_abandoned;
}

void Namenode::apply_edit(const EditOp& op) {
  // Replay is pure state manipulation: the shared mutation helpers called
  // below must not re-journal the ops they were journaled from, and no
  // executor ever fires (commands were already issued by the live run).
  const bool was_replaying = replaying_;
  replaying_ = true;
  switch (op.type) {
    case EditOpType::kLeaseRenew:
      leases_.renew(op.client, op.at);
      break;
    case EditOpType::kCreate: {
      file_ids_.ensure_at_least(op.file.value() + 1);
      FileEntry entry;
      entry.id = op.file;
      entry.path = op.path;
      entry.lease_holder = op.client;
      files_by_path_.insert_or_assign(op.path, op.file);
      files_.emplace(op.file, std::move(entry));
      leases_.add(op.client, op.file, op.at);
      break;
    }
    case EditOpType::kEraseFile:
      erase_file(op.file);
      break;
    case EditOpType::kAddBlock: {
      block_ids_.ensure_at_least(op.block.value() + 1);
      BlockRecord record;
      record.id = op.block;
      record.file = op.file;
      record.expected_targets = op.nodes;
      blocks_.emplace(op.block, std::move(record));
      files_.at(op.file).blocks.push_back(op.block);
      break;
    }
    case EditOpType::kUpdateTargets:
      blocks_.at(op.block).expected_targets = op.nodes;
      break;
    case EditOpType::kCompleteFile:
      files_.at(op.file).state = FileState::kClosed;
      leases_.release(op.client, op.file);
      break;
    case EditOpType::kLeaseRecoveryStart: {
      FileEntry& entry = files_.at(op.file);
      entry.recovering = true;
      ++lease_expiries_;
      leases_.reassign(op.file, op.client, kRecoveryHolder, op.at);
      LeaseRecoveryState state;
      state.started_at = op.at;
      for (BlockId block : op.blocks) {
        state.pending.emplace(block, UcBlockPending{});
      }
      lease_recoveries_.emplace(op.file, std::move(state));
      break;
    }
    case EditOpType::kUcAttempt: {
      UcBlockPending& pending =
          lease_recoveries_.at(op.file).pending.at(op.block);
      ++pending.attempts;
      pending.retry_at = op.at + config_.lease_recovery_retry_interval;
      break;
    }
    case EditOpType::kCommitBlockSync: {
      // Replica locations (`reported`) are volatile and not reconstructed;
      // only the durable outcome — the sealed target set and the salvage
      // accounting — is.
      blocks_.at(op.block).expected_targets = op.nodes;
      lease_recoveries_.at(op.file).pending.erase(op.block);
      ++uc_blocks_recovered_;
      bytes_salvaged_ += op.length;
      break;
    }
    case EditOpType::kTruncateBlocks:
      truncate_file_blocks(op.file, static_cast<std::size_t>(op.index));
      break;
    case EditOpType::kCloseRecovered:
      close_recovered(op.file);
      break;
    case EditOpType::kQuarantine:
      if (auto it = blocks_.find(op.block); it != blocks_.end()) {
        it->second.corrupt_replicas.insert(op.node);
        it->second.reported.erase(op.node);
      }
      break;
  }
  replaying_ = was_replaying;
}

void Namenode::crash() {
  if (crashed_) return;
  crashed_ = true;
  safe_mode_timeout_.cancel();
  if (lease_task_) lease_task_->stop();
  if (rereplication_task_) rereplication_task_->stop();
  metrics::global_registry().counter("namenode.crashes").add();
  trace_nn(trace::Category::kFault, "namenode crash", {});
  SMARTH_WARN("namenode") << "control plane down (crash)";
}

std::size_t Namenode::restart(const NamenodeImage& image,
                              const std::vector<EditOp>& tail) {
  crashed_ = false;
  // The pre-crash registration count doubles as the include-list safe mode
  // waits on: a freshly restored namespace has no closed blocks yet (a young
  // cluster, or a restart mid-first-upload), and without this gate safe mode
  // would exit instantly while most datanodes are still unregistered —
  // handing the first addBlock an artificially tiny cluster. High-water, not
  // last-seen: a crash landing mid-way through the previous outage's
  // re-registration wave must not lower the bar.
  safe_mode_min_datanodes_ =
      std::max(safe_mode_min_datanodes_, datanodes_.size());
  // Volatile state died with the process: registrations, heartbeat clocks,
  // the replica location map (implicit in the restored blocks, which come
  // back with empty `reported`), speed observations, in-flight copy ledger.
  datanodes_.clear();
  last_heartbeat_.clear();
  speeds_ = SpeedBoard{};
  suspicion_ = SuspicionList(config_.suspicion_half_life,
                             config_.suspicion_threshold);
  rereplication_pending_.clear();

  restore_image(image);
  for (const EditOp& op : tail) apply_edit(op);
  // Renewal stamps measured the dead process's clock; a restarted namenode
  // cannot tell a writer that died mid-outage from one whose renewals were
  // lost with the process, so every expiry clock restarts now (as in HDFS,
  // where lease age effectively resets with the namenode).
  leases_.reset_renewals(sim_.now());

  ++restarts_;
  metrics::global_registry().counter("namenode.restarts").add();
  trace_nn(trace::Category::kFault, "namenode restart",
           {{"image_txid", std::to_string(image.last_txid)},
            {"replayed_ops", std::to_string(tail.size())}});
  SMARTH_INFO("namenode") << "restarted from fsimage txid " << image.last_txid
                          << " + " << tail.size() << " replayed ops ("
                          << files_.size() << " files, " << blocks_.size()
                          << " blocks)";

  enter_safe_mode();
  maybe_exit_safe_mode();  // an empty namespace has nothing to wait for
  if (safe_mode_) {
    safe_mode_timeout_.cancel();
    safe_mode_timeout_ =
        sim_.schedule_after(config_.safe_mode_max_wait, [this] {
          if (crashed_ || !safe_mode_ || !safe_mode_auto_) return;
          SMARTH_WARN("namenode")
              << "safe mode timed out at " << safe_blocks_fraction()
              << " replica coverage; exiting with what we have";
          safe_mode_ = false;
          safe_mode_auto_ = false;
          ++safe_mode_exits_;
          last_safe_mode_exit_ = sim_.now();
          trace_nn(trace::Category::kFault, "safe mode timeout-exit", {});
        });
  }
  if (lease_task_ && !lease_task_->running()) lease_task_->start();
  if (rereplication_task_ && !rereplication_task_->running()) {
    rereplication_task_->start();
  }
  return tail.size();
}

void Namenode::enter_safe_mode() {
  safe_mode_ = true;
  safe_mode_auto_ = true;
  ++safe_mode_entries_;
  metrics::global_registry().counter("namenode.safe_mode_entries").add();
  trace_nn(trace::Category::kFault, "safe mode enter", {});
}

double Namenode::safe_blocks_fraction() const {
  std::size_t total = 0;
  std::size_t safe = 0;
  for (const auto& [id, record] : blocks_) {
    const auto ft = files_.find(record.file);
    // Only closed files' blocks gate safe mode (UC blocks are the writer's
    // and lease recovery's business, and their replica counts are in flux).
    if (ft == files_.end() || ft->second.state != FileState::kClosed) continue;
    ++total;
    for (const auto& [dn, len] : record.reported) {
      if (record.corrupt_replicas.count(dn) == 0) {
        ++safe;
        break;
      }
    }
  }
  if (total == 0) return 1.0;
  return static_cast<double>(safe) / static_cast<double>(total);
}

void Namenode::maybe_exit_safe_mode() {
  if (!safe_mode_ || !safe_mode_auto_) return;
  if (datanodes_.size() < safe_mode_min_datanodes_) return;
  const double fraction = safe_blocks_fraction();
  if (fraction + 1e-9 < config_.safe_mode_threshold) return;
  safe_mode_ = false;
  safe_mode_auto_ = false;
  ++safe_mode_exits_;
  last_safe_mode_exit_ = sim_.now();
  safe_mode_timeout_.cancel();
  metrics::global_registry().counter("namenode.safe_mode_exits").add();
  trace_nn(trace::Category::kFault, "safe mode exit",
           {{"fraction", std::to_string(fraction)}});
  SMARTH_INFO("namenode") << "leaving safe mode at " << fraction
                          << " replica coverage";
}

}  // namespace smarth::hdfs
