#include "hdfs/recovery.hpp"

#include <algorithm>
#include <memory>

#include "common/check.hpp"
#include "common/log.hpp"

namespace smarth::hdfs {

void probe_replica_with_timeout(StreamDeps& deps, NodeId client_node,
                                NodeId datanode, BlockId block,
                                std::function<void(ReplicaProbeResult)> cb) {
  Datanode* dn = deps.datanode_resolver(datanode);
  if (dn == nullptr) {
    deps.sim.schedule_now(
        [cb = std::move(cb)] { cb(ReplicaProbeResult{}); });
    return;
  }
  struct State {
    bool settled = false;
    std::function<void(ReplicaProbeResult)> cb;
  };
  auto state = std::make_shared<State>();
  state->cb = std::move(cb);

  deps.rpc.call<ReplicaProbeResult>(
      client_node, datanode,
      [dn, block] { return dn->probe_replica(block); },
      [state](ReplicaProbeResult result) {
        if (state->settled) return;
        state->settled = true;
        state->cb(result);
      });
  deps.sim.schedule_after(deps.config.probe_timeout, [state] {
    if (state->settled) return;
    state->settled = true;
    state->cb(ReplicaProbeResult{});  // alive=false
  });
}

BlockRecovery::BlockRecovery(StreamDeps& deps, ClientId client,
                             NodeId client_node, PipelineId pipeline,
                             BlockId block, Bytes block_bytes,
                             Bytes durable_floor, std::vector<NodeId> targets,
                             int error_index, DoneCallback done)
    : deps_(deps), client_(client), client_node_(client_node),
      pipeline_(pipeline), block_(block), block_bytes_(block_bytes),
      durable_floor_(durable_floor), original_targets_(std::move(targets)),
      error_index_(error_index), done_(std::move(done)) {}

void BlockRecovery::run() {
  SMARTH_INFO("recovery") << "recovering " << block_.to_string() << " ("
                          << original_targets_.size() << " targets, error_index="
                          << error_index_ << ")";
  // Step 1 (Alg. 3 line 2): close all streams related to the block — abort
  // the pipeline at every target. Best effort: dead nodes drop the message.
  for (NodeId target : original_targets_) {
    Datanode* dn = deps_.datanode_resolver(target);
    if (dn == nullptr) continue;
    deps_.rpc.notify(client_node_, target,
                     [dn, p = pipeline_] { dn->abort_pipeline(p); });
  }
  probe_targets();
}

void BlockRecovery::probe_targets() {
  struct Gather {
    std::vector<ReplicaProbeResult> results;
    std::size_t remaining;
  };
  auto gather = std::make_shared<Gather>();
  gather->results.resize(original_targets_.size());
  gather->remaining = original_targets_.size();

  for (std::size_t i = 0; i < original_targets_.size(); ++i) {
    probe_replica_with_timeout(
        deps_, client_node_, original_targets_[i], block_,
        [this, gather, i](ReplicaProbeResult result) {
          gather->results[i] = result;
          if (--gather->remaining == 0) {
            on_probes_done(std::move(gather->results));
          }
        });
  }
}

void BlockRecovery::on_probes_done(std::vector<ReplicaProbeResult> results) {
  alive_.clear();
  dead_.clear();
  for (std::size_t i = 0; i < original_targets_.size(); ++i) {
    const bool checksum_bad = static_cast<int>(i) == error_index_;
    // A replica shorter than the durable floor has lost acked bytes — the
    // node crashed and restarted, dropping the in-progress replica. The
    // client no longer buffers those packets, so such a node cannot resync;
    // it is replaced like a dead one (the durable prefix is re-copied from a
    // healthy survivor).
    const Bytes len = results[i].has_replica ? results[i].bytes : 0;
    const bool stale = results[i].alive && len < durable_floor_;
    if (results[i].alive && !checksum_bad && !stale) {
      alive_.push_back(original_targets_[i]);
    } else {
      dead_.push_back(original_targets_[i]);
      quarantine_node(original_targets_[i],
                      checksum_bad ? "checksum error"
                      : stale      ? "stale replica lost acked bytes"
                                   : "probe unresponsive");
    }
  }
  if (alive_.empty()) {
    fail("no surviving replica for " + block_.to_string());
    return;
  }
  // Survivors double as prefix-transfer primaries (tried in order), so move
  // namenode-suspected gray nodes to the back: seeding a replacement through
  // a throttled NIC can take longer than the outage it repairs. Advisory
  // read of the control plane — a real namenode would ship these hints with
  // getAdditionalDatanodes; excluding nobody keeps the no-healthy-survivor
  // case working.
  const SimTime now = deps_.sim.now();
  std::stable_partition(alive_.begin(), alive_.end(), [this, now](NodeId n) {
    return !deps_.namenode.suspicion().suspect(n, now);
  });
  // Sync point: the minimum durable length among survivors, aligned down to
  // a packet boundary so retransmission can restart at a packet edge.
  Bytes min_len = -1;
  for (std::size_t i = 0; i < original_targets_.size(); ++i) {
    if (std::find(alive_.begin(), alive_.end(), original_targets_[i]) ==
        alive_.end()) {
      continue;
    }
    const Bytes len = results[i].has_replica ? results[i].bytes : 0;
    if (min_len < 0 || len < min_len) min_len = len;
  }
  const Bytes packet = deps_.config.transfer_payload();
  sync_offset_ = (min_len / packet) * packet;
  // Always leave at least the last packet to retransmit: its last_in_block
  // marker is what lets the rebuilt pipeline finalize the replicas.
  const Bytes last_packet_start = ((block_bytes_ - 1) / packet) * packet;
  sync_offset_ = std::min(sync_offset_, last_packet_start);
  truncate_survivors();
}

void BlockRecovery::truncate_survivors() {
  struct Gather {
    std::size_t remaining;
    std::vector<NodeId> failed;
  };
  auto gather = std::make_shared<Gather>();
  gather->remaining = alive_.size();

  auto step_done = [this, gather](NodeId node, bool ok) {
    if (!ok) gather->failed.push_back(node);
    if (--gather->remaining == 0) {
      for (NodeId bad : gather->failed) {
        alive_.erase(std::remove(alive_.begin(), alive_.end(), bad),
                     alive_.end());
        dead_.push_back(bad);
        quarantine_node(bad, "truncate failed");
      }
      if (alive_.empty()) {
        fail("all survivors lost during truncate");
        return;
      }
      request_replacements();
    }
  };

  for (NodeId node : alive_) {
    Datanode* dn = deps_.datanode_resolver(node);
    if (dn == nullptr) {
      deps_.sim.schedule_now([node, step_done] { step_done(node, false); });
      continue;
    }
    struct CallState {
      bool settled = false;
    };
    auto call_state = std::make_shared<CallState>();
    deps_.rpc.call<bool>(
        client_node_, node,
        [dn, block = block_, offset = sync_offset_] {
          return dn->truncate_replica(block, offset).ok();
        },
        [call_state, node, step_done](bool ok) {
          if (call_state->settled) return;
          call_state->settled = true;
          step_done(node, ok);
        });
    deps_.sim.schedule_after(deps_.config.probe_timeout,
                             [call_state, node, step_done] {
                               if (call_state->settled) return;
                               call_state->settled = true;
                               step_done(node, false);
                             });
  }
}

void BlockRecovery::request_replacements() {
  const int needed =
      deps_.config.replication - static_cast<int>(alive_.size());
  if (needed <= 0) {
    finish_success();
    return;
  }
  std::vector<NodeId> excluded = dead_;
  std::vector<NodeId> deprioritized;
  if (deps_.quarantine != nullptr) deprioritized = deps_.quarantine->active();

  rpc::RetryPolicy policy;
  policy.timeout = deps_.config.rpc_timeout;
  policy.max_attempts = deps_.config.rpc_max_attempts;
  policy.backoff_base = deps_.config.rpc_backoff_base;
  policy.backoff_max = deps_.config.rpc_backoff_max;
  policy.jitter = deps_.config.rpc_backoff_jitter;
  rpc::call_with_retry<Result<std::vector<NodeId>>>(
      deps_.rpc, deps_.sim, policy, client_node_, deps_.namenode.node_id(),
      [this, excluded = std::move(excluded),
       deprioritized = std::move(deprioritized), needed] {
        return deps_.namenode.get_additional_datanodes(
            block_, client_, client_node_, alive_, excluded, needed,
            deprioritized);
      },
      [this](Result<std::vector<NodeId>> result) {
        if (!result.ok() || result.value().empty()) {
          // No spare nodes: continue with the reduced pipeline, as HDFS does
          // when the cluster cannot restore replication during a write.
          SMARTH_WARN("recovery")
              << "no replacement datanodes for " << block_.to_string()
              << "; continuing under-replicated";
          finish_success();
          return;
        }
        replacements_ = result.value();
        transfer_prefix(0);
      },
      [this] {
        // Namenode unreachable even after backoff: keep the surviving
        // pipeline rather than killing the write.
        SMARTH_WARN("recovery")
            << "getAdditionalDatanodes timed out for " << block_.to_string()
            << "; continuing under-replicated";
        finish_success();
      },
      nullptr, "getAdditionalDatanodes");
}

void BlockRecovery::transfer_prefix(std::size_t replacement_index) {
  if (replacement_index >= replacements_.size()) {
    finish_success();
    return;
  }
  if (sync_offset_ == 0) {
    // Nothing durable yet; replacements start clean but still need their
    // replica created — the new pipeline setup handles that.
    transfer_prefix(replacement_index + 1);
    return;
  }
  // Alg. 3's primary-datanode loop: try survivors in order until one
  // successfully seeds the replacement. If every primary fails the
  // replacement itself is suspect (e.g. it sits behind a partition): drop it
  // and continue under-replicated — the namenode's re-replication monitor
  // repairs the count later.
  if (attempts_ >= static_cast<int>(alive_.size())) {
    SMARTH_WARN("recovery") << "dropping unreachable replacement for "
                            << block_.to_string();
    attempts_ = 0;
    replacements_.erase(replacements_.begin() +
                        static_cast<std::ptrdiff_t>(replacement_index));
    transfer_prefix(replacement_index);
    return;
  }
  const NodeId primary = alive_[static_cast<std::size_t>(attempts_)];
  Datanode* primary_dn = deps_.datanode_resolver(primary);
  const NodeId dest = replacements_[replacement_index];
  if (primary_dn == nullptr) {
    ++attempts_;
    transfer_prefix(replacement_index);
    return;
  }
  // The copy can be swallowed whole by a partition, so it carries its own
  // deadline; whichever of {response, deadline} settles first wins.
  struct TransferState {
    bool settled = false;
  };
  auto state = std::make_shared<TransferState>();
  auto settle = [this, state, replacement_index](bool ok) {
    if (state->settled) return;
    state->settled = true;
    if (!ok) {
      ++attempts_;
      transfer_prefix(replacement_index);
      return;
    }
    attempts_ = 0;
    transfer_prefix(replacement_index + 1);
  };
  deps_.rpc.call_async<bool>(
      client_node_, primary,
      [primary_dn, block = block_, dest, offset = sync_offset_](
          std::function<void(bool)> respond) {
        primary_dn->transfer_replica(block, dest, offset, std::move(respond));
      },
      [settle](bool ok) { settle(ok); });
  deps_.sim.schedule_after(deps_.config.replacement_transfer_timeout,
                           [settle] { settle(false); });
}

void BlockRecovery::finish_success() {
  SMARTH_CHECK(!completed_);
  completed_ = true;
  RecoveryOutcome outcome;
  outcome.targets = alive_;
  outcome.targets.insert(outcome.targets.end(), replacements_.begin(),
                         replacements_.end());
  outcome.sync_offset = sync_offset_;
  outcome.under_replicated =
      static_cast<int>(outcome.targets.size()) < deps_.config.replication;
  outcome.quarantined = quarantined_;
  Namenode& nn = deps_.namenode;
  deps_.rpc.notify(client_node_, nn.node_id(),
                   [&nn, block = block_, targets = outcome.targets] {
                     (void)nn.update_block_targets(block, targets);
                   });
  SMARTH_INFO("recovery") << block_.to_string() << " recovered: "
                          << outcome.targets.size() << " targets, resume at "
                          << outcome.sync_offset;
  // The done callback may destroy this object; detach it first.
  DoneCallback done = std::move(done_);
  done(std::move(outcome));
}

void BlockRecovery::quarantine_node(NodeId node, const std::string& reason) {
  ++quarantined_;
  if (deps_.quarantine != nullptr) {
    deps_.quarantine->quarantine(node,
                                 reason + " during recovery of " +
                                     block_.to_string());
  }
}

void BlockRecovery::fail(const std::string& reason) {
  SMARTH_CHECK(!completed_);
  completed_ = true;
  SMARTH_ERROR("recovery") << reason;
  DoneCallback done = std::move(done_);
  done(Error{"recovery_failed", reason});
}

}  // namespace smarth::hdfs
