// The DFS client host: identity, create()/complete() control-plane calls and
// the client-side heartbeat that — in SMARTH mode — piggybacks transfer-speed
// records to the namenode every three seconds (paper §III-B).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "common/result.hpp"
#include "hdfs/namenode.hpp"
#include "hdfs/types.hpp"
#include "rpc/retry.hpp"
#include "rpc/rpc_bus.hpp"
#include "sim/periodic_task.hpp"
#include "sim/simulation.hpp"

namespace smarth::hdfs {

class DfsClient {
 public:
  DfsClient(sim::Simulation& sim, rpc::RpcBus& rpc, Namenode& namenode,
            const HdfsConfig& config, ClientId id, NodeId node);
  ~DfsClient();

  ClientId id() const { return id_; }
  NodeId node() const { return node_; }

  /// A rebooted host runs a *fresh* DFS client process. HDFS ties leases to
  /// the client name, so the new process must not renew the dead process's
  /// leases — give it a new identity and let the old leases expire on
  /// schedule (the lease monitor then recovers any files left behind).
  void reincarnate(ClientId id) { id_ = id; }

  /// create() RPC (paper §II step 1): namespace checks then file creation.
  /// Retries with exponential backoff when the namenode is unreachable.
  /// A `recovery_in_progress` answer (previous writer's lease expired, file
  /// being recovered) is retried once per lease-monitor round until the
  /// recovery completes; with `overwrite` the recovered file is then
  /// replaced (writer takeover).
  void create_file(const std::string& path,
                   std::function<void(Result<FileId>)> cb,
                   bool overwrite = false);

  /// Control-plane attempts beyond the first / calls abandoned entirely.
  const rpc::RetryStats& retry_stats() const { return *retry_stats_; }

  /// Starts the periodic heartbeat. `speed_source` (may be null) supplies
  /// the transfer-speed records to piggyback; an empty vector sends a plain
  /// heartbeat.
  void start_heartbeat(
      std::function<std::vector<SpeedRecord>()> speed_source);
  void stop_heartbeat();
  /// Restarts a previously stopped heartbeat (client restart after a crash).
  void resume_heartbeat();
  std::uint64_t heartbeats_sent() const { return heartbeats_sent_; }

 private:
  void create_file_attempt(const std::string& path,
                           std::function<void(Result<FileId>)> cb,
                           bool overwrite, SimTime started_at);

  sim::Simulation& sim_;
  rpc::RpcBus& rpc_;
  Namenode& namenode_;
  const HdfsConfig& config_;
  ClientId id_;
  NodeId node_;
  std::function<std::vector<SpeedRecord>()> speed_source_;
  std::unique_ptr<sim::PeriodicTask> heartbeat_;
  std::uint64_t heartbeats_sent_ = 0;
  std::shared_ptr<rpc::RetryStats> retry_stats_ =
      std::make_shared<rpc::RetryStats>();
};

}  // namespace smarth::hdfs
