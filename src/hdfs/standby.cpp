#include "hdfs/standby.hpp"

#include "common/log.hpp"
#include "hdfs/edit_log.hpp"
#include "sim/periodic_task.hpp"

namespace smarth::hdfs {

StandbyNamenode::StandbyNamenode(sim::Simulation& sim,
                                 const net::Topology& topology,
                                 const HdfsConfig& config, NodeId node,
                                 const EditLog& log)
    : nn_(sim, topology, config, node),
      log_(log),
      tail_interval_(config.standby_tail_interval),
      task_(std::make_unique<sim::PeriodicTask>(sim, tail_interval_,
                                                [this] { catch_up(); })) {}

void StandbyNamenode::bootstrap(const NamenodeImage& image,
                                std::int64_t applied_txid) {
  nn_.restore_image(image);
  applied_txid_ = applied_txid;
}

void StandbyNamenode::start() {
  if (!task_->running()) task_->start();
}

void StandbyNamenode::stop() { task_->stop(); }

void StandbyNamenode::catch_up() {
  const std::size_t before = ops_applied_;
  for (const EditOp& op : log_.tail(applied_txid_)) {
    nn_.apply_edit(op);
    applied_txid_ = op.txid;
    ++ops_applied_;
  }
  if (ops_applied_ != before) {
    SMARTH_DEBUG("standby") << "tailed " << (ops_applied_ - before)
                            << " ops; at txid " << applied_txid_;
  }
}

NamenodeImage StandbyNamenode::image() const {
  NamenodeImage image = nn_.capture_image();
  image.last_txid = applied_txid_;
  return image;
}

}  // namespace smarth::hdfs
