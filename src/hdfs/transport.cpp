#include "hdfs/transport.hpp"

#include "common/check.hpp"

namespace smarth::hdfs {

Transport::Transport(net::Network& network, const HdfsConfig& config,
                     SinkResolver resolver)
    : network_(network), config_(config), resolver_(std::move(resolver)) {
  SMARTH_CHECK(static_cast<bool>(resolver_.packet_sink));
  SMARTH_CHECK(static_cast<bool>(resolver_.ack_sink));
}

void Transport::send_setup(NodeId from, NodeId to, PipelineSetup setup) {
  network_.send(
      from, to, config_.setup_wire,
      [this, to, setup = std::move(setup)] {
        if (PacketSink* sink = resolver_.packet_sink(to)) {
          sink->deliver_setup(setup);
        }
      },
      net::LinkPriority::kControl);
}

void Transport::send_packet(NodeId from, NodeId to, WirePacket packet) {
  // Each pipeline is its own transport flow: bulk fairness on shared links
  // mirrors per-connection TCP sharing.
  const net::FlowKey flow =
      static_cast<net::FlowKey>(packet.pipeline.value()) + 1;
  network_.send(from, to, config_.transfer_wire_size(packet.payload),
                [this, to, packet] {
                  if (PacketSink* sink = resolver_.packet_sink(to)) {
                    sink->deliver_packet(packet);
                  }
                },
                net::LinkPriority::kBulk, flow);
}

void Transport::send_ack_to_datanode(NodeId from, NodeId to, PipelineAck ack) {
  network_.send(
      from, to, config_.ack_wire,
      [this, to, ack] {
        if (PacketSink* sink = resolver_.packet_sink(to)) {
          sink->deliver_downstream_ack(ack);
        }
      },
      net::LinkPriority::kControl);
}

void Transport::send_ack_to_client(NodeId from, NodeId to, PipelineAck ack) {
  network_.send(
      from, to, config_.ack_wire,
      [this, to, ack] {
        if (AckSink* sink = resolver_.ack_sink(to, ack.pipeline)) {
          sink->deliver_ack(ack);
        }
      },
      net::LinkPriority::kControl);
}

void Transport::send_setup_ack_to_datanode(NodeId from, NodeId to,
                                           SetupAck ack) {
  network_.send(
      from, to, config_.ack_wire,
      [this, to, ack] {
        if (PacketSink* sink = resolver_.packet_sink(to)) {
          sink->deliver_downstream_setup_ack(ack);
        }
      },
      net::LinkPriority::kControl);
}

void Transport::send_setup_ack_to_client(NodeId from, NodeId to,
                                         SetupAck ack) {
  network_.send(
      from, to, config_.ack_wire,
      [this, to, ack] {
        if (AckSink* sink = resolver_.ack_sink(to, ack.pipeline)) {
          sink->deliver_setup_ack(ack);
        }
      },
      net::LinkPriority::kControl);
}

void Transport::send_fnfa(NodeId from, NodeId to, FnfaMessage fnfa) {
  network_.send(
      from, to, config_.fnfa_wire,
      [this, to, fnfa] {
        if (AckSink* sink = resolver_.ack_sink(to, fnfa.pipeline)) {
          sink->deliver_fnfa(fnfa);
        }
      },
      net::LinkPriority::kControl);
}

void Transport::send_read_request(NodeId from, NodeId to,
                                  ReadRequest request) {
  network_.send(
      from, to, config_.setup_wire,
      [this, to, request] {
        if (PacketSink* sink = resolver_.packet_sink(to)) {
          sink->deliver_read_request(request);
        }
      },
      net::LinkPriority::kControl);
}

void Transport::send_read_packet(NodeId from, NodeId to, ReadPacket packet) {
  // Error markers are tiny control messages; data packets are bulk.
  const Bytes wire = packet.error ? config_.ack_wire
                                  : config_.transfer_wire_size(packet.payload);
  const auto priority = packet.error ? net::LinkPriority::kControl
                                     : net::LinkPriority::kBulk;
  const net::FlowKey flow =
      (net::FlowKey{1} << 32) + static_cast<net::FlowKey>(packet.read.value());
  network_.send(
      from, to, wire,
      [this, to, packet] {
        if (resolver_.read_sink) {
          if (ReadSink* sink = resolver_.read_sink(to, packet.read)) {
            sink->deliver_read_packet(packet);
          }
        }
      },
      priority, flow);
}

}  // namespace smarth::hdfs
