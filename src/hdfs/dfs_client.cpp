#include "hdfs/dfs_client.hpp"

namespace smarth::hdfs {

DfsClient::DfsClient(sim::Simulation& sim, rpc::RpcBus& rpc,
                     Namenode& namenode, const HdfsConfig& config, ClientId id,
                     NodeId node)
    : sim_(sim), rpc_(rpc), namenode_(namenode), config_(config), id_(id),
      node_(node) {}

DfsClient::~DfsClient() = default;

void DfsClient::create_file(const std::string& path,
                            std::function<void(Result<FileId>)> cb) {
  Namenode& nn = namenode_;
  rpc_.call<Result<FileId>>(
      node_, nn.node_id(),
      [&nn, path, client = id_] { return nn.create(path, client); },
      std::move(cb));
}

void DfsClient::start_heartbeat(
    std::function<std::vector<SpeedRecord>()> speed_source) {
  speed_source_ = std::move(speed_source);
  if (heartbeat_) return;
  heartbeat_ = std::make_unique<sim::PeriodicTask>(
      sim_, config_.heartbeat_interval, [this] {
        ++heartbeats_sent_;
        std::vector<SpeedRecord> records;
        if (speed_source_) records = speed_source_();
        Namenode& nn = namenode_;
        rpc_.notify(node_, nn.node_id(),
                    [&nn, client = id_, records = std::move(records)] {
                      if (!records.empty()) {
                        nn.report_client_speeds(client, records);
                      }
                    });
      });
  const auto jitter = static_cast<SimDuration>(
      sim_.rng().uniform_int(0, config_.heartbeat_interval - 1));
  heartbeat_->start_with_delay(jitter);
}

void DfsClient::stop_heartbeat() {
  if (heartbeat_) heartbeat_->stop();
}

}  // namespace smarth::hdfs
