#include "hdfs/dfs_client.hpp"

namespace smarth::hdfs {

DfsClient::DfsClient(sim::Simulation& sim, rpc::RpcBus& rpc,
                     Namenode& namenode, const HdfsConfig& config, ClientId id,
                     NodeId node)
    : sim_(sim), rpc_(rpc), namenode_(namenode), config_(config), id_(id),
      node_(node) {}

DfsClient::~DfsClient() = default;

void DfsClient::create_file(const std::string& path,
                            std::function<void(Result<FileId>)> cb,
                            bool overwrite) {
  create_file_attempt(path, std::move(cb), overwrite, sim_.now());
}

void DfsClient::create_file_attempt(const std::string& path,
                                    std::function<void(Result<FileId>)> cb,
                                    bool overwrite, SimTime started_at) {
  Namenode& nn = namenode_;
  rpc::RetryPolicy policy;
  policy.timeout = config_.rpc_timeout;
  policy.max_attempts = config_.rpc_max_attempts;
  policy.backoff_base = config_.rpc_backoff_base;
  policy.backoff_max = config_.rpc_backoff_max;
  policy.jitter = config_.rpc_backoff_jitter;
  auto shared_cb =
      std::make_shared<std::function<void(Result<FileId>)>>(std::move(cb));
  rpc::call_with_retry<Result<FileId>>(
      rpc_, sim_, policy, node_, nn.node_id(),
      [&nn, path, client = id_, overwrite] {
        return nn.create(path, client, overwrite);
      },
      [this, shared_cb, path, overwrite, started_at](Result<FileId> result) {
        if (!result.ok()) {
          SimDuration budget = 0;
          SimDuration interval = 0;
          if (result.error().code == "recovery_in_progress") {
            // The previous writer's lease is being recovered; the file will
            // be closed at its consistent prefix within a bounded number of
            // monitor rounds. Wait one round and retry, up to a budget far
            // past the worst-case recovery time.
            budget = config_.lease_hard_limit +
                     config_.lease_recovery_retry_interval *
                         (config_.lease_recovery_max_attempts + 1);
            interval = config_.lease_monitor_interval;
          } else if (result.error().code == "overloaded") {
            // The namenode shed the call even after RPC-level backoff; keep
            // polling at the overload interval under the overload budget,
            // then fail cleanly.
            budget = config_.overload_retry_budget;
            interval = config_.overload_retry_interval;
          }
          const SimDuration waited = sim_.now() - started_at;
          if (budget > 0 && waited < budget) {
            sim_.schedule_after(
                interval, [this, path, shared_cb, overwrite, started_at] {
                  create_file_attempt(
                      path,
                      [shared_cb](Result<FileId> r) {
                        (*shared_cb)(std::move(r));
                      },
                      overwrite, started_at);
                });
            return;
          }
        }
        (*shared_cb)(std::move(result));
      },
      [shared_cb, path] {
        (*shared_cb)(Error{"rpc_timeout",
                           "create(" + path +
                               ") gave up after repeated timeouts"});
      },
      retry_stats_, "create", {rpc::ServiceClass::kMeta},
      [path] {
        return Result<FileId>(
            Error{"overloaded", "namenode shed create(" + path + ")"});
      },
      [](const Result<FileId>& r) {
        return !r.ok() && r.error().code == "overloaded";
      });
}

void DfsClient::start_heartbeat(
    std::function<std::vector<SpeedRecord>()> speed_source) {
  speed_source_ = std::move(speed_source);
  if (heartbeat_) return;
  heartbeat_ = std::make_unique<sim::PeriodicTask>(
      sim_, config_.heartbeat_interval, [this] {
        ++heartbeats_sent_;
        std::vector<SpeedRecord> records;
        if (speed_source_) records = speed_source_();
        Namenode& nn = namenode_;
        // Every heartbeat renews this client's lease on its open files;
        // speed records ride along in SMARTH mode.
        rpc_.notify(node_, nn.node_id(),
                    [&nn, client = id_, records = std::move(records)] {
                      nn.client_heartbeat(client, records);
                    },
                    {rpc::ServiceClass::kHeartbeat});
      });
  const auto jitter = static_cast<SimDuration>(
      sim_.rng().uniform_int(0, config_.heartbeat_interval - 1));
  heartbeat_->start_with_delay(jitter);
}

void DfsClient::resume_heartbeat() {
  if (!heartbeat_ || heartbeat_->running()) return;
  const auto jitter = static_cast<SimDuration>(
      sim_.rng().uniform_int(0, config_.heartbeat_interval - 1));
  heartbeat_->start_with_delay(jitter);
}

void DfsClient::stop_heartbeat() {
  if (heartbeat_) heartbeat_->stop();
}

}  // namespace smarth::hdfs
