#include "hdfs/output_stream.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/log.hpp"
#include "hdfs/recovery.hpp"
#include "trace/metrics_registry.hpp"

namespace smarth::hdfs {

OutputStreamBase::OutputStreamBase(StreamDeps deps, ClientId client,
                                   NodeId client_node, FileId file,
                                   Bytes file_size, DoneCallback on_done)
    : deps_(std::move(deps)), client_(client), client_node_(client_node),
      file_(file), file_size_(file_size), on_done_(std::move(on_done)) {
  SMARTH_CHECK_MSG(file_size_ > 0, "cannot upload an empty file");
  const std::int64_t blocks = total_blocks();
  total_packets_ = 0;
  for (std::int64_t b = 0; b < blocks; ++b) total_packets_ += packets_in_block(b);
  stats_.client = client_;
  stats_.file_size = file_size_;
  stats_.blocks = blocks;
  bytes_acked_counter_ = &metrics::global_registry().counter("client.bytes_acked");
}

OutputStreamBase::~OutputStreamBase() { *alive_ = false; }

void OutputStreamBase::start() {
  stats_.started_at = deps_.sim.now();
  metrics::global_registry().gauge("client.streams_open").add(1.0);
  counted_open_ = true;
  if (trace::active()) {
    upload_span_ = trace::recorder()->begin_span(
        trace::Category::kRun, "client", "upload",
        {{"client", client_.to_string()},
         {"file", file_.to_string()},
         {"bytes", std::to_string(file_size_)},
         {"blocks", std::to_string(total_blocks())}});
  }
  pump_production();
  begin_protocol();
}

std::string OutputStreamBase::trace_track(std::int64_t block_index) {
  return "block " + std::to_string(block_index);
}

void OutputStreamBase::trace_pipeline_ready(ClientPipeline& pipeline) {
  if (!trace::active()) return;
  trace::recorder()->end_span(pipeline.span_setup);
  pipeline.span_stream = trace::recorder()->begin_span(
      trace::Category::kBlock, trace_track(pipeline.block_index), "stream",
      {{"block_index", std::to_string(pipeline.block_index)},
       {"block", pipeline.block.to_string()},
       {"pipeline", pipeline.id.to_string()}});
}

void OutputStreamBase::trace_pipeline_closed(ClientPipeline& pipeline,
                                             const char* outcome) {
  if (!trace::active()) return;
  trace::Args extra = {{"outcome", outcome}};
  trace::recorder()->end_span(pipeline.span_setup, extra);
  trace::recorder()->end_span(pipeline.span_stream, extra);
  trace::recorder()->end_span(pipeline.span_tail, extra);
}

std::int64_t OutputStreamBase::total_blocks() const {
  return (file_size_ + deps_.config.block_size - 1) / deps_.config.block_size;
}

Bytes OutputStreamBase::block_bytes(std::int64_t block_index) const {
  const Bytes start = block_index * deps_.config.block_size;
  SMARTH_DCHECK(start < file_size_);
  return std::min(deps_.config.block_size, file_size_ - start);
}

// Stream geometry is expressed in transfer units (== packets in packet
// fidelity, coalesced multi-packet units in block fidelity); `seq` fields
// index transfer units within a block.
std::int64_t OutputStreamBase::packets_in_block(
    std::int64_t block_index) const {
  const Bytes unit = deps_.config.transfer_payload();
  const Bytes bytes = block_bytes(block_index);
  return (bytes + unit - 1) / unit;
}

Bytes OutputStreamBase::packet_payload(std::int64_t block_index,
                                       std::int64_t seq) const {
  const Bytes unit = deps_.config.transfer_payload();
  const Bytes remaining = block_bytes(block_index) - seq * unit;
  SMARTH_DCHECK(remaining > 0);
  return std::min(unit, remaining);
}

void OutputStreamBase::pump_production() {
  if (!producer_armed_) produce_loop();
}

void OutputStreamBase::produce_loop() {
  if (finished_ || produced_packets_ >= total_packets_ ||
      !production_window_open()) {
    producer_armed_ = false;
    return;
  }
  producer_armed_ = true;
  const SimDuration production_time = deps_.config.transfer_production_time(
      packet_payload(produce_block_, produce_seq_));
  producer_event_ =
      deps_.sim.schedule_after(production_time, "client.produce", [this] {
    if (finished_) {
      producer_armed_ = false;
      return;
    }
    ProducedPacket packet;
    packet.block_index = produce_block_;
    packet.seq_in_block = produce_seq_;
    packet.payload = packet_payload(produce_block_, produce_seq_);
    packet.last_in_block = produce_seq_ + 1 == packets_in_block(produce_block_);
    if (packet.last_in_block) {
      ++produce_block_;
      produce_seq_ = 0;
    } else {
      ++produce_seq_;
    }
    data_queue_.push_back(packet);
    ++produced_packets_;
    ++stats_.packets;
    on_packet_produced();
    producer_armed_ = false;
    produce_loop();
  });
}

rpc::RetryPolicy OutputStreamBase::retry_policy() const {
  rpc::RetryPolicy policy;
  policy.timeout = deps_.config.rpc_timeout;
  policy.max_attempts = deps_.config.rpc_max_attempts;
  policy.backoff_base = deps_.config.rpc_backoff_base;
  policy.backoff_max = deps_.config.rpc_backoff_max;
  policy.jitter = deps_.config.rpc_backoff_jitter;
  return policy;
}

bool OutputStreamBase::start_safe_mode_wait() {
  const SimTime now = deps_.sim.now();
  if (safe_mode_wait_started_ < 0) safe_mode_wait_started_ = now;
  if (now - safe_mode_wait_started_ <= deps_.config.safe_mode_retry_budget) {
    return true;
  }
  SMARTH_ERROR("stream") << "namenode still in safe mode after "
                         << to_seconds(now - safe_mode_wait_started_)
                         << "s; giving up";
  return false;
}

bool OutputStreamBase::start_overload_wait() {
  const SimTime now = deps_.sim.now();
  if (overload_wait_started_ < 0) overload_wait_started_ = now;
  if (now - overload_wait_started_ <= deps_.config.overload_retry_budget) {
    return true;
  }
  SMARTH_ERROR("stream") << "namenode still shedding our calls after "
                         << to_seconds(now - overload_wait_started_)
                         << "s; giving up";
  return false;
}

bool OutputStreamBase::recovery_budget_exhausted(BlockId block) {
  const int attempts = ++recovery_attempts_[block.value()];
  if (attempts <= deps_.config.recovery_attempts_per_block) return false;
  SMARTH_ERROR("stream") << "recovery budget ("
                         << deps_.config.recovery_attempts_per_block
                         << ") exhausted for " << block.to_string();
  return true;
}

void OutputStreamBase::note_recovery_start(PipelineId pipeline) {
  recovery_started_[pipeline] = deps_.sim.now();
  if (trace::active()) {
    const ClientPipeline* p = find_pipeline(pipeline);
    const std::string track =
        p != nullptr ? trace_track(p->block_index) : std::string("client");
    trace::Args args = {{"pipeline", pipeline.to_string()}};
    if (p != nullptr) {
      args.emplace_back("block_index", std::to_string(p->block_index));
      args.emplace_back("block", p->block.to_string());
    }
    recovery_spans_[pipeline] = trace::recorder()->begin_span(
        trace::Category::kRecovery, track, "recovery", std::move(args));
  }
}

void OutputStreamBase::note_recovery_end(PipelineId pipeline) {
  auto it = recovery_started_.find(pipeline);
  if (it == recovery_started_.end()) return;
  const SimDuration took = deps_.sim.now() - it->second;
  stats_.recovery_time_total += took;
  recovery_started_.erase(it);
  metrics::global_registry()
      .histogram("stream.recovery_ns")
      .observe(static_cast<double>(took));
  if (trace::active()) {
    auto span = recovery_spans_.find(pipeline);
    if (span != recovery_spans_.end()) {
      trace::recorder()->end_span(span->second);
      recovery_spans_.erase(span);
    }
  }
}

void OutputStreamBase::request_block(
    std::int64_t block_index, std::vector<NodeId> excluded,
    std::function<void(Result<LocatedBlock>)> cb) {
  Namenode& nn = deps_.namenode;
  std::vector<NodeId> deprioritized;
  if (deps_.quarantine != nullptr) deprioritized = deps_.quarantine->active();
  auto shared_cb =
      std::make_shared<std::function<void(Result<LocatedBlock>)>>(
          std::move(cb));
  trace::SpanHandle alloc_span;
  if (trace::active()) {
    alloc_span = trace::recorder()->begin_span(
        trace::Category::kBlock, trace_track(block_index), "allocate",
        {{"block_index", std::to_string(block_index)},
         {"client", client_.to_string()}});
  }
  // Client-observed addBlock latency (whole retry chain, success or error):
  // the saturation study's headline tail-latency series.
  const SimTime issued_at = deps_.sim.now();
  rpc::call_with_retry<Result<LocatedBlock>>(
      deps_.rpc, deps_.sim, retry_policy(), client_node_, nn.node_id(),
      [&nn, file = file_, client = client_, node = client_node_,
       excluded = std::move(excluded),
       deprioritized = std::move(deprioritized), block_index] {
        return nn.add_block(file, client, node, excluded, deprioritized,
                            block_index);
      },
      [alive = alive_, shared_cb, alloc_span, issued_at,
       &sim = deps_.sim](Result<LocatedBlock> result) mutable {
        metrics::global_registry()
            .histogram("client.addblock_ns")
            .observe(static_cast<double>(sim.now() - issued_at));
        if (trace::active()) {
          trace::recorder()->end_span(
              alloc_span,
              {{"ok", result.ok() ? "true" : "false"},
               {"block",
                result.ok() ? result.value().block.to_string() : ""}});
        }
        if (!*alive) return;  // stream was pruned while the RPC was in flight
        (*shared_cb)(std::move(result));
      },
      [alive = alive_, shared_cb, alloc_span, issued_at,
       &sim = deps_.sim]() mutable {
        metrics::global_registry()
            .histogram("client.addblock_ns")
            .observe(static_cast<double>(sim.now() - issued_at));
        if (trace::active()) {
          trace::recorder()->end_span(alloc_span, {{"ok", "timeout"}});
        }
        if (!*alive) return;
        (*shared_cb)(Error{"rpc_timeout",
                           "addBlock gave up after repeated timeouts"});
      },
      retry_stats_, "addBlock",
      {rpc::ServiceClass::kAddBlock, client_.value()},
      [] {
        return Result<LocatedBlock>(
            Error{"overloaded", "namenode shed addBlock"});
      },
      [](const Result<LocatedBlock>& r) {
        return !r.ok() && r.error().code == "overloaded";
      });
}

ClientPipeline& OutputStreamBase::create_pipeline(std::int64_t block_index,
                                                  const LocatedBlock& located,
                                                  Bytes resume_offset,
                                                  bool smarth_mode) {
  const PipelineId id = deps_.pipeline_ids.next();
  ClientPipeline pipeline;
  pipeline.id = id;
  pipeline.block_index = block_index;
  pipeline.block = located.block;
  pipeline.targets = located.targets;
  pipeline.block_bytes = block_bytes(block_index);
  pipeline.num_packets = packets_in_block(block_index);
  pipeline.resume_offset = resume_offset;
  pipeline.set_resume_packets(resume_offset / deps_.config.transfer_payload());
  pipeline.created_at = deps_.sim.now();

  if (deps_.config.slow_node_eviction) {
    pipeline.ack_baselines.reserve(located.targets.size());
    for (NodeId target : located.targets) {
      ClientPipeline::AckBaseline base;
      if (const auto* hist = metrics::global_registry().find_histogram(
              "datanode." + target.to_string() + ".ack_ns")) {
        const auto stats = hist->stats();
        base.sum = stats.sum();
        base.count = stats.count();
      }
      pipeline.ack_baselines.push_back(base);
    }
  }

  auto [it, inserted] = pipelines_.emplace(id, std::move(pipeline));
  SMARTH_CHECK(inserted);
  safe_mode_wait_started_ = -1;  // allocation landed; safe-mode wait is over
  overload_wait_started_ = -1;   // ...and so is any overload wait
  ++stats_.pipelines_created;
  stats_.max_concurrent_pipelines =
      std::max(stats_.max_concurrent_pipelines,
               static_cast<int>(pipelines_.size()));

  PipelineSetup setup;
  setup.pipeline = id;
  setup.block = located.block;
  setup.targets = located.targets;
  setup.client_node = client_node_;
  setup.client = client_;
  setup.smarth_mode = smarth_mode;
  setup.resume_offset = resume_offset;
  SMARTH_CHECK_MSG(!located.targets.empty(), "pipeline with no targets");
  if (trace::active()) {
    std::string targets;
    for (NodeId t : located.targets) {
      if (!targets.empty()) targets += "+";
      targets += t.to_string();
    }
    it->second.span_setup = trace::recorder()->begin_span(
        trace::Category::kBlock, trace_track(block_index), "setup",
        {{"block_index", std::to_string(block_index)},
         {"block", located.block.to_string()},
         {"pipeline", id.to_string()},
         {"targets", targets},
         {"resume_offset", std::to_string(resume_offset)}});
  }
  deps_.transport.send_setup(client_node_, located.targets[0], setup);
  return it->second;
}

void OutputStreamBase::send_next_packet(ClientPipeline& pipeline) {
  SMARTH_CHECK(!pipeline.pending.empty());
  ProducedPacket produced = pipeline.pending.front();
  pipeline.pending.pop_front();

  WirePacket wire;
  wire.pipeline = pipeline.id;
  wire.block = pipeline.block;
  wire.seq = produced.seq_in_block;
  wire.payload = produced.payload;
  wire.last_in_block = produced.last_in_block;
  if (pipeline.first_packet_sent < 0) {
    pipeline.first_packet_sent = deps_.sim.now();
  }
  deps_.transport.send_packet(client_node_, pipeline.targets[0], wire);
  pipeline.ack_queue.push_back(produced);
  // All of the block's packets are on the wire: the remaining wait is the
  // pipeline draining its ACKs (the tail-ACK phase of the lifecycle).
  if (trace::active() && pipeline.span_stream.valid() &&
      pipeline.pending.empty() &&
      pipeline.acked_packets +
              static_cast<std::int64_t>(pipeline.ack_queue.size()) >=
          pipeline.packets_since_resume()) {
    trace::recorder()->end_span(pipeline.span_stream);
    pipeline.span_tail = trace::recorder()->begin_span(
        trace::Category::kBlock, trace_track(pipeline.block_index), "tail-ack",
        {{"block_index", std::to_string(pipeline.block_index)},
         {"block", pipeline.block.to_string()},
         {"pipeline", pipeline.id.to_string()}});
  }
  arm_watchdog(pipeline);
}

void OutputStreamBase::complete_file() {
  if (finished_) return;
  Namenode& nn = deps_.namenode;
  rpc::call_with_retry<Result<bool>>(
      deps_.rpc, deps_.sim, retry_policy(), client_node_, nn.node_id(),
      [&nn, file = file_, client = client_] {
        return nn.complete(file, client);
      },
      [this, alive = alive_](Result<bool> result) {
        if (!*alive || finished_) return;
        if (!result.ok()) {
          if (result.error().code == "overloaded" && start_overload_wait()) {
            // Shed even after RPC-level backoff: keep polling under the
            // overload budget rather than abandoning a fully-written file.
            complete_retry_ = deps_.sim.schedule_after(
                deps_.config.overload_retry_interval,
                [this] { complete_file(); });
            return;
          }
          finish(true, result.error().to_string());
          return;
        }
        if (result.value()) {
          finish(false, "");
          return;
        }
        // Not all blocks reported yet (blockReceived still in flight):
        // retry, as the Hadoop client does.
        complete_retry_ = deps_.sim.schedule_after(
            milliseconds(300), [this] { complete_file(); });
      },
      [this, alive = alive_] {
        if (!*alive || finished_) return;
        finish(true, "complete() timed out after repeated attempts");
      },
      retry_stats_, "complete", {rpc::ServiceClass::kMeta},
      [] {
        return Result<bool>(Error{"overloaded", "namenode shed complete"});
      },
      [](const Result<bool>& r) {
        return !r.ok() && r.error().code == "overloaded";
      });
}

void OutputStreamBase::finish(bool failed, const std::string& reason) {
  if (finished_) return;
  finished_ = true;
  if (counted_open_) {
    metrics::global_registry().gauge("client.streams_open").add(-1.0);
    counted_open_ = false;
  }
  stats_.finished_at = deps_.sim.now();
  stats_.failed = failed;
  stats_.failure_reason = reason;
  stats_.rpc_retries = retry_stats_->retries;
  stats_.rpc_give_ups = retry_stats_->give_ups;
  producer_event_.cancel();
  complete_retry_.cancel();
  safe_mode_retry_.cancel();
  for (auto& [id, pipeline] : pipelines_) {
    pipeline.watchdog.cancel();
    trace_pipeline_closed(pipeline, failed ? "aborted" : "complete");
  }
  if (trace::active()) {
    for (auto& [id, span] : recovery_spans_) {
      trace::recorder()->end_span(span, {{"outcome", "aborted"}});
    }
    recovery_spans_.clear();
    trace::recorder()->end_span(
        upload_span_, {{"failed", failed ? "true" : "false"},
                       {"reason", reason},
                       {"recoveries", std::to_string(stats_.recoveries)}});
  }
  if (failed) {
    SMARTH_ERROR("stream") << "upload failed: " << reason;
  }
  if (on_done_) on_done_(stats_);
}

void OutputStreamBase::abort(const std::string& reason) {
  finish(true, reason);
}

void OutputStreamBase::arm_watchdog(ClientPipeline& pipeline) {
  pipeline.watchdog.cancel();
  if (finished_ || pipeline.failed) return;
  const PipelineId id = pipeline.id;
  pipeline.watchdog =
      deps_.sim.schedule_after(deps_.config.ack_timeout, [this, id] {
        ClientPipeline* p = find_pipeline(id);
        if (p == nullptr || p->failed || p->complete() || finished_) return;
        // A ready pipeline with nothing outstanding is merely idle; one that
        // never became ready, or has un-acked traffic, has stalled.
        if (p->ready && p->ack_queue.empty() && p->pending.empty()) return;
        SMARTH_WARN("stream") << "ack timeout on pipeline " << id.to_string();
        on_pipeline_error(*p, -1);
      });
}

ClientPipeline* OutputStreamBase::find_pipeline(PipelineId id) {
  auto it = pipelines_.find(id);
  return it == pipelines_.end() ? nullptr : &it->second;
}

int OutputStreamBase::find_slow_pipeline_node(
    const ClientPipeline& pipeline) const {
  if (pipeline.ack_baselines.size() != pipeline.targets.size() ||
      pipeline.targets.size() < 2) {
    return -1;
  }
  // Windowed mean ack latency per member: this pipeline's delta against the
  // creation-time baseline of each node's histogram.
  std::vector<double> means(pipeline.targets.size(), 0.0);
  for (std::size_t i = 0; i < pipeline.targets.size(); ++i) {
    const auto* hist = metrics::global_registry().find_histogram(
        "datanode." + pipeline.targets[i].to_string() + ".ack_ns");
    if (hist == nullptr) return -1;
    const auto stats = hist->stats();
    const auto window_count = stats.count() - pipeline.ack_baselines[i].count;
    if (window_count < deps_.config.eviction_min_samples) return -1;
    means[i] = (stats.sum() - pipeline.ack_baselines[i].sum) /
               static_cast<double>(window_count);
  }
  // A node's ack latency includes the time it waited for its downstream
  // neighbour's ack, so segment i (the difference of adjacent means; the
  // tail's is its raw mean) isolates node i's write + the i -> i+1 hop.
  std::vector<double> own(means.size(), 0.0);
  for (std::size_t i = 0; i + 1 < means.size(); ++i) {
    own[i] = std::max(0.0, means[i] - means[i + 1]);
  }
  own.back() = std::max(0.0, means.back());
  std::vector<double> sorted = own;
  std::sort(sorted.begin(), sorted.end());
  const double median = sorted[sorted.size() / 2];
  if (median <= 0.0) return -1;
  const double bound = deps_.config.eviction_outlier_factor * median;
  std::size_t worst = 0;
  for (std::size_t i = 1; i < own.size(); ++i) {
    if (own[i] > own[worst]) worst = i;
  }
  if (own[worst] <= bound) return -1;
  // Segment `worst` straddles two nodes: node `worst`'s disk/egress and node
  // `worst + 1`'s ingress NIC both land in it (a slow ingress NIC makes the
  // upstream neighbour queue, so the wait is charged upstream). When the next
  // segment is also elevated the shared node (`worst + 1`) is poisoning both
  // — blame it, not its innocent upstream neighbour. The elevation test for
  // that next segment must exclude BOTH implicated segments from its
  // baseline: with replication 3 and a mid-pipeline straggler, two of the
  // three segments are inflated, so the plain median is itself inflated and
  // would mask the culprit.
  if (worst + 1 < own.size()) {
    std::vector<double> rest;
    for (std::size_t i = 0; i < own.size(); ++i) {
      if (i != worst && i != worst + 1) rest.push_back(own[i]);
    }
    if (!rest.empty()) {
      std::sort(rest.begin(), rest.end());
      const double peer_baseline = rest[rest.size() / 2];
      if (peer_baseline > 0.0 &&
          own[worst + 1] >
              deps_.config.eviction_outlier_factor * peer_baseline) {
        return static_cast<int>(worst + 1);
      }
    }
  }
  return static_cast<int>(worst);
}

bool OutputStreamBase::maybe_evict_slow_node(ClientPipeline& pipeline) {
  if (!deps_.config.slow_node_eviction || finished_ || pipeline.failed) {
    return false;
  }
  const SimTime now = deps_.sim.now();
  if (last_eviction_at_ >= 0 &&
      now - last_eviction_at_ < deps_.config.eviction_cooldown) {
    return false;
  }
  const int slow_index = find_slow_pipeline_node(pipeline);
  if (slow_index < 0) return false;
  const NodeId slow = pipeline.targets[static_cast<std::size_t>(slow_index)];
  last_eviction_at_ = now;
  ++stats_.slow_evictions;
  metrics::global_registry().counter("write.slow_evictions").add();
  if (trace::active()) {
    trace::recorder()->instant(
        trace::Category::kRecovery, "stream", "slow node evicted",
        {{"pipeline", pipeline.id.to_string()},
         {"node", slow.to_string()},
         {"index", std::to_string(slow_index)}});
  }
  SMARTH_WARN("stream") << "pipeline " << pipeline.id.to_string()
                        << ": datanode " << slow.to_string()
                        << " is a mid-block straggler; evicting";
  Namenode& nn = deps_.namenode;
  deps_.rpc.notify(client_node_, nn.node_id(),
                   [&nn, slow,
                    weight = deps_.config.suspicion_eviction_weight] {
                     nn.report_slow_datanode(slow, weight);
                   });
  // The straggler rides the normal error path: recovery excludes the node at
  // error_index, splices in a replacement and transfers the prefix.
  on_pipeline_error(pipeline, slow_index);
  return true;
}

// ---------------------------------------------------------------------------
// Baseline HDFS stream
// ---------------------------------------------------------------------------

DfsOutputStream::DfsOutputStream(StreamDeps deps, ClientId client,
                                 NodeId client_node, FileId file,
                                 Bytes file_size, DoneCallback on_done)
    : OutputStreamBase(std::move(deps), client, client_node, file, file_size,
                       std::move(on_done)) {}

bool DfsOutputStream::production_window_open() const {
  // Hadoop caps dataQueue + ackQueue at max_outstanding_packets (expressed
  // here in transfer units).
  std::size_t in_flight = data_queue_.size();
  for (const auto& [id, p] : pipelines_) {
    in_flight += p.pending.size() + p.ack_queue.size();
  }
  return in_flight <
         static_cast<std::size_t>(deps_.config.max_outstanding_transfers());
}

void DfsOutputStream::begin_protocol() { allocate_next_block(); }

void DfsOutputStream::on_packet_produced() { pump_stream(); }

void DfsOutputStream::allocate_next_block() {
  ++current_block_;
  if (current_block_ >= total_blocks()) {
    complete_file();
    return;
  }
  SMARTH_CHECK(!awaiting_block_);
  awaiting_block_ = true;
  request_block(current_block_, {}, [this](Result<LocatedBlock> result) {
    if (finished_) return;
    awaiting_block_ = false;
    if (!result.ok()) {
      if (result.error().code == "safe_mode" && start_safe_mode_wait()) {
        // The namenode is back up but still rebuilding its replica map from
        // block reports; poll until it leaves safe mode (budgeted).
        safe_mode_retry_ = deps_.sim.schedule_after(
            deps_.config.safe_mode_retry_interval, [this] {
              if (finished_) return;
              --current_block_;  // allocate_next_block() re-increments
              allocate_next_block();
            });
        return;
      }
      if (result.error().code == "overloaded" && start_overload_wait()) {
        // Admission control shed the allocation even after RPC backoff;
        // re-poll at the overload cadence under its budget.
        safe_mode_retry_ = deps_.sim.schedule_after(
            deps_.config.overload_retry_interval, [this] {
              if (finished_) return;
              --current_block_;  // allocate_next_block() re-increments
              allocate_next_block();
            });
        return;
      }
      finish(true, "addBlock failed: " + result.error().to_string());
      return;
    }
    SMARTH_DEBUG("stream") << "addBlock -> " << result.value().block.to_string()
                           << " (block index " << current_block_
                           << "); building pipeline";
    ClientPipeline& pipeline =
        create_pipeline(current_block_, result.value(), 0,
                        /*smarth_mode=*/false);
    active_pipeline_ = pipeline.id;
    arm_watchdog(pipeline);
  });
}

void DfsOutputStream::deliver_setup_ack(const SetupAck& ack) {
  ClientPipeline* pipeline = find_pipeline(ack.pipeline);
  if (pipeline == nullptr || finished_) return;
  if (!ack.success) {
    on_pipeline_error(*pipeline, ack.error_index);
    return;
  }
  pipeline->ready = true;
  trace_pipeline_ready(*pipeline);
  arm_watchdog(*pipeline);
  pump_stream();
}

void DfsOutputStream::pump_stream() {
  if (finished_ || recovering_) return;
  ClientPipeline* pipeline = find_pipeline(active_pipeline_);
  if (pipeline == nullptr || !pipeline->ready || pipeline->failed) return;

  // Window: Hadoop keeps at most max_outstanding_packets un-acked.
  auto window_open = [&] {
    return pipeline->ack_queue.size() <
           static_cast<std::size_t>(deps_.config.max_outstanding_transfers());
  };
  while (window_open()) {
    if (!pipeline->pending.empty()) {
      send_next_packet(*pipeline);
      continue;
    }
    if (!data_queue_.empty() &&
        data_queue_.front().block_index == current_block_) {
      pipeline->pending.push_back(data_queue_.front());
      data_queue_.pop_front();
      send_next_packet(*pipeline);
      continue;
    }
    break;
  }
  pump_production();
}

void DfsOutputStream::deliver_ack(const PipelineAck& ack) {
  if (finished_) return;
  ClientPipeline* pipeline = find_pipeline(ack.pipeline);
  if (pipeline == nullptr || pipeline->failed) return;
  if (ack.status != AckStatus::kSuccess) {
    on_pipeline_error(*pipeline, ack.error_index);
    return;
  }
  if (pipeline->ack_queue.empty() ||
      pipeline->ack_queue.front().seq_in_block != ack.seq) {
    // An ack ahead of the queue head means an earlier ack was lost in
    // transit (a link flap or crash swallowed it): the ack stream is broken,
    // which is a pipeline error, not a protocol violation. Acks behind the
    // head are stale duplicates and are dropped.
    if (!pipeline->ack_queue.empty() &&
        ack.seq > pipeline->ack_queue.front().seq_in_block) {
      SMARTH_WARN("stream") << "ack gap on pipeline "
                            << ack.pipeline.to_string() << ": got seq "
                            << ack.seq << ", expected "
                            << pipeline->ack_queue.front().seq_in_block;
      on_pipeline_error(*pipeline, -1);
    }
    return;
  }
  bytes_acked_counter_->add(
      static_cast<std::uint64_t>(pipeline->ack_queue.front().payload));
  pipeline->ack_queue.pop_front();
  ++pipeline->acked_packets;
  arm_watchdog(*pipeline);
  if (pipeline->complete()) {
    pipeline->watchdog.cancel();
    on_block_fully_acked();
    return;
  }
  if (maybe_evict_slow_node(*pipeline)) return;
  pump_stream();
}

void DfsOutputStream::deliver_fnfa(const FnfaMessage& fnfa) {
  // The baseline protocol has no FNFA; a stray one indicates mis-wiring.
  SMARTH_WARN("stream") << "unexpected FNFA on baseline stream for "
                        << fnfa.block.to_string();
}

void DfsOutputStream::on_block_fully_acked() {
  SMARTH_DEBUG("stream") << "block index " << current_block_
                         << " fully acked; stop-and-wait advances";
  if (ClientPipeline* p = find_pipeline(active_pipeline_)) {
    trace_pipeline_closed(*p, "complete");
  }
  pipelines_.erase(active_pipeline_);
  active_pipeline_ = PipelineId{};
  allocate_next_block();
  pump_production();
}

void DfsOutputStream::on_pipeline_error(ClientPipeline& pipeline,
                                        int error_index) {
  if (recovering_ || finished_) return;
  if (recovery_budget_exhausted(pipeline.block)) {
    finish(true, "recovery budget exhausted for " +
                     pipeline.block.to_string());
    return;
  }
  recovering_ = true;
  ++stats_.recoveries;
  trace_pipeline_closed(pipeline, "error");
  note_recovery_start(pipeline.id);
  pipeline.failed = true;
  pipeline.watchdog.cancel();
  // Alg. 3 line 3: ACK queue back to the (pipeline-local) resend queue.
  pipeline.pending.insert(pipeline.pending.begin(),
                          pipeline.ack_queue.begin(),
                          pipeline.ack_queue.end());
  pipeline.ack_queue.clear();

  // Everything before the first un-acked packet is gone from the client's
  // resend buffer; recovery must not sync survivors below that offset.
  const Bytes durable_floor =
      pipeline.pending.empty()
          ? Bytes{0}
          : pipeline.pending.front().seq_in_block *
                deps_.config.transfer_payload();
  auto recovery = std::make_unique<BlockRecovery>(
      deps_, client_, client_node_, pipeline.id, pipeline.block,
      pipeline.block_bytes, durable_floor, pipeline.targets, error_index,
      [this, id = pipeline.id](Result<RecoveryOutcome> result) {
        if (finished_) return;  // aborted (writer crash) mid-recovery
        ClientPipeline* old_pipeline = find_pipeline(id);
        SMARTH_CHECK(old_pipeline != nullptr);
        note_recovery_end(id);
        if (!result.ok()) {
          finish(true, result.error().to_string());
          return;
        }
        stats_.quarantine_events += result.value().quarantined;
        if (result.value().under_replicated) {
          ++stats_.under_replication_events;
        }
        resume_after_recovery(*old_pipeline, result.value().targets,
                              result.value().sync_offset);
      });
  BlockRecovery* raw = recovery.get();
  recoveries_.push_back(std::move(recovery));
  raw->run();
}

void DfsOutputStream::resume_after_recovery(ClientPipeline& old_pipeline,
                                            std::vector<NodeId> targets,
                                            Bytes sync_offset) {
  const std::int64_t resume_packets =
      sync_offset / deps_.config.transfer_payload();
  // Packets already durable everywhere are dropped from the resend queue.
  std::deque<ProducedPacket> pending = std::move(old_pipeline.pending);
  while (!pending.empty() &&
         pending.front().seq_in_block < resume_packets) {
    pending.pop_front();
  }
  const std::int64_t block_index = old_pipeline.block_index;
  LocatedBlock located{old_pipeline.block, std::move(targets)};
  pipelines_.erase(old_pipeline.id);

  ClientPipeline& fresh =
      create_pipeline(block_index, located, sync_offset, /*smarth_mode=*/false);
  fresh.pending = std::move(pending);
  active_pipeline_ = fresh.id;
  recovering_ = false;
  arm_watchdog(fresh);
  // Streaming resumes when the new setup ack arrives (deliver_setup_ack).
}

}  // namespace smarth::hdfs
