#include "hdfs/input_stream.hpp"

#include "common/check.hpp"
#include "common/log.hpp"
#include "trace/metrics_registry.hpp"
#include "trace/trace_recorder.hpp"

namespace smarth::hdfs {

DfsInputStream::DfsInputStream(Deps deps, ClientId client, NodeId client_node,
                               std::string path, DoneCallback on_done)
    : deps_(std::move(deps)), client_(client), client_node_(client_node),
      path_(std::move(path)), on_done_(std::move(on_done)) {
  stats_.client = client_;
  stats_.path = path_;
}

DfsInputStream::~DfsInputStream() {
  watchdog_.cancel();
  *alive_ = false;
}

void DfsInputStream::start() {
  stats_.started_at = deps_.sim.now();
  if (trace::active()) {
    read_span_ = trace::recorder()->begin_span(
        trace::Category::kRead, "read", "read " + path_,
        {{"client", std::to_string(client_.value())}, {"path", path_}});
  }
  fetch_locations();
}

void DfsInputStream::fetch_locations() {
  Namenode& nn = deps_.namenode;
  deps_.rpc.call<Result<std::vector<LocatedBlock>>>(
      client_node_, nn.node_id(),
      [&nn, path = path_, reader = client_node_] {
        return nn.get_block_locations(path, reader);
      },
      [this, alive = alive_](Result<std::vector<LocatedBlock>> result) {
        if (!*alive || finished_) return;
        if (!result.ok()) {
          finish(true, "getBlockLocations failed: " +
                           result.error().to_string());
          return;
        }
        blocks_ = result.value();
        block_sizes_.clear();
        for (const LocatedBlock& block : blocks_) {
          block_sizes_.push_back(block.length);
        }
        stats_.blocks = static_cast<std::int64_t>(blocks_.size());
        if (blocks_.empty()) {
          finish(true, "file has no blocks: " + path_);
          return;
        }
        start_block(0);
      });
}

void DfsInputStream::start_block(std::size_t block_index) {
  if (block_index >= blocks_.size()) {
    finish(false, "");
    return;
  }
  current_block_ = block_index;
  block_bytes_received_ = 0;
  expected_seq_ = 0;
  failed_replicas_.clear();
  checksum_failed_replicas_.clear();
  request_from_replica();
}

void DfsInputStream::request_from_replica() {
  const LocatedBlock& block = blocks_[current_block_];
  if (block.targets.empty() && block.all_replicas_corrupt) {
    // The namenode already quarantined every known replica: fail fast with
    // the distinct integrity error rather than a liveness timeout.
    finish(true, "all_replicas_corrupt: no uncorrupted replica of " +
                     block.block.to_string());
    return;
  }
  // Replicas arrive distance-sorted from the namenode; take the first one
  // not yet marked bad for this block.
  current_replica_ = NodeId{};
  for (NodeId replica : block.targets) {
    if (failed_replicas_.find(replica.value()) == failed_replicas_.end()) {
      current_replica_ = replica;
      break;
    }
  }
  if (!current_replica_.valid()) {
    if (!failed_replicas_.empty() &&
        checksum_failed_replicas_.size() == failed_replicas_.size()) {
      // Every replica we tried was rotted — a pure integrity failure, not a
      // liveness one. Surface it distinctly and never retry in a loop: the
      // namenode has been told about each bad copy already.
      finish(true, "all_replicas_corrupt: every replica of " +
                       block.block.to_string() +
                       " failed checksum verification");
      return;
    }
    finish(true, "no live replica left for " + block.block.to_string());
    return;
  }
  current_read_ = deps_.read_ids.next();
  expected_seq_ = 0;
  ReadRequest request;
  request.read = current_read_;
  request.block = block.block;
  request.offset = block_bytes_received_;  // resume after a failover
  request.length = block_sizes_[current_block_] - block_bytes_received_;
  request.reader_node = client_node_;
  if (trace::active()) {
    block_span_ = trace::recorder()->begin_span(
        trace::Category::kRead, "read",
        "block " + std::to_string(current_block_) + " from " +
            current_replica_.to_string(),
        {{"block", block.block.to_string()},
         {"replica", current_replica_.to_string()},
         {"offset", std::to_string(block_bytes_received_)}});
  }
  deps_.transport.send_read_request(client_node_, current_replica_, request);
  arm_watchdog();
}

void DfsInputStream::deliver_read_packet(const ReadPacket& packet) {
  if (finished_ || packet.read != current_read_) return;
  if (packet.corrupt) {
    on_replica_corrupt();
    return;
  }
  if (packet.error) {
    on_replica_failed("replica refused read");
    return;
  }
  SMARTH_CHECK_MSG(packet.seq == expected_seq_,
                   "out-of-order read packet: got " << packet.seq
                                                    << " want "
                                                    << expected_seq_);
  ++expected_seq_;
  block_bytes_received_ += packet.payload;
  stats_.bytes_read += packet.payload;
  arm_watchdog();
  if (packet.last) {
    SMARTH_CHECK_MSG(block_bytes_received_ == block_sizes_[current_block_],
                     "short read: " << block_bytes_received_ << " of "
                                    << block_sizes_[current_block_]);
    on_block_done();
  }
}

void DfsInputStream::on_block_done() {
  watchdog_.cancel();
  if (trace::active()) {
    trace::recorder()->end_span(block_span_, {{"outcome", "ok"}});
  }
  start_block(current_block_ + 1);
}

void DfsInputStream::on_replica_corrupt() {
  if (finished_) return;
  ++stats_.checksum_mismatches;
  metrics::global_registry().counter("read.checksum_mismatches").add();
  if (trace::active()) {
    trace::recorder()->instant(
        trace::Category::kRead, "read", "replica corrupt",
        {{"block", blocks_[current_block_].block.to_string()},
         {"replica", current_replica_.to_string()}});
  }
  checksum_failed_replicas_.insert(current_replica_.value());
  // Tell the namenode so it quarantines + invalidates the replica and queues
  // the block for re-replication from a good copy (HDFS reportBadBlocks).
  ++stats_.bad_replica_reports;
  Namenode& nn = deps_.namenode;
  deps_.rpc.notify(client_node_, nn.node_id(),
                   [&nn, block = blocks_[current_block_].block,
                    node = current_replica_] {
                     nn.report_bad_replica(block, node);
                   });
  on_replica_failed("checksum mismatch from " + current_replica_.to_string());
}

void DfsInputStream::on_replica_failed(const std::string& reason) {
  if (finished_) return;
  SMARTH_WARN("read") << path_ << " block " << current_block_ << ": "
                      << reason << "; failing over";
  ++stats_.failovers;
  metrics::global_registry().counter("read.failovers").add();
  if (trace::active()) {
    trace::recorder()->end_span(block_span_,
                                {{"outcome", "failover"}, {"reason", reason}});
  }
  failed_replicas_.insert(current_replica_.value());
  request_from_replica();
}

void DfsInputStream::arm_watchdog() {
  watchdog_.cancel();
  if (finished_) return;
  watchdog_ = deps_.sim.schedule_after(deps_.config.ack_timeout, [this] {
    if (finished_) return;
    on_replica_failed("read timed out");
  });
}

void DfsInputStream::finish(bool failed, const std::string& reason) {
  if (finished_) return;
  finished_ = true;
  watchdog_.cancel();
  stats_.finished_at = deps_.sim.now();
  stats_.failed = failed;
  stats_.failure_reason = reason;
  if (trace::active()) {
    if (failed) {
      trace::recorder()->end_span(block_span_, {{"outcome", "failed"}});
    }
    trace::recorder()->end_span(
        read_span_, {{"failed", failed ? "true" : "false"},
                     {"reason", reason},
                     {"bytes", std::to_string(stats_.bytes_read)}});
  }
  if (failed) {
    SMARTH_ERROR("read") << path_ << " failed: " << reason;
  }
  if (on_done_) on_done_(stats_);
}

}  // namespace smarth::hdfs
