#include "hdfs/input_stream.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/log.hpp"
#include "hdfs/datanode.hpp"
#include "trace/metrics_registry.hpp"
#include "trace/trace_recorder.hpp"

namespace smarth::hdfs {

DfsInputStream::DfsInputStream(Deps deps, ClientId client, NodeId client_node,
                               std::string path, DoneCallback on_done)
    : deps_(std::move(deps)), client_(client), client_node_(client_node),
      path_(std::move(path)), on_done_(std::move(on_done)) {
  stats_.client = client_;
  stats_.path = path_;
}

DfsInputStream::~DfsInputStream() {
  watchdog_.cancel();
  hedge_timer_.cancel();
  cold_start_deadline_.cancel();
  *alive_ = false;
}

void DfsInputStream::start() {
  stats_.started_at = deps_.sim.now();
  metrics::global_registry().gauge("client.reads_open").add(1.0);
  if (trace::active()) {
    read_span_ = trace::recorder()->begin_span(
        trace::Category::kRead, "read", "read " + path_,
        {{"client", std::to_string(client_.value())}, {"path", path_}});
  }
  fetch_locations();
}

void DfsInputStream::fetch_locations() {
  Namenode& nn = deps_.namenode;
  deps_.rpc.call<Result<std::vector<LocatedBlock>>>(
      client_node_, nn.node_id(),
      [&nn, path = path_, reader = client_node_] {
        return nn.get_block_locations(path, reader);
      },
      [this, alive = alive_](Result<std::vector<LocatedBlock>> result) {
        if (!*alive || finished_) return;
        if (!result.ok()) {
          finish(true, "getBlockLocations failed: " +
                           result.error().to_string());
          return;
        }
        blocks_ = result.value();
        block_sizes_.clear();
        for (const LocatedBlock& block : blocks_) {
          block_sizes_.push_back(block.length);
        }
        stats_.blocks = static_cast<std::int64_t>(blocks_.size());
        if (blocks_.empty()) {
          finish(true, "file has no blocks: " + path_);
          return;
        }
        start_block(0);
      });
}

void DfsInputStream::start_block(std::size_t block_index) {
  if (block_index >= blocks_.size()) {
    finish(false, "");
    return;
  }
  current_block_ = block_index;
  block_bytes_received_ = 0;
  primary_.reset();
  hedge_.reset();
  failed_replicas_.clear();
  checksum_failed_replicas_.clear();
  request_from_replica();
}

void DfsInputStream::request_from_replica() {
  const LocatedBlock& block = blocks_[current_block_];
  if (block.targets.empty() && block.all_replicas_corrupt) {
    // The namenode already quarantined every known replica: fail fast with
    // the distinct integrity error rather than a liveness timeout.
    finish(true, "all_replicas_corrupt: no uncorrupted replica of " +
                     block.block.to_string());
    return;
  }
  // Replicas arrive distance-sorted from the namenode; take the first one
  // not yet marked bad for this block, preferring replicas that have not
  // lost a hedge race during this read.
  NodeId pick;
  for (NodeId replica : block.targets) {
    if (failed_replicas_.count(replica.value()) != 0) continue;
    if (slow_replicas_.count(replica.value()) != 0) continue;
    pick = replica;
    break;
  }
  if (!pick.valid()) {
    for (NodeId replica : block.targets) {
      if (failed_replicas_.count(replica.value()) != 0) continue;
      pick = replica;
      break;
    }
  }
  if (!pick.valid()) {
    if (!failed_replicas_.empty() &&
        checksum_failed_replicas_.size() == failed_replicas_.size()) {
      // Every replica we tried was rotted — a pure integrity failure, not a
      // liveness one. Surface it distinctly and never retry in a loop: the
      // namenode has been told about each bad copy already.
      finish(true, "all_replicas_corrupt: every replica of " +
                       block.block.to_string() +
                       " failed checksum verification");
      return;
    }
    finish(true, "no live replica left for " + block.block.to_string());
    return;
  }
  if (trace::active()) {
    block_span_ = trace::recorder()->begin_span(
        trace::Category::kRead, "read",
        "block " + std::to_string(current_block_) + " from " +
            pick.to_string(),
        {{"block", block.block.to_string()},
         {"replica", pick.to_string()},
         {"offset", std::to_string(block_bytes_received_)}});
  }
  SMARTH_DEBUG("read") << path_ << " block " << current_block_
                       << ": reading from " << pick.to_string() << " at "
                       << block_bytes_received_;
  send_attempt(primary_, pick);
  arm_watchdog();
  arm_hedge_timer();
  arm_cold_start_deadline();
}

void DfsInputStream::arm_cold_start_deadline() {
  cold_start_deadline_.cancel();
  if (finished_ || !deps_.config.hedged_reads || hedge_.active()) return;
  const auto* gaps = metrics::global_registry().find_histogram("read.gap_ns");
  if (gaps != nullptr && gaps->count() >= deps_.config.hedge_min_samples) {
    return;  // warm: the pace trigger owns slowness detection now
  }
  cold_start_deadline_ =
      deps_.sim.schedule_after(deps_.config.hedge_static_threshold, [this] {
        if (finished_) return;
        launch_hedge("cold start");
      });
}

void DfsInputStream::send_attempt(ReadAttempt& attempt, NodeId replica) {
  attempt.read = deps_.read_ids.next();
  attempt.replica = replica;
  attempt.start_offset = block_bytes_received_;
  attempt.bytes = 0;
  attempt.expected_seq = 0;
  ReadRequest request;
  request.read = attempt.read;
  request.block = blocks_[current_block_].block;
  request.offset = attempt.start_offset;  // resume after failover / hedge
  request.length = block_sizes_[current_block_] - attempt.start_offset;
  request.reader_node = client_node_;
  deps_.transport.send_read_request(client_node_, replica, request);
}

SimDuration DfsInputStream::hedge_threshold(NodeId replica) const {
  const auto* hist = metrics::global_registry().find_histogram(
      "datanode." + replica.to_string() + ".ack_ns");
  if (hist != nullptr && hist->count() >= deps_.config.hedge_min_samples) {
    const double p95 = hist->quantile(0.95);
    const auto derived = static_cast<SimDuration>(
        p95 * deps_.config.hedge_timer_multiplier);
    if (derived > 0) return derived;
  }
  return deps_.config.hedge_static_threshold;
}

void DfsInputStream::arm_hedge_timer() {
  hedge_timer_.cancel();
  if (finished_ || !deps_.config.hedged_reads || hedge_.active()) return;
  hedge_timer_ = deps_.sim.schedule_after(hedge_threshold(primary_.replica),
                                          [this] {
                                            if (finished_) return;
                                            on_hedge_timer();
                                          });
}

NodeId DfsInputStream::pick_hedge_replica(NodeId avoid) const {
  const LocatedBlock& block = blocks_[current_block_];
  NodeId fallback;
  for (NodeId replica : block.targets) {
    if (replica == avoid) continue;
    if (failed_replicas_.count(replica.value()) != 0) continue;
    if (slow_replicas_.count(replica.value()) != 0) {
      if (!fallback.valid()) fallback = replica;
      continue;
    }
    return replica;
  }
  return fallback;
}

void DfsInputStream::set_hedges_in_flight(int delta) {
  auto& gauge = metrics::global_registry().gauge("read.hedges_in_flight");
  gauge.set(gauge.value() + delta);
}

void DfsInputStream::on_hedge_timer() { launch_hedge("stalled"); }

void DfsInputStream::maybe_hedge_on_pace() {
  if (finished_ || !deps_.config.hedged_reads || hedge_.active() ||
      !primary_.active()) {
    return;
  }
  // Enough gaps from this attempt to call its pace a pattern?
  if (primary_.packets <=
      static_cast<std::int64_t>(deps_.config.hedge_min_samples)) {
    return;
  }
  const auto* gaps =
      metrics::global_registry().find_histogram("read.gap_ns");
  if (gaps == nullptr || gaps->count() < deps_.config.hedge_min_samples) {
    return;
  }
  // Lower quartile: with one gray node among many, most recorded gaps are
  // healthy, so p25 stays a healthy baseline even though the slow replica's
  // own gaps land in the same histogram.
  const double baseline = gaps->quantile(0.25);
  if (baseline <= 0.0) return;
  if (primary_.mean_gap() > deps_.config.hedge_pace_factor * baseline) {
    launch_hedge("slow pace");
  }
}

void DfsInputStream::launch_hedge(const char* why) {
  if (finished_ || hedge_.active() || !primary_.active()) return;
  auto& registry = metrics::global_registry();
  const auto in_flight =
      static_cast<int>(registry.gauge("read.hedges_in_flight").value());
  NodeId replica = pick_hedge_replica(primary_.replica);
  if (hedges_this_read_ >= deps_.config.hedge_per_read_cap ||
      in_flight >= deps_.config.hedge_max_in_flight || !replica.valid()) {
    ++stats_.hedges_denied;
    registry.counter("read.hedges_denied").add();
    // Budget exhausted (or no second replica): the watchdog remains the only
    // defense for this block. Do not re-arm — re-arming would spin the timer.
    return;
  }
  ++stats_.hedged_reads;
  ++hedges_this_read_;
  registry.counter("read.hedges").add();
  set_hedges_in_flight(+1);
  if (trace::active()) {
    trace::recorder()->instant(
        trace::Category::kRead, "read", "hedge launched",
        {{"block", blocks_[current_block_].block.to_string()},
         {"slow", primary_.replica.to_string()},
         {"hedge", replica.to_string()},
         {"why", why},
         {"offset", std::to_string(block_bytes_received_)}});
  }
  SMARTH_INFO("read") << path_ << " block " << current_block_ << ": "
                      << primary_.replica.to_string() << " " << why
                      << "; hedging to " << replica.to_string();
  cold_start_deadline_.cancel();
  send_attempt(hedge_, replica);
}

void DfsInputStream::cancel_attempt(ReadAttempt& attempt, bool lost_race) {
  if (!attempt.active()) return;
  if (lost_race && deps_.resolve_datanode) {
    if (Datanode* dn = deps_.resolve_datanode(attempt.replica)) {
      deps_.rpc.notify(client_node_, attempt.replica,
                       [dn, read = attempt.read] { dn->cancel_read(read); });
    }
  }
  if (&attempt == &hedge_) set_hedges_in_flight(-1);
  attempt.reset();
}

void DfsInputStream::deliver_read_packet(const ReadPacket& packet) {
  if (finished_) return;
  ReadAttempt* attempt = nullptr;
  if (primary_.active() && packet.read == primary_.read) {
    attempt = &primary_;
  } else if (hedge_.active() && packet.read == hedge_.read) {
    attempt = &hedge_;
  }
  if (attempt == nullptr) return;  // late packet from a cancelled attempt
  if (packet.corrupt) {
    on_attempt_corrupt(*attempt);
    return;
  }
  if (packet.error) {
    on_attempt_failed(*attempt, "replica refused read");
    return;
  }
  SMARTH_CHECK_MSG(packet.seq == attempt->expected_seq,
                   "out-of-order read packet: got " << packet.seq << " want "
                                                    << attempt->expected_seq);
  ++attempt->expected_seq;
  attempt->bytes += packet.payload;
  // Packet-gap pacing: every observed gap feeds the cluster-wide baseline
  // histogram, and the attempt keeps enough to compute its own mean gap.
  const SimTime arrival = deps_.sim.now();
  if (attempt->packets == 0) {
    attempt->first_packet_at = arrival;
  } else if (deps_.config.hedged_reads) {
    metrics::global_registry()
        .histogram("read.gap_ns")
        .observe(static_cast<double>(arrival - attempt->last_packet_at));
  }
  attempt->last_packet_at = arrival;
  ++attempt->packets;
  // Watermark accounting: a hedge race delivers overlapping byte ranges, but
  // the application-visible read advances only when the high-water mark does.
  const Bytes progress = attempt->progress();
  if (progress > block_bytes_received_) {
    stats_.bytes_read += progress - block_bytes_received_;
    block_bytes_received_ = progress;
  } else {
    stats_.hedge_wasted_bytes += packet.payload;
    metrics::global_registry()
        .counter("read.hedge_wasted_bytes")
        .add(static_cast<std::uint64_t>(packet.payload));
  }
  arm_watchdog();
  arm_hedge_timer();
  if (packet.last) {
    SMARTH_CHECK_MSG(attempt->progress() == block_sizes_[current_block_],
                     "short read: " << attempt->progress() << " of "
                                    << block_sizes_[current_block_]);
    on_attempt_won(*attempt);
    return;
  }
  if (attempt == &primary_) maybe_hedge_on_pace();
}

void DfsInputStream::on_attempt_won(ReadAttempt& winner) {
  const bool hedge_won = &winner == &hedge_;
  ReadAttempt& loser = hedge_won ? primary_ : hedge_;
  if (hedge_won) {
    ++stats_.hedge_wins;
    metrics::global_registry().counter("read.hedge_wins").add();
    // A hedge launched mid-block starts at the watermark with less left to
    // stream, so finishing first alone is not gray evidence — a cold-start
    // hedge against a healthy primary "wins" too. Only a loser that was also
    // pacing decisively slower than the winner gets reported and avoided.
    const double loser_gap = loser.mean_gap();
    const double winner_gap = winner.mean_gap();
    const bool decisive =
        loser_gap > 0.0 && winner_gap > 0.0 &&
        loser_gap > deps_.config.hedge_pace_factor * winner_gap;
    if (decisive) {
      slow_replicas_.insert(loser.replica.value());
      Namenode& nn = deps_.namenode;
      deps_.rpc.notify(client_node_, nn.node_id(),
                       [&nn, node = loser.replica,
                        weight = deps_.config.suspicion_hedge_weight] {
                         nn.report_slow_datanode(node, weight);
                       });
    }
    if (trace::active()) {
      trace::recorder()->instant(
          trace::Category::kRead, "read", "hedge won",
          {{"block", blocks_[current_block_].block.to_string()},
           {"slow", loser.replica.to_string()},
           {"hedge", winner.replica.to_string()},
           {"decisive", decisive ? "true" : "false"}});
    }
  }
  cancel_attempt(loser, /*lost_race=*/true);
  if (hedge_won) {
    // The winner occupied the hedge slot; release it and clear the attempt,
    // or finish() would settle the already-complete hedge a second time when
    // this was the file's last block.
    set_hedges_in_flight(-1);
    hedge_.reset();
  }
  on_block_done();
}

void DfsInputStream::on_block_done() {
  watchdog_.cancel();
  hedge_timer_.cancel();
  cold_start_deadline_.cancel();
  if (trace::active()) {
    trace::recorder()->end_span(block_span_, {{"outcome", "ok"}});
  }
  start_block(current_block_ + 1);
}

void DfsInputStream::on_attempt_corrupt(ReadAttempt& attempt) {
  if (finished_) return;
  ++stats_.checksum_mismatches;
  metrics::global_registry().counter("read.checksum_mismatches").add();
  if (trace::active()) {
    trace::recorder()->instant(
        trace::Category::kRead, "read", "replica corrupt",
        {{"block", blocks_[current_block_].block.to_string()},
         {"replica", attempt.replica.to_string()}});
  }
  checksum_failed_replicas_.insert(attempt.replica.value());
  // Tell the namenode so it quarantines + invalidates the replica and queues
  // the block for re-replication from a good copy (HDFS reportBadBlocks).
  ++stats_.bad_replica_reports;
  Namenode& nn = deps_.namenode;
  deps_.rpc.notify(client_node_, nn.node_id(),
                   [&nn, block = blocks_[current_block_].block,
                    node = attempt.replica] {
                     nn.report_bad_replica(block, node);
                   });
  on_attempt_failed(attempt, "checksum mismatch from " +
                                 attempt.replica.to_string());
}

void DfsInputStream::on_attempt_failed(ReadAttempt& attempt,
                                       const std::string& reason) {
  if (finished_) return;
  SMARTH_WARN("read") << path_ << " block " << current_block_ << ": "
                      << reason << "; failing over";
  ++stats_.failovers;
  metrics::global_registry().counter("read.failovers").add();
  failed_replicas_.insert(attempt.replica.value());
  ReadAttempt& other = &attempt == &primary_ ? hedge_ : primary_;
  if (other.active()) {
    // The race partner keeps streaming: promote it to sole attempt instead
    // of restarting the block.
    if (trace::active()) {
      trace::recorder()->instant(
          trace::Category::kRead, "read", "attempt failed mid-race",
          {{"replica", attempt.replica.to_string()}, {"reason", reason}});
    }
    const bool failed_primary = &attempt == &primary_;
    if (&attempt == &hedge_) set_hedges_in_flight(-1);
    attempt.reset();
    if (failed_primary) {
      // The hedge becomes the primary; its slot frees for a future hedge.
      primary_ = hedge_;
      hedge_.reset();
      set_hedges_in_flight(-1);
    }
    arm_watchdog();
    arm_hedge_timer();
    return;
  }
  if (trace::active()) {
    trace::recorder()->end_span(block_span_,
                                {{"outcome", "failover"}, {"reason", reason}});
  }
  attempt.reset();
  request_from_replica();
}

void DfsInputStream::arm_watchdog() {
  watchdog_.cancel();
  if (finished_) return;
  watchdog_ = deps_.sim.schedule_after(deps_.config.ack_timeout, [this] {
    if (finished_) return;
    // No byte from either attempt within the timeout: fail the primary. If a
    // hedge is racing it gets promoted and inherits a fresh watchdog.
    if (primary_.active()) {
      on_attempt_failed(primary_, "read timed out");
    } else if (hedge_.active()) {
      on_attempt_failed(hedge_, "read timed out");
    }
  });
}

void DfsInputStream::finish(bool failed, const std::string& reason) {
  if (finished_) return;
  watchdog_.cancel();
  hedge_timer_.cancel();
  cold_start_deadline_.cancel();
  if (hedge_.active()) {
    cancel_attempt(hedge_, /*lost_race=*/true);
  }
  finished_ = true;
  metrics::global_registry().gauge("client.reads_open").add(-1.0);
  stats_.finished_at = deps_.sim.now();
  stats_.failed = failed;
  stats_.failure_reason = reason;
  if (trace::active()) {
    if (failed) {
      trace::recorder()->end_span(block_span_, {{"outcome", "failed"}});
    }
    trace::recorder()->end_span(
        read_span_, {{"failed", failed ? "true" : "false"},
                     {"reason", reason},
                     {"bytes", std::to_string(stats_.bytes_read)}});
  }
  if (failed) {
    SMARTH_ERROR("read") << path_ << " failed: " << reason;
  }
  if (on_done_) on_done_(stats_);
}

}  // namespace smarth::hdfs
