// The namenode's durable write-ahead journal. Every namespace mutation the
// namenode survives a restart with is appended here as a typed op; replaying
// the ops in txid order against an empty (or checkpointed) namespace
// reconstructs FileEntry/BlockRecord/lease/UC/quarantine state exactly.
//
// What is deliberately NOT journaled — mirroring HDFS — is the replica
// location map (BlockRecord::reported): locations are soft state rebuilt from
// post-restart datanode block reports, which is why the restart path enters
// safe mode until enough replicas have been re-reported.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "common/units.hpp"

namespace smarth::hdfs {

enum class EditOpType : std::uint8_t {
  kLeaseRenew,          ///< client touched its lease (create/addBlock/...)
  kCreate,              ///< file created: file, path, client
  kEraseFile,           ///< file dropped (overwrite of an abandoned file)
  kAddBlock,            ///< block allocated: file, block, nodes = targets
  kUpdateTargets,       ///< pipeline shrank: block, nodes = surviving targets
  kCompleteFile,        ///< writer closed the file: file, client
  kLeaseRecoveryStart,  ///< takeover: file, client = old holder,
                        ///< blocks = UC blocks needing sync (computed from
                        ///< volatile replica state, so it must be journaled)
  kUcAttempt,           ///< one recovery round charged against: file, block
  kCommitBlockSync,     ///< block sealed: block, file, length, nodes = holders
  kTruncateBlocks,      ///< unrecoverable tail dropped: file, index = first
                        ///< removed block position
  kCloseRecovered,      ///< recovery finished; file closed on writer's behalf
  kQuarantine,          ///< replica condemned: block, node
};

const char* to_string(EditOpType type);

/// One journaled namespace mutation. Fields are a union-of-needs across op
/// types; unused fields keep their defaults. `at` is the simulation time the
/// op was applied live — replay uses it so reconstructed timestamps (lease
/// renewals, recovery retry deadlines) are bit-identical.
struct EditOp {
  EditOpType type = EditOpType::kLeaseRenew;
  std::int64_t txid = 0;  ///< assigned by EditLog::append, dense from 1
  SimTime at = 0;

  FileId file;
  BlockId block;
  ClientId client;
  NodeId node;
  std::string path;
  Bytes length = 0;
  std::int64_t index = -1;
  std::vector<NodeId> nodes;
  std::vector<BlockId> blocks;
};

/// Append-only op journal with checkpoint truncation. The sim models the log
/// as always-durable shared storage (HDFS's QJM/shared-edits dir): the active
/// namenode appends, the standby tails, and restart replays the suffix past
/// the last checkpoint.
class EditLog {
 public:
  /// Appends `op`, assigning the next txid; returns that txid.
  std::int64_t append(EditOp op);

  /// Highest txid ever assigned (0 when nothing was logged).
  std::int64_t last_txid() const { return next_txid_ - 1; }
  /// Ops retained in memory (post-truncation suffix).
  std::size_t size() const { return ops_.size(); }
  /// Total ops ever appended (monotone; survives truncation).
  std::uint64_t appended() const { return appended_; }

  /// All retained ops with txid > `after_txid`, in txid order. CHECK-fails if
  /// truncation already dropped ops in that range — callers must keep their
  /// floor registered with the checkpointer.
  std::vector<EditOp> tail(std::int64_t after_txid) const;

  /// Drops ops with txid <= `txid` (checkpoint made them redundant).
  void truncate_through(std::int64_t txid);

  /// JSON array of retained ops — exported next to failing-seed traces so a
  /// chaos failure ships its own replayable journal.
  std::string to_json() const;

 private:
  std::deque<EditOp> ops_;
  std::int64_t next_txid_ = 1;
  std::uint64_t appended_ = 0;
};

}  // namespace smarth::hdfs
