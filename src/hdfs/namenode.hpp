// The namenode: file-system namespace, block manager, datanode liveness and
// (for SMARTH) the per-client transfer-speed board that global optimization
// consults. Methods here are the RPC handler bodies; callers invoke them
// through rpc::RpcBus so they pay the control-plane cost Tn.
#pragma once

#include <memory>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include <map>

#include "common/ids.hpp"
#include "common/result.hpp"
#include "common/units.hpp"
#include "hdfs/lease_manager.hpp"
#include "hdfs/placement.hpp"
#include "hdfs/suspicion.hpp"
#include "hdfs/types.hpp"
#include "net/topology.hpp"
#include "sim/periodic_task.hpp"
#include "sim/simulation.hpp"

namespace smarth::hdfs {

struct EditOp;
class EditLog;
struct NamenodeImage;

/// Per-client map of the latest observed transfer speed to each datanode —
/// the information clients piggyback on their heartbeats (paper §III-B).
class SpeedBoard {
 public:
  void update(ClientId client, const SpeedRecord& record);
  bool has_records(ClientId client) const;
  std::optional<Bandwidth> speed(ClientId client, NodeId datanode) const;
  /// Latest record per datanode for this client, unordered.
  std::vector<SpeedRecord> records_for(ClientId client) const;
  std::size_t client_count() const { return boards_.size(); }

 private:
  std::unordered_map<ClientId, std::unordered_map<NodeId, SpeedRecord>>
      boards_;
};

enum class FileState { kUnderConstruction, kClosed };

struct FileEntry {
  FileId id;
  std::string path;
  ClientId lease_holder;
  FileState state = FileState::kUnderConstruction;
  std::vector<BlockId> blocks;
  /// Lease recovery in progress: the writer's lease expired and the file's
  /// UC blocks are being synchronized. The namespace entry is frozen —
  /// addBlock/complete from the (possibly returned) writer are refused.
  bool recovering = false;
  /// Closed by lease recovery at a consistent prefix rather than by its
  /// writer; the writer's own complete() must not report success.
  bool closed_by_recovery = false;

  friend bool operator==(const FileEntry&, const FileEntry&) = default;
};

struct BlockRecord {
  BlockId id;
  FileId file;
  std::vector<NodeId> expected_targets;
  /// Datanode -> reported finalized replica length.
  std::unordered_map<NodeId, Bytes> reported;
  /// Nodes whose replica of this block was reported corrupt. Entries persist
  /// until the block itself is deleted: a stale heartbeat report (or a copy
  /// that dodged invalidation) must never resurrect a condemned replica, and
  /// these nodes are excluded from re-replication targets for this block.
  std::set<NodeId> corrupt_replicas;
};

class Namenode {
 public:
  Namenode(sim::Simulation& sim, const net::Topology& topology,
           const HdfsConfig& config, NodeId self);

  NodeId node_id() const { return self_; }
  const HdfsConfig& config() const { return config_; }

  /// Installs the placement policy (default: DefaultPlacementPolicy).
  void set_placement_policy(std::unique_ptr<PlacementPolicy> policy);
  const PlacementPolicy& placement_policy() const { return *policy_; }

  /// Manual safe-mode toggle (admin / tests). Clears the automatic restart
  /// safe mode too — an explicit override always wins.
  void set_safe_mode(bool on) {
    safe_mode_ = on;
    safe_mode_auto_ = false;
  }
  bool safe_mode() const { return safe_mode_; }

  // --- Durability / restart --------------------------------------------------
  /// Attaches the write-ahead journal: every durable namespace mutation from
  /// here on is appended as a typed op. Null detaches.
  void attach_edit_log(EditLog* log) { edit_log_ = log; }

  /// Snapshot of all durable state (namespace, leases, recoveries, id
  /// high-water marks, outcome counters). Excludes replica locations and
  /// datanode liveness — both are soft state rebuilt from block reports.
  NamenodeImage capture_image() const;
  /// Replaces durable state with `image` (volatile state untouched).
  void restore_image(const NamenodeImage& image);
  /// Applies one journaled op to the namespace — pure state manipulation
  /// using the op's own timestamp; never journals, never invokes executors.
  /// Used by restart replay and by the warm standby's tailer.
  void apply_edit(const EditOp& op);

  /// Control-plane crash: freezes background monitors and marks the process
  /// down. RPC/network isolation is the cluster wiring's job.
  void crash();
  bool crashed() const { return crashed_; }
  /// Process restore: durable state = `image` + replayed `tail`, volatile
  /// state (liveness, replica map, speed board) dropped, lease clocks reset,
  /// safe mode entered until enough replicas are re-reported. Returns the
  /// number of tail ops replayed.
  std::size_t restart(const NamenodeImage& image,
                      const std::vector<EditOp>& tail);
  std::uint64_t restarts() const { return restarts_; }

  /// Fraction of closed-file blocks with >=1 reported non-corrupt replica
  /// (the safe-mode exit criterion; 1.0 for an empty namespace).
  double safe_blocks_fraction() const;
  std::uint64_t safe_mode_entries() const { return safe_mode_entries_; }
  std::uint64_t safe_mode_exits() const { return safe_mode_exits_; }
  /// Time of the most recent automatic safe-mode exit (-1 if never).
  SimTime last_safe_mode_exit() const { return last_safe_mode_exit_; }

  // --- Datanode lifecycle ----------------------------------------------------
  void register_datanode(NodeId dn);
  /// Returns false when `dn` is unknown (e.g. the namenode restarted and
  /// lost its registration): the datanode must re-register, which its
  /// heartbeat loop does by resending registration + a full block report.
  bool handle_heartbeat(NodeId dn);
  bool is_alive(NodeId dn) const;
  std::vector<NodeId> alive_datanodes() const;
  std::size_t registered_datanode_count() const { return datanodes_.size(); }
  /// Registrations from already-known datanodes (crash-and-rejoin).
  std::uint64_t reregistrations() const { return reregistrations_; }

  // --- ClientProtocol --------------------------------------------------------
  /// Step 1 of the write workflow: namespace checks, then create the entry.
  /// With `overwrite`, an existing *closed* file is replaced (HDFS's
  /// create-with-overwrite). An existing open file whose holder's lease has
  /// soft-expired triggers lease recovery and returns the retryable code
  /// `recovery_in_progress`; the caller re-issues create() once the old
  /// file has been closed at its consistent prefix.
  Result<FileId> create(const std::string& path, ClientId client,
                        bool overwrite = false);

  /// Allocates the next block of `file` and chooses its pipeline.
  /// `deprioritized` nodes (client quarantine) are placed only as a last
  /// resort. `block_index` is the index the client is asking for (HDFS's
  /// `previous` argument): if that block was already allocated — the earlier
  /// response was lost and this is a retry — the existing allocation is
  /// returned instead of leaking an orphan block.
  Result<LocatedBlock> add_block(FileId file, ClientId client,
                                 NodeId client_node,
                                 const std::vector<NodeId>& excluded,
                                 const std::vector<NodeId>& deprioritized = {},
                                 std::int64_t block_index = -1);

  /// Recovery support: picks `count` replacement datanodes for `block`,
  /// excluding existing targets and `excluded`; `deprioritized` as above.
  Result<std::vector<NodeId>> get_additional_datanodes(
      BlockId block, ClientId client, NodeId client_node,
      const std::vector<NodeId>& existing, const std::vector<NodeId>& excluded,
      int count, const std::vector<NodeId>& deprioritized = {});

  /// Replaces the expected pipeline of `block` after recovery.
  Status update_block_targets(BlockId block, std::vector<NodeId> targets);

  /// Completes the file if every block has at least one reported replica.
  /// Returns false (retryable) otherwise, matching HDFS complete() semantics.
  Result<bool> complete(FileId file, ClientId client);

  /// Read path: the blocks of `path` with their live replica holders,
  /// sorted by network distance from `reader` (HDFS returns the closest
  /// replica first).
  Result<std::vector<LocatedBlock>> get_block_locations(
      const std::string& path, NodeId reader) const;

  // --- Re-replication monitor -------------------------------------------------
  /// Copies `length` bytes of `block` from `source` to `target` and invokes
  /// `done(success)`; installed by the cluster wiring (the namenode itself
  /// never touches block data, it only orchestrates).
  using ReplicationExecutor =
      std::function<void(NodeId source, NodeId target, BlockId block,
                         Bytes length, std::function<void(bool)> done)>;

  /// Starts the background monitor: every `scan_interval` it scans closed
  /// files for blocks whose live replica count has dropped below the
  /// replication factor and schedules copies from a surviving holder to a
  /// freshly placed node (HDFS's under-replicated block queue).
  void enable_rereplication(ReplicationExecutor executor,
                            SimDuration scan_interval = seconds(5));
  void disable_rereplication();
  std::uint64_t rereplications_scheduled() const {
    return rereplications_scheduled_;
  }
  std::uint64_t rereplications_completed() const {
    return rereplications_completed_;
  }
  /// Blocks of closed files currently below the replication factor
  /// (counting live holders only).
  std::vector<BlockId> under_replicated_blocks() const;

  // --- Corrupt-replica handling ----------------------------------------------
  /// Tells datanode `node` to drop its replica of `block`; installed by the
  /// cluster wiring (like the replication executor, the namenode only
  /// orchestrates — it never touches replica data).
  using InvalidationExecutor = std::function<void(NodeId node, BlockId block)>;
  void set_invalidation_executor(InvalidationExecutor executor) {
    invalidation_executor_ = std::move(executor);
  }

  /// Reader / scanner / copy-source report: `node`'s replica of `block`
  /// failed checksum verification (HDFS reportBadBlocks). The replica is
  /// quarantined — dropped from the location map, excluded from future
  /// placement for this block — and an invalidation is sent to the node; the
  /// re-replication monitor then restores the replication factor from a
  /// verified-good copy.
  void report_bad_replica(BlockId block, NodeId node);

  std::uint64_t bad_replica_reports() const { return bad_replica_reports_; }
  std::uint64_t invalidations_issued() const { return invalidations_issued_; }
  /// Total (block, node) pairs currently quarantined.
  std::size_t corrupt_replica_count() const;

  // --- Gray-failure suspicion --------------------------------------------------
  /// Client slowness evidence: a write pipeline evicted `node` as a
  /// straggler, or a hedged read beat it to the first byte-complete
  /// response. Adds `weight` to the node's decaying suspicion score; nodes
  /// at or above the threshold are demoted in placement ordering and in
  /// SMARTH's top-n selection. Unlike report_bad_replica this carries no
  /// data-integrity verdict — the node is slow, not wrong.
  void report_slow_datanode(NodeId node, double weight);
  const SuspicionList& suspicion() const { return suspicion_; }
  std::uint64_t slow_node_reports() const { return suspicion_.reports(); }

  // --- Lease management / writer-crash recovery -------------------------------
  /// Client heartbeat: renews the client's lease and (SMARTH) records any
  /// piggybacked speed observations.
  void client_heartbeat(ClientId client,
                        const std::vector<SpeedRecord>& records);

  /// Sends `cmd` to `primary`, the datanode elected to run
  /// commitBlockSynchronization for one UC block. Installed by the cluster
  /// wiring; returns false when the primary cannot be reached at all (the
  /// monitor then retries with fresh liveness data).
  using UcRecoveryExecutor =
      std::function<bool(NodeId primary, const UcRecoveryCommand& cmd)>;

  /// Starts the lease monitor: every `scan_interval` (default: the config's
  /// lease_monitor_interval) it recovers files whose holder's lease passed
  /// the hard limit and drives in-flight UC block synchronizations
  /// (re-electing primaries past their round deadline, abandoning blocks
  /// that exhaust their attempts).
  void enable_lease_recovery(UcRecoveryExecutor executor,
                             SimDuration scan_interval = 0);
  void disable_lease_recovery();

  /// Forces lease recovery of an open file (also invoked internally on
  /// hard expiry and by create-takeover past the soft limit).
  Status start_lease_recovery(FileId file);

  /// Primary datanode -> namenode: the replicas of `block` were reconciled
  /// and finalized at `length` on `holders`. Empty `holders` (or zero
  /// length) means no durable replica survived: the block is abandoned and
  /// the file truncated before it. Stale and duplicate commits are ignored.
  void commit_block_synchronization(BlockId block, Bytes length,
                                    const std::vector<NodeId>& holders);

  const LeaseManager& lease_manager() const { return leases_; }
  std::uint64_t lease_expiries() const { return lease_expiries_; }
  std::uint64_t uc_blocks_recovered() const { return uc_blocks_recovered_; }
  Bytes bytes_salvaged() const { return bytes_salvaged_; }
  std::uint64_t orphans_abandoned() const { return orphans_abandoned_; }
  std::uint64_t client_heartbeats() const { return client_heartbeats_; }

  // --- DatanodeProtocol ------------------------------------------------------
  /// A datanode finished (finalized) a replica of `block`.
  void block_received(NodeId dn, BlockId block, Bytes length);

  // --- SMARTH extension ------------------------------------------------------
  /// Clients report observed first-datanode transfer speeds with their
  /// heartbeats.
  void report_client_speeds(ClientId client,
                            const std::vector<SpeedRecord>& records);
  const SpeedBoard& speed_board() const { return speeds_; }

  // --- Introspection (tests, reports) ---------------------------------------
  const FileEntry* file(FileId id) const;
  const FileEntry* file_by_path(const std::string& path) const;
  const BlockRecord* block(BlockId id) const;
  std::size_t file_count() const { return files_.size(); }
  std::size_t block_count() const { return blocks_.size(); }
  std::uint64_t heartbeats_received() const { return heartbeats_; }

 private:
  struct UcBlockPending {
    SimTime retry_at = 0;  ///< next primary (re-)election no earlier than this
    int attempts = 0;
  };
  struct LeaseRecoveryState {
    SimTime started_at = 0;
    std::map<BlockId, UcBlockPending> pending;  ///< blocks awaiting commit
  };

  PlacementContext make_context(Rng& rng,
                                const std::vector<NodeId>* deprioritized =
                                    nullptr) const;
  void scan_for_under_replication();
  int live_replica_count(const BlockRecord& record) const;
  void lease_scan();
  void issue_uc_recoveries(FileId file, LeaseRecoveryState& state);
  /// Drops entry.blocks[first_removed..] from the namespace (orphan blocks
  /// with no durable data — the consistent prefix ends before them).
  void truncate_file_blocks(FileId file, std::size_t first_removed);
  void maybe_close_recovered(FileId file);
  void erase_file(FileId file);
  /// Appends `op` (stamped with now) to the attached edit log, unless replay
  /// is reconstructing state — replayed ops must not be re-journaled.
  void journal(EditOp op);
  /// Leaves automatic safe mode once safe_blocks_fraction() crosses the
  /// configured threshold; manual safe mode is never auto-exited.
  void maybe_exit_safe_mode();
  void enter_safe_mode();
  /// The state change behind maybe_close_recovered (shared with replay).
  void close_recovered(FileId file);

  sim::Simulation& sim_;
  const net::Topology& topology_;
  const HdfsConfig& config_;
  NodeId self_;
  std::unique_ptr<PlacementPolicy> policy_;
  bool safe_mode_ = false;
  /// Safe mode entered automatically by restart (exits on replica threshold).
  bool safe_mode_auto_ = false;
  /// Datanodes registered before the last crash; safe mode holds until that
  /// many have re-registered (in addition to the replica threshold).
  std::size_t safe_mode_min_datanodes_ = 0;
  std::uint64_t safe_mode_entries_ = 0;
  std::uint64_t safe_mode_exits_ = 0;
  SimTime last_safe_mode_exit_ = -1;

  EditLog* edit_log_ = nullptr;
  /// True while apply_edit runs under restart(): suppresses journaling from
  /// the shared mutation helpers (truncate/close/erase).
  bool replaying_ = false;
  bool crashed_ = false;
  std::uint64_t restarts_ = 0;
  /// Force-exits a safe mode that replica re-reports alone can never satisfy
  /// (e.g. a block whose every replica is gone for good).
  sim::EventHandle safe_mode_timeout_;

  std::vector<NodeId> datanodes_;
  std::unordered_map<NodeId, SimTime> last_heartbeat_;

  IdGenerator<FileId> file_ids_;
  IdGenerator<BlockId> block_ids_;
  std::unordered_map<FileId, FileEntry> files_;
  std::unordered_map<std::string, FileId> files_by_path_;
  std::unordered_map<BlockId, BlockRecord> blocks_;

  SpeedBoard speeds_;
  std::uint64_t heartbeats_ = 0;
  std::uint64_t reregistrations_ = 0;

  LeaseManager leases_;
  /// Reserved holder expired writers' files are reassigned to while the
  /// namenode recovers them (HDFS's NN_RECOVERY lease holder).
  static constexpr ClientId kRecoveryHolder{-2};
  UcRecoveryExecutor uc_recovery_executor_;
  std::unique_ptr<sim::PeriodicTask> lease_task_;
  std::map<FileId, LeaseRecoveryState> lease_recoveries_;  ///< deterministic
  std::uint64_t lease_expiries_ = 0;
  std::uint64_t uc_blocks_recovered_ = 0;
  Bytes bytes_salvaged_ = 0;
  std::uint64_t orphans_abandoned_ = 0;
  std::uint64_t client_heartbeats_ = 0;

  InvalidationExecutor invalidation_executor_;
  std::uint64_t bad_replica_reports_ = 0;
  std::uint64_t invalidations_issued_ = 0;

  /// Decaying slowness scores; volatile like liveness (dropped on restart —
  /// a rebooted namenode re-learns who is slow from fresh reports).
  SuspicionList suspicion_;

  ReplicationExecutor replication_executor_;
  std::unique_ptr<sim::PeriodicTask> rereplication_task_;
  /// Block -> deadline of its in-flight copy. A copy whose completion never
  /// arrives (partition, target crash) expires and the scan retries it.
  std::unordered_map<BlockId, SimTime> rereplication_pending_;
  std::uint64_t rereplications_scheduled_ = 0;
  std::uint64_t rereplications_completed_ = 0;

  // Reused scratch vector for alive-datanode snapshots.
  mutable std::vector<NodeId> alive_scratch_;
  // Same idiom for the suspicion snapshot handed to placement contexts.
  mutable std::vector<NodeId> suspect_scratch_;
};

}  // namespace smarth::hdfs
