#include "hdfs/lease_manager.hpp"

namespace smarth::hdfs {

void LeaseManager::add(ClientId holder, FileId file, SimTime now) {
  Lease& lease = leases_[holder];
  lease.last_renewal = now;
  lease.files.insert(file);
  ++renewals_;
}

void LeaseManager::renew(ClientId holder, SimTime now) {
  leases_[holder].last_renewal = now;
  ++renewals_;
}

void LeaseManager::release(ClientId holder, FileId file) {
  auto it = leases_.find(holder);
  if (it == leases_.end()) return;
  it->second.files.erase(file);
}

void LeaseManager::reassign(FileId file, ClientId from, ClientId to,
                            SimTime now) {
  release(from, file);
  add(to, file, now);
}

bool LeaseManager::holds(ClientId holder, FileId file) const {
  auto it = leases_.find(holder);
  return it != leases_.end() && it->second.files.count(file) > 0;
}

bool LeaseManager::soft_expired(ClientId holder, SimTime now) const {
  auto it = leases_.find(holder);
  if (it == leases_.end()) return true;
  return now - it->second.last_renewal > soft_limit_;
}

bool LeaseManager::hard_expired(ClientId holder, SimTime now) const {
  auto it = leases_.find(holder);
  if (it == leases_.end()) return true;
  return now - it->second.last_renewal > hard_limit_;
}

std::vector<std::pair<ClientId, FileId>> LeaseManager::hard_expired_files(
    SimTime now) const {
  std::vector<std::pair<ClientId, FileId>> expired;
  for (const auto& [holder, lease] : leases_) {
    if (lease.files.empty()) continue;
    if (now - lease.last_renewal <= hard_limit_) continue;
    for (FileId file : lease.files) expired.emplace_back(holder, file);
  }
  return expired;
}

std::vector<LeaseImage> LeaseManager::snapshot() const {
  std::vector<LeaseImage> out;
  out.reserve(leases_.size());
  for (const auto& [holder, lease] : leases_) {
    LeaseImage image;
    image.holder = holder;
    image.last_renewal = lease.last_renewal;
    image.files.assign(lease.files.begin(), lease.files.end());
    out.push_back(std::move(image));
  }
  return out;
}

void LeaseManager::restore(const std::vector<LeaseImage>& leases) {
  leases_.clear();
  for (const LeaseImage& image : leases) {
    Lease& lease = leases_[image.holder];
    lease.last_renewal = image.last_renewal;
    lease.files.insert(image.files.begin(), image.files.end());
  }
}

void LeaseManager::reset_renewals(SimTime now) {
  for (auto& [holder, lease] : leases_) lease.last_renewal = now;
}

std::size_t LeaseManager::active_lease_count() const {
  std::size_t count = 0;
  for (const auto& [holder, lease] : leases_) {
    if (!lease.files.empty()) ++count;
  }
  return count;
}

}  // namespace smarth::hdfs
