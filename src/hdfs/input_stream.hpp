// The client read path: fetch block locations from the namenode, stream each
// block from its nearest live replica, verify, and fail over to the next
// replica when a datanode dies or returns an error mid-read. HDFS reads have
// no pipeline — one datanode serves the whole block — so this is shared by
// both protocols; it exists to complete the substrate and to drive the
// read-while-write experiments (the paper's MapReduce-impact future work).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/ids.hpp"
#include "common/units.hpp"
#include "hdfs/namenode.hpp"
#include "hdfs/transport.hpp"
#include "hdfs/types.hpp"
#include "rpc/rpc_bus.hpp"
#include "sim/simulation.hpp"
#include "trace/trace_recorder.hpp"

namespace smarth::hdfs {

class Datanode;

struct ReadStats {
  ClientId client;
  std::string path;
  Bytes bytes_read = 0;
  SimTime started_at = 0;
  SimTime finished_at = 0;
  std::int64_t blocks = 0;
  int failovers = 0;  ///< replica switches due to errors/timeouts
  /// Failovers caused specifically by checksum mismatches (subset of
  /// `failovers`): the serving replica had rotted at rest.
  int checksum_mismatches = 0;
  /// report_bad_replica RPCs this read sent to the namenode.
  int bad_replica_reports = 0;
  /// Hedged-read accounting: hedges launched, blocks the hedge finished
  /// first, hedge-timer firings denied by the budget or lack of a second
  /// replica, and duplicate bytes the losing attempt delivered.
  int hedged_reads = 0;
  int hedge_wins = 0;
  int hedges_denied = 0;
  Bytes hedge_wasted_bytes = 0;
  bool failed = false;
  std::string failure_reason;

  SimDuration elapsed() const { return finished_at - started_at; }
  Bandwidth throughput() const { return throughput_of(bytes_read, elapsed()); }
};

class DfsInputStream : public ReadSink {
 public:
  using DoneCallback = std::function<void(const ReadStats&)>;

  struct Deps {
    sim::Simulation& sim;
    Transport& transport;
    rpc::RpcBus& rpc;
    Namenode& namenode;
    const HdfsConfig& config;
    IdGenerator<ReadId>& read_ids;
    /// Resolves a datanode daemon so a decided hedge race can cancel the
    /// losing attempt at its source; null disables cancellation (late
    /// packets are then simply dropped by the routing layer).
    std::function<Datanode*(NodeId)> resolve_datanode;
  };

  DfsInputStream(Deps deps, ClientId client, NodeId client_node,
                 std::string path, DoneCallback on_done);
  ~DfsInputStream() override;

  /// Fetches locations and starts streaming the first block.
  void start();

  bool finished() const { return finished_; }
  const ReadStats& stats() const { return stats_; }
  /// Routing support for the cluster wiring. A hedged block has two live
  /// read ids (primary + hedge); packets for either belong to this stream.
  bool owns_read(ReadId id) const {
    return id == primary_.read || id == hedge_.read;
  }
  NodeId client_node() const { return client_node_; }

  // --- ReadSink ---------------------------------------------------------------
  void deliver_read_packet(const ReadPacket& packet) override;

 private:
  /// One outstanding request against one replica. A block normally has a
  /// single attempt (primary_); when the hedge timer fires a second attempt
  /// races it from the primary's current progress offset.
  struct ReadAttempt {
    ReadId read;              ///< invalid when the attempt is not running
    NodeId replica;
    Bytes start_offset = 0;   ///< block offset the attempt began at
    Bytes bytes = 0;          ///< payload bytes delivered by this attempt
    std::int64_t expected_seq = 0;
    /// Packet-gap pacing: arrival time of the first/most recent packet and
    /// the packet count, so the pace trigger can compute the attempt's mean
    /// inter-packet gap.
    SimTime first_packet_at = -1;
    SimTime last_packet_at = -1;
    std::int64_t packets = 0;

    bool active() const { return read.valid(); }
    Bytes progress() const { return start_offset + bytes; }
    /// Mean inter-packet gap (ns); 0 until two packets have arrived.
    double mean_gap() const {
      return packets > 1 ? static_cast<double>(last_packet_at -
                                               first_packet_at) /
                               static_cast<double>(packets - 1)
                         : 0.0;
    }
    void reset() { *this = ReadAttempt{}; }
  };

  void fetch_locations();
  void start_block(std::size_t block_index);
  void request_from_replica();
  void on_block_done();
  void on_attempt_failed(ReadAttempt& attempt, const std::string& reason);
  /// The serving replica returned a checksum-mismatch marker: report it to
  /// the namenode, remember it as corrupt, and fail over.
  void on_attempt_corrupt(ReadAttempt& attempt);
  void arm_watchdog();
  void finish(bool failed, const std::string& reason);

  // --- Hedged reads -----------------------------------------------------------
  /// Launches `attempt` against `replica` from the block's current progress
  /// watermark.
  void send_attempt(ReadAttempt& attempt, NodeId replica);
  /// Hedge-timer duration: p95 of the serving node's ack-latency histogram x
  /// multiplier when enough samples exist, else the static fallback.
  SimDuration hedge_threshold(NodeId replica) const;
  /// (Re)arms the no-progress hedge timer; no-op while a hedge is racing or
  /// hedged reads are disabled.
  void arm_hedge_timer();
  /// No byte progressed within the hedge threshold: race a second replica if
  /// the budget and replica set allow it.
  void on_hedge_timer();
  /// Pace trigger, checked on every primary packet: a gray-slow replica keeps
  /// the stall timer re-armed, so also hedge when the primary's mean packet
  /// gap exceeds `hedge_pace_factor` x the cluster-wide lower-quartile gap.
  void maybe_hedge_on_pace();
  /// Cold-start deadline: until `read.gap_ns` has enough samples the pace
  /// trigger has no healthy baseline, so the first block(s) get a one-shot
  /// completion deadline of `hedge_static_threshold` instead — HDFS's static
  /// whole-request hedge threshold.
  void arm_cold_start_deadline();
  /// Shared hedge launcher behind both triggers; enforces the budget.
  void launch_hedge(const char* why);
  /// `winner` delivered the block's last byte: settle the race and advance.
  void on_attempt_won(ReadAttempt& winner);
  /// The losing attempt of a decided hedge race: cancel at the datanode and
  /// account its suspicion/metrics.
  void cancel_attempt(ReadAttempt& attempt, bool lost_race);
  /// Picks the replica a hedge should race: first non-failed target that is
  /// not `avoid`, preferring replicas not previously hedge-beaten.
  NodeId pick_hedge_replica(NodeId avoid) const;
  void set_hedges_in_flight(int delta);

  Deps deps_;
  ClientId client_;
  NodeId client_node_;
  std::string path_;
  DoneCallback on_done_;

  std::vector<LocatedBlock> blocks_;
  /// Reported replica length per block is the block's readable size; the
  /// namenode's record is authoritative after close.
  std::vector<Bytes> block_sizes_;

  std::size_t current_block_ = 0;
  ReadAttempt primary_;
  ReadAttempt hedge_;
  /// High-water mark of contiguous payload delivered for the current block by
  /// either attempt; stats_.bytes_read counts only watermark advances so a
  /// hedge race never double-counts the overlap.
  Bytes block_bytes_received_ = 0;
  std::unordered_set<std::int64_t> failed_replicas_;
  /// Subset of failed_replicas_ that failed with a checksum mismatch; when
  /// *every* exhausted replica is in here, the block is wholly rotted and the
  /// read fails with all_replicas_corrupt instead of a liveness error.
  std::unordered_set<std::int64_t> checksum_failed_replicas_;
  /// Replicas that lost a hedge race this read: still usable, but later
  /// blocks prefer other replicas first.
  std::unordered_set<std::int64_t> slow_replicas_;
  sim::EventHandle watchdog_;
  /// Hedge no-progress timer; re-armed whenever a payload byte lands.
  sim::EventHandle hedge_timer_;
  /// One-shot cold-start completion deadline for the current block.
  sim::EventHandle cold_start_deadline_;
  int hedges_this_read_ = 0;

  ReadStats stats_;
  bool finished_ = false;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);

  /// Open span covering the whole read (locate -> last block done).
  trace::SpanHandle read_span_;
  /// Open span for the block currently streaming; reopened on failover so a
  /// trace shows one span per replica attempt.
  trace::SpanHandle block_span_;
};

}  // namespace smarth::hdfs
