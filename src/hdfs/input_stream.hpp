// The client read path: fetch block locations from the namenode, stream each
// block from its nearest live replica, verify, and fail over to the next
// replica when a datanode dies or returns an error mid-read. HDFS reads have
// no pipeline — one datanode serves the whole block — so this is shared by
// both protocols; it exists to complete the substrate and to drive the
// read-while-write experiments (the paper's MapReduce-impact future work).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/ids.hpp"
#include "common/units.hpp"
#include "hdfs/namenode.hpp"
#include "hdfs/transport.hpp"
#include "hdfs/types.hpp"
#include "rpc/rpc_bus.hpp"
#include "sim/simulation.hpp"
#include "trace/trace_recorder.hpp"

namespace smarth::hdfs {

struct ReadStats {
  ClientId client;
  std::string path;
  Bytes bytes_read = 0;
  SimTime started_at = 0;
  SimTime finished_at = 0;
  std::int64_t blocks = 0;
  int failovers = 0;  ///< replica switches due to errors/timeouts
  /// Failovers caused specifically by checksum mismatches (subset of
  /// `failovers`): the serving replica had rotted at rest.
  int checksum_mismatches = 0;
  /// report_bad_replica RPCs this read sent to the namenode.
  int bad_replica_reports = 0;
  bool failed = false;
  std::string failure_reason;

  SimDuration elapsed() const { return finished_at - started_at; }
  Bandwidth throughput() const { return throughput_of(bytes_read, elapsed()); }
};

class DfsInputStream : public ReadSink {
 public:
  using DoneCallback = std::function<void(const ReadStats&)>;

  struct Deps {
    sim::Simulation& sim;
    Transport& transport;
    rpc::RpcBus& rpc;
    Namenode& namenode;
    const HdfsConfig& config;
    IdGenerator<ReadId>& read_ids;
  };

  DfsInputStream(Deps deps, ClientId client, NodeId client_node,
                 std::string path, DoneCallback on_done);
  ~DfsInputStream() override;

  /// Fetches locations and starts streaming the first block.
  void start();

  bool finished() const { return finished_; }
  const ReadStats& stats() const { return stats_; }
  /// Routing support for the cluster wiring.
  bool owns_read(ReadId id) const { return id == current_read_; }
  NodeId client_node() const { return client_node_; }

  // --- ReadSink ---------------------------------------------------------------
  void deliver_read_packet(const ReadPacket& packet) override;

 private:
  void fetch_locations();
  void start_block(std::size_t block_index);
  void request_from_replica();
  void on_block_done();
  void on_replica_failed(const std::string& reason);
  /// The serving replica returned a checksum-mismatch marker: report it to
  /// the namenode, remember it as corrupt, and fail over.
  void on_replica_corrupt();
  void arm_watchdog();
  void finish(bool failed, const std::string& reason);

  Deps deps_;
  ClientId client_;
  NodeId client_node_;
  std::string path_;
  DoneCallback on_done_;

  std::vector<LocatedBlock> blocks_;
  /// Reported replica length per block is the block's readable size; the
  /// namenode's record is authoritative after close.
  std::vector<Bytes> block_sizes_;

  std::size_t current_block_ = 0;
  ReadId current_read_;
  NodeId current_replica_;
  Bytes block_bytes_received_ = 0;
  std::int64_t expected_seq_ = 0;
  std::unordered_set<std::int64_t> failed_replicas_;
  /// Subset of failed_replicas_ that failed with a checksum mismatch; when
  /// *every* exhausted replica is in here, the block is wholly rotted and the
  /// read fails with all_replicas_corrupt instead of a liveness error.
  std::unordered_set<std::int64_t> checksum_failed_replicas_;
  sim::EventHandle watchdog_;

  ReadStats stats_;
  bool finished_ = false;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);

  /// Open span covering the whole read (locate -> last block done).
  trace::SpanHandle read_span_;
  /// Open span for the block currently streaming; reopened on failover so a
  /// trace shows one span per replica attempt.
  trace::SpanHandle block_span_;
};

}  // namespace smarth::hdfs
