#include "hdfs/quarantine.hpp"

#include "common/log.hpp"
#include "trace/metrics_registry.hpp"
#include "trace/trace_recorder.hpp"

namespace smarth::hdfs {

void QuarantineList::quarantine(NodeId node, const std::string& reason) {
  until_[node.value()] = sim_.now() + duration_;
  events_.push_back({node, sim_.now(), reason});
  metrics::global_registry().counter("quarantine.events").add();
  if (trace::active()) {
    trace::recorder()->instant(trace::Category::kRecovery, "client",
                               "quarantine",
                               {{"node", node.to_string()},
                                {"reason", reason}});
  }
  SMARTH_INFO("quarantine") << "datanode " << node.value() << " quarantined ("
                            << reason << ") until t+"
                            << to_seconds(duration_) << "s";
}

bool QuarantineList::quarantined(NodeId node) const {
  auto it = until_.find(node.value());
  return it != until_.end() && sim_.now() < it->second;
}

std::vector<NodeId> QuarantineList::active() const {
  std::vector<NodeId> nodes;
  for (const auto& [id, until] : until_) {
    if (sim_.now() < until) nodes.push_back(NodeId{id});
  }
  return nodes;
}

}  // namespace smarth::hdfs
