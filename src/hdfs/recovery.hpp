// Client-orchestrated pipeline recovery — the body of the paper's
// Algorithm 3 (and the per-pipeline step of Algorithm 4):
//   close streams / abort the pipeline at every target, probe the targets to
//   separate the dead from the living, sync all survivors to the minimum
//   durable length, obtain replacement datanodes from the namenode, copy the
//   durable prefix to each replacement through a primary survivor, and hand
//   the caller a rebuilt target list plus the resume offset.
// The caller then re-queues the un-acked packets (ACK queue -> data queue)
// and re-opens the pipeline.
#pragma once

#include <functional>
#include <vector>

#include "common/ids.hpp"
#include "common/result.hpp"
#include "common/units.hpp"
#include "hdfs/output_stream.hpp"

namespace smarth::hdfs {

struct RecoveryOutcome {
  std::vector<NodeId> targets;  ///< survivors (pipeline order) + replacements
  Bytes sync_offset = 0;        ///< durable, packet-aligned resume offset
  /// True when the rebuilt pipeline is shorter than the replication factor
  /// (graceful degradation: the write continues; the namenode's
  /// re-replication monitor restores the count later).
  bool under_replicated = false;
  /// Datanodes this recovery added to the client's quarantine list.
  int quarantined = 0;
};

/// Probes a datanode's replica with a client-side timeout; the callback
/// always fires exactly once (with alive=false on timeout).
void probe_replica_with_timeout(StreamDeps& deps, NodeId client_node,
                                NodeId datanode, BlockId block,
                                std::function<void(ReplicaProbeResult)> cb);

class BlockRecovery {
 public:
  using DoneCallback = std::function<void(Result<RecoveryOutcome>)>;

  /// `block_bytes` is the block's total size; the sync offset is clamped so
  /// at least the final packet is always retransmitted (the last_in_block
  /// marker must reach every target for replicas to finalize).
  /// `durable_floor` is the byte offset of the first un-acked packet: the
  /// client has dropped everything before it from its resend buffer, so a
  /// survivor whose replica is shorter has lost acked data (e.g. it crashed
  /// and restarted, discarding the in-progress replica) and must be replaced
  /// rather than allowed to pull the sync offset below what the client can
  /// still retransmit.
  BlockRecovery(StreamDeps& deps, ClientId client, NodeId client_node,
                PipelineId pipeline, BlockId block, Bytes block_bytes,
                Bytes durable_floor, std::vector<NodeId> targets,
                int error_index, DoneCallback done);

  /// Starts the asynchronous recovery; the object must stay alive until the
  /// done callback fires (streams own recoveries by unique_ptr).
  void run();

 private:
  void probe_targets();
  void on_probes_done(std::vector<ReplicaProbeResult> results);
  void sync_and_replace();
  void truncate_survivors();
  void request_replacements();
  void transfer_prefix(std::size_t replacement_index);
  void finish_success();
  void fail(const std::string& reason);
  /// Adds `node` to the client's quarantine list (if one is wired in) and
  /// counts it for the outcome.
  void quarantine_node(NodeId node, const std::string& reason);

  StreamDeps& deps_;
  ClientId client_;
  NodeId client_node_;
  PipelineId pipeline_;
  BlockId block_;
  Bytes block_bytes_;
  Bytes durable_floor_;
  std::vector<NodeId> original_targets_;
  int error_index_;
  DoneCallback done_;

  std::vector<NodeId> alive_;
  std::vector<NodeId> dead_;
  std::vector<NodeId> replacements_;
  Bytes sync_offset_ = 0;
  int attempts_ = 0;
  int quarantined_ = 0;
  bool completed_ = false;
};

}  // namespace smarth::hdfs
