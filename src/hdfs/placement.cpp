#include "hdfs/placement.hpp"

#include <algorithm>
#include <functional>

#include "common/check.hpp"

namespace smarth::hdfs {

bool placement_unusable(NodeId node, const std::vector<NodeId>& chosen,
                        const std::vector<NodeId>& excluded) {
  return std::find(chosen.begin(), chosen.end(), node) != chosen.end() ||
         std::find(excluded.begin(), excluded.end(), node) != excluded.end();
}

NodeId pick_random_node(const PlacementContext& ctx,
                        const std::vector<NodeId>& chosen,
                        const std::vector<NodeId>& excluded,
                        const std::function<bool(NodeId)>& rack_ok) {
  std::vector<NodeId> candidates;
  std::vector<NodeId> demoted;      // suspected-slow nodes (suspicion list)
  std::vector<NodeId> last_resort;  // deprioritized (quarantined) nodes
  candidates.reserve(ctx.alive.size());
  for (NodeId node : ctx.alive) {
    if (placement_unusable(node, chosen, excluded)) continue;
    if (rack_ok && !rack_ok(node)) continue;
    if (ctx.deprioritized != nullptr &&
        std::find(ctx.deprioritized->begin(), ctx.deprioritized->end(),
                  node) != ctx.deprioritized->end()) {
      last_resort.push_back(node);
      continue;
    }
    if (ctx.suspects != nullptr &&
        std::find(ctx.suspects->begin(), ctx.suspects->end(), node) !=
            ctx.suspects->end()) {
      demoted.push_back(node);
      continue;
    }
    candidates.push_back(node);
  }
  if (candidates.empty()) candidates = std::move(demoted);
  if (candidates.empty()) candidates = std::move(last_resort);
  if (candidates.empty()) return NodeId{};
  return candidates[ctx.rng.index(candidates.size())];
}

NodeId pick_remote_rack_node(const PlacementContext& ctx, NodeId relative_to,
                             const std::vector<NodeId>& chosen,
                             const std::vector<NodeId>& excluded) {
  NodeId pick = pick_random_node(ctx, chosen, excluded, [&](NodeId n) {
    return !ctx.topology.same_rack(n, relative_to);
  });
  if (pick.valid()) return pick;
  // Single-rack (or exhausted remote rack) fallback: any usable node.
  return pick_random_node(ctx, chosen, excluded, nullptr);
}

NodeId pick_same_rack_node(const PlacementContext& ctx, NodeId relative_to,
                           const std::vector<NodeId>& chosen,
                           const std::vector<NodeId>& excluded) {
  NodeId pick = pick_random_node(ctx, chosen, excluded, [&](NodeId n) {
    return ctx.topology.same_rack(n, relative_to);
  });
  if (pick.valid()) return pick;
  return pick_random_node(ctx, chosen, excluded, nullptr);
}

std::vector<NodeId> DefaultPlacementPolicy::choose_targets(
    const PlacementRequest& request, const PlacementContext& ctx) {
  std::vector<NodeId> targets;
  targets.reserve(static_cast<std::size_t>(request.replication));

  // First replica: on the writer itself when the writer is a datanode,
  // otherwise a random not-excluded node.
  const bool client_is_datanode =
      std::find(ctx.alive.begin(), ctx.alive.end(), request.client_node) !=
      ctx.alive.end();
  const bool client_quarantined =
      ctx.deprioritized != nullptr &&
      std::find(ctx.deprioritized->begin(), ctx.deprioritized->end(),
                request.client_node) != ctx.deprioritized->end();
  // A suspected-slow writer node loses its local-write privilege the same
  // way a quarantined one does; pick_random_node may still fall back to it.
  const bool client_suspect =
      ctx.suspects != nullptr &&
      std::find(ctx.suspects->begin(), ctx.suspects->end(),
                request.client_node) != ctx.suspects->end();
  NodeId first;
  if (client_is_datanode && !client_quarantined && !client_suspect &&
      !placement_unusable(request.client_node, targets, request.excluded)) {
    first = request.client_node;
  } else {
    first = pick_random_node(ctx, targets, request.excluded, nullptr);
  }
  if (!first.valid()) return targets;
  targets.push_back(first);

  while (static_cast<int>(targets.size()) < request.replication) {
    NodeId next;
    if (targets.size() == 1) {
      // Second replica: a different rack from the first.
      next = pick_remote_rack_node(ctx, targets[0], targets, request.excluded);
    } else if (targets.size() == 2) {
      // Third replica: same rack as the second, different node.
      next = pick_same_rack_node(ctx, targets[1], targets, request.excluded);
    } else {
      next = pick_random_node(ctx, targets, request.excluded, nullptr);
    }
    if (!next.valid()) break;
    targets.push_back(next);
  }
  return targets;
}

}  // namespace smarth::hdfs
