// Client-side datanode quarantine. When a pipeline fails, the client has
// direct evidence about which datanode misbehaved — often minutes before the
// namenode's heartbeat-based dead-interval notices anything (a fail-slow or
// flapping node may never miss a heartbeat at all). Each client therefore
// keeps its own time-bounded quarantine list; quarantined nodes are
// deprioritized (not excluded) in placement and replacement decisions, so a
// small cluster can still use them as a last resort rather than stalling.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.hpp"
#include "common/units.hpp"
#include "sim/simulation.hpp"

namespace smarth::hdfs {

/// One quarantine decision, kept for the metrics report.
struct QuarantineEvent {
  NodeId node;
  SimTime at = 0;
  std::string reason;
};

class QuarantineList {
 public:
  QuarantineList(sim::Simulation& sim, SimDuration duration)
      : sim_(sim), duration_(duration) {}

  /// Quarantines (or re-quarantines, extending the window) a datanode.
  void quarantine(NodeId node, const std::string& reason);

  /// True while the node's quarantine window is open.
  bool quarantined(NodeId node) const;

  /// All currently-quarantined nodes (order unspecified).
  std::vector<NodeId> active() const;

  const std::vector<QuarantineEvent>& events() const { return events_; }

 private:
  sim::Simulation& sim_;
  SimDuration duration_;
  std::unordered_map<std::int64_t, SimTime> until_;  ///< NodeId -> expiry
  std::vector<QuarantineEvent> events_;
};

}  // namespace smarth::hdfs
