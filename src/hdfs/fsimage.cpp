#include "hdfs/fsimage.hpp"

#include <algorithm>
#include <utility>

#include "common/log.hpp"
#include "hdfs/edit_log.hpp"
#include "sim/periodic_task.hpp"
#include "trace/metrics_registry.hpp"
#include "trace/trace_recorder.hpp"

namespace smarth::hdfs {

namespace {

void append_json_escaped(std::string& out, const std::string& text) {
  for (char c : text) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
}

template <typename Id>
void append_id_array(std::string& out, const char* key,
                     const std::vector<Id>& ids) {
  out += "\"";
  out += key;
  out += "\": [";
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(ids[i].value());
  }
  out += "]";
}

}  // namespace

std::string NamenodeImage::to_json() const {
  std::string out = "{\n";
  out += "  \"last_txid\": " + std::to_string(last_txid) + ",\n";
  out += "  \"file_ids_issued\": " + std::to_string(file_ids_issued) + ",\n";
  out += "  \"block_ids_issued\": " + std::to_string(block_ids_issued) + ",\n";
  out += "  \"lease_expiries\": " + std::to_string(lease_expiries) + ",\n";
  out +=
      "  \"uc_blocks_recovered\": " + std::to_string(uc_blocks_recovered) +
      ",\n";
  out += "  \"bytes_salvaged\": " + std::to_string(bytes_salvaged) + ",\n";
  out += "  \"orphans_abandoned\": " + std::to_string(orphans_abandoned) +
         ",\n";
  out += "  \"files\": [";
  bool first = true;
  for (const FileEntry& f : files) {
    if (!first) out += ",";
    first = false;
    out += "\n    {\"id\": " + std::to_string(f.id.value()) + ", \"path\": \"";
    append_json_escaped(out, f.path);
    out += "\", \"holder\": " + std::to_string(f.lease_holder.value());
    out += std::string(", \"state\": \"") +
           (f.state == FileState::kClosed ? "closed" : "uc") + "\"";
    out += std::string(", \"recovering\": ") +
           (f.recovering ? "true" : "false");
    out += std::string(", \"closed_by_recovery\": ") +
           (f.closed_by_recovery ? "true" : "false") + ", ";
    append_id_array(out, "blocks", f.blocks);
    out += "}";
  }
  out += "],\n  \"blocks\": [";
  first = true;
  for (const BlockImage& b : blocks) {
    if (!first) out += ",";
    first = false;
    out += "\n    {\"id\": " + std::to_string(b.id.value()) +
           ", \"file\": " + std::to_string(b.file.value()) + ", ";
    append_id_array(out, "expected_targets", b.expected_targets);
    out += ", ";
    append_id_array(out, "corrupt_replicas", b.corrupt_replicas);
    out += "}";
  }
  out += "],\n  \"leases\": [";
  first = true;
  for (const LeaseImage& l : leases) {
    if (!first) out += ",";
    first = false;
    out += "\n    {\"holder\": " + std::to_string(l.holder.value()) +
           ", \"last_renewal_ns\": " + std::to_string(l.last_renewal) + ", ";
    append_id_array(out, "files", l.files);
    out += "}";
  }
  out += "],\n  \"recoveries\": [";
  first = true;
  for (const RecoveryImage& r : recoveries) {
    if (!first) out += ",";
    first = false;
    out += "\n    {\"file\": " + std::to_string(r.file.value()) +
           ", \"started_at_ns\": " + std::to_string(r.started_at) +
           ", \"pending\": [";
    for (std::size_t i = 0; i < r.pending.size(); ++i) {
      if (i > 0) out += ", ";
      out += "{\"block\": " + std::to_string(r.pending[i].block.value()) +
             ", \"retry_at_ns\": " + std::to_string(r.pending[i].retry_at) +
             ", \"attempts\": " + std::to_string(r.pending[i].attempts) + "}";
    }
    out += "]}";
  }
  out += "]\n}\n";
  return out;
}

FsImageCheckpointer::FsImageCheckpointer(sim::Simulation& sim,
                                         Namenode& namenode, EditLog& log,
                                         SimDuration interval)
    : sim_(sim), namenode_(namenode), log_(log), interval_(interval) {}

void FsImageCheckpointer::start() {
  if (interval_ <= 0) return;
  if (task_ == nullptr) {
    task_ = std::make_unique<sim::PeriodicTask>(sim_, interval_,
                                                [this] { checkpoint_now(); });
  }
  if (!task_->running()) task_->start();
}

void FsImageCheckpointer::stop() {
  if (task_ != nullptr) task_->stop();
}

void FsImageCheckpointer::checkpoint_now() {
  if (namenode_.crashed()) return;
  image_ = namenode_.capture_image();
  image_.last_txid = log_.last_txid();
  ++checkpoints_;
  std::int64_t floor = image_.last_txid;
  if (truncate_floor_) floor = std::min(floor, truncate_floor_());
  log_.truncate_through(floor);
  metrics::global_registry().counter("namenode.checkpoints").add();
  SMARTH_DEBUG("fsimage") << "checkpoint #" << checkpoints_ << " at txid "
                          << image_.last_txid << " (log retains "
                          << log_.size() << " ops past txid " << floor << ")";
}

}  // namespace smarth::hdfs
