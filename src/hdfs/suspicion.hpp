// Namenode-side suspicion list for gray failures. Quarantine (quarantine.hpp)
// is a binary, client-local verdict reached after a pipeline actually broke;
// suspicion is the namenode's graded, cluster-wide memory of *slowness*
// evidence that never broke anything: write-pipeline eviction reports and
// hedged-read wins. Each report adds a weight to the datanode's score; scores
// decay exponentially (halving every half-life), so a node that stops
// generating evidence — because it genuinely sped back up — recovers on its
// own. Nodes at or above the threshold are demoted (never excluded) in
// placement ordering and in SMARTH's top-n fast-node selection.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/ids.hpp"
#include "common/units.hpp"

namespace smarth::hdfs {

class SuspicionList {
 public:
  SuspicionList(SimDuration half_life, double threshold)
      : half_life_(half_life), threshold_(threshold) {}

  /// Adds `weight` to the node's decayed score at time `now`.
  void report(NodeId node, double weight, SimTime now);

  /// The node's score decayed to `now` (0 when it was never reported).
  double score(NodeId node, SimTime now) const;

  /// True when the decayed score is at or above the demotion threshold.
  bool suspect(NodeId node, SimTime now) const;

  /// All nodes currently at or above the threshold, ascending by NodeId so
  /// callers see a deterministic order.
  std::vector<NodeId> suspects(SimTime now) const;

  /// Forgets the node entirely (e.g. fresh speed evidence cleared it).
  void clear(NodeId node) { entries_.erase(node.value()); }

  std::uint64_t reports() const { return reports_; }

 private:
  struct Entry {
    double score = 0.0;
    SimTime updated_at = 0;
  };
  double decayed(const Entry& entry, SimTime now) const;

  SimDuration half_life_;
  double threshold_;
  std::unordered_map<std::int64_t, Entry> entries_;  ///< NodeId -> score
  std::uint64_t reports_ = 0;
};

}  // namespace smarth::hdfs
