// Client-side write machinery shared by the baseline HDFS stream and the
// SMARTH multi-pipeline stream: packet production (the paper's Tc), block and
// packet geometry, pipeline bookkeeping, and the AckSink plumbing. The
// concrete protocols differ only in how pipelines are scheduled — exactly the
// delta the paper proposes.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/ids.hpp"
#include "common/units.hpp"
#include "hdfs/datanode.hpp"
#include "hdfs/namenode.hpp"
#include "hdfs/quarantine.hpp"
#include "hdfs/transport.hpp"
#include "hdfs/types.hpp"
#include "rpc/retry.hpp"
#include "rpc/rpc_bus.hpp"
#include "sim/simulation.hpp"
#include "trace/metrics_registry.hpp"
#include "trace/trace_recorder.hpp"

namespace smarth::hdfs {

class BlockRecovery;

/// Everything a client-side stream needs from its environment.
struct StreamDeps {
  sim::Simulation& sim;
  Transport& transport;
  rpc::RpcBus& rpc;
  Namenode& namenode;
  const HdfsConfig& config;
  /// Cluster-wide pipeline id source: datanodes key pipeline state by id, so
  /// ids must be unique across every client and stream.
  IdGenerator<PipelineId>& pipeline_ids;
  /// Resolves datanode RPC endpoints (installed by the cluster wiring).
  std::function<Datanode*(NodeId)> datanode_resolver;
  /// Per-client quarantine list (may be null in minimal test harnesses):
  /// recovery feeds failures into it; placement requests deprioritize its
  /// members.
  QuarantineList* quarantine = nullptr;
};

/// A packet produced by the client but not yet bound to a block id (binding
/// happens when it is handed to a pipeline).
struct ProducedPacket {
  std::int64_t block_index = 0;
  std::int64_t seq_in_block = 0;
  Bytes payload = 0;
  bool last_in_block = false;
};

/// Final statistics of one upload, consumed by the metrics layer.
struct StreamStats {
  ClientId client;
  Bytes file_size = 0;
  SimTime started_at = 0;
  SimTime finished_at = 0;
  std::int64_t blocks = 0;
  std::int64_t packets = 0;
  int pipelines_created = 0;
  int max_concurrent_pipelines = 0;
  int recoveries = 0;
  /// Mid-block pipeline rebuilds triggered by the slow-node detector rather
  /// than a failure (subset of `recoveries`).
  int slow_evictions = 0;
  bool failed = false;
  std::string failure_reason;

  // --- fault/robustness accounting -----------------------------------------
  std::uint64_t rpc_retries = 0;   ///< control-plane attempts beyond the first
  std::uint64_t rpc_give_ups = 0;  ///< control-plane calls abandoned
  int quarantine_events = 0;       ///< datanodes this stream quarantined
  int under_replication_events = 0;  ///< recoveries that reduced replication
  /// Total time spent between pipeline-error detection and the rebuilt
  /// pipeline being handed back (MTTR numerator).
  SimDuration recovery_time_total = 0;

  SimDuration elapsed() const { return finished_at - started_at; }
  Bandwidth throughput() const { return throughput_of(file_size, elapsed()); }
  /// Mean time to recover a failed pipeline, in seconds (0 if none failed).
  double recovery_mttr_seconds() const {
    return recoveries > 0 ? to_seconds(recovery_time_total) / recoveries : 0.0;
  }
};

/// One replication pipeline as seen from the client.
struct ClientPipeline {
  PipelineId id;
  std::int64_t block_index = 0;
  BlockId block;
  std::vector<NodeId> targets;
  Bytes block_bytes = 0;
  std::int64_t num_packets = 0;
  Bytes resume_offset = 0;

  bool ready = false;   ///< setup acked end-to-end
  bool failed = false;  ///< recovery in progress or pending
  bool fnfa = false;    ///< SMARTH: first datanode holds the whole block

  /// Packets waiting to be handed to the network for this pipeline.
  std::deque<ProducedPacket> pending;
  /// Sent but not yet fully acked (retransmission source for recovery).
  std::deque<ProducedPacket> ack_queue;
  std::int64_t acked_packets = 0;  ///< counted from resume_offset

  SimTime created_at = 0;
  SimTime first_packet_sent = -1;
  SimTime fnfa_at = -1;
  sim::EventHandle watchdog;

  /// Slow-node eviction: per-target (sum, count) snapshot of the node's
  /// ack-latency histogram taken at pipeline creation. Detection only ever
  /// looks at deltas against these, so samples from earlier pipelines (or a
  /// pre-populated registry) cannot skew this pipeline's window.
  struct AckBaseline {
    double sum = 0;
    std::uint64_t count = 0;
  };
  std::vector<AckBaseline> ack_baselines;

  // Block-lifecycle spans (inert handles when tracing is disabled):
  // setup -> stream (first packet dispatched, some un-sent) -> tail-ack
  // (everything on the wire, waiting for the pipeline to drain).
  trace::SpanHandle span_setup;
  trace::SpanHandle span_stream;
  trace::SpanHandle span_tail;

  std::int64_t packets_since_resume() const {
    return num_packets - resume_offset_packets();
  }
  std::int64_t resume_offset_packets() const { return resume_packets_; }
  void set_resume_packets(std::int64_t n) { resume_packets_ = n; }
  bool complete() const { return acked_packets >= packets_since_resume(); }

 private:
  std::int64_t resume_packets_ = 0;
};

/// Base class: owns production and geometry; subclasses implement pipeline
/// scheduling. Completion is announced through the on_done callback.
class OutputStreamBase : public AckSink {
 public:
  using DoneCallback = std::function<void(const StreamStats&)>;

  OutputStreamBase(StreamDeps deps, ClientId client, NodeId client_node,
                   FileId file, Bytes file_size, DoneCallback on_done);
  ~OutputStreamBase() override;

  /// Kicks off production and the first block allocation.
  void start();

  /// Kills the stream from outside (writer crash injection): no complete()
  /// RPC, no further packets; the stream finishes failed with `reason`.
  /// In-flight recovery callbacks are dropped by the finished_ guard. The
  /// file stays under construction until the namenode's lease monitor
  /// recovers it.
  void abort(const std::string& reason);

  const StreamStats& stats() const { return stats_; }
  bool finished() const { return finished_; }
  /// Used by the cluster wiring to route ACK/FNFA messages to the stream
  /// that owns the pipeline.
  bool owns_pipeline(PipelineId id) const {
    return pipelines_.find(id) != pipelines_.end();
  }
  /// Number of pipelines currently in flight (for live sampling).
  std::size_t active_pipeline_count() const { return pipelines_.size(); }
  FileId file() const { return file_; }
  ClientId client() const { return client_; }
  NodeId client_node() const { return client_node_; }

  // --- geometry --------------------------------------------------------------
  std::int64_t total_blocks() const;
  Bytes block_bytes(std::int64_t block_index) const;
  std::int64_t packets_in_block(std::int64_t block_index) const;
  Bytes packet_payload(std::int64_t block_index, std::int64_t seq) const;

 protected:
  // --- production (shared) ----------------------------------------------------
  /// True while the subclass can accept another produced packet.
  virtual bool production_window_open() const = 0;
  /// Called whenever a new packet lands in data_queue_.
  virtual void on_packet_produced() = 0;
  /// Called by start() after production is armed.
  virtual void begin_protocol() = 0;

  /// Re-checks the production gate; subclasses call this when windows open.
  void pump_production();

  // --- shared helpers ---------------------------------------------------------
  /// addBlock RPC (with timeout/backoff retry); invokes cb with the located
  /// block (or error). `block_index` lets the namenode recognize a retry of a
  /// lost response and return the existing allocation.
  void request_block(std::int64_t block_index, std::vector<NodeId> excluded,
                     std::function<void(Result<LocatedBlock>)> cb);
  /// Builds a ClientPipeline record and sends the setup chain.
  ClientPipeline& create_pipeline(std::int64_t block_index,
                                  const LocatedBlock& located,
                                  Bytes resume_offset, bool smarth_mode);
  /// Hands the next pending packet of `pipeline` to the network.
  void send_next_packet(ClientPipeline& pipeline);
  /// complete() RPC with retry-until-true, then finishes the stream.
  void complete_file();
  void finish(bool failed, const std::string& reason);

  /// Arms/refreshes the no-ack-progress watchdog for a pipeline.
  void arm_watchdog(ClientPipeline& pipeline);

  // --- slow-node eviction -----------------------------------------------------
  /// Index of a mid-block straggler in `pipeline`, or -1. A node is a
  /// straggler when its windowed own-time (this pipeline's ack-latency delta,
  /// minus its downstream neighbour's) exceeds `eviction_outlier_factor`
  /// times the median of its peers'. Every member needs
  /// `eviction_min_samples` window samples before any verdict.
  int find_slow_pipeline_node(const ClientPipeline& pipeline) const;
  /// Checks the straggler bound and, when it trips (outside the per-stream
  /// cooldown), reports the node to the namenode and fires the normal
  /// pipeline-recovery path with the straggler as error index — evict and
  /// splice a replacement instead of waiting out the watchdog. Returns true
  /// when recovery was started (the pipeline is dead to the caller).
  bool maybe_evict_slow_node(ClientPipeline& pipeline);
  /// Subclass hook invoked when a pipeline times out or receives an error
  /// ack; `error_index` is the reporting datanode's pipeline position or -1.
  virtual void on_pipeline_error(ClientPipeline& pipeline, int error_index) = 0;

  ClientPipeline* find_pipeline(PipelineId id);

  /// Retry policy for namenode RPCs, derived from the config.
  rpc::RetryPolicy retry_policy() const;
  /// Charges time against the safe-mode wait budget: true while the stream
  /// should keep polling a safe-mode namenode (restart in progress; replica
  /// re-reports pending), false once the budget is exhausted and the stream
  /// should fail cleanly. The clock starts at the first refusal and resets
  /// on any successful allocation (create_pipeline).
  bool start_safe_mode_wait();
  /// Same shape for an overloaded namenode that keeps shedding this stream's
  /// calls after RPC-level backoff: true while the stream should keep
  /// re-polling (under overload_retry_budget), false once it should fail
  /// cleanly. Resets on any successful allocation.
  bool start_overload_wait();
  /// Charges one recovery attempt against `block`'s budget; true when the
  /// budget is exhausted and the stream should fail cleanly instead of
  /// retrying forever.
  bool recovery_budget_exhausted(BlockId block);
  /// MTTR bookkeeping around a recovery: start stamps the error-detection
  /// time; end accumulates into stats and folds the outcome's degradation
  /// markers in. Also opens/closes the recovery trace span.
  void note_recovery_start(PipelineId pipeline);
  void note_recovery_end(PipelineId pipeline);

  // --- trace instrumentation (all no-ops when tracing is disabled) ----------
  /// The per-block track name concurrent pipelines render under.
  static std::string trace_track(std::int64_t block_index);
  /// Marks the pipeline setup-acked: closes its setup span, opens stream.
  void trace_pipeline_ready(ClientPipeline& pipeline);
  /// Closes whatever lifecycle span the pipeline has open, tagging the
  /// outcome ("complete" / "error" / "aborted").
  void trace_pipeline_closed(ClientPipeline& pipeline, const char* outcome);

  StreamDeps deps_;
  ClientId client_;
  NodeId client_node_;
  FileId file_;
  Bytes file_size_;
  DoneCallback on_done_;

  /// Produced packets not yet assigned to a pipeline, in file order.
  std::deque<ProducedPacket> data_queue_;
  std::unordered_map<PipelineId, ClientPipeline> pipelines_;
  /// Recovery operations in flight or retired (kept alive until the stream
  /// dies; recovery objects must outlive their async callbacks).
  std::vector<std::unique_ptr<BlockRecovery>> recoveries_;

  StreamStats stats_;
  bool finished_ = false;
  /// Goodput counter (client.bytes_acked), cached because deliver_ack is the
  /// hottest client-side path; registry references stay valid until reset()
  /// and streams never outlive a reset.
  metrics::Counter* bytes_acked_counter_ = nullptr;
  /// True between start() and finish(): this stream is counted in the
  /// client.streams_open occupancy gauge.
  bool counted_open_ = false;
  /// Liveness token captured by in-flight RPC callbacks so a pruned stream's
  /// late responses are dropped instead of dereferencing freed memory.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
  /// Shared with in-flight retry chains (they may outlive the stream).
  std::shared_ptr<rpc::RetryStats> retry_stats_ =
      std::make_shared<rpc::RetryStats>();
  /// BlockId value -> recovery attempts consumed.
  std::unordered_map<std::int64_t, int> recovery_attempts_;
  /// PipelineId -> when its error was detected (MTTR bookkeeping).
  std::unordered_map<PipelineId, SimTime> recovery_started_;
  /// PipelineId -> open recovery span (tracing only).
  std::unordered_map<PipelineId, trace::SpanHandle> recovery_spans_;
  /// When this stream last evicted a slow node (-1: never); one eviction per
  /// `eviction_cooldown` keeps a noisy window from serially rebuilding.
  SimTime last_eviction_at_ = -1;
  /// Whole-upload span, opened by start() and closed by finish().
  trace::SpanHandle upload_span_;

 private:
  void produce_loop();

  std::int64_t produced_packets_ = 0;
  std::int64_t total_packets_ = 0;
  std::int64_t produce_block_ = 0;
  std::int64_t produce_seq_ = 0;
  bool producer_armed_ = false;
  /// Cancelled on finish() so a finished stream has no pending events
  /// referencing it (lets the cluster prune finished streams safely).
  sim::EventHandle producer_event_;
  sim::EventHandle complete_retry_;

 protected:
  /// Pending safe-mode re-poll (cancelled by finish()).
  sim::EventHandle safe_mode_retry_;

 private:
  /// When the current safe-mode wait began (-1: not waiting).
  SimTime safe_mode_wait_started_ = -1;
  /// When the current overload wait began (-1: not waiting).
  SimTime overload_wait_started_ = -1;
};

/// The baseline HDFS protocol: one pipeline at a time, stop-and-wait at every
/// block boundary (paper §II).
class DfsOutputStream : public OutputStreamBase {
 public:
  DfsOutputStream(StreamDeps deps, ClientId client, NodeId client_node,
                  FileId file, Bytes file_size, DoneCallback on_done);

  // AckSink
  void deliver_ack(const PipelineAck& ack) override;
  void deliver_setup_ack(const SetupAck& ack) override;
  void deliver_fnfa(const FnfaMessage& fnfa) override;

 protected:
  bool production_window_open() const override;
  void on_packet_produced() override;
  void begin_protocol() override;
  void on_pipeline_error(ClientPipeline& pipeline, int error_index) override;

 private:
  void allocate_next_block();
  void pump_stream();
  void on_block_fully_acked();
  void resume_after_recovery(ClientPipeline& old_pipeline,
                             std::vector<NodeId> targets, Bytes sync_offset);

  std::int64_t current_block_ = -1;
  PipelineId active_pipeline_;
  bool awaiting_block_ = false;
  bool recovering_ = false;
};

}  // namespace smarth::hdfs
