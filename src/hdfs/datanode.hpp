// A datanode: receives pipeline setup and data packets, verifies checksums,
// stores packets on its disk, mirrors them to the next datanode, aggregates
// ACKs upstream, and — in SMARTH mode — returns the FNFA to the client once
// it has received and stored a whole block as the pipeline's first node.
// It also implements the server side of pipeline recovery: replica probes,
// truncation to a sync point, aborts, and replica prefix transfer to a
// replacement node.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/ids.hpp"
#include "common/units.hpp"
#include "hdfs/block_scanner.hpp"
#include "hdfs/namenode.hpp"
#include "hdfs/transport.hpp"
#include "hdfs/types.hpp"
#include "rpc/rpc_bus.hpp"
#include "sim/periodic_task.hpp"
#include "sim/simulation.hpp"
#include "storage/block_store.hpp"
#include "storage/disk.hpp"
#include "storage/staging_buffer.hpp"
#include "trace/metrics_registry.hpp"

namespace smarth::hdfs {

/// Result of a replica probe during recovery.
struct ReplicaProbeResult {
  bool alive = false;  ///< responder answered at all
  bool has_replica = false;
  Bytes bytes = 0;
};

class Datanode : public PacketSink {
 public:
  struct Options {
    Bandwidth disk_write_bandwidth = Bandwidth::mega_bytes_per_second(100);
    SimDuration disk_op_overhead = microseconds(50);
  };

  Datanode(sim::Simulation& sim, Transport& transport, rpc::RpcBus& rpc,
           Namenode& namenode, const HdfsConfig& config, NodeId self,
           Options options);
  Datanode(sim::Simulation& sim, Transport& transport, rpc::RpcBus& rpc,
           Namenode& namenode, const HdfsConfig& config, NodeId self)
      : Datanode(sim, transport, rpc, namenode, config, self, Options()) {}
  ~Datanode() override;

  NodeId node_id() const { return self_; }

  /// Lets this node find peer datanodes for replica transfers; installed by
  /// the cluster wiring.
  void set_peer_resolver(std::function<Datanode*(NodeId)> resolver) {
    peer_resolver_ = std::move(resolver);
  }

  /// Registers with the namenode and starts heartbeating.
  void start();
  /// Hard-stops the node: no packets processed, no RPCs answered, heartbeats
  /// cease. Used by fault injection.
  void crash();
  bool crashed() const { return crashed_; }
  /// Brings a crashed node back: open (never-finalized) replicas are dropped
  /// — like real HDFS discarding rbw/ directories on restart — finalized ones
  /// survive and are re-reported, the node re-registers and heartbeats again.
  void restart();

  /// Fault injection: the packet (block, seq) fails checksum verification at
  /// this node (once).
  void inject_checksum_error(BlockId block, std::int64_t seq);
  /// Fault injection by arrival order: the nth data packet this node receives
  /// (1-based, counted over its lifetime) fails verification. Usable from
  /// workloads that do not know block ids in advance.
  void inject_checksum_error_on_nth_packet(std::uint64_t n);

  // --- Bit-rot (at-rest corruption) -----------------------------------------
  /// Flips one stored chunk of `block` at rest (its recorded CRC goes stale,
  /// so every later verification fails). Works even while the node is down:
  /// sectors decay regardless of the daemon process.
  Status rot_replica_chunk(BlockId block, std::size_t chunk);
  /// Rots one pseudo-randomly chosen chunk of one finalized replica; `salt`
  /// fully determines the choice. Returns false when this node holds no
  /// finalized data to rot.
  bool rot_random_finalized_chunk(std::uint64_t salt);
  /// Namenode command: drop a replica reported corrupt. No-op when absent.
  void invalidate_replica(BlockId block);

  /// Hedge-race loser cancellation: stop streaming `read` at the next packet
  /// boundary. Samples from a cancelled read land in the `hedge.cancelled`
  /// metrics instead of this node's ack-latency histogram, so a hedge loser
  /// cannot poison straggler attribution.
  void cancel_read(ReadId read);

  // --- PacketSink ------------------------------------------------------------
  void deliver_setup(const PipelineSetup& setup) override;
  void deliver_packet(const WirePacket& packet) override;
  void deliver_downstream_ack(const PipelineAck& ack) override;
  void deliver_downstream_setup_ack(const SetupAck& ack) override;
  void deliver_read_request(const ReadRequest& request) override;

  // --- Recovery server side (invoked via RPC) --------------------------------
  ReplicaProbeResult probe_replica(BlockId block) const;
  Status truncate_replica(BlockId block, Bytes length);
  /// Drops pipeline state (replica data is kept for recovery).
  void abort_pipeline(PipelineId pipeline);
  /// Drops every pipeline writing `block` (the writer is gone for good —
  /// lease recovery). Replica data is kept for commitBlockSynchronization.
  void abort_block(BlockId block);
  /// Reconciles `block`'s replica to exactly `length` bytes and finalizes
  /// it: longer open replicas are truncated, an already-finalized replica
  /// just has its length checked. Fails (without touching the replica) when
  /// this node holds fewer than `length` bytes. Idempotent.
  Result<Bytes> commit_replica(BlockId block, Bytes length);
  /// Removes a straggler replica that lost a commitBlockSynchronization
  /// round (shorter than the agreed length). No-op when absent.
  void discard_replica(BlockId block);
  /// Primary-datanode side of commitBlockSynchronization: aborts the dead
  /// writer's pipelines on every target, probes each target's stored
  /// length, commits the agreed length everywhere and reports the outcome
  /// to the namenode (empty holder set = no durable replica, abandon).
  void recover_uc_block(const UcRecoveryCommand& cmd);
  /// Streams the first `length` bytes of `block` to `dest` (a replacement
  /// node); `done(true)` once the destination has stored them. With
  /// `finalize_at_dest` the destination finalizes the replica and reports it
  /// to the namenode (re-replication); without it the copy stays open for a
  /// rebuilt write pipeline (recovery).
  void transfer_replica(BlockId block, NodeId dest, Bytes length,
                        std::function<void(bool)> done,
                        bool finalize_at_dest = false);
  /// Destination side of transfer_replica.
  void receive_replica_prefix(BlockId block, Bytes length, bool finalize,
                              std::function<void()> done);

  // --- Introspection ----------------------------------------------------------
  const storage::BlockStore& block_store() const { return store_; }
  const storage::DiskDevice& disk() const { return *disk_; }
  /// Mutable access for fault injection (fail-slow disk throttling).
  storage::DiskDevice& disk() { return *disk_; }
  Bytes staging_used(ClientId client) const;
  Bytes staging_high_water(ClientId client) const;
  std::uint64_t staging_overflows(ClientId client) const;
  std::size_t active_pipeline_count() const { return pipelines_.size(); }
  std::uint64_t packets_received() const { return packets_received_; }
  std::uint64_t fnfa_sent() const { return fnfa_sent_; }
  std::uint64_t reads_served() const { return reads_served_; }
  Bytes read_bytes_served() const { return read_bytes_served_; }
  const BlockScanner& scanner() const { return *scanner_; }
  std::uint64_t replicas_invalidated() const { return replicas_invalidated_; }
  std::uint64_t read_verify_failures() const { return read_verify_failures_; }

 private:
  struct PacketState {
    Bytes payload = 0;
    SimTime arrived_at = -1;  ///< when the packet reached this node's NIC
    bool written = false;
    bool downstream_acked = false;
    bool ack_sent = false;
    bool staging_released = false;
  };

  struct PipelineCtx {
    PipelineSetup setup;
    int my_index = 0;
    bool is_first = false;
    bool is_last = false;
    NodeId upstream;    // previous datanode; invalid when is_first
    NodeId downstream;  // next datanode; invalid when is_last
    std::int64_t resume_start_seq = 0;
    std::int64_t last_seq = -1;  ///< set once the last_in_block packet arrives
    std::unordered_map<std::int64_t, PacketState> packets;
    std::int64_t written_count = 0;
    std::int64_t acked_count = 0;
    Bytes staging_held = 0;  ///< bytes this pipeline holds in staging
    bool fnfa_emitted = false;
    bool finalized = false;
  };

  /// In-flight commitBlockSynchronization round on this (primary) node.
  struct UcSync {
    UcRecoveryCommand cmd;
    std::vector<std::pair<NodeId, ReplicaProbeResult>> probes;
    std::size_t awaiting = 0;
  };

  void apply_uc_sync(const std::shared_ptr<UcSync>& sync);
  void report_uc_sync(BlockId block, Bytes length,
                      std::vector<NodeId> holders);

  void process_packet(const WirePacket& packet, SimTime arrived_at);
  void on_packet_written(PipelineId pipeline, const WirePacket& packet);
  void maybe_ack_upstream(PipelineCtx& ctx, std::int64_t seq);
  void send_ack_upstream(PipelineCtx& ctx, PipelineAck ack);
  void maybe_emit_fnfa(PipelineCtx& ctx);
  void maybe_finalize(PipelineId pipeline, PipelineCtx& ctx);
  void release_packet_staging(PipelineCtx& ctx, PacketState& st);
  storage::StagingBuffer& staging_for(ClientId client);
  /// Streams one read packet (disk read then network send), then chains the
  /// next one; the disk FIFO interleaves these with pipeline writes.
  void serve_read_packet(ReadRequest request, std::int64_t seq,
                         Bytes remaining);

  sim::Simulation& sim_;
  Transport& transport_;
  rpc::RpcBus& rpc_;
  Namenode& namenode_;
  const HdfsConfig& config_;
  NodeId self_;
  Options options_;
  std::function<Datanode*(NodeId)> peer_resolver_;

  std::unique_ptr<storage::DiskDevice> disk_;
  storage::BlockStore store_;
  std::unordered_map<ClientId, std::unique_ptr<storage::StagingBuffer>>
      staging_;
  std::unordered_map<PipelineId, PipelineCtx> pipelines_;
  std::set<std::pair<std::int64_t, std::int64_t>> corrupt_injections_;
  std::set<std::uint64_t> corrupt_at_count_;

  std::unique_ptr<sim::PeriodicTask> heartbeat_;
  std::unique_ptr<BlockScanner> scanner_;
  bool crashed_ = false;
  std::uint64_t packets_received_ = 0;
  std::uint64_t fnfa_sent_ = 0;
  std::uint64_t reads_served_ = 0;
  Bytes read_bytes_served_ = 0;
  std::uint64_t replicas_invalidated_ = 0;
  std::uint64_t read_verify_failures_ = 0;
  /// Reads a hedged client told us we lost; the serving chain stops at the
  /// next packet boundary and drops the entry.
  std::unordered_set<std::int64_t> cancelled_reads_;
  /// Cached registry handle for this node's arrival->ACK latency (stays
  /// valid for the node's lifetime; smarthsim resets the registry only
  /// before constructing a fresh cluster).
  metrics::LatencyHistogram* ack_latency_hist_ = nullptr;
  /// Cached handle for serve latency of cancelled (hedge-loser) reads — kept
  /// apart from ack_latency_hist_ so straggler attribution stays clean.
  metrics::LatencyHistogram* hedge_cancelled_hist_ = nullptr;
};

}  // namespace smarth::hdfs
