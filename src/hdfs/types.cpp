#include "hdfs/types.hpp"

namespace smarth::hdfs {

std::string to_string(AckStatus status) {
  switch (status) {
    case AckStatus::kSuccess: return "success";
    case AckStatus::kChecksumError: return "checksum_error";
    case AckStatus::kNodeError: return "node_error";
  }
  return "?";
}

}  // namespace smarth::hdfs
