// Warm standby namenode: a second Namenode instance that bootstraps from the
// active's fsimage and tails the shared edit log with bounded lag (HDFS's
// standby-reading-the-shared-journal arrangement, QJM collapsed into the
// always-durable in-sim log). It runs no monitors and issues no commands; its
// sole job is to hold a near-current namespace so failover replays only the
// ops its tailer has not yet consumed — strictly fewer than a cold restart's.
#pragma once

#include <cstdint>
#include <memory>

#include "common/ids.hpp"
#include "common/units.hpp"
#include "hdfs/fsimage.hpp"
#include "hdfs/namenode.hpp"
#include "net/topology.hpp"
#include "sim/simulation.hpp"

namespace smarth::hdfs {

class EditLog;

class StandbyNamenode {
 public:
  /// `node` is only an identity for the inner Namenode (the standby neither
  /// sends nor receives RPCs until promoted); `log` is the shared journal.
  StandbyNamenode(sim::Simulation& sim, const net::Topology& topology,
                  const HdfsConfig& config, NodeId node, const EditLog& log);

  /// Seeds the standby's namespace (typically the active's current image)
  /// and records which txids are already folded in.
  void bootstrap(const NamenodeImage& image, std::int64_t applied_txid);

  /// Starts/stops the periodic tailer (config.standby_tail_interval).
  void start();
  void stop();

  /// Catches up to the log's head immediately (used at failover, so the
  /// promotion delay covers only genuinely-unseen ops).
  void catch_up();

  std::int64_t applied_txid() const { return applied_txid_; }
  std::uint64_t ops_applied() const { return ops_applied_; }

  /// The standby's namespace as a failover-ready image (last_txid stamped
  /// with the tailer's position).
  NamenodeImage image() const;
  const Namenode& nn() const { return nn_; }

 private:
  Namenode nn_;
  const EditLog& log_;
  SimDuration tail_interval_;
  std::int64_t applied_txid_ = 0;
  std::uint64_t ops_applied_ = 0;
  std::unique_ptr<sim::PeriodicTask> task_;
};

}  // namespace smarth::hdfs
