// Replica placement policies. The default policy reproduces HDFS's
// rack-aware rule (first replica local-or-random, second on a remote rack,
// third beside the second); SMARTH's global optimization (paper Alg. 1) is a
// drop-in PlacementPolicy implemented in src/smarth/global_optimizer.*.
#pragma once

#include <memory>
#include <vector>

#include "common/ids.hpp"
#include "common/rng.hpp"
#include "net/topology.hpp"

namespace smarth::hdfs {

class SpeedBoard;  // defined in namenode.hpp

/// Everything a policy may consult when choosing targets.
struct PlacementContext {
  const net::Topology& topology;
  /// Datanodes currently alive (heartbeating), in registration order.
  const std::vector<NodeId>& alive;
  Rng& rng;
  /// Per-client speed records (SMARTH); nullptr under the default policy.
  const SpeedBoard* speeds = nullptr;
  /// Soft exclusion (client quarantine): these nodes are only chosen when no
  /// other candidate exists, so a degraded cluster keeps making progress.
  const std::vector<NodeId>* deprioritized = nullptr;
  /// Graded slowness demotion (namenode suspicion list): suspects rank below
  /// clean nodes but above the deprioritized tier — slow beats broken.
  const std::vector<NodeId>* suspects = nullptr;
};

struct PlacementRequest {
  ClientId client;
  NodeId client_node;
  int replication = 3;
  /// Nodes the client cannot use (active-pipeline members, failed nodes).
  std::vector<NodeId> excluded;
  /// Nodes the client would rather avoid (quarantined after failures); used
  /// as a last resort only.
  std::vector<NodeId> deprioritized;
};

class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;
  /// Returns `replication` distinct targets in pipeline order, or fewer if
  /// the cluster cannot satisfy the request.
  virtual std::vector<NodeId> choose_targets(const PlacementRequest& request,
                                             const PlacementContext& ctx) = 0;
  virtual const char* name() const = 0;
};

/// HDFS's default rack-aware policy.
class DefaultPlacementPolicy : public PlacementPolicy {
 public:
  std::vector<NodeId> choose_targets(const PlacementRequest& request,
                                     const PlacementContext& ctx) override;
  const char* name() const override { return "hdfs-default"; }
};

// --- Helpers shared with the SMARTH policy ----------------------------------

/// True if `node` is in `chosen` or `excluded`.
bool placement_unusable(NodeId node, const std::vector<NodeId>& chosen,
                        const std::vector<NodeId>& excluded);

/// Uniformly random usable node, optionally constrained by a rack predicate;
/// returns an invalid id when no candidate exists.
NodeId pick_random_node(const PlacementContext& ctx,
                        const std::vector<NodeId>& chosen,
                        const std::vector<NodeId>& excluded,
                        const std::function<bool(NodeId)>& rack_ok);

/// Remote-rack pick with graceful fallback to any usable node (single-rack
/// clusters must still be writable, as in HDFS).
NodeId pick_remote_rack_node(const PlacementContext& ctx, NodeId relative_to,
                             const std::vector<NodeId>& chosen,
                             const std::vector<NodeId>& excluded);

/// Same-rack pick with the same fallback.
NodeId pick_same_rack_node(const PlacementContext& ctx, NodeId relative_to,
                           const std::vector<NodeId>& chosen,
                           const std::vector<NodeId>& excluded);

}  // namespace smarth::hdfs
