#include "hdfs/datanode.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/log.hpp"
#include "trace/trace_recorder.hpp"

namespace smarth::hdfs {

namespace {

// SplitMix64 finalizer: deterministic salts for bit-rot target selection
// without touching any shared RNG stream.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

Datanode::Datanode(sim::Simulation& sim, Transport& transport,
                   rpc::RpcBus& rpc, Namenode& namenode,
                   const HdfsConfig& config, NodeId self, Options options)
    : sim_(sim), transport_(transport), rpc_(rpc), namenode_(namenode),
      config_(config), self_(self), options_(options),
      store_(config.checksum_chunk_size) {
  disk_ = std::make_unique<storage::DiskDevice>(
      sim_, "disk@" + self.to_string(), options_.disk_write_bandwidth,
      options_.disk_op_overhead);
  scanner_ = std::make_unique<BlockScanner>(
      sim_, *disk_, store_, config_, [this](BlockId block) {
        rpc_.notify(self_, namenode_.node_id(), [this, block] {
          namenode_.report_bad_replica(block, self_);
        });
      });
  ack_latency_hist_ = &metrics::global_registry().histogram(
      "datanode." + self_.to_string() + ".ack_ns");
  hedge_cancelled_hist_ =
      &metrics::global_registry().histogram("hedge.cancelled_ns");
}

Datanode::~Datanode() = default;

void Datanode::start() {
  namenode_.register_datanode(self_);
  heartbeat_ = std::make_unique<sim::PeriodicTask>(
      sim_, config_.heartbeat_interval, [this] {
        if (crashed_) return;
        // Each heartbeat carries an incremental block report (finalized
        // replicas). blockReceived notifications are fire-and-forget and can
        // be lost to RPC chaos or partitions; the periodic report makes the
        // namenode's replica map self-healing (block_received is idempotent).
        std::vector<std::pair<BlockId, Bytes>> report;
        for (const auto& replica : store_.all_replicas()) {
          if (replica.state == storage::ReplicaState::kFinalized) {
            report.emplace_back(replica.block, replica.bytes);
          }
        }
        // A heartbeat shed by namenode admission control never reaches this
        // handler at all — overload can delay liveness bookkeeping but never
        // mistake a healthy node for a stale or slow one.
        rpc_.notify(self_, namenode_.node_id(),
                    [this, report = std::move(report)] {
                      if (!namenode_.handle_heartbeat(self_)) {
                        // The namenode restarted and lost our registration:
                        // re-register, then let the full report below stand
                        // in for the post-registration block report.
                        namenode_.register_datanode(self_);
                      }
                      for (const auto& [block, bytes] : report) {
                        namenode_.block_received(self_, block, bytes);
                      }
                    },
                    {rpc::ServiceClass::kHeartbeat});
      });
  // Spread heartbeats so the cluster's are not phase-locked.
  const auto jitter = static_cast<SimDuration>(
      sim_.rng().uniform_int(0, config_.heartbeat_interval - 1));
  heartbeat_->start_with_delay(jitter);
  scanner_->start();  // no-op unless a scrub budget is configured
}

void Datanode::crash() {
  crashed_ = true;
  if (trace::active()) {
    trace::recorder()->instant(trace::Category::kFault,
                               "dn " + self_.to_string(), "crash", {});
  }
  if (heartbeat_) heartbeat_->stop();
  scanner_->stop();
  rpc_.set_host_down(self_, true);
  // Staging accounting for in-flight pipelines is torn down with the node.
  for (auto& [pipeline, ctx] : pipelines_) {
    storage::StagingBuffer& buf = staging_for(ctx.setup.client);
    buf.release(std::min(ctx.staging_held, buf.used()));
  }
  pipelines_.clear();
}

void Datanode::restart() {
  if (!crashed_) return;
  crashed_ = false;
  if (trace::active()) {
    trace::recorder()->instant(trace::Category::kFault,
                               "dn " + self_.to_string(), "restart", {});
  }
  // Replicas that were mid-write when the node died are untrusted and
  // discarded; finalized replicas survive the reboot.
  for (const auto& replica : store_.all_replicas()) {
    if (replica.state != storage::ReplicaState::kFinalized) {
      store_.remove(replica.block);
    }
  }
  staging_.clear();
  rpc_.set_host_down(self_, false);
  namenode_.register_datanode(self_);
  // Re-report surviving finalized replicas (HDFS's post-registration block
  // report) so the namenode's replica map reflects reality again.
  for (const auto& replica : store_.all_replicas()) {
    rpc_.notify(self_, namenode_.node_id(),
                [this, block = replica.block, bytes = replica.bytes] {
                  namenode_.block_received(self_, block, bytes);
                },
                {rpc::ServiceClass::kHeartbeat});
  }
  if (heartbeat_) {
    const auto jitter = static_cast<SimDuration>(
        sim_.rng().uniform_int(0, config_.heartbeat_interval - 1));
    heartbeat_->start_with_delay(jitter);
  }
  scanner_->start();
  SMARTH_INFO("datanode") << "node " << self_.value() << " restarted with "
                          << store_.finalized_count()
                          << " finalized replicas";
}

void Datanode::inject_checksum_error(BlockId block, std::int64_t seq) {
  corrupt_injections_.emplace(block.value(), seq);
}

void Datanode::inject_checksum_error_on_nth_packet(std::uint64_t n) {
  SMARTH_CHECK_MSG(n > 0, "packet counts are 1-based");
  corrupt_at_count_.insert(n);
}

Status Datanode::rot_replica_chunk(BlockId block, std::size_t chunk) {
  // Deliberately not gated on crashed_: media decays whether or not the
  // daemon is running.
  return store_.rot_chunk(block, chunk);
}

bool Datanode::rot_random_finalized_chunk(std::uint64_t salt) {
  // Deterministic choice over a sorted candidate list: the same salt always
  // rots the same chunk regardless of map iteration order.
  std::vector<std::pair<std::int64_t, std::size_t>> candidates;
  for (const auto& replica : store_.all_replicas()) {
    if (replica.state != storage::ReplicaState::kFinalized) continue;
    const std::size_t chunks = store_.chunk_count(replica.block);
    if (chunks > 0) candidates.emplace_back(replica.block.value(), chunks);
  }
  if (candidates.empty()) return false;
  std::sort(candidates.begin(), candidates.end());
  const std::uint64_t h = mix64(salt);
  const auto& [value, chunks] = candidates[h % candidates.size()];
  const auto chunk = static_cast<std::size_t>(mix64(h) % chunks);
  SMARTH_WARN("datanode") << self_.to_string() << " bit-rot in block "
                          << value << " chunk " << chunk;
  return store_.rot_chunk(BlockId{value}, chunk).ok();
}

void Datanode::invalidate_replica(BlockId block) {
  if (crashed_) return;
  if (!store_.has_replica(block)) return;
  SMARTH_CHECK(store_.remove(block).ok());
  ++replicas_invalidated_;
  SMARTH_INFO("datanode") << self_.to_string()
                          << " invalidated corrupt replica "
                          << block.to_string();
}

storage::StagingBuffer& Datanode::staging_for(ClientId client) {
  auto it = staging_.find(client);
  if (it == staging_.end()) {
    it = staging_
             .emplace(client, std::make_unique<storage::StagingBuffer>(
                                  config_.staging_buffer_bytes))
             .first;
  }
  return *it->second;
}

Bytes Datanode::staging_used(ClientId client) const {
  auto it = staging_.find(client);
  return it == staging_.end() ? 0 : it->second->used();
}

Bytes Datanode::staging_high_water(ClientId client) const {
  auto it = staging_.find(client);
  return it == staging_.end() ? 0 : it->second->high_water();
}

std::uint64_t Datanode::staging_overflows(ClientId client) const {
  auto it = staging_.find(client);
  return it == staging_.end() ? 0 : it->second->overflow_events();
}

void Datanode::deliver_setup(const PipelineSetup& setup) {
  if (crashed_) return;
  auto it = std::find(setup.targets.begin(), setup.targets.end(), self_);
  SMARTH_CHECK_MSG(it != setup.targets.end(),
                   "setup delivered to node not in pipeline");
  PipelineCtx ctx;
  ctx.setup = setup;
  ctx.my_index = static_cast<int>(it - setup.targets.begin());
  ctx.is_first = ctx.my_index == 0;
  ctx.is_last = ctx.my_index + 1 == static_cast<int>(setup.targets.size());
  if (!ctx.is_first) {
    ctx.upstream = setup.targets[static_cast<std::size_t>(ctx.my_index - 1)];
  }
  if (!ctx.is_last) {
    ctx.downstream = setup.targets[static_cast<std::size_t>(ctx.my_index + 1)];
  }
  ctx.resume_start_seq = setup.resume_offset / config_.transfer_payload();

  if (!store_.has_replica(setup.block)) {
    SMARTH_CHECK(store_.create_replica(setup.block).ok());
    if (setup.resume_offset > 0) {
      // Replacement node that just received the prefix via transfer_replica
      // would already have a replica; a fresh node resuming mid-block means
      // the prefix arrived as raw bytes — account for them.
      SMARTH_CHECK(store_.append(setup.block, setup.resume_offset).ok());
    }
  } else {
    // Resuming after recovery: the durable prefix must match the sync point
    // the client negotiated.
    const auto info = store_.replica(setup.block);
    SMARTH_CHECK_MSG(info.ok() && info.value().bytes == setup.resume_offset,
                     "resume offset mismatch on "
                         << setup.block.to_string() << ": have "
                         << (info.ok() ? info.value().bytes : -1) << " want "
                         << setup.resume_offset);
  }
  pipelines_[setup.pipeline] = std::move(ctx);

  const PipelineCtx& stored = pipelines_[setup.pipeline];
  SMARTH_DEBUG("datanode") << self_.to_string() << " joins "
                           << setup.pipeline.to_string() << " for "
                           << setup.block.to_string() << " at position "
                           << stored.my_index
                           << (stored.is_first ? " (first)" : "")
                           << (stored.is_last ? " (last)" : "");
  if (stored.is_last) {
    // End of the chain: acknowledge setup back up.
    SetupAck ack{setup.pipeline, true, -1};
    if (stored.is_first) {
      transport_.send_setup_ack_to_client(self_, setup.client_node, ack);
    } else {
      transport_.send_setup_ack_to_datanode(self_, stored.upstream, ack);
    }
  } else {
    transport_.send_setup(self_, stored.downstream, setup);
  }
}

void Datanode::deliver_downstream_setup_ack(const SetupAck& ack) {
  if (crashed_) return;
  auto it = pipelines_.find(ack.pipeline);
  if (it == pipelines_.end()) return;
  PipelineCtx& ctx = it->second;
  if (ctx.is_first) {
    transport_.send_setup_ack_to_client(self_, ctx.setup.client_node, ack);
  } else {
    transport_.send_setup_ack_to_datanode(self_, ctx.upstream, ack);
  }
}

void Datanode::deliver_packet(const WirePacket& packet) {
  if (crashed_) return;
  if (pipelines_.find(packet.pipeline) == pipelines_.end()) return;
  ++packets_received_;
  const SimTime arrived_at = sim_.now();
  // Checksum verification occupies the node before the packet is mirrored or
  // queued for the disk (a coalesced transfer pays it once per real packet).
  const SimDuration verify = config_.transfer_verify_time(packet.payload);
  if (verify > 0) {
    sim_.post_after(verify, "dn.verify", [this, packet, arrived_at] {
      process_packet(packet, arrived_at);
    });
  } else {
    process_packet(packet, arrived_at);
  }
}

void Datanode::process_packet(const WirePacket& packet, SimTime arrived_at) {
  if (crashed_) return;
  auto it = pipelines_.find(packet.pipeline);
  if (it == pipelines_.end()) return;
  PipelineCtx& ctx = it->second;

  const auto corrupt_key = std::make_pair(packet.block.value(), packet.seq);
  const bool corrupt_by_count = corrupt_at_count_.erase(packets_received_) > 0;
  if (corrupt_injections_.erase(corrupt_key) > 0 || corrupt_by_count) {
    SMARTH_WARN("datanode") << self_.to_string()
                            << " checksum failure on seq " << packet.seq;
    send_ack_upstream(ctx, PipelineAck{packet.pipeline, packet.seq,
                                       AckStatus::kChecksumError,
                                       ctx.my_index});
    return;  // packet dropped; the client will run pipeline recovery
  }

  if (packet.last_in_block) ctx.last_seq = packet.seq;
  PacketState& st = ctx.packets[packet.seq];
  st.payload = packet.payload;
  st.arrived_at = arrived_at;
  staging_for(ctx.setup.client).reserve_forced(packet.payload);
  ctx.staging_held += packet.payload;

  // Mirror downstream before the local write completes (cut-through at the
  // node granularity, as HDFS's DataXceiver does).
  if (!ctx.is_last) {
    transport_.send_packet(self_, ctx.downstream, packet);
  }

  disk_->write(packet.payload,
               static_cast<std::uint64_t>(
                   config_.packets_in_transfer(packet.payload)),
               [this, pipeline = packet.pipeline, packet] {
                 on_packet_written(pipeline, packet);
               });
}

void Datanode::release_packet_staging(PipelineCtx& ctx, PacketState& st) {
  if (st.staging_released) return;
  st.staging_released = true;
  storage::StagingBuffer& buf = staging_for(ctx.setup.client);
  buf.release(std::min(st.payload, buf.used()));
  ctx.staging_held -= std::min(st.payload, ctx.staging_held);
}

void Datanode::on_packet_written(PipelineId pipeline,
                                 const WirePacket& packet) {
  if (crashed_) return;
  auto it = pipelines_.find(pipeline);
  if (it == pipelines_.end()) return;  // pipeline aborted meanwhile
  PipelineCtx& ctx = it->second;

  SMARTH_CHECK(store_.append(packet.block, packet.payload).ok());
  PacketState& st = ctx.packets[packet.seq];
  st.written = true;
  ++ctx.written_count;

  if (ctx.is_last) {
    // Nothing to mirror: the staging slot frees on the durable write.
    release_packet_staging(ctx, st);
  }
  maybe_ack_upstream(ctx, packet.seq);
  if (ctx.is_first && ctx.setup.smarth_mode) maybe_emit_fnfa(ctx);
  maybe_finalize(pipeline, ctx);
}

void Datanode::deliver_downstream_ack(const PipelineAck& ack) {
  if (crashed_) return;
  auto it = pipelines_.find(ack.pipeline);
  if (it == pipelines_.end()) return;
  PipelineCtx& ctx = it->second;

  if (ack.status != AckStatus::kSuccess) {
    // Error statuses propagate to the client untouched.
    send_ack_upstream(ctx, ack);
    return;
  }
  PacketState& st = ctx.packets[ack.seq];
  if (!st.downstream_acked) {
    st.downstream_acked = true;
    // The mirrored copy is confirmed downstream: the staging slot frees.
    release_packet_staging(ctx, st);
  }
  maybe_ack_upstream(ctx, ack.seq);
  maybe_finalize(ack.pipeline, ctx);
}

void Datanode::maybe_ack_upstream(PipelineCtx& ctx, std::int64_t seq) {
  auto it = ctx.packets.find(seq);
  if (it == ctx.packets.end()) return;
  PacketState& st = it->second;
  if (st.ack_sent || !st.written) return;
  if (!ctx.is_last && !st.downstream_acked) return;
  st.ack_sent = true;
  ++ctx.acked_count;
  // Per-hop latency: arrival -> upstream ACK. For the tail node this is its
  // own verify+write time; for interior nodes it folds in the downstream
  // wait, which the straggler report subtracts back out.
  if (st.arrived_at >= 0) {
    const SimDuration held = sim_.now() - st.arrived_at;
    ack_latency_hist_->observe(static_cast<double>(held));
    if (trace::active()) {
      trace::recorder()->record_hop(ctx.setup.pipeline, self_, ctx.my_index,
                                    held);
    }
  }
  send_ack_upstream(
      ctx, PipelineAck{ctx.setup.pipeline, seq, AckStatus::kSuccess, -1});
}

void Datanode::send_ack_upstream(PipelineCtx& ctx, PipelineAck ack) {
  if (ctx.is_first) {
    transport_.send_ack_to_client(self_, ctx.setup.client_node, ack);
  } else {
    transport_.send_ack_to_datanode(self_, ctx.upstream, ack);
  }
}

void Datanode::maybe_emit_fnfa(PipelineCtx& ctx) {
  if (ctx.fnfa_emitted || ctx.last_seq < 0) return;
  const std::int64_t expected = ctx.last_seq - ctx.resume_start_seq + 1;
  if (ctx.written_count < expected) return;
  ctx.fnfa_emitted = true;
  ++fnfa_sent_;
  if (trace::active()) {
    trace::recorder()->instant(
        trace::Category::kPipeline, "dn " + self_.to_string(), "FNFA sent",
        {{"block", ctx.setup.block.to_string()},
         {"pipeline", ctx.setup.pipeline.to_string()}});
  }
  SMARTH_DEBUG("datanode") << self_.to_string()
                           << " holds all packets of "
                           << ctx.setup.block.to_string()
                           << "; sending FNFA";
  transport_.send_fnfa(self_, ctx.setup.client_node,
                       FnfaMessage{ctx.setup.pipeline, ctx.setup.block});
}

void Datanode::maybe_finalize(PipelineId pipeline, PipelineCtx& ctx) {
  if (ctx.finalized || ctx.last_seq < 0) return;
  const std::int64_t expected = ctx.last_seq - ctx.resume_start_seq + 1;
  if (ctx.acked_count < expected) return;
  ctx.finalized = true;
  const auto len = store_.finalize(ctx.setup.block);
  SMARTH_CHECK(len.ok());
  if (trace::active()) {
    trace::recorder()->instant(
        trace::Category::kBlock, "dn " + self_.to_string(), "finalize",
        {{"block", ctx.setup.block.to_string()},
         {"bytes", std::to_string(len.value())},
         {"pipeline", ctx.setup.pipeline.to_string()}});
  }
  SMARTH_DEBUG("datanode") << self_.to_string() << " finalized "
                           << ctx.setup.block.to_string() << " ("
                           << format_bytes(len.value()) << ")";
  rpc_.notify(self_, namenode_.node_id(),
              [this, block = ctx.setup.block, bytes = len.value()] {
                namenode_.block_received(self_, block, bytes);
              },
              {rpc::ServiceClass::kHeartbeat});
  pipelines_.erase(pipeline);
}

void Datanode::deliver_read_request(const ReadRequest& request) {
  if (crashed_) return;  // the reader's timeout handles it
  const auto replica = store_.replica(request.block);
  const bool available =
      replica.ok() && replica.value().bytes >= request.offset + request.length;
  if (!available || request.length <= 0) {
    ReadPacket nak;
    nak.read = request.read;
    nak.block = request.block;
    nak.error = true;
    nak.last = true;
    transport_.send_read_packet(self_, request.reader_node, nak);
    return;
  }
  ++reads_served_;
  serve_read_packet(request, /*seq=*/0, request.length);
}

void Datanode::cancel_read(ReadId read) {
  cancelled_reads_.insert(read.value());
  metrics::global_registry().counter("hedge.cancelled").add();
}

void Datanode::serve_read_packet(ReadRequest request, std::int64_t seq,
                                 Bytes remaining) {
  if (crashed_ || remaining <= 0) return;
  const Bytes payload = std::min(remaining, config_.transfer_payload());
  const auto read_ops =
      static_cast<std::uint64_t>(config_.packets_in_transfer(payload));
  const SimTime issued_at = sim_.now();
  disk_->read(payload, read_ops, [this, request, seq, remaining, payload,
                                  issued_at] {
    if (crashed_) return;
    const SimDuration served = sim_.now() - issued_at;
    const auto it = cancelled_reads_.find(request.read.value());
    if (it != cancelled_reads_.end()) {
      // Hedge loser: the client already took the block from the winner. Stop
      // streaming and keep the slow-disk evidence out of the per-node
      // ack-latency histogram that straggler attribution reads.
      cancelled_reads_.erase(it);
      hedge_cancelled_hist_->observe(static_cast<double>(served));
      return;
    }
    if (config_.hedged_reads) {
      // Hedged mode folds read-serve latency into the same per-node latency
      // histogram the hedge timer derives its threshold from, so a gray node
      // that only serves reads still grows a visibly slow profile.
      ack_latency_hist_->observe(static_cast<double>(served));
    }
    // Verify the chunk CRCs covering this packet's byte range, as a real
    // datanode does after pulling the bytes off disk. On mismatch no payload
    // leaves this node — the reader is told to fail over and report us.
    const Bytes packet_offset = request.offset + (request.length - remaining);
    if (!store_.verify_range(request.block, packet_offset, payload)) {
      ++read_verify_failures_;
      metrics::global_registry().counter("datanode.read_verify_failures").add();
      if (trace::active()) {
        trace::recorder()->instant(
            trace::Category::kRead, "dn " + self_.to_string(),
            "read checksum mismatch",
            {{"block", request.block.to_string()},
             {"offset", std::to_string(packet_offset)}});
      }
      SMARTH_WARN("datanode") << self_.to_string()
                              << " read verification failed on "
                              << request.block.to_string() << " at offset "
                              << packet_offset;
      ReadPacket bad;
      bad.read = request.read;
      bad.block = request.block;
      bad.seq = seq;
      bad.corrupt = true;
      bad.last = true;
      transport_.send_read_packet(self_, request.reader_node, bad);
      return;  // stop streaming this replica
    }
    ReadPacket packet;
    packet.read = request.read;
    packet.block = request.block;
    packet.seq = seq;
    packet.payload = payload;
    packet.last = remaining == payload;
    read_bytes_served_ += payload;
    transport_.send_read_packet(self_, request.reader_node, packet);
    // Next disk read proceeds without waiting for the network send; the
    // egress link and disk FIFO each pace themselves.
    serve_read_packet(request, seq + 1, remaining - payload);
  });
}

ReplicaProbeResult Datanode::probe_replica(BlockId block) const {
  ReplicaProbeResult result;
  result.alive = !crashed_;
  if (crashed_) return result;
  const auto info = store_.replica(block);
  if (info.ok()) {
    result.has_replica = true;
    result.bytes = info.value().bytes;
  }
  return result;
}

Status Datanode::truncate_replica(BlockId block, Bytes length) {
  if (crashed_) return make_error("crashed", "datanode down");
  if (!store_.has_replica(block)) {
    // A pipeline member whose upstream died before forwarding anything: it
    // resumes from scratch, so materialize the empty replica here.
    if (length != 0) {
      return make_error("replica_missing",
                        "cannot truncate absent replica to nonzero length");
    }
    return store_.create_replica(block);
  }
  return store_.truncate(block, length);
}

void Datanode::abort_pipeline(PipelineId pipeline) {
  auto it = pipelines_.find(pipeline);
  if (it == pipelines_.end()) return;
  storage::StagingBuffer& buf = staging_for(it->second.setup.client);
  buf.release(std::min(it->second.staging_held, buf.used()));
  pipelines_.erase(it);
}

void Datanode::abort_block(BlockId block) {
  if (crashed_) return;
  for (auto it = pipelines_.begin(); it != pipelines_.end();) {
    if (it->second.setup.block == block) {
      storage::StagingBuffer& buf = staging_for(it->second.setup.client);
      buf.release(std::min(it->second.staging_held, buf.used()));
      it = pipelines_.erase(it);
    } else {
      ++it;
    }
  }
}

Result<Bytes> Datanode::commit_replica(BlockId block, Bytes length) {
  if (crashed_) return Error{"crashed", "datanode down"};
  const auto info = store_.replica(block);
  if (!info.ok()) {
    return Error{"replica_missing", "no replica of " + block.to_string()};
  }
  if (info.value().bytes < length) {
    return Error{"short_replica",
                 block.to_string() + " holds " +
                     std::to_string(info.value().bytes) + " < " +
                     std::to_string(length)};
  }
  if (info.value().state == storage::ReplicaState::kFinalized) {
    if (info.value().bytes != length) {
      return Error{"length_mismatch",
                   block.to_string() + " finalized at " +
                       std::to_string(info.value().bytes) + ", want " +
                       std::to_string(length)};
    }
    return length;  // idempotent: an earlier round already committed it
  }
  if (info.value().bytes > length) {
    const Status st = store_.truncate(block, length);
    if (!st.ok()) return st.error();
  }
  const auto fin = store_.finalize(block);
  if (!fin.ok()) return fin.error();
  // No blockReceived notify here: the namenode learns the holder set from
  // commitBlockSynchronization itself, and the heartbeat's incremental
  // report re-asserts the finalized replica should that commit get lost.
  return length;
}

void Datanode::discard_replica(BlockId block) {
  if (crashed_) return;
  if (store_.has_replica(block)) SMARTH_CHECK(store_.remove(block).ok());
}

void Datanode::recover_uc_block(const UcRecoveryCommand& cmd) {
  if (crashed_) return;
  SMARTH_CHECK_MSG(static_cast<bool>(peer_resolver_),
                   "peer resolver not installed on " << self_.to_string());
  SMARTH_INFO("datanode") << self_.to_string()
                          << " primary for commitBlockSynchronization of "
                          << cmd.block.to_string() << " ("
                          << cmd.targets.size() << " targets"
                          << (cmd.tail ? ", tail)" : ")");
  auto sync = std::make_shared<UcSync>();
  sync->cmd = cmd;
  sync->awaiting = cmd.targets.size();
  for (NodeId target : cmd.targets) {
    if (target == self_) {
      abort_block(cmd.block);
      sync->probes.emplace_back(target, probe_replica(cmd.block));
      if (--sync->awaiting == 0) apply_uc_sync(sync);
      continue;
    }
    // Tear down the dead writer's pipeline state on the peer first. Aborts
    // never touch replica bytes, so ordering against the probe is
    // irrelevant.
    rpc_.notify(self_, target, [this, target, block = cmd.block] {
      Datanode* peer = peer_resolver_(target);
      if (peer != nullptr) peer->abort_block(block);
    });
    auto settled = std::make_shared<bool>(false);
    auto settle = [this, sync, target, settled](ReplicaProbeResult result) {
      if (*settled) return;
      *settled = true;
      if (crashed_) return;  // primary died mid-round; the monitor re-elects
      sync->probes.emplace_back(target, result);
      if (--sync->awaiting == 0) apply_uc_sync(sync);
    };
    Datanode* peer = peer_resolver_(target);
    if (peer != nullptr) {
      rpc_.call<ReplicaProbeResult>(
          self_, target, [peer, block = cmd.block] {
            return peer->probe_replica(block);
          },
          [settle](ReplicaProbeResult result) { settle(result); });
    }
    sim_.schedule_after(config_.probe_timeout,
                        [settle] { settle(ReplicaProbeResult{}); });
  }
}

void Datanode::apply_uc_sync(const std::shared_ptr<UcSync>& sync) {
  if (crashed_) return;
  // Deterministic order regardless of probe completion interleaving.
  std::sort(sync->probes.begin(), sync->probes.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  // Durable candidates: live responders holding a nonempty replica. A
  // zero-byte replica (setup arrived, no packet written) contributes no
  // salvageable data and must not drag the sync point to zero.
  Bytes target_len = 0;
  bool have_candidate = false;
  for (const auto& [node, probe] : sync->probes) {
    if (!probe.alive || !probe.has_replica || probe.bytes == 0) continue;
    if (sync->cmd.tail) {
      target_len = have_candidate ? std::min(target_len, probe.bytes)
                                  : probe.bytes;
    } else {
      target_len = std::max(target_len, probe.bytes);
    }
    have_candidate = true;
  }
  if (!have_candidate) {
    SMARTH_WARN("datanode") << "no durable replica of "
                            << sync->cmd.block.to_string()
                            << "; reporting abandonment";
    report_uc_sync(sync->cmd.block, 0, {});
    return;
  }

  struct Commit {
    std::vector<NodeId> holders;
    std::size_t awaiting = 0;
    Bytes length = 0;
  };
  auto commit = std::make_shared<Commit>();
  commit->length = target_len;
  const BlockId block = sync->cmd.block;
  std::vector<NodeId> participants;
  for (const auto& [node, probe] : sync->probes) {
    if (!probe.alive || !probe.has_replica) continue;
    if (probe.bytes < target_len) {
      // Straggler (possible only in finalize-at-max mode, or a zero-byte
      // shell in tail mode): its prefix is a strict subset of what the
      // holders keep, so it is dropped rather than synchronized.
      if (node == self_) {
        discard_replica(block);
      } else {
        rpc_.notify(self_, node, [this, node, block] {
          Datanode* peer = peer_resolver_(node);
          if (peer != nullptr) peer->discard_replica(block);
        });
      }
      continue;
    }
    participants.push_back(node);
  }
  commit->awaiting = participants.size();
  for (NodeId node : participants) {
    auto settle = [this, commit, node, block](bool ok) {
      if (crashed_) return;
      if (ok) commit->holders.push_back(node);
      if (--commit->awaiting == 0) {
        std::sort(commit->holders.begin(), commit->holders.end());
        report_uc_sync(block, commit->length, std::move(commit->holders));
      }
    };
    if (node == self_) {
      settle(commit_replica(block, target_len).ok());
      continue;
    }
    auto settled = std::make_shared<bool>(false);
    auto once = [settle, settled](bool ok) {
      if (*settled) return;
      *settled = true;
      settle(ok);
    };
    Datanode* peer = peer_resolver_(node);
    if (peer != nullptr) {
      rpc_.call<bool>(
          self_, node, [peer, block, target_len] {
            return peer->commit_replica(block, target_len).ok();
          },
          [once](bool ok) { once(ok); });
    }
    sim_.schedule_after(config_.probe_timeout, [once] { once(false); });
  }
}

void Datanode::report_uc_sync(BlockId block, Bytes length,
                              std::vector<NodeId> holders) {
  if (length > 0 && holders.empty()) {
    // Every commit failed (e.g. the targets crashed between probe and
    // commit). Report nothing: the monitor's round deadline will re-elect a
    // primary with fresh liveness data rather than abandoning data that may
    // still exist.
    SMARTH_WARN("datanode") << "commitBlockSynchronization of "
                            << block.to_string()
                            << " committed no replica; leaving to retry";
    return;
  }
  rpc_.notify(self_, namenode_.node_id(),
              [this, block, length, holders = std::move(holders)] {
                namenode_.commit_block_synchronization(block, length, holders);
              });
}

void Datanode::transfer_replica(BlockId block, NodeId dest, Bytes length,
                                std::function<void(bool)> done,
                                bool finalize_at_dest) {
  if (crashed_) {
    done(false);
    return;
  }
  const auto info = store_.replica(block);
  if (!info.ok() || info.value().bytes < length) {
    done(false);
    return;
  }
  if (!store_.verify_range(block, 0, length)) {
    // The chosen re-replication source has itself rotted. Never propagate
    // bad bytes: self-report so the namenode quarantines this copy too, and
    // fail the transfer so the monitor retries from another holder.
    SMARTH_WARN("datanode") << self_.to_string()
                            << " refusing to copy corrupt replica "
                            << block.to_string();
    rpc_.notify(self_, namenode_.node_id(), [this, block] {
      namenode_.report_bad_replica(block, self_);
    });
    done(false);
    return;
  }
  SMARTH_CHECK_MSG(static_cast<bool>(peer_resolver_),
                   "peer resolver not installed on " << self_.to_string());
  // Read the replica off the local disk, then one bulk transfer over the
  // fabric; the destination writes it durably and the completion flows back
  // through `done` (whose RPC response message is paid by the caller's
  // call_async).
  disk_->read(length, [this, block, dest, length, finalize_at_dest,
                       done = std::move(done)]() mutable {
    if (crashed_) {
      done(false);
      return;
    }
    // A distinct flow key keeps this one bulk copy from monopolizing shared
    // links over concurrent pipeline/read traffic.
    const net::FlowKey flow =
        (net::FlowKey{1} << 40) + static_cast<net::FlowKey>(block.value());
    transport_.network().send(
        self_, dest, length + config_.packet_header_wire,
        [this, block, dest, length, finalize_at_dest,
         done = std::move(done)]() mutable {
          Datanode* peer = peer_resolver_(dest);
          if (peer == nullptr || peer->crashed()) {
            done(false);
            return;
          }
          peer->receive_replica_prefix(
              block, length, finalize_at_dest,
              [done = std::move(done)] { done(true); });
        },
        net::LinkPriority::kBulk, flow);
  });
}

void Datanode::receive_replica_prefix(BlockId block, Bytes length,
                                      bool finalize,
                                      std::function<void()> done) {
  // A replacement transfer supersedes whatever this node held for the block
  // (e.g. a stale or finalized copy from an earlier pipeline incarnation).
  if (store_.has_replica(block)) {
    SMARTH_CHECK(store_.remove(block).ok());
  }
  SMARTH_CHECK(store_.create_replica(block).ok());
  disk_->write(length, [this, block, length, finalize,
                        done = std::move(done)] {
    SMARTH_CHECK(store_.append(block, length).ok());
    if (finalize) {
      SMARTH_CHECK(store_.finalize(block).ok());
      rpc_.notify(self_, namenode_.node_id(),
                  [this, block, length] {
                    namenode_.block_received(self_, block, length);
                  },
                  {rpc::ServiceClass::kHeartbeat});
    }
    done();
  });
}

}  // namespace smarth::hdfs
