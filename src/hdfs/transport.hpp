// Thin data-plane shim: turns typed protocol messages into sized network
// sends and dispatches them to the destination's sink on delivery. Keeps
// datanodes and clients free of wire-size arithmetic and of direct references
// to each other.
#pragma once

#include "hdfs/types.hpp"
#include "net/network.hpp"

namespace smarth::hdfs {

class Transport {
 public:
  Transport(net::Network& network, const HdfsConfig& config,
            SinkResolver resolver);

  net::Network& network() { return network_; }
  const HdfsConfig& config() const { return config_; }

  void send_setup(NodeId from, NodeId to, PipelineSetup setup);
  void send_packet(NodeId from, NodeId to, WirePacket packet);
  /// `to_client` selects the AckSink (upstream end) vs PacketSink route.
  void send_ack_to_datanode(NodeId from, NodeId to, PipelineAck ack);
  void send_ack_to_client(NodeId from, NodeId to, PipelineAck ack);
  void send_setup_ack_to_datanode(NodeId from, NodeId to, SetupAck ack);
  void send_setup_ack_to_client(NodeId from, NodeId to, SetupAck ack);
  void send_fnfa(NodeId from, NodeId to, FnfaMessage fnfa);
  void send_read_request(NodeId from, NodeId to, ReadRequest request);
  void send_read_packet(NodeId from, NodeId to, ReadPacket packet);

 private:
  net::Network& network_;
  const HdfsConfig& config_;
  SinkResolver resolver_;
};

}  // namespace smarth::hdfs
