// Write leases, HDFS-style. Every file under construction is covered by a
// lease held by its writer; the lease is renewed implicitly by every namenode
// RPC the client makes and explicitly by its heartbeat. Past the *soft* limit
// another client may force recovery of the file (create-takeover); past the
// *hard* limit the namenode's lease monitor recovers it unprompted. The
// manager is pure bookkeeping — all policy (when to scan, how to recover)
// lives in the namenode, which passes the current simulation time in.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "common/ids.hpp"
#include "common/units.hpp"

namespace smarth::hdfs {

/// One client's lease in durable form: holder, last renewal stamp, held
/// files (sorted). Snapshotted into the fsimage and compared bit-for-bit by
/// the replay-equivalence property test.
struct LeaseImage {
  ClientId holder;
  SimTime last_renewal = 0;
  std::vector<FileId> files;

  friend bool operator==(const LeaseImage&, const LeaseImage&) = default;
};

class LeaseManager {
 public:
  LeaseManager(SimDuration soft_limit, SimDuration hard_limit)
      : soft_limit_(soft_limit), hard_limit_(hard_limit) {}

  /// Registers `file` under `holder`'s lease (creating the lease if this is
  /// the holder's first file) and renews it.
  void add(ClientId holder, FileId file, SimTime now);

  /// Renews `holder`'s lease. Creates an empty lease for a previously
  /// unknown holder so liveness is tracked from the first heartbeat on.
  void renew(ClientId holder, SimTime now);

  /// Drops `file` from `holder`'s lease (file closed or abandoned). The
  /// holder's renewal record survives; an empty lease expires no files.
  void release(ClientId holder, FileId file);

  /// Moves `file` from `from`'s lease to `to`'s, renewing `to`. Used when
  /// recovery hands an expired writer's file to the namenode (or when a
  /// takeover hands it to a new writer).
  void reassign(FileId file, ClientId from, ClientId to, SimTime now);

  /// True if `holder` currently leases `file`.
  bool holds(ClientId holder, FileId file) const;

  /// True when the holder has not renewed within the soft limit — or has no
  /// lease at all (an unknown holder guards nothing).
  bool soft_expired(ClientId holder, SimTime now) const;
  bool hard_expired(ClientId holder, SimTime now) const;

  /// Every (holder, file) pair past the hard limit, in deterministic
  /// (holder, file) order — the lease monitor's scan input.
  std::vector<std::pair<ClientId, FileId>> hard_expired_files(
      SimTime now) const;

  /// Leases that guard at least one file.
  std::size_t active_lease_count() const;
  std::uint64_t renewals() const { return renewals_; }

  SimDuration soft_limit() const { return soft_limit_; }
  SimDuration hard_limit() const { return hard_limit_; }

  // --- durability -----------------------------------------------------------
  /// All leases (including empty heartbeat-only ones), sorted by holder.
  std::vector<LeaseImage> snapshot() const;
  /// Replaces the lease table with `leases` (fsimage restore). The renewal
  /// counter is telemetry, not namespace state, and is left untouched.
  void restore(const std::vector<LeaseImage>& leases);
  /// Stamps every lease as renewed at `now`. A restarted namenode cannot
  /// distinguish "writer died during the outage" from "renewals were lost
  /// with the process", so — like HDFS — expiry clocks restart with it.
  void reset_renewals(SimTime now);

 private:
  struct Lease {
    SimTime last_renewal = 0;
    std::set<FileId> files;
  };

  // Ordered maps: the lease monitor iterates these and its decisions must be
  // reproducible run-to-run.
  std::map<ClientId, Lease> leases_;
  SimDuration soft_limit_;
  SimDuration hard_limit_;
  std::uint64_t renewals_ = 0;
};

}  // namespace smarth::hdfs
