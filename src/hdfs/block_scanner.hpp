// Background block scanner: each datanode scrubs its finalized replicas at a
// configurable byte-rate budget, re-reading chunks through the node's shared
// disk (so scrub I/O contends with foreground pipeline and read traffic) and
// verifying their CRC32C records. Rot found at rest is reported to the
// namenode via report_bad_replica, which quarantines the replica, invalidates
// it on this node and queues the block for re-replication from a good copy.
// This is the simulator's analogue of HDFS's DataBlockScanner / VolumeScanner.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <set>

#include "common/ids.hpp"
#include "common/units.hpp"
#include "hdfs/types.hpp"
#include "sim/periodic_task.hpp"
#include "sim/simulation.hpp"
#include "storage/block_store.hpp"
#include "storage/disk.hpp"

namespace smarth::hdfs {

class BlockScanner {
 public:
  /// `report_bad_replica(block)` is invoked (at most once per block per scan
  /// pass) when a chunk fails verification; the datanode wires it to the
  /// namenode RPC.
  BlockScanner(sim::Simulation& sim, storage::DiskDevice& disk,
               const storage::BlockStore& store, const HdfsConfig& config,
               std::function<void(BlockId)> report_bad_replica);

  /// Starts periodic scrubbing (no-op when the configured budget is 0).
  void start();
  /// Stops scrubbing and invalidates in-flight disk callbacks (used when the
  /// node crashes; disk reads cannot be revoked, only ignored).
  void stop();
  bool running() const { return running_; }

  Bytes bytes_scanned() const { return bytes_scanned_; }
  std::uint64_t chunks_scanned() const { return chunks_scanned_; }
  std::uint64_t rot_detected() const { return rot_detected_; }
  std::uint64_t scan_passes() const { return scan_passes_; }

 private:
  struct Cursor {
    std::int64_t block = 0;  // BlockId value
    std::size_t chunk = 0;
  };

  void tick();
  /// Scans the next chunk at/after the cursor, budget permitting, then
  /// re-chains itself from the disk callback.
  void scan_next();
  /// Finds the next finalized (block, chunk) at/after the cursor; false when
  /// the pass is over (cursor then wraps).
  bool next_target(Cursor& out) const;

  sim::Simulation& sim_;
  storage::DiskDevice& disk_;
  const storage::BlockStore& store_;
  const HdfsConfig& config_;
  std::function<void(BlockId)> report_bad_replica_;

  std::unique_ptr<sim::PeriodicTask> task_;
  bool running_ = false;
  bool scanning_ = false;   ///< a disk read is in flight
  std::uint64_t epoch_ = 0; ///< bumped on stop() to orphan in-flight reads
  Bytes budget_ = 0;        ///< bytes this tick may still scrub
  Cursor cursor_;
  /// Blocks already reported this pass; pruned when the pass wraps so a
  /// replica that somehow survives invalidation is re-reported.
  std::set<std::int64_t> reported_;

  Bytes bytes_scanned_ = 0;
  std::uint64_t chunks_scanned_ = 0;
  std::uint64_t rot_detected_ = 0;
  std::uint64_t scan_passes_ = 0;
};

}  // namespace smarth::hdfs
