#include "hdfs/block_scanner.hpp"

#include <algorithm>
#include <vector>

#include "common/log.hpp"
#include "trace/metrics_registry.hpp"
#include "trace/trace_recorder.hpp"

namespace smarth::hdfs {

BlockScanner::BlockScanner(sim::Simulation& sim, storage::DiskDevice& disk,
                           const storage::BlockStore& store,
                           const HdfsConfig& config,
                           std::function<void(BlockId)> report_bad_replica)
    : sim_(sim), disk_(disk), store_(store), config_(config),
      report_bad_replica_(std::move(report_bad_replica)) {}

void BlockScanner::start() {
  if (config_.scanner_bytes_per_second <= 0 || running_) return;
  running_ = true;
  if (!task_) {
    task_ = std::make_unique<sim::PeriodicTask>(sim_, config_.scanner_interval,
                                                [this] { tick(); });
  }
  task_->start_with_delay(config_.scanner_interval);
}

void BlockScanner::stop() {
  running_ = false;
  scanning_ = false;
  ++epoch_;  // orphan any disk read still in flight
  budget_ = 0;
  if (task_) task_->stop();
}

void BlockScanner::tick() {
  if (!running_) return;
  // Fresh budget each wake-up; unspent budget does not accumulate, so a
  // scanner idled by an empty store cannot later burst past its rate.
  budget_ = static_cast<Bytes>(static_cast<double>(
                                   config_.scanner_bytes_per_second) *
                               to_seconds(config_.scanner_interval));
  if (!scanning_) scan_next();
}

bool BlockScanner::next_target(Cursor& out) const {
  // Deterministic iteration order over the unordered replica map: sort the
  // finalized replicas by block id and resume at/after the cursor.
  std::vector<std::int64_t> blocks;
  for (const auto& replica : store_.all_replicas()) {
    if (replica.state != storage::ReplicaState::kFinalized) continue;
    if (store_.chunk_count(replica.block) == 0) continue;
    blocks.push_back(replica.block.value());
  }
  std::sort(blocks.begin(), blocks.end());
  for (std::int64_t value : blocks) {
    if (value < cursor_.block) continue;
    if (value == cursor_.block) {
      if (cursor_.chunk < store_.chunk_count(BlockId{value})) {
        out = Cursor{value, cursor_.chunk};
        return true;
      }
      continue;  // cursor past this block's tail; move on
    }
    out = Cursor{value, 0};
    return true;
  }
  return false;
}

void BlockScanner::scan_next() {
  scanning_ = false;
  if (!running_) return;
  Cursor target;
  if (!next_target(target)) {
    // Pass complete: wrap, forget this pass's reports (a replica that
    // survived invalidation gets re-reported next pass), resume next tick.
    if (cursor_.block != 0 || cursor_.chunk != 0) {
      ++scan_passes_;
      metrics::global_registry().counter("scanner.passes").add();
      if (trace::active()) {
        trace::recorder()->instant(
            trace::Category::kScanner, "scanner", "scan pass complete",
            {{"bytes_scanned", std::to_string(bytes_scanned_)},
             {"chunks_scanned", std::to_string(chunks_scanned_)}});
      }
    }
    cursor_ = Cursor{};
    reported_.clear();
    return;
  }
  const BlockId block{target.block};
  const Bytes bytes = store_.chunk_bytes(block, target.chunk);
  if (bytes <= 0) {
    cursor_ = Cursor{target.block, target.chunk + 1};
    scan_next();
    return;
  }
  if (budget_ < bytes) return;  // out of budget; next tick continues here
  budget_ -= bytes;
  scanning_ = true;
  const std::uint64_t epoch = epoch_;
  disk_.read(bytes, [this, epoch, target, block, bytes] {
    if (epoch != epoch_ || !running_) return;
    bytes_scanned_ += bytes;
    ++chunks_scanned_;
    if (!store_.chunk_ok(block, target.chunk)) {
      ++rot_detected_;
      metrics::global_registry().counter("scanner.rot_detected").add();
      if (trace::active()) {
        trace::recorder()->instant(
            trace::Category::kScanner, "scanner", "rot detected",
            {{"block", block.to_string()},
             {"chunk", std::to_string(target.chunk)}});
      }
      SMARTH_WARN("scanner") << "scrub found rot in " << block.to_string()
                             << " chunk " << target.chunk;
      if (reported_.insert(target.block).second && report_bad_replica_) {
        report_bad_replica_(block);
      }
      // The whole replica is condemned; no point scrubbing its other chunks.
      cursor_ = Cursor{target.block + 1, 0};
    } else {
      cursor_ = Cursor{target.block, target.chunk + 1};
    }
    scan_next();
  });
}

}  // namespace smarth::hdfs
