#include "net/cross_traffic.hpp"

#include "common/check.hpp"

namespace smarth::net {

CrossTraffic::CrossTraffic(Network& network, NodeId src, NodeId dst,
                           Config config)
    : network_(network), src_(src), dst_(dst), config_(config) {
  SMARTH_CHECK_MSG(src != dst, "cross traffic requires distinct endpoints");
  SMARTH_CHECK(config_.concurrency > 0);
  SMARTH_CHECK(config_.message_size > 0);
}

void CrossTraffic::start() {
  if (running_) return;
  running_ = true;
  for (int i = 0; i < config_.concurrency; ++i) send_one();
}

void CrossTraffic::send_one() {
  if (!running_) return;
  bytes_sent_ += config_.message_size;
  ++messages_sent_;
  network_.send(src_, dst_, config_.message_size, [this] {
    if (!running_) return;
    if (config_.think_time > 0) {
      network_.simulation().schedule_after(config_.think_time,
                                           [this] { send_one(); });
    } else {
      send_one();
    }
  });
}

}  // namespace smarth::net
