// Cluster network topology, modelled after HDFS's NetworkTopology: hosts hang
// off racks, racks off the datacenter root. The namenode's rack-aware replica
// placement and the tc-style cross-rack shapers both consult this structure.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.hpp"
#include "common/result.hpp"

namespace smarth::net {

/// Registry of hosts and their rack locations.
class Topology {
 public:
  /// Registers a host on `rack` (e.g. "/rack0"); names must be unique.
  NodeId add_host(const std::string& name, const std::string& rack);

  std::size_t host_count() const { return hosts_.size(); }
  std::size_t rack_count() const { return racks_.size(); }

  const std::string& host_name(NodeId id) const;
  const std::string& rack_of(NodeId id) const;
  /// Full network path, HDFS style: "/rack0/dn3".
  std::string network_location(NodeId id) const;

  bool same_rack(NodeId a, NodeId b) const;

  /// HDFS NetworkTopology distance: 0 same node, 2 same rack, 4 cross rack.
  int distance(NodeId a, NodeId b) const;

  /// All hosts on `rack`, in registration order.
  const std::vector<NodeId>& hosts_on_rack(const std::string& rack) const;
  /// All racks, in first-registration order.
  const std::vector<std::string>& racks() const { return rack_order_; }
  /// All hosts, in registration order.
  std::vector<NodeId> all_hosts() const;

  Result<NodeId> find_host(const std::string& name) const;

 private:
  struct HostInfo {
    std::string name;
    std::string rack;
  };
  std::vector<HostInfo> hosts_;  // indexed by NodeId value
  std::unordered_map<std::string, NodeId> by_name_;
  std::unordered_map<std::string, std::vector<NodeId>> racks_;
  std::vector<std::string> rack_order_;

  const HostInfo& info(NodeId id) const;
};

}  // namespace smarth::net
