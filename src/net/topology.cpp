#include "net/topology.hpp"

#include "common/check.hpp"

namespace smarth::net {

NodeId Topology::add_host(const std::string& name, const std::string& rack) {
  SMARTH_CHECK_MSG(!name.empty() && !rack.empty(), "empty host or rack name");
  SMARTH_CHECK_MSG(by_name_.find(name) == by_name_.end(),
                   "duplicate host name: " << name);
  const NodeId id{static_cast<std::int64_t>(hosts_.size())};
  hosts_.push_back(HostInfo{name, rack});
  by_name_.emplace(name, id);
  auto [it, inserted] = racks_.try_emplace(rack);
  if (inserted) rack_order_.push_back(rack);
  it->second.push_back(id);
  return id;
}

const Topology::HostInfo& Topology::info(NodeId id) const {
  SMARTH_CHECK_MSG(id.valid() &&
                       static_cast<std::size_t>(id.value()) < hosts_.size(),
                   "unknown node id " << id.value());
  return hosts_[static_cast<std::size_t>(id.value())];
}

const std::string& Topology::host_name(NodeId id) const {
  return info(id).name;
}

const std::string& Topology::rack_of(NodeId id) const { return info(id).rack; }

std::string Topology::network_location(NodeId id) const {
  const auto& h = info(id);
  return h.rack + "/" + h.name;
}

bool Topology::same_rack(NodeId a, NodeId b) const {
  return info(a).rack == info(b).rack;
}

int Topology::distance(NodeId a, NodeId b) const {
  if (a == b) return 0;
  return same_rack(a, b) ? 2 : 4;
}

const std::vector<NodeId>& Topology::hosts_on_rack(
    const std::string& rack) const {
  auto it = racks_.find(rack);
  SMARTH_CHECK_MSG(it != racks_.end(), "unknown rack: " << rack);
  return it->second;
}

std::vector<NodeId> Topology::all_hosts() const {
  std::vector<NodeId> out;
  out.reserve(hosts_.size());
  for (std::size_t i = 0; i < hosts_.size(); ++i) {
    out.emplace_back(static_cast<std::int64_t>(i));
  }
  return out;
}

Result<NodeId> Topology::find_host(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return make_error("host_not_found", "no host named " + name);
  }
  return it->second;
}

}  // namespace smarth::net
