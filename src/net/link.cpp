#include "net/link.hpp"

#include "common/check.hpp"

namespace smarth::net {

Link::Link(sim::Simulation& sim, std::string name, Bandwidth capacity,
           SimDuration latency)
    : sim_(sim), name_(std::move(name)), capacity_(capacity),
      latency_(latency) {
  SMARTH_CHECK_MSG(latency_ >= 0, "negative link latency on " << name_);
}

void Link::set_latency(SimDuration latency) {
  SMARTH_CHECK(latency >= 0);
  latency_ = latency;
}

void Link::transmit(Bytes size, DeliveryCallback on_delivered,
                    LinkPriority priority, FlowKey flow) {
  SMARTH_CHECK_MSG(size >= 0, "negative message size on " << name_);
  SMARTH_CHECK(static_cast<bool>(on_delivered));
  if (priority == LinkPriority::kControl) {
    control_queue_.push_back(Pending{size, std::move(on_delivered)});
  } else {
    auto [it, inserted] = flow_queues_.try_emplace(flow);
    if (it->second.empty()) active_flows_.push_back(flow);
    it->second.push_back(Pending{size, std::move(on_delivered)});
    ++bulk_queued_;
  }
  queued_bytes_ += size;
  try_start_next();
}

void Link::pause() { paused_ = true; }

void Link::resume() {
  if (!paused_) return;
  paused_ = false;
  try_start_next();
}

void Link::try_start_next() {
  if (busy_ || paused_) return;
  Pending next{0, nullptr};
  if (!control_queue_.empty()) {
    next = std::move(control_queue_.front());
    control_queue_.pop_front();
  } else if (!active_flows_.empty()) {
    // Round-robin over flows with queued bulk messages.
    const FlowKey flow = active_flows_.front();
    active_flows_.pop_front();
    auto it = flow_queues_.find(flow);
    SMARTH_DCHECK(it != flow_queues_.end() && !it->second.empty());
    next = std::move(it->second.front());
    it->second.pop_front();
    --bulk_queued_;
    if (!it->second.empty()) {
      active_flows_.push_back(flow);  // stays in the service ring
    } else {
      flow_queues_.erase(it);  // bound the map to live flows
    }
  } else {
    return;
  }
  queued_bytes_ -= next.size;
  busy_ = true;
  busy_since_ = sim_.now();
  const SimDuration serialize = capacity_.transmit_time(next.size);
  // Serialization completes after `serialize`; the message then propagates
  // for `latency_` without occupying the link (cut-through for the wire).
  sim_.post_after(
      serialize, "link.serialize",
      [this, size = next.size, cb = std::move(next.on_delivered)]() mutable {
        finish_current(size, std::move(cb));
      });
}

void Link::finish_current(Bytes size, DeliveryCallback cb) {
  busy_ = false;
  busy_accum_ += sim_.now() - busy_since_;
  bytes_transmitted_ += size;
  ++messages_transmitted_;
  if (latency_ > 0) {
    sim_.post_after(latency_, "link.deliver", [cb = std::move(cb)] { cb(); });
  } else {
    sim_.post_now("link.deliver", [cb = std::move(cb)] { cb(); });
  }
  try_start_next();
}

SimDuration Link::busy_time() const {
  SimDuration t = busy_accum_;
  if (busy_) t += sim_.now() - busy_since_;
  return t;
}

}  // namespace smarth::net
