// A store-and-forward serializing link: the unit resource of the network
// model. A message of S bytes occupies the link for S / capacity, then
// arrives after the propagation latency. Concurrent senders share the link by
// FIFO queueing — which is how tc-shaped TCP flows share a shaped device at
// the packet granularity we simulate.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <unordered_map>

#include "common/units.hpp"
#include "sim/simulation.hpp"

namespace smarth::net {

/// Scheduling class for a message. Real NICs interleave flows at MTU
/// granularity, so a 64-byte ACK never waits behind a megabyte of queued
/// bulk data; we model that by letting control messages bypass the bulk
/// queue (they still wait for the in-flight message to finish serializing).
enum class LinkPriority { kBulk, kControl };

/// Tag identifying which transport flow a bulk message belongs to. Bulk
/// messages of different flows share the link round-robin (approximating
/// per-connection TCP fairness) instead of strict FIFO, so a reader's
/// packets are not pinned behind another flow's whole-block backlog.
using FlowKey = std::uint64_t;
inline constexpr FlowKey kDefaultFlow = 0;

class Link {
 public:
  using DeliveryCallback = std::function<void()>;

  Link(sim::Simulation& sim, std::string name, Bandwidth capacity,
       SimDuration latency);

  const std::string& name() const { return name_; }
  Bandwidth capacity() const { return capacity_; }
  SimDuration latency() const { return latency_; }

  /// Changes the capacity; applies to transmissions that start afterwards
  /// (matching `tc qdisc change` semantics).
  void set_capacity(Bandwidth capacity) { capacity_ = capacity; }
  void set_latency(SimDuration latency);

  /// Enqueues a message; `on_delivered` fires once it is fully serialized and
  /// has propagated. Zero-size messages still pay the latency. Bulk messages
  /// with distinct `flow` keys share the link round-robin.
  void transmit(Bytes size, DeliveryCallback on_delivered,
                LinkPriority priority = LinkPriority::kBulk,
                FlowKey flow = kDefaultFlow);

  /// Flow control: while paused the link finishes the in-flight message but
  /// starts no new one. Used to model receive-window backpressure.
  void pause();
  void resume();
  bool paused() const { return paused_; }

  // --- Introspection / statistics ------------------------------------------
  bool busy() const { return busy_; }
  std::size_t queued_count() const {
    return bulk_queued_ + control_queue_.size();
  }
  Bytes queued_bytes() const { return queued_bytes_; }
  Bytes bytes_transmitted() const { return bytes_transmitted_; }
  std::uint64_t messages_transmitted() const { return messages_transmitted_; }
  /// Total time the link spent serializing (for utilization reports).
  SimDuration busy_time() const;

 private:
  struct Pending {
    Bytes size;
    DeliveryCallback on_delivered;
  };

  void try_start_next();
  void finish_current(Bytes size, DeliveryCallback cb);

  sim::Simulation& sim_;
  std::string name_;
  Bandwidth capacity_;
  SimDuration latency_;

  /// Bulk lane: one FIFO per flow, serviced round-robin. active_flows_
  /// holds the service order; a flow leaves the ring when its queue drains.
  std::unordered_map<FlowKey, std::deque<Pending>> flow_queues_;
  std::deque<FlowKey> active_flows_;
  std::deque<Pending> control_queue_;  // control messages (bypass bulk)
  std::size_t bulk_queued_ = 0;
  Bytes queued_bytes_ = 0;
  bool busy_ = false;
  bool paused_ = false;

  Bytes bytes_transmitted_ = 0;
  std::uint64_t messages_transmitted_ = 0;
  SimDuration busy_accum_ = 0;
  SimTime busy_since_ = 0;
};

}  // namespace smarth::net
