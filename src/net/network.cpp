#include "net/network.hpp"

#include "common/check.hpp"
#include "common/log.hpp"

namespace smarth::net {

Network::Network(sim::Simulation& sim, NetworkConfig config)
    : sim_(sim), config_(config) {}

NodeId Network::add_node(const std::string& name, const std::string& rack,
                         Bandwidth nic) {
  const NodeId id = topology_.add_host(name, rack);
  Port p;
  p.egress = std::make_unique<Link>(sim_, name + ".egress", nic, 0);
  p.ingress = std::make_unique<Link>(sim_, name + ".ingress", nic, 0);
  p.nic = nic;
  if (cross_throttle_) {
    p.cross_egress = std::make_unique<Link>(sim_, name + ".xeg",
                                            *cross_throttle_, 0);
    p.cross_ingress = std::make_unique<Link>(sim_, name + ".xin",
                                             *cross_throttle_, 0);
  }
  ports_.push_back(std::move(p));
  return id;
}

Network::Port& Network::port(NodeId id) {
  SMARTH_CHECK_MSG(id.valid() &&
                       static_cast<std::size_t>(id.value()) < ports_.size(),
                   "unknown node " << id.value());
  return ports_[static_cast<std::size_t>(id.value())];
}

const Network::Port& Network::port(NodeId id) const {
  SMARTH_CHECK_MSG(id.valid() &&
                       static_cast<std::size_t>(id.value()) < ports_.size(),
                   "unknown node " << id.value());
  return ports_[static_cast<std::size_t>(id.value())];
}

void Network::set_node_nic(NodeId node, Bandwidth bw) {
  Port& p = port(node);
  p.nic = bw;
  p.egress->set_capacity(bw);
  p.ingress->set_capacity(bw);
}

Bandwidth Network::node_nic(NodeId node) const { return port(node).nic; }

void Network::set_cross_rack_throttle(Bandwidth bw) {
  if (bw.is_unlimited()) {
    cross_throttle_.reset();
    for (auto& p : ports_) {
      p.cross_egress.reset();
      p.cross_ingress.reset();
    }
    return;
  }
  cross_throttle_ = bw;
  for (std::size_t i = 0; i < ports_.size(); ++i) {
    auto& p = ports_[i];
    const std::string& name = topology_.host_name(NodeId{
        static_cast<std::int64_t>(i)});
    if (p.cross_egress) {
      p.cross_egress->set_capacity(bw);
      p.cross_ingress->set_capacity(bw);
    } else {
      p.cross_egress = std::make_unique<Link>(sim_, name + ".xeg", bw, 0);
      p.cross_ingress = std::make_unique<Link>(sim_, name + ".xin", bw, 0);
    }
  }
}

void Network::set_shared_rack_uplink(Bandwidth bw) {
  if (bw.is_unlimited()) {
    shared_uplink_rate_.reset();
    rack_uplinks_.clear();
    return;
  }
  shared_uplink_rate_ = bw;
  for (auto& [rack, link] : rack_uplinks_) link->set_capacity(bw);
}

Link* Network::rack_uplink(const std::string& rack) {
  if (!shared_uplink_rate_) return nullptr;
  auto it = rack_uplinks_.find(rack);
  if (it == rack_uplinks_.end()) {
    it = rack_uplinks_
             .emplace(rack, std::make_unique<Link>(sim_, rack + ".uplink",
                                                   *shared_uplink_rate_, 0))
             .first;
  }
  return it->second.get();
}

void Network::set_rack_partition(const std::string& rack_a,
                                 const std::string& rack_b, bool severed) {
  auto key = rack_a < rack_b ? std::make_pair(rack_a, rack_b)
                             : std::make_pair(rack_b, rack_a);
  if (severed) {
    partitions_.insert(std::move(key));
  } else {
    partitions_.erase(key);
  }
}

bool Network::partitioned(NodeId a, NodeId b) const {
  if (partitions_.empty()) return false;
  std::string ra = topology_.rack_of(a);
  std::string rb = topology_.rack_of(b);
  if (ra == rb) return false;
  if (rb < ra) std::swap(ra, rb);
  return partitions_.count(std::make_pair(ra, rb)) > 0;
}

void Network::set_node_isolated(NodeId node, bool isolated) {
  SMARTH_CHECK(node.valid());
  const auto idx = static_cast<std::size_t>(node.value());
  if (isolated_.size() <= idx) isolated_.resize(idx + 1, false);
  isolated_[idx] = isolated;
}

bool Network::node_isolated(NodeId node) const {
  const auto idx = static_cast<std::size_t>(node.value());
  return idx < isolated_.size() && isolated_[idx];
}

void Network::pause_ingress(NodeId node) { port(node).ingress->pause(); }

void Network::resume_ingress(NodeId node) { port(node).ingress->resume(); }

bool Network::ingress_paused(NodeId node) const {
  return port(node).ingress->paused();
}

const Link& Network::egress_link(NodeId node) const {
  return *port(node).egress;
}

const Link& Network::ingress_link(NodeId node) const {
  return *port(node).ingress;
}

Bytes Network::bytes_sent(NodeId node) const {
  return port(node).egress->bytes_transmitted();
}

Bytes Network::bytes_received(NodeId node) const {
  return port(node).ingress->bytes_transmitted();
}

void Network::traverse(std::vector<Link*> chain, std::size_t index, Bytes size,
                       LinkPriority priority, FlowKey flow,
                       DeliveryCallback done) {
  if (index == chain.size()) {
    done();
    return;
  }
  Link* hop = chain[index];
  hop->transmit(size,
                [this, chain = std::move(chain), index, size, priority, flow,
                 done = std::move(done)]() mutable {
                  traverse(std::move(chain), index + 1, size, priority, flow,
                           std::move(done));
                },
                priority, flow);
}

void Network::send(NodeId src, NodeId dst, Bytes wire_size,
                   DeliveryCallback on_delivered, LinkPriority priority,
                   FlowKey flow) {
  SMARTH_CHECK(static_cast<bool>(on_delivered));
  if (src == dst) {
    ++messages_delivered_;
    sim_.schedule_after(config_.loopback_latency, std::move(on_delivered));
    return;
  }
  if (partitioned(src, dst) || node_isolated(src) || node_isolated(dst)) {
    // The inter-switch link or an endpoint NIC is down: the message vanishes
    // (senders discover it through their own timeouts, exactly as with real
    // partitions or flapping cables).
    ++messages_dropped_;
    return;
  }
  Port& sp = port(src);
  Port& dp = port(dst);
  const bool cross = !topology_.same_rack(src, dst);

  std::vector<Link*> chain;
  chain.reserve(5);
  chain.push_back(sp.egress.get());
  if (cross) {
    if (sp.cross_egress) chain.push_back(sp.cross_egress.get());
    if (Link* uplink = rack_uplink(topology_.rack_of(src))) {
      chain.push_back(uplink);
    }
    if (dp.cross_ingress) chain.push_back(dp.cross_ingress.get());
  }
  chain.push_back(dp.ingress.get());

  const SimDuration propagation =
      cross ? config_.cross_rack_latency : config_.same_rack_latency;
  // Propagation is paid once, after the full store-and-forward chain; it does
  // not occupy any link.
  traverse(std::move(chain), 0, wire_size, priority, flow,
           [this, propagation, cb = std::move(on_delivered)]() mutable {
             ++messages_delivered_;
             if (propagation > 0) {
               sim_.schedule_after(propagation, std::move(cb));
             } else {
               cb();
             }
           });
}

}  // namespace smarth::net
