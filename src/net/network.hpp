// The cluster fabric. Every host owns a NIC modelled as an egress link and an
// ingress link; cross-rack traffic can additionally be forced through
// tc-style shapers (per-node, mirroring the paper's `tc` filters on each VM)
// or through a shared per-rack uplink (aggregate-bottleneck mode). Messages
// are store-and-forward at packet granularity and delivery order between any
// two hosts is FIFO.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <unordered_map>
#include <vector>

#include "common/ids.hpp"
#include "common/units.hpp"
#include "net/link.hpp"
#include "net/topology.hpp"
#include "sim/simulation.hpp"

namespace smarth::net {

struct NetworkConfig {
  /// One-way propagation delay between hosts on the same rack.
  SimDuration same_rack_latency = microseconds(150);
  /// One-way propagation delay between hosts on different racks.
  SimDuration cross_rack_latency = microseconds(400);
  /// Delivery delay for a host talking to itself (loopback).
  SimDuration loopback_latency = microseconds(20);
};

class Network {
 public:
  using DeliveryCallback = std::function<void()>;

  Network(sim::Simulation& sim, NetworkConfig config = {});

  /// Registers a host with a symmetric NIC of the given capacity.
  NodeId add_node(const std::string& name, const std::string& rack,
                  Bandwidth nic);

  const Topology& topology() const { return topology_; }
  sim::Simulation& simulation() { return sim_; }

  /// Sends `wire_size` bytes from `src` to `dst`; `on_delivered` fires at the
  /// destination once the message has traversed every hop. Control-priority
  /// messages bypass queued bulk data on every hop (see LinkPriority).
  void send(NodeId src, NodeId dst, Bytes wire_size,
            DeliveryCallback on_delivered,
            LinkPriority priority = LinkPriority::kBulk,
            FlowKey flow = kDefaultFlow);

  // --- tc-style traffic control --------------------------------------------

  /// Caps this host's NIC (both directions) — the paper's per-node throttle
  /// used in the bandwidth-contention scenario (Figs. 10–12).
  void set_node_nic(NodeId node, Bandwidth bw);
  Bandwidth node_nic(NodeId node) const;

  /// Installs per-node cross-rack shapers of the given rate on every host —
  /// the paper's two-rack scenario (Figs. 5–9). Pass kUnlimitedBandwidth to
  /// remove.
  void set_cross_rack_throttle(Bandwidth bw);
  std::optional<Bandwidth> cross_rack_throttle() const {
    return cross_throttle_;
  }

  /// Alternative aggregate mode: all cross-rack traffic leaving a rack shares
  /// one uplink of the given rate. Mutually composable with the per-node
  /// shapers (both apply if both set).
  void set_shared_rack_uplink(Bandwidth bw);

  // --- Partitions -------------------------------------------------------------

  /// Severs (or heals) connectivity between the two racks: messages in both
  /// directions are silently dropped, like a failed inter-switch link.
  /// Heartbeats, ACKs and RPCs all vanish, so liveness and recovery behave
  /// exactly as they would in a real partition.
  void set_rack_partition(const std::string& rack_a, const std::string& rack_b,
                          bool severed);
  bool partitioned(NodeId a, NodeId b) const;
  std::uint64_t messages_dropped() const { return messages_dropped_; }

  /// Isolates a single host — a flapping NIC or unplugged cable. While
  /// isolated, every non-loopback message to or from the node is silently
  /// dropped (counted in messages_dropped()); healing restores delivery for
  /// messages sent afterwards. Messages already in flight are unaffected, as
  /// with a real cable pull mid-transmission at a switch buffer.
  void set_node_isolated(NodeId node, bool isolated);
  bool node_isolated(NodeId node) const;

  // --- Backpressure ---------------------------------------------------------

  /// Stops `node` from accepting new ingress messages (in-flight one
  /// finishes); models a closed receive window.
  void pause_ingress(NodeId node);
  void resume_ingress(NodeId node);
  bool ingress_paused(NodeId node) const;

  // --- Introspection --------------------------------------------------------
  const Link& egress_link(NodeId node) const;
  const Link& ingress_link(NodeId node) const;
  Bytes bytes_sent(NodeId node) const;
  Bytes bytes_received(NodeId node) const;
  std::uint64_t messages_delivered() const { return messages_delivered_; }

 private:
  struct Port {
    std::unique_ptr<Link> egress;
    std::unique_ptr<Link> ingress;
    std::unique_ptr<Link> cross_egress;   // present iff cross throttle set
    std::unique_ptr<Link> cross_ingress;  // present iff cross throttle set
    Bandwidth nic;
  };

  Port& port(NodeId id);
  const Port& port(NodeId id) const;
  Link* rack_uplink(const std::string& rack);

  /// Transmits through `chain[index..]`, then fires `done`.
  void traverse(std::vector<Link*> chain, std::size_t index, Bytes size,
                LinkPriority priority, FlowKey flow, DeliveryCallback done);

  sim::Simulation& sim_;
  NetworkConfig config_;
  Topology topology_;
  std::vector<Port> ports_;
  std::optional<Bandwidth> cross_throttle_;
  std::optional<Bandwidth> shared_uplink_rate_;
  std::unordered_map<std::string, std::unique_ptr<Link>> rack_uplinks_;
  /// Severed rack pairs, stored with rack_a < rack_b.
  std::set<std::pair<std::string, std::string>> partitions_;
  std::vector<bool> isolated_;
  std::uint64_t messages_delivered_ = 0;
  std::uint64_t messages_dropped_ = 0;
};

}  // namespace smarth::net
