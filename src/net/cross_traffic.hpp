// Background cross-traffic generator: keeps a configurable number of
// fixed-size transfers in flight between two hosts, consuming a share of the
// hosts' NICs. Used to emulate "other procedures occupying the bandwidth"
// (paper §V-B2) as an alternative to hard tc throttles.
#pragma once

#include <cstdint>

#include "common/ids.hpp"
#include "common/units.hpp"
#include "net/network.hpp"

namespace smarth::net {

class CrossTraffic {
 public:
  struct Config {
    Bytes message_size = 64 * kKiB;
    /// Number of back-to-back transfer loops kept in flight.
    int concurrency = 1;
    /// Idle gap between a delivery and the next send in one loop; zero means
    /// the loop saturates its share of the path.
    SimDuration think_time = 0;
  };

  CrossTraffic(Network& network, NodeId src, NodeId dst, Config config);
  CrossTraffic(Network& network, NodeId src, NodeId dst)
      : CrossTraffic(network, src, dst, Config()) {}
  ~CrossTraffic() = default;

  CrossTraffic(const CrossTraffic&) = delete;
  CrossTraffic& operator=(const CrossTraffic&) = delete;

  void start();
  void stop() { running_ = false; }
  bool running() const { return running_; }

  Bytes bytes_sent() const { return bytes_sent_; }
  std::uint64_t messages_sent() const { return messages_sent_; }

 private:
  void send_one();

  Network& network_;
  NodeId src_;
  NodeId dst_;
  Config config_;
  bool running_ = false;
  Bytes bytes_sent_ = 0;
  std::uint64_t messages_sent_ = 0;
};

}  // namespace smarth::net
