// The paper's analytic cost model (§III-D, Formulas 1-3).
//
//   (1)  T = Tn * ceil(D/B) + (Tc + Tw)       * ceil(D/P)   production-bound
//   (2)  T = Tn * ceil(D/B) + (P/Bmin + Tw)   * ceil(D/P)   HDFS, network-bound
//   (3)  T = Tn * ceil(D/B) + (P/Bmax + Tw)   * ceil(D/P)   SMARTH, network-bound
//
// D file size, B block size, P packet size, Tn per-block namenode
// communication, Tc per-packet production, Tw per-packet datanode store time,
// Bmin the minimum bandwidth along the whole pipeline, Bmax the bandwidth
// between client and first datanode. HDFS picks (1) when Tc >= P/Bmin, else
// (2); SMARTH picks (1) when Tc >= P/Bmax, else (3).
#pragma once

#include <cstdint>

#include "common/units.hpp"

namespace smarth::model {

struct CostParams {
  Bytes file_size = 0;    ///< D
  Bytes block_size = 0;   ///< B
  Bytes packet_size = 0;  ///< P
  SimDuration t_n = 0;    ///< per-block namenode communication
  SimDuration t_c = 0;    ///< per-packet production (read + checksum + frame)
  SimDuration t_w = 0;    ///< per-packet verify + store at a datanode
  Bandwidth b_min;        ///< min bandwidth along the pipeline
  Bandwidth b_max;        ///< bandwidth client -> first datanode

  std::int64_t blocks() const {
    return (file_size + block_size - 1) / block_size;
  }
  std::int64_t packets() const {
    return (file_size + packet_size - 1) / packet_size;
  }
};

/// Formula (1): production dominates.
SimDuration production_bound_time(const CostParams& p);
/// Formula (2): the slowest pipeline hop dominates (HDFS).
SimDuration hdfs_network_bound_time(const CostParams& p);
/// Formula (3): the client -> first-datanode hop dominates (SMARTH).
SimDuration smarth_network_bound_time(const CostParams& p);

/// Per-packet transmission time P/B.
SimDuration packet_transmit_time(Bytes packet_size, Bandwidth bw);

/// Model prediction for the baseline protocol (picks Formula 1 or 2).
SimDuration predict_hdfs_time(const CostParams& p);
/// Model prediction for SMARTH (picks Formula 1 or 3).
SimDuration predict_smarth_time(const CostParams& p);

/// The paper's improvement metric, in percent: hdfs/smarth - 1.
double improvement_percent(SimDuration hdfs_time, SimDuration smarth_time);

// --- Pipelined (overlap-aware) variants -------------------------------------
// The paper's formulas add the per-packet stage costs (Tc + Tw, P/B + Tw);
// in a real pipeline the stages overlap, so the steady-state per-packet cost
// is the *maximum* stage cost, making the serial formulas upper bounds and
// these variants lower bounds. Together they bracket a real system.

SimDuration production_bound_time_pipelined(const CostParams& p);
SimDuration predict_hdfs_time_pipelined(const CostParams& p);
SimDuration predict_smarth_time_pipelined(const CostParams& p);

// --- Block-fidelity coalescing ----------------------------------------------

/// Macro-transfer payload for block-fidelity simulation: the largest multiple
/// of `packet_payload` whose extra store-and-forward skew across a
/// `pipeline_depth`-deep pipeline stays within `tolerance` of a block's
/// transfer time. Enlarging the unit from P to M delays each downstream hop's
/// start by (M - P) of serialization per hop — (depth-1)·(M-P)/Bw total —
/// against a block time of ~B/Bw, so the bandwidth cancels and the bound is
///   (depth - 1) · (M - P) <= tolerance · B.
/// Two further caps:
///  - 1/8 of the block, so per-block windowing and durable-floor tracking
///    keep at least 8 units to work with;
///  - when `max_outstanding_packets` > 0 (the client's packet-denominated
///    flow-control window), the unit must stay small enough that the window
///    still holds ~4·(depth+1) units: a store-and-forward pipeline has
///    depth+1 serialization stages in flight (plus overlapped verify/disk
///    stages), and a window that quantizes to about as few units as stages
///    stalls the pipeline — a coarsening artifact, not a property of the
///    modeled system.
Bytes coalesced_transfer_unit(Bytes block_size, Bytes packet_payload,
                              int pipeline_depth, double tolerance,
                              int max_outstanding_packets = 0);

}  // namespace smarth::model
