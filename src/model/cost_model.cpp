#include "model/cost_model.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace smarth::model {

namespace {
void validate(const CostParams& p) {
  SMARTH_CHECK_MSG(p.file_size > 0 && p.block_size > 0 && p.packet_size > 0,
                   "cost model sizes must be positive");
  SMARTH_CHECK(p.t_n >= 0 && p.t_c >= 0 && p.t_w >= 0);
}
}  // namespace

SimDuration packet_transmit_time(Bytes packet_size, Bandwidth bw) {
  return bw.transmit_time(packet_size);
}

SimDuration production_bound_time(const CostParams& p) {
  validate(p);
  return p.t_n * p.blocks() + (p.t_c + p.t_w) * p.packets();
}

SimDuration hdfs_network_bound_time(const CostParams& p) {
  validate(p);
  const SimDuration per_packet =
      packet_transmit_time(p.packet_size, p.b_min) + p.t_w;
  return p.t_n * p.blocks() + per_packet * p.packets();
}

SimDuration smarth_network_bound_time(const CostParams& p) {
  validate(p);
  const SimDuration per_packet =
      packet_transmit_time(p.packet_size, p.b_max) + p.t_w;
  return p.t_n * p.blocks() + per_packet * p.packets();
}

SimDuration predict_hdfs_time(const CostParams& p) {
  if (p.t_c >= packet_transmit_time(p.packet_size, p.b_min)) {
    return production_bound_time(p);
  }
  return hdfs_network_bound_time(p);
}

SimDuration predict_smarth_time(const CostParams& p) {
  if (p.t_c >= packet_transmit_time(p.packet_size, p.b_max)) {
    return production_bound_time(p);
  }
  return smarth_network_bound_time(p);
}

SimDuration production_bound_time_pipelined(const CostParams& p) {
  validate(p);
  return p.t_n * p.blocks() + std::max(p.t_c, p.t_w) * p.packets();
}

SimDuration predict_hdfs_time_pipelined(const CostParams& p) {
  validate(p);
  const SimDuration per_packet =
      std::max({p.t_c, p.t_w, packet_transmit_time(p.packet_size, p.b_min)});
  return p.t_n * p.blocks() + per_packet * p.packets();
}

SimDuration predict_smarth_time_pipelined(const CostParams& p) {
  validate(p);
  const SimDuration per_packet =
      std::max({p.t_c, p.t_w, packet_transmit_time(p.packet_size, p.b_max)});
  return p.t_n * p.blocks() + per_packet * p.packets();
}

double improvement_percent(SimDuration hdfs_time, SimDuration smarth_time) {
  SMARTH_CHECK(smarth_time > 0);
  return (static_cast<double>(hdfs_time) / static_cast<double>(smarth_time) -
          1.0) *
         100.0;
}

}  // namespace smarth::model
