#include "model/cost_model.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace smarth::model {

namespace {
void validate(const CostParams& p) {
  SMARTH_CHECK_MSG(p.file_size > 0 && p.block_size > 0 && p.packet_size > 0,
                   "cost model sizes must be positive");
  SMARTH_CHECK(p.t_n >= 0 && p.t_c >= 0 && p.t_w >= 0);
}
}  // namespace

SimDuration packet_transmit_time(Bytes packet_size, Bandwidth bw) {
  return bw.transmit_time(packet_size);
}

SimDuration production_bound_time(const CostParams& p) {
  validate(p);
  return p.t_n * p.blocks() + (p.t_c + p.t_w) * p.packets();
}

SimDuration hdfs_network_bound_time(const CostParams& p) {
  validate(p);
  const SimDuration per_packet =
      packet_transmit_time(p.packet_size, p.b_min) + p.t_w;
  return p.t_n * p.blocks() + per_packet * p.packets();
}

SimDuration smarth_network_bound_time(const CostParams& p) {
  validate(p);
  const SimDuration per_packet =
      packet_transmit_time(p.packet_size, p.b_max) + p.t_w;
  return p.t_n * p.blocks() + per_packet * p.packets();
}

SimDuration predict_hdfs_time(const CostParams& p) {
  if (p.t_c >= packet_transmit_time(p.packet_size, p.b_min)) {
    return production_bound_time(p);
  }
  return hdfs_network_bound_time(p);
}

SimDuration predict_smarth_time(const CostParams& p) {
  if (p.t_c >= packet_transmit_time(p.packet_size, p.b_max)) {
    return production_bound_time(p);
  }
  return smarth_network_bound_time(p);
}

SimDuration production_bound_time_pipelined(const CostParams& p) {
  validate(p);
  return p.t_n * p.blocks() + std::max(p.t_c, p.t_w) * p.packets();
}

SimDuration predict_hdfs_time_pipelined(const CostParams& p) {
  validate(p);
  const SimDuration per_packet =
      std::max({p.t_c, p.t_w, packet_transmit_time(p.packet_size, p.b_min)});
  return p.t_n * p.blocks() + per_packet * p.packets();
}

SimDuration predict_smarth_time_pipelined(const CostParams& p) {
  validate(p);
  const SimDuration per_packet =
      std::max({p.t_c, p.t_w, packet_transmit_time(p.packet_size, p.b_max)});
  return p.t_n * p.blocks() + per_packet * p.packets();
}

double improvement_percent(SimDuration hdfs_time, SimDuration smarth_time) {
  SMARTH_CHECK(smarth_time > 0);
  return (static_cast<double>(hdfs_time) / static_cast<double>(smarth_time) -
          1.0) *
         100.0;
}

Bytes coalesced_transfer_unit(Bytes block_size, Bytes packet_payload,
                              int pipeline_depth, double tolerance,
                              int max_outstanding_packets) {
  SMARTH_CHECK(block_size > 0 && packet_payload > 0);
  SMARTH_CHECK(packet_payload <= block_size);
  SMARTH_CHECK(pipeline_depth >= 1);
  SMARTH_CHECK(tolerance > 0.0);
  // Skew bound: (depth - 1) · (M - P) <= tolerance · B.
  std::int64_t max_units = block_size / (8 * packet_payload);
  if (pipeline_depth > 1) {
    const double budget = tolerance * static_cast<double>(block_size) /
                          static_cast<double>(pipeline_depth - 1);
    const auto skew_units =
        1 + static_cast<std::int64_t>(budget /
                                      static_cast<double>(packet_payload));
    max_units = std::min(max_units, skew_units);
  }
  // Window-coverage bound: the flow-control window, re-denominated in
  // coalesced units, must still cover every serialization stage of the
  // pipeline (with 2x margin for the verify/disk stages it overlaps).
  if (max_outstanding_packets > 0) {
    const std::int64_t window_units =
        max_outstanding_packets / (4 * (pipeline_depth + 1));
    max_units = std::min(max_units, window_units);
  }
  if (max_units < 1) max_units = 1;
  return max_units * packet_payload;
}

}  // namespace smarth::model
