// Open-loop multi-tenant traffic: arrivals keep coming whether or not the
// cluster keeps up — the load shape that actually saturates a control plane
// (a closed-loop workload self-throttles: a slow namenode slows its own
// offered load). Poisson arrivals with an optional diurnal rate profile,
// Zipf-distributed file sizes, many concurrent clients spread round-robin
// across the cluster's racks.
//
// Determinism: the generator draws from its OWN RNG stream (cluster seed ^ a
// fixed salt), never from the simulation RNG, so enabling the workload or
// changing its parameters cannot shift existing chaos/fault seed timelines.
// The whole arrival schedule is materialized up front from that stream.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "hdfs/output_stream.hpp"

namespace smarth::workload {

struct OpenLoopConfig {
  /// Concurrent client hosts added to the cluster (round-robin over racks).
  int clients = 8;
  /// Aggregate arrival rate, jobs per simulated second (Poisson).
  double arrival_rate = 1.0;
  /// Zipf exponent for file sizes: rank k (1-based) has probability
  /// proportional to k^-s; rank k's size is min_file_size * 2^(k-1).
  double zipf_s = 1.2;
  Bytes min_file_size = 1 * kMiB;
  int size_ranks = 4;
  /// Arrivals are generated in [0, duration).
  SimDuration duration = seconds(60);
  /// Diurnal modulation: rate(t) = arrival_rate * (1 + amplitude *
  /// sin(2*pi*t/period)). 0 disables (homogeneous Poisson).
  double diurnal_amplitude = 0.0;
  SimDuration diurnal_period = seconds(600);
  /// After duration + grace, jobs that have produced no terminal callback
  /// are counted as stuck and the run stops. Sized past the overload retry
  /// budget so a defended cluster can drain its backlog first.
  SimDuration stuck_grace = seconds(200);
  /// Path prefix for generated files (job index is appended).
  std::string path_prefix = "/openloop/f";
};

struct OpenLoopResult {
  int jobs = 0;        ///< arrivals offered
  int completed = 0;   ///< uploads that finished successfully
  int failed = 0;      ///< uploads that finished with a clean failure
  int stuck = 0;       ///< uploads with no terminal callback by the deadline
  Bytes bytes_offered = 0;
  Bytes bytes_completed = 0;
  SimTime started_at = 0;
  SimTime finished_at = 0;
  /// Completed-upload latencies (arrival to completion), seconds, in
  /// completion order.
  std::vector<double> latencies_s;

  double goodput_mibps() const;
  /// Quantile over completed-upload latencies (0 when none completed).
  double latency_quantile(double q) const;
};

class OpenLoopWorkload {
 public:
  OpenLoopWorkload(cluster::Protocol protocol, OpenLoopConfig config);

  /// Optional observer invoked with each job's terminal StreamStats (for
  /// FaultSummary folding by the CLI).
  void set_job_observer(std::function<void(const hdfs::StreamStats&)> cb) {
    on_job_done_ = std::move(cb);
  }

  /// Adds the clients, schedules the precomputed arrival process, and drives
  /// the simulation until every job reports or the stuck deadline passes.
  /// May be called once per workload instance.
  OpenLoopResult run(cluster::Cluster& cluster);

 private:
  struct Arrival {
    SimDuration at = 0;  // offset from run start
    Bytes size = 0;
    std::size_t client_index = 0;
  };

  std::vector<Arrival> generate_arrivals(Rng& rng, std::size_t client_base,
                                         std::size_t client_count) const;

  cluster::Protocol protocol_;
  OpenLoopConfig config_;
  std::function<void(const hdfs::StreamStats&)> on_job_done_;
  bool ran_ = false;
};

}  // namespace smarth::workload
