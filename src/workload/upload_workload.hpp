// Multi-file / multi-client upload workloads: a list of (path, size, start
// time, client) jobs scheduled against one cluster, with collected results.
// The single-file paper experiments are the degenerate one-job case; the
// examples and tests also exercise staggered and concurrent uploads.
#pragma once

#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "hdfs/output_stream.hpp"

namespace smarth::workload {

struct UploadJob {
  std::string path;
  Bytes size = 0;
  SimDuration start_at = 0;
  std::size_t client_index = 0;
};

class UploadWorkload {
 public:
  explicit UploadWorkload(cluster::Protocol protocol)
      : protocol_(protocol) {}

  UploadWorkload& add(UploadJob job);
  UploadWorkload& add(const std::string& path, Bytes size,
                      SimDuration start_at = 0, std::size_t client_index = 0);

  std::size_t job_count() const { return jobs_.size(); }

  /// Schedules every job on the cluster and runs the simulation until all
  /// uploads finish. Returns per-job stats in job order.
  std::vector<hdfs::StreamStats> run(cluster::Cluster& cluster);

 private:
  cluster::Protocol protocol_;
  std::vector<UploadJob> jobs_;
};

}  // namespace smarth::workload
