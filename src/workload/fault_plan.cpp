#include "workload/fault_plan.hpp"

namespace smarth::workload {

FaultPlan& FaultPlan::crash(std::size_t datanode_index, SimDuration at) {
  crashes.push_back(Crash{datanode_index, at});
  return *this;
}

FaultPlan& FaultPlan::corrupt(std::size_t datanode_index,
                              std::uint64_t nth_packet) {
  corruptions.push_back(Corruption{datanode_index, nth_packet});
  return *this;
}

void FaultPlan::apply(cluster::Cluster& cluster) const {
  for (const Crash& c : crashes) {
    cluster.crash_datanode_at(c.datanode_index, c.at);
  }
  for (const Corruption& c : corruptions) {
    cluster.datanode(c.datanode_index)
        .inject_checksum_error_on_nth_packet(c.nth_packet);
  }
}

}  // namespace smarth::workload
