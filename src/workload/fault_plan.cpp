#include "workload/fault_plan.hpp"

namespace smarth::workload {

FaultPlan& FaultPlan::crash(std::size_t datanode_index, SimDuration at) {
  crashes.push_back(Crash{datanode_index, at, /*rejoin_at=*/0});
  return *this;
}

FaultPlan& FaultPlan::crash_and_rejoin(std::size_t datanode_index,
                                       SimDuration at, SimDuration rejoin_at) {
  crashes.push_back(Crash{datanode_index, at, rejoin_at});
  return *this;
}

FaultPlan& FaultPlan::corrupt(std::size_t datanode_index,
                              std::uint64_t nth_packet) {
  corruptions.push_back(Corruption{datanode_index, nth_packet});
  return *this;
}

FaultPlan& FaultPlan::fail_slow(std::size_t datanode_index, SimDuration from,
                                SimDuration until, double factor) {
  fail_slows.push_back(FailSlow{datanode_index, from, until, factor});
  return *this;
}

FaultPlan& FaultPlan::flap(std::size_t datanode_index, SimDuration down_at,
                           SimDuration up_at) {
  flaps.push_back(Flap{datanode_index, down_at, up_at});
  return *this;
}

FaultPlan& FaultPlan::bitrot(std::size_t datanode_index, SimDuration at) {
  bitrots.push_back(Bitrot{datanode_index, at});
  return *this;
}

void FaultPlan::apply(faults::FaultInjector& injector) const {
  for (const Crash& c : crashes) {
    if (c.rejoin_at > c.at) {
      injector.crash_and_rejoin(c.datanode_index, c.at, c.rejoin_at);
    } else {
      injector.crash(c.datanode_index, c.at);
    }
  }
  for (const Corruption& c : corruptions) {
    injector.corrupt_nth_packet(c.datanode_index, c.nth_packet);
  }
  for (const FailSlow& f : fail_slows) {
    injector.fail_slow(f.datanode_index, f.from, f.until, f.factor, f.factor);
  }
  for (const Flap& f : flaps) {
    injector.flap_node(f.datanode_index, f.down_at, f.up_at);
  }
  for (const Bitrot& b : bitrots) {
    injector.bitrot(b.datanode_index, b.at);
  }
}

void FaultPlan::apply(cluster::Cluster& cluster) const {
  for (const Crash& c : crashes) {
    cluster.crash_datanode_at(c.datanode_index, c.at);
    if (c.rejoin_at > c.at) {
      cluster.restart_datanode_at(c.datanode_index, c.rejoin_at);
    }
  }
  for (const Corruption& c : corruptions) {
    cluster.datanode(c.datanode_index)
        .inject_checksum_error_on_nth_packet(c.nth_packet);
  }
  for (const FailSlow& f : fail_slows) {
    // Without an injector there is no saved-state bookkeeping; approximate by
    // dividing the node's current NIC rate for the window.
    net::Network* net = &cluster.network();
    const NodeId node = cluster.datanode_id(f.datanode_index);
    hdfs::Datanode* dn = &cluster.datanode(f.datanode_index);
    cluster.sim().schedule_at(f.from, [net, node, dn, f] {
      const Bandwidth disk_before = dn->disk().write_bandwidth();
      const Bandwidth nic_before = net->node_nic(node);
      if (f.factor > 1.0 && !disk_before.is_unlimited()) {
        dn->disk().set_write_bandwidth(Bandwidth::bits_per_second(
            disk_before.bits_per_second() / f.factor));
      }
      if (f.factor > 1.0 && !nic_before.is_unlimited()) {
        net->set_node_nic(node, Bandwidth::bits_per_second(
                                    nic_before.bits_per_second() / f.factor));
      }
      net->simulation().schedule_at(f.until, [net, node, dn, disk_before,
                                              nic_before] {
        dn->disk().set_write_bandwidth(disk_before);
        net->set_node_nic(node, nic_before);
      });
    });
  }
  for (const Flap& f : flaps) {
    net::Network* net = &cluster.network();
    const NodeId node = cluster.datanode_id(f.datanode_index);
    cluster.sim().schedule_at(f.down_at,
                              [net, node] { net->set_node_isolated(node, true); });
    cluster.sim().schedule_at(f.up_at,
                              [net, node] { net->set_node_isolated(node, false); });
  }
  for (const Bitrot& b : bitrots) {
    // Same salt derivation as FaultInjector::bitrot so both apply() paths
    // rot the identical chunk.
    hdfs::Datanode* dn = &cluster.datanode(b.datanode_index);
    const std::uint64_t salt =
        faults::FaultInjector::one_shot_salt(b.datanode_index, b.at);
    cluster.sim().schedule_at(
        b.at, [dn, salt] { dn->rot_random_finalized_chunk(salt); });
  }
}

}  // namespace smarth::workload
