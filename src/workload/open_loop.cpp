#include "workload/open_loop.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/check.hpp"
#include "common/log.hpp"
#include "trace/metrics_registry.hpp"

namespace smarth::workload {

namespace {

constexpr double kTwoPi = 6.283185307179586;
/// Fixed salt for the generator's dedicated RNG stream.
constexpr std::uint64_t kOpenLoopRngSalt = 0x9e3779b97f4a7c15ULL;

}  // namespace

double OpenLoopResult::goodput_mibps() const {
  const double elapsed = to_seconds(finished_at - started_at);
  if (elapsed <= 0.0) return 0.0;
  return static_cast<double>(bytes_completed) / static_cast<double>(kMiB) /
         elapsed;
}

double OpenLoopResult::latency_quantile(double q) const {
  if (latencies_s.empty()) return 0.0;
  std::vector<double> sorted = latencies_s;
  std::sort(sorted.begin(), sorted.end());
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

OpenLoopWorkload::OpenLoopWorkload(cluster::Protocol protocol,
                                   OpenLoopConfig config)
    : protocol_(protocol), config_(std::move(config)) {
  SMARTH_CHECK(config_.clients > 0);
  SMARTH_CHECK(config_.arrival_rate > 0.0);
  SMARTH_CHECK(config_.zipf_s > 0.0);
  SMARTH_CHECK(config_.min_file_size > 0);
  SMARTH_CHECK(config_.size_ranks >= 1);
  SMARTH_CHECK(config_.duration > 0);
  SMARTH_CHECK(config_.diurnal_amplitude >= 0.0 &&
               config_.diurnal_amplitude <= 1.0);
}

std::vector<OpenLoopWorkload::Arrival> OpenLoopWorkload::generate_arrivals(
    Rng& rng, std::size_t client_base, std::size_t client_count) const {
  // Zipf rank ladder: rank k (1-based) with weight k^-s, size doubling per
  // rank. Cumulative weights make each draw one uniform + one scan.
  std::vector<double> cumulative(static_cast<std::size_t>(config_.size_ranks));
  double total = 0.0;
  for (int k = 1; k <= config_.size_ranks; ++k) {
    total += std::pow(static_cast<double>(k), -config_.zipf_s);
    cumulative[static_cast<std::size_t>(k - 1)] = total;
  }

  // Poisson arrivals via exponential gaps at the peak rate, thinned down to
  // the (possibly diurnal) instantaneous rate.
  const double peak_rate =
      config_.arrival_rate * (1.0 + config_.diurnal_amplitude);
  std::vector<Arrival> arrivals;
  double t_seconds = 0.0;
  const double horizon = to_seconds(config_.duration);
  while (true) {
    const double gap = -std::log(1.0 - rng.uniform()) / peak_rate;
    t_seconds += gap;
    if (t_seconds >= horizon) break;
    if (config_.diurnal_amplitude > 0.0) {
      const double rate_t =
          config_.arrival_rate *
          (1.0 + config_.diurnal_amplitude *
                     std::sin(kTwoPi * t_seconds * kSecond /
                              static_cast<double>(config_.diurnal_period)));
      if (rng.uniform() >= rate_t / peak_rate) continue;  // thinned out
    }
    Arrival a;
    a.at = static_cast<SimDuration>(t_seconds * kSecond);
    const double u = rng.uniform() * total;
    int rank = config_.size_ranks;
    for (int k = 1; k <= config_.size_ranks; ++k) {
      if (u < cumulative[static_cast<std::size_t>(k - 1)]) {
        rank = k;
        break;
      }
    }
    a.size = config_.min_file_size << (rank - 1);
    a.client_index = client_base + rng.index(client_count);
    arrivals.push_back(a);
  }
  return arrivals;
}

OpenLoopResult OpenLoopWorkload::run(cluster::Cluster& cluster) {
  SMARTH_CHECK_MSG(!ran_, "OpenLoopWorkload::run may only be called once");
  ran_ = true;

  // Tenants: fresh client hosts, round-robin over the datanode racks so the
  // load is rack-spread like production ingest, not one hot edge.
  std::vector<std::string> racks;
  for (const auto& dn : cluster.spec().datanodes) {
    if (std::find(racks.begin(), racks.end(), dn.rack) == racks.end()) {
      racks.push_back(dn.rack);
    }
  }
  if (racks.empty()) racks.push_back(cluster.spec().client.rack);
  const std::size_t client_base = cluster.client_count();
  for (int i = 0; i < config_.clients; ++i) {
    cluster.add_client(racks[static_cast<std::size_t>(i) % racks.size()],
                       cluster.spec().client.profile);
  }

  // Dedicated stream: cluster seed XOR fixed salt. Never touches the
  // simulation RNG, so chaos timelines are unaffected by this workload.
  Rng rng(cluster.spec().seed ^ kOpenLoopRngSalt);
  const std::vector<Arrival> arrivals =
      generate_arrivals(rng, client_base, static_cast<std::size_t>(config_.clients));

  auto result = std::make_shared<OpenLoopResult>();
  auto pending = std::make_shared<int>(static_cast<int>(arrivals.size()));
  result->jobs = static_cast<int>(arrivals.size());
  const SimTime start = cluster.sim().now();
  result->started_at = start;

  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    const Arrival& a = arrivals[i];
    result->bytes_offered += a.size;
    const std::string path = config_.path_prefix + std::to_string(i);
    const SimTime arrive_at = start + a.at;
    cluster.sim().schedule_at(
        arrive_at, [&cluster, protocol = protocol_, path, a, arrive_at, result,
                    pending, this] {
          metrics::global_registry().gauge("workload.jobs_in_flight").add(1.0);
          cluster.upload(
              path, a.size, protocol,
              [&cluster, result, pending, arrive_at, size = a.size,
               this](const hdfs::StreamStats& s) {
                --*pending;
                metrics::Registry& reg = metrics::global_registry();
                reg.gauge("workload.jobs_in_flight").add(-1.0);
                if (s.failed) {
                  ++result->failed;
                  reg.counter("workload.jobs_failed").add();
                } else {
                  ++result->completed;
                  reg.counter("workload.jobs_completed").add();
                  result->bytes_completed += size;
                  result->latencies_s.push_back(
                      to_seconds(cluster.sim().now() - arrive_at));
                }
                if (on_job_done_) on_job_done_(s);
              },
              a.client_index);
        });
  }

  // Open loop: the run ends when every job reports, or at the stuck deadline
  // — a job with no terminal callback by then is stuck (the failure mode the
  // admission-control acceptance forbids), not a reason to wedge the run.
  const SimTime deadline = start + config_.duration + config_.stuck_grace;
  while (*pending > 0 && cluster.sim().now() < deadline) {
    SMARTH_CHECK(
        cluster.sim().run_until(cluster.sim().now() + milliseconds(250)));
  }
  result->stuck = *pending;
  result->finished_at = cluster.sim().now();
  if (result->stuck > 0) {
    SMARTH_WARN("openloop") << result->stuck << " of " << result->jobs
                            << " uploads produced no terminal status by the "
                               "stuck deadline";
  }
  return *result;
}

}  // namespace smarth::workload
