// Declarative fault schedules for experiments: datanode crashes at given
// simulated times and checksum corruptions at given packet arrival counts.
// Applied to a Cluster before the upload starts.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/units.hpp"

namespace smarth::workload {

struct FaultPlan {
  struct Crash {
    std::size_t datanode_index;
    SimDuration at;  ///< simulated time of the crash
  };
  struct Corruption {
    std::size_t datanode_index;
    std::uint64_t nth_packet;  ///< 1-based arrival count at that node
  };

  std::vector<Crash> crashes;
  std::vector<Corruption> corruptions;

  FaultPlan& crash(std::size_t datanode_index, SimDuration at);
  FaultPlan& corrupt(std::size_t datanode_index, std::uint64_t nth_packet);

  void apply(cluster::Cluster& cluster) const;
  bool empty() const { return crashes.empty() && corruptions.empty(); }
};

}  // namespace smarth::workload
