// Declarative fault schedules for experiments — the small, serializable
// subset of faults::FaultInjector kept for existing workloads: datanode
// crashes (optionally with a rejoin), fail-slow windows, link flaps, and
// checksum corruptions. Applied to a Cluster before the upload starts;
// apply() delegates to a FaultInjector.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/units.hpp"
#include "faults/fault_injector.hpp"

namespace smarth::workload {

struct FaultPlan {
  struct Crash {
    std::size_t datanode_index;
    SimDuration at;         ///< simulated time of the crash
    SimDuration rejoin_at;  ///< <= at means the node stays dark
  };
  struct Corruption {
    std::size_t datanode_index;
    std::uint64_t nth_packet;  ///< 1-based arrival count at that node
  };
  struct FailSlow {
    std::size_t datanode_index;
    SimDuration from;
    SimDuration until;
    double factor;  ///< disk + NIC bandwidth divisor
  };
  struct Flap {
    std::size_t datanode_index;
    SimDuration down_at;
    SimDuration up_at;
  };
  struct Bitrot {
    std::size_t datanode_index;
    SimDuration at;  ///< one finalized chunk on the node decays at this time
  };

  std::vector<Crash> crashes;
  std::vector<Corruption> corruptions;
  std::vector<FailSlow> fail_slows;
  std::vector<Flap> flaps;
  std::vector<Bitrot> bitrots;

  FaultPlan& crash(std::size_t datanode_index, SimDuration at);
  FaultPlan& crash_and_rejoin(std::size_t datanode_index, SimDuration at,
                              SimDuration rejoin_at);
  FaultPlan& corrupt(std::size_t datanode_index, std::uint64_t nth_packet);
  FaultPlan& fail_slow(std::size_t datanode_index, SimDuration from,
                       SimDuration until, double factor);
  FaultPlan& flap(std::size_t datanode_index, SimDuration down_at,
                  SimDuration up_at);
  FaultPlan& bitrot(std::size_t datanode_index, SimDuration at);

  /// Schedules the plan through `injector` (must outlive the simulation run —
  /// the scheduled events report back into its counters).
  void apply(faults::FaultInjector& injector) const;
  /// Back-compat overload: schedules directly against the cluster, without
  /// injection counters.
  void apply(cluster::Cluster& cluster) const;
  bool empty() const {
    return crashes.empty() && corruptions.empty() && fail_slows.empty() &&
           flaps.empty() && bitrots.empty();
  }
};

}  // namespace smarth::workload
