#include "workload/upload_workload.hpp"

#include "common/check.hpp"

namespace smarth::workload {

UploadWorkload& UploadWorkload::add(UploadJob job) {
  SMARTH_CHECK(!job.path.empty() && job.size > 0 && job.start_at >= 0);
  jobs_.push_back(std::move(job));
  return *this;
}

UploadWorkload& UploadWorkload::add(const std::string& path, Bytes size,
                                    SimDuration start_at,
                                    std::size_t client_index) {
  return add(UploadJob{path, size, start_at, client_index});
}

std::vector<hdfs::StreamStats> UploadWorkload::run(cluster::Cluster& cluster) {
  SMARTH_CHECK_MSG(!jobs_.empty(), "workload has no jobs");
  auto results = std::make_shared<std::vector<hdfs::StreamStats>>(jobs_.size());
  auto remaining = std::make_shared<std::size_t>(jobs_.size());

  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    const UploadJob job = jobs_[i];
    cluster.sim().schedule_at(
        job.start_at, [&cluster, protocol = protocol_, job, i, results,
                       remaining] {
          cluster.upload(job.path, job.size, protocol,
                         [results, remaining, i](const hdfs::StreamStats& s) {
                           (*results)[i] = s;
                           --*remaining;
                         },
                         job.client_index);
        });
  }
  // Heartbeats keep the event queue alive indefinitely; run in bounded steps
  // until every job reports completion.
  const SimTime deadline = cluster.sim().now() + seconds(200'000);
  while (*remaining > 0) {
    SMARTH_CHECK(cluster.sim().run_until(cluster.sim().now() + milliseconds(250)));
    SMARTH_CHECK_MSG(cluster.sim().now() < deadline,
                     "workload did not finish within the simulated-time ceiling");
  }
  return *results;
}

}  // namespace smarth::workload
