// Extension — storage balance. Paper §III-B claims the global optimization
// picks fast first-datanodes "while keeping the cluster balanced" (the
// random draw from the top-n set plus rack-aware replicas 2/3 is the
// balancing mechanism). This bench quantifies it: after an 8 GB ingest,
// how evenly are the stored bytes spread across datanodes? Reported as
// min/max per-node gigabytes and the coefficient of variation, on both the
// homogeneous and the heterogeneous cluster.
#include "bench_common.hpp"
#include "common/histogram.hpp"
#include "common/table.hpp"

using namespace smarth;

namespace {

struct BalanceResult {
  double min_gib = 0.0;
  double max_gib = 0.0;
  double cv = 0.0;  ///< stddev / mean of per-node stored bytes
  double seconds = 0.0;
};

BalanceResult run(const cluster::ClusterSpec& spec,
                  cluster::Protocol protocol, Bytes file_size) {
  cluster::Cluster cluster(spec);
  const auto stats = cluster.run_upload("/f", file_size, protocol);
  SMARTH_CHECK_MSG(!stats.failed, "upload failed");
  cluster.sim().run_until(cluster.sim().now() + seconds(3));

  SummaryStats per_node;
  for (std::size_t i = 0; i < cluster.datanode_count(); ++i) {
    Bytes stored = 0;
    for (const auto& replica :
         cluster.datanode(i).block_store().all_replicas()) {
      stored += replica.bytes;
    }
    per_node.add(static_cast<double>(stored));
  }
  BalanceResult result;
  result.min_gib = per_node.min() / static_cast<double>(kGiB);
  result.max_gib = per_node.max() / static_cast<double>(kGiB);
  result.cv = per_node.mean() > 0 ? per_node.stddev() / per_node.mean() : 0.0;
  result.seconds = to_seconds(stats.elapsed());
  return result;
}

}  // namespace

int main() {
  bench::print_header(
      "Extension — storage balance after ingest (8 GB, replication 3)",
      "Per-datanode stored bytes after the upload; CV = stddev/mean. Paper "
      "§III-B: global optimization should keep the cluster balanced.");

  const Bytes file_size = bench::bench_file_size();
  TextTable table({"cluster", "protocol", "ingest (s)", "min GiB/node",
                   "max GiB/node", "CV"});
  struct Case {
    const char* name;
    cluster::ClusterSpec spec;
  };
  const Case cases[] = {
      {"small (homogeneous)", cluster::small_cluster(42)},
      {"heterogeneous", cluster::heterogeneous_cluster(42)},
  };
  for (const Case& c : cases) {
    for (int p = 0; p < 2; ++p) {
      const auto protocol =
          p ? cluster::Protocol::kSmarth : cluster::Protocol::kHdfs;
      const BalanceResult r = run(c.spec, protocol, file_size);
      table.add_row({c.name, cluster::protocol_name(protocol),
                     TextTable::num(r.seconds), TextTable::num(r.min_gib),
                     TextTable::num(r.max_gib), TextTable::num(r.cv, 3)});
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Reading the table: a CV near zero is perfectly balanced; SMARTH's\n"
      "skew (if any) comes from concentrating pipeline heads on fast "
      "nodes.\n");
  return 0;
}
