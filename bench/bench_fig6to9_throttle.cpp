// Figures 6, 7, 8 and 9 — 8 GB upload time vs cross-rack throttle level on
// the small (Fig. 6), medium (Fig. 7) and large (Fig. 8) clusters, and the
// derived improvement-vs-throttle relationship (Fig. 9). Paper shape: the
// tighter the throttle, the larger SMARTH's advantage; medium/large gain
// more than small; improvements range from ~27% (150 Mbps, small) up to
// ~245% (50 Mbps, large).
#include "bench_common.hpp"

using namespace smarth;

int main() {
  bench::print_header(
      "Figures 6-9 — uploading time vs cross-rack throttle (8 GB file)",
      "Fig. 6 small, Fig. 7 medium, Fig. 8 large; Fig. 9 aggregates the "
      "improvement percentages.");

  struct ClusterCase {
    const char* name;
    cluster::ClusterSpec (*make)(std::uint64_t);
  };
  const ClusterCase clusters[] = {
      {"small", cluster::small_cluster},
      {"medium", cluster::medium_cluster},
      {"large", cluster::large_cluster},
  };
  const double throttles_mbps[] = {50, 100, 150, 200, 0 /* default */};
  const Bytes file_size = bench::bench_file_size();

  std::vector<std::vector<metrics::ComparisonRow>> all_rows;
  for (const auto& cc : clusters) {
    std::vector<harness::Scenario> sweep;
    for (double throttle : throttles_mbps) {
      const std::string label =
          throttle > 0 ? std::to_string(static_cast<int>(throttle)) + " Mbps"
                       : "default";
      sweep.push_back(harness::two_rack_scenario(
          label, cc.make,
          throttle > 0 ? Bandwidth::mbps(throttle) : kUnlimitedBandwidth,
          file_size));
    }
    std::printf("--- Fig. %d: %s cluster ---\n",
                cc.make == cluster::small_cluster    ? 6
                : cc.make == cluster::medium_cluster ? 7
                                                     : 8,
                cc.name);
    all_rows.push_back(bench::run_and_print("throttle", sweep));
    std::printf("\n");
  }

  // Figure 9: improvement vs throttle for all three clusters.
  std::printf("--- Fig. 9: improvement vs throttle ---\n");
  TextTable fig9({"throttle", "small (%)", "medium (%)", "large (%)"});
  for (std::size_t t = 0; t < std::size(throttles_mbps); ++t) {
    fig9.add_row({all_rows[0][t].scenario,
                  TextTable::num(all_rows[0][t].improvement_percent(), 1),
                  TextTable::num(all_rows[1][t].improvement_percent(), 1),
                  TextTable::num(all_rows[2][t].improvement_percent(), 1)});
  }
  std::printf("%s\n", fig9.to_string().c_str());
  return 0;
}
