// Extension — multiple concurrent writers. The paper's global optimizer is
// explicitly per-client ("choose a set of best performing datanodes ... for
// this client", §III-B) and its pipeline-exclusivity guard is also
// per-client, so several writers may pile onto the same fast nodes. This
// bench measures aggregate ingest with 1, 2 and 3 concurrent clients.
#include "bench_common.hpp"
#include "common/table.hpp"
#include "workload/upload_workload.hpp"

using namespace smarth;

namespace {

struct MultiResult {
  double makespan = -1.0;
  double aggregate_mbps = 0.0;
};

MultiResult run(cluster::Protocol protocol, int clients, Bytes per_client) {
  cluster::ClusterSpec spec = cluster::small_cluster(42);
  cluster::Cluster cluster(spec);
  cluster.throttle_cross_rack(Bandwidth::mbps(100));
  // Extra writers join on alternating racks.
  for (int c = 1; c < clients; ++c) {
    cluster.add_client(c % 2 == 0 ? "/rack0" : "/rack1",
                       cluster::small_instance());
  }
  workload::UploadWorkload workload(protocol);
  for (int c = 0; c < clients; ++c) {
    workload.add(workload::UploadJob{"/f" + std::to_string(c), per_client, 0,
                                     static_cast<std::size_t>(c)});
  }
  const SimTime start = cluster.sim().now();
  const auto results = workload.run(cluster);
  MultiResult out;
  SimTime last_end = start;
  for (const auto& stats : results) {
    if (stats.failed) return out;
    last_end = std::max(last_end, stats.finished_at);
  }
  out.makespan = to_seconds(last_end - start);
  out.aggregate_mbps =
      throughput_of(per_client * clients, last_end - start).mbps();
  return out;
}

}  // namespace

int main() {
  bench::print_header(
      "Extension — concurrent writers (small cluster, 100 Mbps cross-rack, "
      "2 GB per client)",
      "Makespan of k simultaneous ingests; the per-client optimizers and "
      "guards interact on shared datanodes.");

  const Bytes per_client = 2 * kGiB;
  TextTable table({"clients", "protocol", "makespan (s)",
                   "aggregate (Mbps)", "improvement (%)"});
  for (int clients : {1, 2, 3}) {
    MultiResult results[2];
    for (int p = 0; p < 2; ++p) {
      results[p] = run(p ? cluster::Protocol::kSmarth
                         : cluster::Protocol::kHdfs,
                       clients, per_client);
    }
    for (int p = 0; p < 2; ++p) {
      table.add_row({std::to_string(clients), p ? "SMARTH" : "HDFS",
                     TextTable::num(results[p].makespan),
                     TextTable::num(results[p].aggregate_mbps, 1),
                     p ? TextTable::num((results[0].makespan /
                                             results[1].makespan -
                                         1.0) *
                                            100.0,
                                        1)
                       : std::string("-")});
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  return 0;
}
