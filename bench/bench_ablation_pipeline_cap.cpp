// Ablation A4 — the buffer-overflow guard (paper §IV-C). With the guard, a
// datanode serves at most one of the client's pipelines and fan-out is
// capped at |datanodes| / replication, so first-datanode staging stays
// within one block. Without it, the client opens pipelines as fast as FNFAs
// arrive, datanodes join several pipelines at once, and the staging buffers
// of fast nodes overflow. This bench measures both configurations under a
// deep cross-rack throttle.
#include "bench_common.hpp"
#include "common/table.hpp"

using namespace smarth;

namespace {

struct GuardResult {
  double seconds = -1.0;
  int max_pipelines = 0;
  Bytes staging_high_water = 0;
  std::uint64_t overflow_events = 0;
};

GuardResult run(bool guard, Bytes file_size) {
  cluster::ClusterSpec spec = cluster::small_cluster(42);
  spec.hdfs.enforce_pipeline_cap = guard;
  // Isolate the buffering behaviour from failure detection: with the guard
  // off, datanodes serve many pipelines at once and ACK latencies legitimately
  // blow through the normal watchdog, which would otherwise trigger a
  // recovery storm on a perfectly healthy (if overloaded) cluster.
  spec.hdfs.ack_timeout = seconds(100'000);
  cluster::Cluster cluster(spec);
  cluster.throttle_cross_rack(Bandwidth::mbps(50));
  const auto stats =
      cluster.run_upload("/f", file_size, cluster::Protocol::kSmarth);
  GuardResult result;
  if (stats.failed) return result;
  result.seconds = to_seconds(stats.elapsed());
  result.max_pipelines = stats.max_concurrent_pipelines;
  const ClientId client = cluster.client().id();
  for (std::size_t i = 0; i < cluster.datanode_count(); ++i) {
    result.staging_high_water = std::max(
        result.staging_high_water, cluster.datanode(i).staging_high_water(client));
    result.overflow_events += cluster.datanode(i).staging_overflows(client);
  }
  return result;
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation — pipeline cap / buffer-overflow guard (small cluster, "
      "50 Mbps cross-rack, 8 GB)",
      "Guard on: fan-out capped at cluster/replication = 3, staging bounded "
      "by one block. Guard off: unbounded fan-out, overflows recorded.");

  const Bytes file_size = std::min<Bytes>(bench::bench_file_size(), 2 * kGiB);
  TextTable table({"guard", "seconds", "max pipelines",
                   "staging high water", "overflow events"});
  for (bool guard : {true, false}) {
    const GuardResult r = run(guard, file_size);
    table.add_row({guard ? "on (paper)" : "off",
                   TextTable::num(r.seconds),
                   std::to_string(r.max_pipelines),
                   format_bytes(r.staging_high_water),
                   std::to_string(r.overflow_events)});
  }
  std::printf("%s\n", table.to_string().c_str());
  return 0;
}
