// Ablation A1/A2 — which of SMARTH's ingredients buys what? Runs the 8 GB
// upload on a contended cluster (two slow datanodes) with the four
// combinations of {global optimization (Alg. 1), local optimization
// (Alg. 2)}, plus the HDFS baseline. The multi-pipeline FNFA transfer is
// active in all four SMARTH variants, so "both off" isolates its
// contribution over HDFS, and the optimizer rows isolate placement quality.
#include "bench_common.hpp"
#include "common/table.hpp"

using namespace smarth;

namespace {

double run_smarth_variant(bool global_opt, bool local_opt, Bytes file_size) {
  cluster::ClusterSpec spec = cluster::small_cluster(42);
  spec.hdfs.smarth_global_opt = global_opt;
  spec.hdfs.smarth_local_opt = local_opt;
  cluster::Cluster cluster(spec);
  cluster.throttle_datanode(0, Bandwidth::mbps(50));
  cluster.throttle_datanode(1, Bandwidth::mbps(50));
  const auto stats =
      cluster.run_upload("/f", file_size, cluster::Protocol::kSmarth);
  return stats.failed ? -1.0 : to_seconds(stats.elapsed());
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation — SMARTH optimizer contributions (small cluster, 2 slow "
      "nodes @ 50 Mbps, 8 GB)",
      "FNFA multi-pipeline transfer is on in every SMARTH row; the rows "
      "toggle Alg. 1 (namenode global optimization) and Alg. 2 (client "
      "local optimization).");

  const Bytes file_size = bench::bench_file_size();

  cluster::ClusterSpec spec = cluster::small_cluster(42);
  cluster::Cluster hdfs_cluster(spec);
  hdfs_cluster.throttle_datanode(0, Bandwidth::mbps(50));
  hdfs_cluster.throttle_datanode(1, Bandwidth::mbps(50));
  const auto hdfs_stats =
      hdfs_cluster.run_upload("/f", file_size, cluster::Protocol::kHdfs);
  const double hdfs_secs = to_seconds(hdfs_stats.elapsed());

  TextTable table({"variant", "seconds", "improvement over HDFS (%)"});
  table.add_row({"HDFS baseline", TextTable::num(hdfs_secs), "0.0"});
  struct Variant {
    const char* name;
    bool global_opt;
    bool local_opt;
  };
  const Variant variants[] = {
      {"SMARTH, no optimizers (FNFA only)", false, false},
      {"SMARTH, local opt only (Alg. 2)", false, true},
      {"SMARTH, global opt only (Alg. 1)", true, false},
      {"SMARTH, both (paper)", true, true},
  };
  for (const Variant& v : variants) {
    const double secs = run_smarth_variant(v.global_opt, v.local_opt,
                                           file_size);
    table.add_row({v.name, TextTable::num(secs),
                   TextTable::num((hdfs_secs / secs - 1.0) * 100.0, 1)});
  }
  std::printf("%s\n", table.to_string().c_str());
  return 0;
}
