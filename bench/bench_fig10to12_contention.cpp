// Figures 10, 11 and 12 — the bandwidth-contention scenario: vary the number
// of datanodes individually throttled (emulating nodes whose bandwidth is
// eaten by other processes) and measure the 8 GB upload time. Fig. 10: small
// cluster, 50 Mbps slow nodes, k = 0..5. Fig. 11(a,b): medium and large
// clusters at 50 Mbps. Fig. 12(a,b): small and medium clusters at 150 Mbps.
// Paper shape: even one slow node hurts HDFS badly (~78% improvement for
// SMARTH on small); gains grow with the number of slow nodes and shrink at
// the milder 150 Mbps throttle.
#include "bench_common.hpp"

using namespace smarth;

namespace {

void run_contention(const char* figure, const char* cluster_name,
                    cluster::ClusterSpec (*make)(std::uint64_t),
                    double node_mbps, Bytes file_size) {
  std::vector<harness::Scenario> sweep;
  for (std::size_t k = 0; k <= 5; ++k) {
    sweep.push_back(harness::contention_scenario(
        std::to_string(k), make, k, Bandwidth::mbps(node_mbps), file_size));
  }
  std::printf("--- Fig. %s: %s cluster, slow nodes at %.0f Mbps ---\n",
              figure, cluster_name, node_mbps);
  bench::run_and_print("#slow nodes", sweep);
  std::printf("\n");
}

}  // namespace

int main() {
  bench::print_header(
      "Figures 10-12 — bandwidth contention (8 GB file, k slow nodes)",
      "Fig. 10 small@50Mbps, Fig. 11(a) medium@50, Fig. 11(b) large@50, "
      "Fig. 12(a) small@150, Fig. 12(b) medium@150.");
  const Bytes file_size = bench::bench_file_size();

  run_contention("10", "small", cluster::small_cluster, 50, file_size);
  run_contention("11(a)", "medium", cluster::medium_cluster, 50, file_size);
  run_contention("11(b)", "large", cluster::large_cluster, 50, file_size);
  run_contention("12(a)", "small", cluster::small_cluster, 150, file_size);
  run_contention("12(b)", "medium", cluster::medium_cluster, 150, file_size);
  return 0;
}
