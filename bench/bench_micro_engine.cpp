// Microbenchmarks (google-benchmark) for the simulation substrate itself:
// event scheduling/dispatch throughput, link store-and-forward throughput,
// and end-to-end simulated-upload event rate. These gate the wall-clock cost
// of the figure benches, not any paper result.
#include <benchmark/benchmark.h>

#include "cluster/cluster.hpp"
#include "cluster/cluster_spec.hpp"
#include "net/link.hpp"
#include "sim/simulation.hpp"

namespace {

using namespace smarth;

void BM_EventScheduleDispatch(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    std::int64_t counter = 0;
    for (int i = 0; i < 10'000; ++i) {
      sim.schedule_at(i, [&counter] { ++counter; });
    }
    sim.run();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_EventScheduleDispatch);

void BM_EventCancellation(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    std::vector<sim::EventHandle> handles;
    handles.reserve(10'000);
    for (int i = 0; i < 10'000; ++i) {
      handles.push_back(sim.schedule_at(i, [] {}));
    }
    for (auto& h : handles) h.cancel();
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_EventCancellation);

void BM_LinkStoreAndForward(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    net::Link link(sim, "l", Bandwidth::mbps(1000), microseconds(100));
    std::int64_t delivered = 0;
    for (int i = 0; i < 5'000; ++i) {
      link.transmit(64 * kKiB, [&delivered] { ++delivered; });
    }
    sim.run();
    benchmark::DoNotOptimize(delivered);
  }
  state.SetItemsProcessed(state.iterations() * 5'000);
}
BENCHMARK(BM_LinkStoreAndForward);

void BM_UploadEventsPerSecond(benchmark::State& state) {
  const Bytes size = static_cast<Bytes>(state.range(0)) * kMiB;
  std::uint64_t events = 0;
  for (auto _ : state) {
    cluster::ClusterSpec spec = cluster::small_cluster(42);
    cluster::Cluster cluster(spec);
    const auto stats =
        cluster.run_upload("/f", size, cluster::Protocol::kSmarth);
    if (stats.failed) state.SkipWithError("upload failed");
    events += cluster.sim().events_executed();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.counters["events"] =
      static_cast<double>(events) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_UploadEventsPerSecond)->Arg(64)->Arg(256)->Unit(
    benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
