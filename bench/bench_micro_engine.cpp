// Microbenchmarks (google-benchmark) for the simulation substrate itself:
// event scheduling/dispatch throughput, link store-and-forward throughput,
// and end-to-end simulated-upload event rate. These gate the wall-clock cost
// of the figure benches, not any paper result.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <functional>

#include "cluster/cluster.hpp"
#include "cluster/cluster_spec.hpp"
#include "net/link.hpp"
#include "sim/reference_queue.hpp"
#include "sim/simulation.hpp"

namespace {

using namespace smarth;

void BM_EventScheduleDispatch(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    std::int64_t counter = 0;
    for (int i = 0; i < 10'000; ++i) {
      sim.schedule_at(i, [&counter] { ++counter; });
    }
    sim.run();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_EventScheduleDispatch);

void BM_EventCancellation(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    std::vector<sim::EventHandle> handles;
    handles.reserve(10'000);
    for (int i = 0; i < 10'000; ++i) {
      handles.push_back(sim.schedule_at(i, [] {}));
    }
    for (auto& h : handles) h.cancel();
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_EventCancellation);

// Steady-state churn: Arg(0) concurrent self-rescheduling chains — the shape
// of a running simulation (every dispatched event schedules a successor a
// short,
// varying delay ahead). This is where record pooling and the calendar
// queue's O(1) future inserts pay off; the *Reference variant runs the same
// workload on the pre-refactor core kept in sim/reference_queue.hpp, so the
// pair reports the engine speedup independent of machine load.
constexpr std::uint64_t kChurnEvents = 100'000;

SimDuration churn_delay(std::uint64_t n) {
  return 100 + static_cast<SimDuration>((n * 2654435761u) % 10'000);
}

void BM_EventChurn(benchmark::State& state) {
  const int chains = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulation sim;
    std::uint64_t fired = 0;
    std::function<void()> spawn = [&] {
      if (++fired >= kChurnEvents) return;
      sim.post_after(churn_delay(fired), "churn", [&] { spawn(); });
    };
    for (int c = 0; c < chains; ++c) {
      sim.post_after(churn_delay(static_cast<std::uint64_t>(c)), "churn",
                     [&] { spawn(); });
    }
    sim.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kChurnEvents));
}
BENCHMARK(BM_EventChurn)->Arg(64)->Arg(4096)->Arg(65536);

void BM_EventChurnReference(benchmark::State& state) {
  const int chains = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::ReferenceQueue sim;
    std::uint64_t fired = 0;
    std::function<void()> spawn = [&] {
      if (++fired >= kChurnEvents) return;
      sim.schedule_after(churn_delay(fired), [&] { spawn(); });
    };
    for (int c = 0; c < chains; ++c) {
      sim.schedule_after(churn_delay(static_cast<std::uint64_t>(c)),
                         [&] { spawn(); });
    }
    sim.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kChurnEvents));
}
BENCHMARK(BM_EventChurnReference)->Arg(64)->Arg(4096)->Arg(65536);

void BM_LinkStoreAndForward(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    net::Link link(sim, "l", Bandwidth::mbps(1000), microseconds(100));
    std::int64_t delivered = 0;
    for (int i = 0; i < 5'000; ++i) {
      link.transmit(64 * kKiB, [&delivered] { ++delivered; });
    }
    sim.run();
    benchmark::DoNotOptimize(delivered);
  }
  state.SetItemsProcessed(state.iterations() * 5'000);
}
BENCHMARK(BM_LinkStoreAndForward);

void BM_UploadEventsPerSecond(benchmark::State& state) {
  const Bytes size = static_cast<Bytes>(state.range(0)) * kMiB;
  std::uint64_t events = 0;
  for (auto _ : state) {
    cluster::ClusterSpec spec = cluster::small_cluster(42);
    cluster::Cluster cluster(spec);
    const auto stats =
        cluster.run_upload("/f", size, cluster::Protocol::kSmarth);
    if (stats.failed) state.SkipWithError("upload failed");
    events += cluster.sim().events_executed();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.counters["events"] =
      static_cast<double>(events) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_UploadEventsPerSecond)->Arg(64)->Arg(256)->Unit(
    benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
