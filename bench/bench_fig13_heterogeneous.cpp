// Figure 13 — the heterogeneous cluster (3 small + 3 medium + 3 large
// datanodes, medium namenode and client): upload time vs data size with no
// artificial throttling. Paper result: heterogeneity alone gives SMARTH a
// win (289 s vs 205 s at 8 GB — 41% faster) because the namenode learns to
// start pipelines on the faster nodes and the client never stalls on the
// slow ones.
#include "bench_common.hpp"

using namespace smarth;

int main() {
  bench::print_header(
      "Figure 13 — heterogeneous cluster, uploading time vs data size",
      "3 small + 3 medium + 3 large datanodes, no throttling. Paper: 41% "
      "improvement at 8 GB.");

  std::vector<harness::Scenario> sweep;
  for (Bytes size : {1 * kGiB, 2 * kGiB, 4 * kGiB, 8 * kGiB}) {
    sweep.push_back(harness::two_rack_scenario(
        std::to_string(size / kGiB) + " GiB", cluster::heterogeneous_cluster,
        kUnlimitedBandwidth, size));
  }
  const auto rows = bench::run_and_print("data size", sweep);
  std::printf("paper anchor at 8 GB: HDFS 289 s, SMARTH 205 s (41%%)\n");
  std::printf("measured at 8 GB: improvement %.1f%%\n",
              rows.back().improvement_percent());
  return 0;
}
