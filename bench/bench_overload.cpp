// Ablation A12 — control-plane overload defense vs saturation. A multi-tenant
// open-loop workload (Poisson arrivals, Zipf sizes) drives the namenode's
// modeled service capacity past its knee; the client-count sweep compares the
// undefended namenode (unbounded FIFO, timeout retry storms) against
// admission control (priority bands, bounded queue, typed sheds + client
// backoff, heartbeat batching, per-tenant addBlock caps), for both protocols.
//
// Emits BENCH_overload.json (machine-readable, nightly-regression-guarded)
// and exits non-zero when the defense acceptance fails:
//   * defended runs finish every job (zero stuck, zero failed) at every
//     tested client count,
//   * defended goodput never collapses past the knee (each count keeps at
//     least 60% of the previous count's goodput),
//   * defended client-observed addBlock p99 stays under a fixed ceiling,
//   * at the saturating count the undefended namenode is measurably worse:
//     higher addBlock p99 and lower goodput (or outright failed/stuck jobs).
//
//   bench_overload [output.json]
//
// SMARTH_BENCH_OVERLOAD_FAST=1 shortens the arrival window (CI config); the
// client grid and the assertions are identical in both configs.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "trace/flight_recorder.hpp"
#include "trace/metrics_registry.hpp"
#include "workload/open_loop.hpp"

using namespace smarth;

namespace {

/// Modeled namenode costs: ~5 ms per metadata op and ~25 ms per addBlock
/// put the addBlock-limited capacity near 28 jobs/s for single-block files,
/// so the 64-client point (0.5 jobs/client/s => 32 jobs/s offered) sits past
/// the knee while 4 and 16 clients stay comfortably below it.
constexpr double kJobsPerClientPerSecond = 0.5;

/// Defended queue bound: 32 * 25 ms ~ 0.8 s worst-case addBlock queueing
/// (plus interleaved higher-priority metadata service), safely inside the
/// 2 s RPC timeout — admitted ops answer before the client's timeout
/// machinery can amplify load, which is the whole defense.
constexpr int kQueueCapacity = 32;

struct ArmResult {
  int jobs = 0;
  int completed = 0;
  int failed = 0;
  int stuck = 0;
  double goodput_mibps = 0.0;
  double job_p50_s = 0.0;
  double job_p99_s = 0.0;
  double addblock_p50_s = 0.0;
  double addblock_p95_s = 0.0;
  double addblock_p99_s = 0.0;
  std::uint64_t admitted = 0;
  std::uint64_t shed = 0;
  std::uint64_t overload_retries = 0;
  std::uint64_t rpc_retries = 0;
  std::uint64_t rpc_give_ups = 0;
  std::uint64_t heartbeat_batches = 0;
  // Flight-recorder knee section: the time-resolved shape of the collapse.
  // Goodput per quarter of the run shows *when* an arm keels over, the queue
  // peak shows what the defended cap prevents, and the stall watchdog
  // timestamps the collapse (time-to-collapse for undefended arms).
  double goodput_quarters_mib[4] = {0, 0, 0, 0};
  double queue_depth_peak = 0.0;
  std::uint64_t watchdog_firings = 0;
  bool stall_fired = false;
  double stall_at_s = 0.0;
};

double counter_value(const char* name) {
  const metrics::Counter* c = metrics::global_registry().find_counter(name);
  return c != nullptr ? static_cast<double>(c->value()) : 0.0;
}

ArmResult run_arm(cluster::Protocol protocol, int clients, bool defended,
                  SimDuration duration) {
  metrics::global_registry().reset();
  // Flight recorder on every arm: per-second series feed the knee section,
  // and the watchdog layer is itself under test (undefended saturation must
  // trip the goodput stall; defended arms must stay silent).
  // 250 ms sampling resolves the knee (a 30-60 s arm yields 120+ samples);
  // the stall window is recalibrated to match: healthy arms never show more
  // than one consecutive zero-goodput sample at this cadence, while the
  // undefended saturation arms flat-line for 9+ (HDFS) / 37+ (SMARTH)
  // consecutive samples, so 6 ticks (1.5 s) separates the regimes cleanly.
  metrics::FlightRecorderConfig flight_config;
  flight_config.sample_interval = milliseconds(250);
  for (metrics::WatchdogSpec& w : flight_config.watchdogs) {
    if (w.name == "goodput_stall") w.window = 6;
  }
  metrics::FlightRecorder flight(flight_config);
  metrics::ScopedFlightInstall flight_install(&flight);
  flight.begin_run(std::string(cluster::protocol_name(protocol)) +
                       (defended ? "/defended" : "/undefended") + "@" +
                       std::to_string(clients),
                   42);
  cluster::ClusterSpec spec = cluster::small_cluster(42);
  spec.hdfs.fidelity = hdfs::DataFidelity::kBlock;
  spec.hdfs.nn_service_model = true;
  spec.hdfs.nn_admission_control = defended;
  spec.hdfs.nn_cost_meta = milliseconds(5);
  spec.hdfs.nn_cost_add_block = milliseconds(25);
  spec.hdfs.nn_queue_capacity = kQueueCapacity;
  cluster::Cluster cluster(spec);

  workload::OpenLoopConfig cfg;
  cfg.clients = clients;
  cfg.arrival_rate = kJobsPerClientPerSecond * clients;
  cfg.zipf_s = 1.2;
  cfg.min_file_size = 1 * kMiB;
  cfg.size_ranks = 3;
  cfg.duration = duration;
  workload::OpenLoopWorkload wl(protocol, cfg);
  const workload::OpenLoopResult r = wl.run(cluster);

  ArmResult arm;
  arm.jobs = r.jobs;
  arm.completed = r.completed;
  arm.failed = r.failed;
  arm.stuck = r.stuck;
  arm.goodput_mibps = r.goodput_mibps();
  arm.job_p50_s = r.latency_quantile(0.50);
  arm.job_p99_s = r.latency_quantile(0.99);
  if (const auto* h =
          metrics::global_registry().find_histogram("client.addblock_ns")) {
    arm.addblock_p50_s = h->quantile(0.50) / 1e9;
    arm.addblock_p95_s = h->quantile(0.95) / 1e9;
    arm.addblock_p99_s = h->quantile(0.99) / 1e9;
  }
  arm.admitted = cluster.nn_service_queue()->counters().admitted;
  arm.shed = cluster.nn_service_queue()->counters().shed_total;
  arm.heartbeat_batches =
      cluster.nn_service_queue()->counters().heartbeat_batches;
  arm.overload_retries =
      static_cast<std::uint64_t>(counter_value("rpc.overload_retries"));
  arm.rpc_retries = static_cast<std::uint64_t>(counter_value("rpc.retries"));
  arm.rpc_give_ups =
      static_cast<std::uint64_t>(counter_value("rpc.give_ups"));

  flight.finish_run(cluster.sim().now());
  const metrics::FlightRun& fr = flight.runs()[0];
  std::size_t bytes_col = 0, queue_col = 0;
  const std::vector<metrics::SeriesSpec>& series = flight.config().series;
  for (std::size_t i = 0; i < series.size(); ++i) {
    if (series[i].column == "client.bytes_acked") bytes_col = i;
    if (series[i].column == "nn.rpc.queue_depth") queue_col = i;
  }
  const std::size_t n = fr.samples.size();
  for (std::size_t i = 0; i < n; ++i) {
    const metrics::FlightSample& s = fr.samples[i];
    const std::size_t quarter = std::min<std::size_t>(i * 4 / std::max<std::size_t>(n, 1), 3);
    arm.goodput_quarters_mib[quarter] +=
        s.values[bytes_col] / static_cast<double>(kMiB);
    arm.queue_depth_peak = std::max(arm.queue_depth_peak, s.values[queue_col]);
  }
  arm.watchdog_firings = flight.total_firings();
  for (const metrics::WatchdogFiring& f : fr.firings) {
    if (f.monitor == "goodput_stall" && !arm.stall_fired) {
      arm.stall_fired = true;
      arm.stall_at_s = to_seconds(f.at);
    }
  }
  return arm;
}

std::string json_num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

std::string arm_json(const ArmResult& a) {
  std::string j = "{";
  j += "\"jobs\": " + std::to_string(a.jobs);
  j += ", \"completed\": " + std::to_string(a.completed);
  j += ", \"failed\": " + std::to_string(a.failed);
  j += ", \"stuck\": " + std::to_string(a.stuck);
  j += ", \"goodput_mibps\": " + json_num(a.goodput_mibps);
  j += ", \"job_p50_s\": " + json_num(a.job_p50_s);
  j += ", \"job_p99_s\": " + json_num(a.job_p99_s);
  j += ", \"addblock_p50_s\": " + json_num(a.addblock_p50_s);
  j += ", \"addblock_p95_s\": " + json_num(a.addblock_p95_s);
  j += ", \"addblock_p99_s\": " + json_num(a.addblock_p99_s);
  j += ", \"admitted\": " + std::to_string(a.admitted);
  j += ", \"shed\": " + std::to_string(a.shed);
  j += ", \"overload_retries\": " + std::to_string(a.overload_retries);
  j += ", \"rpc_retries\": " + std::to_string(a.rpc_retries);
  j += ", \"rpc_give_ups\": " + std::to_string(a.rpc_give_ups);
  j += ", \"heartbeat_batches\": " + std::to_string(a.heartbeat_batches);
  j += ", \"flight\": {\"goodput_quarters_mib\": [" +
       json_num(a.goodput_quarters_mib[0]) + ", " +
       json_num(a.goodput_quarters_mib[1]) + ", " +
       json_num(a.goodput_quarters_mib[2]) + ", " +
       json_num(a.goodput_quarters_mib[3]) + "]";
  j += ", \"queue_depth_peak\": " + json_num(a.queue_depth_peak);
  j += ", \"watchdog_firings\": " + std::to_string(a.watchdog_firings);
  j += ", \"stall_fired\": " + std::string(a.stall_fired ? "true" : "false");
  j += ", \"stall_at_s\": " + json_num(a.stall_at_s) + "}";
  j += "}";
  return j;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_overload.json";
  const bool fast = std::getenv("SMARTH_BENCH_OVERLOAD_FAST") != nullptr;
  const SimDuration duration = fast ? seconds(30) : seconds(60);
  const std::vector<int> client_counts = {4, 16, 64};
  /// Defended client-observed addBlock p99 ceiling, seconds. The bounded
  /// queue keeps per-attempt service under a second; the tail is a handful
  /// of shed/backoff cycles (capped at 5 s each), so it stays bounded by
  /// the backoff schedule instead of growing with the backlog the way the
  /// undefended queue does.
  const double kAddblockP99CeilingS = 15.0;

  bench::print_header(
      "Control-plane overload — open-loop saturation, admission control vs "
      "undefended namenode (A12)",
      "Multi-tenant Poisson arrivals at 0.5 jobs/client/s; namenode modeled "
      "at ~28 addBlock/s capacity. Defended = bounded queue + priorities + "
      "typed sheds; undefended = unbounded FIFO + timeout retries.");

  bool acceptance_ok = true;
  std::string failures;
  const auto fail = [&](const std::string& why) {
    acceptance_ok = false;
    failures += "  " + why + "\n";
  };

  std::string json = "{\n  \"bench\": \"overload\",\n";
  json += "  \"config\": {\"fast\": " + std::string(fast ? "true" : "false") +
          ", \"duration_s\": " + json_num(to_seconds(duration)) +
          ", \"jobs_per_client_per_s\": " + json_num(kJobsPerClientPerSecond) +
          ", \"queue_capacity\": " + std::to_string(kQueueCapacity) +
          ", \"addblock_p99_ceiling_s\": " + json_num(kAddblockP99CeilingS) +
          "},\n  \"protocols\": [\n";

  TextTable table({"protocol", "clients", "defense", "jobs", "done", "failed",
                   "stuck", "goodput (MiB/s)", "addBlock p99 (s)", "shed",
                   "give-ups", "queue peak", "stall (s)"});
  const cluster::Protocol protocols[] = {cluster::Protocol::kHdfs,
                                         cluster::Protocol::kSmarth};
  for (std::size_t pi = 0; pi < 2; ++pi) {
    const cluster::Protocol protocol = protocols[pi];
    const char* pname = cluster::protocol_name(protocol);
    json += std::string("    {\"protocol\": \"") + pname +
            "\", \"points\": [\n";
    double prev_defended_goodput = -1.0;
    for (std::size_t ci = 0; ci < client_counts.size(); ++ci) {
      const int clients = client_counts[ci];
      const ArmResult undef = run_arm(protocol, clients, false, duration);
      const ArmResult def = run_arm(protocol, clients, true, duration);
      for (const auto* arm : {&undef, &def}) {
        table.add_row({pname, std::to_string(clients),
                       arm == &def ? "defended" : "undefended",
                       std::to_string(arm->jobs),
                       std::to_string(arm->completed),
                       std::to_string(arm->failed),
                       std::to_string(arm->stuck),
                       TextTable::num(arm->goodput_mibps, 2),
                       TextTable::num(arm->addblock_p99_s, 2),
                       std::to_string(arm->shed),
                       std::to_string(arm->rpc_give_ups),
                       TextTable::num(arm->queue_depth_peak, 0),
                       arm->stall_fired ? TextTable::num(arm->stall_at_s, 1)
                                        : "-"});
      }

      const std::string tag = std::string(pname) + " @" +
                              std::to_string(clients) + " clients";
      // (1) The defended namenode never leaves work hanging or dying.
      if (def.stuck != 0 || def.failed != 0) {
        fail(tag + ": defended run left " + std::to_string(def.stuck) +
             " stuck / " + std::to_string(def.failed) + " failed jobs");
      }
      // (2) No goodput collapse past the knee.
      if (prev_defended_goodput > 0.0 &&
          def.goodput_mibps < 0.6 * prev_defended_goodput) {
        fail(tag + ": defended goodput collapsed (" +
             json_num(def.goodput_mibps) + " < 0.6 * " +
             json_num(prev_defended_goodput) + " MiB/s)");
      }
      prev_defended_goodput = def.goodput_mibps;
      // (3) Defended tail latency stays bounded.
      if (def.addblock_p99_s > kAddblockP99CeilingS) {
        fail(tag + ": defended addBlock p99 " + json_num(def.addblock_p99_s) +
             " s exceeds the " + json_num(kAddblockP99CeilingS) +
             " s ceiling");
      }
      // (5) A defended arm never pages: zero watchdog firings at any count.
      if (def.watchdog_firings != 0) {
        fail(tag + ": defended run fired " +
             std::to_string(def.watchdog_firings) + " watchdog(s)");
      }
      // (4) At the saturating count, undefended is measurably worse.
      if (ci + 1 == client_counts.size()) {
        const bool undef_broke = undef.failed + undef.stuck > 0;
        if (!undef_broke && undef.addblock_p99_s <= def.addblock_p99_s) {
          fail(tag + ": undefended addBlock p99 (" +
               json_num(undef.addblock_p99_s) +
               " s) not worse than defended (" + json_num(def.addblock_p99_s) +
               " s)");
        }
        if (!undef_broke && undef.goodput_mibps >= def.goodput_mibps) {
          fail(tag + ": undefended goodput (" + json_num(undef.goodput_mibps) +
               ") not worse than defended (" + json_num(def.goodput_mibps) +
               " MiB/s)");
        }
        // (6) The collapse must be visible in the flight recorder: the
        // goodput-stall watchdog pages on the undefended saturation arm,
        // and the queue-depth knee towers over the defended admission cap.
        if (!undef.stall_fired) {
          fail(tag +
               ": undefended saturation never tripped the goodput-stall "
               "watchdog");
        }
        if (undef.queue_depth_peak <= def.queue_depth_peak) {
          fail(tag + ": undefended queue peak (" +
               json_num(undef.queue_depth_peak) +
               ") not above defended peak (" +
               json_num(def.queue_depth_peak) + ")");
        }
      }

      json += "      {\"clients\": " + std::to_string(clients) +
              ",\n       \"undefended\": " + arm_json(undef) +
              ",\n       \"defended\": " + arm_json(def) + "}";
      json += ci + 1 < client_counts.size() ? ",\n" : "\n";
    }
    json += "    ]}";
    json += pi == 0 ? ",\n" : "\n";
  }
  json += "  ],\n  \"acceptance_ok\": " +
          std::string(acceptance_ok ? "true" : "false") + "\n}\n";

  std::printf("%s\n", table.to_string().c_str());

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("written to %s\n", out_path.c_str());
  if (!acceptance_ok) {
    std::fprintf(stderr, "ACCEPTANCE FAILED:\n%s", failures.c_str());
    return 1;
  }
  return 0;
}
