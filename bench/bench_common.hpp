// Shared plumbing for the figure-reproduction benches: each bench sweeps the
// paper's parameter grid, runs both protocols on fresh identical clusters,
// and prints the series the corresponding figure plots. Absolute seconds
// depend on the simulator's calibration; the shapes (who wins, by what
// factor, where crossovers sit) are the reproduction target.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/cluster_spec.hpp"
#include "harness/experiment.hpp"
#include "metrics/report.hpp"

namespace smarth::bench {

/// File size for the single-size experiments; the paper uses 8 GB. Override
/// with SMARTH_BENCH_FILE_GB for quicker sweeps.
inline Bytes bench_file_size() {
  if (const char* env = std::getenv("SMARTH_BENCH_FILE_GB")) {
    const long gb = std::strtol(env, nullptr, 10);
    if (gb > 0) return static_cast<Bytes>(gb) * kGiB;
  }
  return 8 * kGiB;
}

/// Repeat count for seed averaging (paper runs are single-shot on EC2; the
/// simulator is deterministic, so 1 is the meaningful default).
inline int bench_repeats() {
  if (const char* env = std::getenv("SMARTH_BENCH_REPEATS")) {
    const long n = std::strtol(env, nullptr, 10);
    if (n > 0) return static_cast<int>(n);
  }
  return 1;
}

inline void print_header(const std::string& title, const std::string& note) {
  std::printf("\n=== %s ===\n", title.c_str());
  if (!note.empty()) std::printf("%s\n", note.c_str());
  std::printf("\n");
}

/// Runs every scenario through both protocols and prints the figure series.
inline std::vector<metrics::ComparisonRow> run_and_print(
    const std::string& x_label, const std::vector<harness::Scenario>& sweep) {
  std::vector<metrics::ComparisonRow> rows;
  rows.reserve(sweep.size());
  const int repeats = bench_repeats();
  for (const harness::Scenario& scenario : sweep) {
    rows.push_back(
        harness::compare_protocols_averaged(scenario, repeats, 42));
  }
  std::printf("%s", metrics::render_comparison_table(x_label, rows).c_str());
  std::fflush(stdout);
  return rows;
}

}  // namespace smarth::bench
