// Figure 5 (a-f) — upload time vs file size on the small, medium and large
// clusters, without throttling (left column) and with a 100 Mbps cross-rack
// throttle (right column). The paper's findings to reproduce: time grows
// proportionally with file size; without throttling SMARTH ≈ HDFS; with the
// throttle SMARTH wins clearly; medium and large clusters perform alike
// (same NIC).
#include "bench_common.hpp"

using namespace smarth;

int main() {
  bench::print_header(
      "Figure 5 — uploading time vs file size, with and without cross-rack "
      "throttling",
      "Sub-figures: (a,b) small, (c,d) medium, (e,f) large; "
      "(left) default bandwidth, (right) 100 Mbps cross-rack throttle.");

  struct ClusterCase {
    const char* name;
    cluster::ClusterSpec (*make)(std::uint64_t);
  };
  const ClusterCase clusters[] = {
      {"small", cluster::small_cluster},
      {"medium", cluster::medium_cluster},
      {"large", cluster::large_cluster},
  };
  const double throttles_mbps[] = {0.0, 100.0};
  const Bytes sizes[] = {1 * kGiB, 2 * kGiB, 4 * kGiB, 8 * kGiB};

  for (const auto& cc : clusters) {
    for (double throttle : throttles_mbps) {
      std::vector<harness::Scenario> sweep;
      for (Bytes size : sizes) {
        const std::string label = std::to_string(size / kGiB) + " GiB";
        sweep.push_back(harness::two_rack_scenario(
            label, cc.make,
            throttle > 0 ? Bandwidth::mbps(throttle) : kUnlimitedBandwidth,
            size));
      }
      std::printf("--- Fig. 5: %s cluster, %s ---\n", cc.name,
                  throttle > 0 ? "100 Mbps cross-rack throttle"
                               : "default bandwidth");
      const auto rows = bench::run_and_print("file size", sweep);
      // Linearity check the paper calls out: 8 GiB should take ~8x 1 GiB.
      if (rows.size() == 4 && rows[0].hdfs_seconds > 0) {
        std::printf("linearity (8G/1G): HDFS %.2fx, SMARTH %.2fx\n\n",
                    rows[3].hdfs_seconds / rows[0].hdfs_seconds,
                    rows[3].smarth_seconds / rows[0].smarth_seconds);
      }
    }
  }
  return 0;
}
