// Engine scale trajectory: events/sec and wall-clock per simulated hour
// across cluster sizes (10 / 100 / 1000 datanodes) in both fidelity modes,
// plus an in-process comparison of the calendar-queue event core against the
// pre-refactor reference design (sim/reference_queue.hpp). Emits
// BENCH_engine_scale.json so the perf trajectory is machine-checkable: CI
// gates on the core speedup ratio, which is machine-independent because both
// cores run in the same process on the same workload.
//
//   bench_engine_scale [output.json]
//
// SMARTH_BENCH_ENGINE_FAST=1 shrinks the simulated horizon and upload (CI
// config); the cluster-size grid — including the 1000-node block-fidelity
// point — is identical in both configs.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/cluster_spec.hpp"
#include "cluster/instance_profile.hpp"
#include "sim/reference_queue.hpp"
#include "sim/simulation.hpp"

using namespace smarth;

namespace {

double wall_seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// --- Core micro-comparison ---------------------------------------------------
// Steady-state churn: `chains` concurrent self-rescheduling chains, the shape
// of a running simulation (every executed event schedules its successor).
// Identical workload on both cores; the ratio of events/sec is the speedup
// the refactor buys, independent of the machine the bench runs on.

constexpr int kChurnChains = 65536;
constexpr std::uint64_t kChurnEvents = 2'000'000;

SimDuration churn_delay(std::uint64_t n) {
  return 100 + static_cast<SimDuration>((n * 2654435761u) % 10'000);
}

struct CoreRate {
  std::uint64_t events = 0;
  double wall_s = 0;
  double events_per_sec() const { return wall_s > 0 ? events / wall_s : 0; }
};

CoreRate churn_calendar() {
  sim::Simulation sim(1);
  std::uint64_t n = 0;
  std::function<void()> spawn = [&] {
    sim.post_after(churn_delay(n++), "churn", [&] { spawn(); });
  };
  for (int i = 0; i < kChurnChains; ++i) spawn();
  const auto start = std::chrono::steady_clock::now();
  sim.run_steps(kChurnEvents);
  CoreRate rate;
  rate.wall_s = wall_seconds_since(start);
  rate.events = sim.events_executed();
  return rate;
}

CoreRate churn_reference() {
  sim::ReferenceQueue sim;
  std::uint64_t n = 0;
  std::function<void()> spawn = [&] {
    sim.schedule_after(churn_delay(n++), [&] { spawn(); });
  };
  for (int i = 0; i < kChurnChains; ++i) spawn();
  const auto start = std::chrono::steady_clock::now();
  std::uint64_t executed = 0;
  while (executed < kChurnEvents && sim.execute_one()) ++executed;
  CoreRate rate;
  rate.wall_s = wall_seconds_since(start);
  rate.events = executed;
  return rate;
}

// --- Cluster-scale points ----------------------------------------------------

struct ScalePoint {
  int datanodes = 0;
  const char* fidelity = "packet";
  std::uint64_t events = 0;
  double wall_s = 0;
  double sim_s = 0;

  double events_per_sec() const { return wall_s > 0 ? events / wall_s : 0; }
  double wall_per_sim_hour() const {
    return sim_s > 0 ? wall_s / sim_s * 3600.0 : 0;
  }
};

ScalePoint run_scale_point(int datanodes, hdfs::DataFidelity fidelity,
                           double sim_seconds, Bytes file_size) {
  cluster::ClusterSpec spec = cluster::homogeneous_cluster(
      cluster::small_instance(), static_cast<std::size_t>(datanodes), 42);
  spec.hdfs.fidelity = fidelity;
  cluster::Cluster cluster(spec);
  // One active upload keeps the data path hot; at 1000 nodes the heartbeat /
  // control plane is the dominant event source, which is the scale story.
  cluster.upload("/bench/scale.bin", file_size, cluster::Protocol::kSmarth,
                 [](const hdfs::StreamStats&) {});
  const auto start = std::chrono::steady_clock::now();
  cluster.sim().run_until(seconds_f(sim_seconds));
  ScalePoint point;
  point.datanodes = datanodes;
  point.fidelity =
      fidelity == hdfs::DataFidelity::kBlock ? "block" : "packet";
  point.wall_s = wall_seconds_since(start);
  point.sim_s = sim_seconds;
  point.events = cluster.sim().events_executed();
  return point;
}

std::string json_num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path =
      argc > 1 ? argv[1] : "BENCH_engine_scale.json";
  const bool fast = std::getenv("SMARTH_BENCH_ENGINE_FAST") != nullptr;
  const double sim_seconds = fast ? 8.0 : 30.0;
  const Bytes file_size = fast ? 256 * kMiB : kGiB;

  std::printf("engine core churn (%d chains, %llu events):\n", kChurnChains,
              static_cast<unsigned long long>(kChurnEvents));
  const CoreRate calendar = churn_calendar();
  const CoreRate reference = churn_reference();
  const double speedup =
      reference.events_per_sec() > 0
          ? calendar.events_per_sec() / reference.events_per_sec()
          : 0;
  std::printf("  calendar queue  %10.0f events/s\n",
              calendar.events_per_sec());
  std::printf("  reference core  %10.0f events/s\n",
              reference.events_per_sec());
  std::printf("  speedup         %10.2fx\n\n", speedup);

  std::vector<ScalePoint> points;
  for (const int datanodes : {10, 100, 1000}) {
    for (const hdfs::DataFidelity fidelity :
         {hdfs::DataFidelity::kPacket, hdfs::DataFidelity::kBlock}) {
      ScalePoint point =
          run_scale_point(datanodes, fidelity, sim_seconds, file_size);
      std::printf(
          "%5d datanodes  %-6s  %9llu events  %8.0f events/s  "
          "%7.2f wall-s per sim-hour\n",
          point.datanodes, point.fidelity,
          static_cast<unsigned long long>(point.events),
          point.events_per_sec(), point.wall_per_sim_hour());
      std::fflush(stdout);
      points.push_back(point);
    }
  }

  std::string json = "{\n  \"bench\": \"engine_scale\",\n";
  json += "  \"config\": {\"fast\": " + std::string(fast ? "true" : "false") +
          ", \"sim_seconds\": " + json_num(sim_seconds) +
          ", \"file_mib\": " + json_num(static_cast<double>(file_size / kMiB)) +
          "},\n";
  json += "  \"core_microbench\": {\"chains\": " + std::to_string(kChurnChains) +
          ", \"events\": " + std::to_string(kChurnEvents) +
          ", \"calendar_events_per_sec\": " +
          json_num(calendar.events_per_sec()) +
          ", \"reference_events_per_sec\": " +
          json_num(reference.events_per_sec()) +
          ", \"speedup\": " + json_num(speedup) + "},\n";
  json += "  \"clusters\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const ScalePoint& p = points[i];
    json += std::string("    {\"datanodes\": ") + std::to_string(p.datanodes) +
            ", \"fidelity\": \"" + p.fidelity +
            "\", \"events\": " + std::to_string(p.events) +
            ", \"sim_seconds\": " + json_num(p.sim_s) +
            ", \"wall_seconds\": " + json_num(p.wall_s) +
            ", \"events_per_sec\": " + json_num(p.events_per_sec()) +
            ", \"wall_seconds_per_sim_hour\": " +
            json_num(p.wall_per_sim_hour()) + "}";
    json += i + 1 < points.size() ? ",\n" : "\n";
  }
  json += "  ]\n}\n";

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("\nwritten to %s\n", out_path.c_str());
  return 0;
}
