// Ablation A5 — the paper's cost model (Formulas 1-3, §III-D) against the
// simulator at full paper scale. The serial formulas are upper-bound-ish
// (they add stage costs), the pipelined variants lower bounds (max stage
// cost), and SMARTH additionally saturates at the finite-block replica-drain
// makespan; the measured time should land inside that bracket.
#include "bench_common.hpp"
#include "common/table.hpp"
#include "model/cost_model.hpp"

using namespace smarth;

namespace {

model::CostParams derive_params(const cluster::ClusterSpec& spec,
                                double throttle_mbps, Bytes file_size) {
  model::CostParams p;
  p.file_size = file_size;
  p.block_size = spec.hdfs.block_size;
  p.packet_size = spec.hdfs.packet_payload;
  p.t_c = spec.hdfs.packet_production_time;
  const auto& profile = spec.datanodes[0].profile;
  p.t_w = profile.disk_op_overhead +
          profile.disk_write.transmit_time(p.packet_size) +
          spec.hdfs.checksum_verify_time;
  p.t_n = milliseconds(2);
  const Bandwidth nic = profile.network;
  const Bandwidth cross =
      throttle_mbps > 0 ? Bandwidth::mbps(throttle_mbps) : nic;
  p.b_min = min(nic, cross);
  p.b_max = nic;
  return p;
}

double drain_seconds(const cluster::ClusterSpec& spec, double throttle_mbps,
                     Bytes file_size) {
  if (throttle_mbps <= 0) return 0.0;
  const std::int64_t n = static_cast<std::int64_t>(spec.datanode_count()) /
                         spec.hdfs.replication;
  const std::int64_t blocks =
      (file_size + spec.hdfs.block_size - 1) / spec.hdfs.block_size;
  const std::int64_t rounds = (blocks + n - 1) / n;
  return static_cast<double>(rounds) *
         static_cast<double>(spec.hdfs.block_size) * 8.0 /
         (throttle_mbps * 1e6);
}

}  // namespace

int main() {
  bench::print_header(
      "Model validation — Formulas 1-3 vs simulation (small cluster, 8 GB)",
      "serial = paper formula, pipelined = overlap-aware lower bound, "
      "drain = SMARTH replica-drain makespan.");

  const Bytes file_size = bench::bench_file_size();
  TextTable table({"throttle", "protocol", "sim (s)", "serial model (s)",
                   "pipelined model (s)", "drain bound (s)", "sim/bracket"});

  for (double throttle : {0.0, 150.0, 100.0, 50.0}) {
    const cluster::ClusterSpec spec = cluster::small_cluster(42);
    const model::CostParams params = derive_params(spec, throttle, file_size);
    const std::string label =
        throttle > 0 ? std::to_string(static_cast<int>(throttle)) + " Mbps"
                     : "default";
    for (int p = 0; p < 2; ++p) {
      cluster::Cluster cluster(spec);
      if (throttle > 0) cluster.throttle_cross_rack(Bandwidth::mbps(throttle));
      harness::warm_speed_records(cluster);
      const auto stats = cluster.run_upload(
          "/f", file_size,
          p ? cluster::Protocol::kSmarth : cluster::Protocol::kHdfs);
      const double sim_secs = to_seconds(stats.elapsed());
      const double serial =
          to_seconds(p ? model::predict_smarth_time(params)
                       : model::predict_hdfs_time(params));
      const double pipelined =
          to_seconds(p ? model::predict_smarth_time_pipelined(params)
                       : model::predict_hdfs_time_pipelined(params));
      const double drain =
          p ? drain_seconds(spec, throttle, file_size) : 0.0;
      const double upper = std::max(serial, drain);
      const bool inside = sim_secs >= pipelined * 0.9 &&
                          sim_secs <= upper * 1.35;
      table.add_row({label, p ? "SMARTH" : "HDFS", TextTable::num(sim_secs),
                     TextTable::num(serial), TextTable::num(pipelined),
                     p ? TextTable::num(drain) : std::string("-"),
                     inside ? "inside" : "OUTSIDE"});
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  return 0;
}
