// Ablation — replication factor. The paper evaluates only r = 3 (the HDFS
// default), but SMARTH's pipeline cap n = |datanodes| / r makes the factor a
// first-order knob: higher replication means longer pipelines (worse for
// HDFS's min-bandwidth bound) and fewer concurrent SMARTH pipelines.
#include "bench_common.hpp"
#include "common/table.hpp"

using namespace smarth;

int main() {
  bench::print_header(
      "Ablation — replication factor (small cluster, 50 Mbps cross-rack, "
      "8 GB)",
      "SMARTH's fan-out is |datanodes|/r concurrent pipelines: 4 at r=2, "
      "3 at r=3, 2 at r=4.");

  const Bytes file_size = bench::bench_file_size();
  TextTable table({"replication", "HDFS (s)", "SMARTH (s)",
                   "improvement (%)", "SMARTH max pipelines"});
  for (int replication : {2, 3, 4}) {
    double secs[2];
    int max_pipelines = 0;
    for (int p = 0; p < 2; ++p) {
      cluster::ClusterSpec spec = cluster::small_cluster(42);
      spec.hdfs.replication = replication;
      cluster::Cluster cluster(spec);
      cluster.throttle_cross_rack(Bandwidth::mbps(50));
      const auto stats = cluster.run_upload(
          "/f", file_size,
          p ? cluster::Protocol::kSmarth : cluster::Protocol::kHdfs);
      if (stats.failed) {
        std::printf("r=%d failed: %s\n", replication,
                    stats.failure_reason.c_str());
        return 1;
      }
      secs[p] = to_seconds(stats.elapsed());
      if (p == 1) max_pipelines = stats.max_concurrent_pipelines;
    }
    table.add_row({std::to_string(replication), TextTable::num(secs[0]),
                   TextTable::num(secs[1]),
                   TextTable::num((secs[0] / secs[1] - 1.0) * 100.0, 1),
                   std::to_string(max_pipelines)});
  }
  std::printf("%s\n", table.to_string().c_str());
  return 0;
}
