// Table I — Amazon EC2 instance types. Prints the profiles the simulator
// uses (memory, ECUs, network as reported in the paper) plus the derived
// simulation parameters (disk bandwidth, per-packet production cost Tc),
// and a measured single-node sanity check: observed client->datanode
// transfer speed per instance type.
#include "bench_common.hpp"
#include "common/table.hpp"

using namespace smarth;

namespace {

double measured_first_hop_mbps(const cluster::InstanceProfile& profile) {
  cluster::ClusterSpec spec = cluster::homogeneous_cluster(profile, 9, 42);
  cluster::Cluster cluster(spec);
  const auto stats =
      cluster.run_upload("/probe", 256 * kMiB, cluster::Protocol::kSmarth);
  if (stats.failed || !cluster.speed_tracker().has_records()) return 0.0;
  // The tracker holds the client's measured block transfer speeds to first
  // datanodes — the quantity SMARTH's optimizers run on.
  double best = 0.0;
  for (const auto& record : cluster.speed_tracker().heartbeat_records()) {
    best = std::max(best, record.speed.mbps());
  }
  return best;
}

}  // namespace

int main() {
  bench::print_header(
      "Table I — Amazon EC2 instance types",
      "Paper values (memory, ECUs, network) plus the derived simulation "
      "parameters and a measured first-hop speed sanity check.");

  TextTable table({"instance", "memory (GB)", "ECUs", "network (Mbps)",
                   "disk write (MB/s)", "Tc (us/packet)",
                   "measured first hop (Mbps)"});
  for (const auto& profile : cluster::all_instance_profiles()) {
    table.add_row({profile.name, TextTable::num(profile.memory_gb, 2),
                   std::to_string(profile.ecus),
                   TextTable::num(profile.network.mbps(), 0),
                   TextTable::num(profile.disk_write.bytes_per_second() / 1e6,
                                  0),
                   TextTable::num(static_cast<double>(
                                      profile.packet_production_time) /
                                      kMicrosecond,
                                  0),
                   TextTable::num(measured_first_hop_mbps(profile), 1)});
  }
  std::printf("%s\n", table.to_string().c_str());
  return 0;
}
