// Extension — the paper's future work ("evaluate SMARTH on different storage
// platforms and types such as RAID and SSD"). Swaps the datanode storage
// profile and measures both protocols: once the disk is fast enough that Tw
// never binds, the gap is purely network-shaped; a slow disk (shared HDD)
// caps both protocols alike.
#include "bench_common.hpp"
#include "common/table.hpp"

using namespace smarth;

namespace {

struct StorageProfile {
  const char* name;
  Bandwidth write_bw;
  SimDuration op_overhead;
};

}  // namespace

int main() {
  bench::print_header(
      "Extension — storage types (small cluster, 100 Mbps cross-rack, 8 GB)",
      "Paper future work: RAID and SSD storage. Disk write bandwidth and "
      "per-op overhead swapped per run; NICs unchanged.");

  const StorageProfile profiles[] = {
      {"slow shared HDD", Bandwidth::mega_bytes_per_second(25),
       microseconds(200)},
      {"ephemeral HDD (paper)", Bandwidth::mega_bytes_per_second(60),
       microseconds(80)},
      {"RAID0 (2 disks)", Bandwidth::mega_bytes_per_second(120),
       microseconds(80)},
      {"SSD", Bandwidth::mega_bytes_per_second(450), microseconds(15)},
  };

  const Bytes file_size = bench::bench_file_size();
  TextTable table({"storage", "HDFS (s)", "SMARTH (s)", "improvement (%)"});
  for (const StorageProfile& profile : profiles) {
    double secs[2];
    for (int p = 0; p < 2; ++p) {
      cluster::ClusterSpec spec = cluster::small_cluster(42);
      for (auto& dn : spec.datanodes) {
        dn.profile.disk_write = profile.write_bw;
        dn.profile.disk_op_overhead = profile.op_overhead;
      }
      cluster::Cluster cluster(spec);
      cluster.throttle_cross_rack(Bandwidth::mbps(100));
      const auto stats = cluster.run_upload(
          "/f", file_size,
          p ? cluster::Protocol::kSmarth : cluster::Protocol::kHdfs);
      if (stats.failed) {
        std::printf("%s failed: %s\n", profile.name,
                    stats.failure_reason.c_str());
        return 1;
      }
      secs[p] = to_seconds(stats.elapsed());
    }
    table.add_row({profile.name, TextTable::num(secs[0]),
                   TextTable::num(secs[1]),
                   TextTable::num((secs[0] / secs[1] - 1.0) * 100.0, 1)});
  }
  std::printf("%s\n", table.to_string().c_str());
  return 0;
}
