// Ablation A11 — gray-failure defense vs tail latency. One datanode is
// fail-slow (disk + NIC divided by a severity factor, heartbeats healthy) so
// none of the crash machinery fires; this bench measures what the PR-8
// defenses buy back:
//
//   * Read leg: repeated whole-file reads while the slow node serves one
//     block's primary replica — p50/p99 read latency with hedged reads off
//     vs on. The first hedged read is the cold start (static threshold), the
//     rest are pace-triggered from the warm read.gap_ns baseline.
//   * Write leg: upload completion time with slow-node eviction off vs on,
//     per severity factor. Eviction pays one pipeline recovery to get the
//     straggler out of the pipeline mid-block.
//
// Emits BENCH_tail_latency.json (machine-readable, nightly-regression-guarded)
// and exits non-zero if a defense fails to strictly beat its undefended
// baseline — the PR's acceptance criterion, kept executable.
//
//   bench_tail_latency [output.json]
//
// SMARTH_BENCH_TAIL_FAST=1 shrinks the file and the read count (CI config);
// the severity grid and the assertions are identical in both configs.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "faults/fault_injector.hpp"
#include "trace/metrics_registry.hpp"

using namespace smarth;

namespace {

/// The datanode index the fault targets; index 1 sits in rack0 and serves
/// both early write pipelines and block-0 read primaries on the small
/// cluster's distance-sorted placement.
constexpr std::size_t kSlowIndex = 1;

struct ReadLeg {
  double p50_s = 0.0;
  double p99_s = 0.0;
  int reads = 0;
  int hedges = 0;
  int hedge_wins = 0;
  std::uint64_t slow_node_reports = 0;
};

double quantile_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

/// Uploads cleanly, then turns the slow node gray and reads the file back
/// `reads` times. The fault covers the whole read phase; only the defenses
/// differ between the two calls.
ReadLeg run_read_leg(double factor, bool hedged, Bytes file_size, int reads) {
  metrics::global_registry().reset();
  cluster::ClusterSpec spec = cluster::small_cluster(42);
  spec.hdfs.ack_timeout = seconds(2);
  spec.hdfs.hedged_reads = hedged;
  cluster::Cluster cluster(spec);
  const auto stats =
      cluster.run_upload("/tail", file_size, cluster::Protocol::kHdfs);
  ReadLeg leg;
  if (stats.failed) return leg;

  faults::FaultInjector injector(cluster, /*chaos_seed=*/42);
  const SimTime fault_at = cluster.sim().now() + seconds(1);
  injector.fail_slow(kSlowIndex, fault_at, fault_at + seconds(100'000),
                     factor, factor);
  cluster.sim().run_until(fault_at + milliseconds(1));

  std::vector<double> latencies;
  for (int i = 0; i < reads; ++i) {
    const auto read = cluster.run_download("/tail");
    if (read.failed) return leg;
    latencies.push_back(to_seconds(read.elapsed()));
    leg.hedges += read.hedged_reads;
    leg.hedge_wins += read.hedge_wins;
  }
  std::sort(latencies.begin(), latencies.end());
  leg.reads = reads;
  leg.p50_s = quantile_sorted(latencies, 0.50);
  leg.p99_s = quantile_sorted(latencies, 0.99);
  if (const auto* c = metrics::global_registry().find_counter(
          "namenode.slow_node_reports")) {
    leg.slow_node_reports = c->value();
  }
  return leg;
}

struct WriteLeg {
  double seconds = -1.0;
  int recoveries = 0;
  int evictions = 0;
};

/// Upload with the slow node gray from 2 s in; only the eviction defense
/// differs between the two calls. Eviction pays one fixed recovery
/// (probe + truncate + prefix transfer) to remove the straggler, so it
/// amortizes over the remaining blocks — the leg always uploads the full
/// 4-block file even in the fast config, or the upload would finish before
/// the defense can pay for itself.
WriteLeg run_write_leg(double factor, bool evict, Bytes file_size) {
  metrics::global_registry().reset();
  cluster::ClusterSpec spec = cluster::small_cluster(42);
  spec.hdfs.slow_node_eviction = evict;
  cluster::Cluster cluster(spec);
  faults::FaultInjector injector(cluster, /*chaos_seed=*/42);
  injector.fail_slow(kSlowIndex, seconds(2), seconds(100'000), factor,
                     factor);
  const auto stats =
      cluster.run_upload("/tail", file_size, cluster::Protocol::kHdfs);
  WriteLeg leg;
  if (stats.failed) return leg;
  leg.seconds = to_seconds(stats.elapsed());
  leg.recoveries = stats.recoveries;
  leg.evictions = stats.slow_evictions;
  return leg;
}

std::string json_num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path =
      argc > 1 ? argv[1] : "BENCH_tail_latency.json";
  const bool fast = std::getenv("SMARTH_BENCH_TAIL_FAST") != nullptr;
  const Bytes file_size = fast ? 128 * kMiB : 256 * kMiB;
  const Bytes write_file_size = 256 * kMiB;
  const int reads = fast ? 6 : 12;
  const std::vector<double> factors = {4.0, 8.0};

  bench::print_header(
      "Gray-failure tail latency — one fail-slow datanode, heartbeats "
      "healthy (A11)",
      "Read p50/p99 hedged vs not over repeated reads, and upload completion "
      "with slow-node eviction on/off, per fail-slow severity factor.");

  bool acceptance_ok = true;
  std::string json = "{\n  \"bench\": \"tail_latency\",\n";
  json += "  \"config\": {\"fast\": " + std::string(fast ? "true" : "false") +
          ", \"file_mib\": " +
          json_num(static_cast<double>(file_size / kMiB)) +
          ", \"reads\": " + std::to_string(reads) +
          ", \"slow_datanode\": " + std::to_string(kSlowIndex) + "},\n";
  json += "  \"severities\": [\n";

  TextTable read_table({"factor", "defense", "p50 (s)", "p99 (s)", "hedges",
                        "hedge wins", "slow-node reports"});
  TextTable write_table(
      {"factor", "defense", "seconds", "recoveries", "evictions"});
  for (std::size_t i = 0; i < factors.size(); ++i) {
    const double factor = factors[i];
    const ReadLeg read_off = run_read_leg(factor, false, file_size, reads);
    const ReadLeg read_on = run_read_leg(factor, true, file_size, reads);
    const WriteLeg write_off = run_write_leg(factor, false, write_file_size);
    const WriteLeg write_on = run_write_leg(factor, true, write_file_size);

    read_table.add_row({TextTable::num(factor, 0), "undefended",
                        TextTable::num(read_off.p50_s),
                        TextTable::num(read_off.p99_s), "0", "0", "0"});
    read_table.add_row({TextTable::num(factor, 0), "hedged",
                        TextTable::num(read_on.p50_s),
                        TextTable::num(read_on.p99_s),
                        std::to_string(read_on.hedges),
                        std::to_string(read_on.hedge_wins),
                        std::to_string(read_on.slow_node_reports)});
    write_table.add_row({TextTable::num(factor, 0), "undefended",
                         TextTable::num(write_off.seconds),
                         std::to_string(write_off.recoveries), "0"});
    write_table.add_row({TextTable::num(factor, 0), "eviction",
                         TextTable::num(write_on.seconds),
                         std::to_string(write_on.recoveries),
                         std::to_string(write_on.evictions)});

    // Acceptance: each defense strictly beats its undefended baseline.
    const bool read_ok =
        read_on.reads > 0 && read_off.reads > 0 &&
        read_on.p99_s < read_off.p99_s;
    const bool write_ok = write_on.seconds > 0 && write_off.seconds > 0 &&
                          write_on.seconds < write_off.seconds;
    if (!read_ok || !write_ok) acceptance_ok = false;

    json += "    {\"factor\": " + json_num(factor) + ",\n";
    json += "     \"read\": {\"undefended_p50_s\": " +
            json_num(read_off.p50_s) +
            ", \"undefended_p99_s\": " + json_num(read_off.p99_s) +
            ", \"hedged_p50_s\": " + json_num(read_on.p50_s) +
            ", \"hedged_p99_s\": " + json_num(read_on.p99_s) +
            ", \"hedges\": " + std::to_string(read_on.hedges) +
            ", \"hedge_wins\": " + std::to_string(read_on.hedge_wins) +
            ", \"slow_node_reports\": " +
            std::to_string(read_on.slow_node_reports) +
            ", \"p99_improved\": " + (read_ok ? "true" : "false") + "},\n";
    json += "     \"write\": {\"undefended_s\": " +
            json_num(write_off.seconds) +
            ", \"eviction_s\": " + json_num(write_on.seconds) +
            ", \"evictions\": " + std::to_string(write_on.evictions) +
            ", \"recoveries\": " + std::to_string(write_on.recoveries) +
            ", \"completion_improved\": " + (write_ok ? "true" : "false") +
            "}}";
    json += i + 1 < factors.size() ? ",\n" : "\n";
  }
  json += "  ],\n  \"acceptance_ok\": " +
          std::string(acceptance_ok ? "true" : "false") + "\n}\n";

  std::printf("%s\n", read_table.to_string().c_str());
  std::printf("%s\n", write_table.to_string().c_str());

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("written to %s\n", out_path.c_str());
  if (!acceptance_ok) {
    std::fprintf(stderr,
                 "ACCEPTANCE FAILED: a defended run did not strictly beat "
                 "its undefended baseline\n");
    return 1;
  }
  return 0;
}
