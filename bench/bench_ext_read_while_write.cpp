// Extension — the paper's future work ("investigate SMARTH's impact on
// MapReduce jobs"): run an ingest while map-style readers stream previously
// stored files off the same datanodes, contending for NICs and disks. The
// question: does SMARTH's write advantage survive read load, and does it
// cost the readers anything?
#include "bench_common.hpp"
#include "common/table.hpp"

using namespace smarth;

namespace {

struct MixResult {
  double upload_seconds = -1.0;
  double reader_mbps = 0.0;
  int reader_failovers = 0;
};

MixResult run(cluster::Protocol protocol, int readers, Bytes upload_size) {
  cluster::ClusterSpec spec = cluster::small_cluster(42);
  cluster::Cluster cluster(spec);
  cluster.throttle_cross_rack(Bandwidth::mbps(100));

  // Stage the input files the "mappers" will scan.
  std::vector<std::string> inputs;
  for (int r = 0; r < readers; ++r) {
    const std::string path = "/input/part-" + std::to_string(r);
    const auto stats = cluster.run_upload(path, 512 * kMiB, protocol);
    SMARTH_CHECK_MSG(!stats.failed, "staging failed");
    inputs.push_back(path);
  }
  cluster.sim().run_until(cluster.sim().now() + seconds(5));

  // Launch the readers: each scans its part in a loop until the ingest ends.
  struct ReaderState {
    Bytes bytes = 0;
    int failovers = 0;
    bool stop = false;
  };
  auto states = std::make_shared<std::vector<ReaderState>>(
      static_cast<std::size_t>(readers));
  std::function<void(std::size_t)> scan = [&cluster, &inputs, states,
                                           &scan](std::size_t r) {
    if ((*states)[r].stop) return;
    cluster.download(inputs[r], [states, r, &scan](const hdfs::ReadStats& s) {
      (*states)[r].bytes += s.bytes_read;
      (*states)[r].failovers += s.failovers;
      // A failed scan ends this reader (looping on a failure would spin).
      if (s.failed) (*states)[r].stop = true;
      if (!(*states)[r].stop) scan(r);
    });
  };
  const SimTime read_start = cluster.sim().now();
  Bytes served_before = 0;
  for (std::size_t i = 0; i < cluster.datanode_count(); ++i) {
    served_before += cluster.datanode(i).read_bytes_served();
  }
  for (std::size_t r = 0; r < static_cast<std::size_t>(readers); ++r) scan(r);

  const auto upload =
      cluster.run_upload("/output/ingest.bin", upload_size, protocol);
  const SimTime read_end = cluster.sim().now();
  for (auto& st : *states) st.stop = true;

  MixResult result;
  if (!upload.failed) result.upload_seconds = to_seconds(upload.elapsed());
  // Aggregate read rate from bytes the datanodes actually served (counts
  // scans still in flight when the ingest ends).
  Bytes served_after = 0;
  for (std::size_t i = 0; i < cluster.datanode_count(); ++i) {
    served_after += cluster.datanode(i).read_bytes_served();
  }
  for (const auto& st : *states) result.reader_failovers += st.failovers;
  result.reader_mbps =
      throughput_of(served_after - served_before, read_end - read_start)
          .mbps();
  return result;
}

}  // namespace

int main() {
  bench::print_header(
      "Extension — ingest under map-style read load (small cluster, "
      "100 Mbps cross-rack)",
      "k readers loop over 512 MiB staged files while one client ingests; "
      "paper future work: SMARTH's impact on MapReduce-style jobs.");

  const Bytes upload_size = std::min<Bytes>(bench::bench_file_size(), 2 * kGiB);
  TextTable table({"readers", "protocol", "ingest (s)",
                   "aggregate read (Mbps)", "improvement (%)"});
  for (int readers : {0, 2, 4}) {
    MixResult results[2];
    for (int p = 0; p < 2; ++p) {
      results[p] = run(p ? cluster::Protocol::kSmarth
                         : cluster::Protocol::kHdfs,
                       readers, upload_size);
    }
    for (int p = 0; p < 2; ++p) {
      table.add_row(
          {std::to_string(readers),
           p ? "SMARTH" : "HDFS",
           TextTable::num(results[p].upload_seconds),
           TextTable::num(results[p].reader_mbps, 1),
           p ? TextTable::num((results[0].upload_seconds /
                                   results[1].upload_seconds -
                               1.0) *
                                  100.0,
                              1)
             : std::string("-")});
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  return 0;
}
