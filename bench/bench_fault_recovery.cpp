// Ablation A6 — recovery cost under fault injection (paper §IV). Crashes
// one datanode partway through an 8 GB upload and compares against the clean
// run for both protocols: how much time does a mid-upload failure cost, and
// does SMARTH's multi-pipeline recovery (Alg. 4) keep its advantage?
#include "bench_common.hpp"
#include "common/table.hpp"
#include "workload/fault_plan.hpp"

using namespace smarth;

namespace {

struct RunResult {
  double seconds = -1.0;
  int recoveries = 0;
  bool failed = true;
};

RunResult run(cluster::Protocol protocol, bool inject, SimDuration crash_at,
              Bytes file_size) {
  cluster::ClusterSpec spec = cluster::small_cluster(42);
  spec.hdfs.ack_timeout = seconds(2);
  cluster::Cluster cluster(spec);
  cluster.throttle_cross_rack(Bandwidth::mbps(100));
  if (inject) {
    workload::FaultPlan plan;
    plan.crash(2, crash_at);  // a rack0 node likely to serve pipelines
    plan.apply(cluster);
  }
  const auto stats = cluster.run_upload("/f", file_size, protocol);
  RunResult result;
  result.failed = stats.failed;
  if (!stats.failed) {
    result.seconds = to_seconds(stats.elapsed());
    result.recoveries = stats.recoveries;
  }
  return result;
}

}  // namespace

int main() {
  bench::print_header(
      "Fault recovery — crash one datanode mid-upload (small cluster, "
      "100 Mbps cross-rack, 8 GB)",
      "Clean vs faulted runs for both protocols; recovery follows Alg. 3 "
      "(HDFS) / Alg. 4 (SMARTH).");

  const Bytes file_size = bench::bench_file_size();
  TextTable table({"protocol", "fault", "seconds", "recoveries",
                   "overhead vs clean (%)"});
  for (cluster::Protocol protocol :
       {cluster::Protocol::kHdfs, cluster::Protocol::kSmarth}) {
    const RunResult clean = run(protocol, false, 0, file_size);
    const RunResult faulted =
        run(protocol, true, seconds(30), file_size);
    table.add_row({cluster::protocol_name(protocol), "none",
                   TextTable::num(clean.seconds),
                   std::to_string(clean.recoveries), "0.0"});
    table.add_row(
        {cluster::protocol_name(protocol), "crash @ 30 s",
         TextTable::num(faulted.seconds), std::to_string(faulted.recoveries),
         faulted.failed || clean.failed
             ? std::string("upload failed")
             : TextTable::num(
                   (faulted.seconds / clean.seconds - 1.0) * 100.0, 1)});
  }
  std::printf("%s\n", table.to_string().c_str());
  return 0;
}
