// Ablation A6 — recovery cost under fault injection (paper §IV). Crashes
// one datanode partway through an 8 GB upload and compares against the clean
// run for both protocols: how much time does a mid-upload failure cost, and
// does SMARTH's multi-pipeline recovery (Alg. 4) keep its advantage?
//
// Ablation A8 — writer-crash salvage. Kills the *client* mid-upload and lets
// the lease monitor recover the under-construction file: how many bytes does
// each protocol salvage, and how long until the file is readable again?
//
// Ablation A9 — bit-rot scrub and repair. Rots one finalized replica on each
// of three datanodes after a 256 MiB upload and sweeps the block scanner's
// byte budget: how long until the scrubbers detect and report the rot, how
// long until re-replication restores full replication, and does a read-back
// stay byte-exact throughout?
//
// Ablation A10 — control-plane loss. Kills the *namenode* under three
// concurrent writers and compares recovery paths: a cold restart (fsimage +
// full edit-log replay) against a warm standby promotion (failover). Reports
// control-plane downtime, the salvaged-upload rate (writers that ride out
// the outage on their retry budgets) and the makespan overhead vs a clean
// run.
//
// Emits BENCH_fault_recovery.json (all four ablations, machine-readable):
//
//   bench_fault_recovery [output.json]
#include <cstdio>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "faults/fault_injector.hpp"
#include "hdfs/datanode.hpp"
#include "workload/fault_plan.hpp"
#include "workload/upload_workload.hpp"

using namespace smarth;

namespace {

struct RunResult {
  double seconds = -1.0;
  int recoveries = 0;
  bool failed = true;
};

RunResult run(cluster::Protocol protocol, bool inject, SimDuration crash_at,
              Bytes file_size) {
  cluster::ClusterSpec spec = cluster::small_cluster(42);
  spec.hdfs.ack_timeout = seconds(2);
  cluster::Cluster cluster(spec);
  cluster.throttle_cross_rack(Bandwidth::mbps(100));
  if (inject) {
    workload::FaultPlan plan;
    plan.crash(2, crash_at);  // a rack0 node likely to serve pipelines
    plan.apply(cluster);
  }
  const auto stats = cluster.run_upload("/f", file_size, protocol);
  RunResult result;
  result.failed = stats.failed;
  if (!stats.failed) {
    result.seconds = to_seconds(stats.elapsed());
    result.recoveries = stats.recoveries;
  }
  return result;
}

struct SalvageResult {
  double readable_mib = 0.0;   // final file length readers see
  double salvaged_mib = 0.0;   // bytes kept via commitBlockSynchronization
  double time_to_readable = -1.0;  // crash -> file closed, seconds
  int blocks_recovered = 0;
  int orphans_abandoned = 0;
  bool closed = false;
};

/// A8: kill the writer at `crash_at`, wait for the lease monitor to close
/// the file, and report what survived.
SalvageResult run_writer_crash(cluster::Protocol protocol,
                               SimDuration crash_at, Bytes file_size) {
  cluster::ClusterSpec spec = cluster::small_cluster(42);
  spec.hdfs.ack_timeout = seconds(2);
  cluster::Cluster cluster(spec);
  cluster.throttle_cross_rack(Bandwidth::mbps(100));
  faults::FaultInjector injector(cluster, /*chaos_seed=*/42);
  injector.crash_client(0, crash_at);

  std::optional<hdfs::StreamStats> stats;
  cluster.upload("/f", file_size, protocol,
                 [&stats](const hdfs::StreamStats& s) { stats = s; });
  const SimDuration budget =
      spec.hdfs.lease_hard_limit + spec.hdfs.lease_monitor_interval +
      spec.hdfs.lease_recovery_retry_interval *
          (spec.hdfs.lease_recovery_max_attempts + 1);
  const SimTime deadline = crash_at + budget + seconds(30);
  SalvageResult result;
  while (cluster.sim().now() < deadline) {
    const hdfs::FileEntry* entry = cluster.namenode().file_by_path("/f");
    if (stats.has_value() && entry != nullptr &&
        entry->state == hdfs::FileState::kClosed) {
      result.closed = true;
      result.time_to_readable =
          to_seconds(cluster.sim().now()) - to_seconds(crash_at);
      break;
    }
    cluster.sim().run_until(cluster.sim().now() + milliseconds(250));
  }
  result.salvaged_mib =
      static_cast<double>(cluster.namenode().bytes_salvaged()) / kMiB;
  result.blocks_recovered =
      static_cast<int>(cluster.namenode().uc_blocks_recovered());
  result.orphans_abandoned =
      static_cast<int>(cluster.namenode().orphans_abandoned());
  if (result.closed) {
    const auto located = cluster.namenode().get_block_locations(
        "/f", cluster.client_node(0));
    if (located.ok()) {
      Bytes readable = 0;
      for (const auto& lb : located.value()) readable += lb.length;
      result.readable_mib = static_cast<double>(readable) / kMiB;
    }
  }
  return result;
}

struct ScrubResult {
  int rotted = 0;
  double detect_s = -1.0;  // rot landing -> last replica reported
  double repair_s = -1.0;  // rot landing -> full replication restored
  double scrub_mib = 0.0;  // total scrub I/O until repair completed
  int read_mismatches = 0;
  int read_failovers = 0;
  bool read_exact = false;
};

/// A9: upload, rot one finalized replica on each of three datanodes, and
/// time the scrub -> report -> invalidate -> re-replicate loop at the given
/// scanner budget. A final read-back checks no corrupt byte survives.
ScrubResult run_bitrot_scrub(cluster::Protocol protocol, Bytes scan_rate,
                             Bytes file_size) {
  cluster::ClusterSpec spec = cluster::small_cluster(42);
  spec.hdfs.ack_timeout = seconds(2);
  spec.hdfs.scanner_bytes_per_second = scan_rate;
  cluster::Cluster cluster(spec);
  cluster.enable_rereplication(seconds(2));
  const auto stats = cluster.run_upload("/f", file_size, protocol);
  ScrubResult result;
  if (stats.failed) return result;
  cluster.sim().run_until(cluster.sim().now() + seconds(2));

  // Rot chunk 0 of one finalized replica on each of three datanodes, each a
  // different block so three independent repairs race the scrubbers.
  std::vector<std::pair<std::size_t, BlockId>> victims;
  for (std::size_t i = 0;
       i < cluster.datanode_count() && victims.size() < 3; ++i) {
    for (const auto& replica :
         cluster.datanode(i).block_store().all_replicas()) {
      if (replica.state != storage::ReplicaState::kFinalized) continue;
      bool taken = false;
      for (const auto& [dn, block] : victims) taken |= block == replica.block;
      if (taken) continue;
      if (cluster.datanode(i).rot_replica_chunk(replica.block, 0).ok()) {
        victims.emplace_back(i, replica.block);
      }
      break;
    }
  }
  result.rotted = static_cast<int>(victims.size());
  const SimTime rot_at = cluster.sim().now();

  const SimTime deadline = rot_at + seconds(3600);
  while (cluster.sim().now() < deadline) {
    if (result.detect_s < 0 &&
        cluster.namenode().bad_replica_reports() >=
            static_cast<std::uint64_t>(result.rotted)) {
      result.detect_s = to_seconds(cluster.sim().now() - rot_at);
    }
    if (result.detect_s >= 0 &&
        cluster.namenode().under_replicated_blocks().empty() &&
        cluster.file_fully_replicated("/f")) {
      result.repair_s = to_seconds(cluster.sim().now() - rot_at);
      break;
    }
    cluster.sim().run_until(cluster.sim().now() + milliseconds(250));
  }
  Bytes scrubbed = 0;
  for (std::size_t i = 0; i < cluster.datanode_count(); ++i) {
    scrubbed += cluster.datanode(i).scanner().bytes_scanned();
  }
  result.scrub_mib = static_cast<double>(scrubbed) / kMiB;

  const auto read = cluster.run_download("/f");
  result.read_mismatches = read.checksum_mismatches;
  result.read_failovers = read.failovers;
  result.read_exact = !read.failed && read.bytes_read == file_size;
  return result;
}

enum class NnRecovery { kNone, kColdRestart, kFailover };

struct NnOutageResult {
  double makespan = -1.0;
  double downtime_s = -1.0;
  int completed = 0;
  int writers = 0;
};

/// A10: three concurrent writers, namenode killed at 30 s, control plane
/// restored 3 s later by the chosen path. Checkpointing is disabled so the
/// cold restart pays for a full edit-log replay while the promoted standby
/// has already tailed all but the last half-second of it; the per-op replay
/// cost is raised so that difference is visible in the downtime column.
NnOutageResult run_nn_outage(cluster::Protocol protocol, NnRecovery recovery,
                             Bytes per_writer) {
  constexpr int kWriters = 3;
  cluster::ClusterSpec spec = cluster::small_cluster(42);
  spec.hdfs.ack_timeout = seconds(2);
  spec.hdfs.checkpoint_interval = 0;
  spec.hdfs.edit_replay_op_cost = milliseconds(2);
  cluster::Cluster cluster(spec);
  cluster.throttle_cross_rack(Bandwidth::mbps(100));
  for (int c = 1; c < kWriters; ++c) {
    cluster.add_client(c % 2 == 0 ? "/rack0" : "/rack1",
                       cluster::small_instance());
  }
  if (recovery == NnRecovery::kFailover) cluster.enable_standby();
  faults::FaultInjector injector(cluster, /*chaos_seed=*/42);
  if (recovery == NnRecovery::kColdRestart) {
    injector.crash_and_restart_namenode(seconds(30), seconds(33));
  } else if (recovery == NnRecovery::kFailover) {
    injector.crash_and_failover_namenode(seconds(30), seconds(33));
  }

  workload::UploadWorkload workload(protocol);
  for (int c = 0; c < kWriters; ++c) {
    workload.add(workload::UploadJob{"/nn" + std::to_string(c), per_writer, 0,
                                     static_cast<std::size_t>(c)});
  }
  const SimTime start = cluster.sim().now();
  const auto results = workload.run(cluster);

  NnOutageResult out;
  out.writers = kWriters;
  SimTime last_end = start;
  for (const auto& stats : results) {
    if (stats.failed) continue;
    ++out.completed;
    last_end = std::max(last_end, stats.finished_at);
  }
  if (out.completed == kWriters) out.makespan = to_seconds(last_end - start);
  out.downtime_s = recovery == NnRecovery::kNone
                       ? 0.0
                       : to_seconds(cluster.last_namenode_downtime());
  return out;
}

std::string json_num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

std::string json_str(const std::string& s) { return "\"" + s + "\""; }

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path =
      argc > 1 ? argv[1] : "BENCH_fault_recovery.json";
  bench::print_header(
      "Fault recovery — crash one datanode mid-upload (small cluster, "
      "100 Mbps cross-rack, 8 GB)",
      "Clean vs faulted runs for both protocols; recovery follows Alg. 3 "
      "(HDFS) / Alg. 4 (SMARTH).");

  const Bytes file_size = bench::bench_file_size();
  std::string json = "{\n  \"bench\": \"fault_recovery\",\n";
  json += "  \"config\": {\"file_gb\": " +
          json_num(static_cast<double>(file_size) / kGiB) + "},\n";
  json += "  \"crash\": [\n";
  TextTable table({"protocol", "fault", "seconds", "recoveries",
                   "overhead vs clean (%)"});
  for (cluster::Protocol protocol :
       {cluster::Protocol::kHdfs, cluster::Protocol::kSmarth}) {
    const RunResult clean = run(protocol, false, 0, file_size);
    const RunResult faulted =
        run(protocol, true, seconds(30), file_size);
    table.add_row({cluster::protocol_name(protocol), "none",
                   TextTable::num(clean.seconds),
                   std::to_string(clean.recoveries), "0.0"});
    table.add_row(
        {cluster::protocol_name(protocol), "crash @ 30 s",
         TextTable::num(faulted.seconds), std::to_string(faulted.recoveries),
         faulted.failed || clean.failed
             ? std::string("upload failed")
             : TextTable::num(
                   (faulted.seconds / clean.seconds - 1.0) * 100.0, 1)});
    json += "    {\"protocol\": " +
            json_str(cluster::protocol_name(protocol)) +
            ", \"clean_s\": " + json_num(clean.seconds) +
            ", \"faulted_s\": " + json_num(faulted.seconds) +
            ", \"recoveries\": " + std::to_string(faulted.recoveries) +
            ", \"overhead_pct\": " +
            (faulted.failed || clean.failed
                 ? std::string("null")
                 : json_num((faulted.seconds / clean.seconds - 1.0) * 100.0)) +
            "}" +
            (protocol == cluster::Protocol::kHdfs ? ",\n" : "\n");
  }
  json += "  ],\n";
  std::printf("%s\n", table.to_string().c_str());

  bench::print_header(
      "Writer-crash salvage — kill the client @ 30 s, lease monitor recovers "
      "(A8)",
      "Bytes readable after recovery and time from crash to a readable file; "
      "SMARTH finalizes FNFA-completed blocks at max length, HDFS truncates "
      "the tail to the minimum durable replica.");
  TextTable salvage({"protocol", "readable (MiB)", "salvaged (MiB)",
                     "blocks sync'd", "orphans", "time-to-readable (s)"});
  json += "  \"writer_crash\": [\n";
  for (cluster::Protocol protocol :
       {cluster::Protocol::kHdfs, cluster::Protocol::kSmarth}) {
    const SalvageResult r =
        run_writer_crash(protocol, seconds(30), file_size);
    salvage.add_row({cluster::protocol_name(protocol),
                     TextTable::num(r.readable_mib, 1),
                     TextTable::num(r.salvaged_mib, 1),
                     std::to_string(r.blocks_recovered),
                     std::to_string(r.orphans_abandoned),
                     r.closed ? TextTable::num(r.time_to_readable, 1)
                              : std::string("never closed")});
    json += "    {\"protocol\": " +
            json_str(cluster::protocol_name(protocol)) +
            ", \"readable_mib\": " + json_num(r.readable_mib) +
            ", \"salvaged_mib\": " + json_num(r.salvaged_mib) +
            ", \"blocks_synced\": " + std::to_string(r.blocks_recovered) +
            ", \"orphans\": " + std::to_string(r.orphans_abandoned) +
            ", \"closed\": " + (r.closed ? "true" : "false") +
            ", \"time_to_readable_s\": " +
            (r.closed ? json_num(r.time_to_readable) : std::string("null")) +
            "}" +
            (protocol == cluster::Protocol::kHdfs ? ",\n" : "\n");
  }
  json += "  ],\n";
  std::printf("%s\n", salvage.to_string().c_str());

  bench::print_header(
      "Bit-rot scrub and repair — 3 replicas rot at rest after a 256 MiB "
      "upload (A9)",
      "Sweep of the block scanner's byte budget: time from rot to the last "
      "bad-replica report, time until re-replication restores full "
      "replication, total scrub I/O spent, and a byte-exact read-back.");
  TextTable scrub({"protocol", "scan budget (MiB/s)", "rotted",
                   "detect (s)", "repair (s)", "scrub I/O (MiB)",
                   "read exact"});
  const Bytes rot_file = 256 * kMiB;
  json += "  \"bitrot_scrub\": [\n";
  bool first_scrub = true;
  for (cluster::Protocol protocol :
       {cluster::Protocol::kHdfs, cluster::Protocol::kSmarth}) {
    for (const Bytes budget : {8 * kMiB, 64 * kMiB}) {
      const ScrubResult r = run_bitrot_scrub(protocol, budget, rot_file);
      scrub.add_row(
          {cluster::protocol_name(protocol),
           TextTable::num(static_cast<double>(budget) / kMiB, 0),
           std::to_string(r.rotted),
           r.detect_s < 0 ? std::string("never") : TextTable::num(r.detect_s),
           r.repair_s < 0 ? std::string("never") : TextTable::num(r.repair_s),
           TextTable::num(r.scrub_mib, 0),
           r.read_exact ? std::string("yes") : std::string("NO")});
      if (!first_scrub) json += ",\n";
      first_scrub = false;
      json += "    {\"protocol\": " +
              json_str(cluster::protocol_name(protocol)) +
              ", \"scan_budget_mibps\": " +
              json_num(static_cast<double>(budget) / kMiB) +
              ", \"rotted\": " + std::to_string(r.rotted) +
              ", \"detect_s\": " +
              (r.detect_s < 0 ? std::string("null") : json_num(r.detect_s)) +
              ", \"repair_s\": " +
              (r.repair_s < 0 ? std::string("null") : json_num(r.repair_s)) +
              ", \"scrub_mib\": " + json_num(r.scrub_mib) +
              ", \"read_exact\": " + (r.read_exact ? "true" : "false") + "}";
    }
  }
  json += "\n  ],\n";
  std::printf("%s\n", scrub.to_string().c_str());

  bench::print_header(
      "Control-plane loss — namenode killed @ 30 s under 3 concurrent "
      "writers (A10)",
      "Cold restart (fsimage + full edit-log replay, checkpointing off) vs "
      "warm standby promotion; writers ride the outage out on RPC retry and "
      "safe-mode budgets. Downtime is crash-to-serving; salvaged = uploads "
      "that completed.");
  TextTable nn_table({"protocol", "recovery", "downtime (s)", "salvaged",
                      "makespan (s)", "overhead vs clean (%)"});
  const Bytes per_writer = file_size / 4;
  json += "  \"nn_outage\": [\n";
  bool first_nn = true;
  for (cluster::Protocol protocol :
       {cluster::Protocol::kHdfs, cluster::Protocol::kSmarth}) {
    const NnOutageResult clean =
        run_nn_outage(protocol, NnRecovery::kNone, per_writer);
    for (const auto& [recovery, label] :
         {std::pair{NnRecovery::kNone, "none"},
          std::pair{NnRecovery::kColdRestart, "cold restart"},
          std::pair{NnRecovery::kFailover, "standby failover"}}) {
      const NnOutageResult r =
          recovery == NnRecovery::kNone
              ? clean
              : run_nn_outage(protocol, recovery, per_writer);
      nn_table.add_row(
          {cluster::protocol_name(protocol), label,
           TextTable::num(r.downtime_s, 2),
           std::to_string(r.completed) + "/" + std::to_string(r.writers),
           r.makespan < 0 ? std::string("upload failed")
                          : TextTable::num(r.makespan),
           r.makespan < 0 || clean.makespan <= 0
               ? std::string("-")
               : TextTable::num(
                     (r.makespan / clean.makespan - 1.0) * 100.0, 1)});
      if (!first_nn) json += ",\n";
      first_nn = false;
      json += "    {\"protocol\": " +
              json_str(cluster::protocol_name(protocol)) +
              ", \"recovery\": " + json_str(label) +
              ", \"downtime_s\": " + json_num(r.downtime_s) +
              ", \"completed\": " + std::to_string(r.completed) +
              ", \"writers\": " + std::to_string(r.writers) +
              ", \"makespan_s\": " +
              (r.makespan < 0 ? std::string("null") : json_num(r.makespan)) +
              ", \"overhead_pct\": " +
              (r.makespan < 0 || clean.makespan <= 0
                   ? std::string("null")
                   : json_num((r.makespan / clean.makespan - 1.0) * 100.0)) +
              "}";
    }
  }
  json += "\n  ]\n}\n";
  std::printf("%s\n", nn_table.to_string().c_str());

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("written to %s\n", out_path.c_str());
  return 0;
}
