// Ablation A3 — the local optimizer's exploration threshold. Paper Alg. 2
// fixes it at 0.8 (i.e. swap the pipeline head with probability 0.2 to
// refresh stale speed records). Two scenarios:
//   static  — two nodes are permanently slow: every exploratory block is a
//             pure cost, so less exploration is better;
//   dynamic — WHICH two nodes are slow rotates every 20 s (contention moves
//             around, as §V-B2 argues it does in real clusters): without
//             exploration the client keeps trusting stale records.
// The paper's 0.8 is a compromise between the two regimes.
#include "bench_common.hpp"
#include "common/table.hpp"

using namespace smarth;

namespace {

double run(double threshold, bool dynamic, Bytes file_size) {
  cluster::ClusterSpec spec = cluster::small_cluster(42);
  spec.hdfs.local_opt_threshold = threshold;
  cluster::Cluster cluster(spec);
  const Bandwidth slow = Bandwidth::mbps(50);

  if (!dynamic) {
    cluster.throttle_datanode(0, slow);
    cluster.throttle_datanode(1, slow);
  } else {
    // Rotate the contended pair every 20 s across the nine datanodes.
    const Bandwidth full = cluster::small_instance().network;
    auto rotate = std::make_shared<std::function<void(std::size_t)>>();
    *rotate = [&cluster, slow, full, rotate](std::size_t round) {
      const std::size_t n = cluster.datanode_count();
      for (std::size_t i = 0; i < n; ++i) {
        cluster.throttle_datanode(i, full);
      }
      cluster.throttle_datanode((2 * round) % n, slow);
      cluster.throttle_datanode((2 * round + 1) % n, slow);
      cluster.sim().schedule_after(
          seconds(20), [rotate, round] { (*rotate)(round + 1); });
    };
    (*rotate)(0);
  }

  const auto stats =
      cluster.run_upload("/f", file_size, cluster::Protocol::kSmarth);
  return stats.failed ? -1.0 : to_seconds(stats.elapsed());
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation — local-optimizer exploration threshold (small cluster, 2 "
      "slow nodes @ 50 Mbps, 8 GB)",
      "Swap probability is 1 - threshold; the paper uses threshold = 0.8. "
      "static: the same nodes stay slow; dynamic: the slow pair rotates "
      "every 20 s.");

  const Bytes file_size = bench::bench_file_size();
  TextTable table({"threshold", "swap prob", "static (s)", "dynamic (s)"});
  for (double threshold : {0.5, 0.6, 0.7, 0.8, 0.9, 1.0}) {
    table.add_row({TextTable::num(threshold, 1),
                   TextTable::num(1.0 - threshold, 1),
                   TextTable::num(run(threshold, false, file_size)),
                   TextTable::num(run(threshold, true, file_size))});
  }
  std::printf("%s\n", table.to_string().c_str());
  return 0;
}
