// Event-core refactor coverage: randomized differential testing of the
// calendar queue against the pre-refactor reference design, tombstone
// accounting, and the category dump the event limit produces.
#include <gtest/gtest.h>

#include <functional>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/reference_queue.hpp"
#include "sim/simulation.hpp"

namespace smarth::sim {
namespace {

// --- Differential: calendar queue vs reference priority_queue ---------------
// Drives both cores through the same randomized schedule/cancel script and
// demands the identical execution sequence. Scripts mix far-future times
// (exercising bucket distribution and ladder rebuilds), same-time ties
// (insertion-order FIFO), zero delays, nested scheduling from callbacks, and
// cancellation of a random live subset.

struct Script {
  struct Op {
    SimDuration delay = 0;
    bool cancel_some = false;
    int nested = 0;  ///< events scheduled from inside the callback
  };
  std::vector<Op> ops;
};

Script make_script(std::uint64_t seed, int size) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<SimDuration> delay(0, 1'000'000);
  std::uniform_int_distribution<int> shape(0, 9);
  Script script;
  for (int i = 0; i < size; ++i) {
    Script::Op op;
    const int kind = shape(rng);
    if (kind == 0) {
      op.delay = 0;  // schedule_now FIFO path
    } else if (kind == 1) {
      op.delay = 777;  // deliberate tie pile-up
    } else {
      op.delay = delay(rng);
    }
    op.cancel_some = kind == 2;
    op.nested = kind >= 8 ? 2 : 0;
    script.ops.push_back(op);
  }
  return script;
}

/// Runs a script against the calendar-queue Simulation; returns the order
/// in which event ids executed.
std::vector<int> run_calendar(const Script& script) {
  Simulation sim;
  std::vector<int> order;
  std::vector<EventHandle> handles;
  int next_id = 0;
  for (const Script::Op& op : script.ops) {
    const int id = next_id++;
    handles.push_back(sim.schedule_after(op.delay, [&, id, op] {
      order.push_back(id);
      for (int n = 0; n < op.nested; ++n) {
        const int nested_id = 1'000'000 + id * 10 + n;
        sim.schedule_after(op.delay / 2 + n,
                           [&order, nested_id] { order.push_back(nested_id); });
      }
    }));
    if (op.cancel_some && handles.size() >= 3) {
      handles[handles.size() - 3].cancel();
    }
  }
  sim.run();
  return order;
}

/// The same script against the reference core.
std::vector<int> run_reference(const Script& script) {
  ReferenceQueue sim;
  std::vector<int> order;
  std::vector<ReferenceQueue::Handle> handles;
  int next_id = 0;
  for (const Script::Op& op : script.ops) {
    const int id = next_id++;
    handles.push_back(sim.schedule_after(op.delay, [&, id, op] {
      order.push_back(id);
      for (int n = 0; n < op.nested; ++n) {
        const int nested_id = 1'000'000 + id * 10 + n;
        sim.schedule_after(op.delay / 2 + n,
                           [&order, nested_id] { order.push_back(nested_id); });
      }
    }));
    if (op.cancel_some && handles.size() >= 3) {
      handles[handles.size() - 3].cancel();
    }
  }
  sim.run();
  return order;
}

TEST(EngineDifferential, RandomScriptsMatchReferenceCore) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const Script script = make_script(seed, 400);
    const std::vector<int> calendar = run_calendar(script);
    const std::vector<int> reference = run_reference(script);
    ASSERT_EQ(calendar, reference) << "divergence at seed " << seed;
  }
}

TEST(EngineDifferential, LargePendingSetMatches) {
  // Enough simultaneous events to force several ladder rebuilds.
  const Script script = make_script(99, 5000);
  EXPECT_EQ(run_calendar(script), run_reference(script));
}

// --- Tombstones -------------------------------------------------------------

TEST(EngineCancellation, CancelledCounterTracksTombstones) {
  Simulation sim;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 10; ++i) {
    handles.push_back(sim.schedule_at(100 + i, [] {}));
  }
  EXPECT_EQ(sim.events_cancelled(), 0u);
  for (int i = 0; i < 5; ++i) handles[static_cast<size_t>(i)].cancel();
  EXPECT_EQ(sim.events_cancelled(), 5u);
  // Double-cancel is a no-op, not a double count.
  handles[0].cancel();
  EXPECT_EQ(sim.events_cancelled(), 5u);
  sim.run();
  EXPECT_EQ(sim.events_executed(), 5u);
  EXPECT_EQ(sim.events_cancelled(), 5u);
}

TEST(EngineCancellation, CancelledEventsDoNotBlockEmpty) {
  // A cancelled record must not keep the simulation "non-empty" forever:
  // run() terminates without executing it even though its time never comes.
  Simulation sim;
  auto handle = sim.schedule_at(1'000'000'000, [] {});
  sim.schedule_at(10, [] {});
  handle.cancel();
  sim.run();
  EXPECT_EQ(sim.now(), 10);
  EXPECT_TRUE(sim.empty());
}

// --- Event-limit diagnostics ------------------------------------------------

TEST(EngineLimit, LimitDumpNamesTopPendingCategories) {
  Simulation sim;
  sim.set_event_limit(50);
  // A self-sustaining storm with a distinctive category name, plus a few
  // bystanders in another category.
  std::function<void()> storm = [&] { sim.post_after(1, "storm.tick", storm); };
  for (int i = 0; i < 8; ++i) storm();
  for (int i = 0; i < 3; ++i) sim.post_at(1'000'000, "bystander.later", [] {});
  try {
    sim.run();
    FAIL() << "expected the event limit to throw";
  } catch (const std::logic_error& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("event limit exceeded"), std::string::npos)
        << message;
    EXPECT_NE(message.find("storm.tick"), std::string::npos) << message;
    EXPECT_NE(message.find("bystander.later"), std::string::npos) << message;
  }
}

TEST(EngineLimit, CategorySummaryCountsPending) {
  Simulation sim;
  for (int i = 0; i < 4; ++i) sim.post_at(100, "a.lot", [] {});
  sim.post_at(100, "a.little", [] {});
  const std::string summary = sim.pending_category_summary();
  // Sorted by count: the bigger category leads.
  EXPECT_LT(summary.find("a.lot"), summary.find("a.little"));
  EXPECT_NE(summary.find("4"), std::string::npos);
}

}  // namespace
}  // namespace smarth::sim
