// Property-based invariant sweeps (parameterized gtest): across protocols,
// file sizes, throttle levels and seeds, every upload must conserve bytes,
// respect the pipeline-concurrency cap and staging bound, and be
// deterministic for a fixed seed.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "cluster/cluster_spec.hpp"
#include "harness/experiment.hpp"

namespace smarth {
namespace {

using cluster::Cluster;
using cluster::Protocol;

struct Params {
  Protocol protocol;
  Bytes file_size;
  double throttle_mbps;  // 0 = none
  std::uint64_t seed;
};

std::string param_name(const ::testing::TestParamInfo<Params>& info) {
  const Params& p = info.param;
  std::string name = p.protocol == Protocol::kHdfs ? "hdfs" : "smarth";
  name += "_" + std::to_string(p.file_size / kMiB) + "mib";
  name += "_t" + std::to_string(static_cast<int>(p.throttle_mbps));
  name += "_s" + std::to_string(p.seed);
  return name;
}

class UploadInvariants : public ::testing::TestWithParam<Params> {
 protected:
  static cluster::ClusterSpec make_spec(std::uint64_t seed) {
    cluster::ClusterSpec spec = cluster::small_cluster(seed);
    spec.hdfs.block_size = 4 * kMiB;
    return spec;
  }

  static void apply_throttle(Cluster& cluster, double mbps) {
    if (mbps > 0) cluster.throttle_cross_rack(Bandwidth::mbps(mbps));
  }
};

TEST_P(UploadInvariants, BytesConservedAndBounded) {
  const Params& p = GetParam();
  Cluster cluster(make_spec(p.seed));
  apply_throttle(cluster, p.throttle_mbps);
  const auto stats = cluster.run_upload("/f", p.file_size, p.protocol);
  ASSERT_FALSE(stats.failed) << stats.failure_reason;

  // Time accounting is sane.
  EXPECT_GT(stats.elapsed(), 0);
  EXPECT_EQ(stats.file_size, p.file_size);
  const std::int64_t expected_blocks = (p.file_size + 4 * kMiB - 1) / (4 * kMiB);
  EXPECT_EQ(stats.blocks, expected_blocks);

  // Let trailing ACK/report traffic drain, then check byte conservation:
  // every block ends with `replication` finalized replicas.
  cluster.sim().run_until(cluster.sim().now() + seconds(3));
  EXPECT_TRUE(cluster.file_fully_replicated("/f"));
  EXPECT_EQ(cluster.total_finalized_replica_bytes(), 3 * p.file_size);

  // Concurrency caps: baseline is strictly sequential; SMARTH is bounded by
  // |datanodes| / replication.
  if (p.protocol == Protocol::kHdfs) {
    EXPECT_EQ(stats.max_concurrent_pipelines, 1);
  } else {
    EXPECT_LE(stats.max_concurrent_pipelines, 3);
  }

  // Buffer-overflow guard (paper §IV-C): staging never exceeds one block
  // per client, and no overflow events fire.
  const ClientId client = cluster.client().id();
  for (std::size_t i = 0; i < cluster.datanode_count(); ++i) {
    EXPECT_EQ(cluster.datanode(i).staging_overflows(client), 0u);
    EXPECT_LE(cluster.datanode(i).staging_high_water(client),
              cluster.config().staging_buffer_bytes);
    // All staging returned.
    EXPECT_EQ(cluster.datanode(i).staging_used(client), 0);
  }

  // The namenode closed the file.
  const hdfs::FileEntry* entry = cluster.namenode().file_by_path("/f");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->state, hdfs::FileState::kClosed);
}

TEST_P(UploadInvariants, DeterministicReplay) {
  const Params& p = GetParam();
  SimDuration elapsed[2];
  std::uint64_t events[2];
  for (int run = 0; run < 2; ++run) {
    Cluster cluster(make_spec(p.seed));
    apply_throttle(cluster, p.throttle_mbps);
    const auto stats = cluster.run_upload("/f", p.file_size, p.protocol);
    ASSERT_FALSE(stats.failed);
    elapsed[run] = stats.elapsed();
    events[run] = cluster.sim().events_executed();
  }
  EXPECT_EQ(elapsed[0], elapsed[1]);
  EXPECT_EQ(events[0], events[1]);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, UploadInvariants,
    ::testing::Values(
        Params{Protocol::kHdfs, 4 * kMiB, 0, 1},
        Params{Protocol::kHdfs, 12 * kMiB, 0, 2},
        Params{Protocol::kHdfs, 12 * kMiB, 20, 3},
        Params{Protocol::kHdfs, 5 * kMiB + 100, 40, 4},
        Params{Protocol::kSmarth, 4 * kMiB, 0, 5},
        Params{Protocol::kSmarth, 12 * kMiB, 0, 6},
        Params{Protocol::kSmarth, 12 * kMiB, 20, 7},
        Params{Protocol::kSmarth, 24 * kMiB, 10, 8},
        Params{Protocol::kSmarth, 5 * kMiB + 100, 40, 9},
        Params{Protocol::kSmarth, 16 * kMiB, 50, 10}),
    param_name);

// SMARTH must never lose to the baseline by more than noise, and must win
// clearly when the cross-rack hop is the bottleneck.
class ProtocolOrdering
    : public ::testing::TestWithParam<std::tuple<double, std::uint64_t>> {};

TEST_P(ProtocolOrdering, SmarthAtLeastCompetitive) {
  const double throttle = std::get<0>(GetParam());
  const std::uint64_t seed = std::get<1>(GetParam());
  cluster::ClusterSpec spec = cluster::small_cluster(seed);
  spec.hdfs.block_size = 8 * kMiB;
  double secs[2];
  for (int p = 0; p < 2; ++p) {
    Cluster cluster(spec);
    if (throttle > 0) cluster.throttle_cross_rack(Bandwidth::mbps(throttle));
    // Pre-warm speed records: a 32 MiB test file is too short for the
    // optimizers' natural warm-up, which an 8 GB paper run amortizes.
    harness::warm_speed_records(cluster);
    const auto stats = cluster.run_upload(
        "/f", 32 * kMiB, p ? Protocol::kSmarth : Protocol::kHdfs);
    ASSERT_FALSE(stats.failed);
    secs[p] = to_seconds(stats.elapsed());
  }
  // Never slower than baseline by more than 10%.
  EXPECT_LT(secs[1], secs[0] * 1.10)
      << "throttle=" << throttle << " seed=" << seed;
  if (throttle > 0 && throttle <= 50) {
    // Clearly faster when replication is badly bottlenecked.
    EXPECT_LT(secs[1], secs[0] * 0.8);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ThrottleSeeds, ProtocolOrdering,
    ::testing::Combine(::testing::Values(0.0, 30.0, 50.0, 100.0),
                       ::testing::Values(11ull, 12ull, 13ull)));

}  // namespace
}  // namespace smarth
