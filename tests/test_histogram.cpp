#include "common/histogram.hpp"

#include <gtest/gtest.h>

#include "common/table.hpp"

namespace smarth {
namespace {

TEST(SummaryStats, BasicMoments) {
  SummaryStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(x);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.sum(), 15.0);
  EXPECT_DOUBLE_EQ(s.variance(), 2.5);  // sample variance
}

TEST(SummaryStats, EmptyIsZero) {
  SummaryStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(SummaryStats, MergeEqualsCombined) {
  SummaryStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = i * 0.37;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(SummaryStats, MergeWithEmpty) {
  SummaryStats a, empty;
  a.add(1.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
}

TEST(Histogram, BucketsAndOverflow) {
  Histogram h({1.0, 2.0, 4.0});
  h.add(0.5);   // bucket 0
  h.add(1.5);   // bucket 1
  h.add(2.0);   // bucket 1 (upper bound inclusive via lower_bound)
  h.add(3.0);   // bucket 2
  h.add(100.0); // overflow
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 2u);
  EXPECT_EQ(h.bucket(2), 1u);
  EXPECT_EQ(h.bucket(3), 1u);
}

TEST(Histogram, QuantileInterpolates) {
  Histogram h({10.0, 20.0, 30.0});
  for (int i = 0; i < 100; ++i) h.add(5.0);   // all in [0, 10)
  EXPECT_NEAR(h.quantile(0.5), 5.0, 1.0);
  EXPECT_LE(h.quantile(1.0), 10.0);
}

TEST(Histogram, InvalidConstruction) {
  EXPECT_THROW(Histogram({}), std::logic_error);
  EXPECT_THROW(Histogram({2.0, 1.0}), std::logic_error);
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  // Header separator present.
  EXPECT_NE(s.find("-----"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TextTable, CsvOutput) {
  TextTable t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n");
}

TEST(TextTable, RowWidthMismatchThrows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::logic_error);
}

TEST(TextTable, NumFormatting) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(2.0, 0), "2");
}

}  // namespace
}  // namespace smarth
