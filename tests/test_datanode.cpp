// Datanode unit tests against a hand-built three-node pipeline with a fake
// client sink: packet store/forward/ack aggregation, FNFA emission, staging
// accounting, finalization, and the recovery server-side (probe, truncate,
// abort, prefix transfer).
#include "hdfs/datanode.hpp"

#include <gtest/gtest.h>

#include <deque>

#include "hdfs/transport.hpp"
#include "net/network.hpp"
#include "rpc/rpc_bus.hpp"
#include "sim/simulation.hpp"

namespace smarth::hdfs {
namespace {

/// Fake client: records everything the pipeline sends upstream.
class FakeClient : public AckSink {
 public:
  void deliver_ack(const PipelineAck& ack) override { acks.push_back(ack); }
  void deliver_setup_ack(const SetupAck& ack) override {
    setup_acks.push_back(ack);
  }
  void deliver_fnfa(const FnfaMessage& fnfa) override {
    fnfas.push_back(fnfa);
  }
  std::deque<PipelineAck> acks;
  std::deque<SetupAck> setup_acks;
  std::deque<FnfaMessage> fnfas;
};

class DatanodeTest : public ::testing::Test {
 protected:
  DatanodeTest() : sim_(1), net_(sim_) {
    config_.packet_payload = 64 * kKiB;
    config_.block_size = 4 * config_.packet_payload;  // 4 packets per block
    nn_node_ = net_.add_node("nn", "/r0", Bandwidth::mbps(1000));
    client_node_ = net_.add_node("client", "/r0", Bandwidth::mbps(1000));
    for (int i = 0; i < 3; ++i) {
      dn_nodes_.push_back(
          net_.add_node("dn" + std::to_string(i), "/r0",
                        Bandwidth::mbps(1000)));
    }
    SinkResolver resolver;
    resolver.packet_sink = [this](NodeId node) -> PacketSink* {
      for (std::size_t i = 0; i < dn_nodes_.size(); ++i) {
        if (dn_nodes_[i] == node) return dns_[i].get();
      }
      return nullptr;
    };
    resolver.ack_sink = [this](NodeId node, PipelineId) -> AckSink* {
      return node == client_node_ ? &client_ : nullptr;
    };
    transport_ = std::make_unique<Transport>(net_, config_, resolver);
    namenode_ = std::make_unique<Namenode>(sim_, net_.topology(), config_,
                                           nn_node_);
    for (NodeId node : dn_nodes_) {
      auto dn = std::make_unique<Datanode>(sim_, *transport_, rpc_, *namenode_,
                                           config_, node);
      dn->set_peer_resolver([this](NodeId peer) -> Datanode* {
        for (std::size_t i = 0; i < dn_nodes_.size(); ++i) {
          if (dn_nodes_[i] == peer) return dns_[i].get();
        }
        return nullptr;
      });
      dn->start();
      dns_.push_back(std::move(dn));
    }
  }

  PipelineSetup make_setup(bool smarth, Bytes resume = 0) {
    PipelineSetup setup;
    setup.pipeline = PipelineId{1};
    setup.block = BlockId{10};
    setup.targets = dn_nodes_;
    setup.client_node = client_node_;
    setup.client = ClientId{0};
    setup.smarth_mode = smarth;
    setup.resume_offset = resume;
    return setup;
  }

  /// Heartbeats keep the event queue populated forever, so tests advance a
  /// bounded slice of simulated time instead of draining the queue.
  void settle(SimDuration span = seconds(5)) {
    sim_.run_until(sim_.now() + span);
  }

  void send_setup_and_wait(const PipelineSetup& setup) {
    transport_->send_setup(client_node_, setup.targets[0], setup);
    settle();
    ASSERT_EQ(client_.setup_acks.size(), 1u);
    ASSERT_TRUE(client_.setup_acks.front().success);
  }

  void send_block_packets(const PipelineSetup& setup, int count,
                          int start_seq = 0) {
    for (int i = 0; i < count; ++i) {
      WirePacket packet;
      packet.pipeline = setup.pipeline;
      packet.block = setup.block;
      packet.seq = start_seq + i;
      packet.payload = config_.packet_payload;
      packet.last_in_block = (start_seq + i + 1) * config_.packet_payload >=
                             config_.block_size;
      transport_->send_packet(client_node_, setup.targets[0], packet);
    }
    settle();
  }

  sim::Simulation sim_;
  net::Network net_;
  HdfsConfig config_;
  rpc::RpcBus rpc_{net_};
  NodeId nn_node_, client_node_;
  std::vector<NodeId> dn_nodes_;
  std::unique_ptr<Transport> transport_;
  std::unique_ptr<Namenode> namenode_;
  std::vector<std::unique_ptr<Datanode>> dns_;
  FakeClient client_;
};

TEST_F(DatanodeTest, SetupForwardsDownChainAndAcksBack) {
  const PipelineSetup setup = make_setup(false);
  send_setup_and_wait(setup);
  for (const auto& dn : dns_) {
    EXPECT_TRUE(dn->block_store().has_replica(setup.block));
    EXPECT_EQ(dn->active_pipeline_count(), 1u);
  }
}

TEST_F(DatanodeTest, FullBlockStoredOnAllReplicas) {
  const PipelineSetup setup = make_setup(false);
  send_setup_and_wait(setup);
  send_block_packets(setup, 4);
  for (const auto& dn : dns_) {
    const auto replica = dn->block_store().replica(setup.block);
    ASSERT_TRUE(replica.ok());
    EXPECT_EQ(replica.value().bytes, config_.block_size);
    EXPECT_EQ(replica.value().state, storage::ReplicaState::kFinalized);
  }
  // One ACK per packet reached the client, in order.
  ASSERT_EQ(client_.acks.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(client_.acks[static_cast<size_t>(i)].seq, i);
    EXPECT_EQ(client_.acks[static_cast<size_t>(i)].status,
              AckStatus::kSuccess);
  }
  // Pipeline contexts are cleaned up after finalization.
  for (const auto& dn : dns_) EXPECT_EQ(dn->active_pipeline_count(), 0u);
}

TEST_F(DatanodeTest, NoFnfaInBaselineMode) {
  const PipelineSetup setup = make_setup(false);
  send_setup_and_wait(setup);
  send_block_packets(setup, 4);
  EXPECT_TRUE(client_.fnfas.empty());
  EXPECT_EQ(dns_[0]->fnfa_sent(), 0u);
}

TEST_F(DatanodeTest, FnfaEmittedInSmarthMode) {
  const PipelineSetup setup = make_setup(true);
  send_setup_and_wait(setup);
  send_block_packets(setup, 4);
  ASSERT_EQ(client_.fnfas.size(), 1u);
  EXPECT_EQ(client_.fnfas.front().block, setup.block);
  EXPECT_EQ(dns_[0]->fnfa_sent(), 1u);
  // Only the first datanode emits it.
  EXPECT_EQ(dns_[1]->fnfa_sent(), 0u);
  EXPECT_EQ(dns_[2]->fnfa_sent(), 0u);
}

TEST_F(DatanodeTest, BlockReceivedReportedToNamenode) {
  // The namenode must learn of every finalized replica.
  const auto file = namenode_->create("/f", ClientId{0});
  ASSERT_TRUE(file.ok());
  const auto located = namenode_->add_block(file.value(), ClientId{0},
                                            client_node_, {});
  ASSERT_TRUE(located.ok());
  PipelineSetup setup = make_setup(false);
  setup.block = located.value().block;
  setup.targets = located.value().targets;
  // Rewire against the actual chosen targets.
  transport_->send_setup(client_node_, setup.targets[0], setup);
  settle();
  for (int i = 0; i < 4; ++i) {
    WirePacket packet{setup.pipeline, setup.block, i, config_.packet_payload,
                      i == 3};
    transport_->send_packet(client_node_, setup.targets[0], packet);
  }
  settle();
  const BlockRecord* record = namenode_->block(setup.block);
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(record->reported.size(), 3u);
  for (const auto& [dn, len] : record->reported) {
    EXPECT_EQ(len, config_.block_size);
  }
}

TEST_F(DatanodeTest, StagingReleasedByEndOfBlock) {
  const PipelineSetup setup = make_setup(true);
  send_setup_and_wait(setup);
  send_block_packets(setup, 4);
  for (const auto& dn : dns_) {
    EXPECT_EQ(dn->staging_used(ClientId{0}), 0);
    EXPECT_GT(dn->staging_high_water(ClientId{0}), 0);
    EXPECT_EQ(dn->staging_overflows(ClientId{0}), 0u);
  }
}

TEST_F(DatanodeTest, ChecksumInjectionSendsErrorAck) {
  const PipelineSetup setup = make_setup(false);
  send_setup_and_wait(setup);
  dns_[0]->inject_checksum_error(setup.block, 2);
  send_block_packets(setup, 4);
  // The client received an error ack for seq 2 from pipeline position 0.
  bool saw_error = false;
  for (const auto& ack : client_.acks) {
    if (ack.status == AckStatus::kChecksumError) {
      saw_error = true;
      EXPECT_EQ(ack.seq, 2);
      EXPECT_EQ(ack.error_index, 0);
    }
  }
  EXPECT_TRUE(saw_error);
  // The corrupted packet was not stored or forwarded by the head.
  EXPECT_LT(dns_[0]->block_store().replica(setup.block).value().bytes,
            config_.block_size);
}

TEST_F(DatanodeTest, CorruptionByArrivalCount) {
  const PipelineSetup setup = make_setup(false);
  send_setup_and_wait(setup);
  dns_[1]->inject_checksum_error_on_nth_packet(1);
  send_block_packets(setup, 4);
  bool saw_error = false;
  for (const auto& ack : client_.acks) {
    if (ack.status == AckStatus::kChecksumError) {
      saw_error = true;
      EXPECT_EQ(ack.error_index, 1);  // reported by the second node
    }
  }
  EXPECT_TRUE(saw_error);
}

TEST_F(DatanodeTest, CrashedNodeDropsEverything) {
  const PipelineSetup setup = make_setup(false);
  send_setup_and_wait(setup);
  dns_[1]->crash();
  send_block_packets(setup, 4);
  // Head stored packets; the mirror (crashed) did not; no full acks reached
  // the client.
  EXPECT_EQ(dns_[0]->block_store().replica(setup.block).value().bytes,
            config_.block_size);
  EXPECT_EQ(dns_[1]->block_store().replica(setup.block).value().bytes, 0);
  EXPECT_TRUE(client_.acks.empty());
  EXPECT_TRUE(dns_[1]->crashed());
}

TEST_F(DatanodeTest, ProbeReflectsReplicaState) {
  const PipelineSetup setup = make_setup(false);
  send_setup_and_wait(setup);
  send_block_packets(setup, 2);  // half the block
  const auto probe = dns_[0]->probe_replica(setup.block);
  EXPECT_TRUE(probe.alive);
  EXPECT_TRUE(probe.has_replica);
  EXPECT_EQ(probe.bytes, 2 * config_.packet_payload);
  const auto missing = dns_[0]->probe_replica(BlockId{99});
  EXPECT_TRUE(missing.alive);
  EXPECT_FALSE(missing.has_replica);
  dns_[0]->crash();
  EXPECT_FALSE(dns_[0]->probe_replica(setup.block).alive);
}

TEST_F(DatanodeTest, TruncateToSyncPoint) {
  const PipelineSetup setup = make_setup(false);
  send_setup_and_wait(setup);
  send_block_packets(setup, 3);
  ASSERT_TRUE(
      dns_[0]->truncate_replica(setup.block, config_.packet_payload).ok());
  EXPECT_EQ(dns_[0]->block_store().replica(setup.block).value().bytes,
            config_.packet_payload);
  // Truncating an absent replica works only to length zero.
  EXPECT_TRUE(dns_[0]->truncate_replica(BlockId{55}, 0).ok());
  EXPECT_FALSE(dns_[0]->truncate_replica(BlockId{56}, 10).ok());
}

TEST_F(DatanodeTest, AbortDropsPipelineStateAndStaging) {
  const PipelineSetup setup = make_setup(true);
  send_setup_and_wait(setup);
  send_block_packets(setup, 2);
  dns_[0]->abort_pipeline(setup.pipeline);
  EXPECT_EQ(dns_[0]->active_pipeline_count(), 0u);
  EXPECT_EQ(dns_[0]->staging_used(ClientId{0}), 0);
  // Replica data survives the abort (recovery needs it).
  EXPECT_TRUE(dns_[0]->block_store().has_replica(setup.block));
}

TEST_F(DatanodeTest, TransferReplicaSeedsPeer) {
  const PipelineSetup setup = make_setup(false);
  send_setup_and_wait(setup);
  send_block_packets(setup, 4);
  // Transfer a 2-packet prefix from dn0 to... dn2 already has it; use a
  // fresh block to make the check unambiguous: truncate dn2's replica away.
  bool ok = false;
  dns_[0]->transfer_replica(setup.block, dn_nodes_[2],
                            2 * config_.packet_payload,
                            [&](bool success) { ok = success; });
  settle();
  EXPECT_TRUE(ok);
}

TEST_F(DatanodeTest, TransferFailsWithoutSource) {
  bool ok = true;
  dns_[0]->transfer_replica(BlockId{404}, dn_nodes_[1], kKiB,
                            [&](bool success) { ok = success; });
  settle();
  EXPECT_FALSE(ok);
}

TEST_F(DatanodeTest, ResumeSetupContinuesMidBlock) {
  // Simulate recovery: all replicas truncated to 2 packets, then a resumed
  // pipeline delivers packets 2..3.
  PipelineSetup setup = make_setup(true);
  send_setup_and_wait(setup);
  send_block_packets(setup, 2);
  for (auto& dn : dns_) {
    dn->abort_pipeline(setup.pipeline);
    ASSERT_TRUE(
        dn->truncate_replica(setup.block, 2 * config_.packet_payload).ok());
  }
  client_.setup_acks.clear();
  PipelineSetup resumed = setup;
  resumed.pipeline = PipelineId{2};
  resumed.resume_offset = 2 * config_.packet_payload;
  send_setup_and_wait(resumed);
  send_block_packets(resumed, 2, /*start_seq=*/2);
  for (const auto& dn : dns_) {
    const auto replica = dn->block_store().replica(setup.block);
    ASSERT_TRUE(replica.ok());
    EXPECT_EQ(replica.value().bytes, config_.block_size);
    EXPECT_EQ(replica.value().state, storage::ReplicaState::kFinalized);
  }
  // FNFA for the resumed pipeline covers only the resumed packets.
  EXPECT_EQ(dns_[0]->fnfa_sent(), 1u);
}

TEST_F(DatanodeTest, HeartbeatsKeepNodeAlive) {
  sim_.run_until(seconds(30));
  EXPECT_TRUE(namenode_->is_alive(dn_nodes_[0]));
  dns_[0]->crash();
  sim_.run_until(seconds(30) + config_.datanode_dead_interval + seconds(4));
  EXPECT_FALSE(namenode_->is_alive(dn_nodes_[0]));
  EXPECT_TRUE(namenode_->is_alive(dn_nodes_[1]));
}

}  // namespace
}  // namespace smarth::hdfs
