// Workload-level integration: multi-file and multi-client uploads through
// the UploadWorkload scheduler, plus fault plans applied declaratively.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "cluster/cluster_spec.hpp"
#include "workload/fault_plan.hpp"
#include "workload/upload_workload.hpp"

namespace smarth {
namespace {

using cluster::Cluster;
using cluster::Protocol;
using workload::UploadWorkload;

cluster::ClusterSpec small_spec(std::uint64_t seed = 42) {
  cluster::ClusterSpec spec = cluster::small_cluster(seed);
  spec.hdfs.block_size = 4 * kMiB;
  return spec;
}

TEST(Workload, SequentialJobsAllComplete) {
  Cluster cluster(small_spec());
  UploadWorkload workload(Protocol::kSmarth);
  workload.add("/a", 8 * kMiB, 0).add("/b", 4 * kMiB, seconds(5));
  const auto results = workload.run(cluster);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_FALSE(results[0].failed);
  EXPECT_FALSE(results[1].failed);
  cluster.sim().run_until(cluster.sim().now() + seconds(2));
  EXPECT_TRUE(cluster.file_fully_replicated("/a"));
  EXPECT_TRUE(cluster.file_fully_replicated("/b"));
}

TEST(Workload, ConcurrentJobsOnOneClient) {
  Cluster cluster(small_spec());
  UploadWorkload workload(Protocol::kHdfs);
  workload.add("/a", 8 * kMiB, 0).add("/b", 8 * kMiB, 0);
  const auto results = workload.run(cluster);
  EXPECT_FALSE(results[0].failed);
  EXPECT_FALSE(results[1].failed);
  // Two concurrent streams share the client's NIC, so each upload is slower
  // than it would be alone.
  Cluster solo(small_spec());
  const auto alone = solo.run_upload("/a", 8 * kMiB, Protocol::kHdfs);
  EXPECT_GT(results[0].elapsed(), alone.elapsed());
}

TEST(Workload, MultiClientUploads) {
  Cluster cluster(small_spec());
  const std::size_t second =
      cluster.add_client("/rack1", cluster::small_instance());
  UploadWorkload workload(Protocol::kSmarth);
  workload.add(workload::UploadJob{"/a", 8 * kMiB, 0, 0});
  workload.add(workload::UploadJob{"/b", 8 * kMiB, 0, second});
  const auto results = workload.run(cluster);
  EXPECT_FALSE(results[0].failed);
  EXPECT_FALSE(results[1].failed);
  // Each client tracked its own speeds.
  EXPECT_TRUE(cluster.speed_tracker(0).has_records());
  EXPECT_TRUE(cluster.speed_tracker(second).has_records());
}

TEST(Workload, StaggeredStartRespectsStartTime) {
  Cluster cluster(small_spec());
  UploadWorkload workload(Protocol::kHdfs);
  workload.add("/late", 4 * kMiB, seconds(30));
  const auto results = workload.run(cluster);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_GE(results[0].started_at, seconds(30));
}

TEST(Workload, FaultPlanBuilders) {
  workload::FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  plan.crash(1, seconds(2)).corrupt(3, 100);
  EXPECT_FALSE(plan.empty());
  EXPECT_EQ(plan.crashes.size(), 1u);
  EXPECT_EQ(plan.corruptions.size(), 1u);
}

TEST(Workload, FaultPlanAppliesToCluster) {
  Cluster cluster(small_spec());
  workload::FaultPlan plan;
  plan.crash(2, seconds(3));
  plan.apply(cluster);
  EXPECT_FALSE(cluster.datanode(2).crashed());
  cluster.sim().run_until(seconds(4));
  EXPECT_TRUE(cluster.datanode(2).crashed());
}

TEST(Workload, RejectsInvalidJobs) {
  UploadWorkload workload(Protocol::kHdfs);
  EXPECT_THROW(workload.add("", 4 * kMiB), std::logic_error);
  EXPECT_THROW(workload.add("/x", 0), std::logic_error);
  Cluster cluster(small_spec());
  EXPECT_THROW(workload.run(cluster), std::logic_error);  // no jobs
}

}  // namespace
}  // namespace smarth
