// Heterogeneous-cluster integration (the paper's §V-B3 scenario as tests):
// SMARTH beats HDFS without any throttling, the speed board separates the
// instance classes, and the optimizer visibly shifts pipeline heads toward
// the fast instances.
#include <gtest/gtest.h>

#include <map>

#include "cluster/cluster.hpp"
#include "cluster/cluster_spec.hpp"
#include "hdfs/namenode.hpp"

namespace smarth {
namespace {

using cluster::Cluster;
using cluster::Protocol;

cluster::ClusterSpec hetero_spec(std::uint64_t seed = 42) {
  cluster::ClusterSpec spec = cluster::heterogeneous_cluster(seed);
  spec.hdfs.block_size = 8 * kMiB;
  return spec;
}

std::map<std::string, int> heads_by_type(Cluster& cluster,
                                         const std::string& path) {
  std::map<std::string, int> heads;
  const hdfs::FileEntry* entry = cluster.namenode().file_by_path(path);
  if (entry == nullptr) return heads;
  for (BlockId block : entry->blocks) {
    const hdfs::BlockRecord* record = cluster.namenode().block(block);
    for (std::size_t i = 0; i < cluster.datanode_count(); ++i) {
      if (cluster.datanode_id(i) == record->expected_targets[0]) {
        heads[cluster.spec().datanodes[i].profile.name]++;
      }
    }
  }
  return heads;
}

TEST(Heterogeneous, SmarthBeatsHdfsWithoutThrottling) {
  const Bytes size = 512 * kMiB;
  double secs[2];
  for (int p = 0; p < 2; ++p) {
    Cluster cluster(hetero_spec());
    const auto stats = cluster.run_upload(
        "/f", size, p ? Protocol::kSmarth : Protocol::kHdfs);
    ASSERT_FALSE(stats.failed);
    secs[p] = to_seconds(stats.elapsed());
  }
  // The paper reports 41% at 8 GB; at 512 MiB the warm-up is a bigger
  // fraction, so require a solid but smaller margin.
  EXPECT_LT(secs[1], secs[0] * 0.92);
}

TEST(Heterogeneous, SpeedBoardSeparatesInstanceClasses) {
  Cluster cluster(hetero_spec());
  const auto stats = cluster.run_upload("/f", 512 * kMiB, Protocol::kSmarth);
  ASSERT_FALSE(stats.failed);
  // Records for small instances must sit well below medium/large records.
  double small_max = 0.0;
  double large_min = 1e12;
  bool saw_small = false;
  bool saw_fast = false;
  for (std::size_t i = 0; i < cluster.datanode_count(); ++i) {
    const auto speed = cluster.speed_tracker().speed(cluster.datanode_id(i));
    if (!speed) continue;
    if (cluster.spec().datanodes[i].profile.name == "small") {
      small_max = std::max(small_max, speed->mbps());
      saw_small = true;
    } else {
      large_min = std::min(large_min, speed->mbps());
      saw_fast = true;
    }
  }
  if (saw_small && saw_fast) {
    EXPECT_LT(small_max, large_min);
  }
  EXPECT_TRUE(saw_fast);
}

TEST(Heterogeneous, OptimizerShiftsHeadsToFastInstances) {
  Cluster smarth_cluster(hetero_spec());
  const auto smarth_stats =
      smarth_cluster.run_upload("/f", 768 * kMiB, Protocol::kSmarth);
  ASSERT_FALSE(smarth_stats.failed);
  const auto smarth_heads = heads_by_type(smarth_cluster, "/f");

  Cluster hdfs_cluster(hetero_spec());
  const auto hdfs_stats =
      hdfs_cluster.run_upload("/f", 768 * kMiB, Protocol::kHdfs);
  ASSERT_FALSE(hdfs_stats.failed);
  const auto hdfs_heads = heads_by_type(hdfs_cluster, "/f");

  const int blocks = 768 / 8;
  auto fast_share = [blocks](const std::map<std::string, int>& heads) {
    const auto medium = heads.find("medium");
    const auto large = heads.find("large");
    const int fast = (medium != heads.end() ? medium->second : 0) +
                     (large != heads.end() ? large->second : 0);
    return static_cast<double>(fast) / blocks;
  };
  // Stock HDFS spreads heads ~uniformly (2/3 fast nodes); SMARTH should
  // push nearly everything onto medium/large once warmed up.
  EXPECT_GT(fast_share(smarth_heads), 0.85);
  EXPECT_LT(fast_share(hdfs_heads), 0.85);
  EXPECT_GT(fast_share(smarth_heads), fast_share(hdfs_heads));
}

TEST(Heterogeneous, ReplicationAndReadsWorkAcrossClasses) {
  Cluster cluster(hetero_spec());
  const auto stats = cluster.run_upload("/f", 256 * kMiB, Protocol::kSmarth);
  ASSERT_FALSE(stats.failed);
  cluster.sim().run_until(cluster.sim().now() + seconds(3));
  EXPECT_TRUE(cluster.file_fully_replicated("/f"));
  const auto read = cluster.run_download("/f");
  ASSERT_FALSE(read.failed);
  EXPECT_EQ(read.bytes_read, 256 * kMiB);
}

}  // namespace
}  // namespace smarth
