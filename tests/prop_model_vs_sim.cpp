// Property suite: the paper's analytic cost model (Formulas 1-3) must
// bracket the simulator. The serial formulas add per-packet stage costs and
// are therefore upper-bound-ish; the pipelined variants take the max stage
// cost and are lower bounds; SMARTH additionally saturates at the aggregate
// pipeline drain rate (n concurrent pipelines over the throttled hop).
// Speed records are pre-warmed so the runs measure steady state, which is
// what the closed-form model describes.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "cluster/cluster_spec.hpp"
#include "harness/experiment.hpp"
#include "model/cost_model.hpp"

namespace smarth {
namespace {

using cluster::Cluster;
using cluster::Protocol;

struct Case {
  double throttle_mbps;  // cross-rack throttle; 0 = none
  Bytes file_size;
};

class ModelVsSim : public ::testing::TestWithParam<Case> {
 protected:
  static cluster::ClusterSpec make_spec() {
    cluster::ClusterSpec spec = cluster::small_cluster(42);
    spec.hdfs.block_size = 16 * kMiB;  // paper geometry, scaled for test speed
    return spec;
  }

  /// Derives the model parameters the way §III-D defines them.
  static model::CostParams derive_params(const cluster::ClusterSpec& spec,
                                         double throttle_mbps,
                                         Bytes file_size) {
    model::CostParams p;
    p.file_size = file_size;
    p.block_size = spec.hdfs.block_size;
    p.packet_size = spec.hdfs.packet_payload;
    p.t_c = spec.hdfs.packet_production_time;
    // Tw: datanode disk service for one packet plus checksum verification.
    const auto& profile = spec.datanodes[0].profile;
    p.t_w = profile.disk_op_overhead +
            profile.disk_write.transmit_time(p.packet_size) +
            spec.hdfs.checksum_verify_time;
    // Tn: an addBlock round trip plus the pipeline setup chain.
    p.t_n = milliseconds(2);
    const Bandwidth nic = profile.network;
    const Bandwidth cross =
        throttle_mbps > 0 ? Bandwidth::mbps(throttle_mbps) : nic;
    p.b_min = min(nic, cross);
    p.b_max = nic;  // warmed SMARTH keeps the first hop on the client's rack
    return p;
  }

  double run_seconds(const Case& c, Protocol protocol) {
    Cluster cluster(make_spec());
    if (c.throttle_mbps > 0) {
      cluster.throttle_cross_rack(Bandwidth::mbps(c.throttle_mbps));
    }
    harness::warm_speed_records(cluster);
    const auto stats = cluster.run_upload("/f", c.file_size, protocol);
    EXPECT_FALSE(stats.failed) << stats.failure_reason;
    return to_seconds(stats.elapsed());
  }

  /// Replica-drain makespan bound for SMARTH: blocks are served by at most
  /// n = |datanodes|/replication concurrent pipelines, each needing
  /// block_size over the throttled hop, so the finite-block schedule takes
  /// ceil(blocks/n) drain rounds (a steady-state rate bound would be too
  /// optimistic for files only a few blocks long).
  static double smarth_drain_seconds(const Case& c,
                                     const cluster::ClusterSpec& spec) {
    if (c.throttle_mbps <= 0) return 0.0;
    const std::int64_t n = static_cast<std::int64_t>(spec.datanode_count()) /
                           spec.hdfs.replication;
    const std::int64_t blocks =
        (c.file_size + spec.hdfs.block_size - 1) / spec.hdfs.block_size;
    const std::int64_t rounds = (blocks + n - 1) / n;
    const double per_block = static_cast<double>(spec.hdfs.block_size) * 8.0 /
                             (c.throttle_mbps * 1e6);
    return static_cast<double>(rounds) * per_block;
  }
};

TEST_P(ModelVsSim, HdfsBracketedByModel) {
  const Case& c = GetParam();
  const cluster::ClusterSpec spec = make_spec();
  const model::CostParams params =
      derive_params(spec, c.throttle_mbps, c.file_size);
  const double serial = to_seconds(model::predict_hdfs_time(params));
  const double pipelined =
      to_seconds(model::predict_hdfs_time_pipelined(params));
  const double simulated = run_seconds(c, Protocol::kHdfs);
  EXPECT_GT(simulated, pipelined * 0.90)
      << "serial " << serial << " pipelined " << pipelined;
  EXPECT_LT(simulated, serial * 1.25)
      << "serial " << serial << " pipelined " << pipelined;
}

TEST_P(ModelVsSim, SmarthBracketedByModelPlusDrain) {
  const Case& c = GetParam();
  const cluster::ClusterSpec spec = make_spec();
  const model::CostParams params =
      derive_params(spec, c.throttle_mbps, c.file_size);
  const double serial = to_seconds(model::predict_smarth_time(params));
  const double pipelined =
      to_seconds(model::predict_smarth_time_pipelined(params));
  const double drain = smarth_drain_seconds(c, spec);
  const double simulated = run_seconds(c, Protocol::kSmarth);
  EXPECT_GT(simulated, pipelined * 0.90)
      << "pipelined " << pipelined << " drain " << drain;
  // Upper envelope: the larger of the paper's Formula-3 regime and the
  // aggregate drain bound, plus tolerance for block-boundary effects.
  const double upper = std::max(serial, drain);
  EXPECT_LT(simulated, upper * 1.35)
      << "serial " << serial << " drain " << drain;
}

TEST_P(ModelVsSim, ModelOrderingMatchesSim) {
  // Whenever the serial model says SMARTH wins by >20%, the simulator must
  // agree on the direction.
  const Case& c = GetParam();
  const cluster::ClusterSpec spec = make_spec();
  const model::CostParams params =
      derive_params(spec, c.throttle_mbps, c.file_size);
  const SimDuration m_hdfs = model::predict_hdfs_time(params);
  const SimDuration m_smarth = model::predict_smarth_time(params);
  const double hdfs_secs = run_seconds(c, Protocol::kHdfs);
  const double smarth_secs = run_seconds(c, Protocol::kSmarth);
  if (static_cast<double>(m_hdfs) > 1.2 * static_cast<double>(m_smarth)) {
    EXPECT_GT(hdfs_secs, smarth_secs);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ModelVsSim,
    ::testing::Values(Case{0, 64 * kMiB}, Case{100, 64 * kMiB},
                      Case{50, 64 * kMiB}, Case{50, 128 * kMiB},
                      Case{20, 64 * kMiB}, Case{150, 96 * kMiB}),
    [](const ::testing::TestParamInfo<Case>& param_info) {
      return "t" +
             std::to_string(static_cast<int>(param_info.param.throttle_mbps)) +
             "_" + std::to_string(param_info.param.file_size / kMiB) + "mib";
    });

}  // namespace
}  // namespace smarth
