// Transport-layer unit tests: message routing to the right sinks, wire
// sizing, control-vs-bulk priority, and null-sink robustness.
#include "hdfs/transport.hpp"

#include <gtest/gtest.h>

#include <deque>

#include "net/network.hpp"
#include "sim/simulation.hpp"

namespace smarth::hdfs {
namespace {

class RecordingSink : public PacketSink, public AckSink, public ReadSink {
 public:
  // PacketSink
  void deliver_setup(const PipelineSetup& setup) override {
    setups.push_back(setup);
  }
  void deliver_packet(const WirePacket& packet) override {
    packets.push_back(packet);
  }
  void deliver_downstream_ack(const PipelineAck& ack) override {
    downstream_acks.push_back(ack);
  }
  void deliver_downstream_setup_ack(const SetupAck& ack) override {
    downstream_setup_acks.push_back(ack);
  }
  void deliver_read_request(const ReadRequest& request) override {
    read_requests.push_back(request);
  }
  // AckSink
  void deliver_ack(const PipelineAck& ack) override { acks.push_back(ack); }
  void deliver_setup_ack(const SetupAck& ack) override {
    setup_acks.push_back(ack);
  }
  void deliver_fnfa(const FnfaMessage& fnfa) override {
    fnfas.push_back(fnfa);
  }
  // ReadSink
  void deliver_read_packet(const ReadPacket& packet) override {
    read_packets.push_back(packet);
  }

  std::deque<PipelineSetup> setups;
  std::deque<WirePacket> packets;
  std::deque<PipelineAck> downstream_acks;
  std::deque<SetupAck> downstream_setup_acks;
  std::deque<ReadRequest> read_requests;
  std::deque<PipelineAck> acks;
  std::deque<SetupAck> setup_acks;
  std::deque<FnfaMessage> fnfas;
  std::deque<ReadPacket> read_packets;
};

class TransportTest : public ::testing::Test {
 protected:
  TransportTest() : sim_(1), net_(sim_) {
    a_ = net_.add_node("a", "/r0", Bandwidth::mbps(100));
    b_ = net_.add_node("b", "/r0", Bandwidth::mbps(100));
    SinkResolver resolver;
    resolver.packet_sink = [this](NodeId node) -> PacketSink* {
      return node == b_ ? &sink_ : nullptr;
    };
    resolver.ack_sink = [this](NodeId node, PipelineId) -> AckSink* {
      return node == b_ ? &sink_ : nullptr;
    };
    resolver.read_sink = [this](NodeId node, ReadId) -> ReadSink* {
      return node == b_ ? &sink_ : nullptr;
    };
    transport_ = std::make_unique<Transport>(net_, config_, resolver);
  }

  sim::Simulation sim_;
  net::Network net_;
  HdfsConfig config_;
  RecordingSink sink_;
  std::unique_ptr<Transport> transport_;
  NodeId a_, b_;
};

TEST_F(TransportTest, SetupRoutesToPacketSink) {
  PipelineSetup setup;
  setup.pipeline = PipelineId{1};
  setup.block = BlockId{2};
  setup.targets = {b_};
  transport_->send_setup(a_, b_, setup);
  sim_.run();
  ASSERT_EQ(sink_.setups.size(), 1u);
  EXPECT_EQ(sink_.setups.front().block, BlockId{2});
}

TEST_F(TransportTest, PacketCarriesHeaderOverheadOnWire) {
  WirePacket packet;
  packet.pipeline = PipelineId{1};
  packet.payload = 64 * kKiB;
  transport_->send_packet(a_, b_, packet);
  sim_.run();
  ASSERT_EQ(sink_.packets.size(), 1u);
  EXPECT_EQ(net_.bytes_sent(a_), 64 * kKiB + config_.packet_header_wire);
}

TEST_F(TransportTest, AckRoutingSplitsByDirection) {
  PipelineAck ack{PipelineId{1}, 5, AckStatus::kSuccess, -1};
  transport_->send_ack_to_datanode(a_, b_, ack);
  transport_->send_ack_to_client(a_, b_, ack);
  sim_.run();
  EXPECT_EQ(sink_.downstream_acks.size(), 1u);
  EXPECT_EQ(sink_.acks.size(), 1u);
}

TEST_F(TransportTest, SetupAckRouting) {
  SetupAck ack{PipelineId{1}, true, -1};
  transport_->send_setup_ack_to_datanode(a_, b_, ack);
  transport_->send_setup_ack_to_client(a_, b_, ack);
  sim_.run();
  EXPECT_EQ(sink_.downstream_setup_acks.size(), 1u);
  EXPECT_EQ(sink_.setup_acks.size(), 1u);
}

TEST_F(TransportTest, FnfaRouting) {
  transport_->send_fnfa(a_, b_, FnfaMessage{PipelineId{1}, BlockId{2}});
  sim_.run();
  ASSERT_EQ(sink_.fnfas.size(), 1u);
  EXPECT_EQ(sink_.fnfas.front().block, BlockId{2});
}

TEST_F(TransportTest, ReadRequestAndPacketRouting) {
  ReadRequest request;
  request.read = ReadId{7};
  request.block = BlockId{2};
  request.length = kKiB;
  request.reader_node = a_;
  transport_->send_read_request(a_, b_, request);
  ReadPacket packet;
  packet.read = ReadId{7};
  packet.payload = kKiB;
  transport_->send_read_packet(a_, b_, packet);
  sim_.run();
  ASSERT_EQ(sink_.read_requests.size(), 1u);
  EXPECT_EQ(sink_.read_requests.front().read, ReadId{7});
  ASSERT_EQ(sink_.read_packets.size(), 1u);
}

TEST_F(TransportTest, MessagesToUnresolvedNodeAreDropped) {
  // Node a_ has no sinks registered; nothing should crash.
  PipelineSetup setup;
  setup.pipeline = PipelineId{1};
  setup.targets = {a_};
  transport_->send_setup(b_, a_, setup);
  transport_->send_fnfa(b_, a_, FnfaMessage{PipelineId{1}, BlockId{0}});
  sim_.run();
  EXPECT_TRUE(sink_.setups.empty());
  EXPECT_TRUE(sink_.fnfas.empty());
}

TEST_F(TransportTest, AcksOvertakeQueuedBulkData) {
  // Queue a megabyte of data packets, then an ack: the ack must arrive
  // before most of the data (control-priority lane).
  WirePacket packet;
  packet.pipeline = PipelineId{1};
  packet.payload = 64 * kKiB;
  for (int i = 0; i < 16; ++i) {
    packet.seq = i;
    transport_->send_packet(a_, b_, packet);
  }
  transport_->send_ack_to_client(a_, b_,
                                 PipelineAck{PipelineId{1}, 0,
                                             AckStatus::kSuccess, -1});
  bool ack_before_data_done = false;
  sim_.run_until(Bandwidth::mbps(100).transmit_time(4 * 64 * kKiB));
  ack_before_data_done = sink_.acks.size() == 1 && sink_.packets.size() < 16;
  sim_.run();
  EXPECT_TRUE(ack_before_data_done);
  EXPECT_EQ(sink_.packets.size(), 16u);
}

TEST_F(TransportTest, ErrorReadPacketIsControlSized) {
  ReadPacket error_packet;
  error_packet.read = ReadId{1};
  error_packet.error = true;
  transport_->send_read_packet(a_, b_, error_packet);
  sim_.run();
  EXPECT_EQ(net_.bytes_sent(a_), config_.ack_wire);
}

}  // namespace
}  // namespace smarth::hdfs
