#include "net/topology.hpp"

#include <gtest/gtest.h>

namespace smarth::net {
namespace {

class TopologyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    a_ = topo_.add_host("a", "/rack0");
    b_ = topo_.add_host("b", "/rack0");
    c_ = topo_.add_host("c", "/rack1");
  }
  Topology topo_;
  NodeId a_, b_, c_;
};

TEST_F(TopologyTest, Counts) {
  EXPECT_EQ(topo_.host_count(), 3u);
  EXPECT_EQ(topo_.rack_count(), 2u);
}

TEST_F(TopologyTest, Lookup) {
  EXPECT_EQ(topo_.host_name(a_), "a");
  EXPECT_EQ(topo_.rack_of(c_), "/rack1");
  EXPECT_EQ(topo_.network_location(b_), "/rack0/b");
}

TEST_F(TopologyTest, SameRack) {
  EXPECT_TRUE(topo_.same_rack(a_, b_));
  EXPECT_FALSE(topo_.same_rack(a_, c_));
}

TEST_F(TopologyTest, HdfsDistances) {
  EXPECT_EQ(topo_.distance(a_, a_), 0);
  EXPECT_EQ(topo_.distance(a_, b_), 2);
  EXPECT_EQ(topo_.distance(a_, c_), 4);
}

TEST_F(TopologyTest, HostsOnRackInOrder) {
  const auto& rack0 = topo_.hosts_on_rack("/rack0");
  ASSERT_EQ(rack0.size(), 2u);
  EXPECT_EQ(rack0[0], a_);
  EXPECT_EQ(rack0[1], b_);
}

TEST_F(TopologyTest, RackOrderIsFirstRegistration) {
  const auto& racks = topo_.racks();
  ASSERT_EQ(racks.size(), 2u);
  EXPECT_EQ(racks[0], "/rack0");
  EXPECT_EQ(racks[1], "/rack1");
}

TEST_F(TopologyTest, FindHost) {
  const auto found = topo_.find_host("c");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found.value(), c_);
  EXPECT_FALSE(topo_.find_host("nope").ok());
}

TEST_F(TopologyTest, AllHosts) {
  const auto hosts = topo_.all_hosts();
  ASSERT_EQ(hosts.size(), 3u);
  EXPECT_EQ(hosts[0], a_);
  EXPECT_EQ(hosts[2], c_);
}

TEST_F(TopologyTest, DuplicateNameThrows) {
  EXPECT_THROW(topo_.add_host("a", "/rack2"), std::logic_error);
}

TEST_F(TopologyTest, UnknownRackThrows) {
  EXPECT_THROW(topo_.hosts_on_rack("/nope"), std::logic_error);
}

TEST_F(TopologyTest, UnknownNodeThrows) {
  EXPECT_THROW(topo_.host_name(NodeId{99}), std::logic_error);
}

}  // namespace
}  // namespace smarth::net
