// Unit tests of the chaos engine: deterministic one-shot injections
// (crash-and-rejoin with namenode re-registration, fail-slow windows that
// restore bandwidth, NIC flaps) and seeded chaos mode's reproducibility.
#include "faults/fault_injector.hpp"

#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "cluster/cluster_spec.hpp"

namespace smarth::faults {
namespace {

using cluster::Cluster;
using cluster::small_cluster;

TEST(FaultInjectorTest, CrashWithoutRejoinStaysDark) {
  Cluster cluster(small_cluster(1));
  FaultInjector injector(cluster);
  injector.crash(0, seconds(1));
  cluster.sim().run_until(seconds(10));
  EXPECT_TRUE(cluster.datanode(0).crashed());
  EXPECT_EQ(injector.counts().crashes, 1u);
  EXPECT_EQ(injector.counts().restarts, 0u);
  EXPECT_EQ(cluster.namenode().reregistrations(), 0u);
}

TEST(FaultInjectorTest, CrashAndRejoinReregisters) {
  Cluster cluster(small_cluster(1));
  FaultInjector injector(cluster);
  injector.crash_and_rejoin(0, seconds(1), seconds(4));
  cluster.sim().run_until(seconds(2));
  EXPECT_TRUE(cluster.datanode(0).crashed());
  cluster.sim().run_until(seconds(10));
  EXPECT_FALSE(cluster.datanode(0).crashed());
  EXPECT_EQ(injector.counts().crashes, 1u);
  EXPECT_EQ(injector.counts().restarts, 1u);
  // The reboot re-registered with the namenode (heartbeats resumed).
  EXPECT_EQ(cluster.namenode().reregistrations(), 1u);
  EXPECT_FALSE(cluster.rpc().host_down(cluster.datanode_id(0)));
}

TEST(FaultInjectorTest, FailSlowThrottlesThenRestores) {
  Cluster cluster(small_cluster(1));
  FaultInjector injector(cluster);
  const NodeId node = cluster.datanode_id(0);
  const Bandwidth nic_before = cluster.network().node_nic(node);
  const Bandwidth disk_before = cluster.datanode(0).disk().write_bandwidth();
  injector.fail_slow(0, seconds(1), seconds(3), /*disk_factor=*/8.0,
                     /*nic_factor=*/4.0);
  cluster.sim().run_until(seconds(2));
  EXPECT_NEAR(cluster.network().node_nic(node).bits_per_second(),
              nic_before.bits_per_second() / 4.0, 1.0);
  EXPECT_NEAR(cluster.datanode(0).disk().write_bandwidth().bits_per_second(),
              disk_before.bits_per_second() / 8.0, 1.0);
  cluster.sim().run_until(seconds(5));
  EXPECT_EQ(cluster.network().node_nic(node), nic_before);
  EXPECT_EQ(cluster.datanode(0).disk().write_bandwidth(), disk_before);
  EXPECT_EQ(injector.counts().fail_slows, 1u);
}

TEST(FaultInjectorTest, FlapIsolatesThenHeals) {
  Cluster cluster(small_cluster(1));
  FaultInjector injector(cluster);
  const NodeId node = cluster.datanode_id(0);
  injector.flap_node(0, seconds(1), seconds(2));
  cluster.sim().run_until(milliseconds(1500));
  EXPECT_TRUE(cluster.network().node_isolated(node));
  cluster.sim().run_until(seconds(3));
  EXPECT_FALSE(cluster.network().node_isolated(node));
  EXPECT_EQ(injector.counts().flaps, 1u);
}

TEST(FaultInjectorTest, RpcChaosInstalledOnBus) {
  Cluster cluster(small_cluster(1));
  FaultInjector injector(cluster);
  injector.set_rpc_chaos(0.05, milliseconds(2), milliseconds(1));
  EXPECT_TRUE(cluster.rpc().chaos().enabled());
  EXPECT_DOUBLE_EQ(cluster.rpc().chaos().loss_probability, 0.05);
}

ChaosRates moderate_rates() {
  ChaosRates rates;
  rates.crash_per_minute = 2.0;
  rates.fail_slow_per_minute = 3.0;
  rates.flap_per_minute = 2.0;
  rates.rejoin_delay = seconds(3);
  rates.fail_slow_duration = seconds(4);
  rates.flap_duration = seconds(1);
  return rates;
}

TEST(FaultInjectorTest, ChaosModeInjectsFaults) {
  Cluster cluster(small_cluster(1));
  FaultInjector injector(cluster, /*chaos_seed=*/7);
  injector.start_chaos(moderate_rates());
  EXPECT_TRUE(injector.chaos_running());
  cluster.sim().run_until(seconds(120));
  EXPECT_GT(injector.counts().total(), 0u);
  injector.stop_chaos();
  EXPECT_FALSE(injector.chaos_running());
}

TEST(FaultInjectorTest, ChaosTimelineIsSeedDeterministic) {
  auto run = [](std::uint64_t chaos_seed) {
    Cluster cluster(small_cluster(1));
    FaultInjector injector(cluster, chaos_seed);
    injector.start_chaos(moderate_rates());
    cluster.sim().run_until(seconds(120));
    return injector.counts();
  };
  const InjectionCounts a = run(99);
  const InjectionCounts b = run(99);
  EXPECT_EQ(a.crashes, b.crashes);
  EXPECT_EQ(a.restarts, b.restarts);
  EXPECT_EQ(a.fail_slows, b.fail_slows);
  EXPECT_EQ(a.flaps, b.flaps);
  EXPECT_EQ(a.total(), b.total());
}

TEST(FaultInjectorTest, ChaosCrashesAlwaysRejoin) {
  Cluster cluster(small_cluster(1));
  FaultInjector injector(cluster, /*chaos_seed=*/11);
  ChaosRates rates;
  rates.crash_per_minute = 4.0;
  rates.rejoin_delay = seconds(2);
  injector.start_chaos(rates);
  cluster.sim().run_until(seconds(120));
  injector.stop_chaos();
  // Give the last scheduled rejoin time to land.
  cluster.sim().run_until(cluster.sim().now() + seconds(10));
  EXPECT_GT(injector.counts().crashes, 0u);
  EXPECT_EQ(injector.counts().crashes, injector.counts().restarts);
  for (std::size_t i = 0; i < cluster.datanode_count(); ++i) {
    EXPECT_FALSE(cluster.datanode(i).crashed()) << "datanode " << i;
  }
}

}  // namespace
}  // namespace smarth::faults
