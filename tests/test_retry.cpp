// Unit tests of the client-side RPC retry wrapper: first-attempt success,
// recovery across a server outage, bounded give-up, duplicate-response
// hygiene when a slow response races its own timeout, and the RpcBus
// drop/loss counters the metrics report surfaces.
#include "rpc/retry.hpp"

#include <gtest/gtest.h>

#include <optional>

#include "net/network.hpp"
#include "rpc/rpc_bus.hpp"
#include "sim/simulation.hpp"

namespace smarth::rpc {
namespace {

class RetryTest : public ::testing::Test {
 protected:
  RetryTest() : sim_(1), net_(sim_), bus_(net_) {
    client_ = net_.add_node("client", "/r0", Bandwidth::mbps(1000));
    server_ = net_.add_node("server", "/r0", Bandwidth::mbps(1000));
  }

  RetryPolicy fast_policy() const {
    RetryPolicy policy;
    policy.timeout = milliseconds(500);
    policy.max_attempts = 4;
    policy.backoff_base = milliseconds(100);
    policy.backoff_max = seconds(1);
    policy.jitter = 0.2;
    return policy;
  }

  sim::Simulation sim_;
  net::Network net_;
  RpcBus bus_;
  NodeId client_, server_;
};

TEST_F(RetryTest, SucceedsFirstAttempt) {
  auto stats = std::make_shared<RetryStats>();
  std::optional<int> response;
  call_with_retry<int>(
      bus_, sim_, fast_policy(), client_, server_, [] { return 42; },
      [&response](int value) { response = value; }, [] { FAIL(); }, stats);
  sim_.run_until(seconds(5));
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(*response, 42);
  EXPECT_EQ(stats->retries, 0u);
  EXPECT_EQ(stats->give_ups, 0u);
}

TEST_F(RetryTest, RetriesThroughServerOutage) {
  // Server is down for the first two attempt windows, then comes back; the
  // call must eventually succeed and account the extra attempts.
  bus_.set_host_down(server_, true);
  sim_.schedule_at(milliseconds(1400),
                   [this] { bus_.set_host_down(server_, false); });
  auto stats = std::make_shared<RetryStats>();
  std::optional<int> response;
  call_with_retry<int>(
      bus_, sim_, fast_policy(), client_, server_, [] { return 7; },
      [&response](int value) { response = value; }, [] { FAIL(); }, stats);
  sim_.run_until(seconds(30));
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(*response, 7);
  EXPECT_GE(stats->retries, 1u);
  EXPECT_EQ(stats->give_ups, 0u);
  EXPECT_GE(bus_.calls_dropped(), 1u);
}

TEST_F(RetryTest, GivesUpAfterBoundedAttempts) {
  bus_.set_host_down(server_, true);
  auto stats = std::make_shared<RetryStats>();
  int give_ups = 0;
  call_with_retry<int>(
      bus_, sim_, fast_policy(), client_, server_, [] { return 7; },
      [](int) { FAIL() << "server is down; no response should arrive"; },
      [&give_ups] { ++give_ups; }, stats);
  sim_.run_until(seconds(60));
  EXPECT_EQ(give_ups, 1);
  EXPECT_EQ(stats->give_ups, 1u);
  // max_attempts=4 means exactly 3 retries beyond the first.
  EXPECT_EQ(stats->retries, 3u);
}

TEST_F(RetryTest, SlowResponseSettlesExactlyOnce) {
  // Chaos delay pushes every response past the per-attempt timeout, so a
  // retry fires while attempt 1's response is still in flight. The first
  // response to land wins; later ones must be ignored.
  RpcChaos chaos;
  chaos.delay_mean = milliseconds(800);
  bus_.set_chaos(chaos);
  auto stats = std::make_shared<RetryStats>();
  int responses = 0;
  call_with_retry<int>(
      bus_, sim_, fast_policy(), client_, server_, [] { return 7; },
      [&responses](int) { ++responses; }, [] { FAIL(); }, stats);
  sim_.run_until(seconds(30));
  EXPECT_EQ(responses, 1);
  EXPECT_GE(stats->retries, 1u);
  EXPECT_GT(bus_.messages_delayed(), 0u);
}

TEST_F(RetryTest, ChaosLossForcesGiveUp) {
  RpcChaos chaos;
  chaos.loss_probability = 1.0;
  bus_.set_chaos(chaos);
  auto stats = std::make_shared<RetryStats>();
  int give_ups = 0;
  call_with_retry<int>(
      bus_, sim_, fast_policy(), client_, server_, [] { return 7; },
      [](int) { FAIL(); }, [&give_ups] { ++give_ups; }, stats);
  sim_.run_until(seconds(60));
  EXPECT_EQ(give_ups, 1);
  EXPECT_GE(bus_.messages_lost(), 4u);  // every attempt's request vanished
}

TEST_F(RetryTest, DroppedCallCounterTracksHostDownCalls) {
  bus_.set_host_down(server_, true);
  bus_.call<int>(client_, server_, [] { return 1; }, [](int) { FAIL(); });
  sim_.run_until(seconds(1));
  EXPECT_EQ(bus_.calls_dropped(), 1u);
  EXPECT_EQ(bus_.calls_completed(), 0u);
  EXPECT_EQ(bus_.calls_started(), 1u);
}

}  // namespace
}  // namespace smarth::rpc
