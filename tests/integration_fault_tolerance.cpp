// Fault-tolerance integration tests: datanode crashes and checksum
// corruption during uploads, for both the baseline recovery (paper Alg. 3)
// and SMARTH's multi-pipeline recovery (Alg. 4). Every test verifies not
// just completion but durability: the file ends fully replicated on the
// survivors.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "cluster/cluster_spec.hpp"
#include "hdfs/namenode.hpp"
#include "workload/fault_plan.hpp"

namespace smarth {
namespace {

using cluster::Cluster;
using cluster::Protocol;

cluster::ClusterSpec spec_with_small_blocks(std::uint64_t seed = 42) {
  cluster::ClusterSpec spec = cluster::small_cluster(seed);
  spec.hdfs.block_size = 4 * kMiB;
  // Faster failure detection keeps the tests quick without changing the
  // recovery logic under test.
  spec.hdfs.ack_timeout = seconds(2);
  spec.hdfs.datanode_dead_interval = seconds(10);
  return spec;
}

/// Finds which datanode is first in the pipeline of the file's first block
/// after the upload started (requires the simulation to have run).
int first_pipeline_head(Cluster& cluster, const std::string& path) {
  const hdfs::FileEntry* entry = cluster.namenode().file_by_path(path);
  if (entry == nullptr || entry->blocks.empty()) return -1;
  const hdfs::BlockRecord* record = cluster.namenode().block(entry->blocks[0]);
  if (record == nullptr || record->expected_targets.empty()) return -1;
  for (std::size_t i = 0; i < cluster.datanode_count(); ++i) {
    if (cluster.datanode_id(i) == record->expected_targets[0]) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

/// Counts finalized replicas of every block of the file.
int min_finalized_replicas(Cluster& cluster, const std::string& path) {
  const hdfs::FileEntry* entry = cluster.namenode().file_by_path(path);
  if (entry == nullptr) return 0;
  int min_replicas = 1 << 20;
  for (BlockId block : entry->blocks) {
    int n = 0;
    for (std::size_t i = 0; i < cluster.datanode_count(); ++i) {
      const auto replica = cluster.datanode(i).block_store().replica(block);
      if (replica.ok() &&
          replica.value().state == storage::ReplicaState::kFinalized) {
        ++n;
      }
    }
    min_replicas = std::min(min_replicas, n);
  }
  return min_replicas;
}

TEST(FaultToleranceHdfs, CrashMidUploadRecovers) {
  for (std::size_t crash_index : {0u, 4u, 8u}) {
    Cluster cluster(spec_with_small_blocks());
    // Crash one datanode two (simulated) seconds into the upload; whichever
    // pipelines it serves must recover via Algorithm 3.
    cluster.crash_datanode_at(crash_index, seconds(2));
    const auto stats =
        cluster.run_upload("/data/a.bin", 24 * kMiB, Protocol::kHdfs);
    ASSERT_FALSE(stats.failed)
        << "crash_index=" << crash_index << ": " << stats.failure_reason;
    cluster.sim().run_until(cluster.sim().now() + seconds(2));
    // Every block still has at least replication-1 finalized replicas (the
    // crashed node may have been replaced or dropped).
    EXPECT_GE(min_finalized_replicas(cluster, "/data/a.bin"), 2)
        << "crash_index=" << crash_index;
  }
}

TEST(FaultToleranceHdfs, RecoveryCountReported) {
  Cluster cluster(spec_with_small_blocks());
  // Crash the head of the first block's pipeline while it is streaming, so a
  // recovery is guaranteed to run (a random node might never be used).
  hdfs::StreamStats stats;
  bool done = false;
  cluster.upload("/data/a.bin", 24 * kMiB, Protocol::kHdfs,
                 [&](const hdfs::StreamStats& s) {
                   stats = s;
                   done = true;
                 });
  cluster.sim().run_until(milliseconds(300));
  const int head = first_pipeline_head(cluster, "/data/a.bin");
  ASSERT_GE(head, 0);
  cluster.datanode(static_cast<std::size_t>(head)).crash();
  while (!done) {
    ASSERT_TRUE(cluster.sim().run_until(cluster.sim().now() + milliseconds(250)));
    ASSERT_LT(cluster.sim().now(), seconds(10'000));
  }
  ASSERT_FALSE(stats.failed) << stats.failure_reason;
  EXPECT_GE(stats.recoveries, 1);
}

TEST(FaultToleranceHdfs, ChecksumErrorTriggersRecovery) {
  Cluster cluster(spec_with_small_blocks());
  // The 10th packet arriving at node 3 fails verification (wherever node 3
  // sits in a pipeline); the client must replace/resync and finish.
  cluster.datanode(3).inject_checksum_error_on_nth_packet(10);
  const auto stats =
      cluster.run_upload("/data/a.bin", 16 * kMiB, Protocol::kHdfs);
  ASSERT_FALSE(stats.failed) << stats.failure_reason;
  cluster.sim().run_until(cluster.sim().now() + seconds(2));
  EXPECT_GE(min_finalized_replicas(cluster, "/data/a.bin"), 2);
}

TEST(FaultToleranceHdfs, UploadFailsWhenAllReplicasDie) {
  cluster::ClusterSpec spec = spec_with_small_blocks();
  Cluster cluster(spec);
  // Kill every datanode early; no recovery can succeed.
  workload::FaultPlan plan;
  for (std::size_t i = 0; i < cluster.datanode_count(); ++i) {
    plan.crash(i, seconds(1));
  }
  plan.apply(cluster);
  const auto stats =
      cluster.run_upload("/data/a.bin", 24 * kMiB, Protocol::kHdfs);
  EXPECT_TRUE(stats.failed);
}

TEST(FaultToleranceSmarth, CrashMidUploadRecovers) {
  for (std::size_t crash_index : {1u, 5u, 7u}) {
    Cluster cluster(spec_with_small_blocks());
    cluster.throttle_cross_rack(Bandwidth::mbps(40));  // keep pipelines busy
    cluster.crash_datanode_at(crash_index, seconds(2));
    const auto stats =
        cluster.run_upload("/data/a.bin", 24 * kMiB, Protocol::kSmarth);
    ASSERT_FALSE(stats.failed)
        << "crash_index=" << crash_index << ": " << stats.failure_reason;
    cluster.sim().run_until(cluster.sim().now() + seconds(2));
    EXPECT_GE(min_finalized_replicas(cluster, "/data/a.bin"), 2)
        << "crash_index=" << crash_index;
  }
}

TEST(FaultToleranceSmarth, CrashOfPipelineHeadRecovers) {
  Cluster cluster(spec_with_small_blocks());
  cluster.throttle_cross_rack(Bandwidth::mbps(40));
  // Let the upload place its first block, then kill that pipeline's head —
  // the node the client is actively streaming to.
  cluster.upload("/data/a.bin", 24 * kMiB, Protocol::kSmarth,
                 [](const hdfs::StreamStats&) {});
  cluster.sim().run_until(seconds(1));
  const int head = first_pipeline_head(cluster, "/data/a.bin");
  ASSERT_GE(head, 0);
  cluster.datanode(static_cast<std::size_t>(head)).crash();
  // Drive to completion.
  const hdfs::FileEntry* entry =
      cluster.namenode().file_by_path("/data/a.bin");
  ASSERT_NE(entry, nullptr);
  for (int i = 0; i < 600 && entry->state != hdfs::FileState::kClosed; ++i) {
    cluster.sim().run_until(cluster.sim().now() + milliseconds(200));
  }
  EXPECT_EQ(entry->state, hdfs::FileState::kClosed);
  EXPECT_GE(min_finalized_replicas(cluster, "/data/a.bin"), 2);
}

TEST(FaultToleranceSmarth, ChecksumErrorOnMirrorRecovers) {
  Cluster cluster(spec_with_small_blocks());
  cluster.datanode(6).inject_checksum_error_on_nth_packet(5);
  const auto stats =
      cluster.run_upload("/data/a.bin", 16 * kMiB, Protocol::kSmarth);
  ASSERT_FALSE(stats.failed) << stats.failure_reason;
  cluster.sim().run_until(cluster.sim().now() + seconds(2));
  EXPECT_GE(min_finalized_replicas(cluster, "/data/a.bin"), 2);
}

TEST(FaultToleranceSmarth, MultipleCrashesAcrossUpload) {
  Cluster cluster(spec_with_small_blocks());
  cluster.throttle_cross_rack(Bandwidth::mbps(40));
  workload::FaultPlan plan;
  plan.crash(0, seconds(2)).crash(5, seconds(6));
  plan.apply(cluster);
  const auto stats =
      cluster.run_upload("/data/a.bin", 32 * kMiB, Protocol::kSmarth);
  ASSERT_FALSE(stats.failed) << stats.failure_reason;
  cluster.sim().run_until(cluster.sim().now() + seconds(2));
  EXPECT_GE(min_finalized_replicas(cluster, "/data/a.bin"), 2);
}

TEST(FaultToleranceSmarth, DeadNodeExcludedFromLaterPlacement) {
  Cluster cluster(spec_with_small_blocks());
  cluster.crash_datanode_at(4, seconds(1));
  const auto stats =
      cluster.run_upload("/data/a.bin", 32 * kMiB, Protocol::kSmarth);
  ASSERT_FALSE(stats.failed);
  // Blocks allocated well after the dead-node interval must avoid node 4.
  const hdfs::FileEntry* entry =
      cluster.namenode().file_by_path("/data/a.bin");
  ASSERT_NE(entry, nullptr);
  const hdfs::BlockRecord* last_block =
      cluster.namenode().block(entry->blocks.back());
  ASSERT_NE(last_block, nullptr);
  for (NodeId target : last_block->expected_targets) {
    EXPECT_NE(target, cluster.datanode_id(4));
  }
}

TEST(FaultTolerance, RecoveredUploadSlowerThanCleanRun) {
  // Recovery is not free: the faulted run must take longer than a clean one
  // on the same cluster/seed, and both must finish.
  cluster::ClusterSpec spec = spec_with_small_blocks();
  Cluster clean(spec);
  const auto clean_stats =
      clean.run_upload("/data/a.bin", 24 * kMiB, Protocol::kHdfs);
  Cluster faulted(spec);
  faulted.crash_datanode_at(1, seconds(2));
  const auto faulted_stats =
      faulted.run_upload("/data/a.bin", 24 * kMiB, Protocol::kHdfs);
  ASSERT_FALSE(clean_stats.failed);
  ASSERT_FALSE(faulted_stats.failed);
  if (faulted_stats.recoveries > 0) {
    EXPECT_GT(faulted_stats.elapsed(), clean_stats.elapsed());
  }
}

}  // namespace
}  // namespace smarth
