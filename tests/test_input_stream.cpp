// Unit tests of the DfsInputStream against a hand-built mini cluster (one
// namenode, three datanodes, a raw transport): location fetching, per-block
// sequencing, replica error handling, offset-resume after failover, and the
// distance-sorted replica preference.
#include "hdfs/input_stream.hpp"

#include <gtest/gtest.h>

#include "hdfs/datanode.hpp"
#include "hdfs/transport.hpp"
#include "net/network.hpp"
#include "rpc/rpc_bus.hpp"
#include "sim/simulation.hpp"

namespace smarth::hdfs {
namespace {

class InputStreamTest : public ::testing::Test {
 protected:
  InputStreamTest() : sim_(1), net_(sim_) {
    config_.packet_payload = 64 * kKiB;
    config_.block_size = 4 * config_.packet_payload;
    config_.ack_timeout = seconds(1);
    nn_node_ = net_.add_node("nn", "/r0", Bandwidth::mbps(1000));
    client_node_ = net_.add_node("client", "/r0", Bandwidth::mbps(1000));
    dn_nodes_.push_back(net_.add_node("dn0", "/r0", Bandwidth::mbps(1000)));
    dn_nodes_.push_back(net_.add_node("dn1", "/r1", Bandwidth::mbps(1000)));
    dn_nodes_.push_back(net_.add_node("dn2", "/r1", Bandwidth::mbps(1000)));

    SinkResolver resolver;
    resolver.packet_sink = [this](NodeId node) -> PacketSink* {
      for (std::size_t i = 0; i < dn_nodes_.size(); ++i) {
        if (dn_nodes_[i] == node) return dns_[i].get();
      }
      return nullptr;
    };
    resolver.ack_sink = [](NodeId, PipelineId) -> AckSink* { return nullptr; };
    resolver.read_sink = [this](NodeId node, ReadId id) -> ReadSink* {
      return (reader_ && node == client_node_ && reader_->owns_read(id))
                 ? reader_.get()
                 : nullptr;
    };
    transport_ = std::make_unique<Transport>(net_, config_, resolver);
    namenode_ = std::make_unique<Namenode>(sim_, net_.topology(), config_,
                                           nn_node_);
    for (NodeId node : dn_nodes_) {
      auto dn = std::make_unique<Datanode>(sim_, *transport_, rpc_, *namenode_,
                                           config_, node);
      dn->start();
      dns_.push_back(std::move(dn));
    }
  }

  /// Registers a one-block file whose finalized replicas live on the given
  /// datanode indexes, bypassing the write path.
  void stage_block(const std::string& path, Bytes length,
                   std::vector<std::size_t> holders) {
    const auto file = namenode_->create(path, ClientId{0});
    ASSERT_TRUE(file.ok());
    const auto located = namenode_->add_block(file.value(), ClientId{0},
                                              client_node_, {});
    ASSERT_TRUE(located.ok());
    const BlockId block = located.value().block;
    for (std::size_t i : holders) {
      ASSERT_TRUE(dns_[i]->block_store().has_replica(block) ||
                  true);  // replicas created below
      auto& store = const_cast<storage::BlockStore&>(dns_[i]->block_store());
      if (!store.has_replica(block)) {
        ASSERT_TRUE(store.create_replica(block).ok());
      }
      ASSERT_TRUE(store.append(block, length).ok());
      ASSERT_TRUE(store.finalize(block).ok());
      namenode_->block_received(dn_nodes_[i], block, length);
    }
    ASSERT_TRUE(namenode_->complete(file.value(), ClientId{0}).value());
  }

  ReadStats read_file(const std::string& path) {
    ReadStats stats;
    bool done = false;
    DfsInputStream::Deps deps{sim_, *transport_, rpc_, *namenode_, config_,
                              read_ids_};
    reader_ = std::make_unique<DfsInputStream>(
        deps, ClientId{0}, client_node_, path,
        [&](const ReadStats& s) {
          stats = s;
          done = true;
        });
    reader_->start();
    while (!done) {
      if (!sim_.run_until(sim_.now() + milliseconds(100))) break;
      if (sim_.now() > seconds(500)) break;
    }
    return stats;
  }

  sim::Simulation sim_;
  net::Network net_;
  HdfsConfig config_;
  rpc::RpcBus rpc_{net_};
  NodeId nn_node_, client_node_;
  std::vector<NodeId> dn_nodes_;
  std::unique_ptr<Transport> transport_;
  std::unique_ptr<Namenode> namenode_;
  std::vector<std::unique_ptr<Datanode>> dns_;
  std::unique_ptr<DfsInputStream> reader_;
  IdGenerator<ReadId> read_ids_;
};

TEST_F(InputStreamTest, ReadsStagedBlock) {
  stage_block("/f", config_.block_size, {0, 1, 2});
  const ReadStats stats = read_file("/f");
  ASSERT_FALSE(stats.failed) << stats.failure_reason;
  EXPECT_EQ(stats.bytes_read, config_.block_size);
  EXPECT_EQ(stats.blocks, 1);
  EXPECT_EQ(stats.failovers, 0);
}

TEST_F(InputStreamTest, PrefersSameRackReplica) {
  stage_block("/f", config_.block_size, {0, 1, 2});
  const ReadStats stats = read_file("/f");
  ASSERT_FALSE(stats.failed);
  // dn0 shares the client's rack; it must have served the read.
  EXPECT_EQ(dns_[0]->reads_served(), 1u);
  EXPECT_EQ(dns_[1]->reads_served() + dns_[2]->reads_served(), 0u);
}

TEST_F(InputStreamTest, RemoteReplicaUsedWhenLocalMissing) {
  stage_block("/f", config_.block_size, {1, 2});
  const ReadStats stats = read_file("/f");
  ASSERT_FALSE(stats.failed);
  EXPECT_EQ(stats.bytes_read, config_.block_size);
  EXPECT_EQ(dns_[0]->reads_served(), 0u);
}

TEST_F(InputStreamTest, FailsOverOnRefusal) {
  // dn0 is listed as a holder at the namenode but lost its replica: it
  // refuses (error packet) and the reader falls over to dn1.
  stage_block("/f", config_.block_size, {0, 1});
  auto& store = const_cast<storage::BlockStore&>(dns_[0]->block_store());
  const auto replicas = store.all_replicas();
  ASSERT_EQ(replicas.size(), 1u);
  ASSERT_TRUE(store.remove(replicas[0].block).ok());
  const ReadStats stats = read_file("/f");
  ASSERT_FALSE(stats.failed) << stats.failure_reason;
  EXPECT_EQ(stats.failovers, 1);
  EXPECT_EQ(dns_[1]->reads_served(), 1u);
}

TEST_F(InputStreamTest, TimeoutFailoverResumesMidBlock) {
  stage_block("/f", config_.block_size, {0, 1});
  // dn0 crashes the instant it starts serving: some packets may already be
  // out; the reader times out and resumes from dn1 at its received offset.
  sim_.schedule_after(milliseconds(1), [this] { dns_[0]->crash(); });
  const ReadStats stats = read_file("/f");
  ASSERT_FALSE(stats.failed) << stats.failure_reason;
  EXPECT_EQ(stats.bytes_read, config_.block_size);
  EXPECT_GE(stats.failovers, 1);
}

TEST_F(InputStreamTest, FailsWhenEveryHolderRefuses) {
  stage_block("/f", config_.block_size, {0, 1});
  for (std::size_t i : {0u, 1u}) {
    auto& store = const_cast<storage::BlockStore&>(dns_[i]->block_store());
    const auto replicas = store.all_replicas();
    ASSERT_TRUE(store.remove(replicas[0].block).ok());
  }
  const ReadStats stats = read_file("/f");
  EXPECT_TRUE(stats.failed);
  EXPECT_EQ(stats.failovers, 2);
}

TEST_F(InputStreamTest, MissingFileFailsFast) {
  const ReadStats stats = read_file("/absent");
  EXPECT_TRUE(stats.failed);
  EXPECT_NE(stats.failure_reason.find("file_not_found"), std::string::npos);
}

TEST_F(InputStreamTest, ShortBlockLengthRespected) {
  const Bytes odd = config_.packet_payload + 123;
  stage_block("/f", odd, {0});
  const ReadStats stats = read_file("/f");
  ASSERT_FALSE(stats.failed);
  EXPECT_EQ(stats.bytes_read, odd);
}

}  // namespace
}  // namespace smarth::hdfs
