// Integration: a writer crashes mid-block under each protocol. The lease
// monitor must recover the file within the hard limit plus the recovery
// budget, close it at a consistent prefix, and a subsequent read must return
// exactly the salvaged bytes. Also covers writer takeover: a second client
// re-creates the crashed writer's path once recovery completes.
#include <gtest/gtest.h>

#include <optional>

#include "cluster/cluster.hpp"
#include "cluster/cluster_spec.hpp"
#include "faults/fault_injector.hpp"

namespace smarth {
namespace {

using cluster::Cluster;
using cluster::Protocol;

cluster::ClusterSpec crash_spec(std::uint64_t seed) {
  cluster::ClusterSpec spec = cluster::small_cluster(seed);
  spec.hdfs.block_size = 8 * kMiB;
  // Short lease limits keep the recovery phase of the test brief without
  // changing the protocol.
  spec.hdfs.lease_soft_limit = seconds(4);
  spec.hdfs.lease_hard_limit = seconds(10);
  spec.hdfs.lease_monitor_interval = seconds(1);
  return spec;
}

/// Drives the cluster until `done` holds or `span` elapses.
template <typename Pred>
bool drive_until(Cluster& cluster, SimDuration span, Pred done) {
  const SimTime deadline = cluster.sim().now() + span;
  while (cluster.sim().now() < deadline) {
    if (done()) return true;
    cluster.sim().run_until(cluster.sim().now() + milliseconds(250));
  }
  return done();
}

SimDuration recovery_budget(const hdfs::HdfsConfig& cfg) {
  return cfg.lease_hard_limit + cfg.lease_monitor_interval +
         cfg.lease_recovery_retry_interval *
             (cfg.lease_recovery_max_attempts + 1);
}

void crash_mid_block_and_expect_consistent_prefix(Protocol protocol) {
  Cluster cluster(crash_spec(11));
  const std::size_t reader_index =
      cluster.add_client(cluster.spec().client.rack,
                         cluster.spec().client.profile);

  std::optional<hdfs::StreamStats> stats;
  cluster.upload("/crash", 64 * kMiB, protocol,
                 [&stats](const hdfs::StreamStats& s) { stats = s; });
  cluster.crash_client_at(0, seconds(2));

  ASSERT_TRUE(drive_until(cluster, seconds(60),
                          [&stats] { return stats.has_value(); }));
  EXPECT_TRUE(stats->failed);
  EXPECT_TRUE(cluster.client_crashed(0));

  // The file must leave under-construction within the hard limit plus the
  // recovery retry budget, with no one calling recoverLease.
  const SimTime recovery_deadline = recovery_budget(cluster.config());
  ASSERT_TRUE(drive_until(cluster, recovery_deadline + seconds(5), [&] {
    const hdfs::FileEntry* entry = cluster.namenode().file_by_path("/crash");
    return entry != nullptr && entry->state == hdfs::FileState::kClosed;
  })) << "file still under construction after the recovery budget";

  // Consistency: every live finalized replica of every surviving block
  // matches the length the namenode serves to readers, and only the tail
  // block may be partial.
  const auto located =
      cluster.namenode().get_block_locations("/crash",
                                             cluster.client_node(0));
  ASSERT_TRUE(located.ok());
  Bytes salvaged_prefix = 0;
  for (std::size_t i = 0; i < located.value().size(); ++i) {
    const auto& lb = located.value()[i];
    EXPECT_FALSE(lb.targets.empty());
    if (i + 1 < located.value().size()) {
      EXPECT_EQ(lb.length, cluster.config().block_size)
          << "non-tail block " << i << " is partial";
    }
    for (std::size_t d = 0; d < cluster.datanode_count(); ++d) {
      const auto replica =
          cluster.datanode(d).block_store().replica(lb.block);
      if (replica.ok() &&
          replica.value().state == storage::ReplicaState::kFinalized) {
        EXPECT_EQ(replica.value().bytes, lb.length)
            << "replica of block " << i << " on datanode " << d
            << " disagrees with the synchronized length";
      }
    }
    salvaged_prefix += lb.length;
  }
  ASSERT_GT(salvaged_prefix, 0u) << "2 s of streaming salvaged nothing";
  EXPECT_LT(salvaged_prefix, 64 * kMiB);

  // A reader on a healthy host gets exactly the salvaged prefix.
  const hdfs::ReadStats read =
      cluster.run_download("/crash", reader_index);
  EXPECT_FALSE(read.failed) << read.failure_reason;
  EXPECT_EQ(read.bytes_read, salvaged_prefix);
}

TEST(ClientCrash, HdfsWriterCrashClosesFileAtConsistentPrefix) {
  crash_mid_block_and_expect_consistent_prefix(Protocol::kHdfs);
}

TEST(ClientCrash, SmarthWriterCrashClosesFileAtConsistentPrefix) {
  crash_mid_block_and_expect_consistent_prefix(Protocol::kSmarth);
}

TEST(ClientCrash, NewWriterTakesOverPathAfterRecovery) {
  Cluster cluster(crash_spec(23));
  const std::size_t writer2 =
      cluster.add_client(cluster.spec().client.rack,
                         cluster.spec().client.profile);

  std::optional<hdfs::StreamStats> stats;
  cluster.upload("/contended", 64 * kMiB, Protocol::kSmarth,
                 [&stats](const hdfs::StreamStats& s) { stats = s; });
  cluster.crash_client_at(0, seconds(2));

  // Past the soft limit the second writer re-creates the path. The create
  // first answers `recovery_in_progress` (triggering recovery immediately,
  // without waiting for the hard limit) and the client retries until the
  // file is closed, then replaces it.
  std::optional<Result<FileId>> created;
  cluster.sim().schedule_at(
      seconds(2) + cluster.config().lease_soft_limit + seconds(1), [&] {
        cluster.client(writer2).create_file(
            "/contended",
            [&created](Result<FileId> r) { created = std::move(r); },
            /*overwrite=*/true);
      });

  ASSERT_TRUE(drive_until(cluster,
                          recovery_budget(cluster.config()) + seconds(20),
                          [&created] { return created.has_value(); }));
  ASSERT_TRUE(created->ok()) << created->error().to_string();
  const hdfs::FileEntry* entry =
      cluster.namenode().file_by_path("/contended");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->id, created->value());
  EXPECT_EQ(entry->state, hdfs::FileState::kUnderConstruction);
  // The takeover happened via soft-expiry recovery, not the hard limit: at
  // least one lease expiry was recorded.
  EXPECT_GE(cluster.namenode().lease_expiries(), 1u);
}

TEST(ClientCrash, RestartedClientWritesAgain) {
  Cluster cluster(crash_spec(31));
  faults::FaultInjector injector(cluster, /*chaos_seed=*/5);

  std::optional<hdfs::StreamStats> first;
  cluster.upload("/w1", 32 * kMiB, Protocol::kHdfs,
                 [&first](const hdfs::StreamStats& s) { first = s; });
  injector.crash_and_rejoin_client(0, seconds(1), seconds(8));
  ASSERT_TRUE(drive_until(cluster, seconds(40),
                          [&first] { return first.has_value(); }));
  EXPECT_TRUE(first->failed);
  ASSERT_TRUE(drive_until(cluster, seconds(10),
                          [&] { return !cluster.client_crashed(0); }));

  // Post-reboot the same host uploads a fresh file successfully.
  const hdfs::StreamStats second =
      cluster.run_upload("/w2", 16 * kMiB, Protocol::kHdfs);
  EXPECT_FALSE(second.failed) << second.failure_reason;
  EXPECT_TRUE(cluster.file_fully_replicated("/w2"));
  EXPECT_EQ(injector.counts().client_crashes, 1u);
  EXPECT_EQ(injector.counts().client_restarts, 1u);
}

}  // namespace
}  // namespace smarth
