// Block-fidelity contract: the coalesced macro-transfer mode must agree with
// packet mode on upload times to within the documented tolerance while
// executing far fewer events, and both modes must be bit-for-bit
// deterministic for a fixed seed (identical events_executed and identical
// Chrome-trace exports across reruns).
#include <gtest/gtest.h>

#include <string>

#include "cluster/cluster.hpp"
#include "cluster/cluster_spec.hpp"
#include "model/cost_model.hpp"
#include "trace/chrome_trace.hpp"
#include "trace/trace_recorder.hpp"

namespace smarth {
namespace {

using cluster::Cluster;
using cluster::Protocol;

cluster::ClusterSpec fidelity_spec(hdfs::DataFidelity fidelity,
                                   std::uint64_t seed = 42) {
  cluster::ClusterSpec spec = cluster::small_cluster(seed);
  spec.hdfs.block_size = 16 * kMiB;
  spec.hdfs.fidelity = fidelity;
  return spec;
}

struct FidelityRun {
  double seconds = 0;
  std::uint64_t events = 0;
  bool failed = false;
};

FidelityRun run_upload(hdfs::DataFidelity fidelity, Protocol protocol,
                       std::uint64_t seed = 42) {
  Cluster cluster(fidelity_spec(fidelity, seed));
  const hdfs::StreamStats stats =
      cluster.run_upload("/data/fidelity.bin", 128 * kMiB, protocol);
  FidelityRun run;
  run.seconds = to_seconds(stats.elapsed());
  run.events = cluster.sim().events_executed();
  run.failed = stats.failed;
  return run;
}

// --- Derived unit properties -------------------------------------------------

TEST(CoalescedUnit, IsPacketMultipleWithinEveryCap) {
  const Bytes block = 64 * kMiB;
  const Bytes packet = 64 * kKiB;
  const Bytes unit = model::coalesced_transfer_unit(block, packet, 3, 0.05, 80);
  EXPECT_EQ(unit % packet, 0);
  EXPECT_GE(unit, packet);
  EXPECT_LE(unit, block / 8);
  // Window-coverage cap: the 80-packet window must still hold several units.
  EXPECT_GE(80 / (unit / packet), 4);
  // Skew cap: (depth-1)·(M-P) <= tol·B.
  EXPECT_LE(2 * (unit - packet), static_cast<Bytes>(0.05 * block));
}

TEST(CoalescedUnit, DegeneratesToOnePacketWhenTight) {
  // Depth so deep no coalescing fits the skew budget.
  EXPECT_EQ(model::coalesced_transfer_unit(kMiB, 64 * kKiB, 100, 0.01),
            64 * kKiB);
}

TEST(CoalescedUnit, ClusterDerivesUnitWhenUnset) {
  cluster::ClusterSpec spec = fidelity_spec(hdfs::DataFidelity::kBlock);
  ASSERT_EQ(spec.hdfs.block_transfer_unit, 0);
  Cluster cluster(spec);
  EXPECT_GT(cluster.config().block_transfer_unit,
            cluster.config().packet_payload);
  EXPECT_EQ(cluster.config().block_transfer_unit %
                cluster.config().packet_payload,
            0);
  // Packet mode leaves the unit alone (transfer_payload == packet_payload).
  Cluster packet_cluster(fidelity_spec(hdfs::DataFidelity::kPacket));
  EXPECT_EQ(packet_cluster.config().transfer_payload(),
            packet_cluster.config().packet_payload);
}

// --- Equivalence -------------------------------------------------------------

TEST(FidelityEquivalence, BlockModeMatchesPacketModeWithinTolerance) {
  for (const Protocol protocol : {Protocol::kHdfs, Protocol::kSmarth}) {
    SCOPED_TRACE(cluster::protocol_name(protocol));
    const FidelityRun packet =
        run_upload(hdfs::DataFidelity::kPacket, protocol);
    const FidelityRun block = run_upload(hdfs::DataFidelity::kBlock, protocol);
    ASSERT_FALSE(packet.failed);
    ASSERT_FALSE(block.failed);
    // End-to-end tolerance: the per-block skew ceiling (5%) plus window
    // quantization; DESIGN.md §10 pins the combined contract at 15%.
    EXPECT_NEAR(block.seconds, packet.seconds, packet.seconds * 0.15)
        << "packet " << packet.seconds << "s vs block " << block.seconds
        << "s";
    // The point of block mode: substantially fewer events for the same
    // simulated outcome.
    EXPECT_LT(block.events * 2, packet.events);
  }
}

TEST(FidelityEquivalence, SmarthStillBeatsHdfsInBlockMode) {
  // The paper's qualitative result must survive the coarsening: under a
  // cross-rack throttle SMARTH's multi-pipeline overlap wins in both modes.
  for (const hdfs::DataFidelity fidelity :
       {hdfs::DataFidelity::kPacket, hdfs::DataFidelity::kBlock}) {
    cluster::ClusterSpec spec = fidelity_spec(fidelity);
    Cluster hdfs_cluster(spec);
    hdfs_cluster.throttle_cross_rack(Bandwidth::mbps(60));
    const double hdfs_seconds = to_seconds(
        hdfs_cluster.run_upload("/t", 128 * kMiB, Protocol::kHdfs).elapsed());
    Cluster smarth_cluster(fidelity_spec(fidelity));
    smarth_cluster.throttle_cross_rack(Bandwidth::mbps(60));
    const double smarth_seconds = to_seconds(
        smarth_cluster.run_upload("/t", 128 * kMiB, Protocol::kSmarth)
            .elapsed());
    EXPECT_LT(smarth_seconds, hdfs_seconds)
        << (fidelity == hdfs::DataFidelity::kBlock ? "block" : "packet");
  }
}

// --- Determinism -------------------------------------------------------------

std::string traced_upload(hdfs::DataFidelity fidelity) {
  trace::TraceRecorder recorder;
  trace::ScopedInstall install(&recorder);
  recorder.begin_run("RUN");
  std::uint64_t events = 0;
  {
    Cluster cluster(fidelity_spec(fidelity));
    recorder.set_time_source([&cluster] { return cluster.sim().now(); });
    const hdfs::StreamStats stats =
        cluster.run_upload("/data/trace.bin", 64 * kMiB, Protocol::kSmarth);
    EXPECT_FALSE(stats.failed);
    events = cluster.sim().events_executed();
    recorder.set_time_source(nullptr);
  }
  return std::to_string(events) + "\n" + trace::to_chrome_trace_json(recorder);
}

TEST(FidelityDeterminism, SameSeedBitIdenticalTraceBothModes) {
  for (const hdfs::DataFidelity fidelity :
       {hdfs::DataFidelity::kPacket, hdfs::DataFidelity::kBlock}) {
    SCOPED_TRACE(fidelity == hdfs::DataFidelity::kBlock ? "block" : "packet");
    const std::string first = traced_upload(fidelity);
    const std::string second = traced_upload(fidelity);
    EXPECT_EQ(first, second);
  }
}

}  // namespace
}  // namespace smarth
