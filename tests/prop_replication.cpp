// Property sweep over replication factors: for r in {1,2,3,4}, uploads must
// conserve bytes (r finalized replicas per block), respect the fan-out cap
// |datanodes|/r, and keep the rack-aware spread where r >= 2.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "cluster/cluster_spec.hpp"
#include "hdfs/namenode.hpp"

namespace smarth {
namespace {

using cluster::Cluster;
using cluster::Protocol;

struct Params {
  int replication;
  Protocol protocol;
};

class ReplicationSweep : public ::testing::TestWithParam<Params> {
 protected:
  static cluster::ClusterSpec make_spec(int replication) {
    cluster::ClusterSpec spec = cluster::small_cluster(31);
    spec.hdfs.block_size = 4 * kMiB;
    spec.hdfs.replication = replication;
    return spec;
  }
};

TEST_P(ReplicationSweep, BytesConservedAtFactor) {
  const Params& p = GetParam();
  Cluster cluster(make_spec(p.replication));
  const Bytes size = 12 * kMiB;
  const auto stats = cluster.run_upload("/f", size, p.protocol);
  ASSERT_FALSE(stats.failed) << stats.failure_reason;
  cluster.sim().run_until(cluster.sim().now() + seconds(3));
  EXPECT_TRUE(cluster.file_fully_replicated("/f"));
  EXPECT_EQ(cluster.total_finalized_replica_bytes(), p.replication * size);
}

TEST_P(ReplicationSweep, PipelineLengthMatchesFactor) {
  const Params& p = GetParam();
  Cluster cluster(make_spec(p.replication));
  const auto stats = cluster.run_upload("/f", 8 * kMiB, p.protocol);
  ASSERT_FALSE(stats.failed);
  const hdfs::FileEntry* entry = cluster.namenode().file_by_path("/f");
  ASSERT_NE(entry, nullptr);
  for (BlockId block : entry->blocks) {
    const hdfs::BlockRecord* record = cluster.namenode().block(block);
    ASSERT_NE(record, nullptr);
    EXPECT_EQ(record->expected_targets.size(),
              static_cast<std::size_t>(p.replication));
  }
}

TEST_P(ReplicationSweep, FanOutCapHolds) {
  const Params& p = GetParam();
  if (p.protocol != Protocol::kSmarth) GTEST_SKIP();
  Cluster cluster(make_spec(p.replication));
  cluster.throttle_cross_rack(Bandwidth::mbps(10));
  const auto stats = cluster.run_upload("/f", 32 * kMiB, p.protocol);
  ASSERT_FALSE(stats.failed);
  EXPECT_LE(stats.max_concurrent_pipelines,
            9 / p.replication);  // nine datanodes
}

TEST_P(ReplicationSweep, RackSpreadWherePossible) {
  const Params& p = GetParam();
  if (p.replication < 2) GTEST_SKIP();
  Cluster cluster(make_spec(p.replication));
  const auto stats = cluster.run_upload("/f", 8 * kMiB, p.protocol);
  ASSERT_FALSE(stats.failed);
  const auto& topo = cluster.network().topology();
  const hdfs::FileEntry* entry = cluster.namenode().file_by_path("/f");
  for (BlockId block : entry->blocks) {
    const hdfs::BlockRecord* record = cluster.namenode().block(block);
    // At least two racks hold the block (the rack-aware rule's purpose).
    bool rack0 = false;
    bool rack1 = false;
    for (NodeId t : record->expected_targets) {
      (topo.rack_of(t) == "/rack0" ? rack0 : rack1) = true;
    }
    EXPECT_TRUE(rack0 && rack1) << block.to_string();
  }
}

std::string name(const ::testing::TestParamInfo<Params>& info) {
  return std::string(info.param.protocol == Protocol::kHdfs ? "hdfs"
                                                            : "smarth") +
         "_r" + std::to_string(info.param.replication);
}

INSTANTIATE_TEST_SUITE_P(
    Factors, ReplicationSweep,
    ::testing::Values(Params{1, Protocol::kHdfs}, Params{2, Protocol::kHdfs},
                      Params{3, Protocol::kHdfs}, Params{4, Protocol::kHdfs},
                      Params{1, Protocol::kSmarth},
                      Params{2, Protocol::kSmarth},
                      Params{3, Protocol::kSmarth},
                      Params{4, Protocol::kSmarth}),
    name);

}  // namespace
}  // namespace smarth
