// Read-path and re-replication integration tests: whole-file reads from the
// nearest replica, failover on dead datanodes, read/write interference on
// shared disks and NICs, and the namenode's background restoration of
// under-replicated blocks.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "cluster/cluster_spec.hpp"
#include "hdfs/namenode.hpp"

namespace smarth {
namespace {

using cluster::Cluster;
using cluster::Protocol;

cluster::ClusterSpec small_spec(std::uint64_t seed = 42) {
  cluster::ClusterSpec spec = cluster::small_cluster(seed);
  spec.hdfs.block_size = 4 * kMiB;
  spec.hdfs.ack_timeout = seconds(2);
  return spec;
}

/// Uploads a file and lets trailing reports drain so it is readable.
void upload_and_settle(Cluster& cluster, const std::string& path, Bytes size) {
  const auto stats = cluster.run_upload(path, size, Protocol::kSmarth);
  ASSERT_FALSE(stats.failed) << stats.failure_reason;
  cluster.sim().run_until(cluster.sim().now() + seconds(2));
}

TEST(Read, WholeFileRoundTrip) {
  Cluster cluster(small_spec());
  upload_and_settle(cluster, "/data/a.bin", 10 * kMiB);
  const auto read = cluster.run_download("/data/a.bin");
  ASSERT_FALSE(read.failed) << read.failure_reason;
  EXPECT_EQ(read.bytes_read, 10 * kMiB);
  EXPECT_EQ(read.blocks, 3);
  EXPECT_EQ(read.failovers, 0);
  EXPECT_GT(read.throughput().mbps(), 10.0);
  EXPECT_LT(read.throughput().mbps(), 216.0);  // bounded by the client NIC
}

TEST(Read, PartialLastBlockAndPacket) {
  Cluster cluster(small_spec());
  const Bytes size = 5 * kMiB + 100;
  upload_and_settle(cluster, "/data/odd.bin", size);
  const auto read = cluster.run_download("/data/odd.bin");
  ASSERT_FALSE(read.failed);
  EXPECT_EQ(read.bytes_read, size);
}

TEST(Read, MissingFileFails) {
  Cluster cluster(small_spec());
  const auto read = cluster.run_download("/nope");
  EXPECT_TRUE(read.failed);
  EXPECT_NE(read.failure_reason.find("file_not_found"), std::string::npos);
}

TEST(Read, PrefersSameRackReplica) {
  Cluster cluster(small_spec());
  upload_and_settle(cluster, "/data/a.bin", 16 * kMiB);
  const auto read = cluster.run_download("/data/a.bin");
  ASSERT_FALSE(read.failed);
  // The client sits on rack0; with rack-aware placement every block has a
  // same-rack replica, so cross-rack read traffic should be zero: check by
  // counting which datanodes served reads.
  const auto& topo = cluster.network().topology();
  Bytes cross_rack_served = 0;
  for (std::size_t i = 0; i < cluster.datanode_count(); ++i) {
    if (!topo.same_rack(cluster.datanode_id(i), cluster.client_node())) {
      cross_rack_served += cluster.datanode(i).read_bytes_served();
    }
  }
  EXPECT_EQ(cross_rack_served, 0);
}

TEST(Read, FailsOverWhenReplicaDies) {
  Cluster cluster(small_spec());
  upload_and_settle(cluster, "/data/a.bin", 8 * kMiB);
  // Kill every rack0 datanode that holds block replicas: reads must fail
  // over to rack1 copies and still complete.
  const auto& topo = cluster.network().topology();
  for (std::size_t i = 0; i < cluster.datanode_count(); ++i) {
    if (topo.same_rack(cluster.datanode_id(i), cluster.client_node())) {
      cluster.datanode(i).crash();
    }
  }
  const auto read = cluster.run_download("/data/a.bin");
  ASSERT_FALSE(read.failed) << read.failure_reason;
  EXPECT_EQ(read.bytes_read, 8 * kMiB);
}

TEST(Read, FailoverMidStreamViaTimeout) {
  Cluster cluster(small_spec());
  upload_and_settle(cluster, "/data/a.bin", 8 * kMiB);
  // Crash the whole of rack0 shortly after the read starts; the watchdog
  // must fire and the stream resume from a rack1 replica.
  hdfs::ReadStats stats;
  bool done = false;
  cluster.download("/data/a.bin", [&](const hdfs::ReadStats& s) {
    stats = s;
    done = true;
  });
  const auto& topo = cluster.network().topology();
  cluster.sim().schedule_after(milliseconds(50), [&] {
    for (std::size_t i = 0; i < cluster.datanode_count(); ++i) {
      if (topo.same_rack(cluster.datanode_id(i), cluster.client_node())) {
        cluster.datanode(i).crash();
      }
    }
  });
  while (!done) {
    ASSERT_TRUE(cluster.sim().run_until(cluster.sim().now() + milliseconds(250)));
    ASSERT_LT(cluster.sim().now(), seconds(1000));
  }
  ASSERT_FALSE(stats.failed) << stats.failure_reason;
  EXPECT_EQ(stats.bytes_read, 8 * kMiB);
  EXPECT_GE(stats.failovers, 1);
}

TEST(Read, FailsWhenAllReplicasDead) {
  Cluster cluster(small_spec());
  upload_and_settle(cluster, "/data/a.bin", 4 * kMiB);
  for (std::size_t i = 0; i < cluster.datanode_count(); ++i) {
    cluster.datanode(i).crash();
  }
  // Liveness lapses after the dead interval; locations will be empty.
  cluster.sim().run_until(cluster.sim().now() +
                          cluster.config().datanode_dead_interval + seconds(2));
  const auto read = cluster.run_download("/data/a.bin");
  EXPECT_TRUE(read.failed);
}

TEST(Read, ConcurrentReadSlowsWriter) {
  // I/O interference: an 8 MiB upload while a reader streams a previous file
  // must be slower than the same upload alone (shared NICs and disks).
  cluster::ClusterSpec spec = small_spec();
  Cluster alone(spec);
  upload_and_settle(alone, "/data/old.bin", 32 * kMiB);
  const auto solo = alone.run_upload("/data/new.bin", 16 * kMiB,
                                     Protocol::kSmarth);

  Cluster shared(spec);
  upload_and_settle(shared, "/data/old.bin", 32 * kMiB);
  bool read_done = false;
  shared.download("/data/old.bin",
                  [&](const hdfs::ReadStats&) { read_done = true; });
  const auto contended = shared.run_upload("/data/new.bin", 16 * kMiB,
                                           Protocol::kSmarth);
  ASSERT_FALSE(solo.failed);
  ASSERT_FALSE(contended.failed);
  EXPECT_GE(contended.elapsed(), solo.elapsed());
  (void)read_done;
}

TEST(Rereplication, RestoresReplicationAfterCrash) {
  Cluster cluster(small_spec());
  cluster.enable_rereplication(seconds(2));
  upload_and_settle(cluster, "/data/a.bin", 8 * kMiB);
  ASSERT_TRUE(cluster.file_fully_replicated("/data/a.bin"));

  // Find a replica holder of the first block and kill it.
  const hdfs::FileEntry* entry = cluster.namenode().file_by_path("/data/a.bin");
  const hdfs::BlockRecord* record = cluster.namenode().block(entry->blocks[0]);
  std::size_t victim = 0;
  for (std::size_t i = 0; i < cluster.datanode_count(); ++i) {
    if (record->reported.count(cluster.datanode_id(i)) > 0) {
      victim = i;
      break;
    }
  }
  cluster.datanode(victim).crash();

  // Liveness lapses, the monitor notices and re-copies; give it time.
  cluster.sim().run_until(cluster.sim().now() +
                          cluster.config().datanode_dead_interval +
                          seconds(30));
  EXPECT_GE(cluster.namenode().rereplications_scheduled(), 1u);
  EXPECT_GE(cluster.namenode().rereplications_completed(), 1u);
  EXPECT_TRUE(cluster.namenode().under_replicated_blocks().empty());
  // Every block again has >= 3 live finalized replicas (excluding the dead
  // node's stale copies).
  for (BlockId block : entry->blocks) {
    int live = 0;
    for (std::size_t i = 0; i < cluster.datanode_count(); ++i) {
      if (i == victim) continue;
      const auto replica = cluster.datanode(i).block_store().replica(block);
      if (replica.ok() &&
          replica.value().state == storage::ReplicaState::kFinalized) {
        ++live;
      }
    }
    EXPECT_GE(live, 3) << block.to_string();
  }
}

TEST(Rereplication, MonitorDrainsAfterCrashDegradation) {
  // Drain invariant: once the monitor has repaired crash-induced
  // degradation, the under-replicated queue is empty and every scheduled
  // re-replication actually completed — nothing is silently dropped or
  // perpetually retried.
  Cluster cluster(small_spec());
  cluster.enable_rereplication(seconds(2));
  upload_and_settle(cluster, "/data/a.bin", 16 * kMiB);
  ASSERT_TRUE(cluster.file_fully_replicated("/data/a.bin"));

  cluster.datanode(0).crash();
  cluster.datanode(1).crash();
  cluster.sim().run_until(cluster.sim().now() +
                          cluster.config().datanode_dead_interval +
                          seconds(60));

  EXPECT_GE(cluster.namenode().rereplications_scheduled(), 1u);
  EXPECT_EQ(cluster.namenode().rereplications_completed(),
            cluster.namenode().rereplications_scheduled());
  EXPECT_TRUE(cluster.namenode().under_replicated_blocks().empty());
  EXPECT_TRUE(cluster.file_fully_replicated("/data/a.bin"));
}

TEST(Rereplication, IdleWhenFullyReplicated) {
  Cluster cluster(small_spec());
  cluster.enable_rereplication(seconds(2));
  upload_and_settle(cluster, "/data/a.bin", 8 * kMiB);
  cluster.sim().run_until(cluster.sim().now() + seconds(30));
  EXPECT_EQ(cluster.namenode().rereplications_scheduled(), 0u);
  EXPECT_TRUE(cluster.namenode().under_replicated_blocks().empty());
}

TEST(Rereplication, ReadableDuringRecovery) {
  Cluster cluster(small_spec());
  cluster.enable_rereplication(seconds(2));
  upload_and_settle(cluster, "/data/a.bin", 8 * kMiB);
  cluster.datanode(0).crash();
  cluster.datanode(1).crash();
  cluster.sim().run_until(cluster.sim().now() +
                          cluster.config().datanode_dead_interval + seconds(2));
  const auto read = cluster.run_download("/data/a.bin");
  ASSERT_FALSE(read.failed) << read.failure_reason;
  EXPECT_EQ(read.bytes_read, 8 * kMiB);
}

}  // namespace
}  // namespace smarth
