// Tests for the EC2 instance profiles (paper Table I) and the cluster
// builders (the paper's four evaluation clusters).
#include "cluster/cluster_spec.hpp"

#include <gtest/gtest.h>

#include <map>

#include "cluster/cluster.hpp"

namespace smarth::cluster {
namespace {

TEST(InstanceProfile, TableOneValues) {
  const InstanceProfile small = small_instance();
  EXPECT_EQ(small.name, "small");
  EXPECT_DOUBLE_EQ(small.memory_gb, 1.7);
  EXPECT_EQ(small.ecus, 1);
  EXPECT_DOUBLE_EQ(small.network.mbps(), 216.0);

  const InstanceProfile medium = medium_instance();
  EXPECT_DOUBLE_EQ(medium.memory_gb, 3.75);
  EXPECT_EQ(medium.ecus, 2);
  EXPECT_DOUBLE_EQ(medium.network.mbps(), 376.0);

  const InstanceProfile large = large_instance();
  EXPECT_DOUBLE_EQ(large.memory_gb, 7.5);
  EXPECT_EQ(large.ecus, 4);
  EXPECT_DOUBLE_EQ(large.network.mbps(), 376.0);
}

TEST(InstanceProfile, ProductionCostDecreasesWithEcus) {
  // Tc is CPU-bound: more ECUs, faster packet production.
  EXPECT_GT(small_instance().packet_production_time,
            medium_instance().packet_production_time);
  EXPECT_GT(medium_instance().packet_production_time,
            large_instance().packet_production_time);
}

TEST(InstanceProfile, LookupByName) {
  EXPECT_EQ(instance_by_name("small").name, "small");
  EXPECT_EQ(instance_by_name("medium").name, "medium");
  EXPECT_EQ(instance_by_name("large").name, "large");
  EXPECT_THROW(instance_by_name("xlarge"), std::logic_error);
  EXPECT_EQ(all_instance_profiles().size(), 3u);
}

TEST(ClusterSpec, HomogeneousHasNineDatanodesOnTwoRacks) {
  const ClusterSpec spec = small_cluster();
  EXPECT_EQ(spec.datanode_count(), 9u);
  std::map<std::string, int> racks;
  for (const auto& dn : spec.datanodes) racks[dn.rack]++;
  ASSERT_EQ(racks.size(), 2u);
  EXPECT_EQ(racks["/rack0"], 5);
  EXPECT_EQ(racks["/rack1"], 4);
  EXPECT_EQ(spec.namenode.rack, "/rack0");
  EXPECT_EQ(spec.client.rack, "/rack0");
}

TEST(ClusterSpec, ProductionTimeFollowsClientProfile) {
  EXPECT_EQ(small_cluster().hdfs.packet_production_time,
            small_instance().packet_production_time);
  EXPECT_EQ(large_cluster().hdfs.packet_production_time,
            large_instance().packet_production_time);
}

TEST(ClusterSpec, HeterogeneousMixMatchesPaper) {
  const ClusterSpec spec = heterogeneous_cluster();
  EXPECT_EQ(spec.datanode_count(), 9u);
  std::map<std::string, int> types;
  for (const auto& dn : spec.datanodes) types[dn.profile.name]++;
  EXPECT_EQ(types["small"], 3);
  EXPECT_EQ(types["medium"], 3);
  EXPECT_EQ(types["large"], 3);
  // Namenode is a medium instance (paper §V-A).
  EXPECT_EQ(spec.namenode.profile.name, "medium");
  // Both racks populated.
  std::map<std::string, int> racks;
  for (const auto& dn : spec.datanodes) racks[dn.rack]++;
  EXPECT_EQ(racks.size(), 2u);
}

TEST(ClusterSpec, CustomSizeAndMinimum) {
  const ClusterSpec spec = homogeneous_cluster(medium_instance(), 12);
  EXPECT_EQ(spec.datanode_count(), 12u);
  EXPECT_THROW(homogeneous_cluster(medium_instance(), 2), std::logic_error);
}

TEST(Cluster, WiringMatchesSpec) {
  Cluster cluster(small_cluster());
  EXPECT_EQ(cluster.datanode_count(), 9u);
  EXPECT_EQ(cluster.namenode().registered_datanode_count(), 9u);
  const auto& topo = cluster.network().topology();
  // namenode + 9 datanodes + client.
  EXPECT_EQ(topo.host_count(), 11u);
  EXPECT_EQ(topo.rack_of(cluster.client_node()), "/rack0");
}

TEST(Cluster, NodeNicsMatchProfiles) {
  Cluster cluster(heterogeneous_cluster());
  for (std::size_t i = 0; i < cluster.datanode_count(); ++i) {
    const auto& spec_node = cluster.spec().datanodes[i];
    EXPECT_EQ(cluster.network().node_nic(cluster.datanode_id(i)).mbps(),
              spec_node.profile.network.mbps())
        << spec_node.name;
  }
}

TEST(Cluster, AddExtraClient) {
  Cluster cluster(small_cluster());
  const std::size_t idx = cluster.add_client("/rack1", medium_instance());
  EXPECT_EQ(idx, 1u);
  EXPECT_NE(cluster.client_node(0), cluster.client_node(1));
  EXPECT_EQ(cluster.network().topology().rack_of(cluster.client_node(1)),
            "/rack1");
}

TEST(Cluster, ProtocolNames) {
  EXPECT_STREQ(protocol_name(Protocol::kHdfs), "HDFS");
  EXPECT_STREQ(protocol_name(Protocol::kSmarth), "SMARTH");
}

}  // namespace
}  // namespace smarth::cluster
