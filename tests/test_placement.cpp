// Unit tests for the replica placement policies: the stock HDFS rack-aware
// rule and its helpers. (The SMARTH global optimizer has its own suite.)
#include "hdfs/placement.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "net/topology.hpp"

namespace smarth::hdfs {
namespace {

class PlacementTest : public ::testing::Test {
 protected:
  PlacementTest() {
    for (int i = 0; i < 8; ++i) {
      alive_.push_back(topo_.add_host("dn" + std::to_string(i),
                                      i < 4 ? "/rack0" : "/rack1"));
    }
    client_node_ = topo_.add_host("client", "/rack0");
  }

  PlacementContext ctx() { return PlacementContext{topo_, alive_, rng_, nullptr}; }

  PlacementRequest request(int replication = 3) {
    PlacementRequest r;
    r.client = ClientId{0};
    r.client_node = client_node_;
    r.replication = replication;
    return r;
  }

  net::Topology topo_;
  std::vector<NodeId> alive_;
  Rng rng_{42};
  NodeId client_node_;
  DefaultPlacementPolicy policy_;
};

TEST_F(PlacementTest, RackAwareTriple) {
  for (int trial = 0; trial < 50; ++trial) {
    auto c = ctx();
    const auto targets = policy_.choose_targets(request(), c);
    ASSERT_EQ(targets.size(), 3u);
    EXPECT_FALSE(topo_.same_rack(targets[0], targets[1]));
    EXPECT_TRUE(topo_.same_rack(targets[1], targets[2]));
    EXPECT_NE(targets[1], targets[2]);
  }
}

TEST_F(PlacementTest, ClientDatanodeGetsFirstReplica) {
  // When the writer itself is a datanode, replica 1 lands on it.
  auto c = ctx();
  PlacementRequest r = request();
  r.client_node = alive_[2];
  const auto targets = policy_.choose_targets(r, c);
  ASSERT_EQ(targets.size(), 3u);
  EXPECT_EQ(targets[0], alive_[2]);
}

TEST_F(PlacementTest, NonDatanodeClientGetsRandomFirst) {
  auto c = ctx();
  const auto targets = policy_.choose_targets(request(), c);
  ASSERT_EQ(targets.size(), 3u);
  EXPECT_NE(targets[0], client_node_);
}

TEST_F(PlacementTest, ExclusionsRespected) {
  PlacementRequest r = request();
  r.excluded = {alive_[0], alive_[1], alive_[2], alive_[3]};  // all of rack0
  for (int trial = 0; trial < 20; ++trial) {
    auto c = ctx();
    const auto targets = policy_.choose_targets(r, c);
    ASSERT_EQ(targets.size(), 3u);
    for (NodeId t : targets) {
      EXPECT_EQ(topo_.rack_of(t), "/rack1");
    }
  }
}

TEST_F(PlacementTest, SingleRackFallback) {
  // Only rack0 nodes alive: the remote-rack rule must degrade gracefully.
  std::vector<NodeId> rack0(alive_.begin(), alive_.begin() + 4);
  PlacementContext c{topo_, rack0, rng_, nullptr};
  const auto targets = policy_.choose_targets(request(), c);
  ASSERT_EQ(targets.size(), 3u);
  for (NodeId t : targets) EXPECT_EQ(topo_.rack_of(t), "/rack0");
}

TEST_F(PlacementTest, InsufficientNodesReturnsPartial) {
  std::vector<NodeId> two(alive_.begin(), alive_.begin() + 2);
  PlacementContext c{topo_, two, rng_, nullptr};
  const auto targets = policy_.choose_targets(request(), c);
  EXPECT_EQ(targets.size(), 2u);
}

TEST_F(PlacementTest, HigherReplicationFills) {
  auto c = ctx();
  const auto targets = policy_.choose_targets(request(5), c);
  ASSERT_EQ(targets.size(), 5u);
  // All distinct.
  for (std::size_t i = 0; i < targets.size(); ++i) {
    for (std::size_t j = i + 1; j < targets.size(); ++j) {
      EXPECT_NE(targets[i], targets[j]);
    }
  }
}

TEST_F(PlacementTest, FirstReplicaSpreadsAcrossNodes) {
  // With a non-datanode client, replica 1 should hit many distinct nodes.
  std::set<std::int64_t> firsts;
  for (int trial = 0; trial < 200; ++trial) {
    auto c = ctx();
    const auto targets = policy_.choose_targets(request(), c);
    firsts.insert(targets[0].value());
  }
  EXPECT_GE(firsts.size(), 6u);
}

TEST_F(PlacementTest, HelperPickRandomHonoursPredicate) {
  auto c = ctx();
  for (int trial = 0; trial < 20; ++trial) {
    const NodeId pick = pick_random_node(c, {}, {}, [&](NodeId n) {
      return topo_.rack_of(n) == "/rack1";
    });
    ASSERT_TRUE(pick.valid());
    EXPECT_EQ(topo_.rack_of(pick), "/rack1");
  }
}

TEST_F(PlacementTest, HelperReturnsInvalidWhenNoCandidate) {
  auto c = ctx();
  const NodeId pick =
      pick_random_node(c, {}, alive_, nullptr);  // everything excluded
  EXPECT_FALSE(pick.valid());
}

TEST_F(PlacementTest, PlacementUnusable) {
  EXPECT_TRUE(placement_unusable(alive_[0], {alive_[0]}, {}));
  EXPECT_TRUE(placement_unusable(alive_[1], {}, {alive_[1]}));
  EXPECT_FALSE(placement_unusable(alive_[2], {alive_[0]}, {alive_[1]}));
}

}  // namespace
}  // namespace smarth::hdfs
