// Behavioural tests of the SMARTH stream's protocol mechanics on a live
// cluster: FNFA-paced dispatch, slot-wait behaviour under the fan-out cap,
// per-client datanode exclusivity, ablation switches, and speed-record
// content.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "cluster/cluster_spec.hpp"
#include "hdfs/namenode.hpp"
#include "sim/periodic_task.hpp"
#include "smarth/smarth_stream.hpp"

namespace smarth {
namespace {

using cluster::Cluster;
using cluster::Protocol;

cluster::ClusterSpec small_spec(std::uint64_t seed = 42) {
  cluster::ClusterSpec spec = cluster::small_cluster(seed);
  spec.hdfs.block_size = 4 * kMiB;
  return spec;
}

TEST(SmarthStream, SlotWaitsUnderDeepThrottle) {
  // Three datanodes and replication three leave exactly one pipeline slot;
  // with a slow cross hop the FNFA arrives while the pipeline still drains,
  // so every subsequent block must wait for the slot.
  cluster::ClusterSpec spec =
      cluster::homogeneous_cluster(cluster::small_instance(), 3, 42);
  spec.hdfs.block_size = 4 * kMiB;
  Cluster cluster(spec);
  cluster.throttle_cross_rack(Bandwidth::mbps(10));
  core::SmarthOutputStream* stream = nullptr;
  bool done = false;
  cluster.upload("/f", 32 * kMiB, Protocol::kSmarth,
                 [&](const hdfs::StreamStats&) { done = true; });
  while (!done) {
    ASSERT_TRUE(
        cluster.sim().run_until(cluster.sim().now() + milliseconds(250)));
    if (stream == nullptr) {
      stream = dynamic_cast<core::SmarthOutputStream*>(
          cluster.latest_stream());
    }
    ASSERT_LT(cluster.sim().now(), seconds(10'000));
  }
  ASSERT_NE(stream, nullptr);
  EXPECT_GE(stream->slot_waits(), 1u);
  EXPECT_EQ(stream->fnfa_received(), 8u);  // one per block
  EXPECT_EQ(stream->stats().max_concurrent_pipelines, 1);
}

TEST(SmarthStream, DatanodeServesOnePipelinePerClientAtATime) {
  // The §IV-C exclusivity rule, observed from the datanode side: sample
  // every datanode's active-pipeline count during the upload; with a single
  // client it must never exceed 1.
  Cluster cluster(small_spec());
  cluster.throttle_cross_rack(Bandwidth::mbps(20));
  std::size_t max_per_dn = 0;
  sim::PeriodicTask sampler(cluster.sim(), milliseconds(50), [&] {
    for (std::size_t i = 0; i < cluster.datanode_count(); ++i) {
      max_per_dn = std::max(max_per_dn,
                            cluster.datanode(i).active_pipeline_count());
    }
  });
  sampler.start();
  const auto stats = cluster.run_upload("/f", 32 * kMiB, Protocol::kSmarth);
  sampler.stop();
  ASSERT_FALSE(stats.failed);
  EXPECT_EQ(max_per_dn, 1u);
}

TEST(SmarthStream, WithoutCapDatanodesServeManyPipelines) {
  cluster::ClusterSpec spec = small_spec();
  spec.hdfs.enforce_pipeline_cap = false;
  spec.hdfs.ack_timeout = seconds(1000);  // congestion is expected here
  Cluster cluster(spec);
  cluster.throttle_cross_rack(Bandwidth::mbps(20));
  std::size_t max_per_dn = 0;
  int max_concurrent = 0;
  sim::PeriodicTask sampler(cluster.sim(), milliseconds(50), [&] {
    for (std::size_t i = 0; i < cluster.datanode_count(); ++i) {
      max_per_dn = std::max(max_per_dn,
                            cluster.datanode(i).active_pipeline_count());
    }
  });
  sampler.start();
  const auto stats = cluster.run_upload("/f", 48 * kMiB, Protocol::kSmarth);
  sampler.stop();
  ASSERT_FALSE(stats.failed);
  max_concurrent = stats.max_concurrent_pipelines;
  EXPECT_GT(max_per_dn, 1u);
  EXPECT_GT(max_concurrent, 3);
}

TEST(SmarthStream, BlocksDispatchInOrder) {
  // Namenode block records must appear in file order (the stream never
  // requests block k+1 before block k's FNFA).
  Cluster cluster(small_spec());
  const auto stats = cluster.run_upload("/f", 20 * kMiB, Protocol::kSmarth);
  ASSERT_FALSE(stats.failed);
  const hdfs::FileEntry* entry = cluster.namenode().file_by_path("/f");
  ASSERT_NE(entry, nullptr);
  for (std::size_t i = 1; i < entry->blocks.size(); ++i) {
    EXPECT_LT(entry->blocks[i - 1].value(), entry->blocks[i].value());
  }
}

TEST(SmarthStream, LocalOptAblationChangesPlacementBehaviour) {
  // With local optimization off and no exploration, the head of each
  // pipeline is exactly what the namenode chose; with it on, some heads are
  // swapped (exploration probability 0.2/pipeline over 16 blocks).
  int swapped_runs = 0;
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    cluster::ClusterSpec spec = small_spec(seed);
    spec.hdfs.local_opt_threshold = 0.0;  // always swap when enabled
    Cluster cluster(spec);
    const auto stats = cluster.run_upload("/f", 16 * kMiB, Protocol::kSmarth);
    ASSERT_FALSE(stats.failed);
    if (stats.pipelines_created > 0) ++swapped_runs;
  }
  EXPECT_EQ(swapped_runs, 3);  // runs complete despite aggressive swapping
}

TEST(SmarthStream, SpeedRecordsOnlyForPipelineHeads) {
  cluster::ClusterSpec spec = small_spec();
  // Local optimization re-sorts/swaps targets after the namenode records
  // them; disable it so the namenode's head is the measured head.
  spec.hdfs.smarth_local_opt = false;
  Cluster cluster(spec);
  const auto stats = cluster.run_upload("/f", 16 * kMiB, Protocol::kSmarth);
  ASSERT_FALSE(stats.failed);
  // Every recorded datanode must have been a pipeline head at least once.
  const hdfs::FileEntry* entry = cluster.namenode().file_by_path("/f");
  std::set<std::int64_t> heads;
  for (BlockId block : entry->blocks) {
    heads.insert(
        cluster.namenode().block(block)->expected_targets[0].value());
  }
  for (const auto& record : cluster.speed_tracker().heartbeat_records()) {
    EXPECT_TRUE(heads.count(record.datanode.value()) > 0)
        << record.datanode.to_string();
    EXPECT_GT(record.speed.mbps(), 1.0);
    EXPECT_LT(record.speed.mbps(), 400.0);
  }
}

TEST(SmarthStream, GlobalOptOffUsesDefaultPolicy) {
  cluster::ClusterSpec spec = small_spec();
  spec.hdfs.smarth_global_opt = false;
  Cluster cluster(spec);
  const auto stats = cluster.run_upload("/f", 8 * kMiB, Protocol::kSmarth);
  ASSERT_FALSE(stats.failed);
  EXPECT_STREQ(cluster.namenode().placement_policy().name(), "hdfs-default");
}

TEST(SmarthStream, GlobalOptOnInstallsSmarthPolicy) {
  Cluster cluster(small_spec());
  const auto stats = cluster.run_upload("/f", 8 * kMiB, Protocol::kSmarth);
  ASSERT_FALSE(stats.failed);
  EXPECT_STREQ(cluster.namenode().placement_policy().name(), "smarth-global");
}

TEST(SmarthStream, PipelineReuseAcrossBlocksCoversCluster) {
  // Over many blocks, every datanode should eventually serve some pipeline
  // (replicas 2/3 rotate even when heads concentrate).
  Cluster cluster(small_spec());
  const auto stats = cluster.run_upload("/f", 64 * kMiB, Protocol::kSmarth);
  ASSERT_FALSE(stats.failed);
  cluster.sim().run_until(cluster.sim().now() + seconds(2));
  for (std::size_t i = 0; i < cluster.datanode_count(); ++i) {
    EXPECT_GT(cluster.datanode(i).block_store().replica_count(), 0u)
        << "datanode " << i << " never used";
  }
}

}  // namespace
}  // namespace smarth
