// Control-plane overload integration: the defended namenode sheds load
// without mistaking overload for sickness (no suspicion, no re-registration
// of healthy datanodes), the open-loop workload completes through admission
// control, and the whole overload machinery is same-seed deterministic in
// both protocols and both fidelities.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/cluster_spec.hpp"
#include "trace/metrics_registry.hpp"
#include "workload/open_loop.hpp"

namespace smarth {
namespace {

using cluster::Cluster;
using cluster::Protocol;

cluster::ClusterSpec overload_spec(std::uint64_t seed = 42) {
  cluster::ClusterSpec spec = cluster::small_cluster(seed);
  spec.hdfs.block_size = 4 * kMiB;
  spec.hdfs.fidelity = hdfs::DataFidelity::kBlock;
  spec.hdfs.nn_service_model = true;
  spec.hdfs.nn_admission_control = true;
  return spec;
}

workload::OpenLoopConfig small_open_loop() {
  workload::OpenLoopConfig cfg;
  cfg.clients = 8;
  cfg.arrival_rate = 6.0;
  cfg.duration = seconds(20);
  cfg.min_file_size = 1 * kMiB;
  return cfg;
}

// Satellite: shed heartbeats must never feed the gray-failure machinery. A
// namenode drowning in its own heartbeat load (huge per-heartbeat cost,
// queue depth 1, batching off) sheds most of them — but every datanode is
// healthy, so the suspicion list stays empty and nobody re-registers.
TEST(OverloadIntegration, ShedHeartbeatsFileNoSuspicionsOrReregistrations) {
  metrics::global_registry().reset();
  cluster::ClusterSpec spec = overload_spec();
  spec.hdfs.nn_cost_heartbeat = seconds(2);
  spec.hdfs.nn_queue_capacity = 1;
  spec.hdfs.nn_heartbeat_batch_max = 1;
  Cluster cluster(spec);
  cluster.sim().run_until(seconds(60));
  ASSERT_NE(cluster.nn_service_queue(), nullptr);
  // The overload is real: heartbeats were dropped on the floor.
  EXPECT_GT(cluster.nn_service_queue()->counters().shed_heartbeats, 0u);
  // ...and invisible to the health machinery: a shed heartbeat's handler
  // never ran, so it cannot have been misread as datanode evidence.
  EXPECT_EQ(cluster.namenode().slow_node_reports(), 0u);
  EXPECT_TRUE(
      cluster.namenode().suspicion().suspects(cluster.sim().now()).empty());
  EXPECT_EQ(cluster.namenode().reregistrations(), 0u);
  EXPECT_EQ(cluster.namenode().lease_expiries(), 0u);
}

// The defense under real pressure: offered addBlock load beyond the modeled
// namenode capacity gets shed and retried, yet every job still lands — no
// stuck uploads, no failures, and the clients actually exercised the typed
// overloaded path.
TEST(OverloadIntegration, DefendedOpenLoopShedsButEveryJobCompletes) {
  metrics::global_registry().reset();
  cluster::ClusterSpec spec = overload_spec();
  spec.hdfs.nn_cost_add_block = milliseconds(40);
  spec.hdfs.nn_cost_meta = milliseconds(10);
  spec.hdfs.nn_queue_capacity = 8;
  spec.hdfs.nn_client_addblock_cap = 1;
  Cluster cluster(spec);
  workload::OpenLoopWorkload wl(Protocol::kSmarth, small_open_loop());
  const workload::OpenLoopResult result = wl.run(cluster);
  EXPECT_GT(result.jobs, 0);
  EXPECT_EQ(result.stuck, 0);
  EXPECT_EQ(result.failed, 0);
  EXPECT_EQ(result.completed, result.jobs);
  ASSERT_NE(cluster.nn_service_queue(), nullptr);
  EXPECT_GT(cluster.nn_service_queue()->counters().shed_total, 0u);
  const metrics::Counter* retries =
      metrics::global_registry().find_counter("rpc.overload_retries");
  ASSERT_NE(retries, nullptr);
  EXPECT_GT(retries->value(), 0u);
  // Overload still isn't sickness.
  EXPECT_EQ(cluster.namenode().slow_node_reports(), 0u);
  EXPECT_EQ(cluster.namenode().reregistrations(), 0u);
}

struct OverloadRunDigest {
  int jobs = 0;
  int completed = 0;
  int failed = 0;
  int stuck = 0;
  Bytes bytes_completed = 0;
  std::vector<double> latencies_s;
  std::uint64_t admitted = 0;
  std::uint64_t shed = 0;
  std::uint64_t events = 0;

  bool operator==(const OverloadRunDigest& o) const {
    return jobs == o.jobs && completed == o.completed && failed == o.failed &&
           stuck == o.stuck && bytes_completed == o.bytes_completed &&
           latencies_s == o.latencies_s && admitted == o.admitted &&
           shed == o.shed && events == o.events;
  }
};

OverloadRunDigest run_digest(Protocol protocol, hdfs::DataFidelity fidelity,
                             std::uint64_t seed) {
  metrics::global_registry().reset();
  cluster::ClusterSpec spec = overload_spec(seed);
  spec.hdfs.fidelity = fidelity;
  spec.hdfs.nn_cost_add_block = milliseconds(25);
  spec.hdfs.nn_queue_capacity = 8;
  Cluster cluster(spec);
  workload::OpenLoopConfig cfg = small_open_loop();
  cfg.clients = 4;
  cfg.arrival_rate = 4.0;
  cfg.duration = seconds(10);
  workload::OpenLoopWorkload wl(protocol, cfg);
  const workload::OpenLoopResult r = wl.run(cluster);
  OverloadRunDigest d;
  d.jobs = r.jobs;
  d.completed = r.completed;
  d.failed = r.failed;
  d.stuck = r.stuck;
  d.bytes_completed = r.bytes_completed;
  d.latencies_s = r.latencies_s;
  d.admitted = cluster.nn_service_queue()->counters().admitted;
  d.shed = cluster.nn_service_queue()->counters().shed_total;
  d.events = cluster.sim().events_executed();
  return d;
}

// Determinism: same seed, same world — bit-identical outcomes including the
// exact admitted/shed counts and event totals, for both protocols in both
// fidelity modes. The open-loop generator draws from its own salted RNG
// stream, so nothing here depends on run-to-run state.
TEST(OverloadIntegration, SameSeedRunsAreIdenticalAcrossProtocolAndFidelity) {
  const Protocol protocols[] = {Protocol::kHdfs, Protocol::kSmarth};
  const hdfs::DataFidelity fidelities[] = {hdfs::DataFidelity::kPacket,
                                           hdfs::DataFidelity::kBlock};
  for (const Protocol protocol : protocols) {
    for (const hdfs::DataFidelity fidelity : fidelities) {
      const OverloadRunDigest first = run_digest(protocol, fidelity, 1234);
      const OverloadRunDigest second = run_digest(protocol, fidelity, 1234);
      EXPECT_TRUE(first == second)
          << "divergent rerun (protocol="
          << cluster::protocol_name(protocol) << ", fidelity="
          << (fidelity == hdfs::DataFidelity::kBlock ? "block" : "packet")
          << ")";
      EXPECT_GT(first.jobs, 0);
      EXPECT_EQ(first.stuck, 0);
    }
  }
}

// Changing only the workload seed changes the arrival schedule — guards
// against the generator accidentally reading a fixed stream.
TEST(OverloadIntegration, DifferentSeedsProduceDifferentSchedules) {
  const OverloadRunDigest a =
      run_digest(Protocol::kSmarth, hdfs::DataFidelity::kBlock, 1);
  const OverloadRunDigest b =
      run_digest(Protocol::kSmarth, hdfs::DataFidelity::kBlock, 2);
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace smarth
